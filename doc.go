// Package repro reproduces Byrd, Jarvis & Bhalerao, "On the
// Parallelisation of MCMC-based Image Processing" (IEEE IPDPS workshops,
// 2010): reversible-jump MCMC detection of artifacts in images,
// parallelised by periodic partitioning (§V), speculative moves,
// intelligent and blind image partitioning (§VIII), with (MC)³ as the
// related-work baseline. The paper's workload is circular artifacts;
// a generic shape layer (internal/geom.Shape) extends every strategy
// to ellipses — per-feature semi-axes and rotation — selected via
// parmcmc.Options.Shape with no strategy-specific shape code.
//
// Use the public API in pkg/parmcmc. Every strategy is a plugin: a
// steppable sampler (Step/Snapshot/Finish) registered in a
// name→factory registry, driven by one generic chunked loop that
// provides cooperative cancellation, streaming progress
// (Options.Observer) and bit-identical checkpoint/resume
// (Options.OnCheckpoint, DetectResume) uniformly across strategies.
//
// pkg/service wraps the library as a long-running daemon (cmd/mcmcd):
// a bounded job queue + worker pool behind an HTTP API with SSE
// progress streams, 429 backpressure, Prometheus-style metrics and
// spool-backed crash durability — interrupted jobs resume from their
// latest checkpoint to bit-identical results. The black-box harness
// (service_e2e_test.go) pins that against the real binary, SIGKILL
// included.
//
// The repository-root benchmarks (bench_test.go) regenerate every
// table and figure of the paper's evaluation. See README.md, DESIGN.md
// and EXPERIMENTS.md.
package repro
