package repro

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/imaging"
	"repro/internal/rng"
	"repro/pkg/parmcmc"
)

// All strategies must agree on the same scene: every one of them should
// recover (almost) the same artifact set, because they sample (or
// approximate) the same posterior.
func TestCrossStrategyAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every strategy at full length")
	}
	pix, truth := parmcmc.GenerateScene(parmcmc.SceneSpec{
		W: 160, H: 160, Count: 7, MeanRadius: 8, Noise: 0.05, Seed: 99,
	})
	var counts []int
	for _, s := range parmcmc.Strategies() {
		res, err := parmcmc.Detect(pix, 160, 160, parmcmc.Options{
			Strategy: s, MeanRadius: 8, Iterations: 40000, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		_, recall, _ := parmcmc.MatchScore(res.Circles, truth, 4)
		if recall < 0.8 {
			t.Errorf("%v: recall %.2f", s, recall)
		}
		counts = append(counts, len(res.Circles))
	}
	// Strategies should agree on the count within a small band.
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 3 {
		t.Errorf("strategies disagree on count: %v", counts)
	}
}

// End-to-end file pipeline: render scene -> PGM on disk -> read back ->
// detect -> overlay PNG on disk.
func TestPGMPipeline(t *testing.T) {
	dir := t.TempDir()
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: 128, H: 128, Count: 5, MeanRadius: 8, Noise: 0.05, MinSeparation: 1.1,
	}, rng.New(3))

	pgmPath := filepath.Join(dir, "scene.pgm")
	f, err := os.Create(pgmPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := scene.Image.WritePGM(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(pgmPath)
	if err != nil {
		t.Fatal(err)
	}
	img, err := imaging.ReadPGM(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}

	res, err := parmcmc.Detect(img.Pix, img.W, img.H, parmcmc.Options{
		Strategy: parmcmc.Periodic, MeanRadius: 8, Iterations: 40000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(len(res.Circles))-float64(len(scene.Truth))) > 1 {
		t.Fatalf("found %d circles from PGM roundtrip, truth %d",
			len(res.Circles), len(scene.Truth))
	}

	var buf bytes.Buffer
	if err := img.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty PNG")
	}
}

// Degenerate inputs must degrade gracefully across the public API.
func TestDegenerateImages(t *testing.T) {
	// All-background: should find ~nothing.
	pix := make([]float64, 64*64)
	for i := range pix {
		pix[i] = 0.1
	}
	res, err := parmcmc.Detect(pix, 64, 64, parmcmc.Options{
		Strategy: parmcmc.Sequential, MeanRadius: 6, Iterations: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Circles) > 1 {
		t.Fatalf("found %d circles in empty image", len(res.Circles))
	}
	// All-foreground: must not crash; detector will tile the frame.
	for i := range pix {
		pix[i] = 0.9
	}
	if _, err := parmcmc.Detect(pix, 64, 64, parmcmc.Options{
		Strategy: parmcmc.Blind, MeanRadius: 6, Iterations: 15000,
	}); err != nil {
		t.Fatal(err)
	}
	// Intelligent partitioning on an empty image: no regions, no crash.
	for i := range pix {
		pix[i] = 0.1
	}
	out, err := parmcmc.Detect(pix, 64, 64, parmcmc.Options{
		Strategy: parmcmc.Intelligent, MeanRadius: 6, Iterations: 15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Circles) != 0 {
		t.Fatalf("intelligent found %d circles in empty image", len(out.Circles))
	}
}

// The experiments harness's quick mode must keep working through the
// public registry (this is what the per-figure benchmarks execute).
func TestExperimentRegistryFromRoot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	// fig1 is pure theory and instantaneous.
	runFig1 := lookupExperiment(t, "fig1")
	res := runFig1(t)
	if res == "" {
		t.Fatal("fig1 produced no output")
	}
}
