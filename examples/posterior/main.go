// Posterior: the §I promise of MCMC over greedy segmentation —
// "identifying similar but distinct solutions and giving the relative
// probabilities of these different interpretations". The chain samples
// past burn-in feed a posterior accumulator, producing a per-pixel
// coverage-probability map and the posterior distribution of the
// artifact count; data-driven births accelerate burn-in with the exact
// Hastings correction.
//
//	go run ./examples/posterior [output-dir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
)

func main() {
	log.SetFlags(0)
	outDir := "."
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}

	// A scene with one deliberately ambiguous overlapping pair: the
	// posterior holds real mass on both the 6- and 7-artifact
	// interpretations.
	im := imaging.New(192, 192)
	im.Fill(0.1)
	truth := []struct{ x, y, r float64 }{
		{40, 40, 9}, {140, 36, 9}, {40, 140, 9}, {150, 150, 9}, {96, 100, 9},
		// the ambiguous pair: two heavily overlapping discs that a single
		// larger disc explains almost as well
		{93, 40, 7.5}, {99, 40, 7.5},
	}
	for _, c := range truth {
		imaging.RenderShape(im, geom.Disc(c.x, c.y, c.r), 0.55)
	}
	// A barely-above-threshold artifact whose very existence the
	// posterior should be uncertain about.
	faint := geom.Disc(150, 90, 8)
	imaging.RenderShape(im, faint, 0.34)
	noise := rng.New(12)
	for i := range im.Pix {
		im.Pix[i] += noise.NormalAt(0, 0.12)
	}
	im.Clamp()

	params := model.DefaultParams(float64(len(truth)), 9)
	params.OverlapPenalty = 0.2
	params.Foreground = 0.55
	params.Noise = 0.2 // low SNR: interpretations stay genuinely uncertain
	state, err := model.NewState(im, params)
	if err != nil {
		log.Fatal(err)
	}
	engine := mcmc.MustNew(state, rng.New(13), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(9))
	engine.AttachBirthSampler(mcmc.NewDataDrivenBirth(state, 0.1))

	// Burn in, then accumulate posterior samples.
	engine.RunN(40000)
	acc := mcmc.NewPosteriorAccumulator(state.W, state.H, 50)
	engine.AttachAccumulator(acc)
	engine.RunN(200000)

	counts, probs := acc.CountPosterior()
	fmt.Printf("posterior over artifact count (%d samples):\n", acc.Samples())
	for i, n := range counts {
		bar := ""
		for j := 0; j < int(probs[i]*60); j++ {
			bar += "#"
		}
		fmt.Printf("  n=%2d  %.3f  %s\n", n, probs[i], bar)
	}
	mapN, p := acc.MAPCount()
	fmt.Printf("MAP count: %d (probability %.2f); ground truth: %d solid + 1 faint\n",
		mapN, p, len(truth))

	// Posterior existence probability of the faint artifact: the mean
	// coverage probability over its disc.
	pm := acc.ProbabilityMap()
	sum, npx := 0.0, 0
	for y := int(faint.Y - faint.Rx); y <= int(faint.Y+faint.Rx); y++ {
		for x := int(faint.X - faint.Rx); x <= int(faint.X+faint.Rx); x++ {
			if faint.Contains(float64(x)+0.5, float64(y)+0.5) {
				sum += pm.At(x, y)
				npx++
			}
		}
	}
	fmt.Printf("P(faint artifact region covered) = %.2f — a greedy detector would answer 0 or 1\n",
		sum/float64(npx))
	uncertain := 0
	for _, v := range pm.Pix {
		if v > 0.2 && v < 0.8 {
			uncertain++
		}
	}
	fmt.Printf("pixels with genuinely uncertain coverage (0.2<p<0.8): %d\n", uncertain)

	pmPath := filepath.Join(outDir, "posterior_map.png")
	f, err := os.Create(pmPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := pm.WritePNG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote per-pixel coverage-probability map to %s\n", pmPath)
}
