// Nuclei: the §III case study end-to-end with the lower-level internal
// API — filter an image to emphasise the stain colour, set up the
// Bayesian model, run periodic partitioning with speculative global
// phases (eqs. 2–3 composed), watch the posterior trace converge, and
// write a detection overlay PNG.
//
//	go run ./examples/nuclei [output-dir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	outDir := "."
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}

	// A synthetic stained-tissue image: 100 nuclei of radius ~10 on a
	// 512x512 frame (a quarter of the paper's §VII workload).
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: 512, H: 512, Count: 100, MeanRadius: 10, RadiusStdDev: 1.2,
		Noise: 0.08, MinSeparation: 1.05,
	}, rng.New(7))

	// §III: "first the input image is filtered to emphasise the colour
	// of interest". Our grayscale equivalent boosts intensities near the
	// nucleus stain level.
	filtered := scene.Image.Emphasize(0.9, 0.25)

	// eq. 5 supplies the count prior from the filtered image itself.
	lambda := filtered.EstimateCount(0.5, 10)
	fmt.Printf("eq.5 estimates %.1f nuclei (truth: %d)\n", lambda, len(scene.Truth))

	params := model.DefaultParams(lambda, 10)
	state, err := model.NewState(filtered, params)
	if err != nil {
		log.Fatal(err)
	}
	engine := mcmc.MustNew(state, rng.New(99), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(10))
	tr := mcmc.NewTrace(2000)
	engine.AttachTrace(tr)

	timer := trace.NewPhaseTimer()
	periodic, err := core.NewEngine(engine, core.Options{
		LocalPhaseIters: 600,
		GridXM:          260, GridYM: 260, // ~2x2 cells with random offsets
		Workers:   4,
		SpecWidth: 4, // speculative global phases (eq. 3)
		Timer:     timer,
	})
	if err != nil {
		log.Fatal(err)
	}

	const total = 400000
	periodic.Run(total)

	fmt.Printf("\nposterior trace (every %d iterations):\n", tr.Every*20)
	for i := 0; i < len(tr.LogPost); i += 20 {
		fmt.Printf("  iter %8d  logpost %12.1f  count %d\n",
			tr.Iters[i], tr.LogPost[i], tr.Count[i])
	}

	found := state.Cfg.Circles()
	m := stats.MatchCircles(found, scene.Truth, 5)
	fmt.Printf("\nfound %d nuclei: precision %.3f, recall %.3f, F1 %.3f\n",
		len(found), m.Precision(), m.Recall(), m.F1())
	pgr, plr := engine.Stats.GlobalLocalRates()
	fmt.Printf("rejection rates: global %.2f, local %.2f\n", pgr, plr)
	fmt.Printf("phase time: global %v over %d phases, local %v over %d phases (%d barriers)\n",
		timer.Total("global").Round(1e6), timer.Count("global"),
		timer.Total("local").Round(1e6), timer.Count("local"), periodic.Barriers)

	overlay := filepath.Join(outDir, "nuclei_overlay.png")
	f, err := os.Create(overlay)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := scene.Image.WriteOverlayPNG(f, found); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", overlay)
}
