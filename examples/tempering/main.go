// Tempering: the §IV related-work method, (MC)³, on a deliberately
// multimodal scene. Pairs of strongly overlapping discs admit two
// interpretations — "one big artifact" or "two overlapping artifacts" —
// and a plain chain that commits to the wrong one early can stay stuck.
// Heated chains cross between the modes freely and hand better states to
// the cold chain through swaps.
//
//	go run ./examples/tempering
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mc3"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	// Build the ambiguous scene: 5 overlapping pairs.
	im := imaging.New(256, 256)
	im.Fill(0.1)
	r := rng.New(3)
	var truth []geom.Ellipse
	const meanR = 8.0
	for len(truth) < 10 {
		cx, cy := r.Uniform(40, 216), r.Uniform(40, 216)
		clear := true
		for _, p := range truth {
			if (geom.Ellipse{X: cx, Y: cy}).Dist(p) < 5*meanR {
				clear = false
				break
			}
		}
		if !clear {
			continue
		}
		truth = append(truth,
			geom.Disc(cx-0.55*meanR, cy, meanR),
			geom.Disc(cx+0.55*meanR, cy, meanR))
	}
	for _, c := range truth {
		imaging.RenderShape(im, c, 0.9)
	}
	noise := rng.New(4)
	for i := range im.Pix {
		im.Pix[i] += noise.NormalAt(0, 0.04)
	}
	im.Clamp()

	params := model.DefaultParams(float64(len(truth)), meanR)
	params.OverlapPenalty = 0.15
	weights := mcmc.DefaultWeights()
	steps := mcmc.DefaultStepSizes(meanR)
	const iters = 100000

	// Plain chain.
	st, err := model.NewState(im, params)
	if err != nil {
		log.Fatal(err)
	}
	plain := mcmc.MustNew(st, rng.New(21), weights, steps)
	plain.RunN(iters)

	// (MC)³ with 4 chains.
	opt := mc3.DefaultOptions()
	opt.Workers = runtime.GOMAXPROCS(0)
	sampler, err := mc3.New(im, params, weights, steps, opt, 22)
	if err != nil {
		log.Fatal(err)
	}
	sampler.Run(iters)

	mPlain := stats.MatchCircles(st.Cfg.Circles(), truth, meanR*0.6)
	mCold := stats.MatchCircles(sampler.Cold().Cfg.Circles(), truth, meanR*0.6)
	fmt.Printf("scene: %d artifacts arranged as %d overlapping pairs\n\n", len(truth), len(truth)/2)
	fmt.Printf("plain chain:      logpost %10.1f  found %2d  TP %2d  F1 %.3f\n",
		st.LogPost(), st.Cfg.Len(), mPlain.TP, mPlain.F1())
	fmt.Printf("(MC)^3 cold:      logpost %10.1f  found %2d  TP %2d  F1 %.3f\n",
		sampler.Cold().LogPost(), sampler.Cold().Cfg.Len(), mCold.TP, mCold.F1())
	fmt.Printf("\nswap rate: %.2f over %d proposals; heat ladder β = %v\n",
		sampler.SwapRate(), sampler.SwapProposed, sampler.Betas)
	fmt.Println("\nnote: (MC)^3 spends processors on convergence rate; periodic")
	fmt.Println("partitioning spends them on workload — the methods compose.")
}
