// Quickstart: synthesise a scene, detect its artifacts with periodic
// partitioning (the paper's statistically exact parallelisation), and
// score the result against ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pkg/parmcmc"
)

func main() {
	// A 256x256 micrograph with 12 bright nuclei of radius ~9 px.
	pix, truth := parmcmc.GenerateScene(parmcmc.SceneSpec{
		W: 256, H: 256, Count: 12, MeanRadius: 9, Noise: 0.05, Seed: 42,
	})

	res, err := parmcmc.Detect(pix, 256, 256, parmcmc.Options{
		Strategy:   parmcmc.Periodic,
		MeanRadius: 9,
		Iterations: 80000,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d artifacts (truth: %d) in %v using %q\n",
		len(res.Circles), len(truth), res.Elapsed.Round(1e6), res.Strategy)
	for _, c := range res.Circles {
		fmt.Printf("  circle at (%6.1f, %6.1f) radius %.1f\n", c.X, c.Y, c.R)
	}
	precision, recall, f1 := parmcmc.MatchScore(res.Circles, truth, 4)
	fmt.Printf("precision %.2f, recall %.2f, F1 %.2f\n", precision, recall, f1)
}
