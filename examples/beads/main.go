// Beads: the §IX experiment in miniature — a clumped latex-bead image is
// processed three ways (sequential, intelligent partitioning, blind
// partitioning) and the runtimes and detection quality are compared side
// by side, reproducing the paper's conclusion that blind partitioning
// wins on clumped data while intelligent partitioning is limited by its
// largest partition.
//
//	go run ./examples/beads
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/imaging"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	// Three clumps of beads, like fig. 3.
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: 420, H: 320, Count: 36, Clusters: 3, ClusterSpread: 2.0,
		MeanRadius: 9, RadiusStdDev: 0.3, Noise: 0.04, MinSeparation: 1.02,
	}, rng.New(3))
	meanR := 9.0

	cfg := partition.DefaultConfig(meanR, 2024)
	cfg.MaxIters = 80000
	workers := runtime.GOMAXPROCS(0)

	seq, err := partition.RunSequential(context.Background(), scene.Image, cfg)
	if err != nil {
		log.Fatal(err)
	}
	intel, err := partition.RunIntelligent(context.Background(), scene.Image, cfg, int(2.2*meanR), workers)
	if err != nil {
		log.Fatal(err)
	}
	blind, err := partition.RunBlind(context.Background(), scene.Image, cfg, partition.BlindOptions{
		NX: 2, NY: 2, Margin: 1.1 * meanR, MergeRadius: 5, KeepDisputed: true,
	}, workers)
	if err != nil {
		log.Fatal(err)
	}

	tb := &trace.Table{Header: []string{
		"method", "partitions", "runtime_s", "rel_runtime", "found", "F1", "dup_pairs",
	}}
	intelTime := partition.Makespan(intel.Regions, workers)
	blindTime := partition.Makespan(blind.Regions, workers)
	mSeq := stats.MatchCircles(seq.Circles, scene.Truth, meanR/2)
	mInt := stats.MatchCircles(intel.Circles, scene.Truth, meanR/2)
	mBld := stats.MatchCircles(blind.Circles, scene.Truth, meanR/2)

	tb.Add("sequential", 1, seq.Seconds, 1.0, len(seq.Circles), mSeq.F1(),
		stats.DuplicatePairs(seq.Circles, meanR/2))
	tb.Add("intelligent", len(intel.Regions), intelTime, intelTime/seq.Seconds,
		len(intel.Circles), mInt.F1(), stats.DuplicatePairs(intel.Circles, meanR/2))
	tb.Add("blind 2x2", len(blind.Regions), blindTime, blindTime/seq.Seconds,
		len(blind.Circles), mBld.F1(), stats.DuplicatePairs(blind.Circles, meanR/2))
	if err := tb.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblind merge: %d cross-partition pairs averaged, %d disputed artifacts\n",
		blind.Merged, blind.Disputed)
	fmt.Printf("ground truth: %d beads in 3 clusters\n", len(scene.Truth))
}
