// Ellipses: the generic shape layer end-to-end — elliptical cell
// nuclei (the realistic case: nuclei are rarely perfect discs) are
// synthesized, detected with the same parallel strategies as the disc
// workload, and written to an overlay PNG. Everything runs through the
// public API: Options.Shape switches the whole stack — span generation,
// likelihood kernels, the move set (axis-scale and rotate replace the
// disc-only split/merge), partition workers — with no strategy-specific
// shape code.
//
//	go run ./examples/ellipses [output-dir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/pkg/parmcmc"
)

func main() {
	log.SetFlags(0)
	outDir := "."
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}

	// An elliptical-nuclei micrograph: elongated bright blobs (mean
	// major semi-axis 9, minor ≈ 0.65×, arbitrary orientation).
	const w, h = 360, 360
	pix, truth := parmcmc.GenerateSceneShapes(parmcmc.SceneSpec{
		W: w, H: h, Count: 40, MeanRadius: 9, Noise: 0.07, Seed: 5,
		Shape: parmcmc.Ellipses, AxisRatio: 0.65,
	})
	fmt.Printf("scene: %d elliptical nuclei\n", len(truth))

	// Detect with periodic partitioning — identical call to the disc
	// workload plus Shape: Ellipses.
	res, err := parmcmc.Detect(pix, w, h, parmcmc.Options{
		Strategy:   parmcmc.Periodic,
		Shape:      parmcmc.Ellipses,
		MeanRadius: 9,
		Iterations: 120000,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	precision, recall, f1 := parmcmc.MatchScoreShapes(res.Ellipses, truth, 5)
	fmt.Printf("found %d nuclei in %v: precision %.3f, recall %.3f, F1 %.3f\n",
		len(res.Ellipses), res.Elapsed.Round(1e6), precision, recall, f1)
	fmt.Printf("log-posterior %.1f over %d iterations (%d barriers)\n",
		res.LogPost, res.Iterations, res.Barriers)

	// Report how elongated the fitted shapes are: the sampler's
	// axis-scale and rotate moves must have pulled the axes apart.
	elongated := 0
	for _, e := range res.Ellipses {
		if e.Ry < 0.9*e.Rx || e.Rx < 0.9*e.Ry {
			elongated++
		}
	}
	fmt.Printf("%d of %d detections are visibly elongated\n", elongated, len(res.Ellipses))

	// Overlay the fitted ellipses on the input image.
	im := &imaging.Image{W: w, H: h, Pix: append([]float64(nil), pix...)}
	shapes := make([]geom.Ellipse, len(res.Ellipses))
	for i, e := range res.Ellipses {
		shapes[i] = geom.Ellipse{X: e.X, Y: e.Y, Rx: e.Rx, Ry: e.Ry, Theta: e.Theta}
	}
	overlay := filepath.Join(outDir, "ellipses_overlay.png")
	f, err := os.Create(overlay)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := im.WriteOverlayPNG(f, shapes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", overlay)
}
