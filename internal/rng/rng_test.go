package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("all-zero state from seed 0")
	}
	// Must produce varied output.
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalAt(t *testing.T) {
	r := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormalAt(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.02 {
		t.Fatalf("NormalAt(10,2) mean = %v", mean)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(8)
	for i := 0; i < 50000; i++ {
		v := r.TruncNormal(5, 3, 4, 6)
		if v < 4 || v > 6 {
			t.Fatalf("TruncNormal escaped bounds: %v", v)
		}
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	r := New(8)
	if v := r.TruncNormal(0, 1, 3, 3); v != 3 {
		t.Fatalf("TruncNormal with lo==hi = %v, want 3", v)
	}
	// Interval far in the tail: the uniform fallback must still respect
	// the bounds.
	for i := 0; i < 100; i++ {
		v := r.TruncNormal(0, 0.1, 50, 51)
		if v < 50 || v > 51 {
			t.Fatalf("tail TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for lo > hi")
		}
	}()
	New(1).TruncNormal(0, 1, 2, 1)
}

func TestExponentialMean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12, 80, 400} {
		r := New(uint64(lambda*1000) + 1)
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		tol := 4 * math.Sqrt(lambda/float64(n)) * 3 // ~3 sigma, inflated
		if math.Abs(mean-lambda) > tol+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > lambda*0.1+0.1 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(1)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := r.Poisson(-5); v != 0 {
		t.Fatalf("Poisson(-5) = %d", v)
	}
}

func TestJumpDisjoint(t *testing.T) {
	// Two streams separated by a Jump must not produce overlapping
	// windows of output within any practical horizon. We check a weaker
	// but fast property: no collisions across 10k draws each.
	a := New(42)
	b := NewFrom(a)
	b.Jump()
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		seen[a.Uint64()] = true
	}
	for i := 0; i < 10000; i++ {
		if seen[b.Uint64()] {
			t.Fatalf("jumped stream collided with base stream at step %d", i)
		}
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	master := New(99)
	a := master.Split()
	b := master.Split()
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("split streams matched at step %d", i)
		}
	}
}

func TestLongJumpDiffersFromJump(t *testing.T) {
	a := New(13)
	b := New(13)
	a.Jump()
	b.LongJump()
	if a.Uint64() == b.Uint64() {
		t.Fatal("Jump and LongJump produced identical next value")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(22)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
	same := true
	for i := range xs {
		if xs[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Log("shuffle produced identity permutation (possible but unlikely)")
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := New(33)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("picked zero-weight index %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("weight-1 index frequency %v, want ~0.25", frac0)
	}
}

func TestPickPanicsOnZeroWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for all-zero weights")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestBoolProbability(t *testing.T) {
	r := New(44)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(55)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform(-2,3) = %v", v)
		}
	}
}

func TestPositiveNeverZero(t *testing.T) {
	r := New(66)
	for i := 0; i < 100000; i++ {
		if r.Positive() <= 0 {
			t.Fatal("Positive returned non-positive value")
		}
	}
}

// Property: mul64 agrees with big-integer multiplication on the low and
// high halves.
func TestMul64Property(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify using 32-bit limb arithmetic independently.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		p00 := a0 * b0
		p01 := a0 * b1
		p10 := a1 * b0
		p11 := a1 * b1
		mid := p00>>32 + p10&0xffffffff + p01&0xffffffff
		wantLo := a * b
		wantHi := p11 + p10>>32 + p01>>32 + mid>>32
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn(n) stays within bounds for arbitrary positive n.
func TestIntnProperty(t *testing.T) {
	r := New(77)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Normal()
	}
	_ = sink
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Poisson(150)
	}
	_ = sink
}

func TestFillMatchesFloat64(t *testing.T) {
	a := New(77)
	b := New(77)
	// Uneven chunk sizes, including zero-length and larger-than-typical
	// buffers, must consume the stream exactly like scalar draws.
	buf := make([]float64, 0, 257)
	for _, n := range []int{1, 0, 7, 64, 63, 257, 2} {
		buf = buf[:n]
		a.Fill(buf)
		for i, got := range buf {
			if want := b.Float64(); got != want {
				t.Fatalf("chunk %d, index %d: Fill %v, Float64 %v", n, i, got, want)
			}
		}
	}
	// The streams must stay aligned afterwards.
	if a.Float64() != b.Float64() {
		t.Fatal("streams diverged after Fill")
	}
}

func TestFillValuesInRange(t *testing.T) {
	r := New(78)
	buf := make([]float64, 4096)
	r.Fill(buf)
	for i, v := range buf {
		if v < 0 || v >= 1 {
			t.Fatalf("buf[%d] = %v out of [0, 1)", i, v)
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	r := New(1)
	// Burn arbitrary state, including the Normal cache.
	for i := 0; i < 100; i++ {
		r.Uint64()
		r.Normal()
	}
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		r.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 50; i++ {
			if a, b := r.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("seed %d: Reseed stream diverges at %d: %x != %x", seed, i, a, b)
			}
			if a, b := r.Normal(), fresh.Normal(); a != b {
				t.Fatalf("seed %d: Normal diverges at %d", seed, i)
			}
		}
	}
}
