// Package rng provides a deterministic, splittable pseudo-random number
// generator for the MCMC engines in this repository.
//
// The generator is xoshiro256** (Blackman & Vigna). It was chosen over
// math/rand for two properties the parallel engines rely on:
//
//   - Jump functions: Jump advances the state by 2^128 steps, so a single
//     seed can be fanned out into per-partition streams that are guaranteed
//     disjoint for any realistic run length. Periodic partitioning gives
//     every grid cell its own jumped stream, which makes results
//     reproducible regardless of how many worker goroutines execute the
//     cells or in what order they are scheduled.
//   - Cheap value-type state: the whole state is four uint64 words, so
//     every worker can own its generator without sharing or locking.
//
// All distribution samplers (Normal, Poisson, Exponential, truncated
// Normal) are implemented here so that no hot path depends on math/rand's
// global state.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; construct
// with New or NewFrom. RNG is not safe for concurrent use; give each
// goroutine its own (see Split / Jump).
type RNG struct {
	s [4]uint64

	// cached second Normal variate from the polar method.
	hasGauss bool
	gauss    float64
}

// splitmix64 advances x and returns the next SplitMix64 output. It is the
// recommended seeding procedure for xoshiro so that correlated seeds (0, 1,
// 2, ...) still yield well-distributed initial states.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start at the all-zero state; splitmix64 cannot
	// produce four zero words from any input, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Reseed resets r in place to the state New(seed) would produce, clearing
// any cached Normal variate. It exists so hot paths can re-derive a
// deterministic stream per logical unit of work (one speculative iteration,
// say) without allocating a generator per unit.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasGauss = false
	r.gauss = 0
}

// NewFrom returns a generator whose state is copied from r. The copy and
// the original then evolve independently (they will produce identical
// streams; use Jump or Split for disjoint ones).
func NewFrom(r *RNG) *RNG {
	cp := *r
	cp.hasGauss = false
	return &cp
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// jumpPoly is the xoshiro256 jump polynomial; applying it advances the
// stream by 2^128 steps.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// longJumpPoly advances by 2^192 steps.
var longJumpPoly = [4]uint64{
	0x76e15d3efefdcbbf, 0xc5004e441c522fb3,
	0x77710069854ee241, 0x39109bb02acbe635,
}

func (r *RNG) applyJump(poly [4]uint64) {
	var s0, s1, s2, s3 uint64
	for _, jp := range poly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
	r.hasGauss = false
}

// Jump advances the generator by 2^128 steps. Streams separated by a Jump
// never overlap in practice.
func (r *RNG) Jump() { r.applyJump(jumpPoly) }

// LongJump advances the generator by 2^192 steps; use it to separate whole
// families of Jump-separated streams.
func (r *RNG) LongJump() { r.applyJump(longJumpPoly) }

// Split returns a new generator positioned one Jump (2^128 steps) beyond
// r's current state and then advances r by the same jump, so successive
// Split calls hand out pairwise-disjoint streams:
//
//	master := rng.New(seed)
//	for i := range workers { workers[i].rng = master.Split() }
func (r *RNG) Split() *RNG {
	child := NewFrom(r)
	r.Jump()
	return child
}

// Saved is a serializable snapshot of an RNG's complete state: the four
// xoshiro words plus the polar-method Gaussian cache. Restoring it
// reproduces the generator's future stream bit for bit, which is what
// checkpoint/resume relies on.
type Saved struct {
	S        [4]uint64
	HasGauss bool
	Gauss    float64
}

// Save captures the generator's state.
func (r *RNG) Save() Saved {
	return Saved{S: r.s, HasGauss: r.hasGauss, Gauss: r.gauss}
}

// Restore overwrites the generator's state with a saved snapshot.
func (r *RNG) Restore(sv Saved) {
	r.s = sv.S
	r.hasGauss = sv.HasGauss
	r.gauss = sv.Gauss
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fill fills dst with independent uniform float64s in [0, 1) — exactly
// the values len(dst) sequential Float64 calls would produce, in order.
// Hot loops use it to amortise the per-draw call overhead over a chunk.
func (r *RNG) Fill(dst []float64) {
	s := &r.s
	for i := range dst {
		result := rotl(s[1]*5, 7) * 9
		t := s[1] << 17
		s[2] ^= s[0]
		s[3] ^= s[1]
		s[1] ^= s[2]
		s[0] ^= s[3]
		s[2] ^= t
		s[3] = rotl(s[3], 45)
		dst[i] = float64(result>>11) / (1 << 53)
	}
}

// Positive returns a uniform float64 in (0, 1), never zero — handy for
// logarithms in samplers and acceptance tests.
func (r *RNG) Positive() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// nearly-divisionless method.
func (r *RNG) boundedUint64(n uint64) uint64 {
	v := r.Uint64()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t & mask32
	hi1 := t >> 32
	lo1 += a0 * b1
	hi = a1*b1 + hi1 + lo1>>32
	lo = a * b
	return
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a standard Normal variate (mean 0, stddev 1) using the
// Marsaglia polar method with one-value caching.
func (r *RNG) Normal() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// NormalAt returns a Normal variate with the given mean and stddev.
func (r *RNG) NormalAt(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// TruncNormal samples a Normal(mean, stddev) truncated to [lo, hi] by
// rejection. It panics if lo > hi. For the radius priors used in this
// repository the acceptance rate is high (the interval covers most of the
// mass); a safety cap falls back to a uniform draw on pathological inputs
// so the sampler cannot spin forever.
func (r *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		panic("rng: TruncNormal with lo > hi")
	}
	if lo == hi {
		return lo
	}
	for i := 0; i < 256; i++ {
		v := r.NormalAt(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return r.Uniform(lo, hi)
}

// Exponential returns an Exponential(rate) variate. It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(r.Positive()) / rate
}

// Poisson returns a Poisson(lambda) variate. Knuth's product method is
// used for small lambda and the PTRS transformed-rejection method of
// Hörmann for large lambda, so the cost is O(1) in both regimes.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return r.poissonPTRS(lambda)
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for lambda >= 10.
func (r *RNG) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(lambda)-lambda-lg {
			return int(k)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function, as in math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random element index weighted by the given
// non-negative weights. It panics if all weights are zero or negative.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Pick with no positive weights")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating-point round-off can leave target == total; return the last
	// positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}
