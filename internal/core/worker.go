package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
)

// cellWorker performs the M_l moves allocated to one partition cell
// during a parallel local phase. Safety model (§V):
//
//   - The worker may modify only its *owned* features: circles fully
//     inside the cell with a margin of at least Params.LocalityMargin().
//     Proposals that would move a feature out of that eligibility region
//     are rejected outright ("no feature may be created or moved such
//     that any part of it or its considered area intersects with its
//     partition's boundary").
//   - Owned circles therefore touch only pixels strictly inside the
//     cell, so concurrent workers mutate disjoint regions of the shared
//     coverage buffer and read disjoint pixel gains.
//   - Circles of other cells are visible only as read-only snapshot
//     copies taken at the phase barrier; the margin guarantees they can
//     never overlap an owned circle during the phase, so the overlap-
//     penalty terms computed from the snapshot stay exact.
//
// The worker accumulates its log-posterior deltas locally; the engine
// folds them into the shared state at the merge barrier.
//
// With specWidth > 1 the worker additionally applies the speculative-
// moves technique of [11] *inside* its cell (the §VI suggestion "we may
// therefore choose to use speculative moves during the M_l phase"):
// batches of proposals are evaluated against the frozen cell state and
// the first acceptable one is applied, preserving the chain law while a
// t-thread machine could overlap the evaluations (eq. 4).
type cellWorker struct {
	s      *model.State
	cell   geom.Rect
	margin float64
	steps  mcmc.StepSizes
	rng    *rng.RNG
	iters  int

	// specWidth > 1 enables speculative local batches.
	specWidth int
	// batches and evals measure speculative efficiency: a t-thread
	// machine's wall-clock is ~ serial-eval-time × batches/evals.
	batches, evals int64

	// entries holds private copies of every circle that can interact
	// with this cell; owned entries may be mutated, the rest are frozen.
	entries []workerEntry
	ownedAt []int // indices into entries of owned circles

	// localWeights holds the masses of the local move kinds, indexed by
	// localMoves order: shift, resize, axis-scale, rotate (the last two
	// are zero for disc workloads).
	localWeights [4]float64

	dLik, dPrior float64
	stats        mcmc.Stats

	// props is the reusable speculative-batch buffer; prop is the
	// non-speculative scratch slot. Each slot owns a MoveSpans cache, so
	// an accepted move replays its evaluation's span tables and retried
	// moves of the same owned shape skip recomputing the old table.
	props []localProposal
	prop  localProposal
}

// reset re-initialises the worker for a new local phase, keeping the
// entries/ownedAt/props capacity from earlier phases so the steady-state
// fork/join cycle allocates nothing.
func (w *cellWorker) reset(s *model.State, cell geom.Rect, margin float64, steps mcmc.StepSizes, specWidth int, localWeights [4]float64) {
	w.s = s
	w.cell = cell
	w.margin = margin
	w.steps = steps
	w.rng = nil
	w.iters = 0
	w.specWidth = specWidth
	w.batches, w.evals = 0, 0
	w.entries = w.entries[:0]
	w.ownedAt = w.ownedAt[:0]
	w.localWeights = localWeights
	w.dLik, w.dPrior = 0, 0
	w.stats = mcmc.Stats{}
	// Span-table caches are only meaningful on the field they were built
	// for; a pooled worker may be handed a different state next phase.
	w.prop.ms.Invalidate()
	for i := range w.props {
		w.props[i].ms.Invalidate()
	}
}

type workerEntry struct {
	id       int
	c        geom.Ellipse
	original geom.Ellipse
	owned    bool
}

// addOwned registers an owned circle.
func (w *cellWorker) addOwned(id int, c geom.Ellipse) {
	w.ownedAt = append(w.ownedAt, len(w.entries))
	w.entries = append(w.entries, workerEntry{id: id, c: c, original: c, owned: true})
}

// addNeighbour registers a read-only circle from outside the cell's
// ownership.
func (w *cellWorker) addNeighbour(id int, c geom.Ellipse) {
	w.entries = append(w.entries, workerEntry{id: id, c: c, original: c})
}

// overlapSum returns Σ overlapArea(c, other) over every entry except the
// one at index self.
func (w *cellWorker) overlapSum(c geom.Ellipse, self int) float64 {
	total := 0.0
	for i := range w.entries {
		if i != self {
			total += c.OverlapArea(w.entries[i].c)
		}
	}
	return total
}

// localProposal is one evaluated (but unapplied) local move. Its ms
// field caches the move's span tables between evaluation and apply (and
// across retried proposals of the same shape); the slot is reused in
// place so steady-state proposing allocates nothing.
type localProposal struct {
	move   mcmc.Move
	idx    int // entries index of the target circle
	newC   geom.Ellipse
	valid  bool
	dLik   float64
	dPrior float64
	ms     model.MoveSpans
}

// localMoves maps Pick indices over localWeights to move kinds.
var localMoves = [4]mcmc.Move{mcmc.Shift, mcmc.Resize, mcmc.AxisScale, mcmc.Rotate}

// propose draws and evaluates one local move against the worker's
// current private state, read-only. The kernels mirror the sequential
// engine's local proposals exactly (same perturbation structure, same
// symmetric-kernel cancellations), restricted to owned features.
func (w *cellWorker) propose(p *localProposal) {
	move := localMoves[w.rng.Pick(w.localWeights[:])]
	idx := w.ownedAt[w.rng.Intn(len(w.ownedAt))]
	oldC := w.entries[idx].c
	newC := oldC
	switch move {
	case mcmc.Shift:
		newC.X = oldC.X + w.rng.NormalAt(0, w.steps.ShiftStd)
		newC.Y = oldC.Y + w.rng.NormalAt(0, w.steps.ShiftStd)
	case mcmc.Resize:
		d := w.rng.NormalAt(0, w.steps.ResizeStd)
		newC.Rx = oldC.Rx + d
		newC.Ry = oldC.Ry + d
	case mcmc.AxisScale:
		d := w.rng.NormalAt(0, w.steps.AxisStd)
		if w.rng.Intn(2) == 0 {
			newC.Rx = oldC.Rx + d
		} else {
			newC.Ry = oldC.Ry + d
		}
	case mcmc.Rotate:
		newC.Theta = mcmc.WrapHalfTurn(oldC.Theta + w.rng.NormalAt(0, w.steps.RotateStd))
	}
	p.move, p.idx, p.newC = move, idx, newC
	p.valid, p.dLik, p.dPrior = false, 0, 0

	// Partition-boundary rule and prior support.
	if !w.cell.ContainsEllipse(newC, w.margin) || !w.s.P.ShapeInSupport(newC) {
		return
	}
	p.valid = true
	p.dPrior = w.s.P.LogShapePrior(newC) - w.s.P.LogShapePrior(oldC)
	p.dPrior -= w.s.P.OverlapPenalty *
		(w.overlapSum(newC, idx) - w.overlapSum(oldC, idx))
	// Field kernel: the occupancy skip prices the move, and the span
	// tables land in p.ms for the apply. Retried moves of the same owned
	// shape reuse the cached old-shape table.
	p.dLik = w.s.F.LikDeltaMovePrepared(oldC, newC, &p.ms)
}

// accepts applies the Metropolis test to an evaluated proposal.
func (w *cellWorker) accepts(p *localProposal) bool {
	if !p.valid {
		return false
	}
	logAlpha := p.dLik + p.dPrior
	return logAlpha >= 0 || math.Log(w.rng.Positive()) < logAlpha
}

// apply commits an accepted proposal to the shared coverage buffer and
// the worker's private circle copies, replaying the span tables its
// evaluation prepared.
func (w *cellWorker) apply(p *localProposal) {
	entry := &w.entries[p.idx]
	w.s.F.CoverMovePrepared(entry.c, p.newC, &p.ms)
	entry.c = p.newC
	w.dLik += p.dLik
	w.dPrior += p.dPrior
	w.stats.Accepted[p.move]++
}

// run performs the allocated iterations.
func (w *cellWorker) run() {
	if len(w.ownedAt) == 0 {
		// Nothing modifiable: every allocated iteration is an invalid
		// (auto-rejected) local proposal, as the sequential chain would
		// record for unproposable moves.
		w.stats.Proposed[mcmc.Shift] += int64(w.iters)
		w.stats.Invalid[mcmc.Shift] += int64(w.iters)
		return
	}
	if w.specWidth > 1 {
		w.runSpeculative()
		return
	}
	p := &w.prop
	for it := 0; it < w.iters; it++ {
		w.propose(p)
		w.stats.Proposed[p.move]++
		if !p.valid {
			w.stats.Invalid[p.move]++
			continue
		}
		if w.accepts(p) {
			w.apply(p)
		}
	}
}

// runSpeculative consumes the allocated iterations in speculative
// batches: all proposals of a batch are evaluated against the frozen
// state, then tested in order; at most the first acceptable one is
// applied and the batch consumed up to that point.
func (w *cellWorker) runSpeculative() {
	if cap(w.props) < w.specWidth {
		// Full-length slots so each keeps its MoveSpans backing array
		// across batches.
		w.props = make([]localProposal, w.specWidth)
	}
	consumed := 0
	for consumed < w.iters {
		width := w.specWidth
		if rem := w.iters - consumed; rem < width {
			width = rem
		}
		props := w.props[:width]
		for i := range props {
			w.propose(&props[i])
		}
		w.batches++
		w.evals += int64(width)
		for i := range props {
			p := &props[i]
			w.stats.Proposed[p.move]++
			consumed++
			if !p.valid {
				w.stats.Invalid[p.move]++
				continue
			}
			if w.accepts(p) {
				w.apply(p)
				break
			}
		}
	}
}

// forEachChanged calls fn for every owned circle whose value differs
// from the phase-start snapshot, without allocating.
func (w *cellWorker) forEachChanged(fn func(id int, c geom.Ellipse)) {
	for _, i := range w.ownedAt {
		e := &w.entries[i]
		if e.c != e.original {
			fn(e.id, e.c)
		}
	}
}
