// Package core implements the paper's primary contribution: periodic
// partitioning (§V) — alternating phases of sequential global moves and
// partition-parallel local moves over a randomly offset grid — together
// with the runtime model of §VI (eqs. 2–4).
package core

import "repro/internal/spec"

// PredictedRuntime evaluates eq. 2: the time to perform N iterations with
// s partitions in the M_l phase,
//
//	T = N·q_g·τ_g + N·(1−q_g)·τ_l / s,
//
// assuming negligible parallelisation overhead. τ_g and τ_l are the mean
// seconds per global and local move.
func PredictedRuntime(n float64, qg, taug, taul float64, s int) float64 {
	if s < 1 {
		s = 1
	}
	return n*qg*taug + n*(1-qg)*taul/float64(s)
}

// PredictedRuntimeFraction returns eq. 2 normalised by the sequential
// runtime N·(q_g·τ_g + (1−q_g)·τ_l) — the y-axis of fig. 1.
func PredictedRuntimeFraction(qg, taug, taul float64, s int) float64 {
	seq := qg*taug + (1-qg)*taul
	if seq == 0 {
		return 0
	}
	return PredictedRuntime(1, qg, taug, taul, s) / seq
}

// PredictedRuntimeSpec evaluates eq. 3: periodic partitioning with
// speculative execution of the global phases on n cores,
//
//	T = N·q_g·τ_g · (1−p_gr)/(1−p_gr^n) + N·(1−q_g)·τ_l / s,
//
// where p_gr is the probability a global move is rejected.
func PredictedRuntimeSpec(n float64, qg, taug, taul, pgr float64, s, nspec int) float64 {
	if s < 1 {
		s = 1
	}
	return n*qg*taug/spec.Speedup(pgr, nspec) + n*(1-qg)*taul/float64(s)
}

// PredictedRuntimeCluster evaluates eq. 4: a cluster of s machines, each
// with t threads, running speculative moves inside both phases,
//
//	T = N·q_g·τ_g·(1−p_gr)/(1−p_gr^t) + N·(1−q_g)·τ_l·(1−p_lr)/(s·(1−p_lr^t)).
func PredictedRuntimeCluster(n float64, qg, taug, taul, pgr, plr float64, s, t int) float64 {
	if s < 1 {
		s = 1
	}
	return n*qg*taug/spec.Speedup(pgr, t) +
		n*(1-qg)*taul/(float64(s)*spec.Speedup(plr, t))
}

// Fig1Series generates one curve of fig. 1: predicted runtime fraction
// versus q_g for s processes, with τ_g = τ_l as in the figure. Points are
// sampled at the given q_g values.
func Fig1Series(s int, qgs []float64) []float64 {
	out := make([]float64, len(qgs))
	for i, qg := range qgs {
		out[i] = PredictedRuntimeFraction(qg, 1, 1, s)
	}
	return out
}
