package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Options configures a periodic-partitioning engine.
type Options struct {
	// LocalPhaseIters is i, the number of M_l iterations performed per
	// local phase (spread across all partitions). The matching global
	// phase length i·q_g/(1−q_g) keeps the long-run move mixture equal
	// to the sequential sampler's (§V).
	LocalPhaseIters int

	// GridXM / GridYM are the partition grid spacings x_m, y_m. Values
	// larger than the image give the four-quadrant single-point layout
	// of the fig. 2 experiment.
	GridXM, GridYM float64

	// Workers bounds the goroutines used for a local phase. Partitions
	// beyond Workers are dynamically load-balanced (§VI's task
	// scheduler).
	Workers int

	// SpecWidth > 1 enables speculative moves during global phases with
	// that many concurrent proposal evaluations (eq. 3).
	SpecWidth int

	// SpecAdaptive enables speculative global moves with the width picked
	// adaptively from the windowed rejection rate and measured per-batch
	// costs (see spec.Config). It overrides SpecWidth.
	SpecAdaptive bool

	// SpecMaxWidth caps the adaptive width search; 0 means
	// spec.DefaultMaxWidth. Ignored unless SpecAdaptive is set.
	SpecMaxWidth int

	// LocalSpecWidth > 1 additionally runs speculative batches *inside*
	// each partition worker (the §VI suggestion for spare threads,
	// eq. 4). With SimulateParallel the per-cell cost is credited with
	// the measured batches/evaluations ratio.
	LocalSpecWidth int

	// Timer, when non-nil, receives per-phase wall-clock measurements
	// under the names "global" and "local".
	Timer *trace.PhaseTimer

	// SimulateParallel runs the local-phase cells sequentially, times
	// each cell, and accumulates the *makespan* a Workers-way machine
	// would achieve into Engine.SimLocalSeconds. Use it to evaluate
	// parallel runtimes on hosts with fewer cores than the experiment
	// models (this container has one CPU; see DESIGN.md §7). Chain
	// results are identical either way — scheduling never affects the
	// arithmetic.
	SimulateParallel bool

	// OnBarrier, when non-nil, observes the chain after every completed
	// local phase (fork/join barrier). It runs on the goroutine driving
	// Run, must not mutate the engine, and has no effect on chain
	// results — the streaming-progress layer of pkg/parmcmc hangs off
	// it.
	OnBarrier func(BarrierInfo)
}

// BarrierInfo is a read-only snapshot delivered to Options.OnBarrier at
// each local-phase barrier.
type BarrierInfo struct {
	Barriers int64
	Iter     int64
	LogPost  float64
	Circles  int
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.LocalPhaseIters < 1 {
		return fmt.Errorf("core: LocalPhaseIters must be >= 1")
	}
	if o.GridXM <= 0 || o.GridYM <= 0 {
		return fmt.Errorf("core: grid spacings must be positive")
	}
	if o.Workers < 1 {
		return fmt.Errorf("core: Workers must be >= 1")
	}
	if o.SpecWidth < 0 {
		return fmt.Errorf("core: SpecWidth must be >= 0")
	}
	if o.SpecMaxWidth < 0 {
		return fmt.Errorf("core: SpecMaxWidth must be >= 0")
	}
	if o.LocalSpecWidth < 0 {
		return fmt.Errorf("core: LocalSpecWidth must be >= 0")
	}
	return nil
}

// Engine drives a host mcmc.Engine with the periodic-partitioning
// schedule of §V: alternating sequential global phases and partition-
// parallel local phases over a freshly offset grid.
type Engine struct {
	E   *mcmc.Engine
	Opt Options

	// Barriers counts completed local phases (fork/join cycles); the
	// architecture profiles charge their communication overhead per
	// barrier.
	Barriers int64

	// SimLocalSeconds accumulates the simulated parallel wall-clock of
	// the local phases when Options.SimulateParallel is set: the LPT
	// makespan of the measured per-cell serial times on Workers bins.
	SimLocalSeconds float64

	qg          float64
	globalMoves []mcmc.Move
	exec        *spec.Executor
	margin      float64

	// gang is the persistent local-phase worker group, created on the
	// first parallel phase. Reusing one goroutine set across fork/join
	// cycles replaces ForEach's per-phase goroutine+channel setup with a
	// single barrier release — the rest of the phase (grid draw,
	// ownership assignment, merge) is inherently serial chain work, so
	// the dispatch was the only removable serialization at the barrier.
	gang *sched.Gang

	// globalWeights mirrors the host weights restricted to globalMoves,
	// computed once so global phases draw kinds without allocating.
	globalWeights []float64

	// Reusable per-phase scratch: cell rectangles, the configuration
	// snapshot, the worker pool (entries capacity survives across phases
	// — this is the snapshot/rollback buffer reuse), iteration-
	// allocation scratch and the active-worker/cost lists. Local phases
	// are fork/join, so one set per engine suffices.
	cellsBuf  []geom.Rect
	snapBuf   []model.IDCircle
	workers   []*cellWorker
	countsBuf []int
	remsBuf   []float64
	activeBuf []*cellWorker
	costsBuf  []float64
}

// NewEngine wraps the host engine. The host's move weights determine q_g
// and the per-phase move mixtures.
func NewEngine(host *mcmc.Engine, opt Options) (*Engine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	qg := host.W.QGlobal()
	if qg >= 1 {
		return nil, fmt.Errorf("core: all moves are global (q_g = 1); periodic partitioning needs local moves")
	}
	wNorm := host.W.Normalised()
	var globals []mcmc.Move
	for m := mcmc.Move(0); m < mcmc.NumMoves; m++ {
		if m.IsGlobal() && wNorm[m] > 0 {
			globals = append(globals, m)
		}
	}
	weights := make([]float64, len(globals))
	for i, m := range globals {
		weights[i] = host.W[m]
	}
	pe := &Engine{
		E:             host,
		Opt:           opt,
		qg:            qg,
		globalMoves:   globals,
		globalWeights: weights,
		margin:        host.S.P.LocalityMargin(),
	}
	if (opt.SpecAdaptive || opt.SpecWidth > 1) && len(globals) > 0 {
		cfg := spec.Config{
			Workers:  opt.Workers,
			Simulate: opt.SimulateParallel,
		}
		if opt.SpecAdaptive {
			cfg.MaxWidth = opt.SpecMaxWidth
		} else {
			cfg.Width = opt.SpecWidth
		}
		pe.exec = spec.NewExecutorOpts(host, cfg, globals)
	}
	return pe, nil
}

// Close releases the engine's persistent worker goroutines (the local-
// phase gang and the speculative executor's eval lanes). The engine must
// not be used afterwards; Close is idempotent.
func (pe *Engine) Close() {
	if pe.exec != nil {
		pe.exec.Close()
	}
	if pe.gang != nil {
		pe.gang.Close()
		pe.gang = nil
	}
}

// QGlobal returns the chain's global-move probability q_g.
func (pe *Engine) QGlobal() float64 { return pe.qg }

// Executor returns the speculative executor driving global phases, or
// nil when speculation is disabled. Checkpointing captures its batch
// counters; telemetry reads its current width and measured speedup.
func (pe *Engine) Executor() *spec.Executor { return pe.exec }

// GlobalPhaseIters returns the global phase length paired with the
// configured local phase length: round(i·q_g/(1−q_g)).
func (pe *Engine) GlobalPhaseIters() int {
	return int(math.Round(float64(pe.Opt.LocalPhaseIters) * pe.qg / (1 - pe.qg)))
}

// Run advances the chain by total iterations using the alternating
// schedule, clamping the final phases so the count is exact.
func (pe *Engine) Run(total int) {
	g := pe.GlobalPhaseIters()
	remaining := total
	for remaining > 0 {
		n := minI(g, remaining)
		if n > 0 && len(pe.globalMoves) > 0 {
			pe.globalPhase(n)
			remaining -= n
		}
		if remaining <= 0 {
			break
		}
		n = minI(pe.Opt.LocalPhaseIters, remaining)
		pe.localPhase(n)
		remaining -= n
		if g == 0 && len(pe.globalMoves) > 0 {
			// Degenerate pairing (q_g rounds to zero global iterations):
			// still alternate so the schedule cannot starve.
			g = 1
		}
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// globalPhase performs n sequential (or speculative) global-move
// iterations on the full image.
func (pe *Engine) globalPhase(n int) {
	start := time.Now()
	if pe.exec != nil {
		pe.exec.RunN(n)
	} else {
		for i := 0; i < n; i++ {
			m := pe.globalMoves[pe.E.R.Pick(pe.globalWeights)]
			pe.E.Decide(pe.E.Propose(m))
		}
	}
	if pe.Opt.Timer != nil {
		pe.Opt.Timer.Add("global", time.Since(start))
	}
}

// localPhase partitions the image with a freshly offset grid and runs n
// local iterations spread over the partitions in parallel.
func (pe *Engine) localPhase(n int) {
	start := time.Now()
	s := pe.E.S
	grid := geom.NewGrid(
		s.Bounds(), pe.Opt.GridXM, pe.Opt.GridYM,
		pe.E.R.Uniform(0, pe.Opt.GridXM), pe.E.R.Uniform(0, pe.Opt.GridYM),
	)
	pe.cellsBuf = grid.AppendCells(pe.cellsBuf[:0])
	cells := pe.cellsBuf
	// Reuse pooled workers: their entries/ownedAt capacity is the
	// per-phase snapshot buffer, retained across fork/join cycles.
	for len(pe.workers) < len(cells) {
		pe.workers = append(pe.workers, &cellWorker{})
	}
	workers := pe.workers[:len(cells)]
	wNorm := pe.E.W.Normalised()
	localWeights := [4]float64{
		wNorm[mcmc.Shift], wNorm[mcmc.Resize],
		wNorm[mcmc.AxisScale], wNorm[mcmc.Rotate],
	}
	for i, cell := range cells {
		workers[i].reset(s, cell, pe.margin, pe.E.Steps, pe.Opt.LocalSpecWidth, localWeights)
	}

	// Assign ownership and read-only neighbour snapshots from a pooled
	// copy of the live configuration. A circle is owned by the cell
	// containing its centre iff it is modifiable there (fully inside
	// with the locality margin); every other (cell, circle) pair whose
	// regions could interact gets a frozen copy.
	pe.snapBuf = s.AppendSnapshot(pe.snapBuf[:0])
	for _, sc := range pe.snapBuf {
		id, c := sc.ID, sc.C
		ownerCell := -1
		if cell, ok := grid.CellAt(c.X, c.Y); ok && cell.ContainsEllipse(c, pe.margin) {
			for i := range cells {
				if cells[i] == cell {
					ownerCell = i
					break
				}
			}
		}
		reach := c.Bounds().Expand(s.P.MaxRadius)
		for i := range cells {
			switch {
			case i == ownerCell:
				workers[i].addOwned(id, c)
			case cells[i].IntersectsRect(reach):
				workers[i].addNeighbour(id, c)
			}
		}
	}

	// Allocate iterations proportionally to each cell's modifiable
	// feature count (§V), using largest-remainder rounding so the total
	// is exact.
	if cap(pe.countsBuf) < len(cells) {
		pe.countsBuf = make([]int, len(cells))
	}
	counts := pe.countsBuf[:len(cells)]
	totalModifiable := 0
	for i, w := range workers {
		counts[i] = len(w.ownedAt)
		totalModifiable += counts[i]
	}
	if totalModifiable == 0 {
		// No modifiable features anywhere: the sequential chain would
		// record n unproposable local iterations.
		workers[0].iters = n
		workers[0].run()
		pe.mergeWorkers(workers[:1])
		pe.finishLocal(start)
		return
	}
	pe.remsBuf = assignLargestRemainder(n, counts, workers, pe.remsBuf)

	// Deterministic per-cell RNG streams, independent of scheduling.
	for _, w := range workers {
		w.rng = pe.E.R.Split()
	}

	// Run the non-empty cells on the worker pool ("more partitions than
	// processors" is reclaimed by the shared-queue scheduler, §VI).
	active := pe.activeBuf[:0]
	for _, w := range workers {
		if w.iters > 0 {
			active = append(active, w)
		}
	}
	pe.activeBuf = active
	if pe.Opt.SimulateParallel {
		// Sequential execution with per-cell timing; the parallel wall
		// clock is the scheduler's makespan over the measured costs.
		if cap(pe.costsBuf) < len(active) {
			pe.costsBuf = make([]float64, len(active))
		}
		costs := pe.costsBuf[:len(active)]
		for i, w := range active {
			t0 := time.Now()
			w.run()
			costs[i] = time.Since(t0).Seconds()
			if w.evals > 0 {
				// Speculative batches: a LocalSpecWidth-thread machine
				// overlaps each batch's evaluations.
				costs[i] *= float64(w.batches) / float64(w.evals)
			}
		}
		pe.SimLocalSeconds += sched.Makespan(costs, sched.LPTAssign(costs, pe.Opt.Workers))
	} else {
		// Concurrent workers write disjoint pixels but share occupancy
		// blocks that straddle cell boundaries: switch the field's
		// counter updates to atomics for the phase.
		s.F.SetParallel(true)
		if pe.gang == nil {
			pe.gang = sched.NewGang(pe.Opt.Workers)
		}
		pe.gang.Run(len(active), func(_, i int) { active[i].run() })
		s.F.SetParallel(false)
	}

	pe.mergeWorkers(active)
	pe.finishLocal(start)
}

func (pe *Engine) finishLocal(start time.Time) {
	pe.Barriers++
	if pe.Opt.Timer != nil {
		pe.Opt.Timer.Add("local", time.Since(start))
	}
	if pe.Opt.OnBarrier != nil {
		pe.Opt.OnBarrier(BarrierInfo{
			Barriers: pe.Barriers,
			Iter:     pe.E.Iter,
			LogPost:  pe.E.S.LogPost(),
			Circles:  pe.E.S.Cfg.Len(),
		})
	}
}

// assignLargestRemainder distributes n iterations over workers in
// proportion to counts (largest-remainder rounding; ties break by index
// for determinism). remsBuf is reusable scratch; the (possibly grown)
// buffer is returned so the caller can pool it.
func assignLargestRemainder(n int, counts []int, workers []*cellWorker, remsBuf []float64) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if cap(remsBuf) < len(counts) {
		remsBuf = make([]float64, len(counts))
	}
	rems := remsBuf[:len(counts)]
	assigned := 0
	for i, c := range counts {
		exact := float64(n) * float64(c) / float64(total)
		base := int(exact)
		workers[i].iters = base
		assigned += base
		rems[i] = exact - float64(base)
	}
	for assigned < n {
		best := 0
		for j := 1; j < len(rems); j++ {
			if rems[j] > rems[best] {
				best = j
			}
		}
		workers[best].iters++
		rems[best] = -1
		assigned++
	}
	return remsBuf
}

// mergeWorkers folds every worker's results back into the shared state:
// circle positions, spatial index, cached posterior and statistics.
func (pe *Engine) mergeWorkers(workers []*cellWorker) {
	for _, w := range workers {
		w.forEachChanged(func(id int, c geom.Ellipse) {
			pe.E.S.CommitMoved(id, c)
		})
		pe.E.S.AddDeltas(w.dLik, w.dPrior)
		pe.E.Stats.Add(w.stats)
		pe.E.Iter += int64(w.iters)
	}
	pe.E.NotifyExternalIterations()
}
