package core

import (
	"math"
	"testing"

	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
)

// Local speculative batches (eq. 4's per-machine threads) must keep the
// iteration accounting exact and the caches consistent.
func TestLocalSpecExactCountAndConsistency(t *testing.T) {
	host, _ := testHost(t, 20, 96, 96, 6)
	opts := defaultOpts(96, 96)
	opts.LocalSpecWidth = 4
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(12000)
	if host.Iter != 12000 {
		t.Fatalf("Iter = %d, want exactly 12000", host.Iter)
	}
	likErr, priorErr, coverOK := host.S.CheckConsistency()
	if likErr > 1e-6 || priorErr > 1e-6 || !coverOK {
		t.Fatalf("local speculation corrupted state: %v %v %v", likErr, priorErr, coverOK)
	}
}

// The chain law must be preserved: prior recovery through local
// speculative batches.
func TestLocalSpecPriorRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := model.DefaultParams(5, 8)
	p.OverlapPenalty = 0
	im := imaging.New(128, 128)
	im.Fill((p.Foreground + p.Background) / 2)
	s, err := model.NewState(im, p)
	if err != nil {
		t.Fatal(err)
	}
	host := mcmc.MustNew(s, rng.New(929), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(8))
	pe, err := NewEngine(host, Options{
		LocalPhaseIters: 120, GridXM: 64, GridYM: 64, Workers: 2, LocalSpecWidth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(20000)
	sum := 0.0
	const samples = 2000
	for i := 0; i < samples; i++ {
		pe.Run(60)
		sum += float64(s.Cfg.Len())
	}
	if mean := sum / samples; math.Abs(mean-5) > 0.55 {
		t.Fatalf("local-spec prior count mean = %v, want ~5", mean)
	}
}

// Detection quality must be unaffected by local speculation.
func TestLocalSpecFindsCircles(t *testing.T) {
	host, scene := testHost(t, 21, 128, 128, 6)
	opts := defaultOpts(128, 128)
	opts.LocalSpecWidth = 4
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(50000)
	found := host.S.Cfg.Circles()
	matched := 0
	for _, truth := range scene.Truth {
		for _, f := range found {
			if truth.Dist(f) < 4 {
				matched++
				break
			}
		}
	}
	if matched < len(scene.Truth)-1 {
		t.Fatalf("matched %d/%d circles", matched, len(scene.Truth))
	}
}

// The simulated-parallel credit must reflect the batches/evals ratio:
// with SimulateParallel and LocalSpecWidth, the accumulated simulated
// time must be strictly below a plain SimulateParallel run's (the chain
// consumes the same iterations but each batch's evaluations overlap).
func TestLocalSpecSimulatedCredit(t *testing.T) {
	run := func(specWidth int) float64 {
		host, _ := testHost(t, 22, 128, 128, 10)
		opts := defaultOpts(128, 128)
		opts.SimulateParallel = true
		opts.LocalSpecWidth = specWidth
		pe, err := NewEngine(host, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Burn in sequentially first so rejection rates are high and
		// speculation has something to recover.
		host.RunN(20000)
		pe.Run(30000)
		return pe.SimLocalSeconds
	}
	plain := run(0)
	withSpec := run(4)
	if withSpec >= plain {
		t.Fatalf("local speculation did not reduce simulated time: %v >= %v", withSpec, plain)
	}
}

func TestLocalSpecWidthValidation(t *testing.T) {
	opts := defaultOpts(64, 64)
	opts.LocalSpecWidth = -1
	if err := opts.Validate(); err == nil {
		t.Fatal("negative LocalSpecWidth accepted")
	}
}
