package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/trace"
)

func testHost(t *testing.T, seed uint64, w, h, count int) (*mcmc.Engine, *imaging.Scene) {
	t.Helper()
	r := rng.New(seed)
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: w, H: h, Count: count, MeanRadius: 8, RadiusStdDev: 1,
		Noise: 0.06, MinSeparation: 1.05,
	}, r)
	s, err := model.NewState(scene.Image, model.DefaultParams(float64(count), 8))
	if err != nil {
		t.Fatal(err)
	}
	return mcmc.MustNew(s, rng.New(seed+1000), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(8)), scene
}

func defaultOpts(w, h int) Options {
	return Options{
		LocalPhaseIters: 300,
		GridXM:          float64(w) / 2,
		GridYM:          float64(h) / 2,
		Workers:         4,
	}
}

func TestTheoryFig1Endpoints(t *testing.T) {
	// q_g = 0: everything parallelises, fraction = 1/s.
	for _, s := range []int{2, 4, 8, 16} {
		if got := PredictedRuntimeFraction(0, 1, 1, s); math.Abs(got-1/float64(s)) > 1e-12 {
			t.Fatalf("s=%d, qg=0: %v", s, got)
		}
		// q_g = 1: nothing parallelises.
		if got := PredictedRuntimeFraction(1, 1, 1, s); math.Abs(got-1) > 1e-12 {
			t.Fatalf("s=%d, qg=1: %v", s, got)
		}
	}
}

func TestTheoryFig1Monotone(t *testing.T) {
	// More processes never hurt; higher q_g never helps (τ_g = τ_l).
	qgs := []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 1}
	prev := Fig1Series(2, qgs)
	for _, s := range []int{4, 8, 16} {
		cur := Fig1Series(s, qgs)
		for i := range qgs {
			if cur[i] > prev[i]+1e-12 {
				t.Fatalf("s=%d worse than fewer processes at qg=%v", s, qgs[i])
			}
		}
		prev = cur
	}
	one := Fig1Series(4, qgs)
	for i := 1; i < len(one); i++ {
		if one[i] < one[i-1]-1e-12 {
			t.Fatalf("fraction decreased with q_g at %v", qgs[i])
		}
	}
}

func TestTheorySpecBeatsPlain(t *testing.T) {
	plain := PredictedRuntime(1e6, 0.4, 1e-6, 1e-6, 4)
	withSpec := PredictedRuntimeSpec(1e6, 0.4, 1e-6, 1e-6, 0.75, 4, 4)
	if withSpec >= plain {
		t.Fatalf("speculation did not help: %v >= %v", withSpec, plain)
	}
	cluster := PredictedRuntimeCluster(1e6, 0.4, 1e-6, 1e-6, 0.75, 0.75, 4, 4)
	if cluster >= withSpec {
		t.Fatalf("cluster model should be fastest: %v >= %v", cluster, withSpec)
	}
	// Degenerate s < 1 clamps.
	if PredictedRuntime(1, 0.4, 1, 1, 0) != PredictedRuntime(1, 0.4, 1, 1, 1) {
		t.Fatal("s<1 not clamped")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := defaultOpts(64, 64).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{GridXM: 1, GridYM: 1, Workers: 1},          // no iters
		{LocalPhaseIters: 1, GridYM: 1, Workers: 1}, // no XM
		{LocalPhaseIters: 1, GridXM: 1, GridYM: 1},  // no workers
		{LocalPhaseIters: 1, GridXM: 1, GridYM: 1, Workers: 1, SpecWidth: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewEngineRejectsAllGlobal(t *testing.T) {
	host, _ := testHost(t, 1, 64, 64, 3)
	host.W = mcmc.Weights{mcmc.Birth: 1, mcmc.Death: 1}
	if _, err := NewEngine(host, defaultOpts(64, 64)); err == nil {
		t.Fatal("q_g = 1 accepted")
	}
}

func TestGlobalPhaseIters(t *testing.T) {
	host, _ := testHost(t, 2, 64, 64, 3)
	pe, err := NewEngine(host, defaultOpts(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	// q_g = 0.4: global phase = i·0.4/0.6 = 200 for i = 300.
	if g := pe.GlobalPhaseIters(); g != 200 {
		t.Fatalf("global phase = %d, want 200", g)
	}
	if math.Abs(pe.QGlobal()-0.4) > 1e-12 {
		t.Fatalf("QGlobal = %v", pe.QGlobal())
	}
}

func TestRunExactIterationCount(t *testing.T) {
	host, _ := testHost(t, 3, 96, 96, 4)
	pe, err := NewEngine(host, defaultOpts(96, 96))
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(10000)
	if host.Iter != 10000 {
		t.Fatalf("Iter = %d, want exactly 10000", host.Iter)
	}
	if pe.Barriers == 0 {
		t.Fatal("no local phases ran")
	}
}

// The load-bearing invariant: after parallel phases the incrementally
// maintained posterior and coverage equal a from-scratch recomputation.
func TestPeriodicStateConsistency(t *testing.T) {
	host, _ := testHost(t, 4, 128, 128, 8)
	opts := defaultOpts(128, 128)
	opts.GridXM, opts.GridYM = 48, 48 // multiple cells
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		pe.Run(3000)
		likErr, priorErr, coverOK := host.S.CheckConsistency()
		if likErr > 1e-6 || priorErr > 1e-6 || !coverOK {
			t.Fatalf("round %d: parallel phases corrupted state: lik=%v prior=%v cover=%v",
				round, likErr, priorErr, coverOK)
		}
	}
}

// Results must not depend on the number of worker goroutines: per-cell
// RNG streams and ordered merges make the schedule deterministic.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]geom.Ellipse, float64) {
		host, _ := testHost(t, 5, 96, 96, 6)
		opts := defaultOpts(96, 96)
		opts.GridXM, opts.GridYM = 40, 40
		opts.Workers = workers
		pe, err := NewEngine(host, opts)
		if err != nil {
			t.Fatal(err)
		}
		pe.Run(20000)
		return host.S.Cfg.Circles(), host.S.LogPost()
	}
	c1, lp1 := run(1)
	c2, lp2 := run(8)
	if lp1 != lp2 {
		t.Fatalf("posterior differs across worker counts: %v vs %v", lp1, lp2)
	}
	if len(c1) != len(c2) {
		t.Fatalf("configuration size differs: %d vs %d", len(c1), len(c2))
	}
}

// With speculation enabled the iteration count must stay exact and the
// state consistent.
func TestPeriodicWithSpeculation(t *testing.T) {
	host, _ := testHost(t, 6, 96, 96, 5)
	opts := defaultOpts(96, 96)
	opts.SpecWidth = 4
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(8000)
	if host.Iter != 8000 {
		t.Fatalf("Iter = %d", host.Iter)
	}
	likErr, priorErr, coverOK := host.S.CheckConsistency()
	if likErr > 1e-6 || priorErr > 1e-6 || !coverOK {
		t.Fatal("speculative periodic run corrupted state")
	}
}

// Sampling the prior through the periodic engine must still recover the
// Poisson count mean — the statistical-validity claim of §V.
func TestPeriodicPriorRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := model.DefaultParams(5, 8)
	p.OverlapPenalty = 0
	im := imaging.New(128, 128)
	im.Fill((p.Foreground + p.Background) / 2)
	s, err := model.NewState(im, p)
	if err != nil {
		t.Fatal(err)
	}
	host := mcmc.MustNew(s, rng.New(4243), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(8))
	opts := Options{LocalPhaseIters: 120, GridXM: 64, GridYM: 64, Workers: 4}
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(20000)
	sum, sumSq := 0.0, 0.0
	const samples = 2500
	for i := 0; i < samples; i++ {
		pe.Run(60)
		n := float64(s.Cfg.Len())
		sum += n
		sumSq += n * n
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if math.Abs(mean-5) > 0.5 {
		t.Fatalf("periodic prior count mean = %v, want ~5", mean)
	}
	if variance < 2.5 || variance > 9 {
		t.Fatalf("periodic prior count variance = %v, want ~5", variance)
	}
}

// The engine must still find the artifacts (end-to-end quality).
func TestPeriodicFindsCircles(t *testing.T) {
	host, scene := testHost(t, 7, 128, 128, 6)
	opts := defaultOpts(128, 128)
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(50000)
	found := host.S.Cfg.Circles()
	matched := 0
	for _, truth := range scene.Truth {
		for _, f := range found {
			if truth.Dist(f) < 4 {
				matched++
				break
			}
		}
	}
	if matched < len(scene.Truth)-1 {
		t.Fatalf("matched %d/%d circles (found %d)", matched, len(scene.Truth), len(found))
	}
}

// Boundary rule: with a pathological grid no eligible features exist, and
// the engine must degrade gracefully (local iterations become invalid
// proposals) rather than hang or corrupt state.
func TestLocalPhaseNoModifiableFeatures(t *testing.T) {
	host, _ := testHost(t, 8, 64, 64, 4)
	// 8-pixel cells with margin > 15: nothing is ever eligible.
	opts := Options{LocalPhaseIters: 100, GridXM: 8, GridYM: 8, Workers: 2}
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(2000)
	if host.Iter != 2000 {
		t.Fatalf("Iter = %d", host.Iter)
	}
	if host.Stats.Invalid[mcmc.Shift] == 0 {
		t.Fatal("expected invalid local proposals with no eligible features")
	}
	likErr, priorErr, coverOK := host.S.CheckConsistency()
	if likErr > 1e-6 || priorErr > 1e-6 || !coverOK {
		t.Fatal("state corrupted")
	}
}

func TestTimerRecordsPhases(t *testing.T) {
	host, _ := testHost(t, 9, 64, 64, 3)
	opts := defaultOpts(64, 64)
	opts.Timer = trace.NewPhaseTimer()
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(3000)
	if opts.Timer.Count("global") == 0 || opts.Timer.Count("local") == 0 {
		t.Fatalf("phases not timed: global=%d local=%d",
			opts.Timer.Count("global"), opts.Timer.Count("local"))
	}
}

func TestAssignLargestRemainder(t *testing.T) {
	mk := func(n int) []*cellWorker {
		ws := make([]*cellWorker, n)
		for i := range ws {
			ws[i] = &cellWorker{}
		}
		return ws
	}
	ws := mk(3)
	assignLargestRemainder(10, []int{1, 1, 1}, ws, nil)
	total := 0
	for _, w := range ws {
		total += w.iters
	}
	if total != 10 {
		t.Fatalf("allocated %d, want 10", total)
	}
	// Proportionality: counts 3:1 should split ~75/25.
	ws = mk(2)
	assignLargestRemainder(100, []int{3, 1}, ws, nil)
	if ws[0].iters != 75 || ws[1].iters != 25 {
		t.Fatalf("allocation = %d/%d, want 75/25", ws[0].iters, ws[1].iters)
	}
	// Zero-count cells get nothing.
	ws = mk(3)
	assignLargestRemainder(7, []int{0, 5, 0}, ws, nil)
	if ws[0].iters != 0 || ws[1].iters != 7 || ws[2].iters != 0 {
		t.Fatalf("allocation = %d/%d/%d", ws[0].iters, ws[1].iters, ws[2].iters)
	}
}

// Every circle an owning worker moves must stay inside its cell with the
// locality margin — verified against the grid after a run.
func TestOwnedCirclesStayEligible(t *testing.T) {
	host, _ := testHost(t, 10, 96, 96, 6)
	s := host.S
	// One fixed grid (offset consumed deterministically inside Run), so
	// reconstruct eligibility conservatively: every circle must lie
	// fully inside the image — the weakest containment the boundary
	// rule implies — and the state must be consistent.
	opts := defaultOpts(96, 96)
	pe, err := NewEngine(host, opts)
	if err != nil {
		t.Fatal(err)
	}
	pe.Run(10000)
	s.Cfg.ForEach(func(_ int, c geom.Ellipse) {
		if c.X < 0 || c.X >= 96 || c.Y < 0 || c.Y >= 96 {
			t.Fatalf("circle escaped image: %+v", c)
		}
	})
}
