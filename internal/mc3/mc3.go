// Package mc3 implements Metropolis-coupled MCMC — (MC)³ — the
// conventional parallel-MCMC technique reviewed in §IV: several chains
// run simultaneously, all but the first "heated" so they traverse the
// state space more freely; periodically two adjacent chains propose to
// swap states under a modified Metropolis–Hastings test. Only the cold
// chain is ever sampled. Where periodic partitioning distributes the
// *workload*, (MC)³ spends extra processors improving the *rate of
// convergence* — the two are complementary, which is why the paper
// positions it as related work rather than a competitor.
package mc3

import (
	"fmt"
	"math"

	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Options configures a coupled-chain sampler.
type Options struct {
	// Chains is the total number of chains including the cold one.
	Chains int
	// HeatStep is Δ in the standard incremental-heating ladder
	// β_k = 1/(1 + Δ·k); MrBayes uses Δ ≈ 0.1–0.5.
	HeatStep float64
	// SwapEvery is the number of iterations each chain advances between
	// swap attempts.
	SwapEvery int
	// Workers bounds the goroutines running chains concurrently.
	Workers int
	// ScreenMinArea is forwarded to every chain's engine (see
	// mcmc.Engine.ScreenMinArea); 0 disables coarse-to-fine screening.
	ScreenMinArea float64
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Chains < 2 {
		return fmt.Errorf("mc3: need at least 2 chains")
	}
	if o.HeatStep <= 0 {
		return fmt.Errorf("mc3: HeatStep must be positive")
	}
	if o.SwapEvery < 1 {
		return fmt.Errorf("mc3: SwapEvery must be >= 1")
	}
	if o.Workers < 1 {
		return fmt.Errorf("mc3: Workers must be >= 1")
	}
	return nil
}

// DefaultOptions returns a 4-chain sampler with the MrBayes-style ladder.
func DefaultOptions() Options {
	return Options{Chains: 4, HeatStep: 0.3, SwapEvery: 200, Workers: 4}
}

// Sampler runs coupled chains over independent states of the same image.
type Sampler struct {
	Opt     Options
	Engines []*mcmc.Engine // Engines[0] is the cold chain (β = 1)
	Betas   []float64

	SwapProposed int64
	SwapAccepted int64

	// OnSwap, when non-nil, observes every swap attempt. It runs on the
	// goroutine driving Run, must not mutate the sampler, and has no
	// effect on chain results — the streaming-progress layer of
	// pkg/parmcmc hangs off it.
	OnSwap func(SwapInfo)

	r *rng.RNG
}

// SwapInfo is a read-only snapshot delivered to OnSwap after each swap
// attempt.
type SwapInfo struct {
	Proposed, Accepted int64
	// Pair is the lower ladder index of the attempted pair; Swapped
	// whether this attempt was accepted.
	Pair    int
	Swapped bool
	// ColdLogPost and ColdIter describe the cold chain after the
	// attempt.
	ColdLogPost float64
	ColdIter    int64
}

// New builds the sampler: one independent state and engine per chain,
// heated by the incremental ladder. Chains share the (immutable) image
// but own separate configurations, coverage buffers and RNG streams.
func New(img *imaging.Image, p model.Params, w mcmc.Weights, steps mcmc.StepSizes,
	opt Options, seed uint64) (*Sampler, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(seed)
	s := &Sampler{Opt: opt, r: master.Split()}
	for k := 0; k < opt.Chains; k++ {
		st, err := model.NewState(img, p)
		if err != nil {
			return nil, err
		}
		e, err := mcmc.New(st, master.Split(), w, steps)
		if err != nil {
			return nil, err
		}
		beta := 1 / (1 + opt.HeatStep*float64(k))
		e.Beta = beta
		e.ScreenMinArea = opt.ScreenMinArea
		s.Engines = append(s.Engines, e)
		s.Betas = append(s.Betas, beta)
	}
	return s, nil
}

// Cold returns the cold chain's state — the only one whose samples
// target the true posterior.
func (s *Sampler) Cold() *model.State { return s.Engines[0].S }

// SwapRate returns the fraction of swap proposals accepted.
func (s *Sampler) SwapRate() float64 {
	if s.SwapProposed == 0 {
		return 0
	}
	return float64(s.SwapAccepted) / float64(s.SwapProposed)
}

// Run advances every chain by total iterations, attempting one swap
// between a random adjacent pair after every SwapEvery iterations.
// Chains advance concurrently (they share nothing mutable); swaps are
// applied at the barrier.
func (s *Sampler) Run(total int) {
	done := 0
	for done < total {
		n := s.Opt.SwapEvery
		if rem := total - done; rem < n {
			n = rem
		}
		sched.ForEach(len(s.Engines), s.Opt.Workers, func(i int) {
			s.Engines[i].RunN(n)
		})
		done += n
		s.attemptSwap()
	}
}

// attemptSwap proposes exchanging the states of a random adjacent pair
// (k, k+1). Acceptance follows the coupled-chain ratio:
//
//	α = min(1, exp((β_k − β_{k+1}) · (logπ(x_{k+1}) − logπ(x_k)))).
func (s *Sampler) attemptSwap() {
	k := s.r.Intn(len(s.Engines) - 1)
	a, b := s.Engines[k], s.Engines[k+1]
	s.SwapProposed++
	swapped := false
	logAlpha := (s.Betas[k] - s.Betas[k+1]) * (b.S.LogPost() - a.S.LogPost())
	if logAlpha >= 0 || math.Log(s.r.Positive()) < logAlpha {
		// Swap the states; temperatures stay with ladder positions.
		a.S, b.S = b.S, a.S
		s.SwapAccepted++
		swapped = true
	}
	if s.OnSwap != nil {
		s.OnSwap(SwapInfo{
			Proposed: s.SwapProposed, Accepted: s.SwapAccepted,
			Pair: k, Swapped: swapped,
			ColdLogPost: s.Engines[0].S.LogPost(), ColdIter: s.Engines[0].Iter,
		})
	}
}

// SamplerDump is a serializable snapshot of a coupled-chain run: every
// chain's engine plus the swap RNG stream and counters.
type SamplerDump struct {
	Engines      []mcmc.EngineDump
	R            rng.Saved
	SwapProposed int64
	SwapAccepted int64
}

// Dump captures the sampler.
func (s *Sampler) Dump() SamplerDump {
	d := SamplerDump{
		Engines:      make([]mcmc.EngineDump, len(s.Engines)),
		R:            s.r.Save(),
		SwapProposed: s.SwapProposed,
		SwapAccepted: s.SwapAccepted,
	}
	for i, e := range s.Engines {
		d.Engines[i] = e.Dump()
	}
	return d
}

// Restore overwrites the sampler's state from a dump taken on a sampler
// built with the same image, parameters and options.
func (s *Sampler) Restore(d SamplerDump) error {
	if len(d.Engines) != len(s.Engines) {
		return fmt.Errorf("mc3: dump has %d chains, sampler has %d", len(d.Engines), len(s.Engines))
	}
	for i, e := range s.Engines {
		if err := e.Restore(d.Engines[i]); err != nil {
			return err
		}
	}
	s.r.Restore(d.R)
	s.SwapProposed = d.SwapProposed
	s.SwapAccepted = d.SwapAccepted
	return nil
}
