package mc3

import (
	"math"
	"testing"

	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

func beadScene(t *testing.T, seed uint64) *imaging.Scene {
	t.Helper()
	return imaging.Synthesize(imaging.SceneSpec{
		W: 128, H: 128, Count: 5, MeanRadius: 8, RadiusStdDev: 1,
		Noise: 0.06, MinSeparation: 1.1,
	}, rng.New(seed))
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Chains: 1, HeatStep: 0.3, SwapEvery: 10, Workers: 1},
		{Chains: 4, HeatStep: 0, SwapEvery: 10, Workers: 1},
		{Chains: 4, HeatStep: 0.3, SwapEvery: 0, Workers: 1},
		{Chains: 4, HeatStep: 0.3, SwapEvery: 10, Workers: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLadder(t *testing.T) {
	scene := beadScene(t, 1)
	s, err := New(scene.Image, model.DefaultParams(5, 8), mcmc.DefaultWeights(),
		mcmc.DefaultStepSizes(8), DefaultOptions(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Betas[0] != 1 {
		t.Fatalf("cold chain beta = %v", s.Betas[0])
	}
	for k := 1; k < len(s.Betas); k++ {
		if s.Betas[k] >= s.Betas[k-1] {
			t.Fatalf("ladder not decreasing: %v", s.Betas)
		}
		want := 1 / (1 + 0.3*float64(k))
		if math.Abs(s.Betas[k]-want) > 1e-12 {
			t.Fatalf("beta[%d] = %v, want %v", k, s.Betas[k], want)
		}
	}
}

func TestRunFindsCirclesAndSwaps(t *testing.T) {
	scene := beadScene(t, 2)
	opt := DefaultOptions()
	opt.SwapEvery = 100
	s, err := New(scene.Image, model.DefaultParams(5, 8), mcmc.DefaultWeights(),
		mcmc.DefaultStepSizes(8), opt, 11)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30000)
	if s.Engines[0].Iter != 30000 {
		t.Fatalf("cold chain ran %d iterations", s.Engines[0].Iter)
	}
	if s.SwapProposed == 0 {
		t.Fatal("no swaps proposed")
	}
	if s.SwapAccepted == 0 {
		t.Fatal("no swaps accepted in 300 attempts — coupling is broken")
	}
	m := stats.MatchCircles(s.Cold().Cfg.Circles(), scene.Truth, 4)
	if m.F1() < 0.8 {
		t.Fatalf("cold chain F1 = %v", m.F1())
	}
	// Every chain's caches must remain exact (swaps move whole states).
	for k, e := range s.Engines {
		likErr, priorErr, coverOK := e.S.CheckConsistency()
		if likErr > 1e-6 || priorErr > 1e-6 || !coverOK {
			t.Fatalf("chain %d inconsistent after swaps", k)
		}
	}
}

// A heated chain must accept more proposals than the cold one on the
// same posterior — that is the whole point of heating.
func TestHeatedChainsAcceptMore(t *testing.T) {
	scene := beadScene(t, 3)
	opt := Options{Chains: 3, HeatStep: 1.5, SwapEvery: 1 << 30, Workers: 1}
	s, err := New(scene.Image, model.DefaultParams(5, 8), mcmc.DefaultWeights(),
		mcmc.DefaultStepSizes(8), opt, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Advance chains independently (SwapEvery effectively infinite).
	for _, e := range s.Engines {
		e.RunN(15000)
	}
	cold := 1 - s.Engines[0].Stats.RejectionRate()
	hot := 1 - s.Engines[2].Stats.RejectionRate()
	if hot <= cold {
		t.Fatalf("hot chain acceptance %v not above cold %v", hot, cold)
	}
}

func TestSwapPreservesPosteriorValues(t *testing.T) {
	scene := beadScene(t, 4)
	opt := Options{Chains: 2, HeatStep: 0.5, SwapEvery: 50, Workers: 2}
	s, err := New(scene.Image, model.DefaultParams(5, 8), mcmc.DefaultWeights(),
		mcmc.DefaultStepSizes(8), opt, 17)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2000)
	// States must be distinct objects and both self-consistent.
	if s.Engines[0].S == s.Engines[1].S {
		t.Fatal("chains share a state")
	}
	if s.SwapRate() < 0 || s.SwapRate() > 1 {
		t.Fatalf("swap rate = %v", s.SwapRate())
	}
}

func TestNewRejectsBadState(t *testing.T) {
	if _, err := New(imaging.New(0, 0), model.DefaultParams(5, 8),
		mcmc.DefaultWeights(), mcmc.DefaultStepSizes(8), DefaultOptions(), 1); err == nil {
		t.Fatal("empty image accepted")
	}
	scene := beadScene(t, 5)
	if _, err := New(scene.Image, model.DefaultParams(5, 8),
		mcmc.DefaultWeights(), mcmc.DefaultStepSizes(8), Options{}, 1); err == nil {
		t.Fatal("zero options accepted")
	}
}
