package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}

	// Overwrite must replace the content and leave no temp files behind.
	if err := WriteFileAtomic(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("read back %q after overwrite", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}

	// A missing parent directory must fail without creating anything.
	if err := WriteFileAtomic(filepath.Join(dir, "no", "such", "f"), nil, 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}

// A bare filename (no directory component) must write into the CWD.
func TestWriteFileAtomicBareName(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := WriteFileAtomic("bare.txt", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bare.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestProfileFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	pf := AddProfileFlags(fs)
	cpu := filepath.Join(t.TempDir(), "cpu.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu}); err != nil {
		t.Fatal(err)
	}
	if *pf.CPU != cpu || *pf.Mem != "" {
		t.Fatalf("parsed cpu=%q mem=%q", *pf.CPU, *pf.Mem)
	}
	stop, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
}
