// Package cliutil holds the small pieces of plumbing shared by the
// cmd/ binaries (and by pkg/service's spool): the -cpuprofile /
// -memprofile flag pair every entry point registers the same way, and
// crash-safe atomic file writes for checkpoints and job records.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/profiling"
)

// ProfileFlags is the conventional profiling flag pair. Register it
// with AddProfileFlags, then call Start once flags are parsed.
type ProfileFlags struct {
	CPU *string
	Mem *string
}

// AddProfileFlags registers -cpuprofile and -memprofile on fs (the
// process flag set when fs is nil), with the same names and help text
// across every binary.
func AddProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &ProfileFlags{
		CPU: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		Mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins profiling per the parsed flags and returns the stop
// function that flushes the profiles (see profiling.Start). Callers
// must run stop on every exit path — including before os.Exit, which
// skips defers.
func (p *ProfileFlags) Start() (stop func(), err error) {
	return profiling.Start(*p.CPU, *p.Mem)
}

// WriteFileAtomic writes data to path via a unique temp file in the
// same directory plus rename, so readers never observe a truncated
// file and a crash mid-write never corrupts an existing one. The
// temp file is cleaned up on failure.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("cliutil: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cliutil: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cliutil: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cliutil: %w", err)
	}
	return nil
}
