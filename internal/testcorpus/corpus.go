// Package testcorpus holds the shared malformed-submit corpus: one list
// of hostile/edge-case POST /v1/jobs payloads used both as the fuzz
// seed corpus (pkg/service) and as the live-daemon sweep in the E2E
// case matrix (test/e2e, case C00301). Keeping them identical means
// every input the fuzzer has ever minimized a failure to is replayed
// against a real daemon on every full matrix run.
package testcorpus

// SubmitEntry is one submission attempt: a content type, a body, and a
// raw query string, exactly the triple the service decoder branches on.
// Entries are NOT labelled valid/invalid — the contract under test is
// weaker and stabler: the daemon never answers 5xx, never panics, and
// every rejection is a typed JSON ErrorEnvelope.
type SubmitEntry struct {
	Name        string
	ContentType string
	Body        []byte
	RawQuery    string
}

// Submit returns the shared corpus. The slice is freshly allocated;
// callers may reorder it.
func Submit() []SubmitEntry {
	return []SubmitEntry{
		{"json_minimal_valid", "application/json", []byte(`{"scene":{"w":64,"h":64,"count":2,"mean_radius":5},"options":{"iterations":100}}`), ""},
		{"json_truncated", "application/json", []byte(`{"scene":{"w":64,"h":64`), ""},
		{"json_null_scene", "application/json", []byte(`{"scene":null,"options":{}}`), ""},
		{"json_sniffed_bad_dims", "", []byte(`  {"scene":{"w":-1,"h":1e9,"count":2,"mean_radius":5}}`), ""},
		{"png_truncated_header", "image/png", []byte("\x89PNG\r\n\x1a\n\x00\x00\x00\rIHDR"), "radius=5"},
		{"png_garbage_ihdr", "image/png", []byte("\x89PNG\r\n\x1a\nIHDR\xff\xff\xff\xff\xff\xff\xff\xff"), "radius=5"},
		{"pgm_overflow_dims", "", []byte("P5 4294967295 4294967295 255\n"), "radius=5"},
		{"pgm_short_payload", "", []byte("P5\n# comment\n8 8 255\n0123456789"), "radius=5"},
		{"pgm_ascii_small", "", []byte("P2 3 2 255\n0 1 2 3 4 5"), "radius=5&strategy=periodic"},
		{"pgm_zero_maxval", "", []byte("P5 8 8 0\n"), "radius=5"},
		{"empty_body", "application/octet-stream", []byte{}, ""},
		{"gif_magic", "", []byte("GIF89a"), "radius=5"},
		{"query_garbage_numerics", "", []byte("P5 8 8 255\n0000000000000000000000000000000000000000000000000000000000000000"), "radius=0&iters=-1&seed=x&workers=9999&grid_slack=nope"},
		{"query_nonfinite", "", []byte("P5 8 8 255\n0000000000000000000000000000000000000000000000000000000000000000"), "radius=NaN&threshold=Inf&heat_step=-inf"},
		{"json_ellipse_scene", "application/json", []byte(`{"scene":{"w":64,"h":64,"count":2,"mean_radius":5,"shape":"ellipse","axis_ratio":0.6}}`), ""},
		{"json_unknown_shape", "application/json", []byte(`{"scene":{"w":64,"h":64,"count":2,"mean_radius":5,"shape":"hexagon"}}`), ""},
		{"json_axis_ratio_too_big", "application/json", []byte(`{"scene":{"w":64,"h":64,"count":2,"mean_radius":5,"axis_ratio":2}}`), ""},
		{"json_axis_ratio_ok", "application/json", []byte(`{"scene":{"w":64,"h":64,"count":2,"mean_radius":5,"axis_ratio":0.5}}`), ""},
		{"query_shape_ellipse", "", []byte("P5 8 8 255\n0000000000000000000000000000000000000000000000000000000000000000"), "radius=5&shape=ellipse"},
		{"query_shape_unknown", "", []byte("P5 8 8 255\n0000000000000000000000000000000000000000000000000000000000000000"), "radius=5&shape=square"},
	}
}
