package geom

import "math"

// Grid is the randomly-offset uniform partition grid of §V. Cells have
// spacing (XM, YM); the whole lattice is shifted by an offset
// (OX, OY) ∈ [0, XM) × [0, YM) that is re-drawn before every local-move
// phase so that no partition boundary persists long enough to bias the
// chain. Only the parts of cells that intersect Bounds are meaningful.
type Grid struct {
	Bounds Rect
	XM, YM float64
	OX, OY float64
}

// NewGrid builds a grid over bounds with the given spacing and offset.
// The offset is normalised into [0, XM) × [0, YM). Spacings must be
// positive; spacings larger than the image are allowed and produce the
// "four rectangular partitions sharing one corner" layout used for the
// paper's fig. 2 experiment.
func NewGrid(bounds Rect, xm, ym, ox, oy float64) Grid {
	if xm <= 0 || ym <= 0 {
		panic("geom: grid spacing must be positive")
	}
	ox = math.Mod(ox, xm)
	if ox < 0 {
		ox += xm
	}
	oy = math.Mod(oy, ym)
	if oy < 0 {
		oy += ym
	}
	return Grid{Bounds: bounds, XM: xm, YM: ym, OX: ox, OY: oy}
}

// cellOrigin returns the lattice coordinates (column i, row j) of the cell
// containing point (x, y).
func (g Grid) cellIndex(x, y float64) (i, j int) {
	i = int(math.Floor((x - g.OX + g.XM) / g.XM)) // +XM keeps args positive for x >= -OX
	j = int(math.Floor((y - g.OY + g.YM) / g.YM))
	return i - 1, j - 1
}

// CellAt returns the rectangle of the grid cell containing (x, y), clipped
// to the grid bounds. The second result is false when the point lies
// outside the bounds.
func (g Grid) CellAt(x, y float64) (Rect, bool) {
	if !g.Bounds.ContainsPoint(x, y) {
		return Rect{}, false
	}
	i, j := g.cellIndex(x, y)
	cell := Rect{
		X0: g.OX + float64(i)*g.XM,
		Y0: g.OY + float64(j)*g.YM,
		X1: g.OX + float64(i+1)*g.XM,
		Y1: g.OY + float64(j+1)*g.YM,
	}
	return cell.Clip(g.Bounds), true
}

// Cells returns every non-empty cell of the grid clipped to the bounds,
// in row-major order. Together the cells tile Bounds exactly (see the
// property tests): they are pairwise disjoint and their areas sum to the
// bounds area.
func (g Grid) Cells() []Rect { return g.AppendCells(nil) }

// AppendCells appends the grid's non-empty clipped cells to dst and
// returns it; the periodic engine passes a reusable buffer so re-gridding
// before every local phase stays allocation-free.
func (g Grid) AppendCells(dst []Rect) []Rect {
	if g.Bounds.Empty() {
		return dst
	}
	cells := dst
	// First lattice line at or below Bounds.Y0.
	startJ := int(math.Floor((g.Bounds.Y0 - g.OY) / g.YM))
	startI := int(math.Floor((g.Bounds.X0 - g.OX) / g.XM))
	for j := startJ; ; j++ {
		y0 := g.OY + float64(j)*g.YM
		if y0 >= g.Bounds.Y1 {
			break
		}
		// Computing both edges from the lattice index keeps shared edges
		// bit-identical between neighbouring cells.
		y1 := g.OY + float64(j+1)*g.YM
		for i := startI; ; i++ {
			x0 := g.OX + float64(i)*g.XM
			if x0 >= g.Bounds.X1 {
				break
			}
			x1 := g.OX + float64(i+1)*g.XM
			cell := Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}.Clip(g.Bounds)
			if !cell.Empty() {
				cells = append(cells, cell)
			}
		}
	}
	return cells
}

// QuarterSplit returns the four rectangles produced by cutting bounds at
// the single interior point (x, y) — the partitioning used in the paper's
// fig. 2 experiment ("four rectangular partitions using a single
// coordinate where all partitions meet"). Degenerate slivers are dropped
// when the point lies on the boundary.
func QuarterSplit(bounds Rect, x, y float64) []Rect {
	quads := []Rect{
		{X0: bounds.X0, Y0: bounds.Y0, X1: x, Y1: y},
		{X0: x, Y0: bounds.Y0, X1: bounds.X1, Y1: y},
		{X0: bounds.X0, Y0: y, X1: x, Y1: bounds.Y1},
		{X0: x, Y0: y, X1: bounds.X1, Y1: bounds.Y1},
	}
	out := quads[:0]
	for _, q := range quads {
		if !q.Empty() {
			out = append(out, q)
		}
	}
	return out
}

// UniformSplit divides bounds into an nx × ny lattice of equal cells, in
// row-major order — the arbitrary partitioning used by blind partitioning
// (§VIII) and the naive baseline.
func UniformSplit(bounds Rect, nx, ny int) []Rect {
	if nx <= 0 || ny <= 0 {
		panic("geom: UniformSplit needs positive cell counts")
	}
	cells := make([]Rect, 0, nx*ny)
	for j := 0; j < ny; j++ {
		y0 := bounds.Y0 + bounds.H()*float64(j)/float64(ny)
		y1 := bounds.Y0 + bounds.H()*float64(j+1)/float64(ny)
		for i := 0; i < nx; i++ {
			x0 := bounds.X0 + bounds.W()*float64(i)/float64(nx)
			x1 := bounds.X0 + bounds.W()*float64(i+1)/float64(nx)
			cells = append(cells, Rect{X0: x0, Y0: y0, X1: x1, Y1: y1})
		}
	}
	return cells
}
