package geom

import (
	"math"
	"testing"
)

// randEllipse draws ellipses biased toward the awkward cases: off-image
// centres, sub-pixel axes, extreme aspect ratios and arbitrary rotation.
func randEllipse(r *spanRNG, w, h int) Ellipse {
	e := Ellipse{
		X:     r.float(-10, float64(w)+10),
		Y:     r.float(-10, float64(h)+10),
		Theta: r.float(0, math.Pi),
	}
	axis := func() float64 {
		switch r.next() % 4 {
		case 0:
			return r.float(0.01, 0.9) // sub-pixel
		case 1:
			return r.float(0.9, 6)
		case 2:
			return r.float(6, 25)
		default:
			return r.float(25, float64(w)) // image-scale
		}
	}
	e.Rx, e.Ry = axis(), axis()
	if r.next()%8 == 0 {
		e.Theta = 0 // exercise the axis-aligned path too
	}
	if r.next()%8 == 0 {
		e.Ry = e.Rx // and the circular dispatch
	}
	return e
}

// TestEllipseRowSpanMatchesPredicate is the core generic-shape
// invariant: RowSpan must reproduce the canonical per-pixel coverage
// predicate exactly, for every row of every ellipse.
func TestEllipseRowSpanMatchesPredicate(t *testing.T) {
	const w, h = 48, 40
	rng := &spanRNG{s: 7}
	for trial := 0; trial < 2000; trial++ {
		e := randEllipse(rng, w, h)
		x0, x1 := e.PixelCols(w)
		y0, y1 := e.PixelRows(h)
		for y := 0; y < h; y++ {
			xa, xb := e.RowSpan(y, x0, x1)
			if y < y0 || y >= y1 {
				if xa != xb {
					t.Fatalf("ellipse %+v: row %d outside PixelRows has span [%d,%d)", e, y, xa, xb)
				}
				continue
			}
			for x := x0; x < x1; x++ {
				want := e.CoversPixel(x, y)
				got := x >= xa && x < xb
				if want != got {
					t.Fatalf("ellipse %+v row %d x %d: span [%d,%d) says %v, predicate says %v",
						e, y, x, xa, xb, got, want)
				}
			}
		}
	}
}

// TestEllipseSpansMatchPredicate pins the iterator and batched forms to
// the predicate over the whole image, including pixels outside the
// bounding box (which must never be covered).
func TestEllipseSpansMatchPredicate(t *testing.T) {
	const w, h = 40, 36
	rng := &spanRNG{s: 11}
	for trial := 0; trial < 500; trial++ {
		e := randEllipse(rng, w, h)
		covered := make(map[[2]int]bool)
		EllipseSpans(w, h, e, func(y, xa, xb int) {
			for x := xa; x < xb; x++ {
				covered[[2]int{x, y}] = true
			}
		})
		var batched []Span
		batched = AppendShapeSpans(batched, w, h, e)
		fromBatch := make(map[[2]int]bool)
		for _, sp := range batched {
			for x := sp.X0; x < sp.X1; x++ {
				fromBatch[[2]int{int(x), int(sp.Y)}] = true
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				want := e.CoversPixel(x, y)
				if covered[[2]int{x, y}] != want {
					t.Fatalf("ellipse %+v pixel (%d,%d): EllipseSpans %v, predicate %v",
						e, x, y, covered[[2]int{x, y}], want)
				}
				if fromBatch[[2]int{x, y}] != want {
					t.Fatalf("ellipse %+v pixel (%d,%d): AppendShapeSpans %v, predicate %v",
						e, x, y, fromBatch[[2]int{x, y}], want)
				}
			}
		}
	}
}

// TestEllipseCircularMatchesCircle pins the disc dispatch: a circular
// ellipse must produce bit-identical spans and predicate results to the
// plain Circle implementation.
func TestEllipseCircularMatchesCircle(t *testing.T) {
	const w, h = 48, 40
	rng := &spanRNG{s: 23}
	for trial := 0; trial < 1000; trial++ {
		c := randCircle(rng, w, h)
		e := FromCircle(c)
		if !e.Circular() {
			t.Fatalf("FromCircle not circular: %+v", e)
		}
		cx0, cx1 := c.PixelCols(w)
		ex0, ex1 := e.PixelCols(w)
		cy0, cy1 := c.PixelRows(h)
		ey0, ey1 := e.PixelRows(h)
		if cx0 != ex0 || cx1 != ex1 || cy0 != ey0 || cy1 != ey1 {
			t.Fatalf("pixel box mismatch: circle (%d,%d,%d,%d) ellipse (%d,%d,%d,%d)",
				cx0, cy0, cx1, cy1, ex0, ey0, ex1, ey1)
		}
		for y := cy0; y < cy1; y++ {
			ca, cb := c.RowSpan(y, cx0, cx1)
			ea, eb := e.RowSpan(y, ex0, ex1)
			if ca != ea || cb != eb {
				t.Fatalf("row %d span mismatch: circle [%d,%d) ellipse [%d,%d) for %+v",
					y, ca, cb, ea, eb, c)
			}
		}
	}
}

// TestEllipseDegenerate covers the documented degenerate semantics:
// non-positive axes are empty, sub-pixel shapes may cover nothing, and
// off-image shapes never produce spans.
func TestEllipseDegenerate(t *testing.T) {
	const w, h = 32, 32
	cases := []Ellipse{
		{X: 16, Y: 16, Rx: 0, Ry: 5, Theta: 0.3},
		{X: 16, Y: 16, Rx: 5, Ry: 0, Theta: 1.2},
		{X: 16, Y: 16, Rx: -1, Ry: 4, Theta: 0.5},
		{X: 16, Y: 16, Rx: -3, Ry: -3}, // negative circular: empty, not a |r| disc
		{X: 16, Y: 16, Rx: 0, Ry: 0},
		{X: 16.2, Y: 16.7, Rx: 0.2, Ry: 0.1, Theta: 0.9}, // sub-pixel, off-centre
		{X: -40, Y: -40, Rx: 6, Ry: 3, Theta: 0.4},       // fully off-image
		{X: 200, Y: 16, Rx: 6, Ry: 3, Theta: 2.1},
	}
	for _, e := range cases {
		n := 0
		EllipseSpans(w, h, e, func(y, xa, xb int) {
			for x := xa; x < xb; x++ {
				if !e.CoversPixel(x, y) {
					t.Fatalf("degenerate %+v: span pixel (%d,%d) not covered by predicate", e, x, y)
				}
				n++
			}
		})
		// Count the predicate's covered pixels directly; the span count
		// must agree (both zero for the empty cases).
		want := 0
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if e.CoversPixel(x, y) {
					want++
				}
			}
		}
		if n != want {
			t.Fatalf("degenerate %+v: spans cover %d pixels, predicate %d", e, n, want)
		}
		if e.Rx < 0 || e.Ry < 0 || ((e.Rx == 0 || e.Ry == 0) && !e.Circular()) {
			if want != 0 {
				t.Fatalf("degenerate %+v: degenerate axes should be empty, predicate covers %d", e, want)
			}
			if e.Contains(e.X, e.Y) {
				t.Fatalf("degenerate %+v: Contains(centre) true for empty shape", e)
			}
		}
	}
}

// TestEllipseBoundsContainSpans checks Bounds is conservative: every
// covered pixel centre lies inside the bounding rectangle.
func TestEllipseBoundsContainSpans(t *testing.T) {
	const w, h = 40, 40
	rng := &spanRNG{s: 31}
	for trial := 0; trial < 500; trial++ {
		e := randEllipse(rng, w, h)
		b := e.Bounds()
		EllipseSpans(w, h, e, func(y, xa, xb int) {
			for _, x := range []int{xa, xb - 1} {
				px, py := float64(x)+0.5, float64(y)+0.5
				const slack = 1e-9
				if px < b.X0-slack || px > b.X1+slack || py < b.Y0-slack || py > b.Y1+slack {
					t.Fatalf("ellipse %+v: covered pixel centre (%g,%g) outside bounds %+v", e, px, py, b)
				}
			}
		})
	}
}

// TestShapeKindString pins the canonical kind names used by registry
// parsing, checkpoints and the service wire format.
func TestShapeKindString(t *testing.T) {
	if KindDisc.String() != "disc" || KindEllipse.String() != "ellipse" {
		t.Fatalf("unexpected kind names %q, %q", KindDisc, KindEllipse)
	}
	if !KindDisc.Valid() || !KindEllipse.Valid() || ShapeKind(9).Valid() {
		t.Fatalf("ShapeKind.Valid misbehaves")
	}
}

// TestContainsEllipseMatchesContainsCircle pins the §V eligibility test
// dispatch: discs must evaluate the historical bound exactly.
func TestContainsEllipseMatchesContainsCircle(t *testing.T) {
	rng := &spanRNG{s: 57}
	r := Rect{X0: 3, Y0: 5, X1: 61, Y1: 59}
	for trial := 0; trial < 2000; trial++ {
		c := randCircle(rng, 64, 64)
		m := rng.float(0, 12)
		if got, want := r.ContainsEllipse(FromCircle(c), m), r.ContainsCircle(c, m); got != want {
			t.Fatalf("circle %+v margin %g: ContainsEllipse %v, ContainsCircle %v", c, m, got, want)
		}
	}
	// A rotated ellipse fully inside must pass; one touching the border
	// must fail once its extent plus margin crosses.
	e := Ellipse{X: 32, Y: 32, Rx: 10, Ry: 4, Theta: 0.7}
	if !r.ContainsEllipse(e, 2) {
		t.Fatalf("interior ellipse rejected")
	}
	if r.ContainsEllipse(Ellipse{X: 5, Y: 32, Rx: 10, Ry: 4, Theta: 0.2}, 2) {
		t.Fatalf("border-crossing ellipse accepted")
	}
}
