package geom

import "math"

// Generic shape layer.
//
// Shape is the contract every detectable artifact geometry satisfies: an
// exact pixel-coverage predicate, a bounding rectangle, an area, and
// analytic scanline spans pinned to the predicate. Circle (the paper's
// disc workload) and Ellipse (axis-aligned or rotated) both implement
// it. The likelihood and coverage kernels of internal/model consume only
// row spans, so any Shape implementation slots into the whole stack —
// sequential, periodic-partitioned, speculative, blind, intelligent and
// tempered engines alike — without engine-specific shape code.
//
// Shape parameters are plain float64 struct fields, so every
// implementation is gob-dumpable as-is; checkpoint payloads serialize
// configurations of Ellipse values directly.
type Shape interface {
	// Contains reports whether the point (x, y) lies inside or on the
	// shape boundary.
	Contains(x, y float64) bool
	// Bounds returns the tight axis-aligned bounding rectangle.
	Bounds() Rect
	// Area returns the shape's area.
	Area() float64
	// RowSpan returns the covered pixel x-range [xa, xb) of row y,
	// clipped to [x0, x1), exactly matching the per-pixel-centre
	// coverage predicate. It returns (0, 0) when the row is empty.
	RowSpan(y, x0, x1 int) (xa, xb int)
	// PixelRows returns the clipped row range [y0, y1) of the shape's
	// pixel bounding box in an image of height h.
	PixelRows(h int) (y0, y1 int)
	// PixelCols returns the clipped column range [x0, x1) of the shape's
	// pixel bounding box in an image of width w.
	PixelCols(w int) (x0, x1 int)
}

// Compile-time interface checks: the two shipped shapes satisfy Shape.
var (
	_ Shape = Circle{}
	_ Shape = Ellipse{}
)

// ShapeKind identifies a shape family for workloads, priors and
// proposal kernels. The registry-style parsing lives in pkg/parmcmc
// (ParseShape); this is the low-level tag threaded through model
// parameters and checkpoint payloads.
type ShapeKind uint8

const (
	// KindDisc is the paper's circular-artifact workload.
	KindDisc ShapeKind = iota
	// KindEllipse is the generalised workload: per-feature semi-axes and
	// an optional rotation.
	KindEllipse
)

// String returns the canonical lower-case name ("disc", "ellipse").
func (k ShapeKind) String() string {
	switch k {
	case KindDisc:
		return "disc"
	case KindEllipse:
		return "ellipse"
	}
	return "ShapeKind(?)"
}

// Valid reports whether k names a known shape family.
func (k ShapeKind) Valid() bool { return k == KindDisc || k == KindEllipse }

// Ellipse is an ellipse with centre (X, Y), semi-axes Rx and Ry along
// its local axes, and rotation Theta (radians, counter-clockwise, with
// Theta and Theta+π equivalent). It is the configuration element type of
// the whole detection stack: a disc is exactly the Rx == Ry case, and
// every disc-shaped fast path (scanline spans, closed-form overlap area)
// is dispatched to bit-exactly, so disc workloads behave identically to
// the historical Circle-only implementation.
type Ellipse struct {
	X, Y, Rx, Ry, Theta float64
}

// Disc returns the Ellipse representing the disc with centre (x, y) and
// radius r.
func Disc(x, y, r float64) Ellipse {
	return Ellipse{X: x, Y: y, Rx: r, Ry: r}
}

// FromCircle converts a Circle to its Ellipse representation.
func FromCircle(c Circle) Ellipse { return Disc(c.X, c.Y, c.R) }

// Circular reports whether e is a disc (equal semi-axes; Theta is then
// irrelevant). All disc fast paths key off this.
func (e Ellipse) Circular() bool { return e.Rx == e.Ry }

// AsCircle returns the disc view of a circular ellipse. It is only
// meaningful when Circular() is true.
func (e Ellipse) AsCircle() Circle { return Circle{X: e.X, Y: e.Y, R: e.Rx} }

// MaxR returns the larger semi-axis — the shape's outer radius, used for
// conservative halo/locality bounds.
func (e Ellipse) MaxR() float64 { return math.Max(e.Rx, e.Ry) }

// EffR returns the equal-area radius √(Rx·Ry). For a disc this is
// exactly R (no sqrt round-off: the circular case short-circuits).
func (e Ellipse) EffR() float64 {
	if e.Circular() {
		return e.Rx
	}
	return math.Sqrt(e.Rx * e.Ry)
}

// quad returns the implicit quadratic-form coefficients of the ellipse:
// a point at offset (dx, dy) from the centre is inside iff
//
//	A·dx² + B·dx·dy + C·dy² ≤ F,
//
// with A = (Ry·cosθ)² + (Rx·sinθ)², B = 2·cosθ·sinθ·(Ry² − Rx²),
// C = (Ry·sinθ)² + (Rx·cosθ)² and F = (Rx·Ry)². The multiplied-through
// form avoids divisions, and A > 0 whenever both axes are positive.
func (e Ellipse) quad() (A, B, C, F float64) {
	c, s := math.Cos(e.Theta), math.Sin(e.Theta)
	rc, rs := e.Ry*c, e.Rx*s
	sc, cc := e.Ry*s, e.Rx*c
	A = rc*rc + rs*rs
	C = sc*sc + cc*cc
	B = 2 * c * s * (e.Ry*e.Ry - e.Rx*e.Rx)
	F = e.Rx * e.Ry * e.Rx * e.Ry
	return
}

// QuadCoeffs exposes the implicit quadratic-form coefficients (see quad)
// for consumers that classify whole regions against the ellipse — the
// coarse-to-fine screen in internal/model hoists them once per proposal.
// Only meaningful for a non-degenerate, non-circular ellipse.
func (e Ellipse) QuadCoeffs() (A, B, C, F float64) { return e.quad() }

// Contains reports whether the point (x, y) lies inside or on the
// ellipse. The circular case evaluates the historical disc predicate
// bit-exactly. An ellipse with a non-positive semi-axis is empty (a
// degenerate segment covers no area; treating it as empty keeps spans,
// predicate and naive kernels consistent).
func (e Ellipse) Contains(x, y float64) bool {
	if e.Rx < 0 || e.Ry < 0 {
		// Spans are empty for negative axes; the predicate must agree
		// (squaring would otherwise cover a |axis| disc). A zero-radius
		// disc keeps the historical Circle semantics: it contains
		// exactly its centre point.
		return false
	}
	dx, dy := x-e.X, y-e.Y
	if e.Circular() {
		return dx*dx+dy*dy <= e.Rx*e.Rx
	}
	if e.Rx == 0 || e.Ry == 0 {
		return false
	}
	A, B, C, F := e.quad()
	return A*dx*dx+B*dx*dy+C*dy*dy <= F
}

// coveredEll is the canonical pixel-coverage predicate of a non-circular
// ellipse: does the centre of pixel x on the row at centre offset dy lie
// inside? The quadratic coefficients are hoisted by the caller. As with
// coveredX, the float64 conversion pins the evaluation order so spans
// and naive reference kernels agree on every architecture.
func coveredEll(cx float64, A, B, C, F, dy float64, x int) bool {
	dx := float64(x) + 0.5 - cx
	return float64(A*dx*dx)+float64(B*dx*dy)+float64(C*dy*dy) <= F
}

// CoversPixel is the canonical pixel-centre coverage predicate: does the
// centre (x+0.5, y+0.5) of pixel (x, y) lie inside the shape? Naive
// reference kernels and differential tests consult it (directly, or via
// the hoisted PixelPred form); RowSpan pins its edges to exactly this
// predicate.
func (e Ellipse) CoversPixel(x, y int) bool {
	return e.PixelPred().Covers(x, y)
}

// PixelPred is the hoisted form of CoversPixel: the per-shape constants
// (squared radius, or the ellipse quadratic coefficients) are computed
// once, so per-pixel scans — the naive reference kernels — evaluate the
// identical canonical predicate without recomputing trigonometry per
// pixel. Covers(x, y) is bit-equivalent to Ellipse.CoversPixel.
type PixelPred struct {
	circular   bool
	empty      bool
	cx, cy     float64
	r2         float64 // circular: squared radius
	A, B, C, F float64 // general: quadratic coefficients
}

// PixelPred returns the hoisted pixel-coverage evaluator for e.
func (e Ellipse) PixelPred() PixelPred {
	p := PixelPred{cx: e.X, cy: e.Y}
	if e.Rx < 0 || e.Ry < 0 {
		p.empty = true
		return p
	}
	if e.Circular() {
		p.circular = true
		p.r2 = e.Rx * e.Rx
		return p
	}
	if e.Rx == 0 || e.Ry == 0 {
		p.empty = true
		return p
	}
	p.A, p.B, p.C, p.F = e.quad()
	return p
}

// Covers reports whether the centre of pixel (x, y) lies inside the
// shape.
func (p PixelPred) Covers(x, y int) bool {
	if p.circular {
		dy := float64(y) + 0.5 - p.cy
		return coveredX(p.cx, float64(dy*dy), p.r2, x)
	}
	if p.empty {
		return false
	}
	return coveredEll(p.cx, p.A, p.B, p.C, p.F, float64(y)+0.5-p.cy, x)
}

// Bounds returns the tight axis-aligned bounding rectangle. For a
// rotated ellipse the half-extents are √((Rx·cosθ)² + (Ry·sinθ)²)
// horizontally and √((Rx·sinθ)² + (Ry·cosθ)²) vertically; the circular
// and axis-aligned cases reduce to the exact semi-axes.
func (e Ellipse) Bounds() Rect {
	ex, ey := e.halfExtents()
	return Rect{X0: e.X - ex, Y0: e.Y - ey, X1: e.X + ex, Y1: e.Y + ey}
}

// halfExtents returns the half-width and half-height of Bounds.
func (e Ellipse) halfExtents() (ex, ey float64) {
	if e.Circular() {
		return e.Rx, e.Rx
	}
	if e.Theta == 0 {
		return e.Rx, e.Ry
	}
	c, s := math.Cos(e.Theta), math.Sin(e.Theta)
	ex = math.Hypot(e.Rx*c, e.Ry*s)
	ey = math.Hypot(e.Rx*s, e.Ry*c)
	return
}

// Area returns π·Rx·Ry.
func (e Ellipse) Area() float64 { return math.Pi * e.Rx * e.Ry }

// Dist returns the distance between the centres of e and o.
func (e Ellipse) Dist(o Ellipse) float64 {
	return math.Hypot(e.X-o.X, e.Y-o.Y)
}

// Translate returns the ellipse shifted by (dx, dy).
func (e Ellipse) Translate(dx, dy float64) Ellipse {
	e.X += dx
	e.Y += dy
	return e
}

// Intersects reports whether the two shapes' equal-area discs overlap
// (share interior area) — exact for discs, the same approximation
// OverlapArea uses otherwise (Intersects is true iff OverlapArea > 0).
func (e Ellipse) Intersects(o Ellipse) bool {
	rr := e.EffR() + o.EffR()
	dx, dy := e.X-o.X, e.Y-o.Y
	return dx*dx+dy*dy < rr*rr
}

// OverlapArea returns the pairwise overlap area used by the prior's
// soft-repulsion term. Two discs use the exact closed-form lens area
// (bit-identical to Circle.OverlapArea); pairs involving a genuine
// ellipse are approximated by their equal-area discs at the same
// centres. The approximation preserves the prior's qualitative
// behaviour (zero when far apart, full containment when close, smooth
// in between) and is exact in the disc limit; see the README "Shapes"
// accuracy notes.
func (e Ellipse) OverlapArea(o Ellipse) float64 {
	a := Circle{X: e.X, Y: e.Y, R: e.EffR()}
	b := Circle{X: o.X, Y: o.Y, R: o.EffR()}
	return a.OverlapArea(b)
}

// PixelRows returns the clipped row range [y0, y1) of the ellipse's
// pixel bounding box in an image of height h.
func (e Ellipse) PixelRows(h int) (y0, y1 int) {
	if e.Circular() {
		return e.AsCircle().PixelRows(h)
	}
	_, ey := e.halfExtents()
	y0 = clampSpan(int(math.Floor(e.Y-ey-0.5)), 0, h)
	y1 = clampSpan(int(math.Ceil(e.Y+ey+0.5)), 0, h)
	return
}

// PixelCols returns the clipped column range [x0, x1) of the ellipse's
// pixel bounding box in an image of width w.
func (e Ellipse) PixelCols(w int) (x0, x1 int) {
	if e.Circular() {
		return e.AsCircle().PixelCols(w)
	}
	ex, _ := e.halfExtents()
	x0 = clampSpan(int(math.Floor(e.X-ex-0.5)), 0, w)
	x1 = clampSpan(int(math.Ceil(e.X+ex+0.5)), 0, w)
	return
}

// RowSpan returns the covered pixel x-range [xa, xb) of row y, clipped
// to [x0, x1), or (0, 0) when the row is empty. A disc dispatches to the
// tuned circle fast path (one sqrt per row, exact fallback only near
// pixel boundaries). A genuine ellipse solves the row's quadratic for a
// seed interval, then always pins both edges to the canonical coverage
// predicate — the pinning loops run O(1) steps in expectation, and the
// result equals a per-pixel scan of CoversPixel exactly, which is the
// invariant the differential tests enforce.
func (e Ellipse) RowSpan(y, x0, x1 int) (xa, xb int) {
	if e.Rx < 0 || e.Ry < 0 {
		return 0, 0
	}
	if e.Circular() {
		return e.AsCircle().RowSpan(y, x0, x1)
	}
	if e.Rx == 0 || e.Ry == 0 {
		return 0, 0
	}
	A, B, C, F := e.quad()
	return e.rowSpanQuad(A, B, C, F, 1/(2*A), y, x0, x1)
}

// spanQuadEps scales the quadratic path's certainty margin: ~4500 ulp,
// orders of magnitude above the handful of roundings in the seed
// arithmetic and the predicate, yet far below the typical fractional
// distance of a span edge from a pixel boundary. Edges within the
// margin of an integer — and every near-tangent row, where the margin
// blows up — take the exact predicate-pinned path instead.
const spanQuadEps = 1e-12

// rowSpanQuad is the non-circular row-span body with hoisted quadratic
// coefficients and reciprocal (AppendShapeSpans hoists them out of its
// row loop; RowSpan computes them per call).
//
// For the row through pixel centres at dy = y+0.5−Y, coverage in dx is
// A·dx² + (B·dy)·dx + (C·dy² − F) ≤ 0 — a positive parabola, so the
// covered set is a single interval between its roots. The fast path
// takes both edges straight from the sqrt when they are provably
// further from an integer than float rounding could displace them; any
// ambiguity falls back to pinning against the exact predicate, so the
// result always equals a per-pixel scan of CoversPixel.
func (e Ellipse) rowSpanQuad(A, B, C, F, inv2A float64, y, x0, x1 int) (xa, xb int) {
	if x0 >= x1 {
		return 0, 0
	}
	dy := float64(y) + 0.5 - e.Y
	b := B * dy
	c := C*dy*dy - F
	disc := b*b - 4*A*c
	if disc < 0 {
		return 0, 0
	}
	// errScale bounds the absolute rounding error of disc (up to the ulp
	// factor): for interior rows (c < 0) it equals disc itself, so the
	// relative-health guard below always passes; only rows near tangency
	// fail it, and those must consult the predicate anyway.
	errScale := b*b + math.Abs(4*A*c)
	if disc > 1e-10*errScale {
		half := math.Sqrt(disc) * inv2A
		mid := -b * inv2A
		lo := e.X + mid - half - 0.5
		hi := e.X + mid + half - 0.5
		flo := math.Floor(lo)
		fhi := math.Floor(hi)
		// Certainty margin, multiplied through by half to stay division-
		// free. Disc round-off maps to the edge through the boundary slope
		// 2A·half; the predicate's own evaluation error (∝ the magnitude
		// sum s of its terms over the row's dx range) maps through the
		// same slope; the additive seed arithmetic contributes position
		// ulps directly.
		am := math.Abs(mid)
		hm := am + half + 1
		s := A*hm*hm + math.Abs(b)*hm + math.Abs(c) + 2*F
		ebH := spanQuadEps * (0.5*errScale*inv2A + s*inv2A + (hm+math.Abs(e.X))*half)
		fl := (lo - flo) * half
		fh := (hi - fhi) * half
		if fl > ebH && fl < half-ebH && fh > ebH && fh < half-ebH {
			xa = int(flo) + 1
			xb = int(fhi) + 1
			if xa < x0 {
				xa = x0
			}
			if xb > x1 {
				xb = x1
			}
			if xa >= xb {
				return 0, 0
			}
			return xa, xb
		}
	}
	return e.rowSpanQuadExact(A, B, C, F, inv2A, dy, x0, x1)
}

// rowSpanQuadExact seeds the edges from the sqrt and pins both to the
// exact coverage predicate (identical structure to the circle's
// rowSpanExact). Only boundary-ambiguous and near-tangent rows reach it.
func (e Ellipse) rowSpanQuadExact(A, B, C, F, inv2A, dy float64, x0, x1 int) (xa, xb int) {
	b := B * dy
	half := math.Sqrt(b*b-4*A*(C*dy*dy-F)) * inv2A
	mid := -b * inv2A
	lo := e.X + mid - half - 0.5
	hi := e.X + mid + half - 0.5
	xa = clampSpan(int(math.Ceil(lo)), x0, x1)
	xb = clampSpan(int(math.Floor(hi))+1, x0, x1)
	for xa > x0 && coveredEll(e.X, A, B, C, F, dy, xa-1) {
		xa--
	}
	for xa < xb && !coveredEll(e.X, A, B, C, F, dy, xa) {
		xa++
	}
	for xb > xa && !coveredEll(e.X, A, B, C, F, dy, xb-1) {
		xb--
	}
	for xb < x1 && coveredEll(e.X, A, B, C, F, dy, xb) {
		xb++
	}
	if xa >= xb {
		return 0, 0
	}
	return xa, xb
}

// RowSpanner is the hoisted form of Ellipse.RowSpan for kernels that
// walk several rows of one shape (move/exchange kernels intersect two
// shapes' spans row by row): the per-shape constants — nothing for a
// disc, the quadratic coefficients for an ellipse — are computed once
// instead of per row. Spans returned are bit-identical to RowSpan's.
type RowSpanner struct {
	e          Ellipse
	circ       Circle
	circular   bool
	empty      bool
	A, B, C, F float64
	inv2A      float64
}

// Spanner returns the hoisted row-span evaluator for e.
func (e Ellipse) Spanner() RowSpanner {
	s := RowSpanner{e: e}
	if e.Rx < 0 || e.Ry < 0 {
		s.empty = true
		return s
	}
	if e.Circular() {
		s.circular = true
		s.circ = e.AsCircle()
		return s
	}
	if e.Rx == 0 || e.Ry == 0 {
		s.empty = true
		return s
	}
	s.A, s.B, s.C, s.F = e.quad()
	s.inv2A = 1 / (2 * s.A)
	return s
}

// RowSpan returns the covered pixel x-range [xa, xb) of row y, clipped
// to [x0, x1), exactly as Ellipse.RowSpan would.
func (s *RowSpanner) RowSpan(y, x0, x1 int) (xa, xb int) {
	if s.circular {
		return s.circ.RowSpan(y, x0, x1)
	}
	if s.empty {
		return 0, 0
	}
	return s.e.rowSpanQuad(s.A, s.B, s.C, s.F, s.inv2A, y, x0, x1)
}

// EllipseSpans calls fn(y, xa, xb) for every image row y on which e
// covers at least one pixel centre, with [xa, xb) the covered x-range
// clipped to an image of width w and height h. Rows arrive in
// increasing order. It is the ellipse analogue of DiscSpans (to which
// the circular case dispatches row by row).
func EllipseSpans(w, h int, e Ellipse, fn func(y, xa, xb int)) {
	x0, x1 := e.PixelCols(w)
	y0, y1 := e.PixelRows(h)
	if e.Circular() {
		c := e.AsCircle()
		for y := y0; y < y1; y++ {
			if xa, xb := c.RowSpan(y, x0, x1); xa < xb {
				fn(y, xa, xb)
			}
		}
		return
	}
	if e.Rx <= 0 || e.Ry <= 0 {
		return
	}
	A, B, C, F := e.quad()
	inv2A := 1 / (2 * A)
	for y := y0; y < y1; y++ {
		if xa, xb := e.rowSpanQuad(A, B, C, F, inv2A, y, x0, x1); xa < xb {
			fn(y, xa, xb)
		}
	}
}

// AppendShapeSpans appends e's covered row spans (clipped to w×h, rows
// increasing, empty rows omitted) to dst and returns it — the batched,
// allocation-free form the likelihood kernels consume. Discs take the
// division-free AppendDiscSpans fast path bit-exactly; genuine ellipses
// hoist the quadratic coefficients and pin each row to the predicate.
func AppendShapeSpans(dst []Span, w, h int, e Ellipse) []Span {
	if e.Circular() {
		return AppendDiscSpans(dst, w, h, e.AsCircle())
	}
	if e.Rx < 0 || e.Ry < 0 || (!e.Circular() && (e.Rx == 0 || e.Ry == 0)) {
		return dst
	}
	// The bounding half-extents come from the quadratic form directly:
	// the form's determinant A·C − B²/4 equals F, which collapses the
	// extent formulae to ex = √C, ey = √A — the same values halfExtents
	// computes via two hypots and a second round of trigonometry. The
	// relative inflation keeps the box conservative against the last-ulp
	// rounding differences; spans are pinned to the predicate, so a
	// too-large box only costs an empty RowSpan per extra row.
	A, B, C, F := e.quad()
	ex := math.Sqrt(C)
	ey := math.Sqrt(A)
	ex += ex * 1e-12
	ey += ey * 1e-12
	x0 := clampSpan(int(math.Floor(e.X-ex-0.5)), 0, w)
	x1 := clampSpan(int(math.Ceil(e.X+ex+0.5)), 0, w)
	y0 := clampSpan(int(math.Floor(e.Y-ey-0.5)), 0, h)
	y1 := clampSpan(int(math.Ceil(e.Y+ey+0.5)), 0, h)
	if x0 >= x1 || y0 >= y1 {
		return dst
	}
	base := len(dst)
	if cap(dst)-base < y1-y0 {
		grown := make([]Span, base, base+(y1-y0))
		copy(grown, dst)
		dst = grown
	}
	out := dst[:base+(y1-y0)]
	n := base
	inv2A := 1 / (2 * A)
	for y := y0; y < y1; y++ {
		xa, xb := e.rowSpanQuad(A, B, C, F, inv2A, y, x0, x1)
		if xa >= xb {
			continue
		}
		out[n] = Span{Y: int32(y), X0: int32(xa), X1: int32(xb)}
		n++
	}
	return out[:n]
}

// ContainsEllipse reports whether the whole shape, expanded by margin,
// lies strictly inside the rectangle — the §V partition-eligibility test
// generalised to any Ellipse. For a disc it evaluates exactly the
// historical ContainsCircle bound.
func (r Rect) ContainsEllipse(e Ellipse, margin float64) bool {
	ex, ey := e.halfExtents()
	return e.X-(ex+margin) >= r.X0 && e.X+(ex+margin) <= r.X1 &&
		e.Y-(ey+margin) >= r.Y0 && e.Y+(ey+margin) <= r.Y1
}
