package geom

import (
	"math"
	"testing"
)

// spanRNG is a tiny deterministic generator (SplitMix64) so the span
// property tests need no external seed plumbing.
type spanRNG struct{ s uint64 }

func (r *spanRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *spanRNG) float(lo, hi float64) float64 {
	return lo + (hi-lo)*float64(r.next()>>11)/(1<<53)
}

// randCircle draws circles biased toward the awkward cases: edge-clipped
// centres (possibly outside the image), sub-pixel radii, and radii larger
// than the image.
func randCircle(r *spanRNG, w, h int) Circle {
	c := Circle{
		X: r.float(-10, float64(w)+10),
		Y: r.float(-10, float64(h)+10),
	}
	switch r.next() % 4 {
	case 0:
		c.R = r.float(0.01, 0.9) // sub-pixel
	case 1:
		c.R = r.float(0.9, 6)
	case 2:
		c.R = r.float(6, 25)
	default:
		c.R = r.float(25, float64(w)) // image-scale
	}
	return c
}

// TestRowSpanMatchesPredicate is the core span invariant: RowSpan must
// reproduce the per-pixel coverage predicate exactly, for every row of
// every circle.
func TestRowSpanMatchesPredicate(t *testing.T) {
	const w, h = 48, 40
	rng := &spanRNG{s: 1}
	for trial := 0; trial < 2000; trial++ {
		c := randCircle(rng, w, h)
		x0, x1 := c.PixelCols(w)
		y0, y1 := c.PixelRows(h)
		r2 := c.R * c.R
		for y := 0; y < h; y++ {
			xa, xb := c.RowSpan(y, x0, x1)
			if y < y0 || y >= y1 {
				if xa != xb {
					t.Fatalf("circle %+v: row %d outside PixelRows has span [%d,%d)", c, y, xa, xb)
				}
				continue
			}
			dy := float64(y) + 0.5 - c.Y
			dy2 := dy * dy
			for x := x0; x < x1; x++ {
				want := coveredX(c.X, dy2, r2, x)
				got := x >= xa && x < xb
				if want != got {
					t.Fatalf("circle %+v row %d x %d: span [%d,%d) says %v, predicate says %v",
						c, y, x, xa, xb, got, want)
				}
			}
		}
	}
}

// TestRowSpanClipped checks that spans never leave the supplied clip
// range.
func TestRowSpanClipped(t *testing.T) {
	rng := &spanRNG{s: 7}
	for trial := 0; trial < 500; trial++ {
		c := randCircle(rng, 32, 32)
		xa, xb := c.RowSpan(int(c.Y), 5, 20)
		if xa == 0 && xb == 0 {
			continue
		}
		if xa < 5 || xb > 20 || xa >= xb {
			t.Fatalf("circle %+v: span [%d,%d) escapes clip [5,20)", c, xa, xb)
		}
	}
}

// TestDiscSpansCountsArea sanity-checks the span iterator against the
// analytic disc area for a well-resolved interior circle.
func TestDiscSpansCountsArea(t *testing.T) {
	c := Circle{X: 50.3, Y: 48.7, R: 20}
	pixels := 0
	DiscSpans(128, 128, c, func(y, xa, xb int) {
		if xa >= xb {
			t.Fatalf("empty span emitted at row %d", y)
		}
		pixels += xb - xa
	})
	if math.Abs(float64(pixels)-c.Area()) > 0.05*c.Area() {
		t.Fatalf("disc spans cover %d pixels, analytic area %.1f", pixels, c.Area())
	}
}

// TestUnionSpansMatchesPerPixel compares UnionSpans against a brute-force
// membership raster for random circle sets.
func TestUnionSpansMatchesPerPixel(t *testing.T) {
	const w, h = 40, 36
	rng := &spanRNG{s: 99}
	for trial := 0; trial < 300; trial++ {
		n := int(rng.next()%4) + 1
		cs := make([]Circle, n)
		for i := range cs {
			cs[i] = randCircle(rng, w, h)
		}
		want := make([]bool, w*h)
		for _, c := range cs {
			x0, x1 := c.PixelCols(w)
			y0, y1 := c.PixelRows(h)
			for y := y0; y < y1; y++ {
				xa, xb := c.RowSpan(y, x0, x1)
				for x := xa; x < xb; x++ {
					want[y*w+x] = true
				}
			}
		}
		got := make([]bool, w*h)
		lastY, lastB := -1, -1
		UnionSpans(w, h, cs, func(y, xa, xb int) {
			if xa >= xb {
				t.Fatalf("empty union span at row %d", y)
			}
			if y < lastY || (y == lastY && xa <= lastB) {
				t.Fatalf("union spans out of order or overlapping: row %d span [%d,%d) after row %d end %d",
					y, xa, xb, lastY, lastB)
			}
			lastY, lastB = y, xb
			for x := xa; x < xb; x++ {
				got[y*w+x] = true
			}
		})
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: union mismatch at pixel (%d,%d): want %v",
					trial, i%w, i/w, want[i])
			}
		}
	}
}
