package geom

import "math"

// Scanline span support.
//
// A pixel (x, y) is covered by a circle c exactly when the pixel centre
// (x+0.5, y+0.5) lies inside or on c — the same predicate the likelihood
// and coverage kernels have always used. Because a disc's intersection
// with a pixel row is a single interval, the covered pixels of row y form
// one contiguous x-range [xa, xb). Computing that range analytically (one
// sqrt per row) lets kernels iterate exactly the covered pixels instead of
// scanning the full bounding box with a per-pixel multiply-compare: ~π/4
// of the box's pixels, and no float math in the inner loop.
//
// Invariants (relied on by internal/model's differential tests):
//
//   - RowSpan(y, x0, x1) = { x ∈ [x0, x1) : coveredX(c, y, x) } exactly,
//     where coveredX is the canonical predicate below. The sqrt only
//     seeds the boundary search; the result is fixed up against the
//     predicate itself, so float rounding can never shift a span edge.
//   - Spans are clipped to the circle's pixel bounding box (PixelCols ×
//     PixelRows), matching the historical bounding-box kernels pixel for
//     pixel.
//   - Rows outside PixelRows, and rows whose centre line misses the disc,
//     yield the empty span (0, 0).

// coveredX is the canonical pixel-coverage predicate: does the centre of
// pixel x lie inside the circle with centre x-coordinate cx, squared
// radius r2, at squared row distance dy2? The float64 conversion forces
// the multiply to round separately so the result is identical on
// architectures where the compiler may otherwise fuse multiply-adds.
func coveredX(cx, dy2, r2 float64, x int) bool {
	dx := float64(x) + 0.5 - cx
	return float64(dx*dx)+dy2 <= r2
}

// PixelRows returns the clipped row range [y0, y1) of the circle's pixel
// bounding box in an image of height h.
func (c Circle) PixelRows(h int) (y0, y1 int) {
	y0 = clampSpan(int(math.Floor(c.Y-c.R-0.5)), 0, h)
	y1 = clampSpan(int(math.Ceil(c.Y+c.R+0.5)), 0, h)
	return
}

// PixelCols returns the clipped column range [x0, x1) of the circle's
// pixel bounding box in an image of width w.
func (c Circle) PixelCols(w int) (x0, x1 int) {
	x0 = clampSpan(int(math.Floor(c.X-c.R-0.5)), 0, w)
	x1 = clampSpan(int(math.Ceil(c.X+c.R+0.5)), 0, w)
	return
}

// RowSpan returns the covered pixel x-range [xa, xb) of row y, clipped to
// [x0, x1). It returns (0, 0) when the row is not covered.
//
// The fast path derives both edges from one sqrt and takes them when the
// edge positions are provably further from an integer than the float
// rounding error could reach (the overwhelmingly common case); otherwise
// rowSpanExact pins the edges to the coverage predicate pixel by pixel.
// Either way the result equals the per-pixel scan exactly. RowSpan is
// small enough to inline into the kernels' row loops.
func (c Circle) RowSpan(y, x0, x1 int) (xa, xb int) {
	r2 := c.R * c.R
	dy := float64(y) + 0.5 - c.Y
	dy2 := dy * dy
	rad := r2 - dy2
	if rad < 0 || x0 >= x1 {
		return 0, 0
	}
	half := math.Sqrt(rad)
	lo := c.X - half - 0.5
	hi := c.X + half - 0.5
	flo := math.Floor(lo)
	fhi := math.Floor(hi)
	// eb bounds how far float rounding (in r2−dy2, the sqrt, and the
	// coverage predicate itself) can displace the true edge positions:
	// ~2 ulp of r2 divided by the boundary slope 2·half, plus position
	// ulps — scaled up ~100× for safety. Near-tangent rows (half → 0)
	// make eb large and fall through to the exact path, as do edges
	// within eb of an integer, where ceil/floor could pick the wrong
	// pixel. The exact path consults the predicate directly, so the fast
	// path never has to be trusted at the boundary.
	eb := 1e-13 * (r2/half + math.Abs(c.X) + 1)
	if fl := lo - flo; fl < eb || fl > 1-eb {
		return c.rowSpanExact(dy2, r2, x0, x1)
	}
	if fh := hi - fhi; fh < eb || fh > 1-eb {
		return c.rowSpanExact(dy2, r2, x0, x1)
	}
	xa = int(flo) + 1 // = ceil(lo): lo is provably non-integral here
	xb = int(fhi) + 1
	if xa < x0 {
		xa = x0
	}
	if xb > x1 {
		xb = x1
	}
	if xa >= xb {
		return 0, 0
	}
	return xa, xb
}

// rowSpanExact is RowSpan's slow path: seed the edges from the sqrt, then
// pin both to the exact coverage predicate. Each loop runs at most a step
// or two; the path is only taken for boundary-ambiguous rows.
func (c Circle) rowSpanExact(dy2, r2 float64, x0, x1 int) (xa, xb int) {
	half := math.Sqrt(r2 - dy2)
	xa = clampSpan(int(math.Ceil(c.X-half-0.5)), x0, x1)
	xb = clampSpan(int(math.Floor(c.X+half-0.5))+1, x0, x1)
	for xa > x0 && coveredX(c.X, dy2, r2, xa-1) {
		xa--
	}
	for xa < xb && !coveredX(c.X, dy2, r2, xa) {
		xa++
	}
	for xb > xa && !coveredX(c.X, dy2, r2, xb-1) {
		xb--
	}
	for xb < x1 && coveredX(c.X, dy2, r2, xb) {
		xb++
	}
	if xa >= xb {
		return 0, 0
	}
	return xa, xb
}

// DiscSpans calls fn(y, xa, xb) for every image row y on which c covers
// at least one pixel centre, with [xa, xb) the covered x-range clipped to
// an image of width w and height h. Rows arrive in increasing order.
func DiscSpans(w, h int, c Circle, fn func(y, xa, xb int)) {
	x0, x1 := c.PixelCols(w)
	y0, y1 := c.PixelRows(h)
	for y := y0; y < y1; y++ {
		if xa, xb := c.RowSpan(y, x0, x1); xa < xb {
			fn(y, xa, xb)
		}
	}
}

// Span is one covered pixel interval [X0, X1) of image row Y. int32
// fields keep the batched span tables compact (12 bytes per row), which
// matters for the stack buffers the kernels iterate; image dimensions
// are far below the int32 range.
type Span struct {
	Y, X0, X1 int32
}

// AppendDiscSpans appends c's covered row spans (clipped to w×h, rows
// increasing, empty rows omitted) to dst and returns it. It is the
// batched form of RowSpan: one call computes the whole disc, with the
// per-row certainty test rearranged to be division-free, so kernels pay
// one function call per disc instead of one per row. Pass a stack-backed
// dst (e.g. buf[:0] of a local array) and the spans never escape to the
// heap.
func AppendDiscSpans(dst []Span, w, h int, c Circle) []Span {
	x0, x1 := c.PixelCols(w)
	y0, y1 := c.PixelRows(h)
	if x0 >= x1 || y0 >= y1 {
		return dst
	}
	// Reserve the whole row range up front and write by index: the hot
	// loop then carries no per-row append bookkeeping.
	base := len(dst)
	if cap(dst)-base < y1-y0 {
		grown := make([]Span, base, base+(y1-y0))
		copy(grown, dst)
		dst = grown
	}
	out := dst[:base+(y1-y0)]
	n := base
	r2 := c.R * c.R
	cx := c.X
	// Division-free certainty margin: RowSpan tests frac < eb with
	// eb = 1e-13·(r2/half + |cx| + 1); multiplying through by half gives
	// frac·half < ebA + ebB·half with the per-disc constants below.
	ebA := 1e-13 * r2
	ebB := 1e-13 * (math.Abs(cx) + 1)
	for y := y0; y < y1; y++ {
		dy := float64(y) + 0.5 - c.Y
		rad := r2 - dy*dy
		if rad < 0 {
			continue
		}
		half := math.Sqrt(rad)
		lo := cx - half - 0.5
		hi := cx + half - 0.5
		flo := math.Floor(lo)
		fhi := math.Floor(hi)
		ebH := ebA + ebB*half
		fl := (lo - flo) * half
		fh := (hi - fhi) * half
		var xa, xb int
		if fl < ebH || fl > half-ebH || fh < ebH || fh > half-ebH {
			// Edge too close to an integer (or a near-tangent row):
			// consult the exact predicate.
			xa, xb = c.rowSpanExact(dy*dy, r2, x0, x1)
			if xa >= xb {
				continue
			}
		} else {
			xa = int(flo) + 1
			xb = int(fhi) + 1
			if xa < x0 {
				xa = x0
			}
			if xb > x1 {
				xb = x1
			}
			if xa >= xb {
				continue
			}
		}
		out[n] = Span{Y: int32(y), X0: int32(xa), X1: int32(xb)}
		n++
	}
	return out[:n]
}

// UnionSpans calls fn(y, xa, xb) for every maximal run of pixels covered
// by at least one circle in cs, row by row in increasing y, spans in
// increasing x. It allocates only when len(cs) exceeds a small internal
// limit.
//
// Like DiscSpans, this is the general-purpose iterator form of the span
// machinery — rasterisation, region accounting, tests. The likelihood
// kernels do not call it: they need per-pixel coverage *multiplicities*,
// so model.LikDeltaMulti cuts rows into constant-multiplicity segments
// itself (and the single-disc kernels batch via AppendDiscSpans).
func UnionSpans(w, h int, cs []Circle, fn func(y, xa, xb int)) {
	if len(cs) == 0 {
		return
	}
	// Union row range.
	y0, y1 := h, 0
	for _, c := range cs {
		cy0, cy1 := c.PixelRows(h)
		if cy0 < y0 {
			y0 = cy0
		}
		if cy1 > y1 {
			y1 = cy1
		}
	}
	var buf [8][2]int
	spans := buf[:0]
	if len(cs) > len(buf) {
		spans = make([][2]int, 0, len(cs))
	}
	for y := y0; y < y1; y++ {
		spans = spans[:0]
		for _, c := range cs {
			x0, x1 := c.PixelCols(w)
			if xa, xb := c.RowSpan(y, x0, x1); xa < xb {
				// Insertion sort by start; len(cs) is tiny.
				i := len(spans)
				spans = append(spans, [2]int{xa, xb})
				for i > 0 && spans[i-1][0] > xa {
					spans[i] = spans[i-1]
					i--
				}
				spans[i] = [2]int{xa, xb}
			}
		}
		if len(spans) == 0 {
			continue
		}
		// Merge overlapping/adjacent spans and emit.
		curA, curB := spans[0][0], spans[0][1]
		for _, sp := range spans[1:] {
			if sp[0] > curB {
				fn(y, curA, curB)
				curA, curB = sp[0], sp[1]
				continue
			}
			if sp[1] > curB {
				curB = sp[1]
			}
		}
		fn(y, curA, curB)
	}
}

func clampSpan(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
