package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCircleContains(t *testing.T) {
	c := Circle{X: 10, Y: 10, R: 5}
	cases := []struct {
		x, y float64
		want bool
	}{
		{10, 10, true},
		{15, 10, true}, // on boundary
		{15.1, 10, false},
		{13, 13, true}, // dist ~4.24
		{14, 14, false},
	}
	for _, tc := range cases {
		if got := c.Contains(tc.x, tc.y); got != tc.want {
			t.Errorf("Contains(%v,%v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestCircleBounds(t *testing.T) {
	c := Circle{X: 3, Y: 4, R: 2}
	b := c.Bounds()
	want := Rect{X0: 1, Y0: 2, X1: 5, Y1: 6}
	if b != want {
		t.Fatalf("Bounds = %+v, want %+v", b, want)
	}
}

func TestOverlapAreaDisjoint(t *testing.T) {
	a := Circle{X: 0, Y: 0, R: 1}
	b := Circle{X: 3, Y: 0, R: 1}
	if area := a.OverlapArea(b); area != 0 {
		t.Fatalf("disjoint overlap = %v", area)
	}
}

func TestOverlapAreaContained(t *testing.T) {
	a := Circle{X: 0, Y: 0, R: 5}
	b := Circle{X: 1, Y: 0, R: 1}
	if area := a.OverlapArea(b); !almostEq(area, math.Pi, 1e-9) {
		t.Fatalf("contained overlap = %v, want pi", area)
	}
}

func TestOverlapAreaIdentical(t *testing.T) {
	a := Circle{X: 2, Y: 2, R: 3}
	if area := a.OverlapArea(a); !almostEq(area, a.Area(), 1e-9) {
		t.Fatalf("self overlap = %v, want %v", area, a.Area())
	}
}

func TestOverlapAreaHalfway(t *testing.T) {
	// Two unit circles at distance d have lens area
	// 2 r^2 cos^-1(d/2r) - (d/2) sqrt(4r^2 - d^2).
	a := Circle{X: 0, Y: 0, R: 1}
	b := Circle{X: 1, Y: 0, R: 1}
	want := 2*math.Acos(0.5) - 0.5*math.Sqrt(3)
	if area := a.OverlapArea(b); !almostEq(area, want, 1e-9) {
		t.Fatalf("lens area = %v, want %v", area, want)
	}
}

// Property: overlap area is symmetric and bounded by the smaller disc.
func TestOverlapAreaProperty(t *testing.T) {
	r := rng.New(1)
	f := func() bool {
		a := Circle{X: r.Uniform(-10, 10), Y: r.Uniform(-10, 10), R: r.Uniform(0.1, 5)}
		b := Circle{X: r.Uniform(-10, 10), Y: r.Uniform(-10, 10), R: r.Uniform(0.1, 5)}
		ab := a.OverlapArea(b)
		ba := b.OverlapArea(a)
		if !almostEq(ab, ba, 1e-9) {
			return false
		}
		smaller := math.Min(a.Area(), b.Area())
		return ab >= -1e-12 && ab <= smaller+1e-9
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectsConsistentWithOverlap(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 2000; i++ {
		a := Circle{X: r.Uniform(0, 20), Y: r.Uniform(0, 20), R: r.Uniform(0.1, 4)}
		b := Circle{X: r.Uniform(0, 20), Y: r.Uniform(0, 20), R: r.Uniform(0.1, 4)}
		overlap := a.OverlapArea(b) > 1e-12
		if overlap && !a.Intersects(b) {
			t.Fatalf("positive overlap but Intersects false: %+v %+v", a, b)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(1, 2, 3, 4)
	if r.W() != 3 || r.H() != 4 || r.Area() != 12 {
		t.Fatalf("RectWH wrong: %+v", r)
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !(Rect{X0: 1, Y0: 1, X1: 1, Y1: 5}).Empty() {
		t.Fatal("zero-width rect not empty")
	}
}

func TestRectContainsPointHalfOpen(t *testing.T) {
	r := Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	if !r.ContainsPoint(0, 0) {
		t.Fatal("lower-left corner should be inside")
	}
	if r.ContainsPoint(10, 5) || r.ContainsPoint(5, 10) {
		t.Fatal("upper edges should be excluded (half-open)")
	}
}

func TestRectContainsCircleMargin(t *testing.T) {
	r := Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	c := Circle{X: 10, Y: 10, R: 5}
	if !r.ContainsCircle(c, 4) {
		t.Fatal("circle with margin 4 fits (10-9 >= 0)")
	}
	if r.ContainsCircle(c, 6) {
		t.Fatal("circle with margin 6 must not fit (10-11 < 0)")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	b := Rect{X0: 5, Y0: 5, X1: 15, Y1: 15}
	got := a.Intersect(b)
	want := Rect{X0: 5, Y0: 5, X1: 10, Y1: 10}
	if got != want {
		t.Fatalf("Intersect = %+v", got)
	}
	u := a.Union(b)
	if u != (Rect{X0: 0, Y0: 0, X1: 15, Y1: 15}) {
		t.Fatalf("Union = %+v", u)
	}
	disjoint := a.Intersect(Rect{X0: 20, Y0: 20, X1: 30, Y1: 30})
	if !disjoint.Empty() {
		t.Fatalf("disjoint intersect non-empty: %+v", disjoint)
	}
}

func TestRectExpandClip(t *testing.T) {
	r := Rect{X0: 5, Y0: 5, X1: 10, Y1: 10}
	e := r.Expand(2)
	if e != (Rect{X0: 3, Y0: 3, X1: 12, Y1: 12}) {
		t.Fatalf("Expand = %+v", e)
	}
	clipped := e.Clip(Rect{X0: 0, Y0: 0, X1: 11, Y1: 20})
	if clipped != (Rect{X0: 3, Y0: 3, X1: 11, Y1: 12}) {
		t.Fatalf("Clip = %+v", clipped)
	}
}

func TestGridCellsTileBounds(t *testing.T) {
	bounds := Rect{X0: 0, Y0: 0, X1: 100, Y1: 60}
	r := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		xm := r.Uniform(5, 150)
		ym := r.Uniform(5, 150)
		g := NewGrid(bounds, xm, ym, r.Uniform(0, xm), r.Uniform(0, ym))
		cells := g.Cells()
		total := 0.0
		for i, c := range cells {
			if c.Empty() {
				t.Fatalf("empty cell emitted: %+v", c)
			}
			total += c.Area()
			for j := i + 1; j < len(cells); j++ {
				if c.IntersectsRect(cells[j]) {
					t.Fatalf("cells %d and %d overlap: %+v %+v", i, j, c, cells[j])
				}
			}
		}
		if !almostEq(total, bounds.Area(), 1e-6) {
			t.Fatalf("cells cover %v of %v", total, bounds.Area())
		}
	}
}

func TestGridCellAtMatchesCells(t *testing.T) {
	bounds := Rect{X0: 0, Y0: 0, X1: 50, Y1: 50}
	g := NewGrid(bounds, 17, 13, 5, 9)
	r := rng.New(4)
	cells := g.Cells()
	for i := 0; i < 2000; i++ {
		x, y := r.Uniform(0, 50), r.Uniform(0, 50)
		cell, ok := g.CellAt(x, y)
		if !ok {
			t.Fatalf("point (%v,%v) inside bounds but CellAt failed", x, y)
		}
		if !cell.ContainsPoint(x, y) {
			t.Fatalf("CellAt(%v,%v) = %+v does not contain the point", x, y, cell)
		}
		found := false
		for _, c := range cells {
			if c == cell {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("CellAt returned %+v not present in Cells()", cell)
		}
	}
}

func TestGridCellAtOutside(t *testing.T) {
	g := NewGrid(Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, 5, 5, 0, 0)
	if _, ok := g.CellAt(-1, 5); ok {
		t.Fatal("point outside bounds should fail")
	}
	if _, ok := g.CellAt(10, 5); ok {
		t.Fatal("right edge is exclusive")
	}
}

func TestGridOffsetNormalised(t *testing.T) {
	g := NewGrid(Rect{X1: 10, Y1: 10}, 4, 4, 13, -3)
	if g.OX < 0 || g.OX >= 4 || g.OY < 0 || g.OY >= 4 {
		t.Fatalf("offset not normalised: %v %v", g.OX, g.OY)
	}
}

func TestGridSpacingLargerThanBounds(t *testing.T) {
	bounds := Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	g := NewGrid(bounds, 150, 150, 60, 40)
	cells := g.Cells()
	// Offset inside the image with spacing > image produces exactly 4
	// partitions meeting at a single point (the paper's fig. 2 layout).
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4: %+v", len(cells), cells)
	}
}

func TestNewGridPanicsOnBadSpacing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero spacing")
		}
	}()
	NewGrid(Rect{X1: 10, Y1: 10}, 0, 5, 0, 0)
}

func TestQuarterSplit(t *testing.T) {
	bounds := Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	quads := QuarterSplit(bounds, 30, 70)
	if len(quads) != 4 {
		t.Fatalf("got %d quadrants", len(quads))
	}
	total := 0.0
	for _, q := range quads {
		total += q.Area()
	}
	if !almostEq(total, bounds.Area(), 1e-9) {
		t.Fatalf("quadrants cover %v", total)
	}
	// Degenerate cut along an edge drops empty slivers.
	if got := QuarterSplit(bounds, 0, 50); len(got) != 2 {
		t.Fatalf("edge cut produced %d parts, want 2", len(got))
	}
}

func TestUniformSplit(t *testing.T) {
	bounds := Rect{X0: 0, Y0: 0, X1: 90, Y1: 60}
	cells := UniformSplit(bounds, 3, 2)
	if len(cells) != 6 {
		t.Fatalf("got %d cells", len(cells))
	}
	total := 0.0
	for _, c := range cells {
		total += c.Area()
		if !almostEq(c.Area(), 30*30, 1e-9) {
			t.Fatalf("unequal cell: %+v", c)
		}
	}
	if !almostEq(total, bounds.Area(), 1e-9) {
		t.Fatalf("cells cover %v", total)
	}
}

func TestUniformSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero counts")
		}
	}()
	UniformSplit(Rect{X1: 1, Y1: 1}, 0, 1)
}

func TestTranslate(t *testing.T) {
	c := Circle{X: 1, Y: 2, R: 3}
	got := c.Translate(10, -2)
	if got != (Circle{X: 11, Y: 0, R: 3}) {
		t.Fatalf("Translate = %+v", got)
	}
}
