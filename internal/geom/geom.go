// Package geom provides the planar geometry used by the MCMC image model:
// the generic Shape layer (discs and ellipses with exact, predicate-pinned
// scanline spans — see shape.go), rectangles, pairwise overlap areas, and
// the partitioning grids of the paper's periodic and blind parallelisation
// schemes. Ellipse is the configuration element type of the whole stack;
// a disc is exactly the Rx == Ry case and keeps its tuned fast paths.
package geom

import "math"

// Circle is a disc with centre (X, Y) and radius R, in pixel coordinates.
type Circle struct {
	X, Y, R float64
}

// Contains reports whether the point (x, y) lies inside or on the circle.
func (c Circle) Contains(x, y float64) bool {
	dx, dy := x-c.X, y-c.Y
	return dx*dx+dy*dy <= c.R*c.R
}

// Bounds returns the tight axis-aligned bounding rectangle of the circle.
func (c Circle) Bounds() Rect {
	return Rect{X0: c.X - c.R, Y0: c.Y - c.R, X1: c.X + c.R, Y1: c.Y + c.R}
}

// Area returns the circle's area.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// Dist returns the distance between the centres of c and o.
func (c Circle) Dist(o Circle) float64 {
	return math.Hypot(c.X-o.X, c.Y-o.Y)
}

// Intersects reports whether the two discs overlap (share interior area).
func (c Circle) Intersects(o Circle) bool {
	rr := c.R + o.R
	dx, dy := c.X-o.X, c.Y-o.Y
	return dx*dx+dy*dy < rr*rr
}

// OverlapArea returns the area of intersection of two discs. It is zero
// when they are disjoint and min(area) when one contains the other.
func (c Circle) OverlapArea(o Circle) float64 {
	d := c.Dist(o)
	if d >= c.R+o.R {
		return 0
	}
	small, big := c.R, o.R
	if small > big {
		small, big = big, small
	}
	if d <= big-small {
		return math.Pi * small * small
	}
	// Standard lens-area formula.
	r1, r2 := c.R, o.R
	d2 := d * d
	a1 := r1 * r1 * math.Acos((d2+r1*r1-r2*r2)/(2*d*r1))
	a2 := r2 * r2 * math.Acos((d2+r2*r2-r1*r1)/(2*d*r2))
	k := (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)
	if k < 0 {
		k = 0
	}
	return a1 + a2 - 0.5*math.Sqrt(k)
}

// Translate returns the circle shifted by (dx, dy).
func (c Circle) Translate(dx, dy float64) Circle {
	return Circle{X: c.X + dx, Y: c.Y + dy, R: c.R}
}

// Rect is an axis-aligned rectangle [X0, X1) x [Y0, Y1).
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// RectWH returns a rectangle with origin (x, y) and the given width and
// height.
func RectWH(x, y, w, h float64) Rect {
	return Rect{X0: x, Y0: y, X1: x + w, Y1: y + h}
}

// W returns the rectangle's width (never negative for a valid Rect).
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the rectangle's height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle has no interior.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// ContainsPoint reports whether (x, y) lies in [X0, X1) x [Y0, Y1).
func (r Rect) ContainsPoint(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// ContainsCircle reports whether the whole disc, expanded by margin, lies
// strictly inside the rectangle. This is the eligibility test of §V: a
// feature may only be modified by a partition's local worker if the
// feature plus its likelihood halo cannot touch the partition boundary.
func (r Rect) ContainsCircle(c Circle, margin float64) bool {
	e := c.R + margin
	return c.X-e >= r.X0 && c.X+e <= r.X1 && c.Y-e >= r.Y0 && c.Y+e <= r.Y1
}

// Intersect returns the intersection of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: math.Max(r.X0, o.X0), Y0: math.Max(r.Y0, o.Y0),
		X1: math.Min(r.X1, o.X1), Y1: math.Min(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		X0: math.Min(r.X0, o.X0), Y0: math.Min(r.Y0, o.Y0),
		X1: math.Max(r.X1, o.X1), Y1: math.Max(r.Y1, o.Y1),
	}
}

// Expand returns the rectangle grown by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{X0: r.X0 - m, Y0: r.Y0 - m, X1: r.X1 + m, Y1: r.Y1 + m}
}

// Clip returns the rectangle clipped to the bounds rectangle.
func (r Rect) Clip(bounds Rect) Rect { return r.Intersect(bounds) }

// IntersectsRect reports whether the two rectangles share interior area.
func (r Rect) IntersectsRect(o Rect) bool {
	return r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}
