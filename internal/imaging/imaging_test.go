package imaging

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestNewAndAccessors(t *testing.T) {
	im := New(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("bad image: %+v", im)
	}
	im.Set(2, 1, 0.5)
	if im.At(2, 1) != 0.5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if im.At(0, 0) != 0 {
		t.Fatal("fresh image not zeroed")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(-1, 5)
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	b := a.Clone()
	b.Set(0, 0, 0.25)
	if a.At(0, 0) != 1 {
		t.Fatal("clone aliases parent")
	}
}

func TestSubImage(t *testing.T) {
	im := New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			im.Set(x, y, float64(y*10+x))
		}
	}
	sub, off := im.SubImage(geom.Rect{X0: 2, Y0: 3, X1: 5, Y1: 7})
	if off != [2]int{2, 3} {
		t.Fatalf("offset = %v", off)
	}
	if sub.W != 3 || sub.H != 4 {
		t.Fatalf("sub dims %dx%d", sub.W, sub.H)
	}
	if sub.At(0, 0) != 32 || sub.At(2, 3) != 64 {
		t.Fatalf("sub content wrong: %v %v", sub.At(0, 0), sub.At(2, 3))
	}
}

func TestSubImageClipsToBounds(t *testing.T) {
	im := New(5, 5)
	sub, off := im.SubImage(geom.Rect{X0: -3, Y0: -3, X1: 100, Y1: 2})
	if off != [2]int{0, 0} || sub.W != 5 || sub.H != 2 {
		t.Fatalf("clip failed: off=%v dims=%dx%d", off, sub.W, sub.H)
	}
	empty, _ := im.SubImage(geom.Rect{X0: 9, Y0: 9, X1: 10, Y1: 10})
	if empty.W != 0 || empty.H != 0 {
		t.Fatalf("out-of-range sub not empty: %dx%d", empty.W, empty.H)
	}
}

func TestThresholdAndCount(t *testing.T) {
	im := New(3, 1)
	im.Pix = []float64{0.2, 0.6, 0.9}
	th := im.Threshold(0.5)
	if th.Pix[0] != 0 || th.Pix[1] != 1 || th.Pix[2] != 1 {
		t.Fatalf("threshold = %v", th.Pix)
	}
	if n := im.CountAbove(0.5); n != 2 {
		t.Fatalf("CountAbove = %d", n)
	}
}

func TestEstimateCountEq5(t *testing.T) {
	// Render k discs of radius r; eq. 5 should estimate ~k.
	r := rng.New(10)
	scene := Synthesize(SceneSpec{
		W: 256, H: 256, Count: 12, MeanRadius: 9, RadiusStdDev: 0,
		MinSeparation: 1.1, Noise: 0,
	}, r)
	est := scene.Image.EstimateCount(0.5, 9)
	if math.Abs(est-float64(len(scene.Truth))) > 2 {
		t.Fatalf("eq5 estimate %v for %d discs", est, len(scene.Truth))
	}
}

func TestEstimateCountInPartition(t *testing.T) {
	im := New(100, 100)
	RenderShape(im, geom.Disc(25, 25, 8), 1)
	RenderShape(im, geom.Disc(75, 75, 8), 1)
	left := im.EstimateCountIn(0.5, 8, geom.Rect{X0: 0, Y0: 0, X1: 50, Y1: 100})
	if math.Abs(left-1) > 0.3 {
		t.Fatalf("left-half estimate %v, want ~1", left)
	}
	if im.EstimateCountIn(0.5, 0, geom.Rect{X1: 50, Y1: 100}) != 0 {
		t.Fatal("zero radius must yield 0")
	}
}

func TestEmphasize(t *testing.T) {
	im := New(3, 1)
	im.Pix = []float64{0.1, 0.8, 0.5}
	out := im.Emphasize(0.8, 0.2)
	if out.Pix[1] <= out.Pix[0] || out.Pix[1] <= out.Pix[2] {
		t.Fatalf("target intensity not emphasised: %v", out.Pix)
	}
	if out.Pix[1] < 0.99 {
		t.Fatalf("exact match should be ~1, got %v", out.Pix[1])
	}
}

func TestEmphasizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1, 1).Emphasize(0.5, 0)
}

func TestBlankOutside(t *testing.T) {
	im := New(10, 10)
	im.Fill(1)
	im.BlankOutside(geom.Rect{X0: 2, Y0: 2, X1: 5, Y1: 5})
	if im.At(0, 0) != 0 || im.At(7, 7) != 0 {
		t.Fatal("outside pixels not blanked")
	}
	if im.At(3, 3) != 1 {
		t.Fatal("inside pixel blanked")
	}
}

func TestRenderDiscCoversExpectedArea(t *testing.T) {
	im := New(100, 100)
	c := geom.Disc(50, 50, 15)
	RenderShape(im, c, 1)
	total := 0.0
	for _, v := range im.Pix {
		total += v
	}
	want := c.Area()
	if math.Abs(total-want)/want > 0.02 {
		t.Fatalf("rendered mass %v, want ~%v", total, want)
	}
}

func TestRenderDiscClipsAtBorder(t *testing.T) {
	im := New(20, 20)
	// Must not panic and must only paint in-bounds pixels.
	RenderShape(im, geom.Disc(0, 0, 10), 1)
	RenderShape(im, geom.Disc(25, 25, 10), 1)
	if im.At(19, 19) == 0 {
		t.Fatal("disc at (25,25,r=10) should reach (19,19)")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec := SceneSpec{W: 64, H: 64, Count: 5, MeanRadius: 6, Noise: 0.05}
	a := Synthesize(spec, rng.New(42))
	b := Synthesize(spec, rng.New(42))
	if !a.Image.Equal(b.Image, 0) {
		t.Fatal("same seed produced different images")
	}
	if len(a.Truth) != len(b.Truth) {
		t.Fatal("same seed produced different truths")
	}
}

func TestSynthesizeClustered(t *testing.T) {
	r := rng.New(7)
	scene := Synthesize(SceneSpec{
		W: 300, H: 300, Count: 30, Clusters: 3, MeanRadius: 8,
	}, r)
	if len(scene.Truth) != 30 {
		t.Fatalf("placed %d artifacts", len(scene.Truth))
	}
	// Clustered scenes should leave large empty bands: check that some
	// 60px column strip is empty of artifact centres.
	found := false
	for x0 := 0.0; x0 <= 240; x0 += 10 {
		empty := true
		for _, c := range scene.Truth {
			if c.X >= x0-c.MaxR() && c.X <= x0+60+c.MaxR() {
				empty = false
				break
			}
		}
		if empty {
			found = true
			break
		}
	}
	// This is probabilistic but overwhelmingly likely for 3 tight
	// clusters in a 300px frame; failure indicates clustering is broken.
	if !found {
		t.Log("no empty 60px band found; clustering may be too loose")
	}
}

func TestSynthesizeMinSeparation(t *testing.T) {
	r := rng.New(9)
	scene := Synthesize(SceneSpec{
		W: 400, H: 400, Count: 20, MeanRadius: 10, RadiusStdDev: 0,
		MinSeparation: 1.0,
	}, r)
	for i, a := range scene.Truth {
		for _, b := range scene.Truth[i+1:] {
			if a.Dist(b) < (a.MaxR()+b.MaxR())-1e-9 {
				t.Fatalf("overlapping artifacts placed: %+v %+v", a, b)
			}
		}
	}
}

func TestPGMRoundTrip(t *testing.T) {
	r := rng.New(3)
	scene := Synthesize(SceneSpec{W: 33, H: 17, Count: 3, MeanRadius: 4, Noise: 0.1}, r)
	var buf bytes.Buffer
	if err := scene.Image.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !scene.Image.Equal(back, 1.0/255+1e-9) {
		t.Fatal("PGM roundtrip lost more than quantisation error")
	}
}

func TestReadPGMAscii(t *testing.T) {
	src := "P2\n# a comment\n3 2\n255\n0 128 255\n64 32 16\n"
	im, err := ReadPGM(bytes.NewBufferString(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 3 || im.H != 2 {
		t.Fatalf("dims %dx%d", im.W, im.H)
	}
	if math.Abs(im.At(1, 0)-128.0/255) > 1e-9 {
		t.Fatalf("pixel = %v", im.At(1, 0))
	}
}

func TestReadPGMErrors(t *testing.T) {
	cases := []string{
		"",
		"P9\n1 1\n255\n\x00",
		"P5\n0 0\n255\n",
		"P5\n2 2\n255\nab", // truncated raster
	}
	for _, src := range cases {
		if _, err := ReadPGM(bytes.NewBufferString(src)); err == nil {
			t.Errorf("ReadPGM(%q) succeeded, want error", src)
		}
	}
}

func TestWritePNG(t *testing.T) {
	im := New(8, 8)
	im.Fill(0.5)
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || string(buf.Bytes()[1:4]) != "PNG" {
		t.Fatal("not a PNG")
	}
}

func TestWriteOverlayPNG(t *testing.T) {
	im := New(32, 32)
	var buf bytes.Buffer
	err := im.WriteOverlayPNG(&buf, []geom.Ellipse{geom.Disc(16, 16, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty PNG")
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	r := rng.New(5)
	im := New(37, 23)
	for i := range im.Pix {
		im.Pix[i] = r.Float64()
	}
	it := NewIntegral(im)
	for trial := 0; trial < 500; trial++ {
		x0, x1 := r.Intn(im.W+1), r.Intn(im.W+1)
		y0, y1 := r.Intn(im.H+1), r.Intn(im.H+1)
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		want := 0.0
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				want += im.At(x, y)
			}
		}
		got := it.Sum(x0, y0, x1, y1)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Sum(%d,%d,%d,%d) = %v, want %v", x0, y0, x1, y1, got, want)
		}
	}
}

func TestIntegralClipsAndEmpty(t *testing.T) {
	im := New(4, 4)
	im.Fill(1)
	it := NewIntegral(im)
	if got := it.Sum(-5, -5, 100, 100); got != 16 {
		t.Fatalf("clipped sum = %v", got)
	}
	if got := it.Sum(2, 2, 2, 3); got != 0 {
		t.Fatalf("empty sum = %v", got)
	}
	if got := it.Mean(0, 0, 4, 4); got != 1 {
		t.Fatalf("mean = %v", got)
	}
	if got := it.Mean(3, 3, 3, 3); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
}

// Property: thresholding twice is idempotent and CountAbove agrees with
// the thresholded image's mass.
func TestThresholdProperty(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint8) bool {
		im := New(16, 16)
		for i := range im.Pix {
			im.Pix[i] = r.Float64()
		}
		theta := r.Float64()
		th := im.Threshold(theta)
		again := th.Threshold(0.5)
		if !th.Equal(again, 0) {
			return false
		}
		mass := 0.0
		for _, v := range th.Pix {
			mass += v
		}
		return int(mass+0.5) == im.CountAbove(theta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndString(t *testing.T) {
	im := New(2, 1)
	im.Pix = []float64{0, 1}
	if im.Mean() != 0.5 {
		t.Fatalf("mean = %v", im.Mean())
	}
	if (&Image{}).Mean() != 0 {
		t.Fatal("empty image mean should be 0")
	}
	if im.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestClamp(t *testing.T) {
	im := New(3, 1)
	im.Pix = []float64{-0.5, 0.5, 1.5}
	im.Clamp()
	if im.Pix[0] != 0 || im.Pix[1] != 0.5 || im.Pix[2] != 1 {
		t.Fatalf("clamp = %v", im.Pix)
	}
}
