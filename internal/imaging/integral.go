package imaging

// Integral is a summed-area table over an image, giving O(1) rectangular
// sums. The likelihood pre-computations and the intelligent-partitioning
// scan use it to answer "is this band empty?" and "how much intensity is
// in this region?" without rescanning pixels.
type Integral struct {
	W, H int
	// sum[(y+1)*(W+1)+(x+1)] is the sum of pixels in [0,x] × [0,y].
	sum []float64
}

// NewIntegral builds the summed-area table of im in one pass.
func NewIntegral(im *Image) *Integral {
	it := &Integral{W: im.W, H: im.H, sum: make([]float64, (im.W+1)*(im.H+1))}
	stride := im.W + 1
	for y := 0; y < im.H; y++ {
		rowSum := 0.0
		for x := 0; x < im.W; x++ {
			rowSum += im.At(x, y)
			it.sum[(y+1)*stride+x+1] = it.sum[y*stride+x+1] + rowSum
		}
	}
	return it
}

// Sum returns the sum of pixels with x in [x0, x1) and y in [y0, y1),
// clipped to the image. An empty or inverted range sums to zero.
func (it *Integral) Sum(x0, y0, x1, y1 int) float64 {
	x0 = clampInt(x0, 0, it.W)
	y0 = clampInt(y0, 0, it.H)
	x1 = clampInt(x1, 0, it.W)
	y1 = clampInt(y1, 0, it.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	stride := it.W + 1
	return it.sum[y1*stride+x1] - it.sum[y0*stride+x1] -
		it.sum[y1*stride+x0] + it.sum[y0*stride+x0]
}

// Mean returns the mean over the same rectangle, or 0 if it is empty.
func (it *Integral) Mean(x0, y0, x1, y1 int) float64 {
	x0c := clampInt(x0, 0, it.W)
	y0c := clampInt(y0, 0, it.H)
	x1c := clampInt(x1, 0, it.W)
	y1c := clampInt(y1, 0, it.H)
	n := (x1c - x0c) * (y1c - y0c)
	if n <= 0 {
		return 0
	}
	return it.Sum(x0, y0, x1, y1) / float64(n)
}
