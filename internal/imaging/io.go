package imaging

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/geom"
)

// WritePGM writes the image as a binary PGM (P5) with 8-bit depth.
// Intensities are clamped to [0, 1] and scaled to 0–255.
func (im *Image) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	buf := make([]byte, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			buf[x] = toByte(im.At(x, y))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func toByte(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(v*255 + 0.5)
}

// ReadPGM parses a binary (P5) or ASCII (P2) PGM image, scaling samples
// to [0, 1].
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, fmt.Errorf("imaging: reading PGM magic: %w", err)
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("imaging: unsupported PGM magic %q", magic)
	}
	var w, h, maxv int
	for _, dst := range []*int{&w, &h, &maxv} {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("imaging: reading PGM header: %w", err)
		}
		if _, err := fmt.Sscanf(tok, "%d", dst); err != nil {
			return nil, fmt.Errorf("imaging: bad PGM header token %q", tok)
		}
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 65535 {
		return nil, fmt.Errorf("imaging: invalid PGM dimensions %dx%d max %d", w, h, maxv)
	}
	im := New(w, h)
	scale := 1 / float64(maxv)
	if magic == "P2" {
		for i := range im.Pix {
			tok, err := pgmToken(br)
			if err != nil {
				return nil, fmt.Errorf("imaging: reading PGM sample %d: %w", i, err)
			}
			var v int
			if _, err := fmt.Sscanf(tok, "%d", &v); err != nil {
				return nil, fmt.Errorf("imaging: bad PGM sample %q", tok)
			}
			im.Pix[i] = float64(v) * scale
		}
		return im, nil
	}
	// P5: raw samples, 1 or 2 bytes each.
	bytesPer := 1
	if maxv > 255 {
		bytesPer = 2
	}
	raw := make([]byte, w*h*bytesPer)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("imaging: reading PGM raster: %w", err)
	}
	for i := range im.Pix {
		var v int
		if bytesPer == 1 {
			v = int(raw[i])
		} else {
			v = int(raw[2*i])<<8 | int(raw[2*i+1])
		}
		im.Pix[i] = float64(v) * scale
	}
	return im, nil
}

// pgmToken returns the next whitespace-delimited token, skipping '#'
// comment lines as the PGM grammar requires.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

// WritePNG encodes the image as an 8-bit grayscale PNG.
func (im *Image) WritePNG(w io.Writer) error {
	g := image.NewGray(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			g.SetGray(x, y, color.Gray{Y: toByte(im.At(x, y))})
		}
	}
	return png.Encode(w, g)
}

// WriteOverlayPNG encodes the image as RGB PNG with the given circles
// outlined in red — handy for eyeballing detections.
func (im *Image) WriteOverlayPNG(w io.Writer, circles []geom.Ellipse) error {
	rgb := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := toByte(im.At(x, y))
			rgb.SetRGBA(x, y, color.RGBA{R: v, G: v, B: v, A: 255})
		}
	}
	red := color.RGBA{R: 255, A: 255}
	for _, c := range circles {
		drawCircleOutline(rgb, c, red)
	}
	return png.Encode(w, rgb)
}

func drawCircleOutline(img *image.RGBA, c geom.Ellipse, col color.RGBA) {
	// Parametric walk with sub-pixel steps, rotating the local-frame
	// boundary point by Theta (a no-op for discs).
	steps := int(c.MaxR()*8) + 16
	ct, st := math.Cos(c.Theta), math.Sin(c.Theta)
	for i := 0; i < steps; i++ {
		theta := 2 * math.Pi * float64(i) / float64(steps)
		u := c.Rx * math.Cos(theta)
		v := c.Ry * math.Sin(theta)
		x := int(c.X + u*ct - v*st)
		y := int(c.Y + u*st + v*ct)
		if x >= 0 && x < img.Rect.Dx() && y >= 0 && y < img.Rect.Dy() {
			img.SetRGBA(x, y, col)
		}
	}
}
