// Package imaging is the image substrate for the MCMC case study: a
// float64 grayscale image type, the colour-emphasis and threshold filters
// of §III/§VIII, a synthetic scene renderer that stands in for the paper's
// micrographs (see DESIGN.md §7 — Substitutions), integral images, and
// PGM/PNG input/output.
package imaging

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Image is a W×H grayscale image with float64 intensities, normally in
// [0, 1]. Pixels are stored row-major. The zero value is an empty image.
type Image struct {
	W, H int
	Pix  []float64
}

// New returns a zeroed (all-background) image of the given size.
func New(w, h int) *Image {
	if w < 0 || h < 0 {
		panic("imaging: negative image dimensions")
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the intensity at (x, y). It panics when out of range, like a
// slice access would.
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set assigns the intensity at (x, y).
func (im *Image) Set(x, y int, v float64) { im.Pix[y*im.W+x] = v }

// Bounds returns the image rectangle [0, W) × [0, H) in float coordinates.
func (im *Image) Bounds() geom.Rect {
	return geom.Rect{X1: float64(im.W), Y1: float64(im.H)}
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]float64, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// SubImage copies the pixels inside rect (clipped to the image, pixel
// coordinates truncated to integers) into a new standalone image. The
// second return value is the integer offset of the copy's origin in the
// source image, needed to translate detections back (§VIII partitioning).
func (im *Image) SubImage(rect geom.Rect) (*Image, [2]int) {
	x0 := clampInt(int(math.Floor(rect.X0)), 0, im.W)
	y0 := clampInt(int(math.Floor(rect.Y0)), 0, im.H)
	x1 := clampInt(int(math.Ceil(rect.X1)), 0, im.W)
	y1 := clampInt(int(math.Ceil(rect.Y1)), 0, im.H)
	if x1 < x0 {
		x1 = x0
	}
	if y1 < y0 {
		y1 = y0
	}
	out := New(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W:(y-y0+1)*out.W], im.Pix[y*im.W+x0:y*im.W+x1])
	}
	return out, [2]int{x0, y0}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Fill sets every pixel to v.
func (im *Image) Fill(v float64) {
	for i := range im.Pix {
		im.Pix[i] = v
	}
}

// Clamp limits every pixel to [0, 1].
func (im *Image) Clamp() {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 1 {
			im.Pix[i] = 1
		}
	}
}

// Mean returns the mean intensity, or 0 for an empty image.
func (im *Image) Mean() float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range im.Pix {
		s += v
	}
	return s / float64(len(im.Pix))
}

// Threshold returns a binary image: 1 where the intensity strictly
// exceeds theta, 0 elsewhere. This is the filter of eq. 5 and the
// intelligent-partitioning pre-processor (§VIII).
func (im *Image) Threshold(theta float64) *Image {
	out := New(im.W, im.H)
	for i, v := range im.Pix {
		if v > theta {
			out.Pix[i] = 1
		}
	}
	return out
}

// CountAbove returns |{(x,y) : I(x,y) > theta}| — the numerator of the
// eq. 5 object-count estimate.
func (im *Image) CountAbove(theta float64) int {
	n := 0
	for _, v := range im.Pix {
		if v > theta {
			n++
		}
	}
	return n
}

// CountAboveIn restricts CountAbove to the pixels whose centres lie in
// rect.
func (im *Image) CountAboveIn(theta float64, rect geom.Rect) int {
	x0 := clampInt(int(math.Floor(rect.X0)), 0, im.W)
	y0 := clampInt(int(math.Floor(rect.Y0)), 0, im.H)
	x1 := clampInt(int(math.Ceil(rect.X1)), 0, im.W)
	y1 := clampInt(int(math.Ceil(rect.Y1)), 0, im.H)
	n := 0
	for y := y0; y < y1; y++ {
		row := im.Pix[y*im.W : (y+1)*im.W]
		for x := x0; x < x1; x++ {
			if float64(x)+0.5 >= rect.X0 && float64(x)+0.5 < rect.X1 &&
				float64(y)+0.5 >= rect.Y0 && float64(y)+0.5 < rect.Y1 &&
				row[x] > theta {
				n++
			}
		}
	}
	return n
}

// EstimateCount implements eq. 5: the expected number of circular
// artifacts of mean radius r in the region where intensity exceeds theta,
//
//	|{(x,y) ∈ M : I(x,y) > θ}| / (π r²).
func (im *Image) EstimateCount(theta, meanRadius float64) float64 {
	if meanRadius <= 0 {
		return 0
	}
	return float64(im.CountAbove(theta)) / (math.Pi * meanRadius * meanRadius)
}

// EstimateCountIn applies eq. 5 to a sub-rectangle, which is how the
// partitioning methods assign per-partition prior knowledge.
func (im *Image) EstimateCountIn(theta, meanRadius float64, rect geom.Rect) float64 {
	if meanRadius <= 0 {
		return 0
	}
	return float64(im.CountAboveIn(theta, rect)) / (math.Pi * meanRadius * meanRadius)
}

// Emphasize applies the colour-of-interest filter of §III in grayscale
// form: intensities are remapped so that values near target are boosted
// toward 1 and values far from it are suppressed, with softness sigma.
// The output is clamped to [0, 1].
func (im *Image) Emphasize(target, sigma float64) *Image {
	if sigma <= 0 {
		panic("imaging: Emphasize needs positive sigma")
	}
	out := New(im.W, im.H)
	inv := 1 / (2 * sigma * sigma)
	for i, v := range im.Pix {
		d := v - target
		out.Pix[i] = math.Exp(-d * d * inv)
	}
	return out
}

// BlankOutside zeroes every pixel whose centre is outside rect. Intelligent
// partitioning uses this to hide neighbouring partitions' data from the
// likelihood ("the pixel data for neighbouring partitions will be blanked
// out", §IX).
func (im *Image) BlankOutside(rect geom.Rect) {
	for y := 0; y < im.H; y++ {
		cy := float64(y) + 0.5
		for x := 0; x < im.W; x++ {
			cx := float64(x) + 0.5
			if !rect.ContainsPoint(cx, cy) {
				im.Pix[y*im.W+x] = 0
			}
		}
	}
}

// Equal reports whether two images have identical dimensions and pixels
// within tol.
func (im *Image) Equal(o *Image, tol float64) bool {
	if im.W != o.W || im.H != o.H {
		return false
	}
	for i := range im.Pix {
		if math.Abs(im.Pix[i]-o.Pix[i]) > tol {
			return false
		}
	}
	return true
}

// String summarises the image for debugging.
func (im *Image) String() string {
	return fmt.Sprintf("Image(%dx%d, mean=%.3f)", im.W, im.H, im.Mean())
}
