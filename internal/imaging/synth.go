package imaging

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// SceneSpec describes a synthetic micrograph: bright artifacts (cell
// nuclei / latex beads) on a dark background. It substitutes for the
// paper's stained-tissue images while preserving the statistical structure
// the algorithms consume: shapes of high intensity with known ground
// truth. Artifacts are discs by default; Shape selects the family.
type SceneSpec struct {
	W, H int

	// Shape selects the artifact family (geom.KindDisc by default).
	// Ellipse scenes draw the major semi-axis from the radius
	// distribution below, the minor axis as AxisRatio (with AxisRatioStd
	// jitter) times the major, and a uniform rotation in [0, π).
	Shape geom.ShapeKind
	// AxisRatio is the mean minor/major axis ratio of ellipse scenes
	// (default 0.7); AxisRatioStd its Gaussian jitter (default 0.08).
	// Ratios are clamped to [0.5, 1] so minor axes stay detectable.
	AxisRatio    float64
	AxisRatioStd float64

	// Count is the number of artifacts to place. If Clusters > 0 the
	// artifacts are grouped into that many clumps (the latex-bead layout
	// of fig. 3); otherwise they are spread uniformly.
	Count    int
	Clusters int
	// ClusterSpread is the standard deviation of artifact positions
	// around their cluster centre, in units of mean radius. Ignored when
	// Clusters == 0. A zero value defaults to 3.
	ClusterSpread float64

	// MeanRadius and RadiusStdDev describe the artifact size
	// distribution; radii are truncated to [MinRadius, MaxRadius]
	// (defaults: 0.5×/1.5× the mean).
	MeanRadius   float64
	RadiusStdDev float64
	MinRadius    float64
	MaxRadius    float64

	// Foreground and Background are the disc and backdrop intensities
	// (defaults 0.9 and 0.1). Noise is the Gaussian pixel-noise stddev.
	Foreground float64
	Background float64
	Noise      float64

	// MinSeparation, when positive, forbids placing two artifact centres
	// closer than this multiple of the sum of their radii (1.0 means
	// "no overlap"). Zero allows arbitrary overlap.
	MinSeparation float64

	// Margin keeps artifact centres at least this many pixels from the
	// image border (default: MeanRadius).
	Margin float64
}

func (s *SceneSpec) withDefaults() SceneSpec {
	sp := *s
	if sp.MeanRadius <= 0 {
		sp.MeanRadius = 10
	}
	if sp.MinRadius <= 0 {
		sp.MinRadius = sp.MeanRadius * 0.5
	}
	if sp.MaxRadius <= 0 {
		sp.MaxRadius = sp.MeanRadius * 1.5
	}
	if sp.Foreground == 0 {
		sp.Foreground = 0.9
	}
	if sp.Background == 0 {
		sp.Background = 0.1
	}
	if sp.Margin == 0 {
		sp.Margin = sp.MeanRadius
	}
	if sp.ClusterSpread == 0 {
		sp.ClusterSpread = 3
	}
	if sp.AxisRatio <= 0 {
		sp.AxisRatio = 0.7
	}
	if sp.AxisRatioStd == 0 {
		sp.AxisRatioStd = 0.08
	}
	return sp
}

// Scene is a generated image together with its ground truth.
type Scene struct {
	Image *Image
	Truth []geom.Ellipse
	Spec  SceneSpec
}

// Synthesize renders a scene according to spec using the supplied
// generator. Rendering is deterministic for a given (spec, RNG state).
func Synthesize(spec SceneSpec, r *rng.RNG) *Scene {
	sp := spec.withDefaults()
	im := New(sp.W, sp.H)
	im.Fill(sp.Background)

	truth := placeArtifacts(sp, r)
	for _, c := range truth {
		RenderShape(im, c, sp.Foreground)
	}
	if sp.Noise > 0 {
		for i := range im.Pix {
			im.Pix[i] += r.NormalAt(0, sp.Noise)
		}
	}
	im.Clamp()
	return &Scene{Image: im, Truth: truth, Spec: sp}
}

func placeArtifacts(sp SceneSpec, r *rng.RNG) []geom.Ellipse {
	var centres [][2]float64
	w, h := float64(sp.W), float64(sp.H)
	m := sp.Margin
	if sp.Clusters > 0 {
		// Cluster centres themselves keep a generous margin so the clump
		// fits inside the frame.
		clusterMargin := math.Min(math.Min(w, h)/4, m+sp.ClusterSpread*sp.MeanRadius)
		var hubs [][2]float64
		for i := 0; i < sp.Clusters; i++ {
			hubs = append(hubs, [2]float64{
				r.Uniform(clusterMargin, w-clusterMargin),
				r.Uniform(clusterMargin, h-clusterMargin),
			})
		}
		for i := 0; i < sp.Count; i++ {
			hub := hubs[i%sp.Clusters]
			sd := sp.ClusterSpread * sp.MeanRadius
			centres = append(centres, [2]float64{
				clampF(hub[0]+r.NormalAt(0, sd), m, w-m),
				clampF(hub[1]+r.NormalAt(0, sd), m, h-m),
			})
		}
	} else {
		for i := 0; i < sp.Count; i++ {
			centres = append(centres, [2]float64{
				r.Uniform(m, w-m), r.Uniform(m, h-m),
			})
		}
	}

	truth := make([]geom.Ellipse, 0, sp.Count)
	for _, ctr := range centres {
		c := drawShape(sp, r, ctr[0], ctr[1])
		if sp.MinSeparation > 0 {
			ok := true
			for _, prev := range truth {
				if c.Dist(prev) < sp.MinSeparation*(c.MaxR()+prev.MaxR()) {
					ok = false
					break
				}
			}
			if !ok {
				// Retry a bounded number of times at a fresh uniform
				// position; give up (skip) if the scene is too crowded.
				placed := false
				for try := 0; try < 64; try++ {
					c.X, c.Y = r.Uniform(m, w-m), r.Uniform(m, h-m)
					clear := true
					for _, prev := range truth {
						if c.Dist(prev) < sp.MinSeparation*(c.MaxR()+prev.MaxR()) {
							clear = false
							break
						}
					}
					if clear {
						placed = true
						break
					}
				}
				if !placed {
					continue
				}
			}
		}
		truth = append(truth, c)
	}
	return truth
}

// drawShape samples one ground-truth artifact at the given centre. Disc
// scenes draw exactly the sequence the historical generator drew (one
// truncated-Normal radius), so existing disc scenes are bit-identical.
func drawShape(sp SceneSpec, r *rng.RNG, x, y float64) geom.Ellipse {
	major := r.TruncNormal(sp.MeanRadius, sp.RadiusStdDev, sp.MinRadius, sp.MaxRadius)
	if sp.Shape == geom.KindDisc {
		return geom.Disc(x, y, major)
	}
	ratio := clampF(sp.AxisRatio+r.NormalAt(0, sp.AxisRatioStd), 0.5, 1)
	return geom.Ellipse{
		X: x, Y: y,
		Rx:    major,
		Ry:    major * ratio,
		Theta: r.Uniform(0, math.Pi),
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RenderShape draws an antialiased shape of the given intensity onto
// im. Discs take the historical RenderDisc path bit-exactly; genuine
// ellipses use the same erode/dilate scanline structure with both axes
// grown or shrunk by the half-pixel diagonal.
func RenderShape(im *Image, e geom.Ellipse, intensity float64) {
	if e.Circular() {
		RenderDisc(im, e.AsCircle(), intensity)
		return
	}
	RenderEllipse(im, e, intensity)
}

// RenderDisc draws an antialiased disc of the given intensity onto im,
// blending by pixel coverage (4×4 supersampling on boundary pixels).
//
// The interior and exterior are resolved per row via scanline spans of
// the eroded (R−0.71) and dilated (R+0.71) discs: interior pixels are
// filled with straight stores, pixels outside the dilated span are
// skipped entirely, and only the thin boundary ring between the two
// spans pays for supersampling.
func RenderDisc(im *Image, c geom.Circle, intensity float64) {
	r2 := c.R * c.R
	inner := geom.Circle{X: c.X, Y: c.Y, R: c.R - 0.71} // fully inside if centre is this deep
	outer := geom.Circle{X: c.X, Y: c.Y, R: c.R + 0.71}
	ix0, ix1 := inner.PixelCols(im.W)
	ox0, ox1 := outer.PixelCols(im.W)
	oy0, oy1 := outer.PixelRows(im.H)

	// blend supersamples the boundary pixels in [xa, xb) of row y.
	blend := func(y, xa, xb int) {
		for x := xa; x < xb; x++ {
			cov := 0.0
			for sy := 0; sy < 4; sy++ {
				for sx := 0; sx < 4; sx++ {
					px := float64(x) + (float64(sx)+0.5)/4
					py := float64(y) + (float64(sy)+0.5)/4
					ddx, ddy := px-c.X, py-c.Y
					if ddx*ddx+ddy*ddy <= r2 {
						cov++
					}
				}
			}
			cov /= 16
			idx := y*im.W + x
			im.Pix[idx] = im.Pix[idx]*(1-cov) + intensity*cov
		}
	}

	for y := oy0; y < oy1; y++ {
		oa, ob := outer.RowSpan(y, ox0, ox1)
		if oa >= ob {
			continue
		}
		ia, ib := innerSpan(inner, y, ix0, ix1)
		if ia >= ib {
			// No fully-interior pixels on this row: whole span is ring.
			blend(y, oa, ob)
			continue
		}
		blend(y, oa, ia)
		row := y * im.W
		seg := im.Pix[row+ia : row+ib]
		for i := range seg {
			seg[i] = intensity
		}
		blend(y, ib, ob)
	}
}

// innerSpan returns the interior span of row y, empty when the eroded circle
// has no positive radius.
func innerSpan(inner geom.Circle, y, x0, x1 int) (int, int) {
	if inner.R <= 0 {
		return 0, 0
	}
	return inner.RowSpan(y, x0, x1)
}

// RenderEllipse draws an antialiased (possibly rotated) ellipse: the
// RenderDisc structure with the eroded/dilated shapes built by shrinking
// or growing both semi-axes by the half-pixel diagonal.
func RenderEllipse(im *Image, e geom.Ellipse, intensity float64) {
	inner := e
	inner.Rx -= 0.71
	inner.Ry -= 0.71
	outer := e
	outer.Rx += 0.71
	outer.Ry += 0.71
	ix0, ix1 := inner.PixelCols(im.W)
	ox0, ox1 := outer.PixelCols(im.W)
	oy0, oy1 := outer.PixelRows(im.H)

	blend := func(y, xa, xb int) {
		for x := xa; x < xb; x++ {
			cov := 0.0
			for sy := 0; sy < 4; sy++ {
				for sx := 0; sx < 4; sx++ {
					px := float64(x) + (float64(sx)+0.5)/4
					py := float64(y) + (float64(sy)+0.5)/4
					if e.Contains(px, py) {
						cov++
					}
				}
			}
			cov /= 16
			idx := y*im.W + x
			im.Pix[idx] = im.Pix[idx]*(1-cov) + intensity*cov
		}
	}

	for y := oy0; y < oy1; y++ {
		oa, ob := outer.RowSpan(y, ox0, ox1)
		if oa >= ob {
			continue
		}
		var ia, ib int
		if inner.Rx > 0 && inner.Ry > 0 {
			ia, ib = inner.RowSpan(y, ix0, ix1)
		}
		if ia >= ib {
			blend(y, oa, ob)
			continue
		}
		blend(y, oa, ia)
		row := y * im.W
		seg := im.Pix[row+ia : row+ib]
		for i := range seg {
			seg[i] = intensity
		}
		blend(y, ib, ob)
	}
}
