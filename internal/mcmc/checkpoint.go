package mcmc

import (
	"repro/internal/model"
	"repro/internal/rng"
)

// TraceDump is a serializable snapshot of a Trace, including the next-
// observation threshold so a resumed chain samples at the same
// iterations as an uninterrupted one.
type TraceDump struct {
	Every   int
	Iters   []int64
	LogPost []float64
	Count   []int
	Next    int64
}

// Dump captures the trace.
func (t *Trace) Dump() TraceDump {
	return TraceDump{
		Every:   t.Every,
		Iters:   append([]int64(nil), t.Iters...),
		LogPost: append([]float64(nil), t.LogPost...),
		Count:   append([]int(nil), t.Count...),
		Next:    t.next,
	}
}

// RestoreTrace builds a trace from a dump.
func RestoreTrace(d TraceDump) *Trace {
	return &Trace{
		Every:   d.Every,
		Iters:   append([]int64(nil), d.Iters...),
		LogPost: append([]float64(nil), d.LogPost...),
		Count:   append([]int(nil), d.Count...),
		next:    d.Next,
	}
}

// EngineDump is a serializable snapshot of an Engine: the model state,
// the RNG stream, acceptance statistics, the iteration counter, the
// temperature, and the attached trace (if any). Weights and step sizes
// are configuration, not state — the restorer supplies them.
type EngineDump struct {
	R rng.Saved
	// KindR is the dedicated move-kind stream RunN draws from (see
	// Engine.kindR); it advances independently of R and must be restored
	// alongside it for a resumed chain to match an uninterrupted one.
	KindR rng.Saved
	Stats Stats
	Iter  int64
	Beta  float64
	State model.StateDump
	Trace *TraceDump
}

// Dump captures the engine. The data-driven birth sampler and the
// posterior accumulator are not part of the dump; engines using them
// cannot be checkpointed yet.
func (e *Engine) Dump() EngineDump {
	d := EngineDump{
		R:     e.R.Save(),
		KindR: e.kindR.Save(),
		Stats: e.Stats,
		Iter:  e.Iter,
		Beta:  e.Beta,
		State: e.S.Dump(),
	}
	if e.trace != nil {
		td := e.trace.Dump()
		d.Trace = &td
	}
	return d
}

// Restore overwrites the engine's state from a dump. The engine must
// have been built (New) over a state spanning the same image and
// parameters and with the same weights and step sizes as the dumped one.
func (e *Engine) Restore(d EngineDump) error {
	if err := e.S.Restore(d.State); err != nil {
		return err
	}
	e.R.Restore(d.R)
	e.kindR.Restore(d.KindR)
	e.Stats = d.Stats
	e.Iter = d.Iter
	e.Beta = d.Beta
	if d.Trace != nil {
		e.trace = RestoreTrace(*d.Trace)
	} else {
		e.trace = nil
	}
	return nil
}
