package mcmc

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPosteriorAccumulatorBasics(t *testing.T) {
	s, scene := sceneState(t, 50, 5)
	e := MustNew(s, rng.New(201), DefaultWeights(), DefaultStepSizes(9))
	e.RunN(20000) // burn-in
	acc := NewPosteriorAccumulator(s.W, s.H, 100)
	e.AttachAccumulator(acc)
	e.RunN(30000)
	if acc.Samples() < 250 {
		t.Fatalf("only %d samples accumulated", acc.Samples())
	}

	pm := acc.ProbabilityMap()
	// Probabilities must be valid and high at true artifact centres,
	// low far away.
	for _, v := range pm.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", v)
		}
	}
	for _, c := range scene.Truth {
		if p := pm.At(int(c.X), int(c.Y)); p < 0.9 {
			t.Errorf("P(covered) at true centre (%v,%v) = %v", c.X, c.Y, p)
		}
	}
	if p := pm.At(1, 1); p > 0.2 {
		t.Errorf("P(covered) at empty corner = %v", p)
	}

	counts, probs := acc.CountPosterior()
	total := 0.0
	for _, p := range probs {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("count posterior sums to %v", total)
	}
	if len(counts) == 0 {
		t.Fatal("empty count posterior")
	}
	mapCount, prob := acc.MAPCount()
	if math.Abs(float64(mapCount-len(scene.Truth))) > 1 {
		t.Fatalf("MAP count %d (p=%.2f), truth %d", mapCount, prob, len(scene.Truth))
	}
	if prob <= 0 || prob > 1 {
		t.Fatalf("MAP probability %v", prob)
	}
}

func TestPosteriorAccumulatorEmpty(t *testing.T) {
	acc := NewPosteriorAccumulator(8, 8, 10)
	if acc.Samples() != 0 {
		t.Fatal("fresh accumulator has samples")
	}
	pm := acc.ProbabilityMap()
	for _, v := range pm.Pix {
		if v != 0 {
			t.Fatal("empty accumulator map nonzero")
		}
	}
	if c, p := acc.CountPosterior(); c != nil || p != nil {
		t.Fatal("empty accumulator posterior nonzero")
	}
	if n, p := acc.MAPCount(); n != 0 || p != 0 {
		t.Fatalf("empty MAP = %d, %v", n, p)
	}
}

func TestAccumulatorDetach(t *testing.T) {
	s, _ := sceneState(t, 51, 3)
	e := MustNew(s, rng.New(202), DefaultWeights(), DefaultStepSizes(9))
	acc := NewPosteriorAccumulator(s.W, s.H, 1)
	e.AttachAccumulator(acc)
	e.RunN(100)
	got := acc.Samples()
	e.AttachAccumulator(nil)
	e.RunN(100)
	if acc.Samples() != got {
		t.Fatal("detached accumulator kept sampling")
	}
}
