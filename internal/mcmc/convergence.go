package mcmc

import "math"

// Trace records the chain's trajectory at a fixed iteration stride:
// log-posterior and configuration size. The convergence detector and the
// experiment harness both consume it.
type Trace struct {
	// Every is the sampling stride in iterations (>= 1).
	Every int

	Iters   []int64
	LogPost []float64
	Count   []int

	next int64 // iteration threshold for the next observation
}

// NewTrace returns a trace sampling every `every` iterations.
func NewTrace(every int) *Trace {
	if every < 1 {
		every = 1
	}
	return &Trace{Every: every}
}

func (t *Trace) observe(e *Engine) {
	// Threshold-based rather than modulo-based: the periodic engine
	// advances Iter in bulk when merging parallel local phases, which
	// would skip exact multiples.
	if t.next == 0 {
		t.next = int64(t.Every)
	}
	if e.Iter < t.next {
		return
	}
	t.Iters = append(t.Iters, e.Iter)
	t.LogPost = append(t.LogPost, e.S.LogPost())
	t.Count = append(t.Count, e.S.Cfg.Len())
	for t.next <= e.Iter {
		t.next += int64(t.Every)
	}
}

// AttachTrace registers t to receive a sample after every Every-th
// iteration. Passing nil detaches.
func (e *Engine) AttachTrace(t *Trace) { e.trace = t }

// Trace returns the attached trace, or nil.
func (e *Engine) Trace() *Trace { return e.trace }

// PlateauDetector declares convergence when the best log-posterior seen
// in the most recent window improves on the previous window's best by
// less than Tol. This is the pragmatic burn-in criterion the paper's
// "iterations to converge" measurements imply (convergence *diagnosis*
// being explicitly out of the paper's scope).
type PlateauDetector struct {
	// Window is the comparison window length in observations.
	Window int
	// Tol is the minimum improvement that still counts as progress.
	Tol float64
	// MinIters, when positive, suppresses convergence before that many
	// iterations. Birth proposals hit an artifact only every ~1/(q_B·a)
	// iterations (a = artifact area fraction), so early lulls between
	// births masquerade as plateaus without a floor.
	MinIters int64
	// MinCount, when positive, suppresses convergence while the
	// configuration holds fewer than this many artifacts. Detectors use
	// the eq. 5 estimate: burn-in cannot be over while most expected
	// artifacts are still missing.
	MinCount int
}

// Converged scans the trace and returns the first iteration index at
// which the plateau criterion held, or (0, false).
func (d PlateauDetector) Converged(tr *Trace) (int64, bool) {
	w := d.Window
	if w < 1 || len(tr.LogPost) < 2*w {
		return 0, false
	}
	for end := 2 * w; end <= len(tr.LogPost); end++ {
		if tr.Iters[end-1] < d.MinIters {
			continue
		}
		if d.MinCount > 0 && tr.Count[end-1] < d.MinCount {
			continue
		}
		prevBest := math.Inf(-1)
		for _, v := range tr.LogPost[end-2*w : end-w] {
			prevBest = math.Max(prevBest, v)
		}
		curBest := math.Inf(-1)
		for _, v := range tr.LogPost[end-w : end] {
			curBest = math.Max(curBest, v)
		}
		if curBest-prevBest < d.Tol {
			return tr.Iters[end-1], true
		}
	}
	return 0, false
}

// RunUntilConverged advances the engine until the detector fires or
// maxIter iterations have been performed, whichever comes first. It
// returns the iterations consumed and whether convergence was declared.
// A fresh trace is attached if none is present.
func (e *Engine) RunUntilConverged(maxIter int, d PlateauDetector) (int64, bool) {
	if e.trace == nil {
		e.AttachTrace(NewTrace(maxIter/1000 + 1))
	}
	start := e.Iter
	checkEvery := (2*d.Window + 1) * e.trace.Every
	if checkEvery < 1 {
		checkEvery = 1
	}
	for e.Iter-start < int64(maxIter) {
		n := checkEvery
		if rem := int64(maxIter) - (e.Iter - start); rem < int64(n) {
			n = int(rem)
		}
		e.RunN(n)
		if it, ok := d.Converged(e.trace); ok {
			return it - start, true
		}
	}
	return e.Iter - start, false
}

// GewekeZ computes the Geweke (1992) convergence z-score of a series:
// the standardised difference between the mean of the first fracA of the
// samples and the mean of the last fracB. |z| ≲ 2 is consistent with the
// two segments sharing a stationary mean. Variance estimation here is
// the naive iid form — adequate for the thinned traces the detectors
// consume, where autocorrelation is weak.
func GewekeZ(xs []float64, fracA, fracB float64) float64 {
	n := len(xs)
	na := int(fracA * float64(n))
	nb := int(fracB * float64(n))
	if na < 2 || nb < 2 || na+nb > n {
		return math.Inf(1)
	}
	meanVar := func(seg []float64) (m, v float64) {
		for _, x := range seg {
			m += x
		}
		m /= float64(len(seg))
		for _, x := range seg {
			d := x - m
			v += d * d
		}
		v /= float64(len(seg) - 1)
		return
	}
	ma, va := meanVar(xs[:na])
	mb, vb := meanVar(xs[n-nb:])
	denom := math.Sqrt(va/float64(na) + vb/float64(nb))
	if denom == 0 {
		if ma == mb {
			return 0
		}
		return math.Inf(1)
	}
	return (ma - mb) / denom
}

// GewekeDetector declares convergence when the Geweke z-score of the
// most recent Window trace observations (first 25% vs last 50%, the
// conventional split) falls below ZThreshold in magnitude.
type GewekeDetector struct {
	// Window is the number of trailing observations tested (>= 8).
	Window int
	// ZThreshold is the |z| acceptance bound (default-style value: 2).
	ZThreshold float64
	// MinIters suppresses convergence before that many iterations.
	MinIters int64
}

// Converged scans the trace and returns the first iteration at which the
// criterion held, or (0, false).
func (d GewekeDetector) Converged(tr *Trace) (int64, bool) {
	w := d.Window
	if w < 8 || len(tr.LogPost) < w {
		return 0, false
	}
	for end := w; end <= len(tr.LogPost); end++ {
		if tr.Iters[end-1] < d.MinIters {
			continue
		}
		z := GewekeZ(tr.LogPost[end-w:end], 0.25, 0.5)
		if math.Abs(z) < d.ZThreshold {
			return tr.Iters[end-1], true
		}
	}
	return 0, false
}
