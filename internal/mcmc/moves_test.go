package mcmc

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMoveString(t *testing.T) {
	if Birth.String() != "birth" || Resize.String() != "resize" {
		t.Fatal("move names wrong")
	}
	if Move(99).String() == "" {
		t.Fatal("out-of-range move has empty name")
	}
}

func TestMoveClassification(t *testing.T) {
	for _, m := range []Move{Birth, Death, Split, Merge, Replace} {
		if !m.IsGlobal() {
			t.Errorf("%v should be global", m)
		}
	}
	for _, m := range []Move{Shift, Resize} {
		if m.IsGlobal() {
			t.Errorf("%v should be local", m)
		}
	}
}

func TestDefaultWeightsQGlobal(t *testing.T) {
	q := DefaultWeights().QGlobal()
	if math.Abs(q-0.4) > 1e-12 {
		t.Fatalf("q_g = %v, want 0.4 (the paper's case study)", q)
	}
}

func TestWeightsNormalised(t *testing.T) {
	w := Weights{Birth: 2, Death: 2, Shift: 4}.Normalised()
	total := 0.0
	for _, v := range w {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("normalised sum = %v", total)
	}
	if math.Abs(w[Shift]-0.5) > 1e-12 {
		t.Fatalf("shift weight = %v", w[Shift])
	}
}

func TestWeightsValidate(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Fatalf("default weights invalid: %v", err)
	}
	bad := []Weights{
		{},                    // zero mass
		{Birth: 1, Shift: 1},  // birth without death
		{Split: 1, Shift: 1},  // split without merge
		{Birth: -1, Death: 1}, // negative
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Local-only weights are fine (used by partition workers).
	if err := (Weights{Shift: 1, Resize: 1}).Validate(); err != nil {
		t.Fatalf("local-only weights rejected: %v", err)
	}
}

func TestStepSizesValidate(t *testing.T) {
	if err := DefaultStepSizes(10).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (StepSizes{ShiftStd: 1, ResizeStd: 1}).Validate(); err == nil {
		t.Fatal("zero MergeDist accepted")
	}
}

func TestSplitMergeMapInverse(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 5000; i++ {
		x, y := r.Uniform(0, 100), r.Uniform(0, 100)
		rad := r.Uniform(1, 20)
		u := r.Positive()
		theta := r.Uniform(0, 2*math.Pi)
		delta := r.Uniform(0.01, 15)
		x1, y1, r1, x2, y2, r2 := splitMap(x, y, rad, u, theta, delta)
		gx, gy, gr, gu, gtheta, gdelta := mergeMap(x1, y1, r1, x2, y2, r2)
		for name, pair := range map[string][2]float64{
			"x": {x, gx}, "y": {y, gy}, "r": {rad, gr},
			"u": {u, gu}, "theta": {theta, gtheta}, "delta": {delta, gdelta},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-9*(1+math.Abs(pair[0])) {
				t.Fatalf("merge(split) not identity in %s: %v vs %v", name, pair[0], pair[1])
			}
		}
	}
}

func TestSplitMapPreservesArea(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		rad := r.Uniform(1, 20)
		u := r.Positive()
		_, _, r1, _, _, r2 := splitMap(0, 0, rad, u, r.Float64()*2*math.Pi, r.Float64()*5)
		if math.Abs(r1*r1+r2*r2-rad*rad) > 1e-9 {
			t.Fatalf("area not preserved: r1²+r2² = %v, r² = %v", r1*r1+r2*r2, rad*rad)
		}
	}
}

// det6 computes a 6x6 determinant by Gaussian elimination with partial
// pivoting (test helper).
func det6(m [6][6]float64) float64 {
	det := 1.0
	for col := 0; col < 6; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 6; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if m[p][col] == 0 {
			return 0
		}
		if p != col {
			m[p], m[col] = m[col], m[p]
			det = -det
		}
		det *= m[col][col]
		for r := col + 1; r < 6; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < 6; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	return det
}

// The analytic Jacobian δ·r/(2√(u(1−u))) must match a numerical Jacobian
// of the split map.
func TestSplitJacobianNumerically(t *testing.T) {
	r := rng.New(3)
	eval := func(v [6]float64) [6]float64 {
		x1, y1, r1, x2, y2, r2 := splitMap(v[0], v[1], v[2], v[3], v[4], v[5])
		return [6]float64{x1, y1, r1, x2, y2, r2}
	}
	for trial := 0; trial < 200; trial++ {
		v := [6]float64{
			r.Uniform(10, 90), r.Uniform(10, 90), r.Uniform(2, 15),
			r.Uniform(0.1, 0.9), r.Uniform(0.1, 6), r.Uniform(0.5, 10),
		}
		var jac [6][6]float64
		for c := 0; c < 6; c++ {
			h := 1e-6 * (1 + math.Abs(v[c]))
			vp, vm := v, v
			vp[c] += h
			vm[c] -= h
			fp, fm := eval(vp), eval(vm)
			for rw := 0; rw < 6; rw++ {
				jac[rw][c] = (fp[rw] - fm[rw]) / (2 * h)
			}
		}
		numeric := math.Abs(det6(jac))
		analytic := math.Exp(logSplitJacobian(v[2], v[3], v[5]))
		if math.Abs(numeric-analytic)/analytic > 1e-4 {
			t.Fatalf("Jacobian mismatch at %v: numeric %v, analytic %v", v, numeric, analytic)
		}
	}
}
