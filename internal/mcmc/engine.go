package mcmc

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/model"
	"repro/internal/rng"
)

// Proposal is one evaluated but not yet applied move. Proposals are
// produced by Engine.Propose without mutating the state, so several can
// be evaluated concurrently (speculative moves); Apply commits one.
//
// A Proposal is a plain value: the move's payload lives in fixed-size
// fields rather than a captured closure, so evaluating and discarding
// proposals (the common case — most are rejected) never touches the
// heap. shift/resize proposals are allocation-free end to end.
type Proposal struct {
	Move Move
	// Valid is false when the move could not be constructed (death on an
	// empty configuration, merge with no partners, ...). Invalid
	// proposals still consume an iteration and count as rejections, as
	// in a standard RJ-MCMC implementation.
	Valid bool
	// LogAlpha is the log Metropolis–Hastings–Green acceptance ratio at
	// temperature 1: DPost + LogHastings.
	LogAlpha float64
	// DPost is the relative log-posterior change of the move; heated
	// chains ((MC)³, package mc3) temper exactly this term.
	DPost float64
	// LogHastings collects everything else in the acceptance ratio:
	// proposal density corrections and, for dimension changes, the
	// Jacobian. It is not tempered.
	LogHastings float64

	// Move payload: the evaluated posterior deltas plus the circles the
	// move removes (by ID) and adds. nRem/nAdd give how many entries of
	// remIDs/newCs are live; no move exchanges more than two circles.
	dLik, dPrior float64
	nRem, nAdd   int8
	remIDs       [2]int
	newCs        [2]geom.Ellipse

	// deferred marks a coarse-screened proposal: dLik (and with it DPost
	// and LogAlpha) holds a pyramid *upper bound* on the true likelihood
	// delta, valid for rejection only. The acceptance test refines it at
	// full resolution before any acceptance (see Engine.AcceptsP); apply
	// panics on a still-deferred proposal.
	deferred bool
	// ms points at the proposing engine's span-table cache for in-place
	// moves, so an accepted move replays the tables its evaluation
	// prepared. Replay is keyed on the exact (old, new) pair and falls
	// back to recomputation on mismatch, so a stale pointer is safe.
	ms *model.MoveSpans
}

// apply commits the proposal's move to the engine's state. Birth, death
// and in-place moves keep their dedicated incremental paths (an in-place
// move must preserve the circle's ID); split and merge go through the
// general exchange.
func (p *Proposal) apply(e *Engine) {
	if p.deferred {
		panic("mcmc: apply of a deferred (coarse-screened) proposal without refinement")
	}
	switch p.Move {
	case Birth:
		e.S.ApplyAdd(p.newCs[0], p.dLik, p.dPrior)
	case Death:
		e.S.ApplyRemove(p.remIDs[0], p.dLik, p.dPrior)
	case Replace, Shift, Resize, AxisScale, Rotate:
		e.S.ApplyMoveCached(p.remIDs[0], p.newCs[0], p.dLik, p.dPrior, p.ms)
	case Split, Merge:
		e.S.ApplyExchange(p.remIDs[:p.nRem], p.newCs[:p.nAdd], p.dLik, p.dPrior)
	default:
		panic(fmt.Sprintf("mcmc: apply of unknown move %v", p.Move))
	}
}

// Stats accumulates per-move acceptance bookkeeping. The rejection rates
// it exposes parameterise the speculative-move runtime model (eqs. 3–4).
type Stats struct {
	Proposed [NumMoves]int64
	Accepted [NumMoves]int64
	Invalid  [NumMoves]int64
}

// RejectionRate returns the overall fraction of proposals rejected, or 0
// if nothing has been proposed yet.
func (st *Stats) RejectionRate() float64 {
	var prop, acc int64
	for m := Move(0); m < NumMoves; m++ {
		prop += st.Proposed[m]
		acc += st.Accepted[m]
	}
	if prop == 0 {
		return 0
	}
	return 1 - float64(acc)/float64(prop)
}

// RejectionRateOf returns the rejection rate restricted to one move kind.
func (st *Stats) RejectionRateOf(m Move) float64 {
	if st.Proposed[m] == 0 {
		return 0
	}
	return 1 - float64(st.Accepted[m])/float64(st.Proposed[m])
}

// GlobalLocalRates returns the rejection rates over M_g and M_l
// separately (p_gr and p_lr in eq. 4).
func (st *Stats) GlobalLocalRates() (pgr, plr float64) {
	var gp, ga, lp, la int64
	for m := Move(0); m < NumMoves; m++ {
		if m.IsGlobal() {
			gp += st.Proposed[m]
			ga += st.Accepted[m]
		} else {
			lp += st.Proposed[m]
			la += st.Accepted[m]
		}
	}
	if gp > 0 {
		pgr = 1 - float64(ga)/float64(gp)
	}
	if lp > 0 {
		plr = 1 - float64(la)/float64(lp)
	}
	return
}

// Add folds other into st (used when merging per-partition statistics).
func (st *Stats) Add(other Stats) {
	for m := Move(0); m < NumMoves; m++ {
		st.Proposed[m] += other.Proposed[m]
		st.Accepted[m] += other.Accepted[m]
		st.Invalid[m] += other.Invalid[m]
	}
}

// Engine is a sequential reversible-jump Metropolis–Hastings sampler over
// a model.State.
type Engine struct {
	S     *model.State
	R     *rng.RNG
	W     Weights
	Steps StepSizes
	Stats Stats

	// Iter counts completed iterations (accepted or not).
	Iter int64

	// Beta is the inverse temperature applied to the posterior term of
	// every acceptance test. 1 samples the posterior itself; (MC)³
	// heated chains use Beta < 1. Proposal-density and Jacobian terms
	// are never tempered.
	Beta float64

	// ScreenMinArea enables the coarse-to-fine likelihood screen: birth
	// and replace proposals whose shape covers at least this many pixels
	// (πR_xR_y) are priced with the pyramid upper bound first and refined
	// at full resolution only when the bound survives the rejection test.
	// 0 disables screening. The sampled chain is bit-identical either
	// way (see AcceptsP); only the work changes.
	ScreenMinArea float64

	wNorm  Weights
	trace  *Trace
	accum  *PosteriorAccumulator
	births *DataDrivenBirth

	// partners is the reusable merge-candidate buffer: proposeMerge
	// appends into it instead of allocating a fresh slice per proposal.
	// Shadow engines get their own (see Shadow), so concurrent
	// speculative Propose calls never share scratch.
	partners []int

	// ms caches the span tables of the most recent in-place move
	// proposal (replace/shift/resize/axis-scale/rotate), so an accepted
	// move replays them instead of recomputing every row span. Per
	// engine for the same reason as partners.
	ms model.MoveSpans

	// kindR is a dedicated stream for RunN's chunked move-kind draws,
	// split off the acceptance stream at construction. Keeping the kind
	// draws out of the main stream makes the chain invariant to how
	// callers slice their RunN calls, with the uniforms prefetched
	// kindChunk at a time (see RunN).
	kindR   *rng.RNG
	kindBuf [kindChunk]float64
}

// kindChunk is how many move-kind uniforms RunN prefetches per refill.
const kindChunk = 64

// New constructs an engine. It validates the weights and step sizes
// against the state's shape family: split/merge exist only for discs
// (the §VII area-preserving bijection has no dimension-matched ellipse
// analogue), and the ellipse-only kernel scales are defaulted.
func New(s *model.State, r *rng.RNG, w Weights, steps StepSizes) (*Engine, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := steps.Validate(); err != nil {
		return nil, err
	}
	if s.P.Shape != geom.KindDisc && (w[Split] > 0 || w[Merge] > 0) {
		return nil, fmt.Errorf("mcmc: split/merge moves are disc-only (shape %v)", s.P.Shape)
	}
	if s.P.Shape == geom.KindDisc && (w[AxisScale] > 0 || w[Rotate] > 0) {
		return nil, fmt.Errorf("mcmc: axis-scale/rotate moves are ellipse-only (shape %v)", s.P.Shape)
	}
	// The kind stream starts 2^192 steps ahead of r's current state:
	// disjoint from anything r will produce, without advancing r itself.
	kindR := rng.NewFrom(r)
	kindR.LongJump()
	return &Engine{
		S: s, R: r, W: w, Steps: steps.WithEllipseDefaults(), Beta: 1,
		wNorm: w.Normalised(), kindR: kindR,
	}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(s *model.State, r *rng.RNG, w Weights, steps StepSizes) *Engine {
	e, err := New(s, r, w, steps)
	if err != nil {
		panic(err)
	}
	return e
}

// Shadow returns a copy of e that shares the model state and weights but
// owns a private RNG stream (split off e's) and private scratch buffers.
// The speculative executor evaluates proposals concurrently on shadows;
// sharing scratch across them would race.
func (e *Engine) Shadow() *Engine {
	s := *e
	s.R = e.R.Split()
	s.kindR = e.kindR.Split()
	s.partners = nil
	s.ms = model.MoveSpans{}
	return &s
}

// ShadowScratch is Shadow without the stream split: the copy's RNGs are
// placeholders the caller must Reseed before every use. Because it draws
// nothing from the host's streams, the host chain is invariant to how
// many scratch shadows exist — the property the speculative executor
// needs so that speculation width (and worker count) can never alter the
// realized chain.
func (e *Engine) ShadowScratch() *Engine {
	s := *e
	s.R = rng.New(0)
	s.kindR = rng.New(1)
	s.partners = nil
	s.ms = model.MoveSpans{}
	return &s
}

// PickMove draws a move kind from the proposal mixture.
func (e *Engine) PickMove() Move {
	return Move(e.R.Pick(e.wNorm[:]))
}

// Step performs one MCMC iteration: draw a kind, propose, decide. It
// returns whether the proposal was accepted.
func (e *Engine) Step() bool {
	p := e.Propose(e.PickMove())
	return e.Decide(p)
}

// RunN performs n iterations and returns the number accepted. Move
// kinds are drawn from the dedicated kind stream with the uniforms
// prefetched kindChunk at a time; each refill draws exactly what the
// remaining iterations need, so a run split across several RunN calls
// consumes both streams identically to one big call.
func (e *Engine) RunN(n int) int {
	acc := 0
	for done := 0; done < n; {
		want := n - done
		if want > kindChunk {
			want = kindChunk
		}
		e.kindR.Fill(e.kindBuf[:want])
		for _, u := range e.kindBuf[:want] {
			if e.Decide(e.Propose(e.moveFromUniform(u))) {
				acc++
			}
		}
		done += want
	}
	return acc
}

// moveFromUniform maps one uniform draw to a move kind with exactly
// rng.Pick's arithmetic over the normalised weights, so the chunked and
// one-at-a-time paths pick identical kinds from identical uniforms.
func (e *Engine) moveFromUniform(u float64) Move {
	total := 0.0
	for _, w := range e.wNorm {
		if w > 0 {
			total += w
		}
	}
	target := u * total
	acc := 0.0
	for i, w := range e.wNorm {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return Move(i)
		}
	}
	for i := len(e.wNorm) - 1; i >= 0; i-- {
		if e.wNorm[i] > 0 {
			return Move(i)
		}
	}
	panic("mcmc: no positive move weights")
}

// logAccept returns the tempered log acceptance ratio of p.
func (e *Engine) logAccept(p Proposal) float64 {
	if e.Beta == 1 {
		return p.LogAlpha
	}
	return e.Beta*p.DPost + p.LogHastings
}

// Decide applies the accept/reject test to p, commits it when accepted,
// and updates statistics and the iteration counter.
func (e *Engine) Decide(p Proposal) bool {
	e.Stats.Proposed[p.Move]++
	e.Iter++
	accepted := false
	if p.Valid {
		if e.acceptTest(&p) {
			p.apply(e)
			e.Stats.Accepted[p.Move]++
			accepted = true
		}
	} else {
		e.Stats.Invalid[p.Move]++
	}
	e.observers()
	return accepted
}

// acceptTest runs the Metropolis–Hastings test on a valid proposal,
// refining a deferred (coarse-screened) one at full resolution exactly
// when needed. The RNG stream it consumes is identical to an unscreened
// chain's:
//
//   - Bound already non-negative: an exact test might accept without
//     drawing, so refine first and then run the ordinary test.
//   - Bound negative: the exact ratio is ≤ the bound (upper bound), so
//     the exact test would certainly draw u — draw it now, against the
//     bound. If u already rejects the bound it rejects the exact ratio
//     too, and the full-resolution pricing is skipped entirely; this is
//     the screen's entire saving. Otherwise refine and re-test the SAME
//     u against the exact ratio.
//
// Either way the proposal leaves refined whenever the test passes, so
// apply always commits exact deltas.
func (e *Engine) acceptTest(p *Proposal) bool {
	if !p.deferred {
		la := e.logAccept(*p)
		return la >= 0 || math.Log(e.R.Positive()) < la
	}
	if la := e.logAccept(*p); la < 0 {
		lu := math.Log(e.R.Positive())
		if lu >= la {
			return false // rejected on the bound: never priced exactly
		}
		e.refine(p)
		return lu < e.logAccept(*p)
	}
	e.refine(p)
	la := e.logAccept(*p)
	return la >= 0 || math.Log(e.R.Positive()) < la
}

// refine replaces a deferred proposal's bounded likelihood delta with
// the exact full-resolution one, updating every derived term. The
// refined proposal is indistinguishable from one evaluated without
// screening.
func (e *Engine) refine(p *Proposal) {
	var exact float64
	switch p.Move {
	case Birth:
		exact = e.S.LikDeltaAddExact(p.newCs[0])
	case Replace:
		exact = e.S.LikDeltaMoveExact(p.remIDs[0], p.newCs[0], p.ms)
	default:
		panic(fmt.Sprintf("mcmc: refine of unscreened move %v", p.Move))
	}
	diff := exact - p.dLik
	p.dLik = exact
	p.DPost += diff
	p.LogAlpha += diff
	p.deferred = false
}

// NotifyExternalIterations informs the attached observers (trace,
// posterior accumulator) that Iter advanced outside Decide/Commit — the
// periodic engine calls it after folding a parallel local phase in.
func (e *Engine) NotifyExternalIterations() { e.observers() }

// observers notifies the attached trace and accumulator after an
// iteration completes.
func (e *Engine) observers() {
	if e.trace != nil {
		e.trace.observe(e)
	}
	if e.accum != nil {
		e.accum.observe(e)
	}
}

// Accepts applies the acceptance test only (no state mutation, no
// stats). It cannot test a deferred proposal — the refinement must be
// visible to the caller who will apply it — so those callers use
// AcceptsP.
func (e *Engine) Accepts(p Proposal) bool {
	if p.deferred {
		panic("mcmc: Accepts on a deferred (coarse-screened) proposal; use AcceptsP")
	}
	if !p.Valid {
		return false
	}
	la := e.logAccept(p)
	return la >= 0 || math.Log(e.R.Positive()) < la
}

// AcceptsP is Accepts for proposals tested in place: a deferred
// proposal that survives the bound test is refined through p, so a
// subsequent Commit(*p) applies exact deltas. The speculative executor
// uses it to test pre-evaluated proposals in order.
func (e *Engine) AcceptsP(p *Proposal) bool {
	if !p.Valid {
		return false
	}
	return e.acceptTest(p)
}

// Commit applies a previously evaluated proposal without re-testing it
// and updates statistics as an accepted iteration.
func (e *Engine) Commit(p Proposal) {
	if !p.Valid {
		panic("mcmc: Commit of invalid proposal")
	}
	p.apply(e)
	e.Stats.Proposed[p.Move]++
	e.Stats.Accepted[p.Move]++
	e.Iter++
	e.observers()
}

// RecordRejected updates statistics for a proposal that was evaluated
// (possibly speculatively) and rejected.
func (e *Engine) RecordRejected(p Proposal) {
	e.Stats.Proposed[p.Move]++
	if !p.Valid {
		e.Stats.Invalid[p.Move]++
	}
	e.Iter++
	e.observers()
}

// Propose constructs a read-only evaluated proposal of the given kind.
func (e *Engine) Propose(m Move) Proposal {
	switch m {
	case Birth:
		return e.proposeBirth()
	case Death:
		return e.proposeDeath()
	case Split:
		return e.proposeSplit()
	case Merge:
		return e.proposeMerge()
	case Replace:
		return e.proposeReplace()
	case Shift:
		return e.proposeShift()
	case Resize:
		return e.proposeResize()
	case AxisScale:
		return e.proposeAxisScale()
	case Rotate:
		return e.proposeRotate()
	default:
		panic(fmt.Sprintf("mcmc: unknown move %v", m))
	}
}

// drawPriorShape samples a shape from the position×shape prior — the
// proposal distribution of birth and replace, chosen so the prior
// density terms cancel in the acceptance ratio. Disc mode draws exactly
// the historical (X, Y, R) sequence; ellipse mode additionally draws
// the second semi-axis from the same truncated-Normal prior and a
// uniform rotation in [0, π).
func (e *Engine) drawPriorShape() geom.Ellipse {
	b := e.S.Bounds()
	p := e.S.P
	x := e.R.Uniform(b.X0, b.X1)
	y := e.R.Uniform(b.Y0, b.Y1)
	rx := e.R.TruncNormal(p.MeanRadius, p.RadiusStdDev, p.MinRadius, p.MaxRadius)
	if p.Shape == geom.KindDisc {
		return geom.Disc(x, y, rx)
	}
	return geom.Ellipse{
		X: x, Y: y,
		Rx:    rx,
		Ry:    e.R.TruncNormal(p.MeanRadius, p.RadiusStdDev, p.MinRadius, p.MaxRadius),
		Theta: e.R.Uniform(0, math.Pi),
	}
}

// screens reports whether the coarse-to-fine screen applies to a
// proposal exchanging shape c.
func (e *Engine) screens(c geom.Ellipse) bool {
	return e.ScreenMinArea > 0 && math.Pi*c.Rx*c.Ry >= e.ScreenMinArea &&
		e.S.CanScreen()
}

func (e *Engine) proposeBirth() Proposal {
	c := e.drawPriorShape()
	logPos := -e.S.LogAreaTerm() // uniform position proposal density
	if e.births != nil {
		c.X, c.Y = e.births.Sample(e.R)
		logPos = e.births.LogDensity(c.X, c.Y)
	}
	var dLik, dPrior float64
	deferred := e.screens(c)
	if deferred {
		// Coarse pass: dLik is an upper bound, marked for refinement.
		dLik, dPrior = e.S.EvalAddCoarse(c)
	} else {
		dLik, dPrior = e.S.EvalAdd(c)
	}
	if math.IsInf(dPrior, -1) {
		return Proposal{Move: Birth, Valid: false}
	}
	n := float64(e.S.Cfg.Len())
	// q_fwd = w_B · q_pos(c) · pr(shape);   q_rev = w_D · 1/(n+1).
	// dPrior contains log λ − log A + log pr(shape) − γΔo; with the
	// uniform proposal (q_pos = 1/A) the position and shape densities
	// cancel against the prior, leaving the textbook
	// α = lik-ratio · e^{−γΔo} · λ/(n+1) · w_D/w_B. A data-driven
	// q_pos enters explicitly instead.
	hastings := (math.Log(e.wNorm[Death]) - math.Log(n+1)) -
		(math.Log(e.wNorm[Birth]) + logPos + e.S.P.LogShapePrior(c))
	dPost := dLik + dPrior
	return Proposal{
		Move: Birth, Valid: true,
		LogAlpha: dPost + hastings, DPost: dPost, LogHastings: hastings,
		dLik: dLik, dPrior: dPrior,
		nAdd: 1, newCs: [2]geom.Ellipse{c},
		deferred: deferred,
	}
}

func (e *Engine) proposeDeath() Proposal {
	n := e.S.Cfg.Len()
	if n == 0 {
		return Proposal{Move: Death, Valid: false}
	}
	id := e.S.Cfg.IDAt(e.R.Intn(n))
	c := e.S.Cfg.Get(id)
	dLik, dPrior := e.S.EvalRemove(id)
	logPos := -e.S.LogAreaTerm()
	if e.births != nil {
		logPos = e.births.LogDensity(c.X, c.Y)
	}
	// q_fwd = w_D · 1/n;   q_rev = w_B · q_pos(c) · pr(shape).
	hastings := (math.Log(e.wNorm[Birth]) + logPos + e.S.P.LogShapePrior(c)) -
		(math.Log(e.wNorm[Death]) - math.Log(float64(n)))
	dPost := dLik + dPrior
	return Proposal{
		Move: Death, Valid: true,
		LogAlpha: dPost + hastings, DPost: dPost, LogHastings: hastings,
		dLik: dLik, dPrior: dPrior,
		nRem: 1, remIDs: [2]int{id},
	}
}

func (e *Engine) proposeReplace() Proposal {
	n := e.S.Cfg.Len()
	if n == 0 {
		return Proposal{Move: Replace, Valid: false}
	}
	id := e.S.Cfg.IDAt(e.R.Intn(n))
	oldC := e.S.Cfg.Get(id)
	newC := e.drawPriorShape()
	var dLik, dPrior float64
	// Screen on the union of both shapes' work: either being large makes
	// the exact pricing expensive enough to defer.
	deferred := e.screens(oldC) || e.screens(newC)
	if deferred {
		dLik, dPrior = e.S.EvalMoveCoarse(id, newC)
	} else {
		dLik, dPrior = e.S.EvalMoveCached(id, newC, &e.ms)
	}
	if math.IsInf(dPrior, -1) {
		return Proposal{Move: Replace, Valid: false}
	}
	// Proposal densities: both directions pick 1/n and draw from the
	// prior, so only the shape density asymmetry survives; it cancels
	// against the shape prior ratio inside dPrior.
	hastings := e.S.P.LogShapePrior(oldC) - e.S.P.LogShapePrior(newC)
	dPost := dLik + dPrior
	return Proposal{
		Move: Replace, Valid: true,
		LogAlpha: dPost + hastings, DPost: dPost, LogHastings: hastings,
		dLik: dLik, dPrior: dPrior,
		nRem: 1, nAdd: 1, remIDs: [2]int{id}, newCs: [2]geom.Ellipse{newC},
		deferred: deferred, ms: &e.ms,
	}
}

func (e *Engine) proposeShift() Proposal {
	n := e.S.Cfg.Len()
	if n == 0 {
		return Proposal{Move: Shift, Valid: false}
	}
	id := e.S.Cfg.IDAt(e.R.Intn(n))
	oldC := e.S.Cfg.Get(id)
	newC := oldC
	newC.X += e.R.NormalAt(0, e.Steps.ShiftStd)
	newC.Y += e.R.NormalAt(0, e.Steps.ShiftStd)
	dLik, dPrior := e.S.EvalMoveCached(id, newC, &e.ms)
	if math.IsInf(dPrior, -1) {
		return Proposal{Move: Shift, Valid: false}
	}
	// Symmetric Gaussian kernel: proposal densities cancel.
	return Proposal{
		Move: Shift, Valid: true,
		LogAlpha: dLik + dPrior, DPost: dLik + dPrior,
		dLik: dLik, dPrior: dPrior,
		nRem: 1, nAdd: 1, remIDs: [2]int{id}, newCs: [2]geom.Ellipse{newC},
		ms: &e.ms,
	}
}

func (e *Engine) proposeResize() Proposal {
	n := e.S.Cfg.Len()
	if n == 0 {
		return Proposal{Move: Resize, Valid: false}
	}
	id := e.S.Cfg.IDAt(e.R.Intn(n))
	oldC := e.S.Cfg.Get(id)
	newC := oldC
	// One symmetric Gaussian perturbation applied to both semi-axes: a
	// disc stays a disc (one RNG draw, as historically), and an ellipse
	// scales while keeping its axis difference.
	d := e.R.NormalAt(0, e.Steps.ResizeStd)
	newC.Rx = oldC.Rx + d
	newC.Ry = oldC.Ry + d
	dLik, dPrior := e.S.EvalMoveCached(id, newC, &e.ms)
	if math.IsInf(dPrior, -1) {
		return Proposal{Move: Resize, Valid: false}
	}
	return Proposal{
		Move: Resize, Valid: true,
		LogAlpha: dLik + dPrior, DPost: dLik + dPrior,
		dLik: dLik, dPrior: dPrior,
		nRem: 1, nAdd: 1, remIDs: [2]int{id}, newCs: [2]geom.Ellipse{newC},
		ms: &e.ms,
	}
}

// proposeAxisScale perturbs one uniformly chosen semi-axis of one
// ellipse with a symmetric Gaussian kernel. The axis choice is made
// identically in both directions, so the proposal density cancels.
func (e *Engine) proposeAxisScale() Proposal {
	if e.S.P.Shape == geom.KindDisc {
		return Proposal{Move: AxisScale, Valid: false}
	}
	n := e.S.Cfg.Len()
	if n == 0 {
		return Proposal{Move: AxisScale, Valid: false}
	}
	id := e.S.Cfg.IDAt(e.R.Intn(n))
	oldC := e.S.Cfg.Get(id)
	newC := oldC
	d := e.R.NormalAt(0, e.Steps.AxisStd)
	if e.R.Intn(2) == 0 {
		newC.Rx = oldC.Rx + d
	} else {
		newC.Ry = oldC.Ry + d
	}
	dLik, dPrior := e.S.EvalMoveCached(id, newC, &e.ms)
	if math.IsInf(dPrior, -1) {
		return Proposal{Move: AxisScale, Valid: false}
	}
	return Proposal{
		Move: AxisScale, Valid: true,
		LogAlpha: dLik + dPrior, DPost: dLik + dPrior,
		dLik: dLik, dPrior: dPrior,
		nRem: 1, nAdd: 1, remIDs: [2]int{id}, newCs: [2]geom.Ellipse{newC},
		ms: &e.ms,
	}
}

// proposeRotate perturbs one ellipse's rotation with a wrapped Gaussian
// kernel on the half-turn circle [0, π) — symmetric on that group, so
// no Hastings correction; the uniform rotation prior contributes
// nothing to dPrior either (EvalMove's shape-prior difference sees two
// identical-axes shapes).
func (e *Engine) proposeRotate() Proposal {
	if e.S.P.Shape == geom.KindDisc {
		return Proposal{Move: Rotate, Valid: false}
	}
	n := e.S.Cfg.Len()
	if n == 0 {
		return Proposal{Move: Rotate, Valid: false}
	}
	id := e.S.Cfg.IDAt(e.R.Intn(n))
	oldC := e.S.Cfg.Get(id)
	newC := oldC
	newC.Theta = WrapHalfTurn(oldC.Theta + e.R.NormalAt(0, e.Steps.RotateStd))
	dLik, dPrior := e.S.EvalMoveCached(id, newC, &e.ms)
	if math.IsInf(dPrior, -1) {
		return Proposal{Move: Rotate, Valid: false}
	}
	return Proposal{
		Move: Rotate, Valid: true,
		LogAlpha: dLik + dPrior, DPost: dLik + dPrior,
		dLik: dLik, dPrior: dPrior,
		nRem: 1, nAdd: 1, remIDs: [2]int{id}, newCs: [2]geom.Ellipse{newC},
		ms: &e.ms,
	}
}

func (e *Engine) proposeSplit() Proposal {
	// Split/merge are disc-only (see New); guard so a hand-weighted
	// engine can never run the disc bijection on an ellipse.
	if e.S.P.Shape != geom.KindDisc {
		return Proposal{Move: Split, Valid: false}
	}
	n := e.S.Cfg.Len()
	if n == 0 {
		return Proposal{Move: Split, Valid: false}
	}
	id := e.S.Cfg.IDAt(e.R.Intn(n))
	c := e.S.Cfg.Get(id)
	u := e.R.Positive()
	theta := e.R.Uniform(0, 2*math.Pi)
	delta := e.R.Positive() * e.Steps.MergeDist
	x1, y1, r1, x2, y2, r2 := splitMap(c.X, c.Y, c.Rx, u, theta, delta)
	c1 := geom.Disc(x1, y1, r1)
	c2 := geom.Disc(x2, y2, r2)
	p := Proposal{
		Move: Split,
		nRem: 1, nAdd: 2,
		remIDs: [2]int{id}, newCs: [2]geom.Ellipse{c1, c2},
	}
	dLik, dPrior := e.S.EvalExchange(p.remIDs[:1], p.newCs[:2])
	if math.IsInf(dPrior, -1) {
		return Proposal{Move: Split, Valid: false}
	}
	// Reverse merge must pick i=c1 (1/(n+1)) then j=c2 among c1's
	// partners. Partner count in the post-split configuration: circles
	// near c1 excluding the removed id, plus c2 itself (δ < MergeDist by
	// construction).
	m1 := e.S.CountNear(c1.X, c1.Y, e.Steps.MergeDist, id) + 1
	logQfwd := math.Log(e.wNorm[Split]) - math.Log(float64(n)) -
		math.Log(2*math.Pi) - math.Log(e.Steps.MergeDist)
	logQrev := math.Log(e.wNorm[Merge]) - math.Log(float64(n+1)) -
		math.Log(float64(m1))
	hastings := logQrev - logQfwd + logSplitJacobian(c.Rx, u, delta)
	dPost := dLik + dPrior
	p.Valid = true
	p.LogAlpha = dPost + hastings
	p.DPost = dPost
	p.LogHastings = hastings
	p.dLik, p.dPrior = dLik, dPrior
	return p
}

func (e *Engine) proposeMerge() Proposal {
	if e.S.P.Shape != geom.KindDisc {
		return Proposal{Move: Merge, Valid: false}
	}
	n := e.S.Cfg.Len()
	if n < 2 {
		return Proposal{Move: Merge, Valid: false}
	}
	i := e.S.Cfg.IDAt(e.R.Intn(n))
	ci := e.S.Cfg.Get(i)
	e.partners = e.S.AppendPartnersNear(e.partners[:0], ci.X, ci.Y, e.Steps.MergeDist, i)
	if len(e.partners) == 0 {
		return Proposal{Move: Merge, Valid: false}
	}
	j := e.partners[e.R.Intn(len(e.partners))]
	return e.evalMergePair(i, j, len(e.partners))
}

// evalMergePair builds the merge proposal for the ordered pair (i, j),
// where mi is the number of merge partners of i (the proposal picked j
// uniformly among them). Split tests use it to check the split/merge
// inverse identity.
func (e *Engine) evalMergePair(i, j, mi int) Proposal {
	n := e.S.Cfg.Len()
	ci, cj := e.S.Cfg.Get(i), e.S.Cfg.Get(j)
	x, y, r, u, _, delta := mergeMap(ci.X, ci.Y, ci.Rx, cj.X, cj.Y, cj.Rx)
	merged := geom.Disc(x, y, r)
	p := Proposal{
		Move: Merge,
		nRem: 2, nAdd: 1,
		remIDs: [2]int{i, j}, newCs: [2]geom.Ellipse{merged},
	}
	dLik, dPrior := e.S.EvalExchange(p.remIDs[:2], p.newCs[:1])
	if math.IsInf(dPrior, -1) {
		return Proposal{Move: Merge, Valid: false}
	}
	// q_fwd = w_M · (1/n) · (1/m_i);  the reverse split of `merged` must
	// regenerate the ordered pair (c1=ci, c2=cj) with the matching
	// (u, θ, δ) — density w_S · (1/(n−1)) · (1/2π) · (1/MergeDist),
	// times 1/|J| of the split map.
	logQfwd := math.Log(e.wNorm[Merge]) - math.Log(float64(n)) -
		math.Log(float64(mi))
	logQrev := math.Log(e.wNorm[Split]) - math.Log(float64(n-1)) -
		math.Log(2*math.Pi) - math.Log(e.Steps.MergeDist)
	hastings := logQrev - logQfwd - logSplitJacobian(r, u, delta)
	dPost := dLik + dPrior
	p.Valid = true
	p.LogAlpha = dPost + hastings
	p.DPost = dPost
	p.LogHastings = hastings
	p.dLik, p.dPrior = dLik, dPrior
	return p
}
