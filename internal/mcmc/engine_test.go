package mcmc

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/model"
	"repro/internal/rng"
)

// flatState builds a state whose image is exactly mid-grey, so every
// pixel gain is zero and the posterior equals the prior. Sampling from it
// exercises the full RJ machinery against a known target.
func flatState(t *testing.T, w, h int, p model.Params) *model.State {
	t.Helper()
	im := imaging.New(w, h)
	im.Fill((p.Foreground + p.Background) / 2)
	s, err := model.NewState(im, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sceneState(t *testing.T, seed uint64, count int) (*model.State, *imaging.Scene) {
	t.Helper()
	r := rng.New(seed)
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: 128, H: 128, Count: count, MeanRadius: 9, RadiusStdDev: 1,
		Noise: 0.06, MinSeparation: 1.1,
	}, r)
	s, err := model.NewState(scene.Image, model.DefaultParams(float64(count), 9))
	if err != nil {
		t.Fatal(err)
	}
	return s, scene
}

func TestNewValidates(t *testing.T) {
	s := flatState(t, 32, 32, model.DefaultParams(3, 6))
	if _, err := New(s, rng.New(1), Weights{}, DefaultStepSizes(6)); err == nil {
		t.Fatal("zero weights accepted")
	}
	if _, err := New(s, rng.New(1), DefaultWeights(), StepSizes{}); err == nil {
		t.Fatal("zero step sizes accepted")
	}
	if _, err := New(s, rng.New(1), DefaultWeights(), DefaultStepSizes(6)); err != nil {
		t.Fatal(err)
	}
}

func TestStepOnEmptyConfig(t *testing.T) {
	s := flatState(t, 32, 32, model.DefaultParams(3, 6))
	e := MustNew(s, rng.New(2), DefaultWeights(), DefaultStepSizes(6))
	// Must not panic; death/shift/... proposals on the empty
	// configuration are invalid and count as rejections.
	for i := 0; i < 500; i++ {
		e.Step()
	}
	if e.Iter != 500 {
		t.Fatalf("Iter = %d", e.Iter)
	}
	var invalid int64
	for m := Move(0); m < NumMoves; m++ {
		invalid += e.Stats.Invalid[m]
	}
	if invalid == 0 {
		t.Fatal("expected some invalid proposals on an empty start")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]geom.Ellipse, float64) {
		s, _ := sceneState(t, 7, 5)
		e := MustNew(s, rng.New(1234), DefaultWeights(), DefaultStepSizes(9))
		e.RunN(5000)
		return s.Cfg.Circles(), s.LogPost()
	}
	c1, lp1 := run()
	c2, lp2 := run()
	if lp1 != lp2 || len(c1) != len(c2) {
		t.Fatalf("same seed diverged: %v vs %v, %d vs %d circles", lp1, lp2, len(c1), len(c2))
	}
}

// The chain must keep its incremental caches exact across every move type.
func TestChainStateConsistency(t *testing.T) {
	s, _ := sceneState(t, 8, 6)
	e := MustNew(s, rng.New(99), DefaultWeights(), DefaultStepSizes(9))
	for chunk := 0; chunk < 10; chunk++ {
		e.RunN(2000)
		likErr, priorErr, coverOK := s.CheckConsistency()
		if likErr > 1e-6 || priorErr > 1e-6 || !coverOK {
			t.Fatalf("chunk %d: cache drift lik=%v prior=%v cover=%v",
				chunk, likErr, priorErr, coverOK)
		}
	}
}

// Sampling the prior: with a flat image and no overlap penalty the count
// marginal must be Poisson(λ). This is the strongest end-to-end check of
// the reversible-jump acceptance ratios (birth/death AND split/merge —
// a wrong Jacobian skews the count distribution immediately).
func TestPriorRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := model.DefaultParams(5, 8)
	p.OverlapPenalty = 0
	s := flatState(t, 128, 128, p)
	e := MustNew(s, rng.New(4242), DefaultWeights(), DefaultStepSizes(8))
	e.RunN(20000) // burn-in
	const samples = 4000
	const stride = 50
	sum, sumSq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		e.RunN(stride)
		n := float64(s.Cfg.Len())
		sum += n
		sumSq += n * n
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	// Autocorrelated samples: allow generous tolerances.
	if math.Abs(mean-5) > 0.5 {
		t.Fatalf("prior count mean = %v, want ~5", mean)
	}
	if variance < 2.5 || variance > 9 {
		t.Fatalf("prior count variance = %v, want ~5", variance)
	}
}

// Split and merge acceptance ratios must be exact inverses: applying a
// split and then evaluating the reverse merge must give logAlpha values
// that cancel.
func TestSplitMergeDetailedBalance(t *testing.T) {
	s, _ := sceneState(t, 9, 4)
	r := rng.New(5)
	e := MustNew(s, r, DefaultWeights(), DefaultStepSizes(9))
	// Seed with a few circles.
	for _, c := range []geom.Ellipse{
		geom.Disc(40, 40, 9), geom.Disc(80, 80, 10), geom.Disc(60, 30, 8),
	} {
		dl, dp := s.EvalAdd(c)
		s.ApplyAdd(c, dl, dp)
	}
	checked := 0
	for trial := 0; trial < 2000 && checked < 50; trial++ {
		before := s.LogPost()
		p := e.Propose(Split)
		if !p.Valid || math.IsInf(p.LogAlpha, 0) {
			continue
		}
		nBefore := s.Cfg.Len()
		p.apply(e)
		if s.Cfg.Len() != nBefore+1 {
			t.Fatal("split did not grow the configuration")
		}
		// Identify the two new circles: they are the two most recently
		// added IDs. ApplyExchange adds them last, so take the two
		// largest positions in the dense list.
		idC1 := s.Cfg.IDAt(s.Cfg.Len() - 2)
		idC2 := s.Cfg.IDAt(s.Cfg.Len() - 1)
		c1 := s.Cfg.Get(idC1)
		mi := len(s.PartnersNear(c1.X, c1.Y, e.Steps.MergeDist, idC1))
		rev := e.evalMergePair(idC1, idC2, mi)
		if !rev.Valid {
			t.Fatalf("reverse merge invalid after valid split")
		}
		if math.Abs(p.LogAlpha+rev.LogAlpha) > 1e-6 {
			t.Fatalf("split logAlpha %v and reverse merge logAlpha %v do not cancel",
				p.LogAlpha, rev.LogAlpha)
		}
		// Undo via the reverse merge to keep the configuration stable.
		rev.apply(e)
		if math.Abs(s.LogPost()-before) > 1e-6 {
			t.Fatalf("split+merge did not restore posterior: %v vs %v", s.LogPost(), before)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d split/merge pairs checked", checked)
	}
}

// Birth and death must likewise be inverses.
func TestBirthDeathDetailedBalance(t *testing.T) {
	s, _ := sceneState(t, 10, 4)
	e := MustNew(s, rng.New(6), DefaultWeights(), DefaultStepSizes(9))
	checked := 0
	for trial := 0; trial < 500 && checked < 50; trial++ {
		p := e.Propose(Birth)
		if !p.Valid {
			continue
		}
		p.apply(e)
		// The newborn is the last dense entry.
		id := s.Cfg.IDAt(s.Cfg.Len() - 1)
		c := s.Cfg.Get(id)
		dLik, dPrior := s.EvalRemove(id)
		n := s.Cfg.Len()
		logAlphaDeath := dLik + dPrior +
			(math.Log(e.wNorm[Birth]) - s.LogAreaTerm() + s.P.LogShapePrior(c)) -
			(math.Log(e.wNorm[Death]) - math.Log(float64(n)))
		if math.Abs(p.LogAlpha+logAlphaDeath) > 1e-6 {
			t.Fatalf("birth %v and death %v logAlpha do not cancel", p.LogAlpha, logAlphaDeath)
		}
		s.ApplyRemove(id, dLik, dPrior)
		checked++
	}
	if checked < 10 {
		t.Fatal("too few birth/death pairs checked")
	}
}

// The sampler must actually find the artifacts in a synthetic scene.
func TestFindsCircles(t *testing.T) {
	s, scene := sceneState(t, 11, 5)
	e := MustNew(s, rng.New(77), DefaultWeights(), DefaultStepSizes(9))
	e.RunN(40000)
	found := s.Cfg.Circles()
	if len(found) < 4 || len(found) > 7 {
		t.Fatalf("found %d circles, truth has %d", len(found), len(scene.Truth))
	}
	matched := 0
	for _, truth := range scene.Truth {
		for _, f := range found {
			if truth.Dist(f) < 4 && math.Abs(truth.EffR()-f.EffR()) < 4 {
				matched++
				break
			}
		}
	}
	if matched < len(scene.Truth)-1 {
		t.Fatalf("matched only %d/%d truth circles", matched, len(scene.Truth))
	}
}

func TestStatsRates(t *testing.T) {
	var st Stats
	st.Proposed[Shift] = 100
	st.Accepted[Shift] = 25
	st.Proposed[Birth] = 50
	st.Accepted[Birth] = 10
	if r := st.RejectionRateOf(Shift); math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("shift rejection = %v", r)
	}
	if r := st.RejectionRate(); math.Abs(r-(1-35.0/150)) > 1e-12 {
		t.Fatalf("overall rejection = %v", r)
	}
	pgr, plr := st.GlobalLocalRates()
	if math.Abs(pgr-0.8) > 1e-12 || math.Abs(plr-0.75) > 1e-12 {
		t.Fatalf("pgr=%v plr=%v", pgr, plr)
	}
	var other Stats
	other.Proposed[Shift] = 10
	st.Add(other)
	if st.Proposed[Shift] != 110 {
		t.Fatal("Stats.Add failed")
	}
	var empty Stats
	if empty.RejectionRate() != 0 || empty.RejectionRateOf(Birth) != 0 {
		t.Fatal("empty stats should report 0")
	}
}

func TestCommitAndRecordRejected(t *testing.T) {
	s, _ := sceneState(t, 12, 3)
	e := MustNew(s, rng.New(8), DefaultWeights(), DefaultStepSizes(9))
	p := e.Propose(Birth)
	if !p.Valid {
		t.Skip("unlucky birth proposal")
	}
	e.Commit(p)
	if e.Stats.Accepted[Birth] != 1 || e.Iter != 1 {
		t.Fatal("Commit bookkeeping wrong")
	}
	e.RecordRejected(Proposal{Move: Death, Valid: true})
	if e.Stats.Proposed[Death] != 1 || e.Stats.Accepted[Death] != 0 || e.Iter != 2 {
		t.Fatal("RecordRejected bookkeeping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Commit of invalid proposal did not panic")
		}
	}()
	e.Commit(Proposal{Move: Death, Valid: false})
}

func TestTraceRecords(t *testing.T) {
	s, _ := sceneState(t, 13, 3)
	e := MustNew(s, rng.New(9), DefaultWeights(), DefaultStepSizes(9))
	tr := NewTrace(10)
	e.AttachTrace(tr)
	e.RunN(100)
	if len(tr.LogPost) != 10 {
		t.Fatalf("trace has %d samples, want 10", len(tr.LogPost))
	}
	if e.Trace() != tr {
		t.Fatal("Trace() accessor wrong")
	}
}

func TestPlateauDetector(t *testing.T) {
	tr := &Trace{Every: 1}
	// Rising then flat.
	for i := 0; i < 50; i++ {
		v := float64(i)
		if v > 30 {
			v = 30
		}
		tr.LogPost = append(tr.LogPost, v)
		tr.Iters = append(tr.Iters, int64(i+1))
	}
	d := PlateauDetector{Window: 5, Tol: 0.5}
	it, ok := d.Converged(tr)
	if !ok {
		t.Fatal("plateau not detected")
	}
	if it < 30 || it > 45 {
		t.Fatalf("converged at iteration %d, expected in [30,45]", it)
	}
	// Monotonically rising: no plateau.
	tr2 := &Trace{Every: 1}
	for i := 0; i < 50; i++ {
		tr2.LogPost = append(tr2.LogPost, float64(i)*2)
		tr2.Iters = append(tr2.Iters, int64(i+1))
	}
	if _, ok := d.Converged(tr2); ok {
		t.Fatal("false plateau on rising trace")
	}
	// Too short.
	if _, ok := d.Converged(&Trace{}); ok {
		t.Fatal("empty trace converged")
	}
}

func TestRunUntilConverged(t *testing.T) {
	s, _ := sceneState(t, 14, 4)
	e := MustNew(s, rng.New(10), DefaultWeights(), DefaultStepSizes(9))
	e.AttachTrace(NewTrace(100))
	iters, ok := e.RunUntilConverged(60000, PlateauDetector{Window: 10, Tol: 1})
	if !ok {
		t.Fatalf("did not converge in %d iterations", iters)
	}
	if iters <= 0 || iters > 60000 {
		t.Fatalf("iterations = %d", iters)
	}
	// Must respect the cap when convergence is impossible.
	s2 := flatState(t, 32, 32, model.DefaultParams(3, 6))
	e2 := MustNew(s2, rng.New(11), DefaultWeights(), DefaultStepSizes(6))
	e2.AttachTrace(NewTrace(1))
	iters2, _ := e2.RunUntilConverged(500, PlateauDetector{Window: 1000, Tol: -1})
	if iters2 != 500 {
		t.Fatalf("cap not respected: %d", iters2)
	}
}

func TestAcceptsMatchesLogAlpha(t *testing.T) {
	s, _ := sceneState(t, 15, 3)
	e := MustNew(s, rng.New(12), DefaultWeights(), DefaultStepSizes(9))
	if e.Accepts(Proposal{Valid: false}) {
		t.Fatal("invalid proposal accepted")
	}
	if !e.Accepts(Proposal{Valid: true, LogAlpha: 0}) {
		t.Fatal("logAlpha >= 0 must always accept")
	}
	if e.Accepts(Proposal{Valid: true, LogAlpha: math.Inf(-1)}) {
		t.Fatal("-Inf logAlpha accepted")
	}
}
