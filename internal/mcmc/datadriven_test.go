package mcmc

import (
	"math"
	"testing"

	"repro/internal/imaging"
	"repro/internal/model"
	"repro/internal/rng"
)

func TestDataDrivenBirthDensityNormalised(t *testing.T) {
	s, _ := sceneState(t, 60, 5)
	d := NewDataDrivenBirth(s, 0.1)
	// Σ over pixels of exp(logd) must be 1 (pixel area = 1).
	total := 0.0
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			total += math.Exp(d.LogDensity(float64(x)+0.5, float64(y)+0.5))
		}
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("density sums to %v", total)
	}
	if !math.IsInf(d.LogDensity(-1, 5), -1) || !math.IsInf(d.LogDensity(5, 1e9), -1) {
		t.Fatal("out-of-image density not -Inf")
	}
}

func TestDataDrivenBirthSamplesBrightPixels(t *testing.T) {
	s, scene := sceneState(t, 61, 4)
	d := NewDataDrivenBirth(s, 0.1)
	r := rng.New(9)
	inArtifact := 0
	const n = 20000
	for i := 0; i < n; i++ {
		x, y := d.Sample(r)
		if x < 0 || x >= float64(s.W) || y < 0 || y >= float64(s.H) {
			t.Fatalf("sample outside image: (%v,%v)", x, y)
		}
		for _, c := range scene.Truth {
			if c.Contains(x, y) {
				inArtifact++
				break
			}
		}
	}
	// Artifacts cover only a few percent of the area but carry ~90% of
	// the proposal mass.
	frac := float64(inArtifact) / n
	if frac < 0.5 {
		t.Fatalf("only %.2f of samples landed on artifacts", frac)
	}
}

func TestDataDrivenBirthFlatImageIsUniform(t *testing.T) {
	p := model.DefaultParams(5, 8)
	im := imaging.New(32, 32)
	im.Fill((p.Foreground + p.Background) / 2) // gain exactly 0 everywhere
	s, err := model.NewState(im, p)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDataDrivenBirth(s, 0.1)
	want := -math.Log(32.0 * 32.0)
	for _, xy := range [][2]float64{{0.5, 0.5}, {16, 16}, {31.5, 31.5}} {
		if got := d.LogDensity(xy[0], xy[1]); math.Abs(got-want) > 1e-9 {
			t.Fatalf("flat-image density at %v = %v, want uniform %v", xy, got, want)
		}
	}
}

// Birth and death must remain exact inverses under the data-driven
// proposal (the Hastings correction must be symmetric).
func TestDataDrivenBirthDeathBalance(t *testing.T) {
	s, _ := sceneState(t, 62, 4)
	e := MustNew(s, rng.New(63), DefaultWeights(), DefaultStepSizes(9))
	e.AttachBirthSampler(NewDataDrivenBirth(s, 0.1))
	checked := 0
	for trial := 0; trial < 500 && checked < 50; trial++ {
		p := e.Propose(Birth)
		if !p.Valid {
			continue
		}
		p.apply(e)
		id := s.Cfg.IDAt(s.Cfg.Len() - 1)
		c := s.Cfg.Get(id)
		dLik, dPrior := s.EvalRemove(id)
		n := s.Cfg.Len()
		logAlphaDeath := dLik + dPrior +
			(math.Log(e.wNorm[Birth]) + e.births.LogDensity(c.X, c.Y) + s.P.LogShapePrior(c)) -
			(math.Log(e.wNorm[Death]) - math.Log(float64(n)))
		if math.Abs(p.LogAlpha+logAlphaDeath) > 1e-6 {
			t.Fatalf("data-driven birth %v / death %v do not cancel", p.LogAlpha, logAlphaDeath)
		}
		s.ApplyRemove(id, dLik, dPrior)
		checked++
	}
	if checked < 10 {
		t.Fatal("too few pairs checked")
	}
}

// Prior recovery must still hold: on a flat image the data-driven
// proposal degenerates to uniform and the count marginal stays
// Poisson(λ).
func TestDataDrivenPriorRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := model.DefaultParams(5, 8)
	p.OverlapPenalty = 0
	im := imaging.New(128, 128)
	im.Fill((p.Foreground + p.Background) / 2)
	s, err := model.NewState(im, p)
	if err != nil {
		t.Fatal(err)
	}
	e := MustNew(s, rng.New(4244), DefaultWeights(), DefaultStepSizes(8))
	e.AttachBirthSampler(NewDataDrivenBirth(s, 0.1))
	e.RunN(20000)
	sum := 0.0
	const samples = 3000
	for i := 0; i < samples; i++ {
		e.RunN(50)
		sum += float64(s.Cfg.Len())
	}
	if mean := sum / samples; math.Abs(mean-5) > 0.5 {
		t.Fatalf("data-driven prior count mean = %v, want ~5", mean)
	}
}

// Data-driven births should reach a near-final posterior in fewer
// iterations than uniform births on a sparse scene.
func TestDataDrivenConvergesFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	run := func(dataDriven bool) float64 {
		r := rng.New(800)
		scene := imaging.Synthesize(imaging.SceneSpec{
			W: 256, H: 256, Count: 6, MeanRadius: 8, RadiusStdDev: 1,
			Noise: 0.06, MinSeparation: 1.2,
		}, r)
		s, err := model.NewState(scene.Image, model.DefaultParams(6, 8))
		if err != nil {
			t.Fatal(err)
		}
		e := MustNew(s, rng.New(801), DefaultWeights(), DefaultStepSizes(8))
		if dataDriven {
			e.AttachBirthSampler(NewDataDrivenBirth(s, 0.1))
		}
		e.RunN(4000) // a short budget where proposal quality dominates
		return s.LogPost()
	}
	uniform := run(false)
	driven := run(true)
	if driven <= uniform {
		t.Fatalf("data-driven births did not help: %v <= %v after 4000 iters", driven, uniform)
	}
}
