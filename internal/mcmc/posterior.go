package mcmc

import "repro/internal/imaging"

// PosteriorAccumulator estimates posterior summaries from post-burn-in
// samples of the chain — the pay-off §I promises for MCMC over greedy
// segmentation: "identifying similar but distinct solutions and giving
// the relative probabilities of these different interpretations".
//
// It accumulates, at a fixed iteration stride,
//
//   - a per-pixel coverage probability map P(pixel is inside some
//     artifact | data), and
//   - the posterior histogram of the artifact count.
//
// Attach with Engine.AttachAccumulator and run the chain as usual.
type PosteriorAccumulator struct {
	// Every is the sampling stride in iterations.
	Every int

	samples int64
	sum     []float64 // per-pixel hit counts
	w, h    int
	counts  map[int]int64
	next    int64
}

// NewPosteriorAccumulator creates an accumulator for a w×h image
// sampling every `every` iterations.
func NewPosteriorAccumulator(w, h, every int) *PosteriorAccumulator {
	if every < 1 {
		every = 1
	}
	return &PosteriorAccumulator{
		Every:  every,
		sum:    make([]float64, w*h),
		w:      w,
		h:      h,
		counts: make(map[int]int64),
	}
}

func (p *PosteriorAccumulator) observe(e *Engine) {
	if p.next == 0 {
		p.next = int64(p.Every)
	}
	if e.Iter < p.next {
		return
	}
	for p.next <= e.Iter {
		p.next += int64(p.Every)
	}
	p.samples++
	for i, c := range e.S.Cover {
		if c > 0 {
			p.sum[i]++
		}
	}
	p.counts[e.S.Cfg.Len()]++
}

// Samples returns the number of accumulated samples.
func (p *PosteriorAccumulator) Samples() int64 { return p.samples }

// ProbabilityMap returns the per-pixel posterior coverage probability as
// an image in [0, 1]. It returns an all-zero map before any sample.
func (p *PosteriorAccumulator) ProbabilityMap() *imaging.Image {
	out := imaging.New(p.w, p.h)
	if p.samples == 0 {
		return out
	}
	inv := 1 / float64(p.samples)
	for i, v := range p.sum {
		out.Pix[i] = v * inv
	}
	return out
}

// CountPosterior returns the sampled posterior distribution of the
// artifact count as (count, probability) pairs in ascending count order.
func (p *PosteriorAccumulator) CountPosterior() (counts []int, probs []float64) {
	if p.samples == 0 {
		return nil, nil
	}
	maxN := 0
	for n := range p.counts {
		if n > maxN {
			maxN = n
		}
	}
	inv := 1 / float64(p.samples)
	for n := 0; n <= maxN; n++ {
		if c, ok := p.counts[n]; ok {
			counts = append(counts, n)
			probs = append(probs, float64(c)*inv)
		}
	}
	return counts, probs
}

// MAPCount returns the maximum a-posteriori artifact count (the mode of
// the sampled count distribution) and its probability.
func (p *PosteriorAccumulator) MAPCount() (count int, prob float64) {
	counts, probs := p.CountPosterior()
	for i := range counts {
		if probs[i] > prob {
			count, prob = counts[i], probs[i]
		}
	}
	return
}

// AttachAccumulator registers acc to sample the chain; pass nil to
// detach. It coexists with an attached Trace.
func (e *Engine) AttachAccumulator(acc *PosteriorAccumulator) { e.accum = acc }
