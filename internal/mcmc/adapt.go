package mcmc

import "math"

// Adapter tunes the local-move step sizes during burn-in using a
// Robbins–Monro scheme: after every Every iterations the shift and
// resize scales are multiplied by exp(γ_k · (acc − Target)) with a
// decaying gain γ_k = Gain/√k, pushing the per-move acceptance rates
// toward Target. Adaptation must stop before samples are collected
// (diminishing adaptation alone preserves ergodicity only
// asymptotically); RunAdaptive therefore adapts for exactly the
// iterations it is given and leaves the engine's step sizes frozen
// afterwards.
//
// The target default of 0.30 sits in the standard efficient range for
// low-dimensional random-walk updates (0.234–0.44).
type Adapter struct {
	// Target acceptance rate (default 0.30).
	Target float64
	// Every is the adaptation interval in iterations (default 500).
	Every int
	// Gain is the base step of the Robbins–Monro recursion (default 0.5).
	Gain float64
	// MinScale / MaxScale clamp the step sizes as multiples of their
	// initial values (defaults 0.05 and 20).
	MinScale, MaxScale float64
}

func (a Adapter) withDefaults() Adapter {
	if a.Target == 0 {
		a.Target = 0.30
	}
	if a.Every == 0 {
		a.Every = 500
	}
	if a.Gain == 0 {
		a.Gain = 0.5
	}
	if a.MinScale == 0 {
		a.MinScale = 0.05
	}
	if a.MaxScale == 0 {
		a.MaxScale = 20
	}
	return a
}

// RunAdaptive advances the chain n iterations while tuning ShiftStd and
// ResizeStd, and returns the final step sizes. The engine continues with
// the tuned (now frozen) sizes.
func (e *Engine) RunAdaptive(n int, a Adapter) StepSizes {
	a = a.withDefaults()
	shift0, resize0 := e.Steps.ShiftStd, e.Steps.ResizeStd
	clamp := func(v, v0 float64) float64 {
		return math.Min(math.Max(v, v0*a.MinScale), v0*a.MaxScale)
	}
	done := 0
	k := 0
	for done < n {
		chunk := a.Every
		if rem := n - done; rem < chunk {
			chunk = rem
		}
		beforeShiftP := e.Stats.Proposed[Shift]
		beforeShiftA := e.Stats.Accepted[Shift]
		beforeResizeP := e.Stats.Proposed[Resize]
		beforeResizeA := e.Stats.Accepted[Resize]
		e.RunN(chunk)
		done += chunk
		k++
		gamma := a.Gain / math.Sqrt(float64(k))
		if dp := e.Stats.Proposed[Shift] - beforeShiftP; dp > 0 {
			acc := float64(e.Stats.Accepted[Shift]-beforeShiftA) / float64(dp)
			e.Steps.ShiftStd = clamp(e.Steps.ShiftStd*math.Exp(gamma*(acc-a.Target)), shift0)
		}
		if dp := e.Stats.Proposed[Resize] - beforeResizeP; dp > 0 {
			acc := float64(e.Stats.Accepted[Resize]-beforeResizeA) / float64(dp)
			e.Steps.ResizeStd = clamp(e.Steps.ResizeStd*math.Exp(gamma*(acc-a.Target)), resize0)
		}
	}
	return e.Steps
}
