package mcmc

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/model"
	"repro/internal/rng"
)

// The proposal path must be allocation-free in steady state: proposals
// are plain values, merge-candidate search appends into engine scratch,
// and the likelihood kernels use stack span buffers. These tests pin
// that property so allocation regressions fail CI rather than silently
// eroding throughput.

func allocEngine(t testing.TB) *Engine { return allocEngineKind(t, geom.KindDisc) }

func allocEngineKind(t testing.TB, kind geom.ShapeKind) *Engine {
	t.Helper()
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: 128, H: 128, Count: 12, MeanRadius: 8, RadiusStdDev: 1,
		Noise: 0.05, MinSeparation: 1.05, Shape: kind,
	}, rng.New(11))
	p := model.DefaultParams(12, 8)
	p.Shape = kind
	s, err := model.NewState(scene.Image, p)
	if err != nil {
		t.Fatal(err)
	}
	e := MustNew(s, rng.New(3), DefaultWeightsFor(kind), DefaultStepSizes(8))
	// Reach steady state: configuration populated, index buckets and all
	// scratch buffers grown to their working sizes.
	e.RunN(20000)
	return e
}

// TestShiftResizeProposalsZeroAlloc asserts the headline property: a full
// shift or resize iteration (propose, decide, apply) performs zero heap
// allocations in steady state.
func TestShiftResizeProposalsZeroAlloc(t *testing.T) {
	e := allocEngine(t)
	for _, m := range []Move{Shift, Resize} {
		m := m
		// Warm any remaining lazily-grown buffers on this move kind.
		for i := 0; i < 100; i++ {
			e.Decide(e.Propose(m))
		}
		avg := testing.AllocsPerRun(500, func() {
			e.Decide(e.Propose(m))
		})
		if avg != 0 {
			t.Errorf("%v: %v allocs/op in steady state, want 0", m, avg)
		}
	}
}

// TestProposeOnlyZeroAlloc checks the evaluation (read-only) half for
// every move kind except birth/death/split (whose *apply* path touches
// the configuration's growable storage; their Propose is covered here).
func TestProposeOnlyZeroAlloc(t *testing.T) {
	e := allocEngine(t)
	for m := Move(0); m < NumMoves; m++ {
		m := m
		for i := 0; i < 100; i++ {
			_ = e.Propose(m)
		}
		avg := testing.AllocsPerRun(500, func() {
			_ = e.Propose(m)
		})
		if avg != 0 {
			t.Errorf("Propose(%v): %v allocs/op in steady state, want 0", m, avg)
		}
	}
}

// TestEllipseLocalProposalsZeroAlloc pins the same property for the
// ellipse workload's local move set, including the new axis-scale and
// rotate kinds.
func TestEllipseLocalProposalsZeroAlloc(t *testing.T) {
	e := allocEngineKind(t, geom.KindEllipse)
	for _, m := range []Move{Shift, Resize, AxisScale, Rotate} {
		m := m
		for i := 0; i < 100; i++ {
			e.Decide(e.Propose(m))
		}
		avg := testing.AllocsPerRun(500, func() {
			e.Decide(e.Propose(m))
		})
		if avg != 0 {
			t.Errorf("%v: %v allocs/op in steady state, want 0", m, avg)
		}
	}
}

// TestEllipseProposeOnlyZeroAlloc covers the read-only half of every
// move kind in ellipse mode (split/merge propose as invalid, which must
// also be free).
func TestEllipseProposeOnlyZeroAlloc(t *testing.T) {
	e := allocEngineKind(t, geom.KindEllipse)
	for m := Move(0); m < NumMoves; m++ {
		m := m
		for i := 0; i < 100; i++ {
			_ = e.Propose(m)
		}
		avg := testing.AllocsPerRun(500, func() {
			_ = e.Propose(m)
		})
		if avg != 0 {
			t.Errorf("Propose(%v): %v allocs/op in steady state, want 0", m, avg)
		}
	}
}
