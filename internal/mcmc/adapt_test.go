package mcmc

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRunAdaptiveReachesTarget(t *testing.T) {
	s, _ := sceneState(t, 40, 6)
	e := MustNew(s, rng.New(101), DefaultWeights(), DefaultStepSizes(9))
	// Deliberately mis-tuned, far too large: acceptance will start near
	// zero and the adapter must shrink the steps.
	e.Steps.ShiftStd = 40
	e.Steps.ResizeStd = 15
	e.RunN(15000) // settle near the posterior mode first
	preShift := e.Steps.ShiftStd

	e.RunAdaptive(60000, Adapter{Target: 0.3, Gain: 2, MinScale: 0.001})
	if e.Steps.ShiftStd >= preShift {
		t.Fatalf("adapter did not shrink oversized shift step: %v -> %v", preShift, e.Steps.ShiftStd)
	}
	// Acceptance with the tuned (frozen) steps should be near the target.
	before := e.Stats
	e.RunN(15000)
	prop := e.Stats.Proposed[Shift] - before.Proposed[Shift]
	acc := e.Stats.Accepted[Shift] - before.Accepted[Shift]
	rate := float64(acc) / float64(prop)
	if rate < 0.1 || rate > 0.6 {
		t.Fatalf("post-adaptation shift acceptance %.3f (step %.3f), want near 0.3",
			rate, e.Steps.ShiftStd)
	}
}

func TestRunAdaptiveClamps(t *testing.T) {
	s, _ := sceneState(t, 41, 3)
	e := MustNew(s, rng.New(102), DefaultWeights(), DefaultStepSizes(9))
	shift0 := e.Steps.ShiftStd
	e.RunAdaptive(5000, Adapter{Target: 0.999, Gain: 50, MinScale: 0.5, MaxScale: 2})
	if e.Steps.ShiftStd > shift0*2+1e-9 || e.Steps.ShiftStd < shift0*0.5-1e-9 {
		t.Fatalf("step escaped clamp: %v (base %v)", e.Steps.ShiftStd, shift0)
	}
	if e.Iter != 5000 {
		t.Fatalf("Iter = %d", e.Iter)
	}
}

func TestGewekeZBasics(t *testing.T) {
	r := rng.New(103)
	// Stationary iid noise: |z| should usually be small.
	small := 0
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = r.NormalAt(10, 1)
		}
		if math.Abs(GewekeZ(xs, 0.25, 0.5)) < 2 {
			small++
		}
	}
	if small < 40 {
		t.Fatalf("stationary series flagged too often: %d/50 ok", small)
	}
	// Strong trend: |z| must be large.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i) + r.NormalAt(0, 0.5)
	}
	if z := GewekeZ(xs, 0.25, 0.5); math.Abs(z) < 5 {
		t.Fatalf("trending series z = %v, want large", z)
	}
	// Degenerate inputs.
	if z := GewekeZ([]float64{1, 2}, 0.25, 0.5); !math.IsInf(z, 1) {
		t.Fatalf("short series z = %v", z)
	}
	constSeries := []float64{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	if z := GewekeZ(constSeries, 0.25, 0.5); z != 0 {
		t.Fatalf("constant series z = %v", z)
	}
}

func TestGewekeDetector(t *testing.T) {
	r := rng.New(104)
	tr := &Trace{Every: 1}
	// Rising for 100 observations, then stationary for 100.
	for i := 0; i < 200; i++ {
		v := 100.0
		if i < 100 {
			v = float64(i)
		}
		tr.LogPost = append(tr.LogPost, v+r.NormalAt(0, 0.8))
		tr.Iters = append(tr.Iters, int64(i+1))
	}
	d := GewekeDetector{Window: 60, ZThreshold: 2}
	it, ok := d.Converged(tr)
	if !ok {
		t.Fatal("stationary tail not detected")
	}
	if it < 100 {
		t.Fatalf("converged during the rise, at observation %d", it)
	}
	// MinIters gate.
	d.MinIters = 1000
	if _, ok := d.Converged(tr); ok {
		t.Fatal("MinIters ignored")
	}
	// Too-short window.
	if _, ok := (GewekeDetector{Window: 4, ZThreshold: 2}).Converged(tr); ok {
		t.Fatal("window < 8 should never converge")
	}
}

// The Geweke detector must also work end-to-end as a burn-in criterion.
func TestGewekeEndToEnd(t *testing.T) {
	s, _ := sceneState(t, 42, 4)
	e := MustNew(s, rng.New(105), DefaultWeights(), DefaultStepSizes(9))
	tr := NewTrace(200)
	e.AttachTrace(tr)
	e.RunN(60000)
	d := GewekeDetector{Window: 40, ZThreshold: 2, MinIters: 5000}
	if _, ok := d.Converged(tr); !ok {
		t.Fatal("chain did not pass Geweke after 60k iterations")
	}
}
