package mcmc

import (
	"math"
	"sort"

	"repro/internal/model"
)

// DataDrivenBirth is an optional birth/replace proposal distribution
// that places new circles preferentially where the image supports them
// (data-driven MCMC in the style of Tu & Zhu): centre pixels are drawn
// with probability proportional to the clipped per-pixel likelihood gain
// plus a floor, then jittered uniformly within the pixel. The exact
// proposal density enters the Metropolis–Hastings ratio, so the chain's
// stationary distribution is untouched — only its mixing accelerates.
//
// The floor keeps the density bounded away from zero everywhere, which
// both guarantees irreducibility and keeps the reverse-move densities
// finite for artifacts sitting on dark pixels.
type DataDrivenBirth struct {
	w, h  int
	cum   []float64 // cumulative pixel weights
	logd  []float64 // per-pixel log proposal density (per unit area)
	total float64
}

// NewDataDrivenBirth builds the sampler from the state's gain image.
// floorFrac (in (0,1], e.g. 0.1) is the fraction of the total mass
// spread uniformly over the image.
func NewDataDrivenBirth(s *model.State, floorFrac float64) *DataDrivenBirth {
	if floorFrac <= 0 || floorFrac > 1 {
		floorFrac = 0.1
	}
	n := s.W * s.H
	weights := make([]float64, n)
	sum := 0.0
	for i, g := range s.Gain {
		if g > 0 {
			weights[i] = g
			sum += g
		}
	}
	if sum == 0 {
		// Degenerate (no positive-gain pixels): uniform.
		for i := range weights {
			weights[i] = 1
		}
		sum = float64(n)
		floorFrac = 1
	}
	// Blend with the uniform floor: w'_i = (1-f)·w_i/sum + f/n.
	d := &DataDrivenBirth{
		w: s.W, h: s.H,
		cum:  make([]float64, n),
		logd: make([]float64, n),
	}
	acc := 0.0
	for i := range weights {
		p := (1-floorFrac)*weights[i]/sum + floorFrac/float64(n)
		acc += p
		d.cum[i] = acc
		// Pixel area is 1, so the density per unit area equals the
		// pixel probability.
		d.logd[i] = math.Log(p)
	}
	d.total = acc
	return d
}

// Sample draws a centre position from the proposal distribution.
func (d *DataDrivenBirth) Sample(r interface{ Float64() float64 }) (x, y float64) {
	target := r.Float64() * d.total
	i := sort.SearchFloat64s(d.cum, target)
	if i >= len(d.cum) {
		i = len(d.cum) - 1
	}
	px, py := i%d.w, i/d.w
	return float64(px) + r.Float64(), float64(py) + r.Float64()
}

// LogDensity returns the log proposal density (per unit area) at (x, y).
// It returns -Inf outside the image.
func (d *DataDrivenBirth) LogDensity(x, y float64) float64 {
	px, py := int(x), int(y)
	if px < 0 || px >= d.w || py < 0 || py >= d.h {
		return math.Inf(-1)
	}
	return d.logd[py*d.w+px]
}

// AttachBirthSampler installs (or, with nil, removes) a data-driven
// birth proposal. Birth proposals then draw centres from it and the
// acceptance ratios use its density in place of the uniform 1/A.
func (e *Engine) AttachBirthSampler(d *DataDrivenBirth) { e.births = d }
