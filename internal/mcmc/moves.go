// Package mcmc implements the reversible-jump Metropolis–Hastings engine
// of the paper's case study (§II–III): a move set over circle
// configurations with global (dimension- or globally-changing) and local
// (fine-tuning) moves, acceptance bookkeeping, and convergence detection.
//
// The engine separates proposal generation (Propose, read-only) from
// application (Decide/Apply), which is exactly the split the speculative-
// moves parallelisation of [11] needs: k proposals can be evaluated
// concurrently against a frozen state, then at most one is applied.
package mcmc

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Move identifies a proposal kind. The first five are the global set M_g
// of §VII ("any move that changes the number of cells in the model must
// be a global move": add, delete, merge, split, replace); the rest form
// the local set M_l (alter position, alter radius, and — for ellipse
// workloads — alter one semi-axis or the rotation).
type Move int

const (
	Birth Move = iota
	Death
	Split
	Merge
	Replace
	Shift
	Resize
	AxisScale
	Rotate
	NumMoves
)

var moveNames = [NumMoves]string{
	"birth", "death", "split", "merge", "replace", "shift", "resize",
	"axis-scale", "rotate",
}

func (m Move) String() string {
	if m < 0 || m >= NumMoves {
		return fmt.Sprintf("Move(%d)", int(m))
	}
	return moveNames[m]
}

// IsGlobal reports whether the move belongs to M_g. Global moves cannot
// run during a partition-parallel local phase.
func (m Move) IsGlobal() bool { return m <= Replace }

// Weights holds the proposal probability of each move kind. They need not
// sum to one; Normalised copies are used internally.
type Weights [NumMoves]float64

// DefaultWeights reproduces the case-study mixture of §VII: "the proposal
// probabilities are such that 60% of moves are from M_l", with the global
// mass split evenly across the five global kinds and the local mass
// across the two disc local kinds (the ellipse-only locals get zero).
func DefaultWeights() Weights {
	return Weights{
		Birth:   0.08,
		Death:   0.08,
		Split:   0.08,
		Merge:   0.08,
		Replace: 0.08,
		Shift:   0.30,
		Resize:  0.30,
	}
}

// DefaultWeightsFor returns the default mixture for a shape family.
// Discs get the paper's §VII mixture. Ellipses keep the 60% local mass
// but spread it over the four local kinds and drop split/merge: the
// paper's split↔merge bijection is area-preserving for discs only, and
// no dimension-matched analogue exists once per-feature axis ratios and
// rotations must round-trip; birth/death/replace retain the global
// mass instead.
func DefaultWeightsFor(kind geom.ShapeKind) Weights {
	if kind == geom.KindDisc {
		return DefaultWeights()
	}
	return Weights{
		Birth:     0.12,
		Death:     0.12,
		Replace:   0.16,
		Shift:     0.24,
		Resize:    0.12,
		AxisScale: 0.12,
		Rotate:    0.12,
	}
}

// Normalised returns a copy scaled to sum to 1. It panics if the total
// mass is not positive.
func (w Weights) Normalised() Weights {
	total := 0.0
	for _, v := range w {
		if v < 0 {
			panic("mcmc: negative move weight")
		}
		total += v
	}
	if total <= 0 {
		panic("mcmc: move weights sum to zero")
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// QGlobal returns q_g, the probability that a proposed move is global —
// the quantity the paper's runtime model (eqs. 2–4) is parameterised by.
func (w Weights) QGlobal() float64 {
	n := w.Normalised()
	q := 0.0
	for m := Move(0); m < NumMoves; m++ {
		if m.IsGlobal() {
			q += n[m]
		}
	}
	return q
}

// Validate checks that reversible pairs are jointly present or jointly
// absent: a chain that can propose birth but never death (or split but
// never merge) does not satisfy detailed balance.
func (w Weights) Validate() error {
	if (w[Birth] > 0) != (w[Death] > 0) {
		return fmt.Errorf("mcmc: birth/death weights must be both zero or both positive")
	}
	if (w[Split] > 0) != (w[Merge] > 0) {
		return fmt.Errorf("mcmc: split/merge weights must be both zero or both positive")
	}
	total := 0.0
	for _, v := range w {
		if v < 0 {
			return fmt.Errorf("mcmc: negative move weight")
		}
		total += v
	}
	if total <= 0 {
		return fmt.Errorf("mcmc: move weights sum to zero")
	}
	return nil
}

// StepSizes are the proposal kernel scales.
type StepSizes struct {
	// ShiftStd is the per-axis Gaussian std-dev of position perturbations.
	ShiftStd float64
	// ResizeStd is the Gaussian std-dev of radius perturbations (applied
	// to both semi-axes jointly in ellipse mode).
	ResizeStd float64
	// MergeDist is both the maximum centre distance of merge partners and
	// the maximum separation δ drawn by split proposals, so that every
	// split is reversible by a merge and vice versa.
	MergeDist float64
	// AxisStd is the Gaussian std-dev of single-axis perturbations
	// (ellipse axis-scale move). Zero defaults to ResizeStd.
	AxisStd float64
	// RotateStd is the Gaussian std-dev, in radians, of rotation
	// perturbations (ellipse rotate move). Zero defaults to 0.25.
	RotateStd float64
}

// DefaultStepSizes scales the kernels to the expected artifact radius.
func DefaultStepSizes(meanRadius float64) StepSizes {
	return StepSizes{
		ShiftStd:  meanRadius * 0.25,
		ResizeStd: meanRadius * 0.12,
		MergeDist: meanRadius * 1.5,
		AxisStd:   meanRadius * 0.12,
		RotateStd: 0.25,
	}
}

// Validate reports whether the step sizes are usable. The ellipse-only
// kernels may be zero (they default when the engine is built), so
// disc-era literals remain valid.
func (st StepSizes) Validate() error {
	if st.ShiftStd <= 0 || st.ResizeStd <= 0 || st.MergeDist <= 0 {
		return fmt.Errorf("mcmc: step sizes must be positive")
	}
	if st.AxisStd < 0 || st.RotateStd < 0 {
		return fmt.Errorf("mcmc: ellipse step sizes must be non-negative")
	}
	return nil
}

// WithEllipseDefaults returns st with zero ellipse-only kernels filled
// in (AxisStd from ResizeStd, RotateStd 0.25 rad).
func (st StepSizes) WithEllipseDefaults() StepSizes {
	if st.AxisStd == 0 {
		st.AxisStd = st.ResizeStd
	}
	if st.RotateStd == 0 {
		st.RotateStd = 0.25
	}
	return st
}

// WrapHalfTurn wraps an angle into the canonical rotation range [0, π)
// (an ellipse is invariant under a half-turn). The Gaussian rotation
// kernel composed with wrapping is symmetric on this circle group, so
// rotate proposals need no Hastings correction.
func WrapHalfTurn(theta float64) float64 {
	theta = math.Mod(theta, math.Pi)
	if theta < 0 {
		theta += math.Pi
	}
	return theta
}

// splitMap is the dimension-matching bijection used by split (forward)
// and merge (reverse):
//
//	r1 = r√u            c1 = c + δ(1−u)·e(θ)
//	r2 = r√(1−u)        c2 = c − δu·e(θ)
//
// with u ∈ (0,1), θ ∈ [0,2π), δ ∈ (0, MergeDist). The map preserves total
// disc area (r1²+r2² = r²) and the u-weighted centroid. Its Jacobian
// determinant is δ·r / (2·√(u(1−u))) (verified numerically in tests).
func splitMap(x, y, r, u, theta, delta float64) (x1, y1, r1, x2, y2, r2 float64) {
	ex, ey := math.Cos(theta), math.Sin(theta)
	x1 = x + delta*(1-u)*ex
	y1 = y + delta*(1-u)*ey
	x2 = x - delta*u*ex
	y2 = y - delta*u*ey
	r1 = r * math.Sqrt(u)
	r2 = r * math.Sqrt(1-u)
	return
}

// mergeMap inverts splitMap: from an ordered pair it recovers the merged
// circle and the auxiliary variables.
func mergeMap(x1, y1, r1, x2, y2, r2 float64) (x, y, r, u, theta, delta float64) {
	r = math.Sqrt(r1*r1 + r2*r2)
	u = (r1 * r1) / (r * r)
	x = u*x1 + (1-u)*x2
	y = u*y1 + (1-u)*y2
	delta = math.Hypot(x1-x2, y1-y2)
	theta = math.Atan2(y1-y2, x1-x2)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	return
}

// logSplitJacobian returns log |∂(c1,c2)/∂(c,u,θ,δ)|.
func logSplitJacobian(r, u, delta float64) float64 {
	return math.Log(delta) + math.Log(r) - math.Log(2) - 0.5*math.Log(u*(1-u))
}
