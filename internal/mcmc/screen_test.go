package mcmc

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestScreenEngages verifies the coarse-to-fine screen actually fires
// under a realistic threshold — birth proposals of typical size must
// come back deferred, or the bit-identity tests below would be vacuous.
func TestScreenEngages(t *testing.T) {
	s, _ := sceneState(t, 31, 6)
	e := MustNew(s, rng.New(3), DefaultWeights(), DefaultStepSizes(9))
	e.ScreenMinArea = 80 // mean radius 9 → typical area ≈ 254 px²
	if !s.CanScreen() {
		t.Fatal("scene state cannot screen")
	}
	deferred, births := 0, 0
	for i := 0; i < 2000; i++ {
		p := e.Propose(Birth)
		if !p.Valid {
			continue
		}
		births++
		if p.deferred {
			deferred++
		}
		e.Decide(p)
	}
	if births == 0 {
		t.Fatal("no valid births proposed")
	}
	if deferred == 0 {
		t.Fatalf("screen never engaged over %d births", births)
	}
	t.Logf("screen engaged on %d/%d births", deferred, births)
}

// TestScreenedChainBitIdentical runs the same chain with the screen off
// and on: every aspect of the trajectory — configuration, posterior,
// acceptance statistics, both RNG streams — must match exactly, because
// the lazy-refinement acceptance test consumes uniforms in the same
// order whether or not a proposal was priced coarse first.
func TestScreenedChainBitIdentical(t *testing.T) {
	run := func(minArea float64) *Engine {
		s, _ := sceneState(t, 32, 7)
		e := MustNew(s, rng.New(5), DefaultWeights(), DefaultStepSizes(9))
		e.ScreenMinArea = minArea
		for e.Iter < 30000 {
			e.RunN(1000)
		}
		return e
	}
	plain := run(0)
	screened := run(60)

	if plain.Iter != screened.Iter {
		t.Fatalf("iterations differ: %d vs %d", plain.Iter, screened.Iter)
	}
	if plain.Stats != screened.Stats {
		t.Fatalf("stats differ:\n%+v\n%+v", plain.Stats, screened.Stats)
	}
	if math.Float64bits(plain.S.LogPost()) != math.Float64bits(screened.S.LogPost()) {
		t.Fatalf("log-posterior differs: %v vs %v", plain.S.LogPost(), screened.S.LogPost())
	}
	a, b := plain.S.Cfg.Circles(), screened.S.Cfg.Circles()
	if len(a) != len(b) {
		t.Fatalf("%d vs %d circles", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("circle %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if plain.R.Save() != screened.R.Save() {
		t.Fatal("acceptance RNG streams diverged")
	}
	if plain.kindR.Save() != screened.kindR.Save() {
		t.Fatal("move-kind RNG streams diverged")
	}
	// The screen must also leave checkpoints interchangeable.
	if err := screened.Restore(plain.Dump()); err != nil {
		t.Fatal(err)
	}
}

// TestRunNInvariantToSlicing pins the dedicated move-kind stream
// contract: a chain advanced in uneven RunN slices matches one advanced
// in a single call, so callers may chunk however they like.
func TestRunNInvariantToSlicing(t *testing.T) {
	build := func() *Engine {
		s, _ := sceneState(t, 33, 6)
		return MustNew(s, rng.New(9), DefaultWeights(), DefaultStepSizes(9))
	}
	whole := build()
	whole.RunN(9000)

	sliced := build()
	for _, n := range []int{1, 7, 63, 64, 65, 800, 1999, 2000, 4001} {
		sliced.RunN(n)
	}

	if whole.Iter != sliced.Iter {
		t.Fatalf("iterations differ: %d vs %d", whole.Iter, sliced.Iter)
	}
	if whole.Stats != sliced.Stats {
		t.Fatal("stats differ between slicings")
	}
	if math.Float64bits(whole.S.LogPost()) != math.Float64bits(sliced.S.LogPost()) {
		t.Fatalf("log-posterior differs: %v vs %v", whole.S.LogPost(), sliced.S.LogPost())
	}
	a, b := whole.S.Cfg.Circles(), sliced.S.Cfg.Circles()
	if len(a) != len(b) {
		t.Fatalf("%d vs %d circles", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("circle %d differs", i)
		}
	}
	if whole.R.Save() != sliced.R.Save() || whole.kindR.Save() != sliced.kindR.Save() {
		t.Fatal("RNG streams diverged between slicings")
	}
}

// TestAcceptsPanicsOnDeferred: the value-receiver Accepts cannot refine
// in place, so committing through it would silently apply a coarse
// upper bound as if it were exact. It must refuse.
func TestAcceptsPanicsOnDeferred(t *testing.T) {
	s, _ := sceneState(t, 34, 5)
	e := MustNew(s, rng.New(11), DefaultWeights(), DefaultStepSizes(9))
	e.ScreenMinArea = 1 // screen everything
	var p Proposal
	for i := 0; i < 5000; i++ {
		if p = e.Propose(Birth); p.Valid && p.deferred {
			break
		}
	}
	if !p.deferred {
		t.Fatal("could not obtain a deferred proposal")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Accepts accepted a deferred proposal without panicking")
		}
	}()
	e.Accepts(p)
}
