// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into the CLI entry points, so hot paths can be profiled with
// pprof without code edits:
//
//	experiments -quick -run table1 -cpuprofile cpu.out
//	go tool pprof cpu.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for
// a heap profile to be written to memPath (if non-empty) when the
// returned stop function runs. Callers must invoke stop on every exit
// path that should flush profiles — typically via defer in main.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}
