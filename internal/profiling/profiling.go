// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into the CLI entry points, so hot paths can be profiled with
// pprof without code edits:
//
//	experiments -quick -run table1 -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// Long-running processes use Attach instead, which mounts the live
// net/http/pprof endpoints on a mux of the caller's choosing (mcmcd
// serves them under -pprof):
//
//	go tool pprof http://localhost:8080/debug/pprof/profile
package profiling

import (
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for
// a heap profile to be written to memPath (if non-empty) when the
// returned stop function runs. Callers must invoke stop on every exit
// path that should flush profiles — typically via defer in main.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}

// Attach mounts the standard net/http/pprof handlers under
// /debug/pprof/ on mux. Servers in this repository never run
// http.DefaultServeMux, so exposure is a per-mux opt-in — mcmcd gates
// it behind its -pprof flag.
func Attach(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}
