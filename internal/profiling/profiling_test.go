package profiling

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// Start with both paths set must produce non-empty profile files once
// the stop function runs.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	sink := 0
	for i := 0; i < 1e6; i++ {
		sink += i * i
	}
	_ = sink
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// Empty paths are a no-op: no files created, stop is safe to call.
func TestStartNoPaths(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

// A memprofile-only run must not start the CPU profiler, and the heap
// profile must still be written by stop.
func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.out")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if fi, err := os.Stat(mem); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}
}

// An unwritable cpuprofile path must fail up front, not at stop time.
func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
	if _, err := Start("", ""); err != nil {
		t.Fatal(err)
	}
}

// Attach must mount the live pprof endpoints on the given mux only.
func TestAttach(t *testing.T) {
	mux := http.NewServeMux()
	Attach(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
		"/debug/pprof/heap", // served by Index via the named-profile fallback
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}

	// A mux without Attach must not serve the endpoints — exposure is
	// per-mux opt-in, which is what lets mcmcd gate it behind -pprof.
	bare := httptest.NewServer(http.NewServeMux())
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof endpoints served without Attach")
	}
}
