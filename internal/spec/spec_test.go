package spec

import (
	"math"
	"testing"

	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
)

func testEngine(t *testing.T, seed uint64) *mcmc.Engine {
	t.Helper()
	r := rng.New(seed)
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: 96, H: 96, Count: 5, MeanRadius: 8, RadiusStdDev: 1, Noise: 0.06,
	}, r)
	s, err := model.NewState(scene.Image, model.DefaultParams(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	return mcmc.MustNew(s, rng.New(seed+1), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(8))
}

func TestSpeedupFormula(t *testing.T) {
	if Speedup(0.75, 1) != 1 {
		t.Fatal("n=1 must give 1")
	}
	if Speedup(0, 8) != 1 {
		t.Fatal("pr=0 must give 1")
	}
	// pr=0.75, n=4: (1-0.75^4)/(1-0.75) = 2.734375
	if got := Speedup(0.75, 4); math.Abs(got-2.734375) > 1e-12 {
		t.Fatalf("Speedup(0.75,4) = %v", got)
	}
	if got := Speedup(1, 8); got != 8 {
		t.Fatalf("Speedup(1,8) = %v", got)
	}
}

// The closed form and the truncated-geometric sum must agree.
func TestSpeedupEqualsExpectedIterations(t *testing.T) {
	for _, pr := range []float64{0.1, 0.5, 0.75, 0.9, 0.99} {
		for _, n := range []int{1, 2, 4, 8, 16} {
			a := Speedup(pr, n)
			b := ExpectedIterationsPerBatch(pr, n)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("pr=%v n=%d: closed form %v != sum %v", pr, n, a, b)
			}
		}
	}
}

func TestSpeedupMonotoneInN(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 32; n *= 2 {
		s := Speedup(0.75, n)
		if s < prev {
			t.Fatalf("speedup decreased at n=%d", n)
		}
		prev = s
	}
	// Saturates at 1/(1-pr) = 4.
	if s := Speedup(0.75, 1000); math.Abs(s-4) > 1e-6 {
		t.Fatalf("saturation = %v, want 4", s)
	}
}

func TestExecutorRunNExactCount(t *testing.T) {
	e := testEngine(t, 1)
	x := NewExecutor(e, 4, nil)
	x.RunN(1000)
	if e.Iter != 1000 {
		t.Fatalf("Iter = %d, want exactly 1000", e.Iter)
	}
	if x.MeasuredIterationsPerBatch() <= 0 {
		t.Fatal("no batches measured")
	}
}

func TestExecutorStateConsistency(t *testing.T) {
	e := testEngine(t, 2)
	x := NewExecutor(e, 8, nil)
	x.RunN(5000)
	likErr, priorErr, coverOK := e.S.CheckConsistency()
	if likErr > 1e-6 || priorErr > 1e-6 || !coverOK {
		t.Fatalf("speculative run corrupted caches: %v %v %v", likErr, priorErr, coverOK)
	}
}

func TestExecutorWidthOne(t *testing.T) {
	e := testEngine(t, 3)
	x := NewExecutor(e, 1, nil)
	consumed, _ := x.StepBatch(1)
	if consumed != 1 {
		t.Fatalf("width-1 batch consumed %d", consumed)
	}
}

func TestExecutorRestrictedMoves(t *testing.T) {
	e := testEngine(t, 4)
	globals := []mcmc.Move{mcmc.Birth, mcmc.Death, mcmc.Split, mcmc.Merge, mcmc.Replace}
	x := NewExecutor(e, 4, globals)
	x.RunN(2000)
	if e.Stats.Proposed[mcmc.Shift] != 0 || e.Stats.Proposed[mcmc.Resize] != 0 {
		t.Fatal("restricted executor proposed local moves")
	}
	var total int64
	for _, m := range globals {
		total += e.Stats.Proposed[m]
	}
	if total != 2000 {
		t.Fatalf("proposed %d global moves, want 2000", total)
	}
}

func TestExecutorPanicsOnBadArgs(t *testing.T) {
	e := testEngine(t, 5)
	for name, fn := range map[string]func(){
		"zero width":  func() { NewExecutor(e, 0, nil) },
		"empty moves": func() { NewExecutor(e, 2, []mcmc.Move{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Speculative execution must preserve the chain's law: sampling the prior
// (flat image) through a speculative executor recovers the Poisson count
// mean, like the sequential sampler does.
func TestSpeculativePriorRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := model.DefaultParams(5, 8)
	p.OverlapPenalty = 0
	im := imaging.New(128, 128)
	im.Fill((p.Foreground + p.Background) / 2)
	s, err := model.NewState(im, p)
	if err != nil {
		t.Fatal(err)
	}
	e := mcmc.MustNew(s, rng.New(777), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(8))
	x := NewExecutor(e, 4, nil)
	x.RunN(20000)
	sum := 0.0
	const samples = 3000
	for i := 0; i < samples; i++ {
		x.RunN(50)
		sum += float64(s.Cfg.Len())
	}
	mean := sum / samples
	if math.Abs(mean-5) > 0.5 {
		t.Fatalf("speculative prior count mean = %v, want ~5", mean)
	}
}

// Measured iterations per batch should approach the model prediction for
// the observed rejection rate.
func TestMeasuredMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	e := testEngine(t, 6)
	// Burn in sequentially so the rejection rate stabilises.
	e.RunN(20000)
	pr := e.Stats.RejectionRate()
	x := NewExecutor(e, 4, nil)
	x.RunN(30000)
	got := x.MeasuredIterationsPerBatch()
	want := ExpectedIterationsPerBatch(pr, 4)
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("iterations/batch = %v, model predicts %v (pr=%v)", got, want, pr)
	}
}
