package spec

import (
	"testing"

	"repro/internal/mcmc"
)

// chainFingerprint captures everything about the realized chain that
// must be width-invariant: iteration count, posterior, configuration,
// per-move statistics and the host RNG's position in its stream.
type chainFingerprint struct {
	iter    int64
	logPost float64
	n       int
	stats   mcmc.Stats
	rngNext uint64
}

func fingerprint(e *mcmc.Engine) chainFingerprint {
	save := e.R.Save()
	fp := chainFingerprint{
		iter:    e.Iter,
		logPost: e.S.LogPost(),
		n:       e.S.Cfg.Len(),
		stats:   e.Stats,
		rngNext: e.R.Uint64(),
	}
	e.R.Restore(save)
	return fp
}

// The realized chain must be EXACTLY the same for every speculation
// width schedule — fixed widths, an arbitrary per-batch schedule, and
// the timing-driven adaptive controller — not merely equal in law. This
// is the property that makes adaptive width decisions checkpoint-safe.
func TestWidthInvariance(t *testing.T) {
	const iters = 4000
	run := func(name string, drive func(x *Executor)) chainFingerprint {
		e := testEngine(t, 99)
		x := NewExecutorOpts(e, Config{Width: 8}, nil)
		defer x.Close()
		drive(x)
		if e.Iter != iters {
			t.Fatalf("%s: ran %d iterations, want %d", name, e.Iter, iters)
		}
		return fingerprint(e)
	}

	ref := run("width-1", func(x *Executor) {
		for done := 0; done < iters; {
			c, _ := x.StepBatch(1)
			done += c
		}
	})
	schedules := map[string]func(x *Executor){
		"width-4": func(x *Executor) {
			for done := 0; done < iters; {
				c, _ := x.StepBatch(minI(4, iters-done))
				done += c
			}
		},
		"width-8": func(x *Executor) {
			for done := 0; done < iters; {
				c, _ := x.StepBatch(minI(8, iters-done))
				done += c
			}
		},
		"alternating": func(x *Executor) {
			w := 1
			for done := 0; done < iters; {
				c, _ := x.StepBatch(minI(w, iters-done))
				done += c
				w = w%7 + 1
			}
		},
	}
	for name, drive := range schedules {
		if got := run(name, drive); got != ref {
			t.Errorf("%s: chain diverged from width-1 reference:\n got %+v\nwant %+v", name, got, ref)
		}
	}

	// Adaptive: the controller's width schedule is wall-clock driven and
	// different on every run — the chain must not care.
	e := testEngine(t, 99)
	x := NewExecutorOpts(e, Config{MaxWidth: 8}, nil)
	defer x.Close()
	x.RunN(iters)
	if got := fingerprint(e); got != ref {
		t.Errorf("adaptive: chain diverged from width-1 reference:\n got %+v\nwant %+v", got, ref)
	}
}

// Simulate mode must not perturb the chain either (it only times and
// accounts), and its accumulators must be populated and ordered sanely.
func TestSimulateInvariantAndAccounted(t *testing.T) {
	const iters = 3000
	e := testEngine(t, 7)
	x := NewExecutorOpts(e, Config{Width: 4}, nil)
	x.RunN(iters)
	x.Close()
	ref := fingerprint(e)

	es := testEngine(t, 7)
	xs := NewExecutorOpts(es, Config{Width: 4, Workers: 4, Simulate: true}, nil)
	xs.RunN(iters)
	xs.Close()
	if got := fingerprint(es); got != ref {
		t.Fatalf("Simulate mode changed the chain:\n got %+v\nwant %+v", got, ref)
	}
	if xs.SimSeqSeconds <= 0 || xs.SimSpecSeconds <= 0 {
		t.Fatalf("simulated accumulators not populated: seq=%v spec=%v", xs.SimSeqSeconds, xs.SimSpecSeconds)
	}
	// The simulated parallel machine pays at least the per-batch
	// overhead floor.
	if xs.SimSpecSeconds < float64(xs.Batches)*DefaultSimOverhead {
		t.Fatalf("SimSpecSeconds %v below the overhead floor for %d batches", xs.SimSpecSeconds, xs.Batches)
	}
}

// Construction must advance the host stream by exactly one draw, no
// matter the width, worker count or adaptivity — otherwise the chain
// would depend on the machine shape.
func TestConstructionStreamDiscipline(t *testing.T) {
	ref := testEngine(t, 5)
	ref.R.Uint64() // the one seqBase draw construction is allowed
	want := ref.R.Uint64()
	for _, cfg := range []Config{
		{Width: 1},
		{Width: 8},
		{Width: 4, Workers: 2},
		{MaxWidth: 8},
		{MaxWidth: 3, Workers: 7},
		{Width: 6, Simulate: true, Workers: 4},
	} {
		e := testEngine(t, 5)
		x := NewExecutorOpts(e, cfg, nil)
		got := e.R.Uint64()
		x.Close()
		if got != want {
			t.Errorf("config %+v: host stream advanced differently (next=%x want %x)", cfg, got, want)
		}
	}
}

func TestAdaptiveRunNExact(t *testing.T) {
	e := testEngine(t, 12)
	x := NewExecutorOpts(e, Config{MaxWidth: 8}, nil)
	defer x.Close()
	x.RunN(2500)
	if e.Iter != 2500 {
		t.Fatalf("Iter = %d, want 2500", e.Iter)
	}
	if w := x.Width(); w < 1 || w > 8 {
		t.Fatalf("adaptive width %d out of range", w)
	}
	if !x.Adaptive() || x.MaxWidth() != 8 {
		t.Fatalf("accessors: Adaptive=%v MaxWidth=%d", x.Adaptive(), x.MaxWidth())
	}
}

// The controller's width choice must track the cost model: with
// rejection near certainty wider is better; with everything accepted
// width 1 wins; extra workers shift the optimum upward.
func TestControllerDecide(t *testing.T) {
	cases := []struct {
		pr       float64
		workers  int
		perEval  float64
		overhead float64
		want     func(w int) bool
	}{
		// All accepted: every batch consumes 1 iteration regardless of
		// width, so any extra wave is pure waste.
		{0.0, 1, 1e-5, 1e-6, func(w int) bool { return w == 1 }},
		// Paper regime on a 4-way machine with cheap overhead: the eq. 3
		// sweet spot (~4 for p_r = 0.75) should be found.
		{0.75, 4, 1e-5, 1e-6, func(w int) bool { return w >= 3 }},
		// One worker and overhead dwarfed by eval cost: waves are paid
		// serially, so width must stay small.
		{0.75, 1, 1e-4, 1e-7, func(w int) bool { return w <= 2 }},
	}
	for i, tc := range cases {
		c := newController(8, tc.workers)
		c.perEval, c.overhead = tc.perEval, tc.overhead
		// Feed the window enough batches at the target rejection rate to
		// swamp the prior, then force a decision.
		c.tested, c.rejected = 1e6, 1e6*tc.pr
		c.decide()
		if !tc.want(c.width) {
			t.Errorf("case %d (pr=%v workers=%d): picked width %d", i, tc.pr, tc.workers, c.width)
		}
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
