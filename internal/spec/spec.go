// Package spec implements the speculative-moves parallelisation of the
// authors' companion paper [11] (Byrd, Jarvis & Bhalerao, IPDPS 2008),
// which §IV and §VI of the reproduced paper compose with periodic
// partitioning.
//
// The idea: MCMC iterations are serially dependent only through *state
// changes*, and most proposals are rejected. So k independent proposals
// from the current state are evaluated concurrently; scanning them in
// order, the first accepted one is applied and the rest are discarded. If
// proposal j is the first accepted, the batch consumed j+1 iterations of
// the chain — exactly the iterations a sequential sampler would have
// spent — so the chain's law is untouched while wall-clock time shrinks
// toward 1 iteration per batch. Under a rejection rate p_r the expected
// speedup is (1 − p_r^n)/(1 − p_r) (eq. 3's correction term).
//
// # Width invariance
//
// The realized chain is *exactly* the same for every speculation width,
// not merely equal in law. Chain iteration k draws its move kind and
// proposal parameters from a private stream reseeded to a deterministic
// function of (seqBase, k), where seqBase is drawn once from the host
// stream at construction; acceptance uniforms come from the host stream
// in consumed-iteration order (only tested proposals draw, and they are
// tested in iteration order). By induction, the proposal evaluated at
// iteration k is a function of seed_k and the state S_k alone — neither
// depends on how iterations were grouped into batches — so any width
// schedule, including one driven by wall-clock measurements, yields the
// same committed chain. That is what lets the adaptive controller
// (controller.go) pick widths from timing data while checkpoint resume
// stays bit-identical: width decisions need not be replayed, because
// they cannot influence the chain.
package spec

import (
	"math"
	"runtime"
	"time"

	"repro/internal/mcmc"
	"repro/internal/sched"
)

// DefaultMaxWidth caps the adaptive controller's width search. Eq. 3
// saturates at 1/(1−p_r) — 4 for the paper's p_r ≈ 0.75 — so widths past
// 8 buy nothing for realistic rejection rates.
const DefaultMaxWidth = 8

// DefaultSimOverhead is the modelled per-batch dispatch+barrier cost
// charged by Simulate mode, in seconds. The value is the measured cost
// of one persistent-gang round trip on commodity hardware; Config can
// override it.
const DefaultSimOverhead = 1e-6

// Config configures an Executor beyond the basic fixed-width case.
type Config struct {
	// Width is the fixed speculation width (>= 1). 0 selects the
	// adaptive controller, which re-picks the width from the windowed
	// rejection rate and measured per-batch costs (see controller.go).
	Width int
	// MaxWidth caps the adaptive width search; 0 means DefaultMaxWidth.
	// Ignored when Width > 0.
	MaxWidth int
	// Workers is the degree of evaluation parallelism. In normal runs it
	// bounds the gang of persistent eval goroutines; in Simulate mode it
	// is the modelled machine width for the makespan accounting. 0
	// defaults to min(width cap, GOMAXPROCS) — or the width cap itself
	// in Simulate mode, where no real goroutines are spawned.
	Workers int
	// Simulate runs evaluations serially but timed, accumulating
	// SimSeqSeconds/SimSpecSeconds — the single-machine device DESIGN.md
	// §7 uses to report honest multi-core numbers from a one-core host.
	Simulate bool
	// SimOverhead overrides DefaultSimOverhead (seconds per batch).
	SimOverhead float64
}

// laneClock accumulates one gang lane's evaluation time, padded so
// concurrent lanes never share a cache line.
type laneClock struct {
	secs  float64
	evals int64
	_     [48]byte
}

// Executor evaluates proposals speculatively against a host engine.
type Executor struct {
	host *mcmc.Engine
	// slots are per-lane engine copies sharing the host's state but
	// owning private scratch, so Propose can run concurrently. Their RNG
	// is reseeded per iteration (see package doc); they hold no stream
	// state across iterations.
	slots []*mcmc.Engine
	// moves restricts the kinds drawn (nil = the host's full mixture).
	moves   []mcmc.Move
	weights []float64

	// seqBase salts the per-iteration proposal streams. Drawn once from
	// the host stream at construction — exactly one draw regardless of
	// width, worker count or GOMAXPROCS, so construction advances the
	// host identically on every machine.
	seqBase uint64

	// gang is the persistent eval worker group (nil when evaluation is
	// serial: single lane or Simulate mode).
	gang  *sched.Gang
	lanes []laneClock

	ctl *controller // nil for fixed width

	simulate    bool
	simOverhead float64
	workers     int

	// Batches and Consumed accumulate how many speculative rounds ran
	// and how many chain iterations they covered; their ratio is the
	// measured per-iteration speedup.
	Batches  int64
	Consumed int64

	// SimSeqSeconds and SimSpecSeconds accumulate only in Simulate mode:
	// the serial-equivalent cost of the consumed iterations (what a
	// sequential chain would have evaluated) and the modelled parallel
	// cost of each batch (LPT makespan of all evaluations over Workers
	// lanes, plus SimOverhead). Their ratio is the simulated speedup.
	SimSeqSeconds  float64
	SimSpecSeconds float64

	// props is the reusable batch buffer so steady-state speculative
	// rounds allocate nothing.
	props    []mcmc.Proposal
	evalSecs []float64
}

// NewExecutor builds a fixed-width executor over the host engine. If
// moves is non-nil, proposals are drawn only from that subset (the
// periodic engine passes M_g here), with probabilities proportional to
// the host's weights restricted to the subset.
func NewExecutor(host *mcmc.Engine, width int, moves []mcmc.Move) *Executor {
	if width < 1 {
		panic("spec: width must be >= 1")
	}
	return NewExecutorOpts(host, Config{Width: width}, moves)
}

// NewExecutorOpts builds an executor from a full Config; Width 0 selects
// the adaptive controller. The executor owns background goroutines when
// evaluation is parallel — release them with Close.
func NewExecutorOpts(host *mcmc.Engine, cfg Config, moves []mcmc.Move) *Executor {
	if cfg.Width < 0 {
		panic("spec: width must be >= 1 (or 0 for adaptive)")
	}
	maxW := cfg.Width
	if maxW == 0 {
		maxW = cfg.MaxWidth
		if maxW <= 0 {
			maxW = DefaultMaxWidth
		}
	}
	workers := cfg.Workers
	if workers < 1 {
		if cfg.Simulate {
			workers = maxW
		} else {
			workers = min(maxW, runtime.GOMAXPROCS(0))
		}
	}
	x := &Executor{
		host:        host,
		moves:       moves,
		simulate:    cfg.Simulate,
		simOverhead: cfg.SimOverhead,
		workers:     workers,
	}
	if x.simOverhead <= 0 {
		x.simOverhead = DefaultSimOverhead
	}
	if moves != nil {
		if len(moves) == 0 {
			panic("spec: empty move restriction")
		}
		x.weights = make([]float64, len(moves))
		for i, m := range moves {
			x.weights[i] = host.W[m]
		}
	}
	x.seqBase = host.R.Uint64()
	lanes := 1
	if !cfg.Simulate && maxW > 1 {
		lanes = min(workers, maxW)
	}
	x.slots = make([]*mcmc.Engine, lanes)
	for i := range x.slots {
		x.slots[i] = host.ShadowScratch()
	}
	if lanes > 1 {
		x.gang = sched.NewGang(lanes)
		x.lanes = make([]laneClock, lanes)
	}
	if cfg.Width == 0 {
		x.ctl = newController(maxW, workers)
	}
	x.props = make([]mcmc.Proposal, maxW)
	if cfg.Simulate {
		x.evalSecs = make([]float64, maxW)
	}
	return x
}

// Width returns the width the next batch will run at: the fixed width,
// or the adaptive controller's current pick.
func (x *Executor) Width() int {
	if x.ctl != nil {
		return x.ctl.width
	}
	return len(x.props)
}

// MaxWidth returns the widest batch the executor can run.
func (x *Executor) MaxWidth() int { return len(x.props) }

// Adaptive reports whether the width is controller-driven.
func (x *Executor) Adaptive() bool { return x.ctl != nil }

// Close releases the persistent eval workers. The executor must not be
// used afterwards; Close is idempotent.
func (x *Executor) Close() {
	if x.gang != nil {
		x.gang.Close()
	}
}

// iterSeed derives chain iteration k's proposal-stream seed. The
// multiplier is the splitmix64 increment; Reseed mixes the product
// through three xor-multiply rounds per state word, so consecutive k
// yield decorrelated streams.
func iterSeed(base uint64, k int64) uint64 {
	return base + uint64(k)*0x9e3779b97f4a7c15
}

// evalOne evaluates the proposal for chain iteration base+i on the given
// lane's slot engine.
func (x *Executor) evalOne(lane int, base int64, i int) {
	sh := x.slots[lane]
	sh.R.Reseed(iterSeed(x.seqBase, base+int64(i)))
	var kind mcmc.Move
	if x.moves == nil {
		kind = sh.PickMove()
	} else {
		kind = x.moves[sh.R.Pick(x.weights)]
	}
	x.props[i] = sh.Propose(kind)
}

// StepBatch runs one speculative round of up to `width` proposals and
// returns how many chain iterations it consumed (1..width) and whether a
// proposal was applied. Acceptance randomness comes from the host RNG in
// consumed-iteration order and proposal randomness from the reseeded
// per-iteration streams, so the chain matches the sequential sampler's
// regardless of batching (see the package doc).
func (x *Executor) StepBatch(width int) (consumed int, applied bool) {
	if width < 1 {
		width = 1
	}
	if width > len(x.props) {
		width = len(x.props)
	}
	props := x.props[:width]
	base := x.host.Iter

	// Evaluate the expensive likelihood deltas concurrently (or serially
	// but timed, in Simulate mode) on the frozen state.
	var evalWall, laneSum, laneMax float64
	var evalsTimed int
	switch {
	case x.simulate:
		secs := x.evalSecs[:width]
		for i := range props {
			t0 := time.Now()
			x.evalOne(0, base, i)
			secs[i] = time.Since(t0).Seconds()
		}
	case x.gang != nil && width > 1:
		if x.ctl != nil {
			for l := range x.lanes {
				x.lanes[l].secs, x.lanes[l].evals = 0, 0
			}
			t0 := time.Now()
			x.gang.Run(width, func(lane, i int) {
				s := time.Now()
				x.evalOne(lane, base, i)
				lc := &x.lanes[lane]
				lc.secs += time.Since(s).Seconds()
				lc.evals++
			})
			evalWall = time.Since(t0).Seconds()
			for l := range x.lanes {
				laneSum += x.lanes[l].secs
				laneMax = math.Max(laneMax, x.lanes[l].secs)
				evalsTimed += int(x.lanes[l].evals)
			}
		} else {
			x.gang.Run(width, func(lane, i int) { x.evalOne(lane, base, i) })
		}
	default:
		if x.ctl != nil {
			t0 := time.Now()
			for i := range props {
				x.evalOne(0, base, i)
			}
			evalWall = time.Since(t0).Seconds()
			laneSum, laneMax, evalsTimed = evalWall, evalWall, width
		} else {
			for i := range props {
				x.evalOne(0, base, i)
			}
		}
	}

	// Apply the acceptance tests in order; at most one state change.
	// AcceptsP refines coarse-screened proposals in place, so a
	// committed proposal always carries exact deltas.
	x.Batches++
	for i := range props {
		if x.host.AcceptsP(&props[i]) {
			x.host.Commit(props[i])
			consumed, applied = i+1, true
			break
		}
		x.host.RecordRejected(props[i])
	}
	if !applied {
		consumed = width
	}
	x.Consumed += int64(consumed)

	if x.simulate {
		secs := x.evalSecs[:width]
		// A sequential chain would have evaluated exactly the consumed
		// proposals (they are width-invariant); the speculative machine
		// pays the makespan of all of them over Workers lanes.
		for _, s := range secs[:consumed] {
			x.SimSeqSeconds += s
		}
		x.SimSpecSeconds += sched.Makespan(secs, sched.LPTAssign(secs, x.workers)) + x.simOverhead
	}
	if x.ctl != nil {
		rejected := consumed
		if applied {
			rejected--
		}
		var evalSecs, overhead float64
		var evals int
		if x.simulate {
			for _, s := range x.evalSecs[:width] {
				evalSecs += s
			}
			evals, overhead = width, x.simOverhead
		} else {
			evalSecs, evals = laneSum, evalsTimed
			overhead = math.Max(0, evalWall-laneMax)
		}
		x.ctl.observe(consumed, rejected, evalSecs, evals, overhead)
	}
	return consumed, applied
}

// RunN advances the chain by exactly n iterations using speculative
// batches, clamping the final batch so the count is exact.
func (x *Executor) RunN(n int) {
	for done := 0; done < n; {
		width := x.Width()
		if rem := n - done; rem < width {
			width = rem
		}
		consumed, _ := x.StepBatch(width)
		done += consumed
	}
}

// MeasuredIterationsPerBatch returns the average iterations covered per
// speculative round so far (1 means speculation never helped, the width
// means every batch was fully consumed).
func (x *Executor) MeasuredIterationsPerBatch() float64 {
	if x.Batches == 0 {
		return 0
	}
	return float64(x.Consumed) / float64(x.Batches)
}

// ExpectedIterationsPerBatch returns the model value E[consumed] for a
// rejection rate pr and width n: the first acceptance index is geometric,
// truncated at n.
func ExpectedIterationsPerBatch(pr float64, n int) float64 {
	if n < 1 {
		return 0
	}
	e := 0.0
	for i := 1; i < n; i++ {
		e += float64(i) * math.Pow(pr, float64(i-1)) * (1 - pr)
	}
	e += float64(n) * math.Pow(pr, float64(n-1))
	return e
}

// Speedup returns the ideal speedup factor of [11]: with rejection rate
// pr and n processors, runtime falls to (1−pr)/(1−pr^n) of sequential,
// i.e. the chain advances (1−pr^n)/(1−pr) iterations per unit time. It
// equals ExpectedIterationsPerBatch in closed form (tested). pr = 0 or
// n = 1 gives 1 (no gain).
func Speedup(pr float64, n int) float64 {
	if n <= 1 || pr <= 0 {
		return 1
	}
	if pr >= 1 {
		return float64(n)
	}
	return (1 - math.Pow(pr, float64(n))) / (1 - pr)
}
