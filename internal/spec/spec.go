// Package spec implements the speculative-moves parallelisation of the
// authors' companion paper [11] (Byrd, Jarvis & Bhalerao, IPDPS 2008),
// which §IV and §VI of the reproduced paper compose with periodic
// partitioning.
//
// The idea: MCMC iterations are serially dependent only through *state
// changes*, and most proposals are rejected. So k independent proposals
// from the current state are evaluated concurrently; scanning them in
// order, the first accepted one is applied and the rest are discarded. If
// proposal j is the first accepted, the batch consumed j+1 iterations of
// the chain — exactly the iterations a sequential sampler would have
// spent — so the chain's law is untouched while wall-clock time shrinks
// toward 1 iteration per batch. Under a rejection rate p_r the expected
// speedup is (1 − p_r^n)/(1 − p_r) (eq. 3's correction term).
package spec

import (
	"fmt"
	"math"

	"repro/internal/mcmc"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Executor evaluates proposals speculatively against a host engine.
type Executor struct {
	host *mcmc.Engine
	// shadows are per-slot engine copies sharing the host's state but
	// owning disjoint RNG streams, so Propose can run concurrently.
	shadows []*mcmc.Engine
	// moves restricts the kinds drawn (nil = the host's full mixture).
	moves   []mcmc.Move
	weights []float64

	// Batches and Consumed accumulate how many speculative rounds ran
	// and how many chain iterations they covered; their ratio is the
	// measured per-iteration speedup.
	Batches  int64
	Consumed int64

	// kinds/props are reusable batch buffers so steady-state speculative
	// rounds allocate nothing.
	kinds []mcmc.Move
	props []mcmc.Proposal
}

// NewExecutor builds an executor of the given speculation width over the
// host engine. If moves is non-nil, proposals are drawn only from that
// subset (the periodic engine passes M_g here), with probabilities
// proportional to the host's weights restricted to the subset.
func NewExecutor(host *mcmc.Engine, width int, moves []mcmc.Move) *Executor {
	if width < 1 {
		panic("spec: width must be >= 1")
	}
	x := &Executor{host: host, moves: moves}
	if moves != nil {
		if len(moves) == 0 {
			panic("spec: empty move restriction")
		}
		x.weights = make([]float64, len(moves))
		for i, m := range moves {
			x.weights[i] = host.W[m]
		}
	}
	x.shadows = make([]*mcmc.Engine, width)
	for i := range x.shadows {
		// Shadow gives each slot its own RNG stream and scratch buffers;
		// a plain struct copy would share the host's scratch and race.
		x.shadows[i] = host.Shadow()
	}
	x.kinds = make([]mcmc.Move, width)
	x.props = make([]mcmc.Proposal, width)
	return x
}

// Width returns the speculation width.
func (x *Executor) Width() int { return len(x.shadows) }

// ShadowStates returns the RNG state of every shadow slot. Shadow
// streams advance as proposals are evaluated, so a checkpoint must
// capture them alongside the host engine's stream.
func (x *Executor) ShadowStates() []rng.Saved {
	states := make([]rng.Saved, len(x.shadows))
	for i, s := range x.shadows {
		states[i] = s.R.Save()
	}
	return states
}

// RestoreShadowStates overwrites every shadow slot's RNG state.
func (x *Executor) RestoreShadowStates(states []rng.Saved) error {
	if len(states) != len(x.shadows) {
		return fmt.Errorf("spec: %d shadow states for width %d", len(states), len(x.shadows))
	}
	for i, s := range x.shadows {
		s.R.Restore(states[i])
	}
	return nil
}

// pickMove draws a move kind honouring the restriction.
func (x *Executor) pickMove() mcmc.Move {
	if x.moves == nil {
		return x.host.PickMove()
	}
	return x.moves[x.host.R.Pick(x.weights)]
}

// StepBatch runs one speculative round of up to `width` proposals and
// returns how many chain iterations it consumed (1..width) and whether a
// proposal was applied. Proposal kinds and acceptance randomness come
// from the host RNG in iteration order, so the chain's law matches the
// sequential sampler's.
func (x *Executor) StepBatch(width int) (consumed int, applied bool) {
	if width > len(x.shadows) {
		width = len(x.shadows)
	}
	if width < 1 {
		width = 1
	}
	// Draw kinds serially from the host stream (cheap), then evaluate
	// the expensive likelihood deltas concurrently on the frozen state.
	kinds := x.kinds[:width]
	for i := range kinds {
		kinds[i] = x.pickMove()
	}
	props := x.props[:width]
	sched.ForEach(width, width, func(i int) {
		props[i] = x.shadows[i].Propose(kinds[i])
	})
	// Apply the acceptance tests in order; at most one state change.
	// AcceptsP refines coarse-screened proposals in place, so a
	// committed proposal always carries exact deltas.
	x.Batches++
	for i := 0; i < width; i++ {
		if x.host.AcceptsP(&props[i]) {
			x.host.Commit(props[i])
			x.Consumed += int64(i + 1)
			return i + 1, true
		}
		x.host.RecordRejected(props[i])
	}
	x.Consumed += int64(width)
	return width, false
}

// RunN advances the chain by exactly n iterations using speculative
// batches, clamping the final batch so the count is exact.
func (x *Executor) RunN(n int) {
	done := 0
	for done < n {
		width := len(x.shadows)
		if rem := n - done; rem < width {
			width = rem
		}
		consumed, _ := x.StepBatch(width)
		done += consumed
	}
}

// MeasuredIterationsPerBatch returns the average iterations covered per
// speculative round so far (1 means speculation never helped, Width
// means every batch was fully consumed).
func (x *Executor) MeasuredIterationsPerBatch() float64 {
	if x.Batches == 0 {
		return 0
	}
	return float64(x.Consumed) / float64(x.Batches)
}

// ExpectedIterationsPerBatch returns the model value E[consumed] for a
// rejection rate pr and width n: the first acceptance index is geometric,
// truncated at n.
func ExpectedIterationsPerBatch(pr float64, n int) float64 {
	if n < 1 {
		return 0
	}
	e := 0.0
	for i := 1; i < n; i++ {
		e += float64(i) * math.Pow(pr, float64(i-1)) * (1 - pr)
	}
	e += float64(n) * math.Pow(pr, float64(n-1))
	return e
}

// Speedup returns the ideal speedup factor of [11]: with rejection rate
// pr and n processors, runtime falls to (1−pr)/(1−pr^n) of sequential,
// i.e. the chain advances (1−pr^n)/(1−pr) iterations per unit time. It
// equals ExpectedIterationsPerBatch in closed form (tested). pr = 0 or
// n = 1 gives 1 (no gain).
func Speedup(pr float64, n int) float64 {
	if n <= 1 || pr <= 0 {
		return 1
	}
	if pr >= 1 {
		return float64(n)
	}
	return (1 - math.Pow(pr, float64(n))) / (1 - pr)
}
