package spec

import "math"

// controller picks the speculation width that maximises expected
// committed chain iterations per second under the eq. 3 model, net of
// measured per-batch overhead:
//
//	score(n) = E[consumed | p_r, n] / (overhead + τ_eval · ⌈n/workers⌉)
//
// where E is ExpectedIterationsPerBatch, p_r the windowed rejection rate
// of the restricted move-set, τ_eval the smoothed per-proposal
// evaluation cost and overhead the smoothed per-batch dispatch+barrier
// cost. ⌈n/workers⌉ counts evaluation waves: widths beyond the worker
// count still help (deeper speculation), but each extra wave costs a
// full τ_eval, which is exactly the trade eq. 3 leaves out.
//
// Because the realized chain is width-invariant (see the package doc),
// the controller is free to consume wall-clock measurements: its
// decisions affect throughput only, never results, so checkpoint resume
// needs no replay of the decision sequence.
type controller struct {
	maxWidth int
	workers  int

	// Decaying window of acceptance outcomes for the restricted
	// move-set, seeded with a pseudo-count prior at the paper's case
	// study rate (p_r = 0.75) so early decisions are sane.
	tested   float64
	rejected float64

	perEval  float64 // EWMA seconds per proposal evaluation
	overhead float64 // EWMA seconds per batch of dispatch+barrier cost

	width   int
	batches int // batches since the last decision
}

const (
	// ctlDecideEvery is how many batches each width decision holds for.
	ctlDecideEvery = 32
	// ctlDecay halves the acceptance window at every decision, so the
	// rejection-rate estimate tracks the chain's current regime (early
	// exploration accepts far more than equilibrium).
	ctlDecay = 0.5
	// ctlHysteresis: only switch widths for a ≥5% predicted gain, so
	// near-ties don't oscillate.
	ctlHysteresis = 1.05
	// ctlEWMA is the smoothing factor for the cost estimates.
	ctlEWMA = 0.2
)

func newController(maxWidth, workers int) *controller {
	c := &controller{
		maxWidth: maxWidth,
		workers:  max(workers, 1),
		// Prior: 8 pseudo-batches at the paper's p_r ≈ 0.75.
		tested:   8,
		rejected: 6,
		perEval:  1e-6,
		overhead: 2e-6,
	}
	c.width = min(4, maxWidth)
	return c
}

// observe folds one batch's outcome into the windowed estimates and
// re-decides the width at the decision cadence. tested counts proposals
// whose acceptance test ran; rejected counts those that failed it.
// evalSecs is the measured evaluation time over evals proposals, and
// overhead the batch's dispatch+barrier cost sample (both may be 0 when
// nothing was timed).
func (c *controller) observe(tested, rejected int, evalSecs float64, evals int, overhead float64) {
	c.tested += float64(tested)
	c.rejected += float64(rejected)
	if evals > 0 && evalSecs > 0 {
		c.perEval += ctlEWMA * (evalSecs/float64(evals) - c.perEval)
	}
	if overhead > 0 {
		c.overhead += ctlEWMA * (overhead - c.overhead)
	}
	if c.batches++; c.batches >= ctlDecideEvery {
		c.batches = 0
		c.decide()
		c.tested *= ctlDecay
		c.rejected *= ctlDecay
	}
}

// score is the predicted committed iterations per second at width n.
func (c *controller) score(pr float64, n int) float64 {
	waves := (n + c.workers - 1) / c.workers
	cost := c.overhead + c.perEval*float64(waves)
	if cost <= 0 {
		cost = math.SmallestNonzeroFloat64
	}
	return ExpectedIterationsPerBatch(pr, n) / cost
}

func (c *controller) decide() {
	pr := c.rejected / c.tested
	if pr < 0 {
		pr = 0
	}
	if pr > 0.999 {
		pr = 0.999
	}
	best, bestScore := 1, c.score(pr, 1)
	for n := 2; n <= c.maxWidth; n++ {
		if s := c.score(pr, n); s > bestScore {
			best, bestScore = n, s
		}
	}
	if best != c.width && bestScore > c.score(pr, c.width)*ctlHysteresis {
		c.width = best
	}
}
