package model

import (
	"math"

	"repro/internal/geom"
)

// Pyramid is the static coarse level of the coarse-to-fine likelihood:
// the gain image decimated to the Field's 8×8 occupancy blocks, with two
// row-sum-style aggregates per block,
//
//	Sum[b] = Σ gain over the block's pixels
//	Pos[b] = Σ max(gain, 0) over the block's pixels
//
// (Σ min(gain, 0) is Sum − Pos). Combined with the Field's dynamic block
// occupancy counters these give cheap upper bounds on birth and move
// likelihood deltas: a proposal whose *bound* already fails the
// Metropolis test is rejected without ever pricing it at full
// resolution.
//
// # Exactness guard
//
// The bounds are used only to reject; any acceptance candidate is
// refined with the exact full-resolution kernels before the decision is
// finalised, and the accept draw is shared between the coarse and exact
// tests (see mcmc.Engine). The sampled chain — states, posteriors and
// RNG stream — is therefore bit-identical to an unscreened run; the
// pyramid can only save work, never change a result. The determinism
// and differential-fuzz suites pin this.
//
// Gain is immutable, so the pyramid is built once per State alongside
// GainSum and never updated.
type Pyramid struct {
	bW, bH int
	Sum    []float64
	Pos    []float64
}

// NewPyramid decimates the gain image into per-block aggregates.
func NewPyramid(gain []float64, w, h int) *Pyramid {
	bW, bH := blocksPerRow(w), blocksPerRow(h)
	p := &Pyramid{
		bW:  bW,
		bH:  bH,
		Sum: make([]float64, bW*bH),
		Pos: make([]float64, bW*bH),
	}
	for y := 0; y < h; y++ {
		row := y * w
		base := (y >> blockShift) * bW
		for x := 0; x < w; x++ {
			g := gain[row+x]
			b := base + x>>blockShift
			p.Sum[b] += g
			if g > 0 {
				p.Pos[b] += g
			}
		}
	}
	return p
}

// screenSlack is added to every coarse bound. The block aggregates are
// summed in a different order than the exact row kernels, so on
// configurations where the bound is mathematically tight (every block
// classified exactly) float round-off could otherwise push the computed
// bound a few ulps below the computed exact value; the slack — orders of
// magnitude above any accumulated round-off, orders of magnitude below
// any likelihood delta that matters — keeps the bound an upper bound in
// floating point too.
const screenSlack = 1e-6

// classifyMargin is the geometric safety margin (in pixels / relative
// quad-form units) for block classification: a block is only treated as
// fully inside or fully outside a shape when it is so by a clear margin,
// so predicate round-off at the boundary can never flip a block into a
// class that would weaken the bound's soundness. Borderline blocks fall
// into the partial class, whose Pos contribution is always a valid upper
// bound.
const classifyMargin = 1e-6

const (
	blockOut = iota
	blockPartial
	blockIn
)

// blockClass is the per-proposal classifier state: the shape's disc
// parameters or quadratic coefficients, hoisted once per bound.
type blockClass struct {
	circular   bool
	cx, cy, r  float64
	A, B, C, F float64
	bnd        geom.Rect
}

func newBlockClass(c geom.Ellipse) blockClass {
	bc := blockClass{cx: c.X, cy: c.Y, bnd: c.Bounds()}
	if c.Circular() {
		bc.circular = true
		bc.r = c.Rx
		return bc
	}
	bc.A, bc.B, bc.C, bc.F = c.QuadCoeffs()
	return bc
}

// classify places the block whose pixel centres span [pxLo, pxHi] ×
// [pyLo, pyHi] relative to the shape: certainly disjoint from every
// pixel centre, certainly containing every pixel centre, or unknown
// (partial). Convexity makes the four-corner containment test exact for
// the ellipse case.
func (bc *blockClass) classify(pxLo, pxHi, pyLo, pyHi float64) int {
	if bc.circular {
		bcx, bcy := (pxLo+pxHi)/2, (pyLo+pyHi)/2
		hd := math.Hypot((pxHi-pxLo)/2, (pyHi-pyLo)/2)
		d := math.Hypot(bcx-bc.cx, bcy-bc.cy)
		if d-hd > bc.r+classifyMargin {
			return blockOut
		}
		if d+hd < bc.r-classifyMargin {
			return blockIn
		}
		return blockPartial
	}
	if pxHi < bc.bnd.X0-classifyMargin || pxLo > bc.bnd.X1+classifyMargin ||
		pyHi < bc.bnd.Y0-classifyMargin || pyLo > bc.bnd.Y1+classifyMargin {
		return blockOut
	}
	// Quad-form margin relative to F (the boundary level): corners must
	// be inside by a clear relative margin before the whole block is
	// trusted as inside.
	lim := bc.F * (1 - 1e-9)
	for _, dx := range [2]float64{pxLo - bc.cx, pxHi - bc.cx} {
		for _, dy := range [2]float64{pyLo - bc.cy, pyHi - bc.cy} {
			if bc.A*dx*dx+bc.B*dx*dy+bc.C*dy*dy > lim {
				return blockPartial
			}
		}
	}
	return blockIn
}

// CanScreen reports whether the state carries the structures the coarse
// screen needs.
func (s *State) CanScreen() bool { return s.Pyr != nil && s.F.occ != nil }

// EvalAddCoarse is the coarse-level counterpart of EvalAdd: the prior
// delta is exact, the likelihood delta is replaced by the pyramid upper
// bound UpperBoundAdd. The caller must treat the result as a bound —
// reject-only — and refine acceptance candidates with LikDeltaAddExact.
func (s *State) EvalAddCoarse(c geom.Ellipse) (dLikUB, dPrior float64) {
	dPrior = s.priorDeltaAdd(c)
	if math.IsInf(dPrior, -1) {
		return 0, dPrior
	}
	return s.UpperBoundAdd(c), dPrior
}

// EvalMoveCoarse is the coarse-level counterpart of EvalMove, with the
// likelihood delta replaced by UpperBoundMove. Reject-only; refine with
// LikDeltaMoveExact.
func (s *State) EvalMoveCoarse(id int, newC geom.Ellipse) (dLikUB, dPrior float64) {
	oldC := s.Cfg.Get(id)
	if !s.validPosition(newC) {
		return 0, math.Inf(-1)
	}
	dPrior = s.P.LogShapePrior(newC) - s.P.LogShapePrior(oldC)
	if math.IsInf(dPrior, -1) {
		return 0, dPrior
	}
	dPrior -= s.P.OverlapPenalty * (s.OverlapSum(newC, id) - s.OverlapSum(oldC, id))
	return s.UpperBoundMove(oldC, newC), dPrior
}

// LikDeltaAddExact refines a screened birth at full resolution: the same
// kernel EvalAdd uses, so the refined delta is bit-identical to an
// unscreened evaluation.
func (s *State) LikDeltaAddExact(c geom.Ellipse) float64 {
	return s.F.LikDeltaAdd(c)
}

// LikDeltaMoveExact refines a screened move at full resolution, leaving
// the span tables in ms for the apply (same contract as EvalMoveCached).
func (s *State) LikDeltaMoveExact(id int, newC geom.Ellipse, ms *MoveSpans) float64 {
	return s.F.LikDeltaMovePrepared(s.Cfg.Get(id), newC, ms)
}

// UpperBoundAdd returns an upper bound on LikDeltaAdd(c): per touched
// block, the exact block total when the block is certainly fully gained
// (fully inside the shape and fully uncovered), the block's positive
// mass otherwise, and nothing for disjoint blocks.
func (s *State) UpperBoundAdd(c geom.Ellipse) float64 {
	return s.ubGain(c) + screenSlack
}

func (s *State) ubGain(c geom.Ellipse) float64 {
	x0, x1 := c.PixelCols(s.W)
	y0, y1 := c.PixelRows(s.H)
	if x0 >= x1 || y0 >= y1 {
		return 0
	}
	p, f := s.Pyr, &s.F
	bc := newBlockClass(c)
	ub := 0.0
	for by := y0 >> blockShift; by <= (y1-1)>>blockShift; by++ {
		pyLo := float64(by<<blockShift) + 0.5
		pyHi := float64(minInt((by+1)<<blockShift, s.H)-1) + 0.5
		base := by * p.bW
		for bx := x0 >> blockShift; bx <= (x1-1)>>blockShift; bx++ {
			switch bc.classify(float64(bx<<blockShift)+0.5,
				float64(minInt((bx+1)<<blockShift, s.W)-1)+0.5, pyLo, pyHi) {
			case blockOut:
			case blockIn:
				b := base + bx
				if f.occ[2*b] == 0 {
					ub += p.Sum[b] // exact: the whole block flips to covered
				} else {
					ub += p.Pos[b]
				}
			default:
				ub += p.Pos[base+bx]
			}
		}
	}
	return ub
}

// UpperBoundMove returns an upper bound on LikDeltaMove(oldC, newC)
// (oldC must be covered): the gain bound of the new shape plus, per
// block touched by the old shape, the worst-case loss −Σ min(gain, 0) —
// tightened to the exact −Sum when the whole block is certainly lost
// (fully inside the old shape, every pixel covered exactly once, and
// disjoint from the new shape's bounding box).
func (s *State) UpperBoundMove(oldC, newC geom.Ellipse) float64 {
	ub := s.ubGain(newC)
	x0, x1 := oldC.PixelCols(s.W)
	y0, y1 := oldC.PixelRows(s.H)
	if x0 >= x1 || y0 >= y1 {
		return ub + screenSlack
	}
	p, f := s.Pyr, &s.F
	bc := newBlockClass(oldC)
	nb := newC.Bounds()
	for by := y0 >> blockShift; by <= (y1-1)>>blockShift; by++ {
		pyLo := float64(by<<blockShift) + 0.5
		pyHi := float64(minInt((by+1)<<blockShift, s.H)-1) + 0.5
		base := by * p.bW
		for bx := x0 >> blockShift; bx <= (x1-1)>>blockShift; bx++ {
			pxLo := float64(bx<<blockShift) + 0.5
			pxHi := float64(minInt((bx+1)<<blockShift, s.W)-1) + 0.5
			cls := bc.classify(pxLo, pxHi, pyLo, pyHi)
			if cls == blockOut {
				continue
			}
			b := base + bx
			if cls == blockIn && f.occ[2*b] == f.occ[2*b+1] &&
				(pxHi < nb.X0-classifyMargin || pxLo > nb.X1+classifyMargin ||
					pyHi < nb.Y0-classifyMargin || pyLo > nb.Y1+classifyMargin) {
				// Certainly lost wholesale: every pixel covered exactly
				// once by a shape that certainly covers the whole block,
				// and the new shape certainly cannot reach it.
				ub -= p.Sum[b]
				continue
			}
			ub += p.Pos[b] - p.Sum[b] // −Σ min(gain,0) ≥ any partial loss
		}
	}
	return ub + screenSlack
}
