package model

import (
	"math"

	"repro/internal/geom"
)

// BucketIndex is a uniform-bucket spatial index over circle centres. It
// answers "which circles could overlap this region?" in O(buckets touched)
// and is the structure behind merge-candidate search and overlap-penalty
// neighbour scans.
//
// Entries are stored by centre only; queries must therefore expand their
// rectangle by the maximum circle radius to be conservative. QueryCircle
// does this automatically.
type BucketIndex struct {
	bounds    geom.Rect
	cell      float64
	nx, ny    int
	buckets   [][]int
	maxRadius float64
}

// NewBucketIndex creates an index over bounds for circles with radii up to
// maxRadius. The bucket size is derived from maxRadius so neighbour
// queries touch a small constant number of buckets.
func NewBucketIndex(bounds geom.Rect, maxRadius float64) *BucketIndex {
	if bounds.Empty() {
		panic("model: index over empty bounds")
	}
	if maxRadius <= 0 {
		panic("model: index needs positive maxRadius")
	}
	cell := math.Max(2*maxRadius, 4)
	nx := int(math.Ceil(bounds.W()/cell)) + 1
	ny := int(math.Ceil(bounds.H()/cell)) + 1
	return &BucketIndex{
		bounds:    bounds,
		cell:      cell,
		nx:        nx,
		ny:        ny,
		buckets:   make([][]int, nx*ny),
		maxRadius: maxRadius,
	}
}

func (ix *BucketIndex) bucketOf(x, y float64) int {
	bx := int((x - ix.bounds.X0) / ix.cell)
	by := int((y - ix.bounds.Y0) / ix.cell)
	bx = clampIdx(bx, 0, ix.nx-1)
	by = clampIdx(by, 0, ix.ny-1)
	return by*ix.nx + bx
}

func clampIdx(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Insert adds id at centre (x, y).
func (ix *BucketIndex) Insert(id int, x, y float64) {
	b := ix.bucketOf(x, y)
	ix.buckets[b] = append(ix.buckets[b], id)
}

// Remove deletes id, which must have been inserted at centre (x, y). It
// panics if the entry is missing — that indicates corrupted bookkeeping.
func (ix *BucketIndex) Remove(id int, x, y float64) {
	b := ix.bucketOf(x, y)
	lst := ix.buckets[b]
	for i, v := range lst {
		if v == id {
			lst[i] = lst[len(lst)-1]
			ix.buckets[b] = lst[:len(lst)-1]
			return
		}
	}
	panic("model: BucketIndex.Remove of absent entry")
}

// Move relocates id from the old centre to the new one.
func (ix *BucketIndex) Move(id int, oldX, oldY, newX, newY float64) {
	ob, nb := ix.bucketOf(oldX, oldY), ix.bucketOf(newX, newY)
	if ob == nb {
		return
	}
	ix.Remove(id, oldX, oldY)
	ix.Insert(id, newX, newY)
}

// QueryRect calls fn for every indexed ID whose centre might lie in rect.
// Duplicates are impossible (each ID lives in exactly one bucket); false
// positives are possible, so callers must re-filter by exact geometry.
// Iteration stops early if fn returns false.
func (ix *BucketIndex) QueryRect(rect geom.Rect, fn func(id int) bool) {
	x0 := clampIdx(int((rect.X0-ix.bounds.X0)/ix.cell), 0, ix.nx-1)
	y0 := clampIdx(int((rect.Y0-ix.bounds.Y0)/ix.cell), 0, ix.ny-1)
	x1 := clampIdx(int((rect.X1-ix.bounds.X0)/ix.cell), 0, ix.nx-1)
	y1 := clampIdx(int((rect.Y1-ix.bounds.Y0)/ix.cell), 0, ix.ny-1)
	for by := y0; by <= y1; by++ {
		for bx := x0; bx <= x1; bx++ {
			for _, id := range ix.buckets[by*ix.nx+bx] {
				if !fn(id) {
					return
				}
			}
		}
	}
}

// QueryCircle calls fn for every ID whose shape could intersect c,
// assuming all indexed shapes have semi-axes <= maxRadius.
func (ix *BucketIndex) QueryCircle(c geom.Ellipse, fn func(id int) bool) {
	pad := c.MaxR() + ix.maxRadius
	ix.QueryRect(geom.Rect{
		X0: c.X - pad, Y0: c.Y - pad, X1: c.X + pad, Y1: c.Y + pad,
	}, fn)
}

// Len returns the number of indexed entries (for tests).
func (ix *BucketIndex) Len() int {
	n := 0
	for _, b := range ix.buckets {
		n += len(b)
	}
	return n
}
