package model

import (
	"math"

	"repro/internal/geom"
)

// likMultiSpans is the fixed scratch capacity of LikDeltaMulti: split
// and merge exchange at most three circles, so the per-row span table
// lives on the stack. Larger exchanges fall back to an allocation.
const likMultiSpans = 8

// LikDeltaMulti returns the relative log-likelihood change from removing
// the circles in removed and adding those in added, in one read-only pass
// over the union of their scanline spans. It generalises LikDeltaAdd /
// LikDeltaRemove / LikDeltaMove to arbitrary exchanges (split, merge).
//
// Per row, each circle contributes one span; span endpoints cut the row
// into segments of constant removed/added multiplicity, each summed via
// the gsum prefix table with a rare-branch correction scan.
//
// The removed circles must currently be part of the coverage (as
// EvalExchange guarantees): inside a segment covered by dRem removed
// circles, cover ≥ dRem, which is what lets net-loss segments reduce to
// a single coverage-equality sum.
func LikDeltaMulti(gain, gsum []float64, cover []int32, w, h int, removed, added []geom.Ellipse) float64 {
	f := fieldView(gain, gsum, cover, w, h)
	return f.LikDeltaMulti(removed, added)
}

// LikDeltaMulti prices an atomic exchange (see the free function above)
// with the field's occupancy skip. Read-only.
func (f *Field) LikDeltaMulti(removed, added []geom.Ellipse) float64 {
	return f.exchangeWalk(removed, added, true, false)
}

// FusedExchangeCover performs the exchange and returns its likelihood
// delta in the same span walk: every constant-multiplicity segment is
// priced and then written with its net coverage change. Bit-identical to
// LikDeltaMulti on the pre-mutation state followed by per-circle
// CoverAdd calls.
func (f *Field) FusedExchangeCover(removed, added []geom.Ellipse) float64 {
	return f.exchangeWalk(removed, added, true, true)
}

// coverExchange applies the exchange's net coverage update without
// pricing it (the delta was already computed by a matching
// LikDeltaMulti).
func (f *Field) coverExchange(removed, added []geom.Ellipse) {
	f.exchangeWalk(removed, added, false, true)
}

// exchangeWalk is the shared body: one pass over the union of the
// shapes' scanline spans, cutting each row into constant-multiplicity
// segments; doSum accumulates the likelihood delta, doApply writes the
// net coverage change. Segments are disjoint, so pricing-then-writing a
// segment cannot disturb any other segment's sum and the fused walk
// equals eval-then-apply bitwise.
func (f *Field) exchangeWalk(removed, added []geom.Ellipse, doSum, doApply bool) float64 {
	w, h := f.W, f.H
	nRem, nAdd := len(removed), len(added)
	n := nRem + nAdd
	if n == 0 {
		return 0
	}
	// Batched span tables: one AppendShapeSpans call per shape (the
	// division-free disc path, hoisted quadratic coefficients for
	// ellipses) instead of one RowSpan call per shape per row.
	// starts[i]:starts[i+1] delimits shape i's table in all; cur[i]
	// walks it as the row loop advances, so rows a shape does not touch
	// cost it one integer compare.
	//
	// Per row, span endpoints become open/close events (x in the high
	// bits, event kind in the low two), insertion-sorted; walking them
	// with running (dRem, dAdd) multiplicities yields the row's
	// constant-multiplicity segments directly, with no per-segment scan
	// over the shapes. Events at equal x may process in any relative
	// order: the multiplicities of the segment starting at x are read
	// only after every event at x has been applied.
	var spanBuf [2 * spanStack]geom.Span
	var startBuf [likMultiSpans + 1]int
	var curBuf [likMultiSpans]int
	var evBuf [2 * likMultiSpans]int
	all := spanBuf[:0]
	starts := startBuf[:]
	cur := curBuf[:n]
	events := evBuf[:]
	if n > likMultiSpans {
		all = make([]geom.Span, 0, n*spanStack)
		starts = make([]int, n+1)
		cur = make([]int, n)
		events = make([]int, 2*n)
	}
	const (
		evRemOpen = iota
		evRemClose
		evAddOpen
		evAddClose
		evKinds
	)
	for i := 0; i < n; i++ {
		var c geom.Ellipse
		if i < nRem {
			c = removed[i]
		} else {
			c = added[i-nRem]
		}
		starts[i] = len(all)
		all = geom.AppendShapeSpans(all, w, h, c)
		cur[i] = starts[i]
	}
	starts[n] = len(all)
	const noRow = int32(math.MaxInt32)
	delta := 0.0
	for {
		// Next row: the minimum unconsumed table row across all shapes.
		y32 := noRow
		for i := 0; i < n; i++ {
			if cur[i] < starts[i+1] && all[cur[i]].Y < y32 {
				y32 = all[cur[i]].Y
			}
		}
		if y32 == noRow {
			break
		}
		y := int(y32)
		ne := 0
		for i := 0; i < n; i++ {
			if cur[i] < starts[i+1] && all[cur[i]].Y == y32 {
				sp := all[cur[i]]
				cur[i]++
				open, close := evRemOpen, evRemClose
				if i >= nRem {
					open, close = evAddOpen, evAddClose
				}
				// Insertion-sort both events; n is tiny.
				for _, v := range [2]int{int(sp.X0)*evKinds + open, int(sp.X1)*evKinds + close} {
					j := ne
					for j > 0 && events[j-1] > v {
						events[j] = events[j-1]
						j--
					}
					events[j] = v
					ne++
				}
			}
		}
		var dRem, dAdd int32
		prev := 0
		for k := 0; k < ne; k++ {
			x := events[k] / evKinds
			if x > prev && (dRem != 0 || dAdd != 0) {
				// Segment [prev, x) has constant multiplicities. Only the
				// net change matters: d > 0 covers the segment's uncovered
				// pixels; d == 0 (gap or wash) changes nothing. For d < 0,
				// cover ≥ dRem throughout the segment, so a pixel is
				// uncovered iff nothing is added here and its coverage is
				// exactly dRem.
				d := dAdd - dRem
				if doSum {
					switch {
					case d > 0:
						delta += f.sumSpan(y, prev, x, 0)
					case d < 0 && dAdd == 0:
						delta -= f.sumSpan(y, prev, x, dRem)
					}
				}
				if doApply {
					f.coverAddRange(y, prev, x, d)
				}
			}
			prev = x
			switch events[k] % evKinds {
			case evRemOpen:
				dRem++
			case evRemClose:
				dRem--
			case evAddOpen:
				dAdd++
			case evAddClose:
				dAdd--
			}
		}
	}
	return delta
}

// EvalExchange returns the posterior delta of atomically removing the
// circles with the given IDs and adding the circles in added. Read-only.
// It returns dPrior = -Inf when any added circle violates the prior
// support (position outside the image or radius outside the truncation
// range).
func (s *State) EvalExchange(removedIDs []int, added []geom.Ellipse) (dLik, dPrior float64) {
	// Split/merge exchange at most two circles; keep that case off the
	// heap so the proposal path stays allocation-free.
	var rbuf [2]geom.Ellipse
	removed := rbuf[:0]
	if len(removedIDs) > len(rbuf) {
		removed = make([]geom.Ellipse, 0, len(removedIDs))
	}
	for _, id := range removedIDs {
		removed = append(removed, s.Cfg.Get(id))
	}

	// Support checks first: an invalid proposal needs no likelihood work.
	for _, c := range added {
		if !s.validPosition(c) || !s.P.ShapeInSupport(c) {
			return 0, math.Inf(-1)
		}
	}

	m := len(added) - len(removedIDs)
	// Count term (unordered-configuration density, see state.go): λ^m.
	dPrior = float64(m) * math.Log(s.P.Lambda)
	// Position term: each circle carries density 1/A.
	dPrior -= float64(m) * s.logArea
	// Shape (radius/axes/rotation) terms.
	for _, c := range added {
		dPrior += s.P.LogShapePrior(c)
	}
	for _, c := range removed {
		dPrior -= s.P.LogShapePrior(c)
	}

	// Overlap delta. Terms involving only untouched circles cancel.
	isRemoved := func(id int) bool {
		for _, rid := range removedIDs {
			if rid == id {
				return true
			}
		}
		return false
	}
	dOverlap := 0.0
	for _, c := range added {
		s.Index.QueryCircle(c, func(id int) bool {
			if !isRemoved(id) {
				dOverlap += c.OverlapArea(s.Cfg.Get(id))
			}
			return true
		})
	}
	for i, a := range added {
		for _, b := range added[i+1:] {
			dOverlap += a.OverlapArea(b)
		}
	}
	for i, c := range removed {
		s.Index.QueryCircle(c, func(id int) bool {
			if !isRemoved(id) {
				dOverlap -= c.OverlapArea(s.Cfg.Get(id))
			}
			return true
		})
		for _, b := range removed[i+1:] {
			dOverlap -= c.OverlapArea(b)
		}
	}
	dPrior -= s.P.OverlapPenalty * dOverlap

	dLik = s.F.LikDeltaMulti(removed, added)
	return dLik, dPrior
}

// ApplyExchange performs the exchange evaluated by EvalExchange and
// returns the IDs of the added circles. The coverage update runs as a
// single fused span walk over all exchanged shapes (each constant-
// multiplicity segment written once with its net change) instead of one
// pass per shape.
func (s *State) ApplyExchange(removedIDs []int, added []geom.Ellipse, dLik, dPrior float64) []int {
	var rbuf [2]geom.Ellipse
	removed := rbuf[:0]
	if len(removedIDs) > len(rbuf) {
		removed = make([]geom.Ellipse, 0, len(removedIDs))
	}
	for _, id := range removedIDs {
		removed = append(removed, s.Cfg.Get(id))
	}
	s.F.coverExchange(removed, added)
	for _, id := range removedIDs {
		c := s.Cfg.Get(id)
		s.Index.Remove(id, c.X, c.Y)
		s.Cfg.Remove(id)
	}
	ids := make([]int, len(added))
	for i, c := range added {
		ids[i] = s.Cfg.Add(c)
		s.Index.Insert(ids[i], c.X, c.Y)
	}
	s.logLik += dLik
	s.logPrior += dPrior
	return ids
}

// CountNear returns the number of live circles other than exclude whose
// centre lies within dist of (x, y). The merge move uses it for partner
// counts in its proposal densities.
func (s *State) CountNear(x, y, dist float64, exclude int) int {
	n := 0
	s.Index.QueryRect(geom.Rect{
		X0: x - dist, Y0: y - dist, X1: x + dist, Y1: y + dist,
	}, func(id int) bool {
		if id != exclude {
			c := s.Cfg.Get(id)
			if math.Hypot(c.X-x, c.Y-y) < dist {
				n++
			}
		}
		return true
	})
	return n
}

// PartnersNear returns the IDs of live circles other than exclude whose
// centres lie within dist of (x, y).
func (s *State) PartnersNear(x, y, dist float64, exclude int) []int {
	return s.AppendPartnersNear(nil, x, y, dist, exclude)
}

// AppendPartnersNear appends the IDs of live circles other than exclude
// whose centres lie within dist of (x, y) to dst and returns it. Engines
// pass a reusable scratch buffer so steady-state merge proposals never
// allocate.
func (s *State) AppendPartnersNear(dst []int, x, y, dist float64, exclude int) []int {
	s.Index.QueryRect(geom.Rect{
		X0: x - dist, Y0: y - dist, X1: x + dist, Y1: y + dist,
	}, func(id int) bool {
		if id != exclude {
			c := s.Cfg.Get(id)
			if math.Hypot(c.X-x, c.Y-y) < dist {
				dst = append(dst, id)
			}
		}
		return true
	})
	return dst
}
