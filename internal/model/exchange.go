package model

import (
	"math"

	"repro/internal/geom"
)

// LikDeltaMulti returns the relative log-likelihood change from removing
// the circles in removed and adding those in added, in one read-only pass
// over the union of their bounding boxes. It generalises LikDeltaAdd /
// LikDeltaRemove / LikDeltaMove to arbitrary exchanges (split, merge).
func LikDeltaMulti(gain []float64, cover []int32, w, h int, removed, added []geom.Circle) float64 {
	if len(removed) == 0 && len(added) == 0 {
		return 0
	}
	// Union bounding box.
	x0, y0, x1, y1 := w, h, 0, 0
	span := func(c geom.Circle) {
		cx0, cy0, cx1, cy1 := discSpan(w, h, c)
		x0, y0 = minInt(x0, cx0), minInt(y0, cy0)
		x1, y1 = maxInt(x1, cx1), maxInt(y1, cy1)
	}
	for _, c := range removed {
		span(c)
	}
	for _, c := range added {
		span(c)
	}
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	delta := 0.0
	for y := y0; y < y1; y++ {
		cy := float64(y) + 0.5
		row := y * w
		for x := x0; x < x1; x++ {
			cx := float64(x) + 0.5
			var dRem, dAdd int32
			for _, c := range removed {
				dx, dy := cx-c.X, cy-c.Y
				if dx*dx+dy*dy <= c.R*c.R {
					dRem++
				}
			}
			for _, c := range added {
				dx, dy := cx-c.X, cy-c.Y
				if dx*dx+dy*dy <= c.R*c.R {
					dAdd++
				}
			}
			if dRem == 0 && dAdd == 0 {
				continue
			}
			oldCovered := cover[row+x] > 0
			newCovered := cover[row+x]-dRem+dAdd > 0
			switch {
			case newCovered && !oldCovered:
				delta += gain[row+x]
			case oldCovered && !newCovered:
				delta -= gain[row+x]
			}
		}
	}
	return delta
}

// EvalExchange returns the posterior delta of atomically removing the
// circles with the given IDs and adding the circles in added. Read-only.
// It returns dPrior = -Inf when any added circle violates the prior
// support (position outside the image or radius outside the truncation
// range).
func (s *State) EvalExchange(removedIDs []int, added []geom.Circle) (dLik, dPrior float64) {
	removed := make([]geom.Circle, len(removedIDs))
	for i, id := range removedIDs {
		removed[i] = s.Cfg.Get(id)
	}

	// Support checks first: an invalid proposal needs no likelihood work.
	for _, c := range added {
		if !s.validPosition(c) || c.R < s.P.MinRadius || c.R > s.P.MaxRadius {
			return 0, math.Inf(-1)
		}
	}

	m := len(added) - len(removedIDs)
	// Count term (unordered-configuration density, see state.go): λ^m.
	dPrior = float64(m) * math.Log(s.P.Lambda)
	// Position term: each circle carries density 1/A.
	dPrior -= float64(m) * s.logArea
	// Radius terms.
	for _, c := range added {
		dPrior += s.P.LogRadiusPDF(c.R)
	}
	for _, c := range removed {
		dPrior -= s.P.LogRadiusPDF(c.R)
	}

	// Overlap delta. Terms involving only untouched circles cancel.
	isRemoved := func(id int) bool {
		for _, rid := range removedIDs {
			if rid == id {
				return true
			}
		}
		return false
	}
	dOverlap := 0.0
	for _, c := range added {
		s.Index.QueryCircle(c, func(id int) bool {
			if !isRemoved(id) {
				dOverlap += c.OverlapArea(s.Cfg.Get(id))
			}
			return true
		})
	}
	for i, a := range added {
		for _, b := range added[i+1:] {
			dOverlap += a.OverlapArea(b)
		}
	}
	for i, c := range removed {
		s.Index.QueryCircle(c, func(id int) bool {
			if !isRemoved(id) {
				dOverlap -= c.OverlapArea(s.Cfg.Get(id))
			}
			return true
		})
		for _, b := range removed[i+1:] {
			dOverlap -= c.OverlapArea(b)
		}
	}
	dPrior -= s.P.OverlapPenalty * dOverlap

	dLik = LikDeltaMulti(s.Gain, s.Cover, s.W, s.H, removed, added)
	return dLik, dPrior
}

// ApplyExchange performs the exchange evaluated by EvalExchange and
// returns the IDs of the added circles.
func (s *State) ApplyExchange(removedIDs []int, added []geom.Circle, dLik, dPrior float64) []int {
	for _, id := range removedIDs {
		c := s.Cfg.Get(id)
		CoverAdd(s.Cover, s.W, s.H, c, -1)
		s.Index.Remove(id, c.X, c.Y)
		s.Cfg.Remove(id)
	}
	ids := make([]int, len(added))
	for i, c := range added {
		CoverAdd(s.Cover, s.W, s.H, c, +1)
		ids[i] = s.Cfg.Add(c)
		s.Index.Insert(ids[i], c.X, c.Y)
	}
	s.logLik += dLik
	s.logPrior += dPrior
	return ids
}

// CountNear returns the number of live circles other than exclude whose
// centre lies within dist of (x, y). The merge move uses it for partner
// counts in its proposal densities.
func (s *State) CountNear(x, y, dist float64, exclude int) int {
	n := 0
	s.Index.QueryRect(geom.Rect{
		X0: x - dist, Y0: y - dist, X1: x + dist, Y1: y + dist,
	}, func(id int) bool {
		if id != exclude {
			c := s.Cfg.Get(id)
			if math.Hypot(c.X-x, c.Y-y) < dist {
				n++
			}
		}
		return true
	})
	return n
}

// PartnersNear returns the IDs of live circles other than exclude whose
// centres lie within dist of (x, y).
func (s *State) PartnersNear(x, y, dist float64, exclude int) []int {
	var ids []int
	s.Index.QueryRect(geom.Rect{
		X0: x - dist, Y0: y - dist, X1: x + dist, Y1: y + dist,
	}, func(id int) bool {
		if id != exclude {
			c := s.Cfg.Get(id)
			if math.Hypot(c.X-x, c.Y-y) < dist {
				ids = append(ids, id)
			}
		}
		return true
	})
	return ids
}
