package model

import (
	"math"

	"repro/internal/geom"
)

// likMultiSpans is the fixed scratch capacity of LikDeltaMulti: split
// and merge exchange at most three circles, so the per-row span table
// lives on the stack. Larger exchanges fall back to an allocation.
const likMultiSpans = 8

// LikDeltaMulti returns the relative log-likelihood change from removing
// the circles in removed and adding those in added, in one read-only pass
// over the union of their scanline spans. It generalises LikDeltaAdd /
// LikDeltaRemove / LikDeltaMove to arbitrary exchanges (split, merge).
//
// Per row, each circle contributes one span; span endpoints cut the row
// into segments of constant removed/added multiplicity, each summed via
// the gsum prefix table with a rare-branch correction scan.
//
// The removed circles must currently be part of the coverage (as
// EvalExchange guarantees): inside a segment covered by dRem removed
// circles, cover ≥ dRem, which is what lets net-loss segments reduce to
// a single coverage-equality sum.
func LikDeltaMulti(gain, gsum []float64, cover []int32, w, h int, removed, added []geom.Ellipse) float64 {
	nRem, nAdd := len(removed), len(added)
	n := nRem + nAdd
	if n == 0 {
		return 0
	}
	// Union row range.
	y0, y1 := h, 0
	for _, c := range removed {
		cy0, cy1 := c.PixelRows(h)
		y0, y1 = minInt(y0, cy0), maxInt(y1, cy1)
	}
	for _, c := range added {
		cy0, cy1 := c.PixelRows(h)
		y0, y1 = minInt(y0, cy0), maxInt(y1, cy1)
	}
	if y1 <= y0 {
		return 0
	}
	// circles/cols[0:nRem] describe the removed circles, [nRem:n] the
	// added ones; cols hoists each circle's clipped column bounds out of
	// the row loop. spans holds the per-row spans; cuts the row's sorted
	// span endpoints — they divide it into at most 2n+1 segments with
	// constant (dRem, dAdd) multiplicities, so the per-pixel work inside
	// a segment reduces to a coverage compare and a conditional gain add.
	var cBuf [likMultiSpans]geom.RowSpanner
	var colBuf, buf [likMultiSpans][2]int
	var cutBuf [2 * likMultiSpans]int
	circles := cBuf[:n]
	cols := colBuf[:n]
	spans := buf[:n]
	cutsAll := cutBuf[:]
	if n > likMultiSpans {
		circles = make([]geom.RowSpanner, n)
		cols = make([][2]int, n)
		spans = make([][2]int, n)
		cutsAll = make([]int, 2*n)
	}
	for i, c := range removed {
		circles[i] = c.Spanner()
		cols[i][0], cols[i][1] = c.PixelCols(w)
	}
	for i, c := range added {
		circles[nRem+i] = c.Spanner()
		cols[nRem+i][0], cols[nRem+i][1] = c.PixelCols(w)
	}
	delta := 0.0
	for y := y0; y < y1; y++ {
		nc := 0
		for i := 0; i < n; i++ {
			xa, xb := circles[i].RowSpan(y, cols[i][0], cols[i][1])
			spans[i] = [2]int{xa, xb}
			if xa < xb {
				// Insertion-sort both endpoints into cuts; n is tiny.
				for _, v := range [2]int{xa, xb} {
					j := nc
					for j > 0 && cutsAll[j-1] > v {
						cutsAll[j] = cutsAll[j-1]
						j--
					}
					cutsAll[j] = v
					nc++
				}
			}
		}
		if nc == 0 {
			continue
		}
		cuts := cutsAll[:nc]
		for k := 0; k+1 < len(cuts); k++ {
			a, b := cuts[k], cuts[k+1]
			if a == b {
				continue
			}
			// Multiplicities are constant on [a, b); sample at a.
			var dRem, dAdd int32
			for i := 0; i < nRem; i++ {
				if a >= spans[i][0] && a < spans[i][1] {
					dRem++
				}
			}
			for i := nRem; i < n; i++ {
				if a >= spans[i][0] && a < spans[i][1] {
					dAdd++
				}
			}
			// Only the net multiplicity change matters: d > 0 covers the
			// segment's uncovered pixels; d == 0 (gap or wash) changes
			// nothing. For d < 0, cover ≥ dRem throughout the segment, so
			// a pixel is uncovered iff nothing is added here and its
			// coverage is exactly dRem.
			switch d := dAdd - dRem; {
			case d > 0:
				delta += sumCoverEq(gain, gsum, cover, w, y, a, b, 0)
			case d < 0 && dAdd == 0:
				delta -= sumCoverEq(gain, gsum, cover, w, y, a, b, dRem)
			}
		}
	}
	return delta
}

// EvalExchange returns the posterior delta of atomically removing the
// circles with the given IDs and adding the circles in added. Read-only.
// It returns dPrior = -Inf when any added circle violates the prior
// support (position outside the image or radius outside the truncation
// range).
func (s *State) EvalExchange(removedIDs []int, added []geom.Ellipse) (dLik, dPrior float64) {
	// Split/merge exchange at most two circles; keep that case off the
	// heap so the proposal path stays allocation-free.
	var rbuf [2]geom.Ellipse
	removed := rbuf[:0]
	if len(removedIDs) > len(rbuf) {
		removed = make([]geom.Ellipse, 0, len(removedIDs))
	}
	for _, id := range removedIDs {
		removed = append(removed, s.Cfg.Get(id))
	}

	// Support checks first: an invalid proposal needs no likelihood work.
	for _, c := range added {
		if !s.validPosition(c) || !s.P.ShapeInSupport(c) {
			return 0, math.Inf(-1)
		}
	}

	m := len(added) - len(removedIDs)
	// Count term (unordered-configuration density, see state.go): λ^m.
	dPrior = float64(m) * math.Log(s.P.Lambda)
	// Position term: each circle carries density 1/A.
	dPrior -= float64(m) * s.logArea
	// Shape (radius/axes/rotation) terms.
	for _, c := range added {
		dPrior += s.P.LogShapePrior(c)
	}
	for _, c := range removed {
		dPrior -= s.P.LogShapePrior(c)
	}

	// Overlap delta. Terms involving only untouched circles cancel.
	isRemoved := func(id int) bool {
		for _, rid := range removedIDs {
			if rid == id {
				return true
			}
		}
		return false
	}
	dOverlap := 0.0
	for _, c := range added {
		s.Index.QueryCircle(c, func(id int) bool {
			if !isRemoved(id) {
				dOverlap += c.OverlapArea(s.Cfg.Get(id))
			}
			return true
		})
	}
	for i, a := range added {
		for _, b := range added[i+1:] {
			dOverlap += a.OverlapArea(b)
		}
	}
	for i, c := range removed {
		s.Index.QueryCircle(c, func(id int) bool {
			if !isRemoved(id) {
				dOverlap -= c.OverlapArea(s.Cfg.Get(id))
			}
			return true
		})
		for _, b := range removed[i+1:] {
			dOverlap -= c.OverlapArea(b)
		}
	}
	dPrior -= s.P.OverlapPenalty * dOverlap

	dLik = LikDeltaMulti(s.Gain, s.GainSum, s.Cover, s.W, s.H, removed, added)
	return dLik, dPrior
}

// ApplyExchange performs the exchange evaluated by EvalExchange and
// returns the IDs of the added circles.
func (s *State) ApplyExchange(removedIDs []int, added []geom.Ellipse, dLik, dPrior float64) []int {
	for _, id := range removedIDs {
		c := s.Cfg.Get(id)
		CoverAdd(s.Cover, s.W, s.H, c, -1)
		s.Index.Remove(id, c.X, c.Y)
		s.Cfg.Remove(id)
	}
	ids := make([]int, len(added))
	for i, c := range added {
		CoverAdd(s.Cover, s.W, s.H, c, +1)
		ids[i] = s.Cfg.Add(c)
		s.Index.Insert(ids[i], c.X, c.Y)
	}
	s.logLik += dLik
	s.logPrior += dPrior
	return ids
}

// CountNear returns the number of live circles other than exclude whose
// centre lies within dist of (x, y). The merge move uses it for partner
// counts in its proposal densities.
func (s *State) CountNear(x, y, dist float64, exclude int) int {
	n := 0
	s.Index.QueryRect(geom.Rect{
		X0: x - dist, Y0: y - dist, X1: x + dist, Y1: y + dist,
	}, func(id int) bool {
		if id != exclude {
			c := s.Cfg.Get(id)
			if math.Hypot(c.X-x, c.Y-y) < dist {
				n++
			}
		}
		return true
	})
	return n
}

// PartnersNear returns the IDs of live circles other than exclude whose
// centres lie within dist of (x, y).
func (s *State) PartnersNear(x, y, dist float64, exclude int) []int {
	return s.AppendPartnersNear(nil, x, y, dist, exclude)
}

// AppendPartnersNear appends the IDs of live circles other than exclude
// whose centres lie within dist of (x, y) to dst and returns it. Engines
// pass a reusable scratch buffer so steady-state merge proposals never
// allocate.
func (s *State) AppendPartnersNear(dst []int, x, y, dist float64, exclude int) []int {
	s.Index.QueryRect(geom.Rect{
		X0: x - dist, Y0: y - dist, X1: x + dist, Y1: y + dist,
	}, func(id int) bool {
		if id != exclude {
			c := s.Cfg.Get(id)
			if math.Hypot(c.X-x, c.Y-y) < dist {
				dst = append(dst, id)
			}
		}
		return true
	})
	return dst
}
