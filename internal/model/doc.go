// Package model implements the case-study posterior of §III: a marked
// point process of shapes (discs or ellipses, per Params.Shape) over a
// filtered grayscale image, with a Poisson count prior, truncated-Normal
// size priors (the radius for discs; both semi-axes plus a uniform
// rotation for ellipses), pairwise overlap penalty and a two-level
// Gaussian pixel likelihood.
//
// # Layers
//
// The package exposes two layers:
//
//   - Primitive delta evaluators (LikDeltaAdd, LikDeltaMove, CoverAdd, ...)
//     that operate on raw gain/coverage buffers. The parallel engines call
//     these directly from partition workers, which own disjoint pixel
//     regions of the shared buffers.
//   - State, a cached full configuration (shapes + coverage + running
//     log-posterior + spatial index) used by the sequential engine and as
//     the merge target for parallel phases. State.Recompute provides the
//     ground truth that every incremental path is tested against.
//
// # Block occupancy (Field)
//
// Field shadows the coverage buffer with an 8×8-block summary: for each
// block b, occ[2b] is the total coverage mass inside the block and
// occ[2b+1] is the count of in-image pixels. Two skip rules follow:
//
//   - mass == 0: the block is uniformly uncovered. An add prices it in
//     O(1) from the gain prefix sums (BuildGainRowSums); a remove or
//     move-out cannot touch it at multiplicity > 1.
//   - mass == count: the block is uniformly single-covered. A remove or
//     move-out prices it in O(1); an add knows every pixel it overlaps
//     there goes 1→2 (no gain change).
//
// Every cover commit keeps the summary exact — there is no staleness
// window. Parallel writers (SetParallel) preserve the invariant that a
// reader never observes mass < what the count implies: increases write
// mass before count, decreases write count before mass, both with
// atomic operations. A torn read can therefore only make a block look
// *less* skippable, never more, so concurrent pricing stays
// conservative rather than wrong.
//
// The fused kernels (LikDelta*+Cover* in one walk, and the MoveSpans
// span-table replay for move commits) must match the separate
// evaluators bit-for-bit on coverage and to 1e-9 on likelihood; the
// differential tests and FuzzFusedKernelDifferential pin this against
// the retained naive bounding-box kernels in naive.go.
//
// # Coarse-to-fine pyramid
//
// Pyramid holds power-of-two downsampled gain/cover summaries used to
// price large shapes cheaply. The contract is soundness, not accuracy:
// UpperBoundAdd / UpperBoundMove return a value ≥ the exact likelihood
// delta (pinned by TestPyramidUpperBoundSound). Callers may therefore
// reject on the bound alone but must refine to the exact delta before
// accepting — the mcmc engine's lazy acceptance test does exactly
// this, drawing its uniform once and reusing it after refinement so a
// screened chain is bit-identical to an unscreened one.
package model
