package model

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Differential tests: the scanline kernels in likelihood.go and
// exchange.go must agree with the retained naive bounding-box references
// in naive.go — likelihood deltas to 1e-9 (the kernels price spans via
// prefix-sum differences, so results can differ from the naive direct
// sums by float-rounding noise, orders of magnitude below 1e-9),
// coverage arrays exactly.

const diffTol = 1e-9

// diffCircle draws circles biased toward awkward cases: edge-clipped
// (centres up to 10px outside the image), sub-pixel radii, and radii
// comparable to the image.
func diffCircle(r *rng.RNG, w, h int) geom.Circle {
	c := geom.Circle{
		X: r.Uniform(-10, float64(w)+10),
		Y: r.Uniform(-10, float64(h)+10),
	}
	switch r.Intn(4) {
	case 0:
		c.R = r.Uniform(0.01, 0.9)
	case 1:
		c.R = r.Uniform(0.9, 5)
	case 2:
		c.R = r.Uniform(5, 18)
	default:
		c.R = r.Uniform(18, float64(w)/2)
	}
	return c
}

// diffBuffers builds a random gain field and a coverage buffer populated
// by nCover random circles (through the naive reference, so the scanline
// kernels are tested against independently built state).
func diffBuffers(r *rng.RNG, w, h, nCover int) (gain, gsum []float64, cover []int32) {
	gain = make([]float64, w*h)
	for i := range gain {
		gain[i] = r.Uniform(-2, 2)
	}
	cover = make([]int32, w*h)
	for k := 0; k < nCover; k++ {
		NaiveCoverAdd(cover, w, h, diffCircle(r, w, h), +1)
	}
	return gain, BuildGainRowSums(gain, w, h), cover
}

func TestLikDeltaAddMatchesNaive(t *testing.T) {
	const w, h = 56, 48
	r := rng.New(42)
	gain, gsum, cover := diffBuffers(r, w, h, 6)
	for trial := 0; trial < 1500; trial++ {
		c := diffCircle(r, w, h)
		got := LikDeltaAdd(gain, gsum, cover, w, h, c)
		want := NaiveLikDeltaAdd(gain, cover, w, h, c)
		if math.Abs(got-want) > diffTol {
			t.Fatalf("LikDeltaAdd(%+v) = %v, naive = %v", c, got, want)
		}
	}
}

func TestLikDeltaRemoveMatchesNaive(t *testing.T) {
	const w, h = 56, 48
	r := rng.New(43)
	gain, gsum, cover := diffBuffers(r, w, h, 6)
	for trial := 0; trial < 1500; trial++ {
		c := diffCircle(r, w, h)
		// Make c part of the coverage so removal is well-defined.
		NaiveCoverAdd(cover, w, h, c, +1)
		got := LikDeltaRemove(gain, gsum, cover, w, h, c)
		want := NaiveLikDeltaRemove(gain, cover, w, h, c)
		NaiveCoverAdd(cover, w, h, c, -1)
		if math.Abs(got-want) > diffTol {
			t.Fatalf("LikDeltaRemove(%+v) = %v, naive = %v", c, got, want)
		}
	}
}

func TestLikDeltaMoveMatchesNaive(t *testing.T) {
	const w, h = 56, 48
	r := rng.New(44)
	gain, gsum, cover := diffBuffers(r, w, h, 6)
	for trial := 0; trial < 1500; trial++ {
		oldC := diffCircle(r, w, h)
		var newC geom.Circle
		switch r.Intn(3) {
		case 0: // local shift: overlapping boxes
			newC = oldC.Translate(r.Uniform(-3, 3), r.Uniform(-3, 3))
		case 1: // resize in place
			newC = oldC
			newC.R = math.Max(0.01, oldC.R+r.Uniform(-2, 2))
		default: // relocation: often disjoint boxes
			newC = diffCircle(r, w, h)
		}
		NaiveCoverAdd(cover, w, h, oldC, +1)
		got := LikDeltaMove(gain, gsum, cover, w, h, oldC, newC)
		want := NaiveLikDeltaMove(gain, cover, w, h, oldC, newC)
		NaiveCoverAdd(cover, w, h, oldC, -1)
		if math.Abs(got-want) > diffTol {
			t.Fatalf("LikDeltaMove(%+v -> %+v) = %v, naive = %v", oldC, newC, got, want)
		}
	}
}

func TestLikDeltaMultiMatchesNaive(t *testing.T) {
	const w, h = 56, 48
	r := rng.New(45)
	gain, gsum, cover := diffBuffers(r, w, h, 6)
	for trial := 0; trial < 800; trial++ {
		nRem, nAdd := r.Intn(3), r.Intn(3)
		removed := make([]geom.Circle, nRem)
		added := make([]geom.Circle, nAdd)
		for i := range removed {
			removed[i] = diffCircle(r, w, h)
			NaiveCoverAdd(cover, w, h, removed[i], +1)
		}
		for i := range added {
			added[i] = diffCircle(r, w, h)
		}
		got := LikDeltaMulti(gain, gsum, cover, w, h, removed, added)
		want := NaiveLikDeltaMulti(gain, cover, w, h, removed, added)
		for i := range removed {
			NaiveCoverAdd(cover, w, h, removed[i], -1)
		}
		if math.Abs(got-want) > diffTol {
			t.Fatalf("LikDeltaMulti(rem %v, add %v) = %v, naive = %v", removed, added, got, want)
		}
	}
}

// TestCoverKernelsMatchNaiveExactly asserts bit-exact coverage: the span
// kernels must touch precisely the pixels the naive references touch.
func TestCoverKernelsMatchNaiveExactly(t *testing.T) {
	const w, h = 56, 48
	r := rng.New(46)
	coverA := make([]int32, w*h) // scanline
	coverB := make([]int32, w*h) // naive
	live := make([]geom.Circle, 0, 32)
	for trial := 0; trial < 1200; trial++ {
		switch {
		case len(live) == 0 || r.Intn(3) == 0: // add
			c := diffCircle(r, w, h)
			live = append(live, c)
			CoverAdd(coverA, w, h, c, +1)
			NaiveCoverAdd(coverB, w, h, c, +1)
		case r.Intn(2) == 0: // remove
			i := r.Intn(len(live))
			c := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			CoverAdd(coverA, w, h, c, -1)
			NaiveCoverAdd(coverB, w, h, c, -1)
		default: // move
			i := r.Intn(len(live))
			oldC := live[i]
			var newC geom.Circle
			if r.Intn(2) == 0 {
				newC = oldC.Translate(r.Uniform(-4, 4), r.Uniform(-4, 4))
				newC.R = math.Max(0.01, oldC.R+r.Uniform(-1, 1))
			} else {
				newC = diffCircle(r, w, h)
			}
			live[i] = newC
			CoverMove(coverA, w, h, oldC, newC)
			NaiveCoverMove(coverB, w, h, oldC, newC)
		}
		for i := range coverA {
			if coverA[i] != coverB[i] {
				t.Fatalf("trial %d: cover mismatch at (%d,%d): scanline %d, naive %d",
					trial, i%w, i/w, coverA[i], coverB[i])
			}
		}
	}
}

// TestScanlineDeltasAreExactSums: on pristine coverage the scanline add
// delta must equal the plain sum of gains over the disc's span pixels —
// a guard against double-visiting or missing pixels.
func TestScanlineDeltasAreExactSums(t *testing.T) {
	const w, h = 40, 40
	r := rng.New(47)
	gain := make([]float64, w*h)
	for i := range gain {
		gain[i] = r.Uniform(-1, 1)
	}
	gsum := BuildGainRowSums(gain, w, h)
	cover := make([]int32, w*h)
	for trial := 0; trial < 300; trial++ {
		c := diffCircle(r, w, h)
		want := 0.0
		geom.DiscSpans(w, h, c, func(y, xa, xb int) {
			for x := xa; x < xb; x++ {
				want += gain[y*w+x]
			}
		})
		if got := LikDeltaAdd(gain, gsum, cover, w, h, c); math.Abs(got-want) > diffTol {
			t.Fatalf("LikDeltaAdd(%+v) = %v, span sum = %v", c, got, want)
		}
	}
}
