package model

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Differential tests: the scanline kernels in likelihood.go and
// exchange.go must agree with the retained naive bounding-box references
// in naive.go — likelihood deltas to 1e-9 (the kernels price spans via
// prefix-sum differences, so results can differ from the naive direct
// sums by float-rounding noise, orders of magnitude below 1e-9),
// coverage arrays exactly. Every test runs once per shape family: the
// disc rows exercise the historical circle fast paths, the ellipse rows
// the generic quadratic spans (both axis-aligned and rotated).

const diffTol = 1e-9

// diffShape draws shapes biased toward awkward cases: edge-clipped
// (centres up to 10px outside the image), sub-pixel sizes, and sizes
// comparable to the image. Disc mode reproduces the historical
// diffCircle distribution; ellipse mode draws independent axes from the
// same size buckets plus an arbitrary rotation (sometimes pinned to 0
// to hit the axis-aligned path).
func diffShape(r *rng.RNG, w, h int, kind geom.ShapeKind) geom.Ellipse {
	axis := func() float64 {
		switch r.Intn(4) {
		case 0:
			return r.Uniform(0.01, 0.9)
		case 1:
			return r.Uniform(0.9, 5)
		case 2:
			return r.Uniform(5, 18)
		default:
			return r.Uniform(18, float64(w)/2)
		}
	}
	x := r.Uniform(-10, float64(w)+10)
	y := r.Uniform(-10, float64(h)+10)
	if kind == geom.KindDisc {
		return geom.Disc(x, y, axis())
	}
	e := geom.Ellipse{X: x, Y: y, Rx: axis(), Ry: axis(), Theta: r.Uniform(0, math.Pi)}
	if r.Intn(8) == 0 {
		e.Theta = 0
	}
	return e
}

// resized returns e with both axes adjusted by d (clamped positive),
// the generic analogue of the old radius perturbation.
func resized(e geom.Ellipse, d float64) geom.Ellipse {
	e.Rx = math.Max(0.01, e.Rx+d)
	e.Ry = math.Max(0.01, e.Ry+d)
	return e
}

var diffKinds = []geom.ShapeKind{geom.KindDisc, geom.KindEllipse}

// diffBuffers builds a random gain field and a coverage buffer populated
// by nCover random shapes (through the naive reference, so the scanline
// kernels are tested against independently built state).
func diffBuffers(r *rng.RNG, w, h, nCover int, kind geom.ShapeKind) (gain, gsum []float64, cover []int32) {
	gain = make([]float64, w*h)
	for i := range gain {
		gain[i] = r.Uniform(-2, 2)
	}
	cover = make([]int32, w*h)
	for k := 0; k < nCover; k++ {
		NaiveCoverAdd(cover, w, h, diffShape(r, w, h, kind), +1)
	}
	return gain, BuildGainRowSums(gain, w, h), cover
}

func TestLikDeltaAddMatchesNaive(t *testing.T) {
	const w, h = 56, 48
	for _, kind := range diffKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(42)
			gain, gsum, cover := diffBuffers(r, w, h, 6, kind)
			for trial := 0; trial < 1500; trial++ {
				c := diffShape(r, w, h, kind)
				got := LikDeltaAdd(gain, gsum, cover, w, h, c)
				want := NaiveLikDeltaAdd(gain, cover, w, h, c)
				if math.Abs(got-want) > diffTol {
					t.Fatalf("LikDeltaAdd(%+v) = %v, naive = %v", c, got, want)
				}
			}
		})
	}
}

func TestLikDeltaRemoveMatchesNaive(t *testing.T) {
	const w, h = 56, 48
	for _, kind := range diffKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(43)
			gain, gsum, cover := diffBuffers(r, w, h, 6, kind)
			for trial := 0; trial < 1500; trial++ {
				c := diffShape(r, w, h, kind)
				// Make c part of the coverage so removal is well-defined.
				NaiveCoverAdd(cover, w, h, c, +1)
				got := LikDeltaRemove(gain, gsum, cover, w, h, c)
				want := NaiveLikDeltaRemove(gain, cover, w, h, c)
				NaiveCoverAdd(cover, w, h, c, -1)
				if math.Abs(got-want) > diffTol {
					t.Fatalf("LikDeltaRemove(%+v) = %v, naive = %v", c, got, want)
				}
			}
		})
	}
}

func TestLikDeltaMoveMatchesNaive(t *testing.T) {
	const w, h = 56, 48
	for _, kind := range diffKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(44)
			gain, gsum, cover := diffBuffers(r, w, h, 6, kind)
			for trial := 0; trial < 1500; trial++ {
				oldC := diffShape(r, w, h, kind)
				var newC geom.Ellipse
				switch r.Intn(4) {
				case 0: // local shift: overlapping boxes
					newC = oldC.Translate(r.Uniform(-3, 3), r.Uniform(-3, 3))
				case 1: // resize in place
					newC = resized(oldC, r.Uniform(-2, 2))
				case 2: // rotate in place (no-op for discs)
					newC = oldC
					if kind == geom.KindEllipse {
						newC.Theta = math.Mod(oldC.Theta+r.Uniform(0, math.Pi), math.Pi)
					}
				default: // relocation: often disjoint boxes
					newC = diffShape(r, w, h, kind)
				}
				NaiveCoverAdd(cover, w, h, oldC, +1)
				got := LikDeltaMove(gain, gsum, cover, w, h, oldC, newC)
				want := NaiveLikDeltaMove(gain, cover, w, h, oldC, newC)
				NaiveCoverAdd(cover, w, h, oldC, -1)
				if math.Abs(got-want) > diffTol {
					t.Fatalf("LikDeltaMove(%+v -> %+v) = %v, naive = %v", oldC, newC, got, want)
				}
			}
		})
	}
}

func TestLikDeltaMultiMatchesNaive(t *testing.T) {
	const w, h = 56, 48
	for _, kind := range diffKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(45)
			gain, gsum, cover := diffBuffers(r, w, h, 6, kind)
			for trial := 0; trial < 800; trial++ {
				nRem, nAdd := r.Intn(3), r.Intn(3)
				removed := make([]geom.Ellipse, nRem)
				added := make([]geom.Ellipse, nAdd)
				for i := range removed {
					removed[i] = diffShape(r, w, h, kind)
					NaiveCoverAdd(cover, w, h, removed[i], +1)
				}
				for i := range added {
					added[i] = diffShape(r, w, h, kind)
				}
				got := LikDeltaMulti(gain, gsum, cover, w, h, removed, added)
				want := NaiveLikDeltaMulti(gain, cover, w, h, removed, added)
				for i := range removed {
					NaiveCoverAdd(cover, w, h, removed[i], -1)
				}
				if math.Abs(got-want) > diffTol {
					t.Fatalf("LikDeltaMulti(rem %v, add %v) = %v, naive = %v", removed, added, got, want)
				}
			}
		})
	}
}

// TestCoverKernelsMatchNaiveExactly asserts bit-exact coverage: the span
// kernels must touch precisely the pixels the naive references touch.
func TestCoverKernelsMatchNaiveExactly(t *testing.T) {
	const w, h = 56, 48
	for _, kind := range diffKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(46)
			coverA := make([]int32, w*h) // scanline
			coverB := make([]int32, w*h) // naive
			live := make([]geom.Ellipse, 0, 32)
			for trial := 0; trial < 1200; trial++ {
				switch {
				case len(live) == 0 || r.Intn(3) == 0: // add
					c := diffShape(r, w, h, kind)
					live = append(live, c)
					CoverAdd(coverA, w, h, c, +1)
					NaiveCoverAdd(coverB, w, h, c, +1)
				case r.Intn(2) == 0: // remove
					i := r.Intn(len(live))
					c := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					CoverAdd(coverA, w, h, c, -1)
					NaiveCoverAdd(coverB, w, h, c, -1)
				default: // move
					i := r.Intn(len(live))
					oldC := live[i]
					var newC geom.Ellipse
					if r.Intn(2) == 0 {
						newC = resized(oldC.Translate(r.Uniform(-4, 4), r.Uniform(-4, 4)), r.Uniform(-1, 1))
					} else {
						newC = diffShape(r, w, h, kind)
					}
					live[i] = newC
					CoverMove(coverA, w, h, oldC, newC)
					NaiveCoverMove(coverB, w, h, oldC, newC)
				}
				for i := range coverA {
					if coverA[i] != coverB[i] {
						t.Fatalf("trial %d: cover mismatch at (%d,%d): scanline %d, naive %d",
							trial, i%w, i/w, coverA[i], coverB[i])
					}
				}
			}
		})
	}
}

// TestScanlineDeltasAreExactSums: on pristine coverage the scanline add
// delta must equal the plain sum of gains over the shape's span pixels —
// a guard against double-visiting or missing pixels.
func TestScanlineDeltasAreExactSums(t *testing.T) {
	const w, h = 40, 40
	for _, kind := range diffKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(47)
			gain := make([]float64, w*h)
			for i := range gain {
				gain[i] = r.Uniform(-1, 1)
			}
			gsum := BuildGainRowSums(gain, w, h)
			cover := make([]int32, w*h)
			for trial := 0; trial < 300; trial++ {
				c := diffShape(r, w, h, kind)
				want := 0.0
				geom.EllipseSpans(w, h, c, func(y, xa, xb int) {
					for x := xa; x < xb; x++ {
						want += gain[y*w+x]
					}
				})
				if got := LikDeltaAdd(gain, gsum, cover, w, h, c); math.Abs(got-want) > diffTol {
					t.Fatalf("LikDeltaAdd(%+v) = %v, span sum = %v", c, got, want)
				}
			}
		})
	}
}

// FuzzLikDeltaDifferential fuzzes one add/remove/move round against the
// naive references with arbitrary shape parameters (both families; the
// fuzzer may drive Rx == Ry onto the circle fast path and any rotation
// onto the quadratic path).
func FuzzLikDeltaDifferential(f *testing.F) {
	f.Add(12.0, 20.0, 6.0, 6.0, 0.0, 3.0, -2.0, 1.0)
	f.Add(30.0, 10.0, 9.0, 4.0, 0.7, -5.0, 4.0, -1.5)
	f.Add(-5.0, 50.0, 22.0, 3.0, 2.9, 8.0, 8.0, 0.4)
	f.Fuzz(func(t *testing.T, x, y, rx, ry, theta, dx, dy, dr float64) {
		const w, h = 48, 40
		for _, v := range []float64{x, y, rx, ry, theta, dx, dy, dr} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		// Keep the workload bounded: clamp into a generous envelope.
		clamp := func(v, lo, hi float64) float64 { return math.Min(math.Max(v, lo), hi) }
		e := geom.Ellipse{
			X:     clamp(x, -20, float64(w)+20),
			Y:     clamp(y, -20, float64(h)+20),
			Rx:    clamp(rx, 0, float64(w)),
			Ry:    clamp(ry, 0, float64(h)),
			Theta: clamp(theta, -10, 10),
		}
		r := rng.New(7)
		gain := make([]float64, w*h)
		for i := range gain {
			gain[i] = r.Uniform(-2, 2)
		}
		gsum := BuildGainRowSums(gain, w, h)
		cover := make([]int32, w*h)

		got := LikDeltaAdd(gain, gsum, cover, w, h, e)
		want := NaiveLikDeltaAdd(gain, cover, w, h, e)
		if math.Abs(got-want) > diffTol {
			t.Fatalf("LikDeltaAdd(%+v) = %v, naive = %v", e, got, want)
		}

		NaiveCoverAdd(cover, w, h, e, +1)
		moved := geom.Ellipse{
			X: clamp(e.X+dx, -20, float64(w)+20), Y: clamp(e.Y+dy, -20, float64(h)+20),
			Rx: clamp(e.Rx+dr, 0, float64(w)), Ry: clamp(e.Ry+dr, 0, float64(h)),
			Theta: e.Theta,
		}
		gotM := LikDeltaMove(gain, gsum, cover, w, h, e, moved)
		wantM := NaiveLikDeltaMove(gain, cover, w, h, e, moved)
		if math.Abs(gotM-wantM) > diffTol {
			t.Fatalf("LikDeltaMove(%+v -> %+v) = %v, naive = %v", e, moved, gotM, wantM)
		}

		coverSpan := make([]int32, w*h)
		CoverAdd(coverSpan, w, h, e, +1)
		coverNaive := make([]int32, w*h)
		NaiveCoverAdd(coverNaive, w, h, e, +1)
		for i := range coverSpan {
			if coverSpan[i] != coverNaive[i] {
				t.Fatalf("cover mismatch at (%d,%d) for %+v", i%w, i/w, e)
			}
		}
	})
}
