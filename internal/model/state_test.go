package model

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/rng"
)

func testImage(t *testing.T, w, h int, seed uint64) *imaging.Image {
	t.Helper()
	r := rng.New(seed)
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: w, H: h, Count: 6, MeanRadius: 8, RadiusStdDev: 1, Noise: 0.08,
	}, r)
	return scene.Image
}

func newTestState(t *testing.T, w, h int, seed uint64) *State {
	t.Helper()
	s, err := NewState(testImage(t, w, h, seed), DefaultParams(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(5, 10).Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{},
		func() Params { p := DefaultParams(5, 10); p.Lambda = 0; return p }(),
		func() Params { p := DefaultParams(5, 10); p.Noise = 0; return p }(),
		func() Params { p := DefaultParams(5, 10); p.MinRadius = 20; return p }(),
		func() Params { p := DefaultParams(5, 10); p.OverlapPenalty = -1; return p }(),
		func() Params { p := DefaultParams(5, 10); p.Foreground = 0; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestLogRadiusPDFNormalised(t *testing.T) {
	p := DefaultParams(5, 10)
	// Numerically integrate exp(LogRadiusPDF) over the support.
	const steps = 20000
	total := 0.0
	dh := (p.MaxRadius - p.MinRadius) / steps
	for i := 0; i < steps; i++ {
		r := p.MinRadius + (float64(i)+0.5)*dh
		total += math.Exp(p.LogRadiusPDF(r)) * dh
	}
	if math.Abs(total-1) > 1e-4 {
		t.Fatalf("radius prior integrates to %v", total)
	}
	if !math.IsInf(p.LogRadiusPDF(p.MinRadius-0.01), -1) {
		t.Fatal("density outside support not -Inf")
	}
}

func TestPixelGainSign(t *testing.T) {
	p := DefaultParams(5, 10)
	if p.PixelGain(p.Foreground) <= 0 {
		t.Fatal("foreground pixel should reward coverage")
	}
	if p.PixelGain(p.Background) >= 0 {
		t.Fatal("background pixel should punish coverage")
	}
	mid := (p.Foreground + p.Background) / 2
	if g := p.PixelGain(mid); math.Abs(g) > 1e-9 {
		t.Fatalf("midpoint gain = %v, want 0", g)
	}
}

func TestNewStateRejectsBadInput(t *testing.T) {
	if _, err := NewState(imaging.New(0, 0), DefaultParams(5, 10)); err == nil {
		t.Fatal("empty image accepted")
	}
	if _, err := NewState(imaging.New(10, 10), Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// bruteLik computes Σ gain over covered pixels directly.
func bruteLik(s *State) float64 {
	total := 0.0
	for i, c := range s.Cover {
		if c > 0 {
			total += s.Gain[i]
		}
	}
	return total
}

func TestAddRemoveRoundTrip(t *testing.T) {
	s := newTestState(t, 64, 64, 1)
	c := geom.Disc(30, 30, 8)
	dLik, dPrior := s.EvalAdd(c)
	id := s.ApplyAdd(c, dLik, dPrior)
	if s.Cfg.Len() != 1 {
		t.Fatal("circle not added")
	}
	dLik2, dPrior2 := s.EvalRemove(id)
	// Removing must exactly undo adding.
	if math.Abs(dLik+dLik2) > 1e-9 || math.Abs(dPrior+dPrior2) > 1e-9 {
		t.Fatalf("add/remove deltas not inverse: lik %v vs %v, prior %v vs %v",
			dLik, dLik2, dPrior, dPrior2)
	}
	s.ApplyRemove(id, dLik2, dPrior2)
	if math.Abs(s.LogPost()) > 1e-9 {
		t.Fatalf("posterior not restored: %v", s.LogPost())
	}
	likErr, priorErr, coverOK := s.CheckConsistency()
	if likErr > 1e-9 || priorErr > 1e-9 || !coverOK {
		t.Fatalf("inconsistent after roundtrip: %v %v %v", likErr, priorErr, coverOK)
	}
}

func TestEvalAddMatchesBrute(t *testing.T) {
	s := newTestState(t, 64, 64, 2)
	// Preload two circles.
	for _, c := range []geom.Ellipse{geom.Disc(20, 20, 7), geom.Disc(40, 40, 9)} {
		dl, dp := s.EvalAdd(c)
		s.ApplyAdd(c, dl, dp)
	}
	before := bruteLik(s)
	c := geom.Disc(25, 25, 8) // overlaps the first circle
	dLik, _ := s.EvalAdd(c)
	dl, dp := s.EvalAdd(c)
	s.ApplyAdd(c, dl, dp)
	after := bruteLik(s)
	if math.Abs((after-before)-dLik) > 1e-9 {
		t.Fatalf("EvalAdd delta %v, brute force %v", dLik, after-before)
	}
}

func TestEvalMoveMatchesBrute(t *testing.T) {
	s := newTestState(t, 64, 64, 3)
	var ids []int
	for _, c := range []geom.Ellipse{
		geom.Disc(20, 20, 7), geom.Disc(30, 25, 6), geom.Disc(45, 45, 8),
	} {
		dl, dp := s.EvalAdd(c)
		ids = append(ids, s.ApplyAdd(c, dl, dp))
	}
	before := bruteLik(s)
	newC := geom.Disc(24, 22, 7.5) // overlapping shift+resize
	dLik, dPrior := s.EvalMove(ids[0], newC)
	s.ApplyMove(ids[0], newC, dLik, dPrior)
	after := bruteLik(s)
	if math.Abs((after-before)-dLik) > 1e-9 {
		t.Fatalf("EvalMove delta %v, brute force %v", dLik, after-before)
	}
	likErr, priorErr, coverOK := s.CheckConsistency()
	if likErr > 1e-8 || priorErr > 1e-8 || !coverOK {
		t.Fatalf("inconsistent after move: %v %v %v", likErr, priorErr, coverOK)
	}
}

func TestEvalMoveOutOfBounds(t *testing.T) {
	s := newTestState(t, 64, 64, 4)
	dl, dp := s.EvalAdd(geom.Disc(30, 30, 8))
	id := s.ApplyAdd(geom.Disc(30, 30, 8), dl, dp)
	if _, dPrior := s.EvalMove(id, geom.Disc(-5, 30, 8)); !math.IsInf(dPrior, -1) {
		t.Fatal("out-of-bounds move not vetoed")
	}
	if _, dPrior := s.EvalMove(id, geom.Disc(30, 30, 100)); !math.IsInf(dPrior, -1) {
		t.Fatal("out-of-support radius not vetoed")
	}
}

func TestEvalAddOutOfBounds(t *testing.T) {
	s := newTestState(t, 64, 64, 5)
	if _, dPrior := s.EvalAdd(geom.Disc(70, 30, 8)); !math.IsInf(dPrior, -1) {
		t.Fatal("out-of-bounds add not vetoed")
	}
}

// The central invariant: after an arbitrary random sequence of applied
// operations, the cached posterior equals a from-scratch recomputation and
// the coverage grid matches exactly.
func TestIncrementalConsistencyFuzz(t *testing.T) {
	s := newTestState(t, 96, 96, 6)
	r := rng.New(99)
	p := s.P
	for step := 0; step < 3000; step++ {
		op := r.Intn(3)
		switch {
		case op == 0 || s.Cfg.Len() == 0: // add
			c := geom.Disc(
				r.Uniform(0, 96), r.Uniform(0, 96),
				r.TruncNormal(p.MeanRadius, p.RadiusStdDev, p.MinRadius, p.MaxRadius),
			)
			dl, dp := s.EvalAdd(c)
			if !math.IsInf(dp, -1) {
				s.ApplyAdd(c, dl, dp)
			}
		case op == 1: // remove
			id := s.Cfg.IDAt(r.Intn(s.Cfg.Len()))
			dl, dp := s.EvalRemove(id)
			s.ApplyRemove(id, dl, dp)
		default: // move
			id := s.Cfg.IDAt(r.Intn(s.Cfg.Len()))
			old := s.Cfg.Get(id)
			newC := geom.Disc(
				old.X+r.NormalAt(0, 3),
				old.Y+r.NormalAt(0, 3),
				old.Rx+r.NormalAt(0, 0.5),
			)
			dl, dp := s.EvalMove(id, newC)
			if !math.IsInf(dp, -1) {
				s.ApplyMove(id, newC, dl, dp)
			}
		}
	}
	likErr, priorErr, coverOK := s.CheckConsistency()
	if likErr > 1e-6 || priorErr > 1e-6 {
		t.Fatalf("cache drift after fuzz: lik %v prior %v", likErr, priorErr)
	}
	if !coverOK {
		t.Fatal("coverage grid diverged from configuration")
	}
}

func TestOverlapSumExcludes(t *testing.T) {
	s := newTestState(t, 64, 64, 7)
	a := geom.Disc(30, 30, 8)
	b := geom.Disc(36, 30, 8)
	dl, dp := s.EvalAdd(a)
	idA := s.ApplyAdd(a, dl, dp)
	dl, dp = s.EvalAdd(b)
	s.ApplyAdd(b, dl, dp)
	want := a.OverlapArea(b)
	if got := s.OverlapSum(a, idA); math.Abs(got-want) > 1e-9 {
		t.Fatalf("OverlapSum excl self = %v, want %v", got, want)
	}
	if got := s.OverlapSum(a, -1); math.Abs(got-(want+a.Area())) > 1e-9 {
		t.Fatalf("OverlapSum incl self = %v, want %v", got, want+a.Area())
	}
}

func TestCommitMovedKeepsIndexConsistent(t *testing.T) {
	s := newTestState(t, 96, 96, 8)
	c := geom.Disc(20, 20, 8)
	dl, dp := s.EvalAdd(c)
	id := s.ApplyAdd(c, dl, dp)
	// Simulate an external (worker) move: cover + deltas handled by the
	// worker through the state's Field (so the occupancy counters stay in
	// sync), then committed.
	newC := geom.Disc(70, 70, 8)
	dLik := s.F.LikDeltaMove(c, newC)
	s.F.CoverMove(c, newC)
	dPrior := s.P.LogShapePrior(newC) - s.P.LogShapePrior(c)
	s.CommitMoved(id, newC)
	s.AddDeltas(dLik, dPrior)
	likErr, priorErr, coverOK := s.CheckConsistency()
	if likErr > 1e-9 || priorErr > 1e-9 || !coverOK {
		t.Fatalf("CommitMoved inconsistent: %v %v %v", likErr, priorErr, coverOK)
	}
	// The index must find the circle at its new home.
	found := false
	s.Index.QueryCircle(newC, func(got int) bool { found = got == id; return !found })
	if !found {
		t.Fatal("index lost the moved circle")
	}
}

func TestLikelihoodPrefersTruth(t *testing.T) {
	// The posterior must score the true configuration above an empty or
	// displaced one.
	r := rng.New(11)
	scene := imaging.Synthesize(imaging.SceneSpec{
		W: 96, H: 96, Count: 4, MeanRadius: 9, RadiusStdDev: 0.5,
		Noise: 0.05, MinSeparation: 1.2,
	}, r)
	s, err := NewState(scene.Image, DefaultParams(4, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range scene.Truth {
		dl, dp := s.EvalAdd(c)
		if dl <= 0 {
			t.Fatalf("true circle %+v has non-positive likelihood gain %v", c, dl)
		}
		s.ApplyAdd(c, dl, dp)
	}
	atTruth := s.LogPost()
	// Shift every circle away: posterior must drop.
	s.Cfg.ForEach(func(id int, c geom.Ellipse) {
		moved := c.Translate(2.5*c.Rx, 0)
		if moved.X >= float64(s.W) {
			moved = c.Translate(-2.5*c.Rx, 0)
		}
		dl, dp := s.EvalMove(id, moved)
		if !math.IsInf(dp, -1) {
			s.ApplyMove(id, moved, dl, dp)
		}
	})
	if s.LogPost() >= atTruth {
		t.Fatalf("displaced configuration scored %v >= truth %v", s.LogPost(), atTruth)
	}
}

func TestAppendSnapshot(t *testing.T) {
	s := newTestState(t, 64, 64, 12)
	c := geom.Disc(30, 30, 8)
	dl, dp := s.EvalAdd(c)
	id := s.ApplyAdd(c, dl, dp)
	snap := s.AppendSnapshot(nil)
	if len(snap) != 1 || snap[0] != (IDCircle{ID: id, C: c}) {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Reuse must not allocate beyond the first fill and must overwrite.
	snap = s.AppendSnapshot(snap[:0])
	if len(snap) != 1 || snap[0].ID != id {
		t.Fatalf("reused snapshot = %+v", snap)
	}
}

func TestCoverAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cover := make([]int32, 64*64)
	CoverAdd(cover, 64, 64, geom.Disc(30, 30, 5), -1)
}

func TestLocalityMargin(t *testing.T) {
	p := DefaultParams(5, 10)
	if p.LocalityMargin() <= p.MaxRadius {
		t.Fatal("margin must exceed MaxRadius")
	}
}
