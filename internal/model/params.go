package model

import (
	"math"

	"repro/internal/geom"
)

// Params collects the prior and likelihood hyper-parameters of the
// posterior. The zero value is not usable; call Validate (or construct via
// DefaultParams) before use.
type Params struct {
	// Shape selects the artifact family: geom.KindDisc (the paper's
	// workload; every feature keeps Rx == Ry and the prior is the
	// original radius prior) or geom.KindEllipse (independent
	// truncated-Normal priors on both semi-axes and a uniform rotation
	// prior on [0, π)). The zero value is KindDisc, so existing
	// disc-only callers are unaffected.
	Shape geom.ShapeKind

	// Lambda is the expected artifact count (Poisson prior). The paper
	// obtains it from prior knowledge or from the eq. 5 estimate.
	Lambda float64

	// Radius prior: TruncNormal(MeanRadius, RadiusStdDev) on
	// [MinRadius, MaxRadius].
	MeanRadius   float64
	RadiusStdDev float64
	MinRadius    float64
	MaxRadius    float64

	// OverlapPenalty is γ in the prior term exp(-γ · Σ pairwise overlap
	// area): the "degree to which overlap is tolerated" (§III).
	OverlapPenalty float64

	// Likelihood: pixels are N(Foreground, Noise²) where covered and
	// N(Background, Noise²) elsewhere.
	Foreground float64
	Background float64
	Noise      float64
}

// DefaultParams returns parameters matching the synthetic scenes of
// imaging.SceneSpec with the given expected count and mean radius.
func DefaultParams(lambda, meanRadius float64) Params {
	return Params{
		Lambda:         lambda,
		MeanRadius:     meanRadius,
		RadiusStdDev:   meanRadius * 0.15,
		MinRadius:      meanRadius * 0.4,
		MaxRadius:      meanRadius * 1.8,
		OverlapPenalty: 0.5,
		Foreground:     0.9,
		Background:     0.1,
		Noise:          0.15,
	}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case !p.Shape.Valid():
		return errParams("unknown shape kind")
	case p.Lambda <= 0:
		return errParams("Lambda must be positive")
	case p.MeanRadius <= 0:
		return errParams("MeanRadius must be positive")
	case p.RadiusStdDev <= 0:
		return errParams("RadiusStdDev must be positive")
	case p.MinRadius <= 0 || p.MaxRadius <= p.MinRadius:
		return errParams("need 0 < MinRadius < MaxRadius")
	case p.Noise <= 0:
		return errParams("Noise must be positive")
	case p.OverlapPenalty < 0:
		return errParams("OverlapPenalty must be non-negative")
	case p.Foreground <= p.Background:
		return errParams("Foreground must exceed Background")
	}
	return nil
}

type errParams string

func (e errParams) Error() string { return "model: invalid params: " + string(e) }

// LogRadiusPDF returns the log density of the truncated-Normal radius
// prior at r, including normalisation (needed for dimension-changing
// moves, where the constants do not cancel). It returns -Inf outside
// [MinRadius, MaxRadius].
func (p Params) LogRadiusPDF(r float64) float64 {
	if r < p.MinRadius || r > p.MaxRadius {
		return math.Inf(-1)
	}
	z := (r - p.MeanRadius) / p.RadiusStdDev
	logNorm := -0.5*math.Log(2*math.Pi) - math.Log(p.RadiusStdDev)
	// Truncation mass Φ(b)-Φ(a).
	a := (p.MinRadius - p.MeanRadius) / p.RadiusStdDev
	b := (p.MaxRadius - p.MeanRadius) / p.RadiusStdDev
	mass := 0.5 * (math.Erf(b/math.Sqrt2) - math.Erf(a/math.Sqrt2))
	if mass <= 0 {
		return math.Inf(-1)
	}
	return -0.5*z*z + logNorm - math.Log(mass)
}

// logPiInv is log(1/π), the uniform rotation-prior density over [0, π)
// carried by every ellipse-mode feature.
var logPiInv = -math.Log(math.Pi)

// LogShapePrior returns the log density of the per-feature shape prior
// at e, excluding the position term (uniform 1/A, accounted separately)
// and the pairwise overlap penalty. Disc mode evaluates the original
// truncated-Normal radius prior on the (shared) radius; ellipse mode
// places independent copies of that prior on both semi-axes plus the
// uniform rotation prior. It returns -Inf outside the prior's support.
// Birth and replace proposals draw from exactly this distribution, so
// the terms cancel in their acceptance ratios.
func (p Params) LogShapePrior(e geom.Ellipse) float64 {
	if p.Shape == geom.KindDisc {
		return p.LogRadiusPDF(e.Rx)
	}
	return p.LogRadiusPDF(e.Rx) + p.LogRadiusPDF(e.Ry) + logPiInv
}

// ShapeInSupport reports whether e lies in the prior's shape support:
// both semi-axes inside the truncation range (for discs they coincide).
func (p Params) ShapeInSupport(e geom.Ellipse) bool {
	if e.Rx < p.MinRadius || e.Rx > p.MaxRadius {
		return false
	}
	if p.Shape == geom.KindDisc {
		return true
	}
	return e.Ry >= p.MinRadius && e.Ry <= p.MaxRadius
}

// PixelGain returns the log-likelihood gain from covering a pixel of
// intensity v:
//
//	log N(v; fg, σ) − log N(v; bg, σ) = [(v−bg)² − (v−fg)²] / (2σ²).
//
// The total (relative) log-likelihood of a configuration is the sum of
// PixelGain over covered pixels; everything else is an additive constant.
func (p Params) PixelGain(v float64) float64 {
	db := v - p.Background
	df := v - p.Foreground
	return (db*db - df*df) / (2 * p.Noise * p.Noise)
}

// LocalityMargin returns the halo distance (in pixels) beyond a circle's
// radius within which its prior/likelihood evaluation can depend on other
// image content: MaxRadius for the pairwise overlap term plus one pixel of
// antialiasing slack. §V uses this to decide which features a partition
// worker may modify.
func (p Params) LocalityMargin() float64 { return p.MaxRadius + 1 }
