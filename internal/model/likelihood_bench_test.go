package model

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Kernel microbenchmarks: each LikDelta*/Cover* kernel benchmarked in its
// production scanline form — the Field layer with block occupancy
// counters, exactly what every engine runs — against the retained naive
// bounding-box reference, on the workload-typical disc size (r = 10, the
// bead/nuclei scale). The scanline/naive ratio is the kernel speedup
// tracked by BENCH_*.json.

func benchBuffers(b *testing.B, w, h int) (gain, gsum []float64, cover []int32) {
	b.Helper()
	r := rng.New(7)
	gain = make([]float64, w*h)
	for i := range gain {
		gain[i] = r.Uniform(-2, 2)
	}
	cover = make([]int32, w*h)
	for k := 0; k < 40; k++ {
		NaiveCoverAdd(cover, w, h, geom.Disc(
			r.Uniform(0, float64(w)), r.Uniform(0, float64(h)),
			r.Uniform(6, 14),
		), +1)
	}
	return gain, BuildGainRowSums(gain, w, h), cover
}

// benchField wraps the shared bench buffers in the production kernel
// layer: occupancy counters built, exactly as NewState would.
func benchField(b *testing.B, w, h int) (*Field, []float64, []int32) {
	b.Helper()
	gain, gsum, cover := benchBuffers(b, w, h)
	f := &Field{W: w, H: h, Gain: gain, GainSum: gsum, Cover: cover}
	f.InitOcc()
	return f, gain, cover
}

func BenchmarkLikDeltaAdd(b *testing.B) {
	f, gain, cover := benchField(b, 512, 512)
	c := geom.Disc(256.3, 255.7, 10)
	var sink float64
	b.Run("scanline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += f.LikDeltaAdd(c)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += NaiveLikDeltaAdd(gain, cover, 512, 512, c)
		}
	})
	_ = sink
}

func BenchmarkLikDeltaRemove(b *testing.B) {
	f, gain, cover := benchField(b, 512, 512)
	c := geom.Disc(256.3, 255.7, 10)
	f.CoverAdd(c, +1)
	var sink float64
	b.Run("scanline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += f.LikDeltaRemove(c)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += NaiveLikDeltaRemove(gain, cover, 512, 512, c)
		}
	})
	_ = sink
}

func BenchmarkLikDeltaMove(b *testing.B) {
	f, gain, cover := benchField(b, 512, 512)
	oldC := geom.Disc(256.3, 255.7, 10)
	newC := oldC.Translate(1.7, -2.1) // typical accepted shift: boxes overlap
	f.CoverAdd(oldC, +1)
	var sink float64
	b.Run("scanline", func(b *testing.B) {
		b.ReportAllocs()
		var ms MoveSpans
		for i := 0; i < b.N; i++ {
			sink += f.LikDeltaMovePrepared(oldC, newC, &ms)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += NaiveLikDeltaMove(gain, cover, 512, 512, oldC, newC)
		}
	})
	_ = sink
}

func BenchmarkLikDeltaMulti(b *testing.B) {
	f, gain, cover := benchField(b, 512, 512)
	// Split-shaped exchange: one disc out, two half-area discs in.
	removed := []geom.Ellipse{geom.Disc(256.3, 255.7, 10)}
	added := []geom.Ellipse{
		geom.Disc(252.1, 254.2, 7.2),
		geom.Disc(260.8, 257.9, 6.9),
	}
	f.CoverAdd(removed[0], +1)
	var sink float64
	b.Run("scanline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += f.LikDeltaMulti(removed, added)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += NaiveLikDeltaMulti(gain, cover, 512, 512, removed, added)
		}
	})
	_ = sink
}

func BenchmarkCoverMove(b *testing.B) {
	f, _, cover := benchField(b, 512, 512)
	oldC := geom.Disc(256.3, 255.7, 10)
	newC := oldC.Translate(1.7, -2.1)
	f.CoverAdd(oldC, +1)
	// scanline measures the production apply: an accepted move replays
	// the span tables its evaluation prepared (State.EvalMoveCached →
	// ApplyMoveCached), so no row span is computed twice. cold recomputes
	// the spans, the pre-span-cache behaviour.
	b.Run("scanline", func(b *testing.B) {
		b.ReportAllocs()
		var there, back MoveSpans
		f.LikDeltaMovePrepared(oldC, newC, &there)
		f.LikDeltaMovePrepared(newC, oldC, &back)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Move there and back: leaves cover unchanged between pairs.
			f.CoverMovePrepared(oldC, newC, &there)
			f.CoverMovePrepared(newC, oldC, &back)
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.CoverMove(oldC, newC)
			f.CoverMove(newC, oldC)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NaiveCoverMove(cover, 512, 512, oldC, newC)
			NaiveCoverMove(cover, 512, 512, newC, oldC)
		}
	})
}

// Ellipse-kernel microbenchmarks: the same workload-typical size with a
// 0.6 axis ratio and a rotation, exercising the quadratic span path the
// generic shape layer added. Tracked in BENCH_*.json alongside the disc
// kernels so the perf trajectory covers both families.

func benchEllipse() geom.Ellipse {
	return geom.Ellipse{X: 256.3, Y: 255.7, Rx: 12, Ry: 7.2, Theta: 0.6}
}

func BenchmarkLikDeltaAddEllipse(b *testing.B) {
	f, gain, cover := benchField(b, 512, 512)
	e := benchEllipse()
	var sink float64
	b.Run("scanline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += f.LikDeltaAdd(e)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += NaiveLikDeltaAdd(gain, cover, 512, 512, e)
		}
	})
	_ = sink
}

func BenchmarkLikDeltaMoveEllipse(b *testing.B) {
	f, gain, cover := benchField(b, 512, 512)
	oldC := benchEllipse()
	newC := oldC.Translate(1.7, -2.1)
	f.CoverAdd(oldC, +1)
	var sink float64
	b.Run("scanline", func(b *testing.B) {
		b.ReportAllocs()
		var ms MoveSpans
		for i := 0; i < b.N; i++ {
			sink += f.LikDeltaMovePrepared(oldC, newC, &ms)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += NaiveLikDeltaMove(gain, cover, 512, 512, oldC, newC)
		}
	})
	_ = sink
}

func BenchmarkCoverMoveEllipse(b *testing.B) {
	f, _, cover := benchField(b, 512, 512)
	oldC := benchEllipse()
	newC := oldC.Translate(1.7, -2.1)
	newC.Theta = 0.7
	f.CoverAdd(oldC, +1)
	b.Run("scanline", func(b *testing.B) {
		b.ReportAllocs()
		var there, back MoveSpans
		f.LikDeltaMovePrepared(oldC, newC, &there)
		f.LikDeltaMovePrepared(newC, oldC, &back)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.CoverMovePrepared(oldC, newC, &there)
			f.CoverMovePrepared(newC, oldC, &back)
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.CoverMove(oldC, newC)
			f.CoverMove(newC, oldC)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NaiveCoverMove(cover, 512, 512, oldC, newC)
			NaiveCoverMove(cover, 512, 512, newC, oldC)
		}
	})
}

// BenchmarkFusedMoveCover tracks the one-shot fused eval+apply walk
// (unconditional moves price and write each symmetric-difference segment
// once) against its split equivalent.
func BenchmarkFusedMoveCover(b *testing.B) {
	f, _, _ := benchField(b, 512, 512)
	oldC := geom.Disc(256.3, 255.7, 10)
	newC := oldC.Translate(1.7, -2.1)
	f.CoverAdd(oldC, +1)
	var sink float64
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += f.FusedMoveCover(oldC, newC)
			sink += f.FusedMoveCover(newC, oldC)
		}
	})
	b.Run("split", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += f.LikDeltaMove(oldC, newC)
			f.CoverMove(oldC, newC)
			sink += f.LikDeltaMove(newC, oldC)
			f.CoverMove(newC, oldC)
		}
	})
	_ = sink
}
