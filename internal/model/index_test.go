package model

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestIndexInsertQuery(t *testing.T) {
	ix := NewBucketIndex(geom.Rect{X1: 100, Y1: 100}, 10)
	ix.Insert(1, 50, 50)
	ix.Insert(2, 10, 10)
	found := map[int]bool{}
	ix.QueryRect(geom.Rect{X0: 40, Y0: 40, X1: 60, Y1: 60}, func(id int) bool {
		found[id] = true
		return true
	})
	if !found[1] {
		t.Fatal("entry at (50,50) not found")
	}
}

func TestIndexRemove(t *testing.T) {
	ix := NewBucketIndex(geom.Rect{X1: 100, Y1: 100}, 10)
	ix.Insert(1, 50, 50)
	ix.Remove(1, 50, 50)
	if ix.Len() != 0 {
		t.Fatal("entry not removed")
	}
}

func TestIndexRemoveAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ix := NewBucketIndex(geom.Rect{X1: 100, Y1: 100}, 10)
	ix.Remove(7, 50, 50)
}

func TestIndexQueryCircleBruteForce(t *testing.T) {
	const maxR = 8
	bounds := geom.Rect{X1: 200, Y1: 150}
	ix := NewBucketIndex(bounds, maxR)
	r := rng.New(2)
	var circles []geom.Ellipse
	for i := 0; i < 200; i++ {
		c := geom.Disc(r.Uniform(0, 200), r.Uniform(0, 150), r.Uniform(1, maxR))
		circles = append(circles, c)
		ix.Insert(i, c.X, c.Y)
	}
	for trial := 0; trial < 500; trial++ {
		q := geom.Disc(r.Uniform(0, 200), r.Uniform(0, 150), r.Uniform(1, maxR))
		got := map[int]bool{}
		ix.QueryCircle(q, func(id int) bool { got[id] = true; return true })
		// Every circle that truly intersects q must be returned (no
		// false negatives; false positives are allowed).
		for i, c := range circles {
			if q.Intersects(c) && !got[i] {
				t.Fatalf("missed intersecting circle %d: q=%+v c=%+v", i, q, c)
			}
		}
	}
}

func TestIndexMove(t *testing.T) {
	ix := NewBucketIndex(geom.Rect{X1: 100, Y1: 100}, 5)
	ix.Insert(1, 10, 10)
	ix.Move(1, 10, 10, 90, 90)
	found := false
	ix.QueryRect(geom.Rect{X0: 85, Y0: 85, X1: 95, Y1: 95}, func(id int) bool {
		found = id == 1
		return true
	})
	if !found {
		t.Fatal("moved entry not found at new location")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after move", ix.Len())
	}
}

func TestIndexMoveWithinBucket(t *testing.T) {
	ix := NewBucketIndex(geom.Rect{X1: 100, Y1: 100}, 10)
	ix.Insert(1, 10, 10)
	ix.Move(1, 10, 10, 11, 11) // same bucket
	if ix.Len() != 1 {
		t.Fatal("within-bucket move corrupted index")
	}
}

func TestIndexEarlyStop(t *testing.T) {
	ix := NewBucketIndex(geom.Rect{X1: 100, Y1: 100}, 50)
	for i := 0; i < 10; i++ {
		ix.Insert(i, 50, 50)
	}
	calls := 0
	ix.QueryRect(geom.Rect{X1: 100, Y1: 100}, func(id int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestIndexEdgeCoordinates(t *testing.T) {
	ix := NewBucketIndex(geom.Rect{X1: 100, Y1: 100}, 10)
	// Coordinates on/past the boundary must clamp, not panic.
	ix.Insert(1, 100, 100)
	ix.Insert(2, -5, -5)
	ix.Remove(1, 100, 100)
	ix.Remove(2, -5, -5)
}

func TestIndexPanicsOnBadConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty bounds": func() { NewBucketIndex(geom.Rect{}, 5) },
		"zero radius":  func() { NewBucketIndex(geom.Rect{X1: 1, Y1: 1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
