package model

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// randCircle draws a circle inside the image with a prior-supported
// radius.
func randCircle(r *rng.RNG, s *State) geom.Ellipse {
	return geom.Disc(
		r.Uniform(0, float64(s.W)),
		r.Uniform(0, float64(s.H)),
		r.Uniform(s.P.MinRadius, s.P.MaxRadius),
	)
}

func seedCircles(t *testing.T, s *State, r *rng.RNG, n int) []int {
	t.Helper()
	ids := make([]int, 0, n)
	for len(ids) < n {
		c := randCircle(r, s)
		dl, dp := s.EvalAdd(c)
		if math.IsInf(dp, -1) {
			continue
		}
		ids = append(ids, s.ApplyAdd(c, dl, dp))
	}
	return ids
}

// EvalExchange of a single addition must agree with EvalAdd, and of a
// single removal with EvalRemove.
func TestExchangeAgreesWithSingleOps(t *testing.T) {
	s := newTestState(t, 96, 96, 31)
	r := rng.New(5)
	seedCircles(t, s, r, 6)
	for trial := 0; trial < 200; trial++ {
		c := randCircle(r, s)
		aLik, aPrior := s.EvalAdd(c)
		xLik, xPrior := s.EvalExchange(nil, []geom.Ellipse{c})
		if math.Abs(aLik-xLik) > 1e-9 || math.Abs(aPrior-xPrior) > 1e-9 {
			t.Fatalf("add vs exchange mismatch: (%v,%v) vs (%v,%v)", aLik, aPrior, xLik, xPrior)
		}
		id := s.Cfg.IDAt(r.Intn(s.Cfg.Len()))
		rLik, rPrior := s.EvalRemove(id)
		xLik, xPrior = s.EvalExchange([]int{id}, nil)
		if math.Abs(rLik-xLik) > 1e-9 || math.Abs(rPrior-xPrior) > 1e-9 {
			t.Fatalf("remove vs exchange mismatch: (%v,%v) vs (%v,%v)", rLik, rPrior, xLik, xPrior)
		}
	}
}

// Applying an exchange and then the exact reverse exchange must restore
// the posterior and keep every cache consistent.
func TestExchangeRoundTrip(t *testing.T) {
	s := newTestState(t, 96, 96, 32)
	r := rng.New(6)
	seedCircles(t, s, r, 8)
	for trial := 0; trial < 100; trial++ {
		before := s.LogPost()
		// Replace two random circles with one, then undo.
		i := s.Cfg.IDAt(r.Intn(s.Cfg.Len()))
		j := i
		for j == i {
			j = s.Cfg.IDAt(r.Intn(s.Cfg.Len()))
		}
		ci, cj := s.Cfg.Get(i), s.Cfg.Get(j)
		merged := randCircle(r, s)
		dl, dp := s.EvalExchange([]int{i, j}, []geom.Ellipse{merged})
		if math.IsInf(dp, -1) {
			continue
		}
		newIDs := s.ApplyExchange([]int{i, j}, []geom.Ellipse{merged}, dl, dp)
		if len(newIDs) != 1 {
			t.Fatalf("got %d new IDs", len(newIDs))
		}
		rl, rp := s.EvalExchange(newIDs, []geom.Ellipse{ci, cj})
		if math.Abs(dl+rl) > 1e-6 || math.Abs(dp+rp) > 1e-6 {
			t.Fatalf("exchange deltas not inverse: %v+%v, %v+%v", dl, rl, dp, rp)
		}
		s.ApplyExchange(newIDs, []geom.Ellipse{ci, cj}, rl, rp)
		if math.Abs(s.LogPost()-before) > 1e-6 {
			t.Fatalf("posterior not restored: %v vs %v", s.LogPost(), before)
		}
	}
	likErr, priorErr, coverOK := s.CheckConsistency()
	if likErr > 1e-6 || priorErr > 1e-6 || !coverOK {
		t.Fatalf("inconsistent after exchange roundtrips: %v %v %v", likErr, priorErr, coverOK)
	}
}

// LikDeltaMulti must agree with sequentially composed single-circle
// operations actually applied to a scratch state.
func TestLikDeltaMultiMatchesComposition(t *testing.T) {
	s := newTestState(t, 96, 96, 33)
	r := rng.New(7)
	ids := seedCircles(t, s, r, 6)
	for trial := 0; trial < 100; trial++ {
		// Random exchange: remove up to 2, add up to 2.
		nRem := 1 + r.Intn(2)
		nAdd := 1 + r.Intn(2)
		remIDs := make([]int, 0, nRem)
		for _, k := range r.Perm(len(ids))[:nRem] {
			remIDs = append(remIDs, ids[k])
		}
		var added []geom.Ellipse
		for i := 0; i < nAdd; i++ {
			added = append(added, randCircle(r, s))
		}
		got := LikDeltaMulti(s.Gain, s.GainSum, s.Cover, s.W, s.H, circlesOf(s, remIDs), added)

		// Compose on scratch copies of the cover buffer.
		cover := append([]int32(nil), s.Cover...)
		want := 0.0
		for _, id := range remIDs {
			c := s.Cfg.Get(id)
			want += LikDeltaRemove(s.Gain, s.GainSum, cover, s.W, s.H, c)
			CoverAdd(cover, s.W, s.H, c, -1)
		}
		for _, c := range added {
			want += LikDeltaAdd(s.Gain, s.GainSum, cover, s.W, s.H, c)
			CoverAdd(cover, s.W, s.H, c, +1)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("LikDeltaMulti = %v, composed = %v", got, want)
		}
	}
}

func circlesOf(s *State, ids []int) []geom.Ellipse {
	out := make([]geom.Ellipse, len(ids))
	for i, id := range ids {
		out[i] = s.Cfg.Get(id)
	}
	return out
}

// Disjoint-box moves (the replace fix) must agree with the general path
// and stay O(discs): verify delta correctness for far-apart relocations.
func TestLikDeltaMoveDisjointBoxes(t *testing.T) {
	s := newTestState(t, 128, 128, 34)
	r := rng.New(8)
	seedCircles(t, s, r, 4)
	for trial := 0; trial < 200; trial++ {
		id := s.Cfg.IDAt(r.Intn(s.Cfg.Len()))
		oldC := s.Cfg.Get(id)
		// Far corner relocation: bounding boxes disjoint.
		newC := geom.Disc(
			math.Mod(oldC.X+64, 128), math.Mod(oldC.Y+64, 128),
			r.Uniform(s.P.MinRadius, s.P.MaxRadius),
		)
		got := LikDeltaMove(s.Gain, s.GainSum, s.Cover, s.W, s.H, oldC, newC)
		// Compose remove+add on a scratch buffer.
		cover := append([]int32(nil), s.Cover...)
		want := LikDeltaRemove(s.Gain, s.GainSum, cover, s.W, s.H, oldC)
		CoverAdd(cover, s.W, s.H, oldC, -1)
		want += LikDeltaAdd(s.Gain, s.GainSum, cover, s.W, s.H, newC)
		CoverAdd(cover, s.W, s.H, newC, +1)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("disjoint move delta %v, composed %v", got, want)
		}
		// And CoverMove must equal the composition.
		cm := append([]int32(nil), s.Cover...)
		CoverMove(cm, s.W, s.H, oldC, newC)
		for k := range cm {
			if cm[k] != cover[k] {
				t.Fatal("CoverMove disagrees with remove+add composition")
			}
		}
	}
}

func TestCountNearAndPartners(t *testing.T) {
	s := newTestState(t, 96, 96, 35)
	for _, c := range []geom.Ellipse{
		geom.Disc(30, 30, 6), geom.Disc(36, 30, 6), geom.Disc(80, 80, 6),
	} {
		dl, dp := s.EvalAdd(c)
		s.ApplyAdd(c, dl, dp)
	}
	first := s.Cfg.IDAt(0)
	c := s.Cfg.Get(first)
	got := s.CountNear(c.X, c.Y, 15, first)
	want := len(s.PartnersNear(c.X, c.Y, 15, first))
	if got != want {
		t.Fatalf("CountNear %d != len(PartnersNear) %d", got, want)
	}
	if n := s.CountNear(5, 5, 3, -1); n != 0 {
		t.Fatalf("empty neighbourhood count = %d", n)
	}
}
