package model

import (
	"math"

	"repro/internal/geom"
	"repro/internal/imaging"
)

// State is a full posterior evaluation context: the filtered image's gain
// buffer, the live configuration, per-pixel coverage counts, a spatial
// index, and cached relative log-likelihood / log-prior. All Eval*
// methods are read-only; the corresponding Apply* methods mutate the
// state and keep every cache consistent.
//
// The cached values are *relative*: additive constants that are identical
// for every configuration (per-pixel Gaussian normalisers, the Poisson
// −λ term) are dropped. Ratios between configurations — all MCMC ever
// needs — are unaffected.
type State struct {
	W, H int
	P    Params

	// Gain is the per-pixel log-likelihood gain of coverage; immutable
	// after construction.
	Gain []float64
	// GainSum holds per-row prefix sums of Gain (BuildGainRowSums);
	// immutable after construction. The scanline likelihood kernels use
	// it to price whole spans in O(1).
	GainSum []float64
	// Cover holds per-pixel coverage counts. Partition workers mutate
	// disjoint regions of this buffer during parallel local phases.
	Cover []int32

	// F is the batched kernel layer viewing Gain/GainSum/Cover, with 8×8
	// block occupancy counters kept in sync with Cover. All coverage
	// mutations must flow through F once the state is built, or the
	// counters (and with them the kernels' scan-skip decisions) go stale.
	F Field
	// Pyr is the static coarse level of the coarse-to-fine likelihood
	// (block-decimated gain aggregates; see pyramid.go). Built once from
	// Gain, never updated.
	Pyr *Pyramid

	Cfg   *Config
	Index *BucketIndex

	logLik   float64
	logPrior float64
	logArea  float64
}

// NewState builds a state over the filtered image with the given
// parameters and an empty configuration.
func NewState(img *imaging.Image, p Params) (*State, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if img.W == 0 || img.H == 0 {
		return nil, errParams("empty image")
	}
	s := &State{
		W:       img.W,
		H:       img.H,
		P:       p,
		Gain:    make([]float64, img.W*img.H),
		Cover:   make([]int32, img.W*img.H),
		Cfg:     NewConfig(),
		Index:   NewBucketIndex(img.Bounds(), p.MaxRadius),
		logArea: math.Log(float64(img.W) * float64(img.H)),
	}
	for i, v := range img.Pix {
		s.Gain[i] = p.PixelGain(v)
	}
	s.GainSum = BuildGainRowSums(s.Gain, s.W, s.H)
	s.F = Field{W: s.W, H: s.H, Gain: s.Gain, GainSum: s.GainSum, Cover: s.Cover}
	s.F.InitOcc()
	s.Pyr = NewPyramid(s.Gain, s.W, s.H)
	// Empty configuration: lik 0 (relative), prior = count term for n=0.
	s.logPrior = 0 // 0·logλ − lgamma(1) − 0·logA = 0
	return s, nil
}

// Bounds returns the image rectangle.
func (s *State) Bounds() geom.Rect {
	return geom.Rect{X1: float64(s.W), Y1: float64(s.H)}
}

// LogLik returns the cached relative log-likelihood.
func (s *State) LogLik() float64 { return s.logLik }

// LogPrior returns the cached relative log-prior.
func (s *State) LogPrior() float64 { return s.logPrior }

// LogPost returns the cached relative log-posterior.
func (s *State) LogPost() float64 { return s.logLik + s.logPrior }

// LogAreaTerm returns log(W·H), the log image area appearing in the
// uniform position prior and in birth/death proposal densities.
func (s *State) LogAreaTerm() float64 { return s.logArea }

// AddDeltas folds externally computed deltas into the cached values. The
// periodic engine calls this once per partition when merging a parallel
// local phase.
func (s *State) AddDeltas(dLik, dPrior float64) {
	s.logLik += dLik
	s.logPrior += dPrior
}

// validPosition reports whether the centre lies inside the image (the
// support of the uniform position prior).
func (s *State) validPosition(c geom.Ellipse) bool {
	return c.X >= 0 && c.X < float64(s.W) && c.Y >= 0 && c.Y < float64(s.H)
}

// OverlapSum returns Σ_j overlapArea(c, j) over live circles j ≠ exclude.
// Pass exclude = -1 to include everything.
func (s *State) OverlapSum(c geom.Ellipse, exclude int) float64 {
	total := 0.0
	s.Index.QueryCircle(c, func(id int) bool {
		if id != exclude {
			total += c.OverlapArea(s.Cfg.Get(id))
		}
		return true
	})
	return total
}

// The prior is expressed as a density over *unordered* configurations
// with respect to the measure that absorbs the 1/n! of the Poisson count
// law (the standard convention for spatial point processes, cf. Geyer &
// Møller):
//
//	log prior(θ) = n·log λ − n·log A + Σᵢ log pr(rᵢ) − γ·Σᵢ<ⱼ overlap(i,j)
//
// Acceptance ratios in the MCMC engine pair this with the matching
// proposal conventions (death picks one of n circles with mass 1/n, birth
// draws a new point with density (1/A)·pr(r)); mixing the labelled
// density (with the lgamma term) with those conventions would break
// detailed balance.

// priorDeltaAdd returns the change in relative log-prior from adding c.
func (s *State) priorDeltaAdd(c geom.Ellipse) float64 {
	if !s.validPosition(c) {
		return math.Inf(-1)
	}
	d := math.Log(s.P.Lambda) // count term λ^{n+1}/λ^n
	d -= s.logArea            // position term
	d += s.P.LogShapePrior(c) // shape (radius/axes/rotation) term
	d -= s.P.OverlapPenalty * s.OverlapSum(c, -1)
	return d
}

// priorDeltaRemove returns the change in relative log-prior from removing
// circle id.
func (s *State) priorDeltaRemove(id int) float64 {
	c := s.Cfg.Get(id)
	d := -math.Log(s.P.Lambda)
	d += s.logArea
	d -= s.P.LogShapePrior(c)
	d += s.P.OverlapPenalty * s.OverlapSum(c, id)
	return d
}

// EvalAdd returns the posterior delta (Δlik, Δprior) of adding c, without
// mutating anything.
func (s *State) EvalAdd(c geom.Ellipse) (dLik, dPrior float64) {
	dPrior = s.priorDeltaAdd(c)
	if math.IsInf(dPrior, -1) {
		return 0, dPrior
	}
	dLik = s.F.LikDeltaAdd(c)
	return dLik, dPrior
}

// ApplyAdd inserts c and updates every cache; it returns the new ID.
// The deltas must come from a matching EvalAdd on the unchanged state.
func (s *State) ApplyAdd(c geom.Ellipse, dLik, dPrior float64) int {
	s.F.CoverAdd(c, +1)
	id := s.Cfg.Add(c)
	s.Index.Insert(id, c.X, c.Y)
	s.logLik += dLik
	s.logPrior += dPrior
	return id
}

// EvalRemove returns the posterior delta of removing circle id.
func (s *State) EvalRemove(id int) (dLik, dPrior float64) {
	c := s.Cfg.Get(id)
	dPrior = s.priorDeltaRemove(id)
	dLik = s.F.LikDeltaRemove(c)
	return dLik, dPrior
}

// ApplyRemove deletes circle id and updates every cache.
func (s *State) ApplyRemove(id int, dLik, dPrior float64) {
	c := s.Cfg.Get(id)
	s.F.CoverAdd(c, -1)
	s.Index.Remove(id, c.X, c.Y)
	s.Cfg.Remove(id)
	s.logLik += dLik
	s.logPrior += dPrior
}

// EvalMove returns the posterior delta of replacing circle id with newC
// (a shift and/or resize).
func (s *State) EvalMove(id int, newC geom.Ellipse) (dLik, dPrior float64) {
	oldC := s.Cfg.Get(id)
	if !s.validPosition(newC) {
		return 0, math.Inf(-1)
	}
	dPrior = s.P.LogShapePrior(newC) - s.P.LogShapePrior(oldC)
	if math.IsInf(dPrior, -1) {
		return 0, dPrior
	}
	dPrior -= s.P.OverlapPenalty * (s.OverlapSum(newC, id) - s.OverlapSum(oldC, id))
	dLik = s.F.LikDeltaMove(oldC, newC)
	return dLik, dPrior
}

// EvalMoveCached is EvalMove with span-table retention: the old and new
// span tables computed during pricing are left in ms, so a matching
// ApplyMoveCached replays the coverage update from the tables instead of
// recomputing every row span. The engines thread a per-engine scratch
// through here; the likelihood delta is bit-identical to EvalMove's.
func (s *State) EvalMoveCached(id int, newC geom.Ellipse, ms *MoveSpans) (dLik, dPrior float64) {
	oldC := s.Cfg.Get(id)
	if !s.validPosition(newC) {
		return 0, math.Inf(-1)
	}
	dPrior = s.P.LogShapePrior(newC) - s.P.LogShapePrior(oldC)
	if math.IsInf(dPrior, -1) {
		return 0, dPrior
	}
	dPrior -= s.P.OverlapPenalty * (s.OverlapSum(newC, id) - s.OverlapSum(oldC, id))
	dLik = s.F.LikDeltaMovePrepared(oldC, newC, ms)
	return dLik, dPrior
}

// ApplyMove replaces circle id with newC and updates every cache.
func (s *State) ApplyMove(id int, newC geom.Ellipse, dLik, dPrior float64) {
	oldC := s.Cfg.Get(id)
	s.F.CoverMove(oldC, newC)
	s.Index.Move(id, oldC.X, oldC.Y, newC.X, newC.Y)
	s.Cfg.Update(id, newC)
	s.logLik += dLik
	s.logPrior += dPrior
}

// ApplyMoveCached is ApplyMove reusing the span tables a matching
// EvalMoveCached left in ms; on any key mismatch (e.g. a speculative
// executor committing a shadow's proposal) it falls back to recomputing
// the spans, so it is always safe to call.
func (s *State) ApplyMoveCached(id int, newC geom.Ellipse, dLik, dPrior float64, ms *MoveSpans) {
	oldC := s.Cfg.Get(id)
	s.F.CoverMovePrepared(oldC, newC, ms)
	s.Index.Move(id, oldC.X, oldC.Y, newC.X, newC.Y)
	s.Cfg.Update(id, newC)
	s.logLik += dLik
	s.logPrior += dPrior
}

// CommitMoved records that circle id was already moved externally — its
// coverage updates were applied directly to Cover by a partition worker —
// and refreshes the configuration and index only. Cached totals are
// folded in separately via AddDeltas.
func (s *State) CommitMoved(id int, newC geom.Ellipse) {
	oldC := s.Cfg.Get(id)
	s.Index.Move(id, oldC.X, oldC.Y, newC.X, newC.Y)
	s.Cfg.Update(id, newC)
}

// Recompute recalculates the relative log-likelihood and log-prior from
// scratch, without touching the caches. Tests compare it against the
// cached values to validate every incremental path.
func (s *State) Recompute() (logLik, logPrior float64) {
	gain := s.Gain
	for i, cv := range s.Cover {
		if cv > 0 {
			logLik += gain[i]
		}
	}
	n := s.Cfg.Len()
	logPrior = float64(n)*math.Log(s.P.Lambda) - float64(n)*s.logArea
	overlap := 0.0
	circles := s.Cfg.Circles()
	for i, c := range circles {
		if !s.validPosition(c) {
			return logLik, math.Inf(-1)
		}
		logPrior += s.P.LogShapePrior(c)
		for _, o := range circles[i+1:] {
			overlap += c.OverlapArea(o)
		}
	}
	logPrior -= s.P.OverlapPenalty * overlap
	return logLik, logPrior
}

// RecomputeCover rebuilds a coverage buffer from the configuration alone;
// tests compare it with the incrementally maintained Cover.
func (s *State) RecomputeCover() []int32 {
	cover := make([]int32, len(s.Cover))
	s.Cfg.ForEach(func(_ int, c geom.Ellipse) {
		CoverAdd(cover, s.W, s.H, c, +1)
	})
	return cover
}

// CheckConsistency recomputes everything and reports the maximum absolute
// cache error; tests assert it stays at floating-point noise. coverOK
// also requires the block occupancy counters to match a fresh rebuild
// from Cover, so every incremental mutation path is pinned.
func (s *State) CheckConsistency() (likErr, priorErr float64, coverOK bool) {
	lik, prior := s.Recompute()
	likErr = math.Abs(lik - s.logLik)
	priorErr = math.Abs(prior - s.logPrior)
	coverOK = s.F.occConsistent()
	for i, v := range s.RecomputeCover() {
		if v != s.Cover[i] {
			coverOK = false
			break
		}
	}
	return
}

// IDCircle pairs a live circle with its configuration ID; snapshot
// buffers hold these so parallel workers can build private views without
// the per-phase map allocations the old SnapshotCircles API forced.
type IDCircle struct {
	ID int
	C  geom.Ellipse
}

// AppendSnapshot appends a deep copy of every live (id, circle) pair to
// dst and returns it. Callers reuse dst across phases (dst[:0]) so
// steady-state snapshots are allocation-free; iteration order is the
// configuration's dense order, deterministic for a fixed move history.
func (s *State) AppendSnapshot(dst []IDCircle) []IDCircle {
	s.Cfg.ForEach(func(id int, c geom.Ellipse) {
		dst = append(dst, IDCircle{ID: id, C: c})
	})
	return dst
}
