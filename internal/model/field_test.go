package model

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/rng"
)

// testField builds a Field with occupancy tracking over a random gain
// image and nCover random shapes applied through the naive reference.
func testField(r *rng.RNG, w, h, nCover int, kind geom.ShapeKind) *Field {
	gain := make([]float64, w*h)
	for i := range gain {
		gain[i] = r.Uniform(-2, 2)
	}
	cover := make([]int32, w*h)
	for k := 0; k < nCover; k++ {
		NaiveCoverAdd(cover, w, h, diffShape(r, w, h, kind), +1)
	}
	f := &Field{W: w, H: h, Gain: gain, GainSum: BuildGainRowSums(gain, w, h), Cover: cover}
	f.InitOcc()
	return f
}

// TestBuildGainRowSumsEdgeRows pins the prefix-table layout at the
// degenerate extremes: empty images in either dimension and the
// single-pixel spans whose sums are one table difference.
func TestBuildGainRowSumsEdgeRows(t *testing.T) {
	if got := BuildGainRowSums(nil, 0, 5); len(got) != 5 {
		// Width 0: each row's table is the single leading zero.
		t.Fatalf("w=0: len = %d, want 5", len(got))
	} else {
		for i, v := range got {
			if v != 0 {
				t.Fatalf("w=0: sums[%d] = %v, want 0", i, v)
			}
		}
	}
	if got := BuildGainRowSums(nil, 7, 0); len(got) != 0 {
		t.Fatalf("h=0: len = %d, want 0", len(got))
	}

	// Single-pixel spans: sums[p+x+1]-sums[p+x] must reproduce each gain
	// value exactly (the tables accumulate left to right, so this is an
	// identity on floats, not an approximation).
	const w, h = 9, 4
	r := rng.New(11)
	gain := make([]float64, w*h)
	for i := range gain {
		gain[i] = r.Uniform(-3, 3)
	}
	sums := BuildGainRowSums(gain, w, h)
	if len(sums) != (w+1)*h {
		t.Fatalf("len = %d, want %d", len(sums), (w+1)*h)
	}
	for y := 0; y < h; y++ {
		p := y * (w + 1)
		if sums[p] != 0 {
			t.Fatalf("row %d: leading entry = %v, want 0", y, sums[p])
		}
		acc := 0.0
		for x := 0; x < w; x++ {
			acc += gain[y*w+x]
			if got := sums[p+x+1] - sums[p+x]; got != acc-(sums[p+x]) {
				t.Fatalf("row %d: inconsistent table at x=%d", y, x)
			}
		}
		if math.Abs(sums[p+w]-acc) > 0 {
			t.Fatalf("row %d: total = %v, want %v", y, sums[p+w], acc)
		}
	}
	// A one-pixel span through the Field kernel: LikDeltaAdd of a
	// sub-pixel shape covering exactly one pixel equals that pixel's gain.
	f := &Field{W: w, H: h, Gain: gain, GainSum: sums, Cover: make([]int32, w*h)}
	f.InitOcc()
	c := geom.Disc(4.5, 2.5, 0.4) // covers pixel (4,2) only
	if got, want := f.LikDeltaAdd(c), gain[2*w+4]; math.Abs(got-want) > diffTol {
		t.Fatalf("single-pixel add = %v, want %v", got, want)
	}
}

// TestFusedKernelsMatchSeparate drives the fused eval+apply kernels
// against the separate eval-then-apply pair over a long random
// trajectory: likelihood deltas within diffTol, coverage and occupancy
// bit-exact after every step.
func TestFusedKernelsMatchSeparate(t *testing.T) {
	const w, h = 72, 56
	for _, kind := range diffKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(51)
			fa := testField(r, w, h, 0, kind) // fused
			fb := &Field{W: w, H: h, Gain: fa.Gain, GainSum: fa.GainSum, Cover: make([]int32, w*h)}
			fb.InitOcc() // separate eval + cover
			live := make([]geom.Ellipse, 0, 32)
			for trial := 0; trial < 1200; trial++ {
				var dA, dB float64
				switch {
				case len(live) == 0 || r.Intn(3) == 0:
					c := diffShape(r, w, h, kind)
					live = append(live, c)
					dA = fa.FusedAddCover(c)
					dB = fb.LikDeltaAdd(c)
					fb.CoverAdd(c, +1)
				case r.Intn(2) == 0:
					i := r.Intn(len(live))
					c := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					dA = fa.FusedRemoveCover(c)
					dB = fb.LikDeltaRemove(c)
					fb.CoverAdd(c, -1)
				default:
					i := r.Intn(len(live))
					oldC := live[i]
					var newC geom.Ellipse
					if r.Intn(2) == 0 {
						newC = resized(oldC.Translate(r.Uniform(-4, 4), r.Uniform(-4, 4)), r.Uniform(-1, 1))
					} else {
						newC = diffShape(r, w, h, kind)
					}
					live[i] = newC
					dA = fa.FusedMoveCover(oldC, newC)
					dB = fb.LikDeltaMove(oldC, newC)
					fb.CoverMove(oldC, newC)
				}
				if math.Abs(dA-dB) > diffTol {
					t.Fatalf("trial %d: fused delta %v, separate %v", trial, dA, dB)
				}
				for i := range fa.Cover {
					if fa.Cover[i] != fb.Cover[i] {
						t.Fatalf("trial %d: cover mismatch at (%d,%d)", trial, i%w, i/w)
					}
				}
			}
			if !fa.occConsistent() || !fb.occConsistent() {
				t.Fatal("occupancy counters drifted from the coverage buffer")
			}
		})
	}
}

// FuzzFusedKernelDifferential fuzzes one fused add/move/remove round
// against the separate kernels with arbitrary shape parameters:
// likelihood deltas within diffTol, coverage bit-exact.
func FuzzFusedKernelDifferential(f *testing.F) {
	f.Add(12.0, 20.0, 6.0, 6.0, 0.0, 3.0, -2.0, 1.0)
	f.Add(30.0, 10.0, 9.0, 4.0, 0.7, -5.0, 4.0, -1.5)
	f.Add(-5.0, 50.0, 22.0, 3.0, 2.9, 8.0, 8.0, 0.4)
	f.Fuzz(func(t *testing.T, x, y, rx, ry, theta, dx, dy, dr float64) {
		const w, h = 48, 40
		for _, v := range []float64{x, y, rx, ry, theta, dx, dy, dr} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		clamp := func(v, lo, hi float64) float64 { return math.Min(math.Max(v, lo), hi) }
		e := geom.Ellipse{
			X:     clamp(x, -20, float64(w)+20),
			Y:     clamp(y, -20, float64(h)+20),
			Rx:    clamp(rx, 0, float64(w)),
			Ry:    clamp(ry, 0, float64(h)),
			Theta: clamp(theta, -10, 10),
		}
		moved := geom.Ellipse{
			X: clamp(e.X+dx, -20, float64(w)+20), Y: clamp(e.Y+dy, -20, float64(h)+20),
			Rx: clamp(e.Rx+dr, 0, float64(w)), Ry: clamp(e.Ry+dr, 0, float64(h)),
			Theta: e.Theta,
		}
		r := rng.New(7)
		fa := testField(r, w, h, 3, geom.KindEllipse)
		fb := &Field{W: w, H: h, Gain: fa.Gain, GainSum: fa.GainSum,
			Cover: append([]int32(nil), fa.Cover...)}
		fb.InitOcc()

		check := func(stage string, dA, dB float64) {
			t.Helper()
			if math.Abs(dA-dB) > diffTol {
				t.Fatalf("%s: fused %v, separate %v", stage, dA, dB)
			}
			for i := range fa.Cover {
				if fa.Cover[i] != fb.Cover[i] {
					t.Fatalf("%s: cover mismatch at (%d,%d)", stage, i%w, i/w)
				}
			}
		}
		dB := fb.LikDeltaAdd(e)
		fb.CoverAdd(e, +1)
		check("add", fa.FusedAddCover(e), dB)

		dB = fb.LikDeltaMove(e, moved)
		fb.CoverMove(e, moved)
		check("move", fa.FusedMoveCover(e, moved), dB)

		dB = fb.LikDeltaRemove(moved)
		fb.CoverAdd(moved, -1)
		check("remove", fa.FusedRemoveCover(moved), dB)

		if !fa.occConsistent() {
			t.Fatal("occupancy counters drifted")
		}
	})
}

// TestPyramidUpperBoundSound is the screen-soundness invariant: the
// coarse pyramid bound must dominate the exact likelihood delta for
// every add and move, or screened rejections would cut genuine
// acceptances and bias the chain.
func TestPyramidUpperBoundSound(t *testing.T) {
	for _, kind := range diffKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r := rng.New(61)
			im := imaging.New(96, 80)
			im.Fill(0.1)
			for k := 0; k < 5; k++ {
				imaging.RenderShape(im, diffShape(r, im.W, im.H, kind), 0.8)
			}
			noise := rng.New(62)
			for i := range im.Pix {
				im.Pix[i] += noise.NormalAt(0, 0.05)
			}
			im.Clamp()
			p := DefaultParams(5, 6)
			if kind == geom.KindEllipse {
				p.Shape = geom.KindEllipse
			}
			s, err := NewState(im, p)
			if err != nil {
				t.Fatal(err)
			}
			if !s.CanScreen() {
				t.Fatal("fresh state cannot screen")
			}
			live := make([]int, 0, 16)
			for trial := 0; trial < 1500; trial++ {
				c := diffShape(r, im.W, im.H, kind)
				ub := s.UpperBoundAdd(c)
				exact := s.F.LikDeltaAdd(c)
				if ub < exact {
					t.Fatalf("trial %d: add bound %v < exact %v for %+v", trial, ub, exact, c)
				}
				if r.Intn(3) == 0 {
					dLik, dPrior := s.EvalAdd(c)
					live = append(live, s.ApplyAdd(c, dLik, dPrior))
				}
				if len(live) > 0 {
					id := live[r.Intn(len(live))]
					oldC := s.Cfg.Get(id)
					newC := resized(oldC.Translate(r.Uniform(-6, 6), r.Uniform(-6, 6)), r.Uniform(-2, 2))
					ub := s.UpperBoundMove(oldC, newC)
					exact := s.F.LikDeltaMove(oldC, newC)
					if ub < exact {
						t.Fatalf("trial %d: move bound %v < exact %v (%+v -> %+v)",
							trial, ub, exact, oldC, newC)
					}
				}
			}
		})
	}
}

// TestMoveSpansCacheReplay pins the span-table cache contract: a
// prepared eval followed by the matching CoverMovePrepared must mutate
// coverage exactly like the uncached pair, an old-shape cache hit must
// not change results, and a mismatched cache must fall back safely.
func TestMoveSpansCacheReplay(t *testing.T) {
	const w, h = 64, 48
	r := rng.New(71)
	fa := testField(r, w, h, 4, geom.KindEllipse)
	fb := &Field{W: w, H: h, Gain: fa.Gain, GainSum: fa.GainSum,
		Cover: append([]int32(nil), fa.Cover...)}
	fb.InitOcc()

	var ms MoveSpans
	oldC := geom.Disc(20, 20, 6)
	NaiveCoverAdd(fa.Cover, w, h, oldC, +1)
	fa.InitOcc()
	NaiveCoverAdd(fb.Cover, w, h, oldC, +1)
	fb.InitOcc()

	for trial := 0; trial < 200; trial++ {
		newC := resized(oldC.Translate(r.Uniform(-3, 3), r.Uniform(-3, 3)), r.Uniform(-1, 1))
		dA := fa.LikDeltaMovePrepared(oldC, newC, &ms)
		dB := fb.LikDeltaMove(oldC, newC)
		if math.Abs(dA-dB) > diffTol {
			t.Fatalf("trial %d: prepared delta %v, plain %v", trial, dA, dB)
		}
		if trial%3 == 0 { // accept: replay the cached tables
			fa.CoverMovePrepared(oldC, newC, &ms)
			fb.CoverMove(oldC, newC)
			for i := range fa.Cover {
				if fa.Cover[i] != fb.Cover[i] {
					t.Fatalf("trial %d: cover mismatch at (%d,%d)", trial, i%w, i/w)
				}
			}
			oldC = newC
			// The next eval re-keys on the new old shape; ms retains the
			// just-applied new table as its old table via OldC bookkeeping
			// only when shapes match — force both paths over the run.
			if trial%6 == 0 {
				ms.Invalidate()
			} else {
				ms.OldC, ms.NewC = newC, newC
				ms.Valid = false
			}
		}
	}
	// Mismatched cache: CoverMovePrepared must fall back to CoverMove.
	other := geom.Disc(40, 30, 5)
	NaiveCoverAdd(fa.Cover, w, h, other, +1)
	fa.InitOcc()
	NaiveCoverAdd(fb.Cover, w, h, other, +1)
	fb.InitOcc()
	moved := other.Translate(2, 1)
	stale := MoveSpans{OldC: geom.Disc(1, 1, 2), NewC: geom.Disc(3, 3, 2), Valid: true}
	fa.CoverMovePrepared(other, moved, &stale)
	fb.CoverMove(other, moved)
	for i := range fa.Cover {
		if fa.Cover[i] != fb.Cover[i] {
			t.Fatalf("stale-cache fallback: cover mismatch at (%d,%d)", i%w, i/w)
		}
	}
	if !fa.occConsistent() {
		t.Fatal("occupancy counters drifted")
	}
}

// TestSetParallelRelayout pins the padded-layout switch: toggling
// parallel mode must preserve the counters exactly (occConsistent checks
// the layout-appropriate stride), kernels must agree with sequential
// mode in both layouts, and repeated flips must reuse the pooled buffers.
func TestSetParallelRelayout(t *testing.T) {
	r := rng.New(31)
	f := testField(r, 120, 90, 12, geom.KindDisc)
	if !f.occConsistent() {
		t.Fatal("inconsistent before any toggle")
	}
	c := diffShape(r, 120, 90, geom.KindDisc)
	wantAdd := f.LikDeltaAdd(c)
	for round := 0; round < 3; round++ {
		f.SetParallel(true)
		if !f.occConsistent() {
			t.Fatalf("round %d: inconsistent after SetParallel(true)", round)
		}
		if got := f.LikDeltaAdd(c); math.Float64bits(got) != math.Float64bits(wantAdd) {
			t.Fatalf("round %d: padded LikDeltaAdd %v, sequential %v", round, got, wantAdd)
		}
		// Mutate while padded so the relayout back carries real updates.
		mv := diffShape(r, 120, 90, geom.KindDisc)
		f.CoverAdd(mv, +1)
		f.CoverAdd(mv, -1)
		if !f.occConsistent() {
			t.Fatalf("round %d: inconsistent after padded mutations", round)
		}
		f.SetParallel(false)
		if !f.occConsistent() {
			t.Fatalf("round %d: inconsistent after SetParallel(false)", round)
		}
		if got := f.LikDeltaAdd(c); math.Float64bits(got) != math.Float64bits(wantAdd) {
			t.Fatalf("round %d: compact LikDeltaAdd %v, want %v", round, got, wantAdd)
		}
	}
	// Redundant toggles are no-ops.
	f.SetParallel(false)
	f.SetParallel(false)
	if !f.occConsistent() {
		t.Fatal("inconsistent after redundant toggles")
	}
}
