package model

import "repro/internal/geom"

// Naive reference kernels.
//
// These are the original bounding-box implementations of the likelihood
// and coverage primitives: scan the clipped pixel bounding box and test
// the canonical coverage predicate per pixel. They are retained as the
// ground truth the scanline kernels in likelihood.go are differentially
// tested and benchmarked against — do not "optimise" them. The predicate
// is geom.Ellipse.CoversPixel, the same one RowSpan pins its edges to,
// so naive and scanline kernels evaluate identical arithmetic on every
// architecture (for discs, CoversPixel reduces bit-exactly to the
// historical dx²+dy² ≤ r² comparison with forced per-multiply rounding).

// NaiveLikDeltaAdd is the bounding-box reference for LikDeltaAdd.
func NaiveLikDeltaAdd(gain []float64, cover []int32, w, h int, c geom.Ellipse) float64 {
	x0, y0, x1, y1 := discSpan(w, h, c)
	pred := c.PixelPred()
	delta := 0.0
	for y := y0; y < y1; y++ {
		row := y * w
		for x := x0; x < x1; x++ {
			if pred.Covers(x, y) && cover[row+x] == 0 {
				delta += gain[row+x]
			}
		}
	}
	return delta
}

// NaiveLikDeltaRemove is the bounding-box reference for LikDeltaRemove.
func NaiveLikDeltaRemove(gain []float64, cover []int32, w, h int, c geom.Ellipse) float64 {
	x0, y0, x1, y1 := discSpan(w, h, c)
	pred := c.PixelPred()
	delta := 0.0
	for y := y0; y < y1; y++ {
		row := y * w
		for x := x0; x < x1; x++ {
			if pred.Covers(x, y) && cover[row+x] == 1 {
				delta -= gain[row+x]
			}
		}
	}
	return delta
}

// NaiveLikDeltaMove is the bounding-box reference for LikDeltaMove.
func NaiveLikDeltaMove(gain []float64, cover []int32, w, h int, oldC, newC geom.Ellipse) float64 {
	ox0, oy0, ox1, oy1 := discSpan(w, h, oldC)
	nx0, ny0, nx1, ny1 := discSpan(w, h, newC)
	if ox1 <= nx0 || nx1 <= ox0 || oy1 <= ny0 || ny1 <= oy0 {
		return NaiveLikDeltaRemove(gain, cover, w, h, oldC) +
			NaiveLikDeltaAdd(gain, cover, w, h, newC)
	}
	x0, y0 := minInt(ox0, nx0), minInt(oy0, ny0)
	x1, y1 := maxInt(ox1, nx1), maxInt(oy1, ny1)
	oldP, newP := oldC.PixelPred(), newC.PixelPred()
	delta := 0.0
	for y := y0; y < y1; y++ {
		row := y * w
		for x := x0; x < x1; x++ {
			inOld := oldP.Covers(x, y)
			inNew := newP.Covers(x, y)
			switch {
			case inOld == inNew:
				// Coverage by this shape unchanged.
			case inNew: // gained
				if cover[row+x] == 0 {
					delta += gain[row+x]
				}
			default: // lost
				if cover[row+x] == 1 {
					delta -= gain[row+x]
				}
			}
		}
	}
	return delta
}

// NaiveCoverAdd is the bounding-box reference for CoverAdd.
func NaiveCoverAdd(cover []int32, w, h int, c geom.Ellipse, d int32) {
	x0, y0, x1, y1 := discSpan(w, h, c)
	pred := c.PixelPred()
	for y := y0; y < y1; y++ {
		row := y * w
		for x := x0; x < x1; x++ {
			if pred.Covers(x, y) {
				cover[row+x] += d
				if cover[row+x] < 0 {
					panic("model: negative coverage count")
				}
			}
		}
	}
}

// NaiveCoverMove is the bounding-box reference for CoverMove.
func NaiveCoverMove(cover []int32, w, h int, oldC, newC geom.Ellipse) {
	ox0, oy0, ox1, oy1 := discSpan(w, h, oldC)
	nx0, ny0, nx1, ny1 := discSpan(w, h, newC)
	if ox1 <= nx0 || nx1 <= ox0 || oy1 <= ny0 || ny1 <= oy0 {
		NaiveCoverAdd(cover, w, h, oldC, -1)
		NaiveCoverAdd(cover, w, h, newC, +1)
		return
	}
	x0, y0 := minInt(ox0, nx0), minInt(oy0, ny0)
	x1, y1 := maxInt(ox1, nx1), maxInt(oy1, ny1)
	oldP, newP := oldC.PixelPred(), newC.PixelPred()
	for y := y0; y < y1; y++ {
		row := y * w
		for x := x0; x < x1; x++ {
			inOld := oldP.Covers(x, y)
			inNew := newP.Covers(x, y)
			switch {
			case inOld && !inNew:
				cover[row+x]--
				if cover[row+x] < 0 {
					panic("model: negative coverage count")
				}
			case inNew && !inOld:
				cover[row+x]++
			}
		}
	}
}

// NaiveLikDeltaMulti is the union-bounding-box reference for
// LikDeltaMulti.
func NaiveLikDeltaMulti(gain []float64, cover []int32, w, h int, removed, added []geom.Ellipse) float64 {
	if len(removed) == 0 && len(added) == 0 {
		return 0
	}
	x0, y0, x1, y1 := w, h, 0, 0
	span := func(c geom.Ellipse) {
		cx0, cy0, cx1, cy1 := discSpan(w, h, c)
		x0, y0 = minInt(x0, cx0), minInt(y0, cy0)
		x1, y1 = maxInt(x1, cx1), maxInt(y1, cy1)
	}
	for _, c := range removed {
		span(c)
	}
	for _, c := range added {
		span(c)
	}
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	remP := make([]geom.PixelPred, len(removed))
	for i, c := range removed {
		remP[i] = c.PixelPred()
	}
	addP := make([]geom.PixelPred, len(added))
	for i, c := range added {
		addP[i] = c.PixelPred()
	}
	delta := 0.0
	for y := y0; y < y1; y++ {
		row := y * w
		for x := x0; x < x1; x++ {
			var dRem, dAdd int32
			for _, p := range remP {
				if p.Covers(x, y) {
					dRem++
				}
			}
			for _, p := range addP {
				if p.Covers(x, y) {
					dAdd++
				}
			}
			if dRem == 0 && dAdd == 0 {
				continue
			}
			oldCovered := cover[row+x] > 0
			newCovered := cover[row+x]-dRem+dAdd > 0
			switch {
			case newCovered && !oldCovered:
				delta += gain[row+x]
			case oldCovered && !newCovered:
				delta -= gain[row+x]
			}
		}
	}
	return delta
}
