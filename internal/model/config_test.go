package model

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestConfigAddGet(t *testing.T) {
	cf := NewConfig()
	c := geom.Disc(1, 2, 3)
	id := cf.Add(c)
	if cf.Len() != 1 {
		t.Fatalf("Len = %d", cf.Len())
	}
	if got := cf.Get(id); got != c {
		t.Fatalf("Get = %+v", got)
	}
}

func TestConfigRemoveAndRecycle(t *testing.T) {
	cf := NewConfig()
	a := cf.Add(geom.Ellipse{X: 1})
	b := cf.Add(geom.Ellipse{X: 2})
	cf.Remove(a)
	if cf.Alive(a) {
		t.Fatal("removed ID still alive")
	}
	if !cf.Alive(b) {
		t.Fatal("unrelated ID died")
	}
	c := cf.Add(geom.Ellipse{X: 3})
	if c != a {
		t.Fatalf("free list not recycled: got %d, want %d", c, a)
	}
	if cf.Get(c).X != 3 {
		t.Fatal("recycled slot has stale circle")
	}
}

func TestConfigUpdate(t *testing.T) {
	cf := NewConfig()
	id := cf.Add(geom.Disc(1, 0, 2))
	cf.Update(id, geom.Disc(5, 0, 6))
	if got := cf.Get(id); got.X != 5 || got.Rx != 6 {
		t.Fatalf("Update failed: %+v", got)
	}
}

func TestConfigPanicsOnDeadAccess(t *testing.T) {
	cf := NewConfig()
	id := cf.Add(geom.Ellipse{})
	cf.Remove(id)
	for name, fn := range map[string]func(){
		"Get":    func() { cf.Get(id) },
		"Update": func() { cf.Update(id, geom.Ellipse{}) },
		"Remove": func() { cf.Remove(id) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on dead ID did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConfigDensePick(t *testing.T) {
	cf := NewConfig()
	ids := map[int]bool{}
	for i := 0; i < 10; i++ {
		ids[cf.Add(geom.Ellipse{X: float64(i)})] = true
	}
	cf.Remove(cf.IDAt(3))
	cf.Remove(cf.IDAt(0))
	if cf.Len() != 8 {
		t.Fatalf("Len = %d", cf.Len())
	}
	seen := map[int]bool{}
	for i := 0; i < cf.Len(); i++ {
		id := cf.IDAt(i)
		if !cf.Alive(id) {
			t.Fatalf("dense list contains dead ID %d", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d in dense list", id)
		}
		seen[id] = true
	}
}

func TestConfigForEachAndCircles(t *testing.T) {
	cf := NewConfig()
	cf.Add(geom.Ellipse{X: 1})
	cf.Add(geom.Ellipse{X: 2})
	n := 0
	sum := 0.0
	cf.ForEach(func(id int, c geom.Ellipse) { n++; sum += c.X })
	if n != 2 || sum != 3 {
		t.Fatalf("ForEach visited %d circles, sum %v", n, sum)
	}
	if len(cf.Circles()) != 2 {
		t.Fatal("Circles length wrong")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	cf := NewConfig()
	id := cf.Add(geom.Ellipse{X: 1})
	cp := cf.Clone()
	cp.Update(id, geom.Ellipse{X: 9})
	cp.Add(geom.Ellipse{X: 2})
	if cf.Get(id).X != 1 || cf.Len() != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestConfigStress(t *testing.T) {
	cf := NewConfig()
	r := rng.New(1)
	live := map[int]geom.Ellipse{}
	for i := 0; i < 20000; i++ {
		if cf.Len() == 0 || r.Bool(0.6) {
			c := geom.Disc(r.Float64(), r.Float64(), r.Float64())
			live[cf.Add(c)] = c
		} else {
			id := cf.IDAt(r.Intn(cf.Len()))
			if cf.Get(id) != live[id] {
				t.Fatalf("step %d: stored circle mismatch", i)
			}
			cf.Remove(id)
			delete(live, id)
		}
	}
	if cf.Len() != len(live) {
		t.Fatalf("Len %d != %d live", cf.Len(), len(live))
	}
}
