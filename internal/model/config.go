package model

import "repro/internal/geom"

// Config is a set of circles with stable integer IDs, O(1) uniform random
// selection, and O(1) insert/delete. IDs are recycled via a free list, so
// they stay small and can index side tables.
type Config struct {
	items []item
	// dense holds the IDs of live circles in arbitrary order; pos[id]
	// is the index of id within dense (or -1 when dead).
	dense []int
	pos   []int
	free  []int
}

type item struct {
	c     geom.Ellipse
	alive bool
}

// NewConfig returns an empty configuration.
func NewConfig() *Config { return &Config{} }

// Len returns the number of live circles.
func (cf *Config) Len() int { return len(cf.dense) }

// Add inserts a circle and returns its ID.
func (cf *Config) Add(c geom.Ellipse) int {
	var id int
	if n := len(cf.free); n > 0 {
		id = cf.free[n-1]
		cf.free = cf.free[:n-1]
		cf.items[id] = item{c: c, alive: true}
	} else {
		id = len(cf.items)
		cf.items = append(cf.items, item{c: c, alive: true})
		cf.pos = append(cf.pos, -1)
	}
	cf.pos[id] = len(cf.dense)
	cf.dense = append(cf.dense, id)
	return id
}

// Remove deletes the circle with the given ID. It panics on a dead or
// unknown ID — callers hold the ID they were given by Add, so a miss is a
// logic error, not an input error.
func (cf *Config) Remove(id int) {
	cf.mustAlive(id)
	// Swap-delete from the dense list.
	p := cf.pos[id]
	last := len(cf.dense) - 1
	moved := cf.dense[last]
	cf.dense[p] = moved
	cf.pos[moved] = p
	cf.dense = cf.dense[:last]
	cf.pos[id] = -1
	cf.items[id].alive = false
	cf.free = append(cf.free, id)
}

// Get returns the circle with the given ID.
func (cf *Config) Get(id int) geom.Ellipse {
	cf.mustAlive(id)
	return cf.items[id].c
}

// Update replaces the circle stored under id.
func (cf *Config) Update(id int, c geom.Ellipse) {
	cf.mustAlive(id)
	cf.items[id].c = c
}

// Alive reports whether id refers to a live circle.
func (cf *Config) Alive(id int) bool {
	return id >= 0 && id < len(cf.items) && cf.items[id].alive
}

func (cf *Config) mustAlive(id int) {
	if !cf.Alive(id) {
		panic("model: access to dead or unknown circle ID")
	}
}

// IDAt returns the ID stored at position i of the dense list; combined
// with Len it supports uniform random selection:
//
//	id := cfg.IDAt(rng.Intn(cfg.Len()))
func (cf *Config) IDAt(i int) int { return cf.dense[i] }

// ForEach calls fn for every live circle. The callback must not add or
// remove circles.
func (cf *Config) ForEach(fn func(id int, c geom.Ellipse)) {
	for _, id := range cf.dense {
		fn(id, cf.items[id].c)
	}
}

// Circles returns a copy of all live circles in unspecified order.
func (cf *Config) Circles() []geom.Ellipse {
	out := make([]geom.Ellipse, 0, len(cf.dense))
	for _, id := range cf.dense {
		out = append(out, cf.items[id].c)
	}
	return out
}

// Clone returns a deep copy sharing no storage with the original.
func (cf *Config) Clone() *Config {
	out := &Config{
		items: append([]item(nil), cf.items...),
		dense: append([]int(nil), cf.dense...),
		pos:   append([]int(nil), cf.pos...),
		free:  append([]int(nil), cf.free...),
	}
	return out
}
