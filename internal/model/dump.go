package model

import (
	"fmt"

	"repro/internal/geom"
)

// This file is the serialization surface behind checkpoint/resume
// (pkg/parmcmc). The dumps are exact: restoring one reproduces not just
// the configuration but every piece of incidental ordering the samplers
// draw randomness through — the dense list order behind uniform circle
// selection, the free-ID list behind ID recycling, and the bucket
// iteration order behind merge-partner enumeration. Anything less and a
// resumed chain would diverge from the uninterrupted one on the first
// random selection.

// ConfigDump is a serializable snapshot of a Config, including dead
// slots and the free list so future Add calls recycle the same IDs.
type ConfigDump struct {
	// Circles[i] / Alive[i] mirror the internal item table; dead slots
	// keep their (stale) circle value, which is never read.
	Circles []geom.Ellipse
	Alive   []bool
	// Dense preserves the live-ID iteration/selection order; Free the ID
	// recycling order.
	Dense []int
	Free  []int
}

// Dump captures the configuration.
func (cf *Config) Dump() ConfigDump {
	d := ConfigDump{
		Circles: make([]geom.Ellipse, len(cf.items)),
		Alive:   make([]bool, len(cf.items)),
		Dense:   append([]int(nil), cf.dense...),
		Free:    append([]int(nil), cf.free...),
	}
	for i, it := range cf.items {
		d.Circles[i] = it.c
		d.Alive[i] = it.alive
	}
	return d
}

// Restore overwrites the configuration with a dumped snapshot.
func (cf *Config) Restore(d ConfigDump) error {
	if len(d.Circles) != len(d.Alive) {
		return fmt.Errorf("model: config dump length mismatch (%d circles, %d alive flags)",
			len(d.Circles), len(d.Alive))
	}
	cf.items = make([]item, len(d.Circles))
	cf.pos = make([]int, len(d.Circles))
	for i := range cf.items {
		cf.items[i] = item{c: d.Circles[i], alive: d.Alive[i]}
		cf.pos[i] = -1
	}
	cf.dense = append([]int(nil), d.Dense...)
	cf.free = append([]int(nil), d.Free...)
	live := 0
	for p, id := range cf.dense {
		if id < 0 || id >= len(cf.items) || !cf.items[id].alive {
			return fmt.Errorf("model: config dump dense entry %d is not a live ID", id)
		}
		cf.pos[id] = p
		live++
	}
	for _, it := range cf.items {
		if it.alive {
			live--
		}
	}
	if live != 0 {
		return fmt.Errorf("model: config dump dense list does not cover the live set")
	}
	return nil
}

// IndexDump is a serializable snapshot of a BucketIndex's contents. The
// geometry (bounds, cell size, bucket grid) is reconstructed from the
// image and parameters; only the bucket occupancy — whose order merge-
// partner scans iterate in — is stored.
type IndexDump struct {
	Buckets [][]int
}

// Dump captures the index contents.
func (ix *BucketIndex) Dump() IndexDump {
	d := IndexDump{Buckets: make([][]int, len(ix.buckets))}
	for i, b := range ix.buckets {
		if len(b) > 0 {
			d.Buckets[i] = append([]int(nil), b...)
		}
	}
	return d
}

// Restore overwrites the index contents. The receiver must have been
// built with the same bounds and maxRadius as the dumped index.
func (ix *BucketIndex) Restore(d IndexDump) error {
	if len(d.Buckets) != len(ix.buckets) {
		return fmt.Errorf("model: index dump has %d buckets, index has %d (geometry mismatch)",
			len(d.Buckets), len(ix.buckets))
	}
	for i, b := range d.Buckets {
		ix.buckets[i] = append(ix.buckets[i][:0], b...)
	}
	return nil
}

// StateDump is a serializable snapshot of a State's mutable parts. The
// immutable parts (gain buffer, prefix sums, parameters) are rebuilt
// from the image, and the coverage buffer is recomputed exactly from the
// configuration; the cached log-likelihood/log-prior are stored verbatim
// because they accumulate floating-point round-off that a recompute
// would not reproduce.
type StateDump struct {
	LogLik   float64
	LogPrior float64
	Cfg      ConfigDump
	Index    IndexDump
}

// Dump captures the state's mutable parts.
func (s *State) Dump() StateDump {
	return StateDump{
		LogLik:   s.logLik,
		LogPrior: s.logPrior,
		Cfg:      s.Cfg.Dump(),
		Index:    s.Index.Dump(),
	}
}

// Restore overwrites the state's mutable parts from a dump taken on a
// state built over the same image and parameters.
func (s *State) Restore(d StateDump) error {
	if err := s.Cfg.Restore(d.Cfg); err != nil {
		return err
	}
	if err := s.Index.Restore(d.Index); err != nil {
		return err
	}
	for i := range s.Cover {
		s.Cover[i] = 0
	}
	s.Cfg.ForEach(func(_ int, c geom.Ellipse) {
		CoverAdd(s.Cover, s.W, s.H, c, +1)
	})
	// The free CoverAdd above bypasses the Field's occupancy counters;
	// rebuild them from the restored coverage.
	s.F.InitOcc()
	s.logLik = d.LogLik
	s.logPrior = d.LogPrior
	return nil
}
