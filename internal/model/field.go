package model

import (
	"sync/atomic"

	"repro/internal/geom"
)

// Field is the batched likelihood/coverage kernel layer: a view over the
// gain image, its per-row prefix sums, and the mutable coverage counts,
// plus an 8×8-block occupancy summary that lets span sums skip the
// per-pixel correction scan over provably uniform coverage.
//
// # Block occupancy
//
// The image is tiled into blockSize×blockSize pixel blocks. For block b
// the occ table holds two int32 counters:
//
//	occ[2b]   = Σ cover[p] over the block's pixels (total coverage mass)
//	occ[2b+1] = #{p in block : cover[p] > 0}      (covered-pixel count)
//
// Both are maintained incrementally by coverAddRange, the single choke
// point through which every coverage mutation flows. They answer the two
// uniformity questions the kernels ask in O(blocks) instead of O(pixels):
//
//   - "is every pixel of this span uncovered?" — yes if every touched
//     block has occ[2b] == 0;
//   - "is every covered pixel of this span covered exactly once?" — yes
//     if every touched block has occ[2b] == occ[2b+1] (total mass equals
//     covered count forces every covered pixel to exactly 1). This skip
//     additionally relies on the remove-side caller contract that the
//     span belongs to a live shape, so span pixels all have cover ≥ 1.
//
// When a block fails its test the kernel falls back to the exact
// correction scan, so results are bit-identical to the scan-always
// kernels in every case.
//
// # Parallel local phases
//
// During periodic-partition local phases multiple workers mutate
// disjoint pixel regions concurrently, but an 8×8 block may straddle two
// workers' regions. SetParallel(true) switches the occupancy counters to
// atomic access for the duration of the phase. The update ordering makes
// concurrent skip decisions sound without any locking:
//
//   - increases bump the mass counter before the covered count,
//   - decreases drop the covered count before the mass counter,
//
// so an observed mass value never undershoots the true value and an
// observed (mass, count) pair always satisfies mass ≥ count. A racing
// observer can therefore see a spurious non-uniform block (costing one
// unnecessary scan of pixels it owns anyway) but never a spurious
// uniform one. occ==nil disables the occupancy layer entirely; kernels
// then behave exactly like the historical free functions.
//
// In the compact sequential layout eight blocks' counters share one
// 64-byte cache line, so neighbouring workers' atomic updates would
// ping-pong the line even though their pixel regions are disjoint.
// SetParallel therefore also relayouts the table: parallel phases run on
// a padded copy with one cache line per block (parStride words), and the
// barrier relayouts back to the compact form so the sequential kernels
// keep their dense, prefetch-friendly indexing. Both directions reuse a
// pooled spare buffer; steady-state phase flips allocate nothing.
type Field struct {
	W, H int

	// Gain and GainSum are immutable after construction (see
	// BuildGainRowSums for the prefix-sum layout).
	Gain    []float64
	GainSum []float64
	// Cover holds the per-pixel coverage counts.
	Cover []int32

	// occ holds the per-block occupancy counters (row-major blocks, bW
	// per block row); nil disables occupancy tracking. Stride 2 in
	// sequential mode, parStride during parallel phases (see SetParallel).
	occ []int32
	// occSpare pools the inactive layout's buffer between phase flips.
	occSpare []int32
	bW       int
	// par switches occ access to atomics; toggled only at phase barriers.
	par bool
}

const (
	blockShift = 3
	blockSize  = 1 << blockShift
	blockMask  = blockSize - 1
	// thinSpan is the segment width below which sumSpan scans directly
	// instead of probing the occupancy blocks first.
	thinSpan = blockSize

	// parStride is the per-block word stride of the padded parallel
	// layout: 16 int32 = 64 bytes, one cache line per block (mass at
	// word 0, covered count at word 1, the rest padding). Go's allocator
	// page-aligns the large-image tables where contention matters, so
	// block lines don't straddle.
	parStride = 16
)

// blocksPerRow returns the occupancy-grid width for an image width w.
func blocksPerRow(w int) int { return (w + blockMask) >> blockShift }

// InitOcc (re)builds the occupancy counters from the current coverage
// buffer. State construction and checkpoint restore call it; after that
// the counters are maintained incrementally.
func (f *Field) InitOcc() {
	f.bW = blocksPerRow(f.W)
	bH := blocksPerRow(f.H)
	need := 2 * f.bW * bH
	if cap(f.occ) >= need {
		f.occ = f.occ[:need]
		for i := range f.occ {
			f.occ[i] = 0
		}
	} else {
		f.occ = make([]int32, need)
	}
	for y := 0; y < f.H; y++ {
		row := y * f.W
		base := (y >> blockShift) * f.bW
		for x := 0; x < f.W; x++ {
			if cv := f.Cover[row+x]; cv > 0 {
				n := 2 * (base + x>>blockShift)
				f.occ[n] += cv
				f.occ[n+1]++
			}
		}
	}
	if f.par {
		f.relayoutOcc(true)
	}
}

// SetParallel switches the occupancy counters between plain (sequential)
// and atomic (parallel local phase) access, relayouting the table so
// each block owns a full cache line while workers hammer it with
// atomics (see the false-sharing note in the type doc). It must only be
// called at a barrier, with no kernel running concurrently.
func (f *Field) SetParallel(on bool) {
	if on == f.par {
		return
	}
	f.par = on
	if f.occ != nil {
		f.relayoutOcc(on)
	}
}

// relayoutOcc rewrites the active occupancy table from the compact
// (stride-2) to the padded (stride-parStride) layout or back, swapping
// with the pooled spare buffer. Padding words are never read, so they
// are left stale.
func (f *Field) relayoutOcc(toPadded bool) {
	from, to := parStride, 2
	if toPadded {
		from, to = 2, parStride
	}
	nb := len(f.occ) / from
	need := nb * to
	buf := f.occSpare
	if cap(buf) >= need {
		buf = buf[:need]
	} else {
		buf = make([]int32, need)
	}
	for b := 0; b < nb; b++ {
		buf[to*b] = f.occ[from*b]
		buf[to*b+1] = f.occ[from*b+1]
	}
	f.occSpare = f.occ[:0]
	f.occ = buf
}

// occUniform reports whether every block touched by row-y span [xa, xb)
// is provably uniform for the given want (0: fully uncovered; 1: every
// covered pixel covered exactly once). False means "unknown" — the
// caller must scan.
func (f *Field) occUniform(y, xa, xb int, want int32) bool {
	base := (y >> blockShift) * f.bW
	b0 := base + xa>>blockShift
	b1 := base + (xb-1)>>blockShift
	if f.par {
		for b := b0; b <= b1; b++ {
			s := atomic.LoadInt32(&f.occ[parStride*b])
			if want == 0 {
				if s != 0 {
					return false
				}
			} else if s != atomic.LoadInt32(&f.occ[parStride*b+1]) {
				return false
			}
		}
		return true
	}
	for b := b0; b <= b1; b++ {
		s := f.occ[2*b]
		if want == 0 {
			if s != 0 {
				return false
			}
		} else if s != f.occ[2*b+1] {
			return false
		}
	}
	return true
}

// sumSpan returns Σ gain[i] over pixels x in [xa, xb) of row y whose
// coverage equals want, via the gsum prefix table plus a correction scan
// over deviating pixels — skipped entirely when the block occupancy
// proves the span uniform. Bit-identical to the scan in all cases: a
// skipped scan would have accumulated a correction of exactly 0.0.
func (f *Field) sumSpan(y, xa, xb int, want int32) float64 {
	p := y * (f.W + 1)
	total := f.GainSum[p+xb] - f.GainSum[p+xa]
	// Thin segments (move crescents, exchange slivers) are cheaper to
	// scan outright than to probe: the probe touches the same cache
	// lines as the scan and, for want != 0 near a live shape, almost
	// always fails anyway. Either way the result is exact.
	if f.occ != nil && want <= 1 && xb-xa > thinSpan && f.occUniform(y, xa, xb, want) {
		return total
	}
	a, b := y*f.W+xa, y*f.W+xb
	g := f.Gain[a:b]
	cvs := f.Cover[a:b]
	corr := 0.0
	// 4-wide deviation test: cv != want ⟺ cv^want != 0, so OR-ing four
	// XORed counts gives one branch per four pixels over conforming
	// stretches (the common case — deviations cluster at other shapes).
	i := 0
	for ; i+4 <= len(cvs); i += 4 {
		if (cvs[i]^want)|(cvs[i+1]^want)|(cvs[i+2]^want)|(cvs[i+3]^want) != 0 {
			for j := i; j < i+4; j++ {
				if cvs[j] != want {
					corr += g[j]
				}
			}
		}
	}
	for ; i < len(cvs); i++ {
		if cvs[i] != want {
			corr += g[i]
		}
	}
	return total - corr
}

// coverAddRange adds d to cover[xa:xb) of row y and keeps the block
// occupancy counters in sync, panicking if a count would go negative —
// that means the caller's bookkeeping desynchronised. The per-pixel
// transition counting is merged into the write loop, one flush per
// block crossing, honouring the parallel-mode ordering discipline
// (mass up first on increase, count down first on decrease).
func (f *Field) coverAddRange(y, xa, xb int, d int32) {
	if d == 0 || xa >= xb {
		return
	}
	row := y * f.W
	seg := f.Cover[row+xa : row+xb]
	if f.occ == nil {
		if d > 0 {
			for i := range seg {
				seg[i] += d
			}
			return
		}
		for i := range seg {
			seg[i] += d
			if seg[i] < 0 {
				panic("model: negative coverage count")
			}
		}
		return
	}
	base := (y >> blockShift) * f.bW
	if bx := xa >> blockShift; bx == (xb-1)>>blockShift {
		// Single-block segment — the overwhelmingly common case for move
		// crescents and exchange slivers: skip the block-group loop
		// scaffolding entirely.
		var trans int32
		if d > 0 {
			for j := range seg {
				if seg[j] == 0 {
					trans++
				}
				seg[j] += d
			}
		} else {
			for j := range seg {
				seg[j] += d
				if seg[j] < 0 {
					panic("model: negative coverage count")
				}
				if seg[j] == 0 {
					trans--
				}
			}
		}
		ds := d * int32(len(seg))
		if f.par {
			n := parStride * (base + bx)
			if d > 0 {
				atomic.AddInt32(&f.occ[n], ds)
				if trans != 0 {
					atomic.AddInt32(&f.occ[n+1], trans)
				}
			} else {
				if trans != 0 {
					atomic.AddInt32(&f.occ[n+1], trans)
				}
				atomic.AddInt32(&f.occ[n], ds)
			}
		} else {
			n := 2 * (base + bx)
			f.occ[n] += ds
			f.occ[n+1] += trans
		}
		return
	}
	for i := 0; i < len(seg); {
		bx := (xa + i) >> blockShift
		end := (bx+1)<<blockShift - xa
		if end > len(seg) {
			end = len(seg)
		}
		var trans int32
		if d > 0 {
			for j := i; j < end; j++ {
				if seg[j] == 0 {
					trans++
				}
				seg[j] += d
			}
		} else {
			for j := i; j < end; j++ {
				seg[j] += d
				if seg[j] < 0 {
					panic("model: negative coverage count")
				}
				if seg[j] == 0 {
					trans--
				}
			}
		}
		ds := d * int32(end-i)
		if f.par {
			n := parStride * (base + bx)
			if d > 0 {
				atomic.AddInt32(&f.occ[n], ds)
				if trans != 0 {
					atomic.AddInt32(&f.occ[n+1], trans)
				}
			} else {
				if trans != 0 {
					atomic.AddInt32(&f.occ[n+1], trans)
				}
				atomic.AddInt32(&f.occ[n], ds)
			}
		} else {
			n := 2 * (base + bx)
			f.occ[n] += ds
			f.occ[n+1] += trans
		}
		i = end
	}
}

// likDeltaShape sums the gain of c's span pixels whose coverage equals
// want — the shared body of LikDeltaAdd (want 0) and LikDeltaRemove
// (want 1).
func (f *Field) likDeltaShape(c geom.Ellipse, want int32) float64 {
	var buf [spanStack]geom.Span
	return f.sumSpans(geom.AppendShapeSpans(buf[:0], f.W, f.H, c), want)
}

// sumSpans sums the gain of the span pixels whose coverage equals want.
// One occupancy sweep over the spans' bounding box usually proves every
// span uniform at once, collapsing the whole sum to two prefix-table
// loads per row; otherwise each span falls back to sumSpan, which
// re-checks (and possibly scans) at span granularity. Bit-identical to
// per-span sumSpan calls either way. The spans must be sorted by row
// (as every span table in this package is).
func (f *Field) sumSpans(spans []geom.Span, want int32) float64 {
	if len(spans) == 0 {
		return 0
	}
	if f.occ != nil && want <= 1 && f.spansUniform(spans, want) {
		delta := 0.0
		w1 := f.W + 1
		gs := f.GainSum
		for _, sp := range spans {
			p := int(sp.Y) * w1
			delta += gs[p+int(sp.X1)] - gs[p+int(sp.X0)]
		}
		return delta
	}
	delta := 0.0
	for _, sp := range spans {
		delta += f.sumSpan(int(sp.Y), int(sp.X0), int(sp.X1), want)
	}
	return delta
}

// spansUniform sweeps the occupancy blocks of the spans' bounding box
// once and reports whether every block is uniform for want (see
// occUniform). The box is a superset of every span, so a uniform box
// proves every span's own block set uniform.
func (f *Field) spansUniform(spans []geom.Span, want int32) bool {
	x0, x1 := spans[0].X0, spans[0].X1
	for _, sp := range spans[1:] {
		if sp.X0 < x0 {
			x0 = sp.X0
		}
		if sp.X1 > x1 {
			x1 = sp.X1
		}
	}
	bx0, bx1 := int(x0)>>blockShift, int(x1-1)>>blockShift
	by0 := int(spans[0].Y) >> blockShift
	by1 := int(spans[len(spans)-1].Y) >> blockShift
	if f.par {
		for by := by0; by <= by1; by++ {
			row := by * f.bW
			for b := row + bx0; b <= row+bx1; b++ {
				s := atomic.LoadInt32(&f.occ[parStride*b])
				if want == 0 {
					if s != 0 {
						return false
					}
				} else if s != atomic.LoadInt32(&f.occ[parStride*b+1]) {
					return false
				}
			}
		}
		return true
	}
	for by := by0; by <= by1; by++ {
		row := by * f.bW
		for b := row + bx0; b <= row+bx1; b++ {
			s := f.occ[2*b]
			if want == 0 {
				if s != 0 {
					return false
				}
			} else if s != f.occ[2*b+1] {
				return false
			}
		}
	}
	return true
}

// LikDeltaAdd returns the change in relative log-likelihood from adding
// shape c, given the current coverage. Read-only.
func (f *Field) LikDeltaAdd(c geom.Ellipse) float64 {
	return f.likDeltaShape(c, 0)
}

// LikDeltaRemove returns the change in relative log-likelihood from
// removing shape c (which must currently be part of the coverage).
func (f *Field) LikDeltaRemove(c geom.Ellipse) float64 {
	return -f.likDeltaShape(c, 1)
}

// likDeltaMoveSpans prices replacing the shape with span table old by the
// one with span table new (both sorted by row, one span per row), summing
// only the per-row symmetric difference. Rows unique to one shape need no
// intersection logic, which also covers fully disjoint moves without a
// special case.
func (f *Field) likDeltaMoveSpans(old, new []geom.Span) float64 {
	delta := 0.0
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		oy, ny := old[i].Y, new[j].Y
		switch {
		case oy < ny:
			delta -= f.sumSpan(int(oy), int(old[i].X0), int(old[i].X1), 1)
			i++
		case ny < oy:
			delta += f.sumSpan(int(ny), int(new[j].X0), int(new[j].X1), 0)
			j++
		default:
			y := int(oy)
			oa, ob := int(old[i].X0), int(old[i].X1)
			na, nb := int(new[j].X0), int(new[j].X1)
			// Gained: new \ old (up to two pieces).
			if r := minInt(nb, oa); na < r {
				delta += f.sumSpan(y, na, r, 0)
			}
			if l := maxInt(na, ob); l < nb {
				delta += f.sumSpan(y, l, nb, 0)
			}
			// Lost: old \ new.
			if r := minInt(ob, na); oa < r {
				delta -= f.sumSpan(y, oa, r, 1)
			}
			if l := maxInt(oa, nb); l < ob {
				delta -= f.sumSpan(y, l, ob, 1)
			}
			i++
			j++
		}
	}
	for ; i < len(old); i++ {
		delta -= f.sumSpan(int(old[i].Y), int(old[i].X0), int(old[i].X1), 1)
	}
	for ; j < len(new); j++ {
		delta += f.sumSpan(int(new[j].Y), int(new[j].X0), int(new[j].X1), 0)
	}
	return delta
}

// coverMoveSpans applies the coverage update of a move given the two
// prepared span tables: +1 on new \ old, −1 on old \ new, same segment
// structure as likDeltaMoveSpans.
func (f *Field) coverMoveSpans(old, new []geom.Span) {
	// Shared rows dominate a move's symmetric difference; hoist the
	// row and block-row offsets plus the occ/par dispatch out of the
	// per-crescent calls there.
	fast := f.occ != nil && !f.par
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		oy, ny := old[i].Y, new[j].Y
		switch {
		case oy < ny:
			f.coverAddRange(int(oy), int(old[i].X0), int(old[i].X1), -1)
			i++
		case ny < oy:
			f.coverAddRange(int(ny), int(new[j].X0), int(new[j].X1), +1)
			j++
		default:
			y := int(oy)
			oa, ob := int(old[i].X0), int(old[i].X1)
			na, nb := int(new[j].X0), int(new[j].X1)
			if fast {
				row := y * f.W
				base := (y >> blockShift) * f.bW
				if r := minInt(nb, oa); na < r {
					f.coverCrescent(row, base, na, r, +1)
				}
				if l := maxInt(na, ob); l < nb {
					f.coverCrescent(row, base, l, nb, +1)
				}
				if r := minInt(ob, na); oa < r {
					f.coverCrescent(row, base, oa, r, -1)
				}
				if l := maxInt(oa, nb); l < ob {
					f.coverCrescent(row, base, l, ob, -1)
				}
			} else {
				if r := minInt(nb, oa); na < r {
					f.coverAddRange(y, na, r, +1)
				}
				if l := maxInt(na, ob); l < nb {
					f.coverAddRange(y, l, nb, +1)
				}
				if r := minInt(ob, na); oa < r {
					f.coverAddRange(y, oa, r, -1)
				}
				if l := maxInt(oa, nb); l < ob {
					f.coverAddRange(y, l, ob, -1)
				}
			}
			i++
			j++
		}
	}
	for ; i < len(old); i++ {
		f.coverAddRange(int(old[i].Y), int(old[i].X0), int(old[i].X1), -1)
	}
	for ; j < len(new); j++ {
		f.coverAddRange(int(new[j].Y), int(new[j].X0), int(new[j].X1), +1)
	}
}

// coverCrescent adds d to cover[row+xa : row+xb) and updates the block
// occupancy, in sequential mode only — the caller checked occ != nil &&
// !par once for the whole row and hoisted row (the row's pixel offset)
// and base (its block-row offset). Semantically identical to
// coverAddRange on the same range.
func (f *Field) coverCrescent(row, base, xa, xb int, d int32) {
	bx := xa >> blockShift
	if (xb-1)>>blockShift != bx {
		// Crosses block boundaries (rare for thin crescents): split at
		// them so each piece lands in one block.
		for s := xa; s < xb; {
			e := (s>>blockShift + 1) << blockShift
			if e > xb {
				e = xb
			}
			f.coverCrescent(row, base, s, e, d)
			s = e
		}
		return
	}
	var trans int32
	cv := f.Cover[row+xa : row+xb]
	if d > 0 {
		for j := range cv {
			if cv[j] == 0 {
				trans++
			}
			cv[j] += d
		}
	} else {
		for j := range cv {
			cv[j] += d
			if cv[j] < 0 {
				panic("model: negative coverage count")
			}
			if cv[j] == 0 {
				trans--
			}
		}
	}
	n := 2 * (base + bx)
	f.occ[n] += d * int32(len(cv))
	f.occ[n+1] += trans
}

// MoveSpans caches the span tables of a move's old and new shapes
// between the evaluation and the apply of the same proposal, so an
// accepted move replays the coverage update from the tables instead of
// recomputing every row span a second time. The cache is keyed on the
// exact (old, new) pair; CoverMovePrepared falls back to a fresh
// computation on any mismatch, so a stale cache can never corrupt
// state. Each engine/worker owns its own MoveSpans scratch — the tables
// must not live on the shared State, where speculative shadows would
// race on them.
type MoveSpans struct {
	OldC, NewC geom.Ellipse
	Valid      bool
	spans      []geom.Span
	nOld       int
}

// Matches reports whether the cached tables describe exactly the given
// move.
func (ms *MoveSpans) Matches(oldC, newC geom.Ellipse) bool {
	return ms != nil && ms.Valid && ms.OldC == oldC && ms.NewC == newC
}

// Invalidate drops the cached tables.
func (ms *MoveSpans) Invalidate() {
	if ms != nil {
		ms.Valid = false
	}
}

// LikDeltaMovePrepared prices replacing oldC with newC (oldC must be
// covered) and leaves both span tables in ms for the matching
// CoverMovePrepared call. Read-only on the field; steady-state calls
// reuse ms's backing array and allocate nothing. When ms already holds
// oldC's table — workers retrying moves of the same owned shape within
// a local phase hit this constantly — only newC's spans are computed;
// the tables are geometry-only, so a retained old table can never go
// stale. Tables are only meaningful on the field they were built for:
// each engine/worker owns one scratch per field.
func (f *Field) LikDeltaMovePrepared(oldC, newC geom.Ellipse, ms *MoveSpans) float64 {
	if ms.Valid && ms.OldC == oldC {
		all := geom.AppendShapeSpans(ms.spans[:ms.nOld], f.W, f.H, newC)
		ms.spans = all
		ms.NewC = newC
		return f.likDeltaMoveSpans(all[:ms.nOld], all[ms.nOld:])
	}
	ms.Valid = false
	all := geom.AppendShapeSpans(ms.spans[:0], f.W, f.H, oldC)
	ms.nOld = len(all)
	all = geom.AppendShapeSpans(all, f.W, f.H, newC)
	ms.spans = all
	ms.OldC, ms.NewC = oldC, newC
	ms.Valid = true
	return f.likDeltaMoveSpans(all[:ms.nOld], all[ms.nOld:])
}

// LikDeltaMove prices replacing oldC with newC without retaining span
// tables.
func (f *Field) LikDeltaMove(oldC, newC geom.Ellipse) float64 {
	var buf [2 * spanStack]geom.Span
	all := geom.AppendShapeSpans(buf[:0], f.W, f.H, oldC)
	nOld := len(all)
	all = geom.AppendShapeSpans(all, f.W, f.H, newC)
	return f.likDeltaMoveSpans(all[:nOld], all[nOld:])
}

// CoverMovePrepared applies the coverage update of the move cached in ms
// if it matches (oldC, newC), and recomputes the span tables otherwise.
// The tables are geometry-only (spans never depend on coverage), so they
// stay valid after the apply.
func (f *Field) CoverMovePrepared(oldC, newC geom.Ellipse, ms *MoveSpans) {
	if ms.Matches(oldC, newC) {
		f.coverMoveSpans(ms.spans[:ms.nOld], ms.spans[ms.nOld:])
		return
	}
	f.CoverMove(oldC, newC)
}

// CoverMove updates the coverage for a move from oldC to newC in one
// pass over the two span tables; per row only the symmetric difference
// is touched.
func (f *Field) CoverMove(oldC, newC geom.Ellipse) {
	var buf [2 * spanStack]geom.Span
	all := geom.AppendShapeSpans(buf[:0], f.W, f.H, oldC)
	nOld := len(all)
	all = geom.AppendShapeSpans(all, f.W, f.H, newC)
	f.coverMoveSpans(all[:nOld], all[nOld:])
}

// CoverAdd adjusts the coverage counts for shape c by d (+1 to add the
// shape, −1 to remove it).
func (f *Field) CoverAdd(c geom.Ellipse, d int32) {
	var buf [spanStack]geom.Span
	for _, sp := range geom.AppendShapeSpans(buf[:0], f.W, f.H, c) {
		f.coverAddRange(int(sp.Y), int(sp.X0), int(sp.X1), d)
	}
}

// FusedAddCover adds shape c to the coverage and returns the
// log-likelihood delta in the same span walk — one span computation and
// one pass over the touched pixels instead of an eval walk plus an apply
// walk. The returned delta is bit-identical to LikDeltaAdd on the
// pre-mutation state followed by CoverAdd(+1).
func (f *Field) FusedAddCover(c geom.Ellipse) float64 {
	var buf [spanStack]geom.Span
	delta := 0.0
	for _, sp := range geom.AppendShapeSpans(buf[:0], f.W, f.H, c) {
		y, xa, xb := int(sp.Y), int(sp.X0), int(sp.X1)
		delta += f.sumSpan(y, xa, xb, 0)
		f.coverAddRange(y, xa, xb, +1)
	}
	return delta
}

// FusedRemoveCover removes shape c (which must be covered) and returns
// the log-likelihood delta in the same span walk; bit-identical to
// LikDeltaRemove followed by CoverAdd(−1).
func (f *Field) FusedRemoveCover(c geom.Ellipse) float64 {
	var buf [spanStack]geom.Span
	delta := 0.0
	for _, sp := range geom.AppendShapeSpans(buf[:0], f.W, f.H, c) {
		y, xa, xb := int(sp.Y), int(sp.X0), int(sp.X1)
		delta -= f.sumSpan(y, xa, xb, 1)
		f.coverAddRange(y, xa, xb, -1)
	}
	return delta
}

// FusedMoveCover replaces oldC (which must be covered) with newC,
// returning the log-likelihood delta, in a single walk over the two span
// tables. Each symmetric-difference segment is priced and then written;
// the segments are pairwise disjoint, so the deltas are bit-identical to
// a full LikDeltaMove evaluation followed by CoverMove.
func (f *Field) FusedMoveCover(oldC, newC geom.Ellipse) float64 {
	var buf [2 * spanStack]geom.Span
	all := geom.AppendShapeSpans(buf[:0], f.W, f.H, oldC)
	nOld := len(all)
	all = geom.AppendShapeSpans(all, f.W, f.H, newC)
	old, new := all[:nOld], all[nOld:]
	delta := 0.0
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		oy, ny := old[i].Y, new[j].Y
		switch {
		case oy < ny:
			y, xa, xb := int(oy), int(old[i].X0), int(old[i].X1)
			delta -= f.sumSpan(y, xa, xb, 1)
			f.coverAddRange(y, xa, xb, -1)
			i++
		case ny < oy:
			y, xa, xb := int(ny), int(new[j].X0), int(new[j].X1)
			delta += f.sumSpan(y, xa, xb, 0)
			f.coverAddRange(y, xa, xb, +1)
			j++
		default:
			y := int(oy)
			oa, ob := int(old[i].X0), int(old[i].X1)
			na, nb := int(new[j].X0), int(new[j].X1)
			if r := minInt(nb, oa); na < r {
				delta += f.sumSpan(y, na, r, 0)
				f.coverAddRange(y, na, r, +1)
			}
			if l := maxInt(na, ob); l < nb {
				delta += f.sumSpan(y, l, nb, 0)
				f.coverAddRange(y, l, nb, +1)
			}
			if r := minInt(ob, na); oa < r {
				delta -= f.sumSpan(y, oa, r, 1)
				f.coverAddRange(y, oa, r, -1)
			}
			if l := maxInt(oa, nb); l < ob {
				delta -= f.sumSpan(y, l, ob, 1)
				f.coverAddRange(y, l, ob, -1)
			}
			i++
			j++
		}
	}
	for ; i < len(old); i++ {
		y, xa, xb := int(old[i].Y), int(old[i].X0), int(old[i].X1)
		delta -= f.sumSpan(y, xa, xb, 1)
		f.coverAddRange(y, xa, xb, -1)
	}
	for ; j < len(new); j++ {
		y, xa, xb := int(new[j].Y), int(new[j].X0), int(new[j].X1)
		delta += f.sumSpan(y, xa, xb, 0)
		f.coverAddRange(y, xa, xb, +1)
	}
	return delta
}

// occConsistent reports whether the occupancy counters match a fresh
// rebuild from the coverage buffer. Tests and CheckConsistency use it;
// a Field without occupancy tracking is trivially consistent.
func (f *Field) occConsistent() bool {
	if f.occ == nil {
		return true
	}
	stride := 2
	if f.par {
		stride = parStride
	}
	ref := Field{W: f.W, H: f.H, Cover: f.Cover}
	ref.InitOcc()
	nb := len(ref.occ) / 2
	if len(f.occ) != stride*nb {
		return false
	}
	for b := 0; b < nb; b++ {
		if f.occ[stride*b] != ref.occ[2*b] || f.occ[stride*b+1] != ref.occ[2*b+1] {
			return false
		}
	}
	return true
}
