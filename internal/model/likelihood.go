package model

import (
	"math"

	"repro/internal/geom"
)

// The likelihood primitives below operate on two flat buffers shared by
// all engines:
//
//   - gain: per-pixel log-likelihood gain of being covered (Params.
//     PixelGain applied to the filtered image), immutable after setup;
//   - cover: per-pixel count of circles covering the pixel, mutated as
//     circles are added, removed or moved.
//
// A pixel contributes its gain exactly when cover > 0, so the relative
// log-likelihood is Σ_{cover>0} gain. All functions touch only pixels
// inside the bounding box of the circle(s) involved, which is what makes
// local moves partition-parallel: workers whose circles live in disjoint
// regions mutate disjoint slices of cover.
//
// A pixel (x, y) is covered by circle c when its centre (x+0.5, y+0.5)
// lies inside c. This matches the renderer's definition closely enough
// that the likelihood is sharp at the true configuration.

// discSpan returns the clipped integer pixel range of c's bounding box.
func discSpan(w, h int, c geom.Circle) (x0, y0, x1, y1 int) {
	x0 = clampIdx(int(math.Floor(c.X-c.R-0.5)), 0, w)
	y0 = clampIdx(int(math.Floor(c.Y-c.R-0.5)), 0, h)
	x1 = clampIdx(int(math.Ceil(c.X+c.R+0.5)), 0, w)
	y1 = clampIdx(int(math.Ceil(c.Y+c.R+0.5)), 0, h)
	return
}

// LikDeltaAdd returns the change in relative log-likelihood from adding
// circle c, given the current coverage. Read-only.
func LikDeltaAdd(gain []float64, cover []int32, w, h int, c geom.Circle) float64 {
	x0, y0, x1, y1 := discSpan(w, h, c)
	r2 := c.R * c.R
	delta := 0.0
	for y := y0; y < y1; y++ {
		dy := float64(y) + 0.5 - c.Y
		dy2 := dy * dy
		row := y * w
		for x := x0; x < x1; x++ {
			dx := float64(x) + 0.5 - c.X
			if dx*dx+dy2 <= r2 && cover[row+x] == 0 {
				delta += gain[row+x]
			}
		}
	}
	return delta
}

// LikDeltaRemove returns the change in relative log-likelihood from
// removing circle c (which must currently be part of the coverage).
func LikDeltaRemove(gain []float64, cover []int32, w, h int, c geom.Circle) float64 {
	x0, y0, x1, y1 := discSpan(w, h, c)
	r2 := c.R * c.R
	delta := 0.0
	for y := y0; y < y1; y++ {
		dy := float64(y) + 0.5 - c.Y
		dy2 := dy * dy
		row := y * w
		for x := x0; x < x1; x++ {
			dx := float64(x) + 0.5 - c.X
			if dx*dx+dy2 <= r2 && cover[row+x] == 1 {
				delta -= gain[row+x]
			}
		}
	}
	return delta
}

// LikDeltaMove returns the change in relative log-likelihood from
// replacing old with new (old must be covered). Overlapping bounding
// boxes are visited once as a union; disjoint boxes (the replace move
// relocates circles across the whole image) are processed separately so
// the cost is O(area of the two discs), never O(image).
func LikDeltaMove(gain []float64, cover []int32, w, h int, oldC, newC geom.Circle) float64 {
	ox0, oy0, ox1, oy1 := discSpan(w, h, oldC)
	nx0, ny0, nx1, ny1 := discSpan(w, h, newC)
	if ox1 <= nx0 || nx1 <= ox0 || oy1 <= ny0 || ny1 <= oy0 {
		// Disjoint pixel regions: the removal and addition cannot
		// interact, so evaluate them separately. LikDeltaAdd must see
		// the coverage without oldC's contribution, but oldC's disc
		// does not reach newC's box, so the buffers agree there.
		return LikDeltaRemove(gain, cover, w, h, oldC) +
			LikDeltaAdd(gain, cover, w, h, newC)
	}
	x0, y0 := minInt(ox0, nx0), minInt(oy0, ny0)
	x1, y1 := maxInt(ox1, nx1), maxInt(oy1, ny1)
	or2 := oldC.R * oldC.R
	nr2 := newC.R * newC.R
	delta := 0.0
	for y := y0; y < y1; y++ {
		cy := float64(y) + 0.5
		ody := cy - oldC.Y
		ndy := cy - newC.Y
		ody2, ndy2 := ody*ody, ndy*ndy
		row := y * w
		for x := x0; x < x1; x++ {
			cx := float64(x) + 0.5
			odx := cx - oldC.X
			ndx := cx - newC.X
			inOld := odx*odx+ody2 <= or2
			inNew := ndx*ndx+ndy2 <= nr2
			switch {
			case inOld == inNew:
				// Coverage by this circle unchanged.
			case inNew: // gained
				if cover[row+x] == 0 {
					delta += gain[row+x]
				}
			default: // lost
				if cover[row+x] == 1 {
					delta -= gain[row+x]
				}
			}
		}
	}
	return delta
}

// CoverAdd adjusts the coverage counts for circle c by d (+1 to add the
// circle, -1 to remove it). It panics if a count would go negative — that
// means the caller's bookkeeping desynchronised.
func CoverAdd(cover []int32, w, h int, c geom.Circle, d int32) {
	x0, y0, x1, y1 := discSpan(w, h, c)
	r2 := c.R * c.R
	for y := y0; y < y1; y++ {
		dy := float64(y) + 0.5 - c.Y
		dy2 := dy * dy
		row := y * w
		for x := x0; x < x1; x++ {
			dx := float64(x) + 0.5 - c.X
			if dx*dx+dy2 <= r2 {
				cover[row+x] += d
				if cover[row+x] < 0 {
					panic("model: negative coverage count")
				}
			}
		}
	}
}

// CoverMove updates the coverage for a move from old to new in one pass
// over the union bounding box, or two passes when the boxes are disjoint
// (so relocation moves never scan the space between the discs).
func CoverMove(cover []int32, w, h int, oldC, newC geom.Circle) {
	ox0, oy0, ox1, oy1 := discSpan(w, h, oldC)
	nx0, ny0, nx1, ny1 := discSpan(w, h, newC)
	if ox1 <= nx0 || nx1 <= ox0 || oy1 <= ny0 || ny1 <= oy0 {
		CoverAdd(cover, w, h, oldC, -1)
		CoverAdd(cover, w, h, newC, +1)
		return
	}
	x0, y0 := minInt(ox0, nx0), minInt(oy0, ny0)
	x1, y1 := maxInt(ox1, nx1), maxInt(oy1, ny1)
	or2 := oldC.R * oldC.R
	nr2 := newC.R * newC.R
	for y := y0; y < y1; y++ {
		cy := float64(y) + 0.5
		ody := cy - oldC.Y
		ndy := cy - newC.Y
		ody2, ndy2 := ody*ody, ndy*ndy
		row := y * w
		for x := x0; x < x1; x++ {
			cx := float64(x) + 0.5
			odx := cx - oldC.X
			ndx := cx - newC.X
			inOld := odx*odx+ody2 <= or2
			inNew := ndx*ndx+ndy2 <= nr2
			switch {
			case inOld && !inNew:
				cover[row+x]--
				if cover[row+x] < 0 {
					panic("model: negative coverage count")
				}
			case inNew && !inOld:
				cover[row+x]++
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
