package model

import (
	"repro/internal/geom"
)

// The likelihood primitives below operate on two flat buffers shared by
// all engines:
//
//   - gain: per-pixel log-likelihood gain of being covered (Params.
//     PixelGain applied to the filtered image), immutable after setup;
//   - cover: per-pixel count of circles covering the pixel, mutated as
//     circles are added, removed or moved.
//
// A pixel contributes its gain exactly when cover > 0, so the relative
// log-likelihood is Σ_{cover>0} gain. All functions touch only pixels
// inside the bounding box of the circle(s) involved, which is what makes
// local moves partition-parallel: workers whose circles live in disjoint
// regions mutate disjoint slices of cover.
//
// A pixel (x, y) is covered by circle c when its centre (x+0.5, y+0.5)
// lies inside c. This matches the renderer's definition closely enough
// that the likelihood is sharp at the true configuration.
//
// # Scanline kernels and span invariants
//
// Every kernel walks the disc as analytic scanline spans (geom.Ellipse.
// RowSpan): for each pixel row, one sqrt yields the covered x-interval
// [xa, xb), and the inner loops run branch-minimally over gain/cover
// sub-slices — roughly π/4 of the bounding-box pixels, with no per-pixel
// multiply-compare. The spans obey two invariants the rest of the package
// leans on:
//
//  1. Exactness: RowSpan pins its edges to the canonical coverage
//     predicate (dx²+dy² ≤ r² at the pixel centre), so span kernels visit
//     *exactly* the pixels the historical per-pixel scans visited. The
//     retained naive reference kernels in naive.go are pinned to the span
//     kernels by differential tests: likelihood deltas agree to 1e-9 and
//     coverage arrays match exactly.
//  2. Disjointness: spans of a circle are contained in its clipped pixel
//     bounding box, so the partition-parallel safety argument above is
//     unchanged — owned circles still touch only pixels strictly inside
//     their cell.
//
// Move kernels (LikDeltaMove, CoverMove) intersect the old and new spans
// per row, so the symmetric difference of the two discs is enumerated as
// at most four sub-intervals per row without classifying individual
// pixels.

// discSpan returns the clipped integer pixel range of c's bounding box.
func discSpan(w, h int, c geom.Ellipse) (x0, y0, x1, y1 int) {
	x0, x1 = c.PixelCols(w)
	y0, y1 = c.PixelRows(h)
	return
}

// BuildGainRowSums returns per-row prefix sums of gain with stride w+1:
// sums[y*(w+1)+x] = Σ_{x'<x} gain[y*w+x']. Gain is immutable, so the
// table is built once per state; with it, the total gain of any row span
// is two loads and a subtract, and the likelihood kernels only scan the
// cover buffer for the (rare) pixels whose coverage deviates from the
// span's typical value.
func BuildGainRowSums(gain []float64, w, h int) []float64 {
	sums := make([]float64, (w+1)*h)
	for y := 0; y < h; y++ {
		row := y * w
		p := y * (w + 1)
		acc := 0.0
		for x := 0; x < w; x++ {
			acc += gain[row+x]
			sums[p+x+1] = acc
		}
	}
	return sums
}

// sumCoverEq returns Σ gain[i] over pixels x in [xa, xb) of row y whose
// coverage equals want, using the identity
//
//	Σ_{cover==want} gain = Σ gain − Σ_{cover≠want} gain,
//
// where the first term comes from the gsum prefix table in O(1) and the
// second is a correction scan that loads gain only at deviating pixels.
// Callers arrange want to be the span's typical coverage (0 when adding
// over mostly-empty area, 1 when removing a live disc), so the
// correction branch is rarely taken and the hot loop is one int32
// compare per pixel — no float loads, no add chain.
func sumCoverEq(gain, gsum []float64, cover []int32, w, y, xa, xb int, want int32) float64 {
	p := y * (w + 1)
	total := gsum[p+xb] - gsum[p+xa]
	a, b := y*w+xa, y*w+xb
	g := gain[a:b]
	corr := 0.0
	for i, cv := range cover[a:b] {
		if cv != want {
			corr += g[i]
		}
	}
	return total - corr
}

// spanStack is the per-call stack capacity for batched disc spans: discs
// up to r ≈ 47 px stay allocation-free; larger ones spill to the heap,
// where the O(r²) pixel work amortises the allocation.
const spanStack = 96

// likDeltaDisc sums the gain of c's span pixels whose coverage equals
// want — the shared body of LikDeltaAdd (want 0) and LikDeltaRemove
// (want 1), so both directions run the identical compiled hot loop.
func likDeltaDisc(gain, gsum []float64, cover []int32, w, h int, c geom.Ellipse, want int32) float64 {
	var buf [spanStack]geom.Span
	delta := 0.0
	for _, sp := range geom.AppendShapeSpans(buf[:0], w, h, c) {
		delta += sumCoverEq(gain, gsum, cover, w, int(sp.Y), int(sp.X0), int(sp.X1), want)
	}
	return delta
}

// LikDeltaAdd returns the change in relative log-likelihood from adding
// circle c, given the current coverage. Read-only. gsum must be the
// BuildGainRowSums table of gain.
func LikDeltaAdd(gain, gsum []float64, cover []int32, w, h int, c geom.Ellipse) float64 {
	return likDeltaDisc(gain, gsum, cover, w, h, c, 0)
}

// LikDeltaRemove returns the change in relative log-likelihood from
// removing circle c (which must currently be part of the coverage).
func LikDeltaRemove(gain, gsum []float64, cover []int32, w, h int, c geom.Ellipse) float64 {
	return -likDeltaDisc(gain, gsum, cover, w, h, c, 1)
}

// LikDeltaMove returns the change in relative log-likelihood from
// replacing old with new (old must be covered). Overlapping bounding
// boxes are visited once, intersecting the two discs' row spans so only
// the symmetric difference is scanned; disjoint boxes (the replace move
// relocates circles across the whole image) are processed separately so
// the cost is O(area of the two discs), never O(image).
func LikDeltaMove(gain, gsum []float64, cover []int32, w, h int, oldC, newC geom.Ellipse) float64 {
	ox0, oy0, ox1, oy1 := discSpan(w, h, oldC)
	nx0, ny0, nx1, ny1 := discSpan(w, h, newC)
	if ox1 <= nx0 || nx1 <= ox0 || oy1 <= ny0 || ny1 <= oy0 {
		// Disjoint pixel regions: the removal and addition cannot
		// interact, so evaluate them separately. LikDeltaAdd must see
		// the coverage without oldC's contribution, but oldC's disc
		// does not reach newC's box, so the buffers agree there.
		return LikDeltaRemove(gain, gsum, cover, w, h, oldC) +
			LikDeltaAdd(gain, gsum, cover, w, h, newC)
	}
	y0, y1 := minInt(oy0, ny0), maxInt(oy1, ny1)
	oldS, newS := oldC.Spanner(), newC.Spanner()
	delta := 0.0
	for y := y0; y < y1; y++ {
		oa, ob := oldS.RowSpan(y, ox0, ox1)
		na, nb := newS.RowSpan(y, nx0, nx1)
		if oa >= ob { // nothing lost on this row
			if na < nb {
				delta += sumCoverEq(gain, gsum, cover, w, y, na, nb, 0)
			}
			continue
		}
		if na >= nb { // nothing gained on this row
			delta -= sumCoverEq(gain, gsum, cover, w, y, oa, ob, 1)
			continue
		}
		// Gained: new \ old (up to two pieces).
		if r := minInt(nb, oa); na < r {
			delta += sumCoverEq(gain, gsum, cover, w, y, na, r, 0)
		}
		if l := maxInt(na, ob); l < nb {
			delta += sumCoverEq(gain, gsum, cover, w, y, l, nb, 0)
		}
		// Lost: old \ new.
		if r := minInt(ob, na); oa < r {
			delta -= sumCoverEq(gain, gsum, cover, w, y, oa, r, 1)
		}
		if l := maxInt(oa, nb); l < ob {
			delta -= sumCoverEq(gain, gsum, cover, w, y, l, ob, 1)
		}
	}
	return delta
}

// coverAddRange adds d to cover[a:b], panicking if a count would go
// negative — that means the caller's bookkeeping desynchronised.
func coverAddRange(cover []int32, a, b int, d int32) {
	seg := cover[a:b]
	if d >= 0 {
		for i := range seg {
			seg[i] += d
		}
		return
	}
	for i := range seg {
		seg[i] += d
		if seg[i] < 0 {
			panic("model: negative coverage count")
		}
	}
}

// CoverAdd adjusts the coverage counts for circle c by d (+1 to add the
// circle, -1 to remove it). It panics if a count would go negative — that
// means the caller's bookkeeping desynchronised.
func CoverAdd(cover []int32, w, h int, c geom.Ellipse, d int32) {
	var buf [spanStack]geom.Span
	for _, sp := range geom.AppendShapeSpans(buf[:0], w, h, c) {
		row := int(sp.Y) * w
		coverAddRange(cover, row+int(sp.X0), row+int(sp.X1), d)
	}
}

// CoverMove updates the coverage for a move from old to new in one pass
// over the union bounding box, or two passes when the boxes are disjoint
// (so relocation moves never scan the space between the discs). Per row
// only the symmetric difference of the two spans is touched.
func CoverMove(cover []int32, w, h int, oldC, newC geom.Ellipse) {
	ox0, oy0, ox1, oy1 := discSpan(w, h, oldC)
	nx0, ny0, nx1, ny1 := discSpan(w, h, newC)
	if ox1 <= nx0 || nx1 <= ox0 || oy1 <= ny0 || ny1 <= oy0 {
		CoverAdd(cover, w, h, oldC, -1)
		CoverAdd(cover, w, h, newC, +1)
		return
	}
	y0, y1 := minInt(oy0, ny0), maxInt(oy1, ny1)
	oldS, newS := oldC.Spanner(), newC.Spanner()
	for y := y0; y < y1; y++ {
		oa, ob := oldS.RowSpan(y, ox0, ox1)
		na, nb := newS.RowSpan(y, nx0, nx1)
		row := y * w
		if oa >= ob {
			if na < nb {
				coverAddRange(cover, row+na, row+nb, +1)
			}
			continue
		}
		if na >= nb {
			coverAddRange(cover, row+oa, row+ob, -1)
			continue
		}
		// Gained: new \ old.
		if r := minInt(nb, oa); na < r {
			coverAddRange(cover, row+na, row+r, +1)
		}
		if l := maxInt(na, ob); l < nb {
			coverAddRange(cover, row+l, row+nb, +1)
		}
		// Lost: old \ new.
		if r := minInt(ob, na); oa < r {
			coverAddRange(cover, row+oa, row+r, -1)
		}
		if l := maxInt(oa, nb); l < ob {
			coverAddRange(cover, row+l, row+ob, -1)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
