package model

import (
	"repro/internal/geom"
)

// The likelihood primitives below operate on two flat buffers shared by
// all engines:
//
//   - gain: per-pixel log-likelihood gain of being covered (Params.
//     PixelGain applied to the filtered image), immutable after setup;
//   - cover: per-pixel count of circles covering the pixel, mutated as
//     circles are added, removed or moved.
//
// A pixel contributes its gain exactly when cover > 0, so the relative
// log-likelihood is Σ_{cover>0} gain. All functions touch only pixels
// inside the bounding box of the circle(s) involved, which is what makes
// local moves partition-parallel: workers whose circles live in disjoint
// regions mutate disjoint slices of cover.
//
// A pixel (x, y) is covered by circle c when its centre (x+0.5, y+0.5)
// lies inside c. This matches the renderer's definition closely enough
// that the likelihood is sharp at the true configuration.
//
// # Scanline kernels and span invariants
//
// Every kernel walks the disc as analytic scanline spans (geom.
// AppendShapeSpans): for each pixel row, one sqrt yields the covered
// x-interval [xa, xb), gathered into a fixed-size span table whose inner
// loops run branch-minimally over gain/cover sub-slices — roughly π/4 of
// the bounding-box pixels, with no per-pixel multiply-compare. The spans
// obey two invariants the rest of the package leans on:
//
//  1. Exactness: span edges are pinned to the canonical coverage
//     predicate (dx²+dy² ≤ r² at the pixel centre), so span kernels visit
//     *exactly* the pixels the historical per-pixel scans visited. The
//     retained naive reference kernels in naive.go are pinned to the span
//     kernels by differential tests: likelihood deltas agree to 1e-9 and
//     coverage arrays match exactly.
//  2. Disjointness: spans of a circle are contained in its clipped pixel
//     bounding box, so the partition-parallel safety argument above is
//     unchanged — owned circles still touch only pixels strictly inside
//     their cell.
//
// The batched kernel bodies live on Field (field.go), which adds the 8×8
// block occupancy skip and the fused eval+apply walks. The free
// functions below are thin views over the same buffers with occupancy
// tracking disabled; they produce bit-identical results and keep
// external callers and the historical differential tests compiling
// unchanged.

// BuildGainRowSums returns per-row prefix sums of gain with stride w+1:
// sums[y*(w+1)+x] = Σ_{x'<x} gain[y*w+x']. Gain is immutable, so the
// table is built once per state; with it, the total gain of any row span
// is two loads and a subtract, and the likelihood kernels only scan the
// cover buffer for the (rare) pixels whose coverage deviates from the
// span's typical value.
func BuildGainRowSums(gain []float64, w, h int) []float64 {
	sums := make([]float64, (w+1)*h)
	for y := 0; y < h; y++ {
		row := y * w
		p := y * (w + 1)
		acc := 0.0
		for x := 0; x < w; x++ {
			acc += gain[row+x]
			sums[p+x+1] = acc
		}
	}
	return sums
}

// discSpan returns the clipped integer pixel range of c's bounding box
// (the naive reference kernels scan it per pixel).
func discSpan(w, h int, c geom.Ellipse) (x0, y0, x1, y1 int) {
	x0, x1 = c.PixelCols(w)
	y0, y1 = c.PixelRows(h)
	return
}

// spanStack is the per-call stack capacity for batched shape spans:
// shapes up to r ≈ 47 px stay allocation-free; larger ones spill to the
// heap, where the O(r²) pixel work amortises the allocation.
const spanStack = 96

// fieldView wraps raw buffers in a Field without occupancy tracking.
func fieldView(gain, gsum []float64, cover []int32, w, h int) Field {
	return Field{W: w, H: h, Gain: gain, GainSum: gsum, Cover: cover}
}

// LikDeltaAdd returns the change in relative log-likelihood from adding
// circle c, given the current coverage. Read-only. gsum must be the
// BuildGainRowSums table of gain.
func LikDeltaAdd(gain, gsum []float64, cover []int32, w, h int, c geom.Ellipse) float64 {
	f := fieldView(gain, gsum, cover, w, h)
	return f.LikDeltaAdd(c)
}

// LikDeltaRemove returns the change in relative log-likelihood from
// removing circle c (which must currently be part of the coverage).
func LikDeltaRemove(gain, gsum []float64, cover []int32, w, h int, c geom.Ellipse) float64 {
	f := fieldView(gain, gsum, cover, w, h)
	return f.LikDeltaRemove(c)
}

// LikDeltaMove returns the change in relative log-likelihood from
// replacing old with new (old must be covered). The two span tables are
// merge-walked by row, so only the symmetric difference of the shapes is
// scanned and the cost is O(area of the two discs), never O(image).
func LikDeltaMove(gain, gsum []float64, cover []int32, w, h int, oldC, newC geom.Ellipse) float64 {
	f := fieldView(gain, gsum, cover, w, h)
	return f.LikDeltaMove(oldC, newC)
}

// CoverAdd adjusts the coverage counts for circle c by d (+1 to add the
// circle, -1 to remove it). It panics if a count would go negative — that
// means the caller's bookkeeping desynchronised.
func CoverAdd(cover []int32, w, h int, c geom.Ellipse, d int32) {
	f := fieldView(nil, nil, cover, w, h)
	f.CoverAdd(c, d)
}

// CoverMove updates the coverage for a move from old to new in one walk
// over the two span tables; per row only the symmetric difference of the
// two spans is touched.
func CoverMove(cover []int32, w, h int, oldC, newC geom.Ellipse) {
	f := fieldView(nil, nil, cover, w, h)
	f.CoverMove(oldC, newC)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
