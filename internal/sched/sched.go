// Package sched provides the task-scheduling substrate used by the
// parallel engines: a dynamically load-balanced worker pool, static
// longest-processing-time (LPT) assignment, and a work-stealing runner.
// §VI of the paper calls for exactly this: "the processor dead-time that
// results can be reclaimed through the use of a task scheduler, allowing
// more partitions than there are available processors to be employed".
package sched

import (
	"sort"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to `workers` goroutines,
// pulling indices from a shared queue so that uneven task costs balance
// dynamically. It blocks until every call returns. workers <= 1 runs
// inline.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	queue := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	wg.Wait()
}

// RunTasks executes the given closures on up to `workers` goroutines.
func RunTasks(tasks []func(), workers int) {
	ForEach(len(tasks), workers, func(i int) { tasks[i]() })
}

// LPTAssign distributes tasks with the given costs over `workers` bins
// using the longest-processing-time heuristic: sort descending, place
// each task on the currently least-loaded bin. The result maps each bin
// to the task indices assigned to it. LPT's makespan is at most 4/3 of
// optimal.
func LPTAssign(costs []float64, workers int) [][]int {
	if workers < 1 {
		panic("sched: LPTAssign needs at least one worker")
	}
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })

	bins := make([][]int, workers)
	loads := make([]float64, workers)
	for _, task := range order {
		best := 0
		for b := 1; b < workers; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		bins[best] = append(bins[best], task)
		loads[best] += costs[task]
	}
	return bins
}

// Makespan returns the maximum bin load of an assignment.
func Makespan(costs []float64, bins [][]int) float64 {
	worst := 0.0
	for _, bin := range bins {
		load := 0.0
		for _, t := range bin {
			load += costs[t]
		}
		if load > worst {
			worst = load
		}
	}
	return worst
}

// SumCosts returns the total cost — the sequential makespan.
func SumCosts(costs []float64) float64 {
	total := 0.0
	for _, c := range costs {
		total += c
	}
	return total
}
