package sched

import (
	"context"
	"fmt"
)

// Pool is a bounded, context-aware worker pool. Unlike ForEach, whose
// workers live only for one call, a Pool's capacity is shared by every
// orchestrator holding a reference to it — submitting more work than
// there are slots queues the excess, so concurrent batches cannot
// oversubscribe the machine. The zero Pool is not usable; construct with
// NewPool.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting at most `workers` concurrent tasks.
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("sched: NewPool needs at least one worker, got %d", workers))
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case. Every successful Acquire must be paired with
// exactly one Release.
func (p *Pool) Acquire(ctx context.Context) error {
	// Prefer the cancellation branch when both are ready.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot obtained by Acquire.
func (p *Pool) Release() {
	select {
	case <-p.sem:
	default:
		panic("sched: Release without matching Acquire")
	}
}

// Quiesce blocks until every in-flight task has Released its slot, or
// ctx is done — the graceful-shutdown hook: an orchestrator that has
// stopped submitting work calls Quiesce to wait (with a deadline) for
// the tasks still running. The pool is left empty and reusable either
// way; on timeout the stragglers keep their slots and ctx's error is
// returned.
func (p *Pool) Quiesce(ctx context.Context) error {
	held := 0
	for held < cap(p.sem) {
		select {
		case p.sem <- struct{}{}:
			held++
		case <-ctx.Done():
			for ; held > 0; held-- {
				<-p.sem
			}
			return ctx.Err()
		}
	}
	for ; held > 0; held-- {
		<-p.sem
	}
	return nil
}
