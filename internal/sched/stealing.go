package sched

import "sync"

// StealingRunner executes tasks from per-worker deques with work
// stealing: each worker pops from the tail of its own deque and, when
// empty, steals from the head of a victim's. Compared with the shared
// queue of ForEach it keeps hot tasks local to the worker that spawned
// them, which matters when partition workers enqueue follow-up work.
type StealingRunner struct {
	deques []*deque
}

type deque struct {
	mu    sync.Mutex
	items []func()
}

func (d *deque) pushTail(fn func()) {
	d.mu.Lock()
	d.items = append(d.items, fn)
	d.mu.Unlock()
}

func (d *deque) popTail() (func(), bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil, false
	}
	fn := d.items[n-1]
	d.items = d.items[:n-1]
	return fn, true
}

func (d *deque) stealHead() (func(), bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil, false
	}
	fn := d.items[0]
	d.items = d.items[1:]
	return fn, true
}

// NewStealingRunner creates a runner with one deque per worker.
func NewStealingRunner(workers int) *StealingRunner {
	if workers < 1 {
		panic("sched: NewStealingRunner needs at least one worker")
	}
	r := &StealingRunner{deques: make([]*deque, workers)}
	for i := range r.deques {
		r.deques[i] = &deque{}
	}
	return r
}

// Workers returns the number of worker deques.
func (r *StealingRunner) Workers() int { return len(r.deques) }

// Submit enqueues a task on the given worker's deque. It must be called
// before Run; Run drains all deques.
func (r *StealingRunner) Submit(worker int, fn func()) {
	r.deques[worker%len(r.deques)].pushTail(fn)
}

// Run executes every submitted task and blocks until all are done.
// Workers exhaust their own deque first, then sweep the others.
func (r *StealingRunner) Run() {
	var wg sync.WaitGroup
	n := len(r.deques)
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(self int) {
			defer wg.Done()
			for {
				if fn, ok := r.deques[self].popTail(); ok {
					fn()
					continue
				}
				stolen := false
				for off := 1; off < n; off++ {
					victim := (self + off) % n
					if fn, ok := r.deques[victim].stealHead(); ok {
						fn()
						stolen = true
						break
					}
				}
				if !stolen {
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
