package sched

import (
	"runtime"
	"sync/atomic"
)

// Gang is a persistent worker group for tight fork/join loops: the same
// set of goroutines is released once per round through an atomic-epoch
// barrier instead of being spawned per round as ForEach does. At the
// batch sizes the speculative executor runs (a handful of likelihood
// evaluations per barrier, microseconds apart), per-round goroutine and
// channel setup dominates ForEach's cost; a Gang amortises it to one
// atomic increment plus at most one channel wake per parked worker.
//
// The calling goroutine participates as worker 0, so a Gang of W workers
// runs W-1 background goroutines. Tasks within a round are claimed from a
// shared atomic counter, so uneven task costs balance dynamically exactly
// as with ForEach. Run blocks until every task of the round has returned.
//
// A Gang must be released with Close when no longer needed; background
// workers otherwise park forever (the service's goroutine-leak checks
// would trip). Run and Close must be called from a single goroutine at a
// time; the task function is invoked concurrently from all workers.
type Gang struct {
	workers int
	started bool
	closing atomic.Bool

	// Round state: written by the releaser strictly before the epoch
	// increment, read by workers strictly after observing it — the
	// sequentially consistent epoch RMW/load pair publishes them.
	fn    func(worker, task int)
	tasks int

	// Hot shared words, each padded onto its own cache line so worker
	// task-claiming traffic does not false-share with the barrier epoch.
	epoch   padUint64
	next    padInt64
	pending padInt64

	done  chan struct{}
	slots []gangSlot
}

// gangSlot is one background worker's parking state, padded to a cache
// line so that neighbouring workers' park/wake flags never false-share.
type gangSlot struct {
	parked atomic.Uint64
	wake   chan struct{}
	_      [64 - 8 - 8]byte
}

type padUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

type padInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Spin budget before a worker parks: a short burst of plain re-checks
// (cheap when another core releases the barrier within nanoseconds), then
// a few scheduler yields so a single-core host is not starved by the
// spin, then a channel park.
const (
	gangSpinLoads  = 128
	gangSpinYields = 4
)

// NewGang creates a gang of the given width. Background goroutines are
// spawned lazily on the first Run that needs them, so constructing a Gang
// that ends up unused (or used only with tasks <= 1) costs nothing.
func NewGang(workers int) *Gang {
	if workers < 1 {
		panic("sched: NewGang needs at least one worker")
	}
	g := &Gang{workers: workers, done: make(chan struct{}, 1)}
	g.slots = make([]gangSlot, workers)
	for i := range g.slots {
		g.slots[i].wake = make(chan struct{}, 1)
	}
	return g
}

// Workers returns the gang width.
func (g *Gang) Workers() int { return g.workers }

// Run executes fn(worker, task) for task in [0, tasks) across the gang
// and blocks until all calls return. worker identifies the executing lane
// in [0, g.Workers()) so callers can index per-worker scratch without
// synchronisation. Rounds with a single task (or a single-worker gang)
// run inline on the caller.
func (g *Gang) Run(tasks int, fn func(worker, task int)) {
	if tasks <= 0 {
		return
	}
	if g.workers == 1 || tasks == 1 {
		for t := 0; t < tasks; t++ {
			fn(0, t)
		}
		return
	}
	if g.closing.Load() {
		panic("sched: Gang.Run after Close")
	}
	if !g.started {
		g.started = true
		// Hand each worker the pre-round epoch explicitly: a worker that
		// is slow to start must still see this round's increment as new.
		base := g.epoch.v.Load()
		for i := 1; i < g.workers; i++ {
			go g.work(i, base)
		}
	}
	g.fn, g.tasks = fn, tasks
	g.next.v.Store(0)
	g.pending.v.Store(int64(g.workers))
	g.epoch.v.Add(1)
	// Wake parked workers. The Dekker pair with work(): a worker stores
	// parked=1 and then re-loads the epoch before blocking; we increment
	// the epoch and then load parked. Both orders are seq-cst, so either
	// the worker sees the new epoch (and never blocks on a missing token)
	// or we see parked=1 and hand it a token. Tokens are buffered and
	// consumed with a re-check, so a stale token merely costs one spin.
	for i := 1; i < g.workers; i++ {
		sl := &g.slots[i]
		if sl.parked.Load() != 0 {
			select {
			case sl.wake <- struct{}{}:
			default:
			}
		}
	}
	g.drain(0)
	if g.pending.v.Add(-1) == 0 {
		g.done <- struct{}{}
	}
	<-g.done
	g.fn = nil
}

// drain claims and runs tasks for the current round until none remain.
func (g *Gang) drain(worker int) {
	for {
		t := g.next.v.Add(1) - 1
		if t >= int64(g.tasks) {
			return
		}
		g.fn(worker, int(t))
	}
}

// work is the background worker loop: wait for a new epoch, run the
// round, report completion, repeat until Close.
func (g *Gang) work(self int, seen uint64) {
	sl := &g.slots[self]
	for {
		for spins := 0; ; spins++ {
			cur := g.epoch.v.Load()
			if cur != seen {
				seen = cur
				break
			}
			switch {
			case spins < gangSpinLoads:
			case spins < gangSpinLoads+gangSpinYields:
				runtime.Gosched()
			default:
				sl.parked.Store(1)
				if g.epoch.v.Load() == seen {
					<-sl.wake
				}
				sl.parked.Store(0)
				spins = 0
			}
		}
		if g.closing.Load() {
			return
		}
		g.drain(self)
		if g.pending.v.Add(-1) == 0 {
			g.done <- struct{}{}
		}
	}
}

// Close releases the background workers. It must not be called
// concurrently with Run; calling Close more than once is harmless.
func (g *Gang) Close() {
	if !g.started || g.closing.Load() {
		g.closing.Store(true)
		return
	}
	g.closing.Store(true)
	g.epoch.v.Add(1)
	for i := 1; i < g.workers; i++ {
		sl := &g.slots[i]
		select {
		case sl.wake <- struct{}{}:
		default:
		}
	}
}
