package sched

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestForEachVisitsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		var hits [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("called for n=0") })
	calls := 0
	ForEach(3, 0, func(int) { calls++ }) // workers <= 1 runs inline
	if calls != 3 {
		t.Fatalf("inline run made %d calls", calls)
	}
	// More workers than tasks must not deadlock.
	var cnt int32
	ForEach(2, 100, func(int) { atomic.AddInt32(&cnt, 1) })
	if cnt != 2 {
		t.Fatalf("count = %d", cnt)
	}
}

func TestForEachActuallyParallel(t *testing.T) {
	// With 4 workers, 4 tasks that each wait for all others to start
	// will only complete if they truly run concurrently.
	var started int32
	done := make(chan struct{})
	go func() {
		ForEach(4, 4, func(int) {
			atomic.AddInt32(&started, 1)
			for atomic.LoadInt32(&started) < 4 {
			}
		})
		close(done)
	}()
	<-done
}

func TestRunTasks(t *testing.T) {
	var total int32
	tasks := make([]func(), 10)
	for i := range tasks {
		v := int32(i)
		tasks[i] = func() { atomic.AddInt32(&total, v) }
	}
	RunTasks(tasks, 3)
	if total != 45 {
		t.Fatalf("total = %d", total)
	}
}

func TestLPTAssignCoversAllTasks(t *testing.T) {
	costs := []float64{5, 3, 8, 1, 9, 2, 7}
	bins := LPTAssign(costs, 3)
	if len(bins) != 3 {
		t.Fatalf("got %d bins", len(bins))
	}
	seen := map[int]bool{}
	for _, bin := range bins {
		for _, task := range bin {
			if seen[task] {
				t.Fatalf("task %d assigned twice", task)
			}
			seen[task] = true
		}
	}
	if len(seen) != len(costs) {
		t.Fatalf("assigned %d of %d tasks", len(seen), len(costs))
	}
}

func TestLPTKnownOptimal(t *testing.T) {
	// Tasks {4,4,4} on 3 workers: makespan exactly 4.
	bins := LPTAssign([]float64{4, 4, 4}, 3)
	if ms := Makespan([]float64{4, 4, 4}, bins); ms != 4 {
		t.Fatalf("makespan = %v", ms)
	}
}

// Property: LPT makespan is at least the trivial lower bound
// max(total/m, maxCost) and at most the list-scheduling guarantee
// total/m + maxCost.
func TestLPTBoundProperty(t *testing.T) {
	r := rng.New(1)
	f := func(nTasks, nWorkers uint8) bool {
		n := int(nTasks%20) + 1
		m := int(nWorkers%8) + 1
		costs := make([]float64, n)
		maxCost := 0.0
		for i := range costs {
			costs[i] = r.Uniform(0.1, 10)
			maxCost = math.Max(maxCost, costs[i])
		}
		bins := LPTAssign(costs, m)
		ms := Makespan(costs, bins)
		lower := math.Max(SumCosts(costs)/float64(m), maxCost)
		upper := SumCosts(costs)/float64(m) + maxCost
		return ms >= lower-1e-9 && ms <= upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLPTPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LPTAssign([]float64{1}, 0)
}

func TestMakespanEmpty(t *testing.T) {
	if Makespan(nil, [][]int{{}, {}}) != 0 {
		t.Fatal("empty makespan nonzero")
	}
}

// The StealingRunner's dedicated coverage lives in stealing_test.go.
