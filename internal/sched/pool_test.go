package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// A pool must never admit more concurrent holders than its size.
func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	var inFlight, peak int32
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer p.Release()
			n := atomic.AddInt32(&inFlight, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			atomic.AddInt32(&inFlight, -1)
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt32(&peak); got > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size", got)
	}
}

func TestPoolAcquireCancelled(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolAcquireBlocksUntilRelease(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A second Acquire must block while the slot is held; use a cancelled
	// context to observe the block without hanging the test.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	p.Release()
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Release()
}

// Quiesce must wait for all in-flight holders, honour its deadline when
// a holder never releases, and leave the pool reusable in both cases.
func TestPoolQuiesce(t *testing.T) {
	p := NewPool(3)

	// Empty pool: immediate.
	if err := p.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Two holders release concurrently; Quiesce observes both.
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		if err := p.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			p.Release()
		}()
	}
	close(release)
	if err := p.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// A holder that never releases: Quiesce returns ctx's error and the
	// pool still has its full capacity minus the straggler.
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Quiesce(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// The two free slots must still be acquirable after the failed wait.
	for i := 0; i < 2; i++ {
		if err := p.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		p.Release()
	}
}

func TestPoolReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPool(1).Release()
}

func TestNewPoolPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPool(0)
}
