package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestStealingRunnerRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, tasks := range []int{0, 1, 3, 50, 200} {
			r := NewStealingRunner(workers)
			counts := make([]atomic.Int64, tasks)
			for i := 0; i < tasks; i++ {
				i := i
				r.Submit(i, func() { counts[i].Add(1) })
			}
			r.Run()
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d tasks=%d: task %d ran %d times", workers, tasks, i, got)
				}
			}
		}
	}
}

// Submit spreads by worker index modulo the deque count; out-of-range
// worker indices must still land somewhere and run.
func TestStealingRunnerSubmitWraps(t *testing.T) {
	r := NewStealingRunner(3)
	var n atomic.Int64
	for i := 0; i < 30; i++ {
		r.Submit(i+1000, func() { n.Add(1) })
	}
	r.Run()
	if n.Load() != 30 {
		t.Fatalf("ran %d of 30 tasks", n.Load())
	}
}

// Load all tasks onto one deque and make the tasks slow enough that the
// idle workers must steal: more than one goroutine has to end up
// executing tasks, and the victim deque must drain completely.
func TestStealingRunnerStealsUnderSkew(t *testing.T) {
	const workers, tasks = 4, 32
	r := NewStealingRunner(workers)
	var done, concurrent, peak atomic.Int64
	for i := 0; i < tasks; i++ {
		r.Submit(0, func() {
			c := concurrent.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			concurrent.Add(-1)
			done.Add(1)
		})
	}
	r.Run()
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d: idle workers never stole from the loaded deque", peak.Load())
	}
	if done.Load() != tasks {
		t.Fatalf("ran %d of %d tasks", done.Load(), tasks)
	}
}

// Workers sweep other deques after their own: with every deque loaded
// and task costs wildly skewed, the runner must still finish everything
// (no lost tasks when pop and steal race on the same deque).
func TestStealingRunnerSkewedCostsAllDeques(t *testing.T) {
	const workers = 4
	r := NewStealingRunner(workers)
	var n atomic.Int64
	for w := 0; w < workers; w++ {
		for i := 0; i < 25; i++ {
			d := time.Duration(0)
			if w == 0 {
				d = time.Millisecond
			}
			r.Submit(w, func() {
				if d > 0 {
					time.Sleep(d)
				}
				n.Add(1)
			})
		}
	}
	r.Run()
	if n.Load() != workers*25 {
		t.Fatalf("ran %d of %d tasks", n.Load(), workers*25)
	}
}

func TestStealingRunnerEmpty(t *testing.T) {
	NewStealingRunner(2).Run() // no submissions: must not hang
}

func TestStealingRunnerPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStealingRunner(0) did not panic")
		}
	}()
	NewStealingRunner(0)
}

func TestStealingRunnerWorkers(t *testing.T) {
	if got := NewStealingRunner(5).Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
}
