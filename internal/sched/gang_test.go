package sched

import (
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
)

func TestGangRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, tasks := range []int{0, 1, 2, 7, 64, 1000} {
			g := NewGang(workers)
			counts := make([]atomic.Int64, tasks)
			g.Run(tasks, func(_, task int) { counts[task].Add(1) })
			g.Close()
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d tasks=%d: task %d ran %d times", workers, tasks, i, got)
				}
			}
		}
	}
}

// Many consecutive rounds through the same gang: the barrier must hand
// every round to the workers exactly once, including back-to-back rounds
// where workers race between parking and the next release.
func TestGangRepeatedRounds(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	var total atomic.Int64
	const rounds, tasks = 500, 9
	for r := 0; r < rounds; r++ {
		g.Run(tasks, func(_, task int) { total.Add(int64(task + 1)) })
	}
	want := int64(rounds * tasks * (tasks + 1) / 2)
	if got := total.Load(); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

// The worker lane index must be in range and stable enough to index
// per-worker scratch: two tasks observed on the same lane must never run
// concurrently.
func TestGangWorkerLaneExclusive(t *testing.T) {
	const workers = 4
	g := NewGang(workers)
	defer g.Close()
	inLane := make([]atomic.Int64, workers)
	for r := 0; r < 50; r++ {
		g.Run(workers*8, func(worker, _ int) {
			if worker < 0 || worker >= workers {
				panic("lane out of range")
			}
			if inLane[worker].Add(1) != 1 {
				t.Error("two tasks active on one lane")
			}
			runtime.Gosched()
			inLane[worker].Add(-1)
		})
	}
}

func TestGangCloseIdempotentAndUnstarted(t *testing.T) {
	g := NewGang(3)
	g.Close()
	g.Close() // never started, closed twice: must not hang or panic

	g2 := NewGang(3)
	g2.Run(6, func(_, _ int) {})
	g2.Close()
	g2.Close()
}

func TestGangRunAfterClosePanics(t *testing.T) {
	g := NewGang(2)
	g.Run(4, func(_, _ int) {})
	g.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	g.Run(4, func(_, _ int) {})
}

func TestGangPanicArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGang(0) did not panic")
		}
	}()
	NewGang(0)
}

func BenchmarkGangRound(b *testing.B) {
	for _, workers := range []int{2, 4} {
		b.Run("gang/w="+strconv.Itoa(workers), func(b *testing.B) {
			g := NewGang(workers)
			defer g.Close()
			var sink atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Run(workers, func(_, _ int) { sink.Add(1) })
			}
		})
		b.Run("foreach/w="+strconv.Itoa(workers), func(b *testing.B) {
			var sink atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ForEach(workers, workers, func(int) { sink.Add(1) })
			}
		})
	}
}
