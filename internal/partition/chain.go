package partition

import (
	"context"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Chain is one partition's sampler as a steppable unit: it advances in
// bounded increments, checks its convergence detector on a fixed
// absolute cadence, and can be dumped/restored mid-run. All the Run*
// entry points of this package, and the strategy samplers in
// pkg/parmcmc, drive regions through Chains — which is what makes
// partitioned runs cancellable between increments and checkpointable at
// any increment boundary, with results bit-identical to an
// uninterrupted run (the detector cadence is anchored to absolute
// iteration counts, never to how the increments happened to be sized).
type Chain struct {
	// Region is the partition rectangle in parent-image coordinates.
	Region geom.Rect
	// Lambda is the region's eq. 5 object-count estimate.
	Lambda float64
	// Eng is the region's sampler; nil for empty (zero-pixel) regions.
	Eng *mcmc.Engine

	detector   mcmc.PlateauDetector
	checkEvery int
	maxIters   int
	off        [2]int

	// executed counts iterations actually run; convIters is the
	// iteration count reported in RegionResult — the detector's
	// convergence point when it fired, executed otherwise.
	executed  int64
	convIters int64
	converged bool
	done      bool
	seconds   float64
}

// NewChain crops region out of img, estimates its prior via eq. 5 and
// prepares (but does not run) the region's sampler. r becomes the
// chain's RNG stream.
func NewChain(img *imaging.Image, region geom.Rect, cfg Config, r *rng.RNG) (*Chain, error) {
	crop, off := img.SubImage(region)
	c := &Chain{Region: region, maxIters: cfg.MaxIters, off: off}
	if crop.W == 0 || crop.H == 0 {
		c.done = true
		return c, nil
	}
	params := cfg.BaseParams
	lambda := crop.EstimateCount(cfg.Theta, params.MeanRadius)
	c.Lambda = lambda
	// The Poisson prior needs positive mass even for apparently empty
	// partitions; a small floor keeps births possible.
	params.Lambda = math.Max(lambda, 0.5)

	s, err := model.NewState(crop, params)
	if err != nil {
		return nil, err
	}
	e, err := mcmc.New(s, r, cfg.Weights, cfg.Steps)
	if err != nil {
		return nil, err
	}
	e.ScreenMinArea = cfg.ScreenMinArea
	e.AttachTrace(mcmc.NewTrace(cfg.MaxIters/400 + 1))
	c.Eng = e
	c.detector = cfg.Plateau
	if c.detector.MinCount == 0 {
		// Burn-in cannot be over while well under the eq. 5 estimate.
		c.detector.MinCount = int(math.Ceil(0.6 * lambda))
	}
	c.checkEvery = (2*c.detector.Window + 1) * e.Trace().Every
	if c.checkEvery < 1 {
		c.checkEvery = 1
	}
	return c, nil
}

// Done reports whether the chain has converged or hit its cap.
func (c *Chain) Done() bool { return c.done }

// Converged reports whether the plateau detector fired (false when the
// chain stopped at the iteration cap).
func (c *Chain) Converged() bool { return c.converged }

// Iters returns the chain's reported iteration count so far (the
// convergence point once converged, iterations executed otherwise).
func (c *Chain) Iters() int64 {
	if c.done {
		return c.convIters
	}
	return c.executed
}

// Advance runs up to budget further iterations. Work proceeds in
// sub-increments aligned to absolute multiples of the detector cadence,
// so the iterations at which convergence is tested — and therefore the
// exact point the chain stops — do not depend on how callers size or
// split their budgets.
func (c *Chain) Advance(budget int) {
	if c.done || budget <= 0 {
		return
	}
	start := time.Now()
	for budget > 0 && !c.done {
		n := c.checkEvery - int(c.executed)%c.checkEvery
		if rem := c.maxIters - int(c.executed); rem < n {
			n = rem
		}
		if n > budget {
			n = budget
		}
		c.Eng.RunN(n)
		c.executed += int64(n)
		budget -= n
		atCheck := int(c.executed)%c.checkEvery == 0
		if atCheck {
			if it, ok := c.detector.Converged(c.Eng.Trace()); ok {
				c.convIters = it
				c.converged = true
				c.done = true
			}
		}
		if !c.done && int(c.executed) >= c.maxIters {
			c.convIters = c.executed
			c.done = true
		}
	}
	c.seconds += time.Since(start).Seconds()
}

// Result maps the chain's outcome back to parent-image coordinates.
func (c *Chain) Result() RegionResult {
	res := RegionResult{
		Region: c.Region, Area: c.Region.Area(), Lambda: c.Lambda,
		Iters: c.Iters(), Converged: c.converged, Seconds: c.seconds,
	}
	if c.Eng == nil {
		return res
	}
	for _, circ := range c.Eng.S.Cfg.Circles() {
		res.Circles = append(res.Circles, circ.Translate(float64(c.off[0]), float64(c.off[1])))
	}
	return res
}

// Stats returns the chain's acceptance statistics (zero for empty
// regions).
func (c *Chain) Stats() mcmc.Stats {
	if c.Eng == nil {
		return mcmc.Stats{}
	}
	return c.Eng.Stats
}

// ChainDump is a serializable snapshot of a Chain.
type ChainDump struct {
	Region    geom.Rect
	Eng       *mcmc.EngineDump
	Executed  int64
	ConvIters int64
	Converged bool
	Done      bool
	Seconds   float64
}

// Dump captures the chain.
func (c *Chain) Dump() ChainDump {
	d := ChainDump{
		Region:    c.Region,
		Executed:  c.executed,
		ConvIters: c.convIters,
		Converged: c.converged,
		Done:      c.done,
		Seconds:   c.seconds,
	}
	if c.Eng != nil {
		ed := c.Eng.Dump()
		d.Eng = &ed
	}
	return d
}

// RestoreChain rebuilds a chain from a dump taken on a chain built over
// the same image and configuration.
func RestoreChain(img *imaging.Image, cfg Config, d ChainDump) (*Chain, error) {
	c, err := NewChain(img, d.Region, cfg, rng.New(1))
	if err != nil {
		return nil, err
	}
	if d.Eng != nil && c.Eng != nil {
		if err := c.Eng.Restore(*d.Eng); err != nil {
			return nil, err
		}
	}
	c.executed = d.Executed
	c.convIters = d.ConvIters
	c.converged = d.Converged
	c.done = d.Done
	c.seconds = d.Seconds
	return c, nil
}

// RoundInfo describes one Drive round over a chain set.
type RoundInfo struct {
	// Chains and Done count all chains and the finished ones after the
	// round; Iters sums reported iterations across chains.
	Chains, Done int
	Iters        int64
}

// DriveChunk is the default per-round iteration budget used by the Run*
// entry points — a few milliseconds of work per region between
// cancellation checks, mirroring the whole-image strategies.
const DriveChunk = 5000

// Drive advances every unfinished chain by chunk iterations per round,
// running chains of a round concurrently on up to `workers` goroutines,
// until all chains are done or ctx is cancelled. onRound, when non-nil,
// observes progress after every round (on the caller's goroutine).
// Chains own disjoint state and deterministic RNG streams, so results
// are independent of workers, round sizing, and cancellation timing.
func Drive(ctx context.Context, chains []*Chain, workers, chunk int, onRound func(RoundInfo)) error {
	if chunk < 1 {
		chunk = DriveChunk
	}
	active := make([]*Chain, 0, len(chains))
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		active = active[:0]
		for _, c := range chains {
			if !c.Done() {
				active = append(active, c)
			}
		}
		if len(active) == 0 {
			return nil
		}
		sched.ForEach(len(active), workers, func(i int) { active[i].Advance(chunk) })
		if onRound != nil {
			info := RoundInfo{Chains: len(chains)}
			for _, c := range chains {
				if c.Done() {
					info.Done++
				}
				info.Iters += c.Iters()
			}
			onRound(info)
		}
	}
}

// NewChains builds one chain per region with deterministic per-region
// RNG streams derived from cfg.Seed, independent of scheduling.
func NewChains(img *imaging.Image, regions []geom.Rect, cfg Config) ([]*Chain, error) {
	master := rng.New(cfg.Seed)
	chains := make([]*Chain, len(regions))
	for i, region := range regions {
		c, err := NewChain(img, region, cfg, master.Split())
		if err != nil {
			return nil, err
		}
		chains[i] = c
	}
	return chains, nil
}
