package partition

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/imaging"
)

// BlindOptions configures blind partitioning (§VIII, fig. 4).
type BlindOptions struct {
	// NX, NY define the simple grid ("the image is first split into
	// four equal sized areas" uses 2×2).
	NX, NY int
	// Margin is the overlap extension in pixels; the paper uses 1.1×
	// the expected artifact radius so "the largest expected artifact
	// will fit inside".
	Margin float64
	// MergeRadius is the centre distance ("say 5 pixels") below which
	// overlap-area detections from different partitions are merged by
	// averaging.
	MergeRadius float64
	// KeepDisputed controls artifacts in an overlap area with no
	// counterpart: true accepts them (avoid missing artifacts), false
	// discards them (avoid false positives).
	KeepDisputed bool
}

// Validate reports whether the options are usable.
func (o BlindOptions) Validate() error {
	if o.NX < 1 || o.NY < 1 {
		return fmt.Errorf("partition: blind grid must be at least 1x1")
	}
	if o.Margin < 0 {
		return fmt.Errorf("partition: negative overlap margin")
	}
	if o.MergeRadius <= 0 {
		return fmt.Errorf("partition: MergeRadius must be positive")
	}
	return nil
}

// BlindResult is the outcome of a blind-partitioning run.
type BlindResult struct {
	// Cores are the non-overlapping grid cells; Expanded the overlap-
	// extended regions actually processed.
	Cores    []geom.Rect
	Expanded []geom.Rect
	Regions  []RegionResult

	// Circles is the merged final model.
	Circles []geom.Ellipse
	// Merged counts cross-partition pairs averaged together; Disputed
	// counts overlap-area artifacts without a counterpart.
	Merged   int
	Disputed int
}

// BlindRegions returns the blind grid's core cells and their overlap-
// expanded processing regions.
func BlindRegions(bounds geom.Rect, opt BlindOptions) (cores, expanded []geom.Rect) {
	cores = geom.UniformSplit(bounds, opt.NX, opt.NY)
	expanded = make([]geom.Rect, len(cores))
	for i, c := range cores {
		expanded[i] = c.Expand(opt.Margin).Clip(bounds)
	}
	return cores, expanded
}

// RunBlind partitions img into an overlapping grid, runs an independent
// chain per expanded cell (honouring ctx between chunk-aligned rounds),
// then merges per the paper's procedure: delete detections whose centre
// falls outside their own core cell, take the union, and average close
// cross-partition pairs in the overlap areas.
func RunBlind(ctx context.Context, img *imaging.Image, cfg Config, opt BlindOptions, workers int) (BlindResult, error) {
	if err := cfg.Validate(); err != nil {
		return BlindResult{}, err
	}
	if err := opt.Validate(); err != nil {
		return BlindResult{}, err
	}
	cores, expanded := BlindRegions(img.Bounds(), opt)
	results, err := runRegions(ctx, img, expanded, cfg, workers)
	if err != nil {
		return BlindResult{}, err
	}
	return MergeBlind(cores, expanded, results, opt), nil
}

// MergeBlind applies the paper's blind-merge procedure to per-region
// results: keep detections whose centre lies in their own core cell,
// average close cross-partition pairs in the overlap areas, and accept
// or drop counterpart-less overlap detections per opt.KeepDisputed.
func MergeBlind(cores, expanded []geom.Rect, results []RegionResult, opt BlindOptions) BlindResult {
	res := BlindResult{Cores: cores, Expanded: expanded, Regions: results}

	// Keep only detections whose centre lies in the partition's own core
	// ("beads whose centre is not inside the dotted line ... are
	// deleted").
	type candidate struct {
		c    geom.Ellipse
		part int
	}
	var cands []candidate
	for i, r := range results {
		for _, c := range r.Circles {
			if cores[i].ContainsPoint(c.X, c.Y) {
				cands = append(cands, candidate{c: c, part: i})
			}
		}
	}

	// A detection is "in the overlap area" when more than one expanded
	// region contains its centre.
	inOverlap := func(c geom.Ellipse) bool {
		n := 0
		for _, e := range expanded {
			if e.ContainsPoint(c.X, c.Y) {
				n++
			}
		}
		return n > 1
	}

	used := make([]bool, len(cands))
	for i := range cands {
		if used[i] {
			continue
		}
		ci := cands[i]
		if !inOverlap(ci.c) {
			// Automatically accepted.
			res.Circles = append(res.Circles, ci.c)
			used[i] = true
			continue
		}
		// Look for a counterpart from another partition.
		mate := -1
		for j := i + 1; j < len(cands); j++ {
			if used[j] || cands[j].part == ci.part {
				continue
			}
			if ci.c.Dist(cands[j].c) < opt.MergeRadius {
				mate = j
				break
			}
		}
		if mate >= 0 {
			cj := cands[mate]
			res.Circles = append(res.Circles, mergePair(ci.c, cj.c))
			used[i], used[mate] = true, true
			res.Merged++
			continue
		}
		// Disputable artifact.
		res.Disputed++
		if opt.KeepDisputed {
			res.Circles = append(res.Circles, ci.c)
		}
		used[i] = true
	}
	return res
}

// mergePair averages two duplicate detections of one artifact: centre
// and semi-axes component-wise, rotation by the half-turn circular mean
// (angles are a half-turn group, so a plain average of e.g. 0.05 and
// π−0.05 would point the merged ellipse the wrong way). Discs reduce to
// the historical centre/radius average exactly.
func mergePair(a, b geom.Ellipse) geom.Ellipse {
	return geom.Ellipse{
		X:     (a.X + b.X) / 2,
		Y:     (a.Y + b.Y) / 2,
		Rx:    (a.Rx + b.Rx) / 2,
		Ry:    (a.Ry + b.Ry) / 2,
		Theta: meanHalfTurn(a.Theta, b.Theta),
	}
}

// meanHalfTurn is the circular mean of two angles on [0, π): average in
// the doubled-angle domain where the half-turn symmetry disappears.
func meanHalfTurn(a, b float64) float64 {
	sx := math.Cos(2*a) + math.Cos(2*b)
	sy := math.Sin(2*a) + math.Sin(2*b)
	if sx == 0 && sy == 0 {
		return a // antipodal: either input is a valid mean
	}
	m := math.Atan2(sy, sx) / 2
	if m < 0 {
		m += math.Pi
	}
	return m
}
