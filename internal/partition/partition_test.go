package partition

import (
	"context"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
)

// clusteredScene builds a bead-like image with three well-separated
// clusters, mimicking fig. 3.
func clusteredScene(t *testing.T) *imaging.Scene {
	t.Helper()
	im := imaging.New(220, 160)
	im.Fill(0.1)
	var truth []geom.Ellipse
	place := func(cx, cy float64, n int, seed uint64) {
		r := rng.New(seed)
		for i := 0; i < n; i++ {
			c := geom.Disc(cx+r.NormalAt(0, 9), cy+r.NormalAt(0, 9), 6)
			// Keep beads separated so counts are unambiguous.
			ok := true
			for _, p := range truth {
				if c.Dist(p) < c.Rx+p.Rx+2 {
					ok = false
					break
				}
			}
			if ok {
				truth = append(truth, c)
				imaging.RenderShape(im, c, 0.9)
			}
		}
	}
	place(40, 40, 4, 1)
	place(160, 50, 7, 2)
	place(60, 125, 3, 3)
	noise := rng.New(9)
	for i := range im.Pix {
		im.Pix[i] += noise.NormalAt(0, 0.04)
	}
	im.Clamp()
	return &imaging.Scene{Image: im, Truth: truth}
}

func testConfig(seed uint64) Config {
	cfg := DefaultConfig(6, seed)
	cfg.MaxIters = 20000
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig(1)
	bad.MaxIters = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("MaxIters=0 accepted")
	}
	bad = testConfig(1)
	bad.Theta = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Theta=0 accepted")
	}
	bad = testConfig(1)
	bad.BaseParams = model.Params{}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestIntelligentRegionsSeparatesClusters(t *testing.T) {
	scene := clusteredScene(t)
	regions := IntelligentRegions(scene.Image, 0.5, 14, 2)
	if len(regions) != 3 {
		t.Fatalf("got %d regions, want 3 (one per cluster): %+v", len(regions), regions)
	}
	// Disjoint regions covering every truth circle's centre.
	for i, a := range regions {
		for _, b := range regions[i+1:] {
			if a.IntersectsRect(b) {
				t.Fatalf("regions overlap: %+v %+v", a, b)
			}
		}
	}
	for _, c := range scene.Truth {
		inside := false
		for _, r := range regions {
			if r.ContainsPoint(c.X, c.Y) {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("truth circle %+v not covered by any region", c)
		}
	}
}

func TestIntelligentRegionsEmptyImage(t *testing.T) {
	im := imaging.New(64, 64)
	im.Fill(0.1)
	if regions := IntelligentRegions(im, 0.5, 10, 2); len(regions) != 0 {
		t.Fatalf("empty image produced %d regions", len(regions))
	}
}

func TestIntelligentRegionsSingleBlob(t *testing.T) {
	im := imaging.New(64, 64)
	im.Fill(0.1)
	imaging.RenderShape(im, geom.Disc(32, 32, 10), 0.9)
	regions := IntelligentRegions(im, 0.5, 12, 2)
	if len(regions) != 1 {
		t.Fatalf("single blob produced %d regions", len(regions))
	}
	// The region must hug the blob (crop to content + pad).
	r := regions[0]
	if r.W() > 28 || r.H() > 28 {
		t.Fatalf("region not cropped to content: %+v", r)
	}
}

func TestIntelligentRegionsNeverSplitsArtifacts(t *testing.T) {
	scene := clusteredScene(t)
	regions := IntelligentRegions(scene.Image, 0.5, 14, 2)
	for _, c := range scene.Truth {
		for _, r := range regions {
			if r.ContainsPoint(c.X, c.Y) {
				if !r.ContainsEllipse(c, -0.5) {
					t.Fatalf("region %+v cuts through artifact %+v", r, c)
				}
			}
		}
	}
}

func TestRunIntelligentEndToEnd(t *testing.T) {
	scene := clusteredScene(t)
	res, err := RunIntelligent(context.Background(), scene.Image, testConfig(42), 14, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 3 {
		t.Fatalf("processed %d regions", len(res.Regions))
	}
	m := stats.MatchCircles(res.Circles, scene.Truth, 4)
	if m.F1() < 0.85 {
		t.Fatalf("intelligent partitioning F1 = %v (TP=%d FP=%d FN=%d)",
			m.F1(), m.TP, m.FP, m.FN)
	}
	// Lambda estimates should roughly match per-cluster truth counts.
	totalLambda := 0.0
	for _, r := range res.Regions {
		totalLambda += r.Lambda
	}
	if math.Abs(totalLambda-float64(len(scene.Truth))) > float64(len(scene.Truth))/2 {
		t.Fatalf("eq.5 total estimate %v for %d artifacts", totalLambda, len(scene.Truth))
	}
	for _, r := range res.Regions {
		if r.Iters == 0 || r.Seconds <= 0 {
			t.Fatalf("region missing measurements: %+v", r)
		}
	}
}

func TestRunBlindEndToEnd(t *testing.T) {
	scene := clusteredScene(t)
	cfg := testConfig(43)
	opt := BlindOptions{NX: 2, NY: 2, Margin: 1.1 * 6, MergeRadius: 5, KeepDisputed: true}
	res, err := RunBlind(context.Background(), scene.Image, cfg, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 4 {
		t.Fatalf("processed %d regions", len(res.Regions))
	}
	m := stats.MatchCircles(res.Circles, scene.Truth, 4)
	if m.F1() < 0.85 {
		t.Fatalf("blind partitioning F1 = %v (TP=%d FP=%d FN=%d)",
			m.F1(), m.TP, m.FP, m.FN)
	}
	// The merge must not leave near-coincident duplicates.
	if d := stats.DuplicatePairs(res.Circles, 5); d != 0 {
		t.Fatalf("%d duplicate pairs survived the blind merge", d)
	}
}

func TestRunBlindValidates(t *testing.T) {
	scene := clusteredScene(t)
	if _, err := RunBlind(context.Background(), scene.Image, testConfig(1), BlindOptions{}, 1); err == nil {
		t.Fatal("zero options accepted")
	}
	bad := BlindOptions{NX: 2, NY: 2, Margin: -1, MergeRadius: 5}
	if _, err := RunBlind(context.Background(), scene.Image, testConfig(1), bad, 1); err == nil {
		t.Fatal("negative margin accepted")
	}
}

// An artifact sitting exactly on the naive boundary demonstrates the
// §II anomaly; blind partitioning's overlap + merge fixes it.
func TestNaiveAnomalyVsBlind(t *testing.T) {
	im := imaging.New(160, 160)
	im.Fill(0.1)
	truth := []geom.Ellipse{
		geom.Disc(80, 40, 7),  // dead on the vertical midline
		geom.Disc(80, 110, 7), // dead on the vertical midline
		geom.Disc(40, 80, 7),  // dead on the horizontal midline
		geom.Disc(30, 30, 7),
		geom.Disc(125, 125, 7),
	}
	for _, c := range truth {
		imaging.RenderShape(im, c, 0.9)
	}
	noise := rng.New(5)
	for i := range im.Pix {
		im.Pix[i] += noise.NormalAt(0, 0.04)
	}
	im.Clamp()

	cfg := testConfig(44)
	cfg.MaxIters = 40000
	naive, err := RunNaive(context.Background(), im, cfg, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	blind, err := RunBlind(context.Background(), im, cfg, BlindOptions{
		NX: 2, NY: 2, Margin: 1.1 * 7, MergeRadius: 5, KeepDisputed: true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	mN := stats.MatchCircles(naive.Circles, truth, 4)
	mB := stats.MatchCircles(blind.Circles, truth, 4)
	if mB.F1() < 0.85 {
		t.Fatalf("blind F1 = %v on boundary scene", mB.F1())
	}
	// Naive must be visibly worse: either duplicates near boundaries or
	// missed/false detections.
	anomaliesN := stats.DuplicatePairs(naive.Circles, 8) + mN.FP + mN.FN
	anomaliesB := stats.DuplicatePairs(blind.Circles, 8) + mB.FP + mB.FN
	if anomaliesN <= anomaliesB {
		t.Fatalf("naive (%d anomalies) not worse than blind (%d)", anomaliesN, anomaliesB)
	}
}

func TestBoundaryLines(t *testing.T) {
	xs, ys := BoundaryLines(geom.Rect{X1: 100, Y1: 60}, 2, 3)
	if len(xs) != 1 || xs[0] != 50 {
		t.Fatalf("xs = %v", xs)
	}
	if len(ys) != 2 || ys[0] != 20 || ys[1] != 40 {
		t.Fatalf("ys = %v", ys)
	}
}

func TestMakespanUsesLPT(t *testing.T) {
	results := []RegionResult{
		{Seconds: 0.9}, {Seconds: 0.07}, {Seconds: 0.02},
	}
	// With 3 processors: longest partition dominates.
	if got := Makespan(results, 3); got != 0.9 {
		t.Fatalf("3 procs makespan = %v", got)
	}
	// With 2 processors LPT packs 0.07+0.02 on the second: still 0.9 —
	// the paper's exact observation ("0.07 + 0.02 < 0.97").
	if got := Makespan(results, 2); got != 0.9 {
		t.Fatalf("2 procs makespan = %v", got)
	}
	// One processor: sequential sum.
	if got := Makespan(results, 1); math.Abs(got-0.99) > 1e-12 {
		t.Fatalf("1 proc makespan = %v", got)
	}
	if got := Makespan(results, 0); math.Abs(got-0.99) > 1e-12 {
		t.Fatalf("0 procs not clamped: %v", got)
	}
}

func TestRunSequentialWholeImage(t *testing.T) {
	scene := clusteredScene(t)
	cfg := testConfig(48)
	cfg.MaxIters = 30000
	res, err := RunSequential(context.Background(), scene.Image, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := stats.MatchCircles(res.Circles, scene.Truth, 4)
	if m.F1() < 0.85 {
		t.Fatalf("sequential F1 = %v", m.F1())
	}
	if res.Area != scene.Image.Bounds().Area() {
		t.Fatalf("area = %v", res.Area)
	}
}

func TestRunRegionEmptyRegion(t *testing.T) {
	im := imaging.New(64, 64)
	im.Fill(0.1)
	chain, err := NewChain(im, geom.Rect{}, testConfig(1), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Done() {
		t.Fatal("empty region chain not done at construction")
	}
	chain.Advance(1000) // must be a no-op
	res := chain.Result()
	if len(res.Circles) != 0 || res.Iters != 0 {
		t.Fatalf("empty region produced %+v", res)
	}
	if res.TimePerIter() != 0 {
		t.Fatal("TimePerIter on empty region")
	}
}

func TestBlindDisputedPolicy(t *testing.T) {
	// Construct candidates manually through a full run on a scene with a
	// boundary artifact; with KeepDisputed=false the disputed count must
	// not add circles.
	im := imaging.New(120, 120)
	im.Fill(0.1)
	truth := []geom.Ellipse{geom.Disc(60, 60, 7), geom.Disc(25, 25, 7)}
	for _, c := range truth {
		imaging.RenderShape(im, c, 0.9)
	}
	cfg := testConfig(46)
	keep, err := RunBlind(context.Background(), im, cfg, BlindOptions{NX: 2, NY: 2, Margin: 8, MergeRadius: 5, KeepDisputed: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	drop, err := RunBlind(context.Background(), im, cfg, BlindOptions{NX: 2, NY: 2, Margin: 8, MergeRadius: 5, KeepDisputed: false}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(drop.Circles) > len(keep.Circles) {
		t.Fatalf("dropping disputed produced more circles (%d > %d)",
			len(drop.Circles), len(keep.Circles))
	}
}

// Determinism: identical config and seed give identical detections.
func TestPartitionDeterminism(t *testing.T) {
	scene := clusteredScene(t)
	cfg := testConfig(47)
	a, err := RunIntelligent(context.Background(), scene.Image, cfg, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIntelligent(context.Background(), scene.Image, cfg, 14, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Circles) != len(b.Circles) {
		t.Fatalf("worker count changed results: %d vs %d circles", len(a.Circles), len(b.Circles))
	}
	for i := range a.Circles {
		if a.Circles[i] != b.Circles[i] {
			t.Fatalf("circle %d differs: %+v vs %+v", i, a.Circles[i], b.Circles[i])
		}
	}
}

var _ = mcmc.DefaultWeights // keep import when tests are trimmed
