// Package partition implements the aggressive parallelisation methods of
// §VIII — *intelligent partitioning* (a pre-processor cuts the image
// along artifact-free bands, each piece is processed by an independent
// chain) and *blind partitioning* (an arbitrary grid with overlap margins
// and a heuristic post-merge) — plus the *naive* splitting baseline whose
// boundary anomalies motivate the whole paper (§II).
//
// Unlike core (periodic partitioning), nothing here preserves the
// statistical guarantees of MCMC; the package trades them for independent
// per-partition chains that need no synchronisation at all.
package partition

import (
	"context"
	"fmt"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Config drives the per-partition detector runs.
type Config struct {
	// Theta is the threshold used by the eq. 5 object-count estimator
	// that assigns each partition its prior knowledge.
	Theta float64

	// BaseParams supplies every prior hyper-parameter except Lambda,
	// which is re-estimated per partition via eq. 5.
	BaseParams model.Params

	Weights mcmc.Weights
	Steps   mcmc.StepSizes

	// MaxIters caps each partition's chain; Plateau declares burn-in
	// convergence (the "# itr to converge" of Table I).
	MaxIters int
	Plateau  mcmc.PlateauDetector

	// Seed derives the deterministic per-partition RNG streams.
	Seed uint64

	// ScreenMinArea is forwarded to each region's engine (see
	// mcmc.Engine.ScreenMinArea); 0 disables coarse-to-fine screening.
	ScreenMinArea float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.BaseParams.Validate(); err != nil {
		return err
	}
	if err := c.Weights.Validate(); err != nil {
		return err
	}
	if err := c.Steps.Validate(); err != nil {
		return err
	}
	if c.MaxIters < 1 {
		return fmt.Errorf("partition: MaxIters must be >= 1")
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		return fmt.Errorf("partition: Theta must be in (0,1)")
	}
	return nil
}

// DefaultConfig returns a configuration matching the bead experiment.
func DefaultConfig(meanRadius float64, seed uint64) Config {
	return Config{
		Theta:      0.5,
		BaseParams: model.DefaultParams(1, meanRadius), // Lambda re-estimated
		Weights:    mcmc.DefaultWeights(),
		Steps:      mcmc.DefaultStepSizes(meanRadius),
		MaxIters:   60000,
		Plateau:    mcmc.PlateauDetector{Window: 12, Tol: 0.5, MinIters: 1500},
		Seed:       seed,
	}
}

// RegionResult is the outcome of one partition's chain, mapped back to
// the parent image's coordinates. Its fields mirror Table I's rows.
type RegionResult struct {
	Region    geom.Rect // partition rectangle in parent coordinates
	Area      float64   // pixels²
	Lambda    float64   // eq. 5 estimate ("# obj. (density/thresh.)")
	Circles   []geom.Ellipse
	Iters     int64 // iterations until convergence (or the cap)
	Converged bool
	Seconds   float64 // wall-clock seconds for this partition's chain
}

// TimePerIter returns mean seconds per iteration.
func (r RegionResult) TimePerIter() float64 {
	if r.Iters == 0 {
		return 0
	}
	return r.Seconds / float64(r.Iters)
}

// runRegions executes the given regions as chains on up to `workers`
// goroutines with deterministic per-region RNG streams, checking ctx
// between chunk-aligned rounds, and returns results in region order.
func runRegions(ctx context.Context, img *imaging.Image, regions []geom.Rect, cfg Config, workers int) ([]RegionResult, error) {
	chains, err := NewChains(img, regions, cfg)
	if err != nil {
		return nil, err
	}
	if err := Drive(ctx, chains, workers, DriveChunk, nil); err != nil {
		return nil, err
	}
	results := make([]RegionResult, len(chains))
	for i, c := range chains {
		results[i] = c.Result()
	}
	return results, nil
}

// RunSequential processes the whole image as a single region — the
// baseline row of Table I. It honours ctx between chunk-aligned blocks
// of iterations.
func RunSequential(ctx context.Context, img *imaging.Image, cfg Config) (RegionResult, error) {
	if err := cfg.Validate(); err != nil {
		return RegionResult{}, err
	}
	chain, err := NewChain(img, img.Bounds(), cfg, rng.New(cfg.Seed))
	if err != nil {
		return RegionResult{}, err
	}
	if err := Drive(ctx, []*Chain{chain}, 1, DriveChunk, nil); err != nil {
		return RegionResult{}, err
	}
	return chain.Result(), nil
}

// Makespan returns the runtime of a result set on p processors: the
// paper's rule that "the runtime is the longest time taken to process
// any of the partitions" when processors suffice, with LPT load
// balancing otherwise (§IX).
func Makespan(results []RegionResult, processors int) float64 {
	costs := make([]float64, len(results))
	for i, r := range results {
		costs[i] = r.Seconds
	}
	if processors < 1 {
		processors = 1
	}
	return sched.Makespan(costs, sched.LPTAssign(costs, processors))
}
