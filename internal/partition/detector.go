// Package partition implements the aggressive parallelisation methods of
// §VIII — *intelligent partitioning* (a pre-processor cuts the image
// along artifact-free bands, each piece is processed by an independent
// chain) and *blind partitioning* (an arbitrary grid with overlap margins
// and a heuristic post-merge) — plus the *naive* splitting baseline whose
// boundary anomalies motivate the whole paper (§II).
//
// Unlike core (periodic partitioning), nothing here preserves the
// statistical guarantees of MCMC; the package trades them for independent
// per-partition chains that need no synchronisation at all.
package partition

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Config drives the per-partition detector runs.
type Config struct {
	// Theta is the threshold used by the eq. 5 object-count estimator
	// that assigns each partition its prior knowledge.
	Theta float64

	// BaseParams supplies every prior hyper-parameter except Lambda,
	// which is re-estimated per partition via eq. 5.
	BaseParams model.Params

	Weights mcmc.Weights
	Steps   mcmc.StepSizes

	// MaxIters caps each partition's chain; Plateau declares burn-in
	// convergence (the "# itr to converge" of Table I).
	MaxIters int
	Plateau  mcmc.PlateauDetector

	// Seed derives the deterministic per-partition RNG streams.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.BaseParams.Validate(); err != nil {
		return err
	}
	if err := c.Weights.Validate(); err != nil {
		return err
	}
	if err := c.Steps.Validate(); err != nil {
		return err
	}
	if c.MaxIters < 1 {
		return fmt.Errorf("partition: MaxIters must be >= 1")
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		return fmt.Errorf("partition: Theta must be in (0,1)")
	}
	return nil
}

// DefaultConfig returns a configuration matching the bead experiment.
func DefaultConfig(meanRadius float64, seed uint64) Config {
	return Config{
		Theta:      0.5,
		BaseParams: model.DefaultParams(1, meanRadius), // Lambda re-estimated
		Weights:    mcmc.DefaultWeights(),
		Steps:      mcmc.DefaultStepSizes(meanRadius),
		MaxIters:   60000,
		Plateau:    mcmc.PlateauDetector{Window: 12, Tol: 0.5, MinIters: 1500},
		Seed:       seed,
	}
}

// RegionResult is the outcome of one partition's chain, mapped back to
// the parent image's coordinates. Its fields mirror Table I's rows.
type RegionResult struct {
	Region    geom.Rect // partition rectangle in parent coordinates
	Area      float64   // pixels²
	Lambda    float64   // eq. 5 estimate ("# obj. (density/thresh.)")
	Circles   []geom.Circle
	Iters     int64 // iterations until convergence (or the cap)
	Converged bool
	Seconds   float64 // wall-clock seconds for this partition's chain
}

// TimePerIter returns mean seconds per iteration.
func (r RegionResult) TimePerIter() float64 {
	if r.Iters == 0 {
		return 0
	}
	return r.Seconds / float64(r.Iters)
}

// runRegion crops region out of img, estimates its prior via eq. 5, runs
// an independent chain to convergence and maps the result back.
func runRegion(img *imaging.Image, region geom.Rect, cfg Config, r *rng.RNG) (RegionResult, error) {
	crop, off := img.SubImage(region)
	res := RegionResult{Region: region, Area: region.Area()}
	if crop.W == 0 || crop.H == 0 {
		return res, nil
	}
	params := cfg.BaseParams
	lambda := crop.EstimateCount(cfg.Theta, params.MeanRadius)
	res.Lambda = lambda
	// The Poisson prior needs positive mass even for apparently empty
	// partitions; a small floor keeps births possible.
	params.Lambda = math.Max(lambda, 0.5)

	start := time.Now()
	s, err := model.NewState(crop, params)
	if err != nil {
		return res, err
	}
	e, err := mcmc.New(s, r, cfg.Weights, cfg.Steps)
	if err != nil {
		return res, err
	}
	e.AttachTrace(mcmc.NewTrace(cfg.MaxIters/400 + 1))
	detector := cfg.Plateau
	if detector.MinCount == 0 {
		// Burn-in cannot be over while well under the eq. 5 estimate.
		detector.MinCount = int(math.Ceil(0.6 * lambda))
	}
	iters, converged := e.RunUntilConverged(cfg.MaxIters, detector)
	res.Seconds = time.Since(start).Seconds()
	res.Iters = iters
	res.Converged = converged
	for _, c := range s.Cfg.Circles() {
		res.Circles = append(res.Circles, c.Translate(float64(off[0]), float64(off[1])))
	}
	return res, nil
}

// runRegions executes the given regions on up to `workers` goroutines
// with deterministic per-region RNG streams, returning results in region
// order.
func runRegions(img *imaging.Image, regions []geom.Rect, cfg Config, workers int) ([]RegionResult, error) {
	master := rng.New(cfg.Seed)
	rngs := make([]*rng.RNG, len(regions))
	for i := range rngs {
		rngs[i] = master.Split()
	}
	results := make([]RegionResult, len(regions))
	errs := make([]error, len(regions))
	sched.ForEach(len(regions), workers, func(i int) {
		results[i], errs[i] = runRegion(img, regions[i], cfg, rngs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunSequential processes the whole image as a single region — the
// baseline row of Table I.
func RunSequential(img *imaging.Image, cfg Config) (RegionResult, error) {
	if err := cfg.Validate(); err != nil {
		return RegionResult{}, err
	}
	return runRegion(img, img.Bounds(), cfg, rng.New(cfg.Seed))
}

// Makespan returns the runtime of a result set on p processors: the
// paper's rule that "the runtime is the longest time taken to process
// any of the partitions" when processors suffice, with LPT load
// balancing otherwise (§IX).
func Makespan(results []RegionResult, processors int) float64 {
	costs := make([]float64, len(results))
	for i, r := range results {
		costs[i] = r.Seconds
	}
	if processors < 1 {
		processors = 1
	}
	return sched.Makespan(costs, sched.LPTAssign(costs, processors))
}
