package partition

import (
	"context"

	"repro/internal/geom"
	"repro/internal/imaging"
)

// NaiveResult is the outcome of the naive divide-and-conquer baseline.
type NaiveResult struct {
	Cells   []geom.Rect
	Regions []RegionResult
	Circles []geom.Ellipse
}

// RunNaive is the baseline §II warns about: split the image into a plain
// grid with no overlap, run an independent chain per cell, and take the
// unmerged union. Artifacts that straddle a cell boundary are found
// twice (once per side, both clipped), poorly positioned, or missed —
// the anomalies the ANOM experiment quantifies against blind and
// periodic partitioning.
func RunNaive(ctx context.Context, img *imaging.Image, cfg Config, nx, ny, workers int) (NaiveResult, error) {
	if err := cfg.Validate(); err != nil {
		return NaiveResult{}, err
	}
	cells := geom.UniformSplit(img.Bounds(), nx, ny)
	results, err := runRegions(ctx, img, cells, cfg, workers)
	if err != nil {
		return NaiveResult{}, err
	}
	res := NaiveResult{Cells: cells, Regions: results}
	for _, r := range results {
		res.Circles = append(res.Circles, r.Circles...)
	}
	return res, nil
}

// BoundaryLines returns the interior grid line coordinates of an nx×ny
// split of bounds — where naive partitioning concentrates its anomalies.
func BoundaryLines(bounds geom.Rect, nx, ny int) (xs, ys []float64) {
	for i := 1; i < nx; i++ {
		xs = append(xs, bounds.X0+bounds.W()*float64(i)/float64(nx))
	}
	for j := 1; j < ny; j++ {
		ys = append(ys, bounds.Y0+bounds.H()*float64(j)/float64(ny))
	}
	return
}
