package partition

import (
	"context"

	"repro/internal/geom"
	"repro/internal/imaging"
)

// IntelligentRegions runs the §VIII pre-processor: threshold the image,
// then recursively cut it along completely empty row/column bands, each
// cut placed "equidistant between the closest columns/rows containing
// pixels that passed the threshold criteria". Regions are cropped to
// their content plus pad pixels of context. minGap is the minimum empty
// band width that justifies a cut — bands narrower than an artifact
// diameter must not split artifacts.
//
// The returned rectangles are disjoint and jointly cover every above-
// threshold pixel. An all-empty image yields no regions.
func IntelligentRegions(img *imaging.Image, theta float64, minGap, pad int) []geom.Rect {
	th := img.Threshold(theta)
	integral := imaging.NewIntegral(th)
	var out []geom.Rect
	cutRegion(integral, 0, 0, img.W, img.H, minGap, pad, &out)
	return out
}

// colMass / rowMass return the above-threshold pixel count of one column
// (or row) restricted to the region.
func colMass(it *imaging.Integral, x, y0, y1 int) float64 { return it.Sum(x, y0, x+1, y1) }
func rowMass(it *imaging.Integral, y, x0, x1 int) float64 { return it.Sum(x0, y, x1, y+1) }

// cutRegion recursively partitions [x0,x1)×[y0,y1).
func cutRegion(it *imaging.Integral, x0, y0, x1, y1, minGap, pad int, out *[]geom.Rect) {
	if x1 <= x0 || y1 <= y0 {
		return
	}
	if it.Sum(x0, y0, x1, y1) == 0 {
		return // nothing here
	}
	// Crop to the content bounding box (plus pad), discarding empty
	// margins — fig. 3's partitions hug their bead clusters.
	for x0 < x1 && colMass(it, x0, y0, y1) == 0 {
		x0++
	}
	for x1 > x0 && colMass(it, x1-1, y0, y1) == 0 {
		x1--
	}
	for y0 < y1 && rowMass(it, y0, x0, x1) == 0 {
		y0++
	}
	for y1 > y0 && rowMass(it, y1-1, x0, x1) == 0 {
		y1--
	}

	// Find the widest interior empty vertical band.
	bestStart, bestLen := -1, 0
	run := 0
	for x := x0; x < x1; x++ {
		if colMass(it, x, y0, y1) == 0 {
			run++
			if run > bestLen {
				bestLen = run
				bestStart = x - run + 1
			}
		} else {
			run = 0
		}
	}
	if bestLen >= minGap {
		cut := bestStart + bestLen/2
		cutRegion(it, x0, y0, cut, y1, minGap, pad, out)
		cutRegion(it, cut, y0, x1, y1, minGap, pad, out)
		return
	}
	// Then the widest interior empty horizontal band.
	bestStart, bestLen, run = -1, 0, 0
	for y := y0; y < y1; y++ {
		if rowMass(it, y, x0, x1) == 0 {
			run++
			if run > bestLen {
				bestLen = run
				bestStart = y - run + 1
			}
		} else {
			run = 0
		}
	}
	if bestLen >= minGap {
		cut := bestStart + bestLen/2
		cutRegion(it, x0, y0, x1, cut, minGap, pad, out)
		cutRegion(it, x0, cut, x1, y1, minGap, pad, out)
		return
	}
	// Indivisible: emit with pad pixels of context, clipped to the image.
	r := geom.Rect{
		X0: float64(x0 - pad), Y0: float64(y0 - pad),
		X1: float64(x1 + pad), Y1: float64(y1 + pad),
	}.Clip(geom.Rect{X1: float64(it.W), Y1: float64(it.H)})
	*out = append(*out, r)
}

// IntelligentResult is the outcome of an intelligent-partitioning run.
type IntelligentResult struct {
	Regions []RegionResult
	// Circles is the union of the per-region detections (merging is
	// trivial because the pre-processor guarantees no artifact spans a
	// boundary, §IX).
	Circles []geom.Ellipse
}

// RunIntelligent applies the pre-processor and processes every region
// with an independent chain on up to `workers` goroutines, honouring
// ctx between chunk-aligned rounds. The pad is fixed at 2 px of
// context; minGap should be at least the expected artifact diameter so
// cuts cannot bisect an artifact.
func RunIntelligent(ctx context.Context, img *imaging.Image, cfg Config, minGap, workers int) (IntelligentResult, error) {
	if err := cfg.Validate(); err != nil {
		return IntelligentResult{}, err
	}
	regions := IntelligentRegions(img, cfg.Theta, minGap, 2)
	results, err := runRegions(ctx, img, regions, cfg, workers)
	if err != nil {
		return IntelligentResult{}, err
	}
	res := IntelligentResult{Regions: results}
	for _, r := range results {
		res.Circles = append(res.Circles, r.Circles...)
	}
	return res, nil
}
