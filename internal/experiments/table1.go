package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/pkg/parmcmc"
)

// beadMaxIters caps each bead-image chain.
func beadMaxIters(o Options) int {
	if o.Quick {
		return 25000
	}
	return 120000
}

// beadBase returns the Options shared by every run on the bead image:
// eq. 5 per-partition priors, the Table I convergence detector (both
// supplied by the partition engine) and the bead experiment's seed.
func beadBase(o Options, meanR float64) parmcmc.Options {
	return parmcmc.Options{
		MeanRadius:    meanR,
		ExpectedCount: 1, // re-estimated per partition via eq. 5
		Iterations:    beadMaxIters(o),
		Seed:          o.Seed + 100,
	}
}

// Table1 regenerates Table I: intelligent partitioning of the clumped
// bead image of fig. 3. For the whole image and each discovered
// partition it reports area, relative area, the visual (= ground truth)
// object count, the uniform-density estimate, the eq. 5 threshold
// estimate, mean time per iteration, iterations to converge, runtime and
// relative runtime. One timed Runner batch — the convergent whole-image
// baseline plus the intelligent run — and one reducer over the
// per-region results.
func Table1(ctx context.Context, o Options) (*Result, error) {
	scene, _ := beadScene(o)
	im := scene.Image
	meanR := scene.Truth[0].EffR()

	whole := beadBase(o, meanR)
	whole.Strategy = parmcmc.Sequential
	whole.Converge = true
	intel := beadBase(o, meanR)
	intel.Strategy = parmcmc.Intelligent
	intel.Workers = o.workers()
	out, err := runBatch(ctx, o, true, []parmcmc.Job{
		{Name: "table1/whole", Pix: im.Pix, W: im.W, H: im.H, Opt: whole},
		{Name: "table1/intelligent", Pix: im.Pix, W: im.W, H: im.H, Opt: intel},
	})
	if err != nil {
		return nil, err
	}
	wr := out[0].Result.Regions[0]
	regions := out[1].Result.Regions

	// Per-partition truth counts for the "# obj. (visual)" row.
	truthIn := func(r parmcmc.RegionInfo) int {
		n := 0
		for _, c := range scene.Truth {
			if r.Contains(c.X, c.Y) {
				n++
			}
		}
		return n
	}

	areas := make([]float64, len(regions))
	for i, r := range regions {
		areas[i] = r.Area
	}
	order := sortByArea(areas)

	tb := &trace.Table{Header: []string{
		"partition", "area_px2", "rel_area", "obj_visual", "obj_density",
		"obj_thresh", "time_per_iter_us", "iters_converge", "runtime_s", "rel_runtime",
	}}
	tb.Add("whole", wr.Area, 1.0, len(scene.Truth), "-",
		wr.Lambda, wr.TimePerIter()*1e6, wr.Iters,
		wr.Seconds, 1.0)
	names := []string{"B", "A", "C", "D", "E", "F"} // largest first, like Table I's B
	for rank, i := range order {
		r := regions[i]
		relArea := r.Area / wr.Area
		name := fmt.Sprintf("P%d", rank)
		if rank < len(names) {
			name = names[rank]
		}
		tb.Add(name, r.Area, relArea, truthIn(r),
			float64(len(scene.Truth))*relArea, // uniform-density assumption
			r.Lambda, r.TimePerIter()*1e6, r.Iters, r.Seconds,
			r.Seconds/wr.Seconds)
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}

	m := stats.MatchCircles(toGeom(out[1].Result.Circles), scene.Truth, meanR/2)
	makespan3 := lptMakespan(regions, 3)
	makespan2 := lptMakespan(regions, 2)
	notes := []string{
		fmt.Sprintf("%d partitions discovered; detection F1 vs ground truth = %.3f (TP=%d FP=%d FN=%d)",
			len(regions), m.F1(), m.TP, m.FP, m.FN),
		fmt.Sprintf("intelligent-partitioning runtime: %.3fs on >=3 processors (longest partition), %.3fs on 2 (LPT)",
			makespan3, makespan2),
		fmt.Sprintf("relative runtime vs sequential: %.3f", makespan3/wr.Seconds),
		"paper shape: the dominant partition (B, ~0.62 of the area, ~38 of 48 objects)",
		"costs ~0.90 of the sequential runtime, so intelligent partitioning only",
		"shaves ~10% here; eq. 5 estimates track the visual counts.",
	}
	return &Result{
		ID:    "table1",
		Title: "Intelligent partitioning of the bead image (Table I / fig. 3)",
		Body:  sb.String(),
		Notes: notes,
	}, nil
}
