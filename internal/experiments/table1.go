package experiments

import (
	"fmt"
	"strings"

	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// beadConfig returns the detector configuration for the bead image.
func beadConfig(o Options, meanRadius float64) partition.Config {
	cfg := partition.DefaultConfig(meanRadius, o.Seed+100)
	if o.Quick {
		cfg.MaxIters = 25000
	} else {
		cfg.MaxIters = 120000
	}
	return cfg
}

// Table1 regenerates Table I: intelligent partitioning of the clumped
// bead image of fig. 3. For the whole image and each discovered
// partition it reports area, relative area, the visual (= ground truth)
// object count, the uniform-density estimate, the eq. 5 threshold
// estimate, mean time per iteration, iterations to converge, runtime and
// relative runtime.
func Table1(o Options) (*Result, error) {
	scene, _ := beadScene(o)
	meanR := scene.Truth[0].R
	cfg := beadConfig(o, meanR)

	// Whole-image baseline run.
	whole, err := partition.RunSequential(scene.Image, cfg)
	if err != nil {
		return nil, err
	}

	// Intelligent partitioning; minGap slightly above one artifact
	// diameter so cuts cannot bisect a bead.
	minGap := int(2.2 * meanR)
	res, err := partition.RunIntelligent(scene.Image, cfg, minGap, o.workers())
	if err != nil {
		return nil, err
	}

	// Per-partition truth counts for the "# obj. (visual)" row.
	truthIn := func(r partition.RegionResult) int {
		n := 0
		for _, c := range scene.Truth {
			if r.Region.ContainsPoint(c.X, c.Y) {
				n++
			}
		}
		return n
	}

	areas := make([]float64, len(res.Regions))
	for i, r := range res.Regions {
		areas[i] = r.Area
	}
	order := sortByArea(areas)

	tb := &trace.Table{Header: []string{
		"partition", "area_px2", "rel_area", "obj_visual", "obj_density",
		"obj_thresh", "time_per_iter_us", "iters_converge", "runtime_s", "rel_runtime",
	}}
	tb.Add("whole", whole.Area, 1.0, len(scene.Truth), "-",
		whole.Lambda, whole.TimePerIter()*1e6, whole.Iters,
		whole.Seconds, 1.0)
	names := []string{"B", "A", "C", "D", "E", "F"} // largest first, like Table I's B
	for rank, i := range order {
		r := res.Regions[i]
		relArea := r.Area / whole.Area
		name := fmt.Sprintf("P%d", rank)
		if rank < len(names) {
			name = names[rank]
		}
		tb.Add(name, r.Area, relArea, truthIn(r),
			float64(len(scene.Truth))*relArea, // uniform-density assumption
			r.Lambda, r.TimePerIter()*1e6, r.Iters, r.Seconds,
			r.Seconds/whole.Seconds)
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}

	m := stats.MatchCircles(res.Circles, scene.Truth, meanR/2)
	makespan3 := partition.Makespan(res.Regions, 3)
	makespan2 := partition.Makespan(res.Regions, 2)
	notes := []string{
		fmt.Sprintf("%d partitions discovered; detection F1 vs ground truth = %.3f (TP=%d FP=%d FN=%d)",
			len(res.Regions), m.F1(), m.TP, m.FP, m.FN),
		fmt.Sprintf("intelligent-partitioning runtime: %.3fs on >=3 processors (longest partition), %.3fs on 2 (LPT)",
			makespan3, makespan2),
		fmt.Sprintf("relative runtime vs sequential: %.3f", makespan3/whole.Seconds),
		"paper shape: the dominant partition (B, ~0.62 of the area, ~38 of 48 objects)",
		"costs ~0.90 of the sequential runtime, so intelligent partitioning only",
		"shaves ~10% here; eq. 5 estimates track the visual counts.",
	}
	return &Result{
		ID:    "table1",
		Title: "Intelligent partitioning of the bead image (Table I / fig. 3)",
		Body:  sb.String(),
		Notes: notes,
	}, nil
}
