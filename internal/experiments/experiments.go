// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each experiment
// returns a structured result and can render the same rows/series the
// paper reports; cmd/experiments and the repository-root benchmarks are
// thin wrappers around this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/pkg/parmcmc"
)

// Options configures an experiment run.
type Options struct {
	// Quick shrinks workloads for benchmarks and CI (smaller images,
	// fewer iterations). Full mode matches the paper's scales.
	Quick bool
	// Workers bounds goroutine parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed makes runs reproducible.
	Seed uint64
}

// DefaultOptions returns full-scale options with the canonical seed.
func DefaultOptions() Options {
	return Options{Seed: 2010, Workers: runtime.GOMAXPROCS(0)}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is a rendered experiment outcome.
type Result struct {
	ID    string
	Title string
	Body  string // pre-rendered tables/series
	Notes []string
}

// Write renders the result to w.
func (r *Result) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n%s", r.ID, r.Title, r.Body); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RunFunc executes one experiment. Cancelling ctx aborts the
// experiment's orchestrated runs at their next cancellation check.
type RunFunc func(context.Context, Options) (*Result, error)

// Registry maps experiment IDs to runners, in the paper's order.
func Registry() []struct {
	ID  string
	Run RunFunc
} {
	return []struct {
		ID  string
		Run RunFunc
	}{
		{"fig1", Fig1},
		{"fig2", Fig2},
		{"arch", Arch},
		{"table1", Table1},
		{"fig4", Fig4},
		{"spec", Spec},
		{"anomaly", Anomaly},
		{"mc3", MC3},
	}
}

// Lookup returns the runner for id, or nil.
func Lookup(id string) RunFunc {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run
		}
	}
	return nil
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// ---------------------------------------------------------------------------
// Shared scene builders.

// cellScene reproduces the §VII workload: a large image with many cells
// of mean radius 10 ("a 1024x1024 image containing 150 cells of mean
// radius 10"). Quick mode shrinks it proportionally.
func cellScene(o Options) *imaging.Scene {
	spec := imaging.SceneSpec{
		W: 1024, H: 1024, Count: 150, MeanRadius: 10, RadiusStdDev: 1.2,
		Noise: 0.06, MinSeparation: 1.05,
	}
	if o.Quick {
		spec.W, spec.H, spec.Count = 256, 256, 20
	}
	return imaging.Synthesize(spec, rng.New(o.Seed))
}

// beadScene reproduces the fig. 3 latex-bead image: three clumps whose
// relative areas roughly match Table I's partitions (A≈0.15, B≈0.62,
// C≈0.23 of the content area) with 6/38/4 beads.
func beadScene(o Options) (*imaging.Scene, [3][]geom.Ellipse) {
	w, h := 540, 400
	rr := 10.0
	if o.Quick {
		w, h, rr = 270, 200, 5.0
	}
	im := imaging.New(w, h)
	im.Fill(0.08)
	scale := float64(w) / 540
	var clusters [3][]geom.Ellipse
	var all []geom.Ellipse
	place := func(slot int, cx, cy, spread float64, n int, seed uint64) {
		r := rng.New(seed)
		placed := 0
		for placed < n {
			c := geom.Disc(
				(cx+r.NormalAt(0, spread))*scale,
				(cy+r.NormalAt(0, spread))*scale,
				rr*(1+r.NormalAt(0, 0.03)), // "very little variation in radii"
			)
			// Allow clumping but not near-coincidence, and stay inside
			// the frame.
			if c.X < c.Rx+2 || c.X > float64(w)-c.Rx-2 ||
				c.Y < c.Rx+2 || c.Y > float64(h)-c.Rx-2 {
				continue
			}
			ok := true
			for _, p := range all {
				if c.Dist(p) < 0.9*(c.Rx+p.Rx) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			clusters[slot] = append(clusters[slot], c)
			all = append(all, c)
			imaging.RenderShape(im, c, 0.92)
			placed++
		}
	}
	// Cluster A: small clump top-left; B: large central mass; C: small
	// clump bottom-right. Spreads chosen so the partitions' relative
	// areas land near Table I's 0.147 / 0.624 / 0.226.
	place(0, 75, 80, 16, 6, o.Seed+1)
	place(1, 300, 200, 52, 38, o.Seed+2)
	place(2, 470, 330, 14, 4, o.Seed+3)
	noise := rng.New(o.Seed + 4)
	for i := range im.Pix {
		im.Pix[i] += noise.NormalAt(0, 0.035)
	}
	im.Clamp()
	return &imaging.Scene{Image: im, Truth: all}, clusters
}

// ---------------------------------------------------------------------------
// Orchestration: every MCMC execution in this package flows through one
// parmcmc.Runner batch, so each figure is "one sweep + one reducer".

// runBatch routes jobs through a parmcmc.Runner. Timed batches run one
// job at a time with a GC between jobs so wall-clock measurements stay
// clean; untimed batches fan out across o.workers() concurrent jobs.
// The first job error aborts the whole figure.
func runBatch(ctx context.Context, o Options, timed bool, jobs []parmcmc.Job) ([]parmcmc.JobResult, error) {
	conc := o.workers()
	if timed {
		conc = 1
	}
	r := parmcmc.NewRunner(conc)
	r.BaseSeed = o.Seed
	r.GCBetween = timed
	out, err := r.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	for _, jr := range out {
		if jr.Err != nil {
			return nil, fmt.Errorf("%s: %w", jr.Name, jr.Err)
		}
	}
	return out, nil
}

// lptMakespan returns the wall-clock an n-processor machine achieves on
// the regions' measured chain times under LPT assignment.
func lptMakespan(regions []parmcmc.RegionInfo, procs int) float64 {
	costs := make([]float64, len(regions))
	for i, r := range regions {
		costs[i] = r.Seconds
	}
	return sched.Makespan(costs, sched.LPTAssign(costs, procs))
}

// toGeom converts public API circles back to the internal geometry type
// for scoring against ground truth.
func toGeom(cs []parmcmc.Circle) []geom.Ellipse {
	out := make([]geom.Ellipse, len(cs))
	for i, c := range cs {
		out[i] = geom.Disc(c.X, c.Y, c.R)
	}
	return out
}

// sortRegionsByArea orders region indices by descending area so tables
// print stably.
func sortByArea(areas []float64) []int {
	idx := make([]int, len(areas))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return areas[idx[a]] > areas[idx[b]] })
	return idx
}
