package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/trace"
	"repro/pkg/parmcmc"
)

// Arch regenerates the §VII architecture comparison: the runtime
// reduction achieved by periodic parallelisation at the fig. 2 sweet
// spot (a ~20ms global phase) on the three machine profiles. The paper
// reports reductions of ~29% (Q6600), 23% (Xeon) and 38% (Pentium-D) and
// attributes the differences to inter-thread communication overhead.
// Two Runner batches: a timed sequential baseline (which calibrates the
// sweet spot), then a Sweep over the profiles' thread counts.
func Arch(ctx context.Context, o Options) (*Result, error) {
	scene := cellScene(o)
	im := scene.Image
	total := cellTotalIters(o)
	meanR := 10.0

	base := parmcmc.Options{
		MeanRadius:    meanR,
		ExpectedCount: float64(len(scene.Truth)),
		Iterations:    total,
	}
	seq := base
	seq.Strategy = parmcmc.Sequential
	seq.Seed = o.Seed + 77
	out, err := runBatch(ctx, o, true, []parmcmc.Job{
		{Name: "arch/sequential", Pix: im.Pix, W: im.W, H: im.H, Opt: seq},
	})
	if err != nil {
		return nil, err
	}
	seqDur := out[0].Result.Elapsed
	tauIter := seqDur.Seconds() / float64(total)
	// The sweet spot: a global phase worth ~20ms of sequential work.
	gIters := int(0.020 / tauIter)
	if gIters < 10 {
		gIters = 10
	}
	localIters := int(float64(gIters) * 0.6 / 0.4)

	per := base
	per.Strategy = parmcmc.Periodic
	per.Seed = o.Seed + 78
	// Finer grid (up to 9 partitions) with load balancing — the §VII
	// recommendation for when partitions outnumber processors.
	per.PartitionGrid = 2
	per.GridSlack = 1.0
	per.SimulateParallel = true
	per.LocalPhaseIters = localIters
	profiles := trace.Profiles()
	threads := make([]int, len(profiles))
	for i, a := range profiles {
		threads[i] = a.Threads
	}
	runs, err := runBatch(ctx, o, true, parmcmc.Sweep{
		Name: "arch/periodic",
		Pix:  im.Pix, W: im.W, H: im.H,
		Base:    per,
		Workers: threads,
	}.Jobs())
	if err != nil {
		return nil, err
	}

	tb := &trace.Table{Header: []string{
		"machine", "threads", "barrier_ms", "periodic_secs", "sequential_secs", "reduction_pct",
	}}
	for i, arch := range profiles {
		reported := periodicReported(runs[i].Result, arch)
		reduction := 100 * (1 - reported.Seconds()/seqDur.Seconds())
		tb.Add(arch.Name, arch.Threads, arch.BarrierOverhead.Seconds()*1e3,
			reported.Seconds(), seqDur.Seconds(), reduction)
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("global phase: %d iterations (~%.1fms sequential work), local phase %d iterations",
			gIters, float64(gIters)*tauIter*1e3, localIters),
		"grid: image/2 spacing -> up to 9 partitions, LPT load-balanced onto the",
		"machine's threads (the finer-grid recommendation closing §VII).",
		"paper values: Q6600 ~29%, Xeon 23%, Pentium-D 38% reduction;",
		"shape to match: every profile beats sequential and the high-overhead",
		"dual-socket Xeon benefits least. The Pentium-D's paper-reported 38%",
		"exceeds the eq. 2 two-processor bound (30%); see EXPERIMENTS.md.",
	}
	return &Result{
		ID:    "arch",
		Title: "Periodic parallelisation across architecture profiles (§VII)",
		Body:  sb.String(),
		Notes: notes,
	}, nil
}
