package experiments

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Arch regenerates the §VII architecture comparison: the runtime
// reduction achieved by periodic parallelisation at the fig. 2 sweet
// spot (a ~20ms global phase) on the three machine profiles. The paper
// reports reductions of ~29% (Q6600), 23% (Xeon) and 38% (Pentium-D) and
// attributes the differences to inter-thread communication overhead.
func Arch(o Options) (*Result, error) {
	w, err := newCellWorkload(o)
	if err != nil {
		return nil, err
	}
	meanR := 10.0
	seqDur, err := w.runSequentialBaseline(o, meanR)
	if err != nil {
		return nil, err
	}
	tauIter := seqDur.Seconds() / float64(w.totalIters)
	// The sweet spot: a global phase worth ~20ms of sequential work.
	gIters := int(0.020 / tauIter)
	if gIters < 10 {
		gIters = 10
	}
	localIters := int(float64(gIters) * 0.6 / 0.4)

	tb := &trace.Table{Header: []string{
		"machine", "threads", "barrier_ms", "periodic_secs", "sequential_secs", "reduction_pct",
	}}
	var notes []string
	for _, arch := range trace.Profiles() {
		// Finer grid (up to 9 partitions) with load balancing — the
		// §VII recommendation for when partitions outnumber processors.
		dur, barriers, err := w.runPeriodicGrid(o, meanR, localIters, arch.Threads, 0, 2)
		if err != nil {
			return nil, err
		}
		reported := dur + arch.Charge(barriers)
		reduction := 100 * (1 - reported.Seconds()/seqDur.Seconds())
		tb.Add(arch.Name, arch.Threads, arch.BarrierOverhead.Seconds()*1e3,
			reported.Seconds(), seqDur.Seconds(), reduction)
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}
	notes = append(notes,
		fmt.Sprintf("global phase: %d iterations (~%.1fms sequential work), local phase %d iterations",
			gIters, float64(gIters)*tauIter*1e3, localIters),
		"grid: image/2 spacing -> up to 9 partitions, LPT load-balanced onto the",
		"machine's threads (the finer-grid recommendation closing §VII).",
		"paper values: Q6600 ~29%, Xeon 23%, Pentium-D 38% reduction;",
		"shape to match: every profile beats sequential and the high-overhead",
		"dual-socket Xeon benefits least. The Pentium-D's paper-reported 38%",
		"exceeds the eq. 2 two-processor bound (30%); see EXPERIMENTS.md.",
	)
	return &Result{
		ID:    "arch",
		Title: "Periodic parallelisation across architecture profiles (§VII)",
		Body:  sb.String(),
		Notes: notes,
	}, nil
}
