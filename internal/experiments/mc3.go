package experiments

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mc3"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// MC3 exercises the §IV related-work baseline: Metropolis-coupled MCMC
// on an ambiguous scene (pairs of strongly overlapping discs that a
// greedy chain tends to explain as single large artifacts). It compares
// a plain chain against the cold chain of an (MC)³ sampler given the
// same per-chain iteration budget.
func MC3(o Options) (*Result, error) {
	w, h := 256, 256
	iters := 120000
	if o.Quick {
		w, h, iters = 160, 160, 40000
	}
	im := imaging.New(w, h)
	im.Fill(0.1)
	meanR := 8.0
	r := rng.New(o.Seed + 400)

	// Overlapping pairs: each pair is two discs at ~1.1R separation —
	// locally a single larger disc explains them almost as well, which
	// creates the multi-modality (MC)³ is designed to escape.
	var truth []geom.Circle
	pairs := 6
	if o.Quick {
		pairs = 3
	}
	for len(truth) < 2*pairs {
		cx := r.Uniform(40, float64(w)-40)
		cy := r.Uniform(40, float64(h)-40)
		ok := true
		for _, p := range truth {
			if (geom.Circle{X: cx, Y: cy}).Dist(p) < 5*meanR {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		dx := 0.55 * meanR
		truth = append(truth,
			geom.Circle{X: cx - dx, Y: cy, R: meanR},
			geom.Circle{X: cx + dx, Y: cy, R: meanR},
		)
	}
	for _, c := range truth {
		imaging.RenderDisc(im, c, 0.9)
	}
	noise := rng.New(o.Seed + 401)
	for i := range im.Pix {
		im.Pix[i] += noise.NormalAt(0, 0.04)
	}
	im.Clamp()

	params := model.DefaultParams(float64(len(truth)), meanR)
	params.OverlapPenalty = 0.15 // tolerate the true overlaps

	// Plain chain.
	st, err := model.NewState(im, params)
	if err != nil {
		return nil, err
	}
	plain, err := mcmc.New(st, rng.New(o.Seed+402), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(meanR))
	if err != nil {
		return nil, err
	}
	plain.RunN(iters)

	// (MC)³ with the same per-chain budget.
	opt := mc3.DefaultOptions()
	opt.Workers = o.workers()
	sampler, err := mc3.New(im, params, mcmc.DefaultWeights(), mcmc.DefaultStepSizes(meanR), opt, o.Seed+403)
	if err != nil {
		return nil, err
	}
	sampler.Run(iters)

	mPlain := stats.MatchCircles(st.Cfg.Circles(), truth, meanR*0.6)
	mCold := stats.MatchCircles(sampler.Cold().Cfg.Circles(), truth, meanR*0.6)
	tb := &trace.Table{Header: []string{
		"sampler", "logpost", "found", "TP", "FN", "F1",
	}}
	tb.Add("plain chain", st.LogPost(), st.Cfg.Len(), mPlain.TP, mPlain.FN, mPlain.F1())
	tb.Add("(MC)^3 cold chain", sampler.Cold().LogPost(), sampler.Cold().Cfg.Len(),
		mCold.TP, mCold.FN, mCold.F1())
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}
	return &Result{
		ID:    "mc3",
		Title: "(MC)^3 vs a single chain on an ambiguous overlapping-pair scene (§IV)",
		Body:  sb.String(),
		Notes: []string{
			fmt.Sprintf("%d chains, heat step %.2f, swap every %d iterations, swap rate %.2f",
				opt.Chains, opt.HeatStep, opt.SwapEvery, sampler.SwapRate()),
			"related-work shape: heated chains hop between 'one big disc' and",
			"'two overlapping discs' interpretations and feed the better mode to",
			"the cold chain; (MC)^3 improves convergence rate, not workload spread.",
		},
	}, nil
}
