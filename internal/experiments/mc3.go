package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mc3"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/pkg/parmcmc"
)

// MC3 exercises the §IV related-work baseline: Metropolis-coupled MCMC
// on an ambiguous scene (pairs of strongly overlapping discs that a
// greedy chain tends to explain as single large artifacts). It compares
// a plain chain against the cold chain of an (MC)³ sampler given the
// same per-chain iteration budget — one untimed Runner batch of two
// jobs that fan out concurrently.
func MC3(ctx context.Context, o Options) (*Result, error) {
	w, h := 256, 256
	iters := 120000
	if o.Quick {
		w, h, iters = 160, 160, 40000
	}
	im := imaging.New(w, h)
	im.Fill(0.1)
	meanR := 8.0
	r := rng.New(o.Seed + 400)

	// Overlapping pairs: each pair is two discs at ~1.1R separation —
	// locally a single larger disc explains them almost as well, which
	// creates the multi-modality (MC)³ is designed to escape.
	var truth []geom.Ellipse
	pairs := 6
	if o.Quick {
		pairs = 3
	}
	for len(truth) < 2*pairs {
		cx := r.Uniform(40, float64(w)-40)
		cy := r.Uniform(40, float64(h)-40)
		ok := true
		for _, p := range truth {
			if (geom.Ellipse{X: cx, Y: cy}).Dist(p) < 5*meanR {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		dx := 0.55 * meanR
		truth = append(truth,
			geom.Disc(cx-dx, cy, meanR),
			geom.Disc(cx+dx, cy, meanR),
		)
	}
	for _, c := range truth {
		imaging.RenderShape(im, c, 0.9)
	}
	noise := rng.New(o.Seed + 401)
	for i := range im.Pix {
		im.Pix[i] += noise.NormalAt(0, 0.04)
	}
	im.Clamp()

	base := parmcmc.Options{
		MeanRadius:     meanR,
		ExpectedCount:  float64(len(truth)),
		Iterations:     iters,
		OverlapPenalty: 0.15, // tolerate the true overlaps
	}
	plain := base
	plain.Strategy = parmcmc.Sequential
	plain.Seed = o.Seed + 402
	temp := base
	temp.Strategy = parmcmc.Tempered
	temp.Seed = o.Seed + 403
	temp.Workers = o.workers()
	out, err := runBatch(ctx, o, false, []parmcmc.Job{
		{Name: "mc3/plain", Pix: im.Pix, W: w, H: h, Opt: plain},
		{Name: "mc3/cold", Pix: im.Pix, W: w, H: h, Opt: temp},
	})
	if err != nil {
		return nil, err
	}
	pr, cr := out[0].Result, out[1].Result

	mPlain := stats.MatchCircles(toGeom(pr.Circles), truth, meanR*0.6)
	mCold := stats.MatchCircles(toGeom(cr.Circles), truth, meanR*0.6)
	tb := &trace.Table{Header: []string{
		"sampler", "logpost", "found", "TP", "FN", "F1",
	}}
	tb.Add("plain chain", pr.LogPost, len(pr.Circles), mPlain.TP, mPlain.FN, mPlain.F1())
	tb.Add("(MC)^3 cold chain", cr.LogPost, len(cr.Circles),
		mCold.TP, mCold.FN, mCold.F1())
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}
	opt := mc3.DefaultOptions()
	return &Result{
		ID:    "mc3",
		Title: "(MC)^3 vs a single chain on an ambiguous overlapping-pair scene (§IV)",
		Body:  sb.String(),
		Notes: []string{
			fmt.Sprintf("%d chains, heat step %.2f, swap every %d iterations, swap rate %.2f",
				cr.Partitions, opt.HeatStep, opt.SwapEvery, cr.SwapRate),
			"related-work shape: heated chains hop between 'one big disc' and",
			"'two overlapping discs' interpretations and feed the better mode to",
			"the cold chain; (MC)^3 improves convergence rate, not workload spread.",
		},
	}, nil
}
