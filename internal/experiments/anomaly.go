package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Anomaly quantifies the §II motivation: naively bisecting an image and
// processing the halves separately "will not yield the same results as
// processing the entire image at once" — artifacts on partition
// boundaries are duplicated, misplaced or missed. The experiment plants
// artifacts exactly on the naive grid lines and scores naive, blind and
// periodic processing against ground truth. The naive baseline needs
// partition internals the public API deliberately does not expose, so
// this experiment alone stays off the Runner.
func Anomaly(ctx context.Context, o Options) (*Result, error) {
	w, h := 320, 320
	if o.Quick {
		w, h = 200, 200
	}
	im := imaging.New(w, h)
	im.Fill(0.1)
	fw, fh := float64(w), float64(h)
	meanR := 8.0
	// Half the artifacts sit on the 2x2 boundary cross, half elsewhere.
	truth := []geom.Ellipse{
		geom.Disc(fw/2, fh*0.18, meanR),
		geom.Disc(fw/2, fh*0.70, meanR),
		geom.Disc(fw*0.30, fh/2, meanR),
		geom.Disc(fw*0.82, fh/2, meanR),
		geom.Disc(fw*0.22, fh*0.25, meanR),
		geom.Disc(fw*0.75, fh*0.20, meanR),
		geom.Disc(fw*0.25, fh*0.80, meanR),
		geom.Disc(fw*0.78, fh*0.77, meanR),
	}
	for _, c := range truth {
		imaging.RenderShape(im, c, 0.9)
	}
	noise := rng.New(o.Seed + 300)
	for i := range im.Pix {
		im.Pix[i] += noise.NormalAt(0, 0.04)
	}
	im.Clamp()

	cfg := partition.DefaultConfig(meanR, o.Seed+301)
	cfg.MaxIters = 40000

	naive, err := partition.RunNaive(ctx, im, cfg, 2, 2, o.workers())
	if err != nil {
		return nil, err
	}
	blind, err := partition.RunBlind(ctx, im, cfg, partition.BlindOptions{
		NX: 2, NY: 2, Margin: 1.1 * meanR, MergeRadius: 5, KeepDisputed: true,
	}, o.workers())
	if err != nil {
		return nil, err
	}

	// Periodic partitioning on the same scene (statistically valid
	// parallelism for contrast).
	params := model.DefaultParams(float64(len(truth)), meanR)
	st, err := model.NewState(im, params)
	if err != nil {
		return nil, err
	}
	e, err := mcmc.New(st, rng.New(o.Seed+302), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(meanR))
	if err != nil {
		return nil, err
	}
	pe, err := core.NewEngine(e, core.Options{
		LocalPhaseIters: 300,
		GridXM:          fw * 0.75, GridYM: fh * 0.75,
		Workers: o.workers(),
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pe.Run(cfg.MaxIters)
	periodicSecs := time.Since(start).Seconds()
	periodicCircles := st.Cfg.Circles()

	xs, ys := partition.BoundaryLines(im.Bounds(), 2, 2)
	score := func(name string, found []geom.Ellipse) []any {
		m := stats.MatchCircles(found, truth, meanR/2)
		return []any{
			name, len(found), m.TP, m.FP, m.FN,
			stats.DuplicatePairs(found, meanR),
			stats.NearLine(found, xs, ys, meanR*1.5) - stats.NearLine(truth, xs, ys, meanR*1.5),
			m.F1(),
		}
	}
	tb := &trace.Table{Header: []string{
		"method", "found", "TP", "FP", "FN", "dup_pairs", "excess_near_boundary", "F1",
	}}
	tb.Add(score("naive", naive.Circles)...)
	tb.Add(score("blind", blind.Circles)...)
	tb.Add(score("periodic", periodicCircles)...)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}
	return &Result{
		ID:    "anomaly",
		Title: "Boundary anomalies: naive vs blind vs periodic partitioning (§II/§V)",
		Body:  sb.String(),
		Notes: []string{
			fmt.Sprintf("%d of %d truth artifacts sit exactly on the naive 2x2 grid lines", 4, len(truth)),
			fmt.Sprintf("periodic run: %d iterations in %.3fs (statistically exact)", cfg.MaxIters, periodicSecs),
			"paper shape: naive splitting duplicates or loses the boundary artifacts;",
			"blind partitioning's overlap+merge and periodic partitioning do not.",
		},
	}, nil
}
