package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/pkg/parmcmc"
)

// Fig1 regenerates fig. 1: the eq. 2 prediction of runtime (as a
// fraction of sequential) versus the global move proposal probability
// q_g, for 2, 4, 8 and 16 processes with τ_g = τ_l. The per-process
// series are independent, so they run as one parallel Runner batch of
// Func jobs.
func Fig1(ctx context.Context, o Options) (*Result, error) {
	qgs := make([]float64, 0, 21)
	for q := 0.0; q <= 1.0001; q += 0.05 {
		qgs = append(qgs, q)
	}
	procs := []int{2, 4, 8, 16}
	jobs := make([]parmcmc.Job, len(procs))
	for i, s := range procs {
		s := s
		jobs[i] = parmcmc.Job{
			Name: fmt.Sprintf("fig1/s=%d", s),
			Func: func(context.Context) (any, error) { return core.Fig1Series(s, qgs), nil },
		}
	}
	out, err := runBatch(ctx, o, false, jobs)
	if err != nil {
		return nil, err
	}
	series := map[int][]float64{}
	for i, s := range procs {
		series[s] = out[i].Value.([]float64)
	}
	tb := &trace.Table{Header: []string{"qg", "s=2", "s=4", "s=8", "s=16"}}
	for i, qg := range qgs {
		tb.Add(qg, series[2][i], series[4][i], series[8][i], series[16][i])
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}
	return &Result{
		ID:    "fig1",
		Title: "Predicted runtime fraction vs q_g (eq. 2, τ_g = τ_l)",
		Body:  sb.String(),
		Notes: []string{
			"paper shape: curves start at 1/s for q_g=0, converge to 1 at q_g=1;",
			"global moves are the limiting factor exactly as Amdahl's law dictates.",
		},
	}, nil
}
