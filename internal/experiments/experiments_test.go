package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func quickOpts() Options {
	o := DefaultOptions()
	o.Quick = true
	return o
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "arch", "table1", "fig4", "spec", "anomaly", "mc3"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if Lookup("fig1") == nil || Lookup("nope") != nil {
		t.Fatal("Lookup broken")
	}
}

func TestFig1Content(t *testing.T) {
	res, err := Fig1(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Body, "s=16") {
		t.Fatalf("missing series:\n%s", res.Body)
	}
	// q_g = 0 row must show 1/s values.
	lines := strings.Split(res.Body, "\n")
	var row0 string
	for _, l := range lines {
		if strings.HasPrefix(l, "0 ") {
			row0 = l
			break
		}
	}
	if row0 == "" || !strings.Contains(row0, "0.5") || !strings.Contains(row0, "0.0625") {
		t.Fatalf("q_g=0 row wrong: %q", row0)
	}
}

func TestResultWrite(t *testing.T) {
	res, err := Fig1(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== fig1:") {
		t.Fatalf("rendered result missing header:\n%s", buf.String())
	}
}

// Each experiment must run end-to-end in quick mode and produce a body.
// fig2/arch/spec/table1/fig4/anomaly/mc3 are exercised one by one so a
// failure names its experiment.
func TestQuickRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(context.Background(), quickOpts())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Fatalf("result ID %q, want %q", res.ID, e.ID)
			}
			if len(res.Body) == 0 {
				t.Fatalf("%s produced empty body", e.ID)
			}
		})
	}
}

func TestBeadSceneShape(t *testing.T) {
	scene, clusters := beadScene(quickOpts())
	if len(scene.Truth) != 48 {
		t.Fatalf("bead scene has %d artifacts, want 48 (6+38+4)", len(scene.Truth))
	}
	if len(clusters[0]) != 6 || len(clusters[1]) != 38 || len(clusters[2]) != 4 {
		t.Fatalf("cluster sizes %d/%d/%d, want 6/38/4",
			len(clusters[0]), len(clusters[1]), len(clusters[2]))
	}
}

func TestCellSceneQuickVsFull(t *testing.T) {
	q := cellScene(quickOpts())
	if q.Image.W != 256 || len(q.Truth) == 0 {
		t.Fatalf("quick cell scene wrong: %dx%d, %d artifacts",
			q.Image.W, q.Image.H, len(q.Truth))
	}
}

func TestSortByArea(t *testing.T) {
	order := sortByArea([]float64{1, 5, 3})
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("order = %v", order)
	}
}
