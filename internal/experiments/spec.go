package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/pkg/parmcmc"
)

// Spec regenerates the speculative-moves composition of §VI (eqs. 3–4):
// it measures the chain's global-move rejection rate, compares the
// measured iterations-per-batch of a speculative executor against the
// (1−p_r^n)/(1−p_r) model for several widths, and evaluates the eq. 2 /
// eq. 3 / eq. 4 predictions for the case-study parameters. The
// rejection-rate microbenchmark drives the executor directly; the
// measured regime comparisons run as a timed Runner batch.
func Spec(ctx context.Context, o Options) (*Result, error) {
	scene := cellScene(o)
	im := scene.Image
	total := cellTotalIters(o)
	meanR := 10.0
	params := model.DefaultParams(float64(len(scene.Truth)), meanR)

	// Measure the rejection rates on a sequential run.
	s, err := model.NewState(im, params)
	if err != nil {
		return nil, err
	}
	e, err := mcmc.New(s, rng.New(o.Seed+200), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(meanR))
	if err != nil {
		return nil, err
	}
	warm := total / 5
	start := time.Now()
	e.RunN(warm)
	tauIter := time.Since(start).Seconds() / float64(warm)
	pgr, plr := e.Stats.GlobalLocalRates()

	tb := &trace.Table{Header: []string{
		"width", "measured_iters_per_batch", "model_iters_per_batch", "model_speedup",
	}}
	for _, width := range []int{2, 4, 8} {
		x := spec.NewExecutor(e, width, nil)
		x.RunN(total / 10)
		tb.Add(width, x.MeasuredIterationsPerBatch(),
			spec.ExpectedIterationsPerBatch(e.Stats.RejectionRate(), width),
			spec.Speedup(e.Stats.RejectionRate(), width))
		x.Close()
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}

	// Theory block: eqs. 2–4 with the measured τ and rejection rates.
	const n, qg = 500000.0, 0.4
	eq2 := core.PredictedRuntime(n, qg, tauIter, tauIter, 4)
	eq3 := core.PredictedRuntimeSpec(n, qg, tauIter, tauIter, pgr, 4, 4)
	eq4 := core.PredictedRuntimeCluster(n, qg, tauIter, tauIter, pgr, plr, 4, 4)
	tb2 := &trace.Table{Header: []string{"model", "predicted_secs", "fraction_of_sequential"}}
	seqPred := n * tauIter
	tb2.Add("sequential", seqPred, 1.0)
	tb2.Add("eq2 periodic s=4", eq2, eq2/seqPred)
	tb2.Add("eq3 periodic+spec n=4", eq3, eq3/seqPred)
	tb2.Add("eq4 cluster s=4 t=4", eq4, eq4/seqPred)
	if err := tb2.Write(&sb); err != nil {
		return nil, err
	}

	// Measured counterparts via the simulated-parallel machinery on the
	// finer 9-partition grid; the sequential baseline is re-measured so
	// the fractions share one clock. One timed batch: baseline plus the
	// three regimes; global speculation is credited with the eq. 3 model
	// speedup at each run's measured global rejection rate.
	localIters := 10000
	if o.Quick {
		localIters = 1500
	}
	base := parmcmc.Options{
		MeanRadius:    meanR,
		ExpectedCount: float64(len(scene.Truth)),
		Iterations:    total,
	}
	seq := base
	seq.Strategy = parmcmc.Sequential
	seq.Seed = o.Seed + 77
	per := base
	per.Strategy = parmcmc.Periodic
	per.Seed = o.Seed + 78
	per.Workers = 4
	per.PartitionGrid = 2
	per.GridSlack = 1.0
	per.SimulateParallel = true
	per.LocalPhaseIters = localIters
	regimes := []struct {
		name          string
		specW, localW int
	}{
		{"periodic s=4 (eq2 regime)", 0, 0},
		{"periodic + global spec n=4 (eq3 regime)", 4, 0},
		{"periodic + global & local spec t=4 (eq4 regime)", 4, 4},
	}
	jobs := []parmcmc.Job{{Name: "spec/sequential", Pix: im.Pix, W: im.W, H: im.H, Opt: seq}}
	for _, rg := range regimes {
		opt := per
		opt.LocalSpecWidth = rg.localW
		jobs = append(jobs, parmcmc.Job{
			Name: "spec/" + rg.name, Pix: im.Pix, W: im.W, H: im.H, Opt: opt,
		})
	}
	out, err := runBatch(ctx, o, true, jobs)
	if err != nil {
		return nil, err
	}
	seqDur := out[0].Result.Elapsed
	tb3 := &trace.Table{Header: []string{"measured", "secs", "fraction_of_sequential"}}
	tb3.Add("sequential", seqDur.Seconds(), 1.0)
	for i, rg := range regimes {
		r := out[1+i].Result
		globalSecs := r.GlobalSeconds
		if rg.specW > 1 {
			globalSecs /= spec.Speedup(r.GlobalRejectRate, rg.specW)
		}
		dur := globalSecs + r.SimLocalSeconds
		tb3.Add(rg.name, dur, dur/seqDur.Seconds())
	}
	if err := tb3.Write(&sb); err != nil {
		return nil, err
	}

	return &Result{
		ID:    "spec",
		Title: "Speculative moves: measured vs model (eqs. 3–4)",
		Body:  sb.String(),
		Notes: []string{
			fmt.Sprintf("measured rejection rates: global p_gr = %.3f, local p_lr = %.3f, overall %.3f",
				pgr, plr, e.Stats.RejectionRate()),
			"paper shape: with rejection rates near 75%, speculation recovers most",
			"of the serial global phase — eq3 < eq2 and eq4 < eq3 strictly.",
		},
	}, nil
}
