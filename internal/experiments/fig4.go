package experiments

import (
	"fmt"
	"strings"

	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig4 regenerates the blind-partitioning experiment of §IX / fig. 4:
// the bead image is split into four equal quadrants expanded by 1.1×
// the expected radius, each processed independently, then merged. The
// paper reports quadrant relative runtimes of 0.12 / 0.08 / 0.27 / 0.11
// and a total runtime of ~27% of sequential, with no anomalies.
func Fig4(o Options) (*Result, error) {
	scene, _ := beadScene(o)
	meanR := scene.Truth[0].R
	cfg := beadConfig(o, meanR)

	whole, err := partition.RunSequential(scene.Image, cfg)
	if err != nil {
		return nil, err
	}
	opt := partition.BlindOptions{
		NX: 2, NY: 2,
		Margin:       1.1 * meanR,
		MergeRadius:  5,
		KeepDisputed: true,
	}
	res, err := partition.RunBlind(scene.Image, cfg, opt, o.workers())
	if err != nil {
		return nil, err
	}

	tb := &trace.Table{Header: []string{
		"quadrant", "obj_thresh", "iters_converge", "runtime_s", "rel_runtime",
	}}
	quadNames := []string{"top-left", "top-right", "bottom-left", "bottom-right"}
	for i, r := range res.Regions {
		tb.Add(quadNames[i], r.Lambda, r.Iters, r.Seconds, r.Seconds/whole.Seconds)
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}

	m := stats.MatchCircles(res.Circles, scene.Truth, meanR/2)
	makespan := partition.Makespan(res.Regions, 4)
	dup := stats.DuplicatePairs(res.Circles, meanR/2)
	notes := []string{
		fmt.Sprintf("sequential baseline: %.3fs; blind-partitioning runtime on 4 processors: %.3fs (relative %.3f)",
			whole.Seconds, makespan, makespan/whole.Seconds),
		fmt.Sprintf("merged cross-partition pairs: %d, disputed artifacts: %d, near-duplicates remaining: %d",
			res.Merged, res.Disputed, dup),
		fmt.Sprintf("detection F1 vs ground truth = %.3f (TP=%d FP=%d FN=%d)", m.F1(), m.TP, m.FP, m.FN),
		"paper shape: every quadrant converges far faster than the whole image",
		"(fewer artifacts AND a smaller statespace per artifact); total runtime",
		"drops to ~27% of sequential with no boundary anomalies after the merge —",
		"clearly superior to intelligent partitioning's ~90% on this clumped scene.",
	}
	return &Result{
		ID:    "fig4",
		Title: "Blind partitioning of the bead image (fig. 4, §IX)",
		Body:  sb.String(),
		Notes: notes,
	}, nil
}
