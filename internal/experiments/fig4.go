package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/pkg/parmcmc"
)

// Fig4 regenerates the blind-partitioning experiment of §IX / fig. 4:
// the bead image is split into four equal quadrants expanded by 1.1×
// the expected radius, each processed independently, then merged. The
// paper reports quadrant relative runtimes of 0.12 / 0.08 / 0.27 / 0.11
// and a total runtime of ~27% of sequential, with no anomalies. One
// timed Runner batch (whole-image baseline + blind run), one reducer.
func Fig4(ctx context.Context, o Options) (*Result, error) {
	scene, _ := beadScene(o)
	im := scene.Image
	meanR := scene.Truth[0].EffR()

	whole := beadBase(o, meanR)
	whole.Strategy = parmcmc.Sequential
	whole.Converge = true
	blind := beadBase(o, meanR)
	blind.Strategy = parmcmc.Blind
	blind.PartitionGrid = 2
	blind.Workers = o.workers()
	out, err := runBatch(ctx, o, true, []parmcmc.Job{
		{Name: "fig4/whole", Pix: im.Pix, W: im.W, H: im.H, Opt: whole},
		{Name: "fig4/blind", Pix: im.Pix, W: im.W, H: im.H, Opt: blind},
	})
	if err != nil {
		return nil, err
	}
	wr := out[0].Result.Regions[0]
	res := out[1].Result

	tb := &trace.Table{Header: []string{
		"quadrant", "obj_thresh", "iters_converge", "runtime_s", "rel_runtime",
	}}
	quadNames := []string{"top-left", "top-right", "bottom-left", "bottom-right"}
	for i, r := range res.Regions {
		tb.Add(quadNames[i], r.Lambda, r.Iters, r.Seconds, r.Seconds/wr.Seconds)
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}

	found := toGeom(res.Circles)
	m := stats.MatchCircles(found, scene.Truth, meanR/2)
	makespan := lptMakespan(res.Regions, 4)
	dup := stats.DuplicatePairs(found, meanR/2)
	notes := []string{
		fmt.Sprintf("sequential baseline: %.3fs; blind-partitioning runtime on 4 processors: %.3fs (relative %.3f)",
			wr.Seconds, makespan, makespan/wr.Seconds),
		fmt.Sprintf("merged cross-partition pairs: %d, disputed artifacts: %d, near-duplicates remaining: %d",
			res.Merged, res.Disputed, dup),
		fmt.Sprintf("detection F1 vs ground truth = %.3f (TP=%d FP=%d FN=%d)", m.F1(), m.TP, m.FP, m.FN),
		"paper shape: every quadrant converges far faster than the whole image",
		"(fewer artifacts AND a smaller statespace per artifact); total runtime",
		"drops to ~27% of sequential with no boundary anomalies after the merge —",
		"clearly superior to intelligent partitioning's ~90% on this clumped scene.",
	}
	return &Result{
		ID:    "fig4",
		Title: "Blind partitioning of the bead image (fig. 4, §IX)",
		Body:  sb.String(),
		Notes: notes,
	}, nil
}
