package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mcmc"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/trace"
)

// fig2Workload bundles the §VII case-study configuration.
type fig2Workload struct {
	scene      *sceneHandle
	totalIters int
}

type sceneHandle struct {
	state func() *model.State // fresh state per run
}

// newCellWorkload builds the fig. 2 workload: the cell scene, λ = truth
// count, q_g = 0.4 mixture, and the paper's 500 000 iterations (60 000 in
// quick mode).
func newCellWorkload(o Options) (*fig2Workload, error) {
	scene := cellScene(o)
	params := model.DefaultParams(float64(len(scene.Truth)), scene.Spec.MeanRadius)
	var buildErr error
	handle := &sceneHandle{state: func() *model.State {
		s, err := model.NewState(scene.Image, params)
		if err != nil {
			buildErr = err
		}
		return s
	}}
	total := 500000
	if o.Quick {
		total = 60000
	}
	// Build one state eagerly to surface configuration errors.
	if handle.state(); buildErr != nil {
		return nil, buildErr
	}
	return &fig2Workload{scene: handle, totalIters: total}, nil
}

func (w *fig2Workload) meanRadius() float64 { return 10 }

// runSequentialBaseline measures the plain sampler on the workload.
func (w *fig2Workload) runSequentialBaseline(o Options, meanR float64) (time.Duration, error) {
	s := w.scene.state()
	e, err := mcmc.New(s, rng.New(o.Seed+77), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(meanR))
	if err != nil {
		return 0, err
	}
	runtime.GC() // keep earlier runs' garbage out of this measurement
	start := time.Now()
	e.RunN(w.totalIters)
	return time.Since(start), nil
}

// runPeriodic measures a periodic run with the given local phase length
// and returns the *simulated* parallel duration (measured serial global
// phases + the makespan a `workers`-way machine achieves on the measured
// local-phase cells; see core.Options.SimulateParallel) plus the barrier
// count. Speculative global phases, when requested, are credited with
// the eq. 3 model speedup at the measured global rejection rate.
func (w *fig2Workload) runPeriodic(o Options, meanR float64, localIters, workers, specWidth int) (time.Duration, int64, error) {
	return w.runPeriodicGrid(o, meanR, localIters, workers, specWidth, 1)
}

// runPeriodicGrid is runPeriodic with a grid divisor: gridDiv = 1 gives
// the paper's four-quadrant single-point layout; gridDiv = 2 the finer
// grid (up to 9 cells) §VII recommends together with load balancing when
// partitions outnumber processors.
func (w *fig2Workload) runPeriodicGrid(o Options, meanR float64, localIters, workers, specWidth, gridDiv int) (time.Duration, int64, error) {
	return w.runPeriodicFull(o, meanR, localIters, workers, specWidth, gridDiv, 0)
}

// runPeriodicFull additionally enables speculative batches inside the
// partition workers (eq. 4's per-machine threads).
func (w *fig2Workload) runPeriodicFull(o Options, meanR float64, localIters, workers, specWidth, gridDiv, localSpec int) (time.Duration, int64, error) {
	s := w.scene.state()
	e, err := mcmc.New(s, rng.New(o.Seed+78), mcmc.DefaultWeights(), mcmc.DefaultStepSizes(meanR))
	if err != nil {
		return 0, 0, err
	}
	bounds := s.Bounds()
	timer := trace.NewPhaseTimer()
	pe, err := core.NewEngine(e, core.Options{
		LocalPhaseIters: localIters,
		// Spacing equal to the image size: every random offset puts
		// exactly one grid crossing inside the image — the paper's
		// "four rectangular partitions using a single coordinate where
		// all partitions meet".
		GridXM: bounds.W() / float64(gridDiv), GridYM: bounds.H() / float64(gridDiv),
		Workers:          workers,
		LocalSpecWidth:   localSpec,
		Timer:            timer,
		SimulateParallel: true,
	})
	if err != nil {
		return 0, 0, err
	}
	runtime.GC() // keep earlier runs' garbage out of this measurement
	pe.Run(w.totalIters)
	globalSecs := timer.Total("global").Seconds()
	if specWidth > 1 {
		pgr, _ := e.Stats.GlobalLocalRates()
		globalSecs /= spec.Speedup(pgr, specWidth)
	}
	total := globalSecs + pe.SimLocalSeconds
	return time.Duration(total * float64(time.Second)), pe.Barriers, nil
}

// Fig2 regenerates fig. 2: total runtime versus time spent per global
// phase, on the Q6600 profile, with the sequential runtime as baseline.
// Short global phases repartition too often and the per-barrier overhead
// dominates; beyond the sweet spot the curve flattens.
func Fig2(o Options) (*Result, error) {
	w, err := newCellWorkload(o)
	if err != nil {
		return nil, err
	}
	meanR := 10.0
	seqDur, err := w.runSequentialBaseline(o, meanR)
	if err != nil {
		return nil, err
	}
	tauIter := seqDur.Seconds() / float64(w.totalIters)

	arch := trace.Q6600
	// SimulateParallel models the profile's thread count regardless of
	// how many cores this host actually has.
	workers := arch.Threads
	tb := &trace.Table{Header: []string{
		"global_phase_iters", "global_phase_ms", "periodic_secs", "sequential_secs",
	}}
	// Sweep the global phase length; the local phase follows from q_g.
	sweep := []int{6, 12, 25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200}
	knee := ""
	for _, g := range sweep {
		local := int(float64(g) * (1 - 0.4) / 0.4)
		if local < 1 {
			local = 1
		}
		dur, barriers, err := w.runPeriodic(o, meanR, local, workers, 0)
		if err != nil {
			return nil, err
		}
		reported := dur + arch.Charge(barriers)
		gPhaseSecs := float64(g) * tauIter
		tb.Add(g, gPhaseSecs*1e3, reported.Seconds(), seqDur.Seconds())
		if knee == "" && reported < seqDur {
			knee = fmt.Sprintf("periodic first beats sequential at a global phase of %.1fms (%d iterations)",
				gPhaseSecs*1e3, g)
		}
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("sequential baseline: %.3fs for %d iterations (τ = %.2fµs/iter)",
			seqDur.Seconds(), w.totalIters, tauIter*1e6),
		fmt.Sprintf("architecture profile %s charges %.1fms per repartition barrier (see trace.ArchProfile)",
			arch.Name, arch.BarrierOverhead.Seconds()*1e3),
	}
	if knee != "" {
		notes = append(notes, knee)
	}
	notes = append(notes,
		"paper shape: too-frequent cycling costs more than sequential; a sweet spot appears",
		"around a ~20ms global phase; longer phases bring no further benefit.")
	return &Result{
		ID:    "fig2",
		Title: "Periodic parallelisation runtime vs global phase length (1024x1024, 4 partitions)",
		Body:  sb.String(),
		Notes: notes,
	}, nil
}
