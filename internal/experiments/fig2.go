package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/trace"
	"repro/pkg/parmcmc"
)

// cellTotalIters returns the chain length of the §VII case study: the
// paper's 500 000 iterations, 60 000 in quick mode.
func cellTotalIters(o Options) int {
	if o.Quick {
		return 60000
	}
	return 500000
}

// fig2Locals maps the swept global phase lengths to the local phase
// lengths that keep the move mixture at q_g = 0.4.
func fig2Locals(sweep []int) []int {
	locals := make([]int, len(sweep))
	for i, g := range sweep {
		local := int(float64(g) * (1 - 0.4) / 0.4)
		if local < 1 {
			local = 1
		}
		locals[i] = local
	}
	return locals
}

// periodicReported combines a simulated periodic run's measured global
// phases, the simulated Workers-way local-phase makespan and the
// profile's per-barrier charge into the runtime the figure reports.
func periodicReported(r *parmcmc.Result, arch trace.ArchProfile) time.Duration {
	dur := time.Duration((r.GlobalSeconds + r.SimLocalSeconds) * float64(time.Second))
	return dur + arch.Charge(r.Barriers)
}

// Fig2 regenerates fig. 2: total runtime versus time spent per global
// phase, on the Q6600 profile, with the sequential runtime as baseline.
// Short global phases repartition too often and the per-barrier overhead
// dominates; beyond the sweet spot the curve flattens. The whole figure
// is one Runner batch — a sequential baseline plus a Sweep over local
// phase lengths — and one reducer over its structured results.
func Fig2(ctx context.Context, o Options) (*Result, error) {
	scene := cellScene(o)
	im := scene.Image
	total := cellTotalIters(o)
	meanR := 10.0

	arch := trace.Q6600
	// SimulateParallel models the profile's thread count regardless of
	// how many cores this host actually has.
	workers := arch.Threads
	// Sweep the global phase length; the local phase follows from q_g.
	sweep := []int{6, 12, 25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200}

	base := parmcmc.Options{
		MeanRadius:    meanR,
		ExpectedCount: float64(len(scene.Truth)),
		Iterations:    total,
	}
	seq := base
	seq.Strategy = parmcmc.Sequential
	seq.Seed = o.Seed + 77
	jobs := []parmcmc.Job{{Name: "fig2/sequential", Pix: im.Pix, W: im.W, H: im.H, Opt: seq}}

	per := base
	per.Strategy = parmcmc.Periodic
	per.Seed = o.Seed + 78
	per.Workers = workers
	// Spacing equal to the image size: every random offset puts exactly
	// one grid crossing inside the image — the paper's "four rectangular
	// partitions using a single coordinate where all partitions meet".
	per.PartitionGrid = 1
	per.GridSlack = 1.0
	per.SimulateParallel = true
	jobs = append(jobs, parmcmc.Sweep{
		Name: "fig2/periodic",
		Pix:  im.Pix, W: im.W, H: im.H,
		Base:            per,
		LocalPhaseIters: fig2Locals(sweep),
	}.Jobs()...)

	out, err := runBatch(ctx, o, true, jobs)
	if err != nil {
		return nil, err
	}
	seqDur := out[0].Result.Elapsed
	tauIter := seqDur.Seconds() / float64(total)

	tb := &trace.Table{Header: []string{
		"global_phase_iters", "global_phase_ms", "periodic_secs", "sequential_secs",
	}}
	knee := ""
	for i, g := range sweep {
		reported := periodicReported(out[1+i].Result, arch)
		gPhaseSecs := float64(g) * tauIter
		tb.Add(g, gPhaseSecs*1e3, reported.Seconds(), seqDur.Seconds())
		if knee == "" && reported < seqDur {
			knee = fmt.Sprintf("periodic first beats sequential at a global phase of %.1fms (%d iterations)",
				gPhaseSecs*1e3, g)
		}
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("sequential baseline: %.3fs for %d iterations (τ = %.2fµs/iter)",
			seqDur.Seconds(), total, tauIter*1e6),
		fmt.Sprintf("architecture profile %s charges %.1fms per repartition barrier (see trace.ArchProfile)",
			arch.Name, arch.BarrierOverhead.Seconds()*1e3),
	}
	if knee != "" {
		notes = append(notes, knee)
	}
	notes = append(notes,
		"paper shape: too-frequent cycling costs more than sequential; a sweet spot appears",
		"around a ~20ms global phase; longer phases bring no further benefit.")
	return &Result{
		ID:    "fig2",
		Title: "Periodic parallelisation runtime vs global phase length (1024x1024, 4 partitions)",
		Body:  sb.String(),
		Notes: notes,
	}, nil
}
