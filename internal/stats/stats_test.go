package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestMatchCirclesPerfect(t *testing.T) {
	truth := []geom.Ellipse{geom.Disc(10, 10, 5), geom.Disc(40, 40, 6)}
	res := MatchCircles(truth, truth, 3)
	if res.TP != 2 || res.FP != 0 || res.FN != 0 {
		t.Fatalf("perfect match scored %+v", res)
	}
	if res.F1() != 1 || res.Precision() != 1 || res.Recall() != 1 {
		t.Fatal("perfect F1 != 1")
	}
	if res.MeanCenterErr != 0 || res.MeanRadiusErr != 0 {
		t.Fatal("errors nonzero on identical sets")
	}
}

func TestMatchCirclesPartial(t *testing.T) {
	truth := []geom.Ellipse{geom.Disc(10, 10, 5), geom.Disc(40, 40, 6)}
	found := []geom.Ellipse{
		geom.Disc(11, 10, 5), // matches truth[0]
		geom.Disc(80, 80, 5), // false positive
	}
	res := MatchCircles(found, truth, 3)
	if res.TP != 1 || res.FP != 1 || res.FN != 1 {
		t.Fatalf("scored %+v", res)
	}
	if math.Abs(res.Precision()-0.5) > 1e-12 || math.Abs(res.Recall()-0.5) > 1e-12 {
		t.Fatalf("P=%v R=%v", res.Precision(), res.Recall())
	}
	if math.Abs(res.MeanCenterErr-1) > 1e-12 {
		t.Fatalf("center err = %v", res.MeanCenterErr)
	}
}

func TestMatchCirclesGreedyPrefersClosest(t *testing.T) {
	truth := []geom.Ellipse{geom.Disc(10, 10, 5)}
	found := []geom.Ellipse{
		geom.Disc(12, 10, 5),   // distance 2
		geom.Disc(10.5, 10, 5), // distance 0.5 — must win
	}
	res := MatchCircles(found, truth, 5)
	if res.TP != 1 || res.Pairs[0][0] != 1 {
		t.Fatalf("greedy chose pairs %v", res.Pairs)
	}
}

func TestMatchCirclesNoDoubleUse(t *testing.T) {
	truth := []geom.Ellipse{geom.Disc(10, 10, 5), geom.Disc(12, 10, 5)}
	found := []geom.Ellipse{geom.Disc(11, 10, 5)}
	res := MatchCircles(found, truth, 5)
	if res.TP != 1 || res.FN != 1 {
		t.Fatalf("scored %+v", res)
	}
}

func TestMatchEmptySets(t *testing.T) {
	res := MatchCircles(nil, nil, 5)
	if res.F1() != 0 || res.Precision() != 0 || res.Recall() != 0 {
		t.Fatal("empty sets should score 0")
	}
}

// Property: TP+FP = |found|, TP+FN = |truth|, and F1 ∈ [0,1].
func TestMatchInvariantsProperty(t *testing.T) {
	r := rng.New(1)
	f := func(nf, nt uint8) bool {
		found := make([]geom.Ellipse, nf%12)
		truth := make([]geom.Ellipse, nt%12)
		for i := range found {
			found[i] = geom.Disc(r.Uniform(0, 50), r.Uniform(0, 50), 3)
		}
		for i := range truth {
			truth[i] = geom.Disc(r.Uniform(0, 50), r.Uniform(0, 50), 3)
		}
		res := MatchCircles(found, truth, 6)
		if res.TP+res.FP != len(found) || res.TP+res.FN != len(truth) {
			return false
		}
		f1 := res.F1()
		return f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePairs(t *testing.T) {
	circles := []geom.Ellipse{
		{X: 10, Y: 10}, {X: 11, Y: 10}, // pair
		{X: 50, Y: 50},
	}
	if n := DuplicatePairs(circles, 3); n != 1 {
		t.Fatalf("duplicates = %d", n)
	}
	if n := DuplicatePairs(circles, 0.5); n != 0 {
		t.Fatalf("tight duplicates = %d", n)
	}
}

func TestNearLine(t *testing.T) {
	circles := []geom.Ellipse{{X: 49, Y: 10}, {X: 10, Y: 51}, {X: 25, Y: 25}}
	if n := NearLine(circles, []float64{50}, []float64{50}, 3); n != 2 {
		t.Fatalf("near-line count = %d", n)
	}
	if n := NearLine(circles, nil, nil, 3); n != 0 {
		t.Fatal("no lines should count 0")
	}
}

func TestOnlineMatchesDirect(t *testing.T) {
	r := rng.New(2)
	var o Online
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := r.NormalAt(3, 2)
		o.Add(x)
		xs = append(xs, x)
	}
	s := Summarize(xs)
	if math.Abs(o.Mean()-s.Mean) > 1e-9 {
		t.Fatalf("online mean %v vs %v", o.Mean(), s.Mean)
	}
	if math.Abs(o.Std()-s.Std) > 1e-9 {
		t.Fatalf("online std %v vs %v", o.Std(), s.Std)
	}
	if o.N() != 1000 {
		t.Fatalf("N = %d", o.N())
	}
}

func TestOnlineEdge(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 {
		t.Fatal("empty accumulator nonzero")
	}
	o.Add(5)
	if o.Var() != 0 {
		t.Fatal("single observation has variance 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Median != 2 || math.Abs(s.Mean-2) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Fatalf("even median = %v", even.Median)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
}
