// Package stats provides detection scoring (matching found circles
// against ground truth), boundary-anomaly counting for the naive-
// partitioning demonstration, and small summary-statistics helpers used
// by the experiment harness.
package stats

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// MatchResult scores a detection set against ground truth.
type MatchResult struct {
	TP, FP, FN int
	// Pairs holds (foundIndex, truthIndex) for each match.
	Pairs [][2]int
	// MeanCenterErr and MeanRadiusErr average over matched pairs.
	MeanCenterErr float64
	MeanRadiusErr float64
}

// MatchCircles greedily matches found circles to truth circles in order
// of increasing centre distance, with matches allowed up to maxDist. Each
// truth circle is matched at most once.
func MatchCircles(found, truth []geom.Ellipse, maxDist float64) MatchResult {
	type cand struct {
		f, t int
		d    float64
	}
	var cands []cand
	for fi, f := range found {
		for ti, tr := range truth {
			if d := f.Dist(tr); d <= maxDist {
				cands = append(cands, cand{f: fi, t: ti, d: d})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		if cands[a].f != cands[b].f {
			return cands[a].f < cands[b].f
		}
		return cands[a].t < cands[b].t
	})
	usedF := make([]bool, len(found))
	usedT := make([]bool, len(truth))
	res := MatchResult{}
	sumD, sumR := 0.0, 0.0
	for _, c := range cands {
		if usedF[c.f] || usedT[c.t] {
			continue
		}
		usedF[c.f] = true
		usedT[c.t] = true
		res.Pairs = append(res.Pairs, [2]int{c.f, c.t})
		sumD += c.d
		// Size error compares equal-area radii, which reduces to the
		// plain radius difference for discs.
		sumR += math.Abs(found[c.f].EffR() - truth[c.t].EffR())
	}
	res.TP = len(res.Pairs)
	res.FP = len(found) - res.TP
	res.FN = len(truth) - res.TP
	if res.TP > 0 {
		res.MeanCenterErr = sumD / float64(res.TP)
		res.MeanRadiusErr = sumR / float64(res.TP)
	}
	return res
}

// Precision returns TP/(TP+FP), or 0 when nothing was found.
func (m MatchResult) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), or 0 when there is no truth.
func (m MatchResult) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m MatchResult) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// DuplicatePairs counts pairs of found circles whose centres lie within
// dist of each other — the signature anomaly of naive partitioning
// (an artifact detected once in each adjacent partition).
func DuplicatePairs(found []geom.Ellipse, dist float64) int {
	n := 0
	for i, a := range found {
		for _, b := range found[i+1:] {
			if a.Dist(b) < dist {
				n++
			}
		}
	}
	return n
}

// NearLine counts circles whose centre lies within dist of any of the
// given vertical (x = v) or horizontal (y = v) lines — used to localise
// anomalies to partition boundaries.
func NearLine(found []geom.Ellipse, xs, ys []float64, dist float64) int {
	n := 0
	for _, c := range found {
		near := false
		for _, x := range xs {
			if math.Abs(c.X-x) < dist {
				near = true
			}
		}
		for _, y := range ys {
			if math.Abs(c.Y-y) < dist {
				near = true
			}
		}
		if near {
			n++
		}
	}
	return n
}

// Online accumulates mean and variance in one pass (Welford's method).
type Online struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 before any observation).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Summary holds one-shot descriptive statistics.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max, Median float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var o Online
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		o.Add(x)
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = o.Mean()
	s.Std = o.Std()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}
