package stats

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic uniform generator for test sequences.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

func iid(n int) []float64 {
	r := lcg(42)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.next()
	}
	return xs
}

func TestSplitRHat(t *testing.T) {
	// An iid sequence is as stationary as it gets: R̂ ≈ 1.
	if r := SplitRHat(iid(512)); math.Abs(r-1) > 0.05 {
		t.Errorf("iid R̂ = %v", r)
	}
	// A monotone trend means the two halves have wildly different means.
	trend := make([]float64, 256)
	for i := range trend {
		trend[i] = float64(i)
	}
	if r := SplitRHat(trend); r < 1.5 {
		t.Errorf("trending R̂ = %v, want ≫ 1", r)
	}
	// Constant: flat, not divergent.
	if r := SplitRHat(make([]float64, 64)); r != 1 {
		t.Errorf("constant R̂ = %v, want 1", r)
	}
	// Constant halves at different levels: zero within-variance, but the
	// halves disagree — infinitely far from converged.
	step := append(make([]float64, 32), make([]float64, 32)...)
	for i := 32; i < 64; i++ {
		step[i] = 1
	}
	if r := SplitRHat(step); !math.IsInf(r, 1) {
		t.Errorf("step R̂ = %v, want +Inf", r)
	}
	// Too few samples to say anything.
	if r := SplitRHat(iid(7)); !math.IsNaN(r) {
		t.Errorf("R̂ of 7 samples = %v, want NaN", r)
	}
}

func TestESS(t *testing.T) {
	// iid: nearly every sample is effective.
	n := 512
	if e := ESS(iid(n)); e < 0.5*float64(n) || e > float64(n) {
		t.Errorf("iid ESS = %v of %d", e, n)
	}
	// A slowly-mixing AR(1) chain (φ=0.95) has tiny effective size.
	r := lcg(7)
	ar := make([]float64, n)
	for i := 1; i < n; i++ {
		ar[i] = 0.95*ar[i-1] + (r.next() - 0.5)
	}
	if e := ESS(ar); e > float64(n)/4 {
		t.Errorf("AR(1) ESS = %v, want ≪ %d", e, n)
	}
	// Constant sequences count every sample; short ones say nothing;
	// the estimate is clamped to [1, n].
	if e := ESS(make([]float64, 64)); e != 64 {
		t.Errorf("constant ESS = %v, want 64", e)
	}
	if e := ESS(iid(7)); !math.IsNaN(e) {
		t.Errorf("ESS of 7 samples = %v, want NaN", e)
	}
	trend := make([]float64, 64)
	for i := range trend {
		trend[i] = float64(i)
	}
	if e := ESS(trend); e < 1 || e > 64 {
		t.Errorf("ESS = %v outside [1, 64]", e)
	}
}

func TestStreamWindow(t *testing.T) {
	s := NewStream(4)
	for i := 1; i <= 6; i++ {
		s.Add(float64(i))
	}
	if s.Len() != 4 || s.Total() != 6 {
		t.Fatalf("Len %d Total %d", s.Len(), s.Total())
	}
	// The ring retains the most recent 4, oldest first.
	got := s.Window()
	want := []float64{3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window %v, want %v", got, want)
		}
	}
	// Mutating the returned copy must not corrupt the ring.
	got[0] = -1
	if s.Window()[0] != 3 {
		t.Fatal("Window returned the ring itself, not a copy")
	}
}

func TestStreamDiagnostics(t *testing.T) {
	s := NewStream(0) // default window
	if s.Len() != 0 || !math.IsNaN(s.RHat()) || !math.IsNaN(s.ESS()) {
		t.Fatalf("empty stream: Len %d RHat %v ESS %v", s.Len(), s.RHat(), s.ESS())
	}
	for _, x := range iid(256) {
		s.Add(x)
	}
	if r := s.RHat(); math.Abs(r-1) > 0.1 {
		t.Errorf("stream R̂ = %v", r)
	}
	if e := s.ESS(); e < 64 {
		t.Errorf("stream ESS = %v", e)
	}
	// The window slides: after a long trend the early iid prefix is gone
	// and the diagnostics describe only the trend.
	big := NewStream(64)
	for _, x := range iid(64) {
		big.Add(x)
	}
	for i := 0; i < 64; i++ {
		big.Add(1000 + 10*float64(i))
	}
	if r := big.RHat(); r < 1.5 {
		t.Errorf("post-trend R̂ = %v, want ≫ 1 (window did not slide?)", r)
	}
}
