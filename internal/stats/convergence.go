package stats

import "math"

// Streaming convergence diagnostics over a scalar chain statistic
// (typically the log-posterior observed at chunk boundaries). The
// window is a bounded ring: diagnostics describe the most recent
// samples, so a long run's early burn-in does not dominate forever and
// memory stays constant regardless of chain length.

// SplitRHat computes the split-R̂ potential scale reduction factor of a
// single chain segment: the segment is split into two halves which are
// treated as independent chains. Values near 1 indicate the two halves
// explore the same distribution (stationarity over the window); values
// well above 1 indicate the chain is still trending. Returns NaN for
// fewer than 8 samples, and 1 for a constant (zero-variance) sequence —
// flatness alone is not non-convergence (pair with acceptance rates to
// distinguish a mixed chain from a stuck one).
func SplitRHat(xs []float64) float64 {
	n := len(xs)
	if n < 8 {
		return math.NaN()
	}
	k := n / 2
	a, b := xs[:k], xs[n-k:] // drop the middle element of an odd-length window
	var oa, ob Online
	for _, x := range a {
		oa.Add(x)
	}
	for _, x := range b {
		ob.Add(x)
	}
	w := (oa.Var() + ob.Var()) / 2 // within-chain variance
	dm := oa.Mean() - ob.Mean()
	bv := float64(k) * dm * dm / 2 // between-chain variance (m = 2 chains)
	if w == 0 {
		if bv == 0 {
			return 1
		}
		return math.Inf(1)
	}
	kf := float64(k)
	varPlus := (kf-1)/kf*w + bv/kf
	return math.Sqrt(varPlus / w)
}

// ESS estimates the effective sample size of a single chain segment
// via its autocorrelation, using Geyer's initial monotone positive
// sequence to truncate the sum. An iid sequence reports ≈ len(xs); a
// strongly autocorrelated one reports far fewer. Returns NaN for fewer
// than 8 samples, and len(xs) for a constant sequence.
func ESS(xs []float64) float64 {
	n := len(xs)
	if n < 8 {
		return math.NaN()
	}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	mean := o.Mean()
	// Biased autocovariance at lag t (the conventional 1/n estimator).
	gamma := func(t int) float64 {
		s := 0.0
		for i := 0; i+t < n; i++ {
			s += (xs[i] - mean) * (xs[i+t] - mean)
		}
		return s / float64(n)
	}
	g0 := gamma(0)
	if g0 == 0 {
		return float64(n)
	}
	// Sum paired autocorrelations Γ_k = ρ(2k) + ρ(2k+1) while they stay
	// positive, enforcing monotone non-increase (Geyer 1992).
	tau := 1.0
	prev := math.Inf(1)
	for t := 1; t+1 < n; t += 2 {
		pair := (gamma(t) + gamma(t+1)) / g0
		if pair <= 0 {
			break
		}
		if pair > prev {
			pair = prev
		}
		prev = pair
		tau += 2 * pair
	}
	ess := float64(n) / tau
	if ess > float64(n) {
		ess = float64(n)
	}
	if ess < 1 {
		ess = 1
	}
	return ess
}

// Stream accumulates scalar chain samples into a bounded ring and
// serves windowed convergence diagnostics on demand. Not safe for
// concurrent use; callers guard it with their own lock.
type Stream struct {
	ring  []float64
	start int // index of the oldest sample once the ring is full
	total int64
}

// DefaultStreamWindow bounds a Stream's ring when NewStream is given a
// non-positive window.
const DefaultStreamWindow = 1024

// NewStream returns a stream retaining the most recent window samples
// (DefaultStreamWindow if window <= 0).
func NewStream(window int) *Stream {
	if window <= 0 {
		window = DefaultStreamWindow
	}
	return &Stream{ring: make([]float64, 0, window)}
}

// Add folds one sample into the window.
func (s *Stream) Add(x float64) {
	s.total++
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, x)
		return
	}
	s.ring[s.start] = x
	s.start = (s.start + 1) % len(s.ring)
}

// Len returns the number of samples currently in the window.
func (s *Stream) Len() int { return len(s.ring) }

// Total returns the number of samples ever added.
func (s *Stream) Total() int64 { return s.total }

// Window returns the retained samples oldest-first (a copy).
func (s *Stream) Window() []float64 {
	out := make([]float64, 0, len(s.ring))
	for i := 0; i < len(s.ring); i++ {
		out = append(out, s.ring[(s.start+i)%len(s.ring)])
	}
	return out
}

// RHat returns the split-R̂ over the current window.
func (s *Stream) RHat() float64 { return SplitRHat(s.Window()) }

// ESS returns the autocorrelation effective sample size over the
// current window.
func (s *Stream) ESS() float64 { return ESS(s.Window()) }
