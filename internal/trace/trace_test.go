package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPhaseTimerAccumulates(t *testing.T) {
	pt := NewPhaseTimer()
	pt.Add("global", 10*time.Millisecond)
	pt.Add("global", 5*time.Millisecond)
	pt.Add("local", 2*time.Millisecond)
	if got := pt.Total("global"); got != 15*time.Millisecond {
		t.Fatalf("global total = %v", got)
	}
	if got := pt.Count("global"); got != 2 {
		t.Fatalf("global count = %d", got)
	}
	if got := pt.Total("absent"); got != 0 {
		t.Fatalf("absent total = %v", got)
	}
	phases := pt.Phases()
	if len(phases) != 2 || phases[0] != "global" || phases[1] != "local" {
		t.Fatalf("Phases = %v", phases)
	}
}

func TestPhaseTimerTime(t *testing.T) {
	pt := NewPhaseTimer()
	pt.Time("work", func() { time.Sleep(time.Millisecond) })
	if pt.Total("work") < time.Millisecond {
		t.Fatalf("Time recorded %v", pt.Total("work"))
	}
}

func TestPhaseTimerConcurrent(t *testing.T) {
	pt := NewPhaseTimer()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				pt.Add("p", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if pt.Count("p") != 3200 {
		t.Fatalf("count = %d", pt.Count("p"))
	}
}

func TestArchProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("got %d profiles", len(ps))
	}
	// The paper's overhead ordering.
	if !(PentiumD.BarrierOverhead < Q6600.BarrierOverhead &&
		Q6600.BarrierOverhead < Xeon.BarrierOverhead) {
		t.Fatal("profile overhead ordering violates §VII")
	}
	if Q6600.Threads != 4 || PentiumD.Threads != 2 || Xeon.Threads != 2 {
		t.Fatal("profile thread counts wrong")
	}
	if got := Q6600.Charge(100); got != 100*Q6600.BarrierOverhead {
		t.Fatalf("Charge = %v", got)
	}
}

func TestTableWrite(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("alpha", 1.5)
	tb.Add("b", 0.5000)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Fatalf("row missing: %q", lines[2])
	}
	if !strings.Contains(lines[3], "0.5") || strings.Contains(lines[3], "0.5000") {
		t.Fatalf("float not trimmed: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.Add(1, 2)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", buf.String())
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2:      "2",
		0.1234: "0.1234",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
