// Package trace provides instrumentation for the experiment harness:
// phase timers, architecture overhead profiles (the substitution for the
// paper's three physical test machines, see DESIGN.md §7), and
// fixed-width table output matching the paper's reporting style.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// PhaseTimer accumulates wall-clock time and invocation counts per named
// phase. It is safe for concurrent use.
type PhaseTimer struct {
	mu     sync.Mutex
	totals map[string]time.Duration
	counts map[string]int64
}

// NewPhaseTimer returns an empty timer.
func NewPhaseTimer() *PhaseTimer {
	return &PhaseTimer{
		totals: make(map[string]time.Duration),
		counts: make(map[string]int64),
	}
}

// Add records one invocation of phase taking d.
func (pt *PhaseTimer) Add(phase string, d time.Duration) {
	pt.mu.Lock()
	pt.totals[phase] += d
	pt.counts[phase]++
	pt.mu.Unlock()
}

// Time runs fn and records its duration under phase.
func (pt *PhaseTimer) Time(phase string, fn func()) {
	start := time.Now()
	fn()
	pt.Add(phase, time.Since(start))
}

// Total returns the accumulated duration of phase.
func (pt *PhaseTimer) Total(phase string) time.Duration {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.totals[phase]
}

// Count returns the number of recorded invocations of phase.
func (pt *PhaseTimer) Count(phase string) int64 {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.counts[phase]
}

// Phases returns the recorded phase names, sorted.
func (pt *PhaseTimer) Phases() []string {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	names := make([]string, 0, len(pt.totals))
	for k := range pt.totals {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ArchProfile models the inter-thread communication cost of a machine.
// §VII attributes the runtime differences between the paper's three test
// machines entirely to "the overhead required to duplicate, arrange for
// parallel execution, and merge the partitions". We reproduce that
// mechanism by charging a fixed overhead per parallel phase barrier
// (fork + join + model merge) instead of owning the hardware; the charge
// is added arithmetically to measured runtimes so that timer granularity
// cannot blur small differences.
type ArchProfile struct {
	Name string
	// Threads is the hardware parallelism of the machine.
	Threads int
	// BarrierOverhead is charged once per fork/join cycle (one M_l
	// phase = one cycle).
	BarrierOverhead time.Duration
}

// The three evaluation machines of §VII. The overhead ordering is the
// paper's: same-die dual core < two dual-core dies < two sockets. The
// magnitudes are calibrated to the paper's fig. 2, whose knee implies a
// per-cycle duplication/fork/merge cost of a few milliseconds on the
// Q6600 ("each global move phase must last at least 4ms for the periodic
// parallelisation method to be faster than the sequential
// implementation") — 2010-era pthread coordination, not today's
// goroutine costs.
var (
	// PentiumD: dual core on one die — cheapest thread communication.
	PentiumD = ArchProfile{Name: "Pentium-D", Threads: 2, BarrierOverhead: 800 * time.Microsecond}
	// Q6600: two dual-core dies in one package.
	Q6600 = ArchProfile{Name: "Q6600", Threads: 4, BarrierOverhead: 3200 * time.Microsecond}
	// Xeon: two single-core processors on separate sockets.
	Xeon = ArchProfile{Name: "Xeon", Threads: 2, BarrierOverhead: 6 * time.Millisecond}
)

// Profiles lists the built-in architecture profiles in the paper's order.
func Profiles() []ArchProfile { return []ArchProfile{Q6600, Xeon, PentiumD} }

// Charge returns the total simulated communication overhead for the
// given number of fork/join barriers.
func (a ArchProfile) Charge(barriers int64) time.Duration {
	return time.Duration(barriers) * a.BarrierOverhead
}

// Table renders fixed-width rows in the style of the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(row []string) error {
		var sb strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
		total := 0
		for _, wd := range widths {
			total += wd
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total+2*(cols-1))); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (no quoting — the harness emits only
// plain numbers and identifiers).
func (t *Table) WriteCSV(w io.Writer) error {
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}
