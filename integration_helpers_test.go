package repro

import (
	"context"
	"testing"

	"repro/internal/experiments"
)

// lookupExperiment adapts the experiments registry for root tests.
func lookupExperiment(t *testing.T, id string) func(*testing.T) string {
	t.Helper()
	runner := experiments.Lookup(id)
	if runner == nil {
		t.Fatalf("unknown experiment %q", id)
	}
	return func(t *testing.T) string {
		opts := experiments.DefaultOptions()
		opts.Quick = true
		res, err := runner(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Body
	}
}
