package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd/ binaries into a temp dir once per
// test run.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// End-to-end CLI pipeline: imagegen renders a scene to PGM, mcmcimg
// detects its artifacts and writes CSV + overlay.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	imagegen := buildTool(t, "imagegen")
	mcmcimg := buildTool(t, "mcmcimg")

	pgm := filepath.Join(dir, "scene.pgm")
	gen := exec.Command(imagegen,
		"-w", "128", "-h", "128", "-count", "5", "-radius", "8",
		"-noise", "0.05", "-seed", "4", "-out", pgm)
	genOut, err := gen.Output()
	if err != nil {
		t.Fatalf("imagegen: %v", err)
	}
	truthLines := strings.Count(strings.TrimSpace(string(genOut)), "\n")
	if truthLines < 3 { // header + >=3 artifacts
		t.Fatalf("imagegen CSV too short:\n%s", genOut)
	}
	if fi, err := os.Stat(pgm); err != nil || fi.Size() == 0 {
		t.Fatalf("PGM not written: %v", err)
	}

	overlay := filepath.Join(dir, "overlay.png")
	det := exec.Command(mcmcimg,
		"-in", pgm, "-radius", "8", "-strategy", "blind",
		"-iters", "30000", "-seed", "2", "-overlay", overlay)
	detOut, err := det.Output()
	if err != nil {
		t.Fatalf("mcmcimg: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(detOut)), "\n")
	if lines[0] != "x,y,r" {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	found := len(lines) - 1
	if found < 3 || found > 8 {
		t.Fatalf("mcmcimg found %d artifacts for a 5-artifact scene", found)
	}
	if fi, err := os.Stat(overlay); err != nil || fi.Size() == 0 {
		t.Fatalf("overlay not written: %v", err)
	}
}

// The experiments binary must list its registry and run a quick
// experiment by ID.
func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "experiments")

	list, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(string(list))
	if len(ids) != 8 || ids[0] != "fig1" {
		t.Fatalf("experiment list = %v", ids)
	}

	out, err := exec.Command(bin, "-run", "fig1", "-quick").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "== fig1:") {
		t.Fatalf("fig1 output missing header:\n%s", out)
	}

	// Unknown ID must fail with a useful message.
	bad := exec.Command(bin, "-run", "nope")
	if err := bad.Run(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// mcmcimg must reject missing required flags.
func TestCLIMcmcimgUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildTool(t, "mcmcimg")
	if err := exec.Command(bin).Run(); err == nil {
		t.Fatal("no-args invocation succeeded")
	}
	if err := exec.Command(bin, "-in", "nonexistent.pgm", "-radius", "8").Run(); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestCLIPipelineEllipse runs the same imagegen → mcmcimg pipeline over
// an elliptical scene: -shape threads through both binaries, the CSV
// switches to the full shape columns, and the rotated-outline overlay
// is written.
func TestCLIPipelineEllipse(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	imagegen := buildTool(t, "imagegen")
	mcmcimg := buildTool(t, "mcmcimg")

	pgm := filepath.Join(dir, "scene.pgm")
	gen := exec.Command(imagegen,
		"-w", "128", "-h", "128", "-count", "5", "-radius", "8",
		"-shape", "ellipse", "-noise", "0.05", "-seed", "4", "-out", pgm)
	genOut, err := gen.Output()
	if err != nil {
		t.Fatalf("imagegen: %v", err)
	}
	if !strings.HasPrefix(string(genOut), "x,y,rx,ry,theta") {
		t.Fatalf("imagegen CSV header: %q", strings.SplitN(string(genOut), "\n", 2)[0])
	}

	overlay := filepath.Join(dir, "overlay.png")
	det := exec.Command(mcmcimg,
		"-in", pgm, "-radius", "8", "-shape", "ellipse", "-strategy", "periodic",
		"-iters", "30000", "-seed", "2", "-overlay", overlay)
	detOut, err := det.Output()
	if err != nil {
		t.Fatalf("mcmcimg: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(detOut)), "\n")
	if lines[0] != "x,y,rx,ry,theta" {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	found := len(lines) - 1
	if found < 3 || found > 8 {
		t.Fatalf("mcmcimg found %d artifacts for a 5-artifact scene", found)
	}
	if fi, err := os.Stat(overlay); err != nil || fi.Size() == 0 {
		t.Fatalf("overlay not written: %v", err)
	}

	// An unknown shape must be rejected by both binaries.
	if err := exec.Command(mcmcimg, "-in", pgm, "-radius", "8", "-shape", "blob").Run(); err == nil {
		t.Fatal("mcmcimg accepted -shape blob")
	}
	if err := exec.Command(imagegen, "-shape", "blob", "-out", filepath.Join(dir, "x.pgm")).Run(); err == nil {
		t.Fatal("imagegen accepted -shape blob")
	}
}
