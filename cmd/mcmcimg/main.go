// Command mcmcimg detects circular artifacts in PGM images using any of
// the parallelisation strategies of the paper. It prints the detections
// as CSV and, with -overlay, writes a PNG with the detections outlined.
//
// Usage:
//
//	mcmcimg -in cells.pgm -radius 10 [-strategy periodic] [-iters 200000]
//	        [-count 150] [-workers 4] [-seed 1] [-overlay out.png]
//
// Both -in and -strategy accept comma-separated lists; every image ×
// strategy combination becomes one job of a parmcmc.Runner batch,
// -parallel of which run concurrently. Batches of more than one job
// print a "# job: <name>" line before each CSV block, and ctrl-C cancels
// outstanding jobs at their next checkpoint.
//
// Strategies: sequential, periodic, periodic+spec, intelligent, blind, mc3.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/profiling"
	"repro/pkg/parmcmc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcmcimg: ")
	var (
		in         = flag.String("in", "", "input PGM image(s), comma-separated (required)")
		radius     = flag.Float64("radius", 0, "expected artifact radius in pixels (required)")
		strategy   = flag.String("strategy", "periodic", "detection strategy or comma-separated list")
		iters      = flag.Int("iters", 200000, "chain iterations (cap for partitioned strategies)")
		count      = flag.Float64("count", 0, "expected artifact count (0 = estimate via eq. 5)")
		workers    = flag.Int("workers", 0, "worker goroutines per job (0 = GOMAXPROCS)")
		parallel   = flag.Int("parallel", 1, "concurrent jobs in a batch")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		overlay    = flag.String("overlay", "", "optional PNG path for a detection overlay (single-job runs only)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *in == "" || *radius <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	// log.Fatal's os.Exit would skip the deferred flush and lose any
	// profile of the work already done; fail through fatalf instead.
	fatalf := func(format string, args ...any) {
		log.Printf(format, args...)
		stopProf()
		os.Exit(1)
	}

	var strategies []parmcmc.Strategy
	for _, name := range strings.Split(*strategy, ",") {
		strat, err := parmcmc.ParseStrategy(strings.TrimSpace(name))
		if err != nil {
			fatalf("%v", err)
		}
		strategies = append(strategies, strat)
	}

	type input struct {
		path string
		img  *imaging.Image
	}
	var inputs []input
	for _, path := range strings.Split(*in, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		img, err := imaging.ReadPGM(f)
		f.Close()
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		inputs = append(inputs, input{path: path, img: img})
	}

	var jobs []parmcmc.Job
	for _, inp := range inputs {
		for _, strat := range strategies {
			name := inp.path
			if len(strategies) > 1 {
				name += "/" + strat.String()
			}
			jobs = append(jobs, parmcmc.Job{
				Name: name,
				Pix:  inp.img.Pix, W: inp.img.W, H: inp.img.H,
				Opt: parmcmc.Options{
					Strategy:      strat,
					MeanRadius:    *radius,
					ExpectedCount: *count,
					Iterations:    *iters,
					Workers:       *workers,
					Seed:          *seed,
				},
			})
		}
	}
	if *overlay != "" && len(jobs) > 1 {
		fatalf("-overlay needs a single image and strategy")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := parmcmc.NewRunner(*parallel)
	results, _ := runner.Run(ctx, jobs)
	failed := false
	for _, jr := range results {
		if jr.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "%s: %v\n", jr.Name, jr.Err)
			continue
		}
		res := jr.Result
		if len(jobs) > 1 {
			fmt.Printf("# job: %s\n", jr.Name)
		}
		fmt.Println("x,y,r")
		for _, c := range res.Circles {
			fmt.Printf("%.3f,%.3f,%.3f\n", c.X, c.Y, c.R)
		}
		fmt.Fprintf(os.Stderr,
			"%s: %d artifacts in %v (%d iterations, %d partitions)\n",
			res.Strategy, len(res.Circles), res.Elapsed.Round(1e6),
			res.Iterations, res.Partitions)
	}
	if failed {
		stopProf() // os.Exit skips defers; flush profiles first
		os.Exit(1)
	}

	if *overlay != "" {
		circles := make([]geom.Circle, len(results[0].Result.Circles))
		for i, c := range results[0].Result.Circles {
			circles[i] = geom.Circle{X: c.X, Y: c.Y, R: c.R}
		}
		of, err := os.Create(*overlay)
		if err != nil {
			fatalf("%v", err)
		}
		if err := inputs[0].img.WriteOverlayPNG(of, circles); err != nil {
			fatalf("%v", err)
		}
		if err := of.Close(); err != nil {
			fatalf("%v", err)
		}
	}
}
