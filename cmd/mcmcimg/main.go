// Command mcmcimg detects circular artifacts in PGM images using any of
// the parallelisation strategies of the paper. It prints the detections
// as CSV and, with -overlay, writes a PNG with the detections outlined.
//
// Usage:
//
//	mcmcimg -in cells.pgm -radius 10 [-strategy periodic] [-iters 200000]
//	        [-count 150] [-workers 4] [-seed 1] [-overlay out.png]
//	        [-progress] [-checkpoint run.ckpt [-checkpoint-every 25000]]
//	mcmcimg -in cells.pgm -radius 10 -resume run.ckpt
//
// Both -in and -strategy accept comma-separated lists; every image ×
// strategy combination becomes one job of a parmcmc.Runner batch,
// -parallel of which run concurrently. Batches of more than one job
// print a "# job: <name>" line before each CSV block, and ctrl-C cancels
// outstanding jobs at their next checkpoint.
//
// -progress streams per-job progress lines to stderr. -checkpoint
// (single-job runs only) writes a resumable snapshot atomically every
// -checkpoint-every iterations; after an interruption, -resume continues
// the run from the file — chain-affecting options come from the
// checkpoint, and the final result is bit-identical to an uninterrupted
// run.
//
// Strategies: sequential, periodic, periodic+spec, intelligent, blind, mc3.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/pkg/parmcmc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcmcimg: ")
	var (
		in         = flag.String("in", "", "input PGM image(s), comma-separated (required)")
		radius     = flag.Float64("radius", 0, "expected artifact radius in pixels (required)")
		strategy   = flag.String("strategy", "periodic", "detection strategy or comma-separated list")
		shape      = flag.String("shape", "disc", "artifact shape family: disc or ellipse")
		iters      = flag.Int("iters", 200000, "chain iterations (cap for partitioned strategies)")
		count      = flag.Float64("count", 0, "expected artifact count (0 = estimate via eq. 5)")
		workers    = flag.Int("workers", 0, "worker goroutines per job (0 = GOMAXPROCS)")
		parallel   = flag.Int("parallel", 1, "concurrent jobs in a batch")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		overlay    = flag.String("overlay", "", "optional PNG path for a detection overlay (single-job runs only)")
		progress   = flag.Bool("progress", false, "stream progress lines to stderr")
		checkpoint = flag.String("checkpoint", "", "write periodic resumable checkpoints to this file (single-job runs only)")
		ckptEvery  = flag.Int("checkpoint-every", 25000, "approximate iterations between checkpoints")
		resume     = flag.String("resume", "", "resume from a -checkpoint file (single image; strategy and chain options come from the checkpoint)")
		profiles   = cliutil.AddProfileFlags(nil)
	)
	flag.Parse()
	if *in == "" || *radius <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	stopProf, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	// log.Fatal's os.Exit would skip the deferred flush and lose any
	// profile of the work already done; fail through fatalf instead.
	fatalf := func(format string, args ...any) {
		log.Printf(format, args...)
		stopProf()
		os.Exit(1)
	}

	shapeKind, err := parmcmc.ParseShape(*shape)
	if err != nil {
		fatalf("%v (known shapes: disc, ellipse)", err)
	}

	var strategies []parmcmc.Strategy
	for _, name := range strings.Split(*strategy, ",") {
		strat, err := parmcmc.ParseStrategy(strings.TrimSpace(name))
		if err != nil {
			fatalf("%v", err)
		}
		strategies = append(strategies, strat)
	}

	type input struct {
		path string
		img  *imaging.Image
	}
	var inputs []input
	for _, path := range strings.Split(*in, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		img, err := imaging.ReadPGM(f)
		f.Close()
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		inputs = append(inputs, input{path: path, img: img})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	writeOverlay := func(img *imaging.Image, found []parmcmc.Ellipse) {
		circles := make([]geom.Ellipse, len(found))
		for i, e := range found {
			circles[i] = geom.Ellipse{X: e.X, Y: e.Y, Rx: e.Rx, Ry: e.Ry, Theta: e.Theta}
		}
		of, err := os.Create(*overlay)
		if err != nil {
			fatalf("%v", err)
		}
		if err := img.WriteOverlayPNG(of, circles); err != nil {
			fatalf("%v", err)
		}
		if err := of.Close(); err != nil {
			fatalf("%v", err)
		}
	}

	// Resume mode: one image, strategy and chain options from the file.
	if *resume != "" {
		if len(inputs) != 1 {
			fatalf("-resume needs exactly one input image")
		}
		blob, err := os.ReadFile(*resume)
		if err != nil {
			fatalf("%v", err)
		}
		var cp parmcmc.Checkpoint
		if err := cp.UnmarshalBinary(blob); err != nil {
			fatalf("%v", err)
		}
		opt := parmcmc.Options{Workers: *workers}
		if *progress {
			opt.Observer = progressPrinter(inputs[0].path)
		}
		if *checkpoint != "" {
			opt.OnCheckpoint = checkpointWriter(*checkpoint)
			opt.CheckpointEvery = *ckptEvery
		}
		img := inputs[0].img
		res, err := parmcmc.DetectResume(ctx, img.Pix, img.W, img.H, opt, &cp)
		if err != nil {
			fatalf("%v", err)
		}
		printResult(res)
		if *overlay != "" {
			writeOverlay(img, res.Ellipses)
		}
		return
	}

	var jobs []parmcmc.Job
	for _, inp := range inputs {
		for _, strat := range strategies {
			name := inp.path
			if len(strategies) > 1 {
				name += "/" + strat.String()
			}
			opt := parmcmc.Options{
				Strategy:      strat,
				Shape:         shapeKind,
				MeanRadius:    *radius,
				ExpectedCount: *count,
				Iterations:    *iters,
				Workers:       *workers,
				Seed:          *seed,
			}
			if *progress {
				opt.Observer = progressPrinter(name)
			}
			jobs = append(jobs, parmcmc.Job{
				Name: name,
				Pix:  inp.img.Pix, W: inp.img.W, H: inp.img.H,
				Opt: opt,
			})
		}
	}
	if *overlay != "" && len(jobs) > 1 {
		fatalf("-overlay needs a single image and strategy")
	}
	if *checkpoint != "" {
		if len(jobs) > 1 {
			fatalf("-checkpoint needs a single image and strategy")
		}
		jobs[0].Opt.OnCheckpoint = checkpointWriter(*checkpoint)
		jobs[0].Opt.CheckpointEvery = *ckptEvery
	}

	runner := parmcmc.NewRunner(*parallel)
	results, _ := runner.Run(ctx, jobs)
	failed := false
	for _, jr := range results {
		if jr.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "%s: %v\n", jr.Name, jr.Err)
			continue
		}
		if len(jobs) > 1 {
			fmt.Printf("# job: %s\n", jr.Name)
		}
		printResult(jr.Result)
	}
	if failed {
		stopProf() // os.Exit skips defers; flush profiles first
		os.Exit(1)
	}

	if *overlay != "" {
		writeOverlay(inputs[0].img, results[0].Result.Ellipses)
	}
}

// printResult writes one job's CSV block to stdout and its summary line
// to stderr. Ellipse runs print the full shape parameters (even when a
// run found nothing, so the schema is a function of the request, not of
// the posterior sample); disc runs keep the historical x,y,r format.
func printResult(res *parmcmc.Result) {
	if res.Shape == parmcmc.Ellipses {
		fmt.Println("x,y,rx,ry,theta")
		for _, e := range res.Ellipses {
			fmt.Printf("%.3f,%.3f,%.3f,%.3f,%.3f\n", e.X, e.Y, e.Rx, e.Ry, e.Theta)
		}
	} else {
		fmt.Println("x,y,r")
		for _, c := range res.Circles {
			fmt.Printf("%.3f,%.3f,%.3f\n", c.X, c.Y, c.R)
		}
	}
	fmt.Fprintf(os.Stderr,
		"%s: %d artifacts in %v (%d iterations, %d partitions)\n",
		res.Strategy, len(res.Circles), res.Elapsed.Round(1e6),
		res.Iterations, res.Partitions)
}

// progressPrinter returns an Observer streaming one line per snapshot.
func progressPrinter(name string) func(parmcmc.Progress) {
	return func(p parmcmc.Progress) {
		total := ""
		if p.Total > 0 {
			total = fmt.Sprintf("/%d", p.Total)
		}
		fmt.Fprintf(os.Stderr,
			"progress: %s strategy=%s phase=%q iter=%d%s circles=%d logpost=%.2f accept=%.2f regions=%d/%d\n",
			name, p.Strategy, p.Phase, p.Iter, total,
			p.NumCircles, p.LogPost, p.AcceptRate, p.PartitionsDone, p.Partitions)
	}
}

// checkpointWriter returns an OnCheckpoint callback that persists each
// snapshot atomically (write-then-rename), so an interruption never
// leaves a truncated checkpoint behind.
func checkpointWriter(path string) func(*parmcmc.Checkpoint) {
	return func(cp *parmcmc.Checkpoint) {
		blob, err := cp.MarshalBinary()
		if err != nil {
			log.Printf("checkpoint: %v", err)
			return
		}
		if err := cliutil.WriteFileAtomic(path, blob, 0o644); err != nil {
			log.Printf("checkpoint: %v", err)
		}
	}
}
