// Command mcmcimg detects circular artifacts in a PGM image using any of
// the parallelisation strategies of the paper. It prints the detections
// as CSV and, with -overlay, writes a PNG with the detections outlined.
//
// Usage:
//
//	mcmcimg -in cells.pgm -radius 10 [-strategy periodic] [-iters 200000]
//	        [-count 150] [-workers 4] [-seed 1] [-overlay out.png]
//
// Strategies: sequential, periodic, periodic+spec, intelligent, blind, mc3.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/pkg/parmcmc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcmcimg: ")
	var (
		in       = flag.String("in", "", "input PGM image (required)")
		radius   = flag.Float64("radius", 0, "expected artifact radius in pixels (required)")
		strategy = flag.String("strategy", "periodic", "detection strategy")
		iters    = flag.Int("iters", 200000, "chain iterations (cap for partitioned strategies)")
		count    = flag.Float64("count", 0, "expected artifact count (0 = estimate via eq. 5)")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		overlay  = flag.String("overlay", "", "optional PNG path for a detection overlay")
	)
	flag.Parse()
	if *in == "" || *radius <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	strat, err := parmcmc.ParseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	img, err := imaging.ReadPGM(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	res, err := parmcmc.Detect(img.Pix, img.W, img.H, parmcmc.Options{
		Strategy:      strat,
		MeanRadius:    *radius,
		ExpectedCount: *count,
		Iterations:    *iters,
		Workers:       *workers,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("x,y,r")
	for _, c := range res.Circles {
		fmt.Printf("%.3f,%.3f,%.3f\n", c.X, c.Y, c.R)
	}
	fmt.Fprintf(os.Stderr,
		"%s: %d artifacts in %v (%d iterations, %d partitions)\n",
		res.Strategy, len(res.Circles), res.Elapsed.Round(1e6),
		res.Iterations, res.Partitions)

	if *overlay != "" {
		circles := make([]geom.Circle, len(res.Circles))
		for i, c := range res.Circles {
			circles[i] = geom.Circle{X: c.X, Y: c.Y, R: c.R}
		}
		of, err := os.Create(*overlay)
		if err != nil {
			log.Fatal(err)
		}
		if err := img.WriteOverlayPNG(of, circles); err != nil {
			log.Fatal(err)
		}
		if err := of.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
