package main

import (
	"flag"
	"fmt"
	"strings"
)

func nodeCommand() *command {
	ls := &command{
		name:  "ls",
		short: "List the workers registered with a coordinator",
		long: `Fetches /v1/nodes from a distributed-mode coordinator and lists every
registered worker: its state (alive, or lost after missing heartbeats),
slot count, the jobs it currently holds leases on, the age of its last
heartbeat and how many jobs it has completed. A standalone daemon has
no worker registry and answers not_found.`,
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 0 {
				return usagef("node ls takes no arguments")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			ctx, cancel := a.unaryCtx()
			defer cancel()
			nodes, err := c.Nodes(ctx)
			if err != nil {
				return err
			}
			if a.jsonOut {
				return a.printJSON(nodes)
			}
			fmt.Fprintf(a.out, "%-8s %-16s %-6s %-5s %-7s %-9s %s\n",
				"ID", "NAME", "STATE", "SLOTS", "AGE", "COMPLETED", "LEASES")
			for _, n := range nodes {
				leases := strings.Join(n.Leases, ",")
				if leases == "" {
					leases = "-"
				}
				fmt.Fprintf(a.out, "%-8s %-16s %-6s %-5d %-7s %-9d %s\n",
					n.ID, n.Name, n.State, n.Slots,
					fmt.Sprintf("%.1fs", n.LastHeartbeatAgeSeconds), n.JobsCompleted, leases)
			}
			return nil
		},
	}
	return &command{
		name:  "node",
		short: "Inspect a coordinator's worker registry",
		sub:   []*command{ls},
	}
}
