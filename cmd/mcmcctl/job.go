package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

func jobCommand() *command {
	return &command{
		name:  "job",
		short: "Manage detection jobs",
		sub: []*command{
			jobSubmitCommand(),
			jobListCommand(),
			jobGetCommand(),
			jobCancelCommand(),
			jobEventsCommand(),
		},
	}
}

// submitFlags collects `job submit`'s inputs; the three sources (-f
// spec file, -image upload, scene flags) are mutually exclusive.
type submitFlags struct {
	specFile string
	image    string
	wait     bool

	scene api.SceneSpec
	opts  api.OptionsSpec
}

func jobSubmitCommand() *command {
	var sf submitFlags
	return &command{
		name:  "submit",
		short: "Submit a detection job",
		long: `Submits a job from one of three sources: a JSON job spec (-f, the
POST /v1/jobs body format), a PNG/PGM image upload (-image, detection
options from the flags), or a synthetic scene described entirely by
the -scene-* flags. With -wait the command tails the job's SSE stream
and exits when it completes, printing the terminal status.`,
		flags: func(a *app, fs *flag.FlagSet) {
			fs.StringVar(&sf.specFile, "f", "", "JSON job spec file (\"-\" for stdin); overrides scene flags")
			fs.StringVar(&sf.image, "image", "", "PNG or PGM image file to upload")
			fs.BoolVar(&sf.wait, "wait", false, "stream events until the job completes")
			fs.IntVar(&sf.scene.W, "scene-w", 128, "synthetic scene width")
			fs.IntVar(&sf.scene.H, "scene-h", 128, "synthetic scene height")
			fs.IntVar(&sf.scene.Count, "scene-count", 8, "synthetic scene artifact count")
			fs.Float64Var(&sf.scene.MeanRadius, "scene-radius", 8, "synthetic scene mean artifact radius")
			fs.Float64Var(&sf.scene.Noise, "scene-noise", 0.05, "synthetic scene noise level")
			fs.IntVar(&sf.scene.Clusters, "scene-clusters", 0, "synthetic scene cluster count (0 = uniform)")
			fs.Uint64Var(&sf.scene.Seed, "scene-seed", 1, "synthetic scene generation seed")
			fs.StringVar(&sf.scene.Shape, "scene-shape", "", "synthetic scene artifact shape (disc, ellipse)")
			fs.Float64Var(&sf.scene.AxisRatio, "scene-axis-ratio", 0, "mean minor/major axis ratio for ellipse scenes")
			fs.StringVar(&sf.opts.Strategy, "strategy", "", "detection strategy (see `mcmcctl version`)")
			fs.StringVar(&sf.opts.Shape, "shape", "", "detection shape model (default: the scene's)")
			fs.Float64Var(&sf.opts.MeanRadius, "radius", 0, "expected mean artifact radius (default: the scene's)")
			fs.Float64Var(&sf.opts.ExpectedCount, "count", 0, "expected artifact count prior")
			fs.IntVar(&sf.opts.Iterations, "iterations", 0, "chain iterations (0 = library default)")
			fs.Uint64Var(&sf.opts.Seed, "seed", 0, "detection seed (0 = server-derived)")
			fs.IntVar(&sf.opts.Workers, "workers", 0, "intra-job parallelism (0 = library default)")
			fs.IntVar(&sf.opts.PartitionGrid, "partition-grid", 0, "partition grid for partitioned strategies")
			fs.IntVar(&sf.opts.Chains, "chains", 0, "parallel-tempering chain count")
			fs.BoolVar(&sf.opts.Converge, "converge", false, "run partitions to convergence instead of a fixed budget")
		},
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 0 {
				return usagef("job submit takes no arguments")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			ctx, cancel := a.unaryCtx()
			defer cancel()
			st, err := submitFrom(ctx, c, &sf)
			if err != nil {
				return err
			}
			if !sf.wait {
				if a.jsonOut {
					return a.printJSON(st)
				}
				fmt.Fprintf(a.out, "submitted\t%s\tseed=%d\n", st.ID, st.Seed)
				return nil
			}
			fmt.Fprintf(a.errw, "submitted %s (seed %d), waiting…\n", st.ID, st.Seed)
			return tailJob(a, c, st.ID)
		},
	}
}

// submitFrom performs the actual submission for the selected source.
func submitFrom(ctx context.Context, c *client.Client, sf *submitFlags) (*api.JobStatus, error) {
	switch {
	case sf.specFile != "" && sf.image != "":
		return nil, usagef("-f and -image are mutually exclusive")
	case sf.specFile != "":
		blob, err := readFileOrStdin(sf.specFile)
		if err != nil {
			return nil, err
		}
		var spec api.JobSpec
		if err := jsonUnmarshalStrict(blob, &spec); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", sf.specFile, err)
		}
		return c.Submit(ctx, spec)
	case sf.image != "":
		blob, err := os.ReadFile(sf.image)
		if err != nil {
			return nil, err
		}
		return c.SubmitImage(ctx, blob, sf.opts)
	default:
		return c.Submit(ctx, api.JobSpec{Scene: &sf.scene, Options: sf.opts})
	}
}

func readFileOrStdin(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func jobListCommand() *command {
	return &command{
		name:  "list",
		short: "List jobs",
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 0 {
				return usagef("job list takes no arguments")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			ctx, cancel := a.unaryCtx()
			defer cancel()
			jobs, err := c.Jobs(ctx)
			if err != nil {
				return err
			}
			if a.jsonOut {
				return a.printJSON(jobs)
			}
			fmt.Fprintf(a.out, "%-14s %-10s %-16s %-20s %s\n", "ID", "STATE", "STRATEGY", "SEED", "SUBMITTED")
			for _, j := range jobs {
				fmt.Fprintf(a.out, "%-14s %-10s %-16s %-20d %s\n",
					j.ID, j.State, j.Strategy, j.Seed, j.Submitted.Format(time.RFC3339))
			}
			return nil
		},
	}
}

func jobGetCommand() *command {
	return &command{
		name:  "get",
		args:  "<job-id>",
		short: "Show one job's status and result",
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 1 {
				return usagef("job get takes exactly one job id")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			ctx, cancel := a.unaryCtx()
			defer cancel()
			st, err := c.Job(ctx, args[0])
			if err != nil {
				return err
			}
			if a.jsonOut {
				return a.printJSON(st)
			}
			printStatus(a, st)
			return nil
		},
	}
}

func jobCancelCommand() *command {
	return &command{
		name:  "cancel",
		args:  "<job-id>",
		short: "Cancel a pending or running job",
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 1 {
				return usagef("job cancel takes exactly one job id")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			ctx, cancel := a.unaryCtx()
			defer cancel()
			st, err := c.Cancel(ctx, args[0])
			if err != nil {
				return err
			}
			if a.jsonOut {
				return a.printJSON(st)
			}
			fmt.Fprintf(a.out, "%s\t%s\n", st.ID, st.State)
			return nil
		},
	}
}

func jobEventsCommand() *command {
	return &command{
		name:  "events",
		args:  "<job-id>",
		short: "Tail a job's SSE progress stream",
		long: `Streams the job's server-sent events until it reaches a terminal
state, printing one line per event. The stream transparently
reconnects (deduplicating replayed snapshots) if the connection drops
— for example across a daemon restart that resumes the job from its
checkpoint. -timeout does not apply; interrupt with ^C.`,
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 1 {
				return usagef("job events takes exactly one job id")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			return tailJob(a, c, args[0])
		},
	}
}

// tailJob streams a job to completion, printing events as they arrive,
// and ends with the terminal status (non-zero exit for failed jobs).
func tailJob(a *app, c *client.Client, id string) error {
	final, err := c.Wait(context.Background(), id, func(ev *client.Event) {
		switch {
		case ev.Progress != nil:
			p := ev.Progress
			fmt.Fprintf(a.out, "progress\tphase=%s iter=%d/%d log_post=%s circles=%d accept=%s\n",
				p.Phase, p.Iter, p.Total, fmtFloat(p.LogPost), p.NumCircles, fmtFloat(p.AcceptRate))
		case ev.Status != nil && ev.Name != "done":
			fmt.Fprintf(a.out, "state\t%s\n", ev.Status.State)
		}
	})
	if err != nil {
		return err
	}
	if a.jsonOut {
		return a.printJSON(final)
	}
	printStatus(a, final)
	if final.State == api.StateFailed {
		return fmt.Errorf("job %s failed: %s", final.ID, final.Error)
	}
	return nil
}

// printStatus renders a JobStatus for humans, decoding the embedded
// result when present.
func printStatus(a *app, st *api.JobStatus) {
	fmt.Fprintf(a.out, "job\t%s\nstate\t%s\nstrategy\t%s\nseed\t%d\n", st.ID, st.State, st.Strategy, st.Seed)
	if st.Error != "" {
		fmt.Fprintf(a.out, "error\t%s\n", st.Error)
	}
	if p := st.Progress; p != nil && !st.State.Terminal() {
		fmt.Fprintf(a.out, "phase\t%s\niter\t%d/%d\n", p.Phase, p.Iter, p.Total)
	}
	res, err := st.ResultView()
	if err != nil {
		fmt.Fprintf(a.errw, "mcmcctl: decoding result: %v\n", err)
		return
	}
	if res == nil {
		return
	}
	fmt.Fprintf(a.out, "circles\t%d\nlog_post\t%s\niterations\t%d\nelapsed\t%.3fs\naccept_rate\t%s\n",
		len(res.Circles), fmtFloat(res.LogPost), res.Iterations, res.ElapsedSeconds, fmtFloat(res.AcceptRate))
	for i, c := range res.Circles {
		fmt.Fprintf(a.out, "circle[%d]\tx=%.2f y=%.2f r=%.2f\n", i, c.X, c.Y, c.R)
	}
}
