// Command mcmcctl is the operator CLI for the mcmcd detection daemon:
// submit and manage jobs, tail their SSE progress streams, inspect
// chain-convergence diagnostics and metrics, and examine a spool
// directory offline. It speaks the versioned pkg/api contract through
// pkg/client.
//
// Usage:
//
//	mcmcctl [-host URL] [-timeout 30s] [-json] <command> …
//
//	mcmcctl job submit    submit a job (JSON spec, image upload, or flags)
//	mcmcctl job list      list jobs
//	mcmcctl job get       one job's status and result
//	mcmcctl job cancel    cancel a pending or running job
//	mcmcctl job events    tail a job's SSE progress stream
//	mcmcctl diag          chain-convergence diagnostics (R̂, ESS, rates)
//	mcmcctl node ls       list a coordinator's registered workers
//	mcmcctl spool ls      inspect a spool directory (no daemon needed)
//	mcmcctl metrics       daemon metrics summary
//	mcmcctl version       client and server versions
//	mcmcctl cmdref        regenerate the markdown command reference
//
// The daemon address comes from -host or the MCMCD_HOST environment
// variable (default http://127.0.0.1:8080). The full reference lives
// under docs/cmdref/, generated from this very command tree.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/pkg/api"
)

func main() {
	a := newApp(os.Getenv)
	root := rootCommand()
	if err := root.dispatch(a, root.name, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "mcmcctl: %v\n", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func rootCommand() *command {
	return &command{
		name:  "mcmcctl",
		short: "Operator CLI for the mcmcd detection daemon",
		long: `mcmcctl drives a running mcmcd daemon over its versioned HTTP API:
job submission and lifecycle, live SSE progress streams, chain
convergence diagnostics and Prometheus metrics. The spool subcommands
inspect a daemon's on-disk state directly and need no server.`,
		sub: []*command{
			jobCommand(),
			diagCommand(),
			nodeCommand(),
			spoolCommand(),
			metricsCommand(),
			versionCommand(),
			cmdrefCommand(),
		},
	}
}

func versionCommand() *command {
	return &command{
		name:  "version",
		short: "Show client and server versions",
		long: `Prints the client's API version and, when a daemon is reachable, the
server's version info including its registered strategies and shapes.`,
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 0 {
				return usagef("version takes no arguments")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			ctx, cancel := a.unaryCtx()
			defer cancel()
			info, err := c.Version(ctx)
			if err != nil {
				fmt.Fprintf(a.out, "client\tapi %s (%s)\n", api.Version, runtime.Version())
				return fmt.Errorf("server at %s unreachable: %w", a.host, err)
			}
			if a.jsonOut {
				return a.printJSON(info)
			}
			fmt.Fprintf(a.out, "client\tapi %s (%s)\n", api.Version, runtime.Version())
			fmt.Fprintf(a.out, "server\t%s api %s (%s)\n", info.Service, info.API, info.GoVersion)
			fmt.Fprintf(a.out, "strategies\t%s\n", strings.Join(info.Strategies, ", "))
			fmt.Fprintf(a.out, "shapes\t%s\n", strings.Join(info.Shapes, ", "))
			return nil
		},
	}
}

func diagCommand() *command {
	return &command{
		name:  "diag",
		args:  "<job-id>",
		short: "Chain-convergence diagnostics for a job",
		long: `Reports a job's chain health: streaming split R-hat and effective
sample size over its recent log-posterior window, the latest progress
snapshot, and — once the job is done — result-level acceptance and
swap rates plus per-region convergence. R-hat near 1 with a healthy
accept rate indicates a mixing chain; R-hat well above 1 a still-
trending one; R-hat near 1 with a collapsed accept rate a stuck one.`,
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 1 {
				return usagef("diag takes exactly one job id")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			ctx, cancel := a.unaryCtx()
			defer cancel()
			d, err := c.Diag(ctx, args[0])
			if err != nil {
				return err
			}
			if a.jsonOut {
				return a.printJSON(d)
			}
			fmt.Fprintf(a.out, "job\t%s\nstate\t%s\nstrategy\t%s\nseed\t%d\n", d.ID, d.State, d.Strategy, d.Seed)
			if d.Shape != "" {
				fmt.Fprintf(a.out, "shape\t%s\n", d.Shape)
			}
			if p := d.Progress; p != nil {
				fmt.Fprintf(a.out, "phase\t%s\niter\t%d/%d\nlog_post\t%s\n", p.Phase, p.Iter, p.Total, fmtFloat(p.LogPost))
			}
			fmt.Fprintf(a.out, "samples\t%d\nrhat\t%s\ness\t%s\n", d.Samples, fmtFloat(d.RHat), fmtFloat(d.ESS))
			if d.SpecWidth > 0 {
				fmt.Fprintf(a.out, "spec_width\t%d\nspec_speedup\t%s\n", d.SpecWidth, fmtFloat(d.SpecSpeedup))
			}
			if d.State == api.StateDone {
				fmt.Fprintf(a.out, "accept_rate\t%s\nglobal_reject_rate\t%s\nlocal_reject_rate\t%s\n",
					fmtFloat(d.AcceptRate), fmtFloat(d.GlobalRejectRate), fmtFloat(d.LocalRejectRate))
				if float64(d.SwapRate) != 0 && !math.IsNaN(float64(d.SwapRate)) {
					fmt.Fprintf(a.out, "swap_rate\t%s\n", fmtFloat(d.SwapRate))
				}
				for i, r := range d.Regions {
					fmt.Fprintf(a.out, "region[%d]\tcircles=%d iters=%d converged=%v\n", i, r.Circles, r.Iters, r.Converged)
				}
			}
			if d.Error != "" {
				fmt.Fprintf(a.out, "error\t%s\n", d.Error)
			}
			return nil
		},
	}
}

func spoolCommand() *command {
	ls := &command{
		name:  "ls",
		short: "List the jobs recorded in a spool directory",
		long: `Reads a daemon spool directly from disk — no running daemon needed —
and lists every recorded job with its durable state: whether a
resumable checkpoint and/or a final result are present. Useful for
post-mortem inspection after a crash.`,
		flags: func(a *app, fs *flag.FlagSet) {
			fs.String("dir", "", "spool directory to inspect (required)")
		},
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			dir := fs.Lookup("dir").Value.String()
			if dir == "" {
				return usagef("spool ls requires -dir")
			}
			if len(args) != 0 {
				return usagef("spool ls takes no arguments")
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				return err
			}
			type row struct {
				Record     api.JobRecord `json:"record"`
				Checkpoint bool          `json:"checkpoint"`
				Result     bool          `json:"result"`
			}
			var rows []row
			for _, e := range entries {
				if !e.IsDir() {
					continue
				}
				blob, err := os.ReadFile(filepath.Join(dir, e.Name(), api.SpoolRecordFile))
				if err != nil {
					continue
				}
				var rec api.JobRecord
				if err := jsonUnmarshalStrict(blob, &rec); err != nil {
					fmt.Fprintf(a.errw, "mcmcctl: %s: corrupt record: %v\n", e.Name(), err)
					continue
				}
				exists := func(name string) bool {
					_, err := os.Stat(filepath.Join(dir, e.Name(), name))
					return err == nil
				}
				rows = append(rows, row{
					Record:     rec,
					Checkpoint: exists(api.SpoolCheckpointFile),
					Result:     exists(api.SpoolResultFile),
				})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].Record.ID < rows[j].Record.ID })
			if a.jsonOut {
				return a.printJSON(rows)
			}
			fmt.Fprintf(a.out, "%-14s %-10s %-20s %-5s %-6s %s\n", "ID", "STATE", "SEED", "CKPT", "RESULT", "ERROR")
			for _, r := range rows {
				fmt.Fprintf(a.out, "%-14s %-10s %-20d %-5v %-6v %s\n",
					r.Record.ID, r.Record.State, r.Record.Seed, r.Checkpoint, r.Result, r.Record.Error)
			}
			return nil
		},
	}
	return &command{
		name:  "spool",
		short: "Inspect a daemon spool directory offline",
		sub:   []*command{ls},
	}
}

func metricsCommand() *command {
	return &command{
		name:  "metrics",
		short: "Summarise the daemon's metrics",
		long: `Fetches /metrics and prints a parsed summary: job/queue gauges plus
quantile estimates for the queue-wait, job-duration and per-iteration
latency histograms. With -json, the parsed structures; the raw
Prometheus text is available with -raw.`,
		flags: func(a *app, fs *flag.FlagSet) {
			fs.Bool("raw", false, "print the raw Prometheus exposition unparsed")
		},
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 0 {
				return usagef("metrics takes no arguments")
			}
			c, err := a.client()
			if err != nil {
				return err
			}
			ctx, cancel := a.unaryCtx()
			defer cancel()
			if fs.Lookup("raw").Value.String() == "true" {
				text, err := c.MetricsText(ctx)
				if err != nil {
					return err
				}
				fmt.Fprint(a.out, text)
				return nil
			}
			m, err := c.Metrics(ctx)
			if err != nil {
				return err
			}
			if a.jsonOut {
				return a.printJSON(m)
			}
			keys := make([]string, 0, len(m.Values))
			for k := range m.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(a.out, "%s\t%g\n", k, m.Values[k])
			}
			hkeys := make([]string, 0, len(m.Histograms))
			for k := range m.Histograms {
				hkeys = append(hkeys, k)
			}
			sort.Strings(hkeys)
			for _, k := range hkeys {
				h := m.Histograms[k]
				fmt.Fprintf(a.out, "%s\tcount=%d sum=%g p50=%g p90=%g p99=%g\n",
					k, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
			}
			return nil
		},
	}
}

func cmdrefCommand() *command {
	return &command{
		name:  "cmdref",
		short: "Regenerate the markdown command reference",
		long: `Writes one markdown page per command (mcmcctl.md,
mcmcctl_job_submit.md, …) generated from the live command tree, so the
docs cannot drift from the implementation. The CI gate regenerates
them and fails on any diff.`,
		flags: func(a *app, fs *flag.FlagSet) {
			fs.String("o", "docs/cmdref", "output directory")
		},
		run: func(a *app, fs *flag.FlagSet, args []string) error {
			if len(args) != 0 {
				return usagef("cmdref takes no arguments")
			}
			// A hermetic app: the generated defaults must not depend on
			// the generator's environment.
			return writeCmdref(rootCommand(), newApp(func(string) string { return "" }), fs.Lookup("o").Value.String())
		},
	}
}

// fmtFloat renders an api.Float, showing NaN (the JSON null) as "-".
func fmtFloat(f api.Float) string {
	v := float64(f)
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// jsonUnmarshalStrict decodes rejecting unknown fields, surfacing
// spool records written by an incompatible daemon version.
func jsonUnmarshalStrict(blob []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
