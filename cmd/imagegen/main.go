// Command imagegen renders synthetic micrograph scenes (bright disc or
// ellipse artifacts on a noisy background) and writes them as PGM, with
// the ground truth as CSV on stdout. It substitutes for the paper's
// stained-nuclei and latex-bead micrographs (DESIGN.md §7).
//
// Usage:
//
//	imagegen -w 512 -h 512 -count 48 -radius 10 -clusters 3 \
//	         -noise 0.05 -seed 1 -out beads.pgm [-png beads.png]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/geom"
	"repro/internal/imaging"
	"repro/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imagegen: ")
	var (
		width    = flag.Int("w", 512, "image width in pixels")
		height   = flag.Int("h", 512, "image height in pixels")
		count    = flag.Int("count", 50, "number of artifacts")
		radius   = flag.Float64("radius", 10, "mean artifact radius")
		radStd   = flag.Float64("radius-std", 1, "artifact radius std-dev")
		clusters = flag.Int("clusters", 0, "cluster count (0 = uniform spread)")
		noise    = flag.Float64("noise", 0.05, "Gaussian pixel noise std-dev")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		shape    = flag.String("shape", "disc", "artifact shape family: disc or ellipse")
		ratio    = flag.Float64("axis-ratio", 0, "ellipse scenes: mean minor/major axis ratio (0 = default 0.7)")
		out      = flag.String("out", "scene.pgm", "output PGM path")
		pngOut   = flag.String("png", "", "optional PNG path with truth overlay")
	)
	flag.Parse()

	var kind geom.ShapeKind
	switch *shape {
	case geom.KindDisc.String():
		kind = geom.KindDisc
	case geom.KindEllipse.String():
		kind = geom.KindEllipse
	default:
		log.Fatalf("unknown -shape %q (want disc or ellipse)", *shape)
	}

	scene := imaging.Synthesize(imaging.SceneSpec{
		W: *width, H: *height, Count: *count,
		Shape: kind, AxisRatio: *ratio,
		MeanRadius: *radius, RadiusStdDev: *radStd,
		Clusters: *clusters, Noise: *noise,
		MinSeparation: 1.02,
	}, rng.New(*seed))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := scene.Image.WritePGM(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if *pngOut != "" {
		pf, err := os.Create(*pngOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := scene.Image.WriteOverlayPNG(pf, scene.Truth); err != nil {
			log.Fatal(err)
		}
		if err := pf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("x,y,rx,ry,theta")
	for _, c := range scene.Truth {
		fmt.Printf("%.3f,%.3f,%.3f,%.3f,%.3f\n", c.X, c.Y, c.Rx, c.Ry, c.Theta)
	}
	fmt.Fprintf(os.Stderr, "wrote %s with %d artifacts\n", *out, len(scene.Truth))
}
