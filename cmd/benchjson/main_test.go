package main

import (
	"strings"
	"testing"
)

func TestParseBenchLineSimMetrics(t *testing.T) {
	line := "BenchmarkSamplerScaling/table1/width=adaptive-2 \t 1\t75424534 ns/op\t 2.000 sim-procs\t 1.798 sim-speedup"
	b, ok := parseBenchLine(line, "repro")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkSamplerScaling/table1/width=adaptive" || b.Procs != 2 {
		t.Fatalf("name/procs: %q %d", b.Name, b.Procs)
	}
	if b.Metrics["sim-procs"] != 2 || b.Metrics["sim-speedup"] != 1.798 {
		t.Fatalf("metrics: %v", b.Metrics)
	}
}

func TestSimulatedScalingDedup(t *testing.T) {
	mk := func(procs int, simProcs, speedup float64) Benchmark {
		return Benchmark{
			Name: "BenchmarkSamplerScaling/table1/width=adaptive", Pkg: "repro",
			Procs: procs, NsPerOp: 1,
			Metrics: map[string]float64{"sim-procs": simProcs, "sim-speedup": speedup},
		}
	}
	rows := simulatedScaling([]Benchmark{
		mk(4, 4, 2.8), // same sim-procs measured under a noisier section...
		mk(1, 4, 3.0), // ...loses to the GOMAXPROCS=1 section
		mk(1, 2, 1.7),
		{Name: "BenchmarkOther", Pkg: "repro", Procs: 1, NsPerOp: 1}, // no metrics: no row
	})
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Procs != 4 || rows[0].Speedup != 3.0 || rows[0].Source != "simulated" {
		t.Fatalf("dedup kept the wrong section: %+v", rows[0])
	}
	if rows[1].Procs != 2 || rows[1].Speedup != 1.7 {
		t.Fatalf("row 1: %+v", rows[1])
	}
	if eff := rows[0].Efficiency; eff != 3.0/4 {
		t.Fatalf("efficiency: %v", eff)
	}
}

func TestGateFlagParsing(t *testing.T) {
	var g gateFlags
	for _, spec := range []string{
		"SamplerScaling.*adaptive@2:1.4",
		"SamplerScaling.*adaptive@4:1.6:simulated",
		"ThroughputScaling@2:1.1:measured",
	} {
		if err := g.Set(spec); err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
	}
	if len(g) != 3 || g[0].source != "simulated" || g[2].source != "measured" || g[1].procs != 4 {
		t.Fatalf("parsed: %+v", g)
	}
	for _, bad := range []string{"", "@2:1.4", "X@0:1.4", "X@2:-1", "X@2:1.4:guessed", "X@2", "[@2:1.4"} {
		if err := g.Set(bad); err == nil {
			t.Fatalf("%q parsed but should not", bad)
		}
	}
}

func TestApplyGates(t *testing.T) {
	report := Report{
		NumCPU: 2,
		Scaling: []ScalingPoint{
			{Bench: "BenchmarkSamplerScaling/table1/width=adaptive", Pkg: "repro", Procs: 2, Speedup: 1.8, Source: "simulated"},
			{Bench: "BenchmarkSamplerScaling/table1/width=adaptive", Pkg: "repro", Procs: 4, Speedup: 1.5, Source: "simulated"},
			{Bench: "BenchmarkThroughputScaling", Pkg: "repro", Procs: 2, Speedup: 1.9, Source: "measured"},
		},
	}
	var g gateFlags
	mustSet := func(spec string) {
		t.Helper()
		if err := g.Set(spec); err != nil {
			t.Fatal(err)
		}
	}
	mustSet("SamplerScaling.*adaptive@2:1.4")   // passes (1.8 >= 1.4)
	mustSet("SamplerScaling.*adaptive@4:1.6")   // fails (1.5 < 1.6)
	mustSet("ThroughputScaling@4:1.5:measured") // skipped: host has 2 CPUs
	mustSet("ThroughputScaling@2:1.1:measured") // passes
	mustSet("NoSuchBench@2:1.0")                // fails: no matching row
	failures := applyGates(report, g)
	if len(failures) != 2 {
		t.Fatalf("failures: %v", failures)
	}
	if !strings.Contains(failures[0], "below the 1.60x floor") {
		t.Fatalf("failure 0: %s", failures[0])
	}
	if !strings.Contains(failures[1], "matched no scaling row") {
		t.Fatalf("failure 1: %s", failures[1])
	}
}
