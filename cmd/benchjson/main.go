// Command benchjson runs the repository's Go benchmarks and writes a
// JSON summary — ns/op, B/op, allocs/op and any custom metrics per
// benchmark — so every performance PR leaves a machine-readable point on
// the perf trajectory (BENCH_<date>.json at the repo root; the committed
// BENCH_baseline.json is the reference point for this optimisation
// round).
//
// Usage:
//
//	go run ./cmd/benchjson                      # all benchmarks, 1 iteration each
//	go run ./cmd/benchjson -bench 'LikDelta' -benchtime 0.5s -o BENCH_kernels.json
//	go run ./cmd/benchjson -bench 'LikDelta' -benchtime 0.5s \
//	    -compare BENCH_baseline.json -max-ns-regress 0.15
//
// It shells out to `go test -bench` and parses the standard benchmark
// output lines, so it works with every benchmark in the module.
//
// With -compare, the fresh results are checked against a baseline
// report: the run fails (exit 1) when any benchmark present in both
// regresses by more than -max-ns-regress in ns/op, or regresses at all
// in allocs/op. CI runs this over the kernel microbenchmarks so perf
// regressions fail the pipeline instead of landing silently. The gate
// is skipped (with a loud warning) when the baseline was recorded on a
// host with a different CPU count — cross-core-count timing comparisons
// measure the machines, not the code.
//
// With -zero-alloc REGEXP, every matching benchmark must report exactly
// 0 allocs/op; the hot-path kernels are allocation-free by design and
// this keeps them that way.
//
// With -cpu 1,2,4 the benchmarks run once per GOMAXPROCS value and the
// report additionally carries a throughput scaling curve (ops/sec,
// speedup and parallel efficiency per core count) for every benchmark
// measured at more than one width:
//
//	go run ./cmd/benchjson -bench ThroughputScaling -pkg . -cpu 1,2,4 -benchtime 0.5s
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg"`
	// Procs is the GOMAXPROCS the result ran under (the benchmark
	// line's -N suffix; 1 when the suffix is absent). Distinct Procs of
	// the same benchmark — produced by -cpu — are separate results.
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// ScalingPoint is one row of a throughput-per-core scaling curve,
// derived from a benchmark measured at several -cpu values
// ("measured") or from a benchmark's sim-speedup/sim-procs metrics
// ("simulated" — the DESIGN.md §7 simulated parallel machine, valid on
// any host).
type ScalingPoint struct {
	Bench     string  `json:"bench"`
	Pkg       string  `json:"pkg"`
	Procs     int     `json:"procs"`
	NsPerOp   float64 `json:"ns_per_op,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	// Speedup is ops/sec relative to the same benchmark at procs=1
	// (measured rows; 0 when no procs=1 measurement exists) or the
	// simulated wall-clock ratio (simulated rows); Efficiency is
	// Speedup/Procs (1.0 = perfect linear scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// Source is "measured" or "simulated".
	Source string `json:"source,omitempty"`
}

// RunSection pins the parallelism of one -cpu section: the GOMAXPROCS
// the benchmarks ran under, and whether that oversubscribed the host
// (procs > NumCPU), which makes the section's measured timings describe
// time-slicing rather than scaling.
type RunSection struct {
	GoMaxProcs int  `json:"gomaxprocs"`
	Saturated  bool `json:"hardware_saturated,omitempty"`
}

// Report is the file schema.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	// GoMaxProcs and NumCPU pin the parallelism environment the numbers
	// were recorded under; -compare refuses to gate timings across
	// reports with different NumCPU (see compareReports). With -cpu the
	// driver's own GOMAXPROCS is meaningless for the results, so
	// GoMaxProcs is omitted and Runs records each section's proc count
	// instead.
	GoMaxProcs int            `json:"gomaxprocs,omitempty"`
	NumCPU     int            `json:"num_cpu"`
	CPUList    string         `json:"cpu_list,omitempty"`
	Runs       []RunSection   `json:"runs,omitempty"`
	Bench      string         `json:"bench_regexp"`
	BenchTime  string         `json:"benchtime"`
	Packages   string         `json:"packages"`
	Notes      string         `json:"notes,omitempty"`
	Results    []Benchmark    `json:"results"`
	Scaling    []ScalingPoint `json:"scaling,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "value for -benchtime")
		pkgs      = flag.String("pkg", "./...", "package pattern to benchmark")
		count     = flag.Int("count", 1, "value for -count")
		out       = flag.String("o", "", "output path (default BENCH_<date>.json)")
		notes     = flag.String("notes", "", "free-form note recorded in the report")
		compare   = flag.String("compare", "", "baseline report to compare against; regressions fail the run")
		maxNs     = flag.Float64("max-ns-regress", 0.15, "with -compare: maximum tolerated fractional ns/op regression")
		cpu       = flag.String("cpu", "", "comma-separated GOMAXPROCS list passed to go test -cpu; multiple values produce a scaling curve")
		zeroAlloc = flag.String("zero-alloc", "", "regexp of benchmarks that must report 0 allocs/op; any allocation fails the run")
		gates     gateFlags
	)
	flag.Var(&gates, "scaling-gate",
		"repeatable scaling floor 'BENCHREGEX@PROCS:MINSPEEDUP[:SOURCE]' (source simulated|measured, default simulated); a matching scaling row below the floor, or no matching row at all, fails the run — measured gates skip when the host has fewer cores than PROCS")
	flag.Parse()

	// -p 1 serializes the per-package test binaries: concurrent
	// benchmark processes contend for CPU and skew timings, which would
	// make -compare verdicts depend on which packages happened to
	// co-run.
	args := []string{
		"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem", "-p", "1",
		"-count", strconv.Itoa(*count),
	}
	if *cpu != "" {
		args = append(args, "-cpu", *cpu)
	}
	args = append(args, *pkgs)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		log.Fatalf("go %s: %v", strings.Join(args, " "), err)
	}

	report := Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUList:    *cpu,
		Bench:      *bench,
		BenchTime:  *benchtime,
		Packages:   *pkgs,
		Notes:      *notes,
	}
	if *cpu != "" {
		// The per-section proc counts are what the results ran under;
		// the driver process's own GOMAXPROCS would only mislead.
		report.GoMaxProcs = 0
		for _, part := range strings.Split(*cpu, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				log.Fatalf("-cpu: bad GOMAXPROCS value %q", part)
			}
			report.Runs = append(report.Runs, RunSection{
				GoMaxProcs: n,
				Saturated:  n > report.NumCPU,
			})
		}
	}

	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: ") && report.CPU == "":
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				report.Results = append(report.Results, b)
			}
		}
	}
	report.Results = aggregateMin(report.Results)
	report.Scaling = append(scalingCurve(report.Results), simulatedScaling(report.Results)...)

	path := *out
	if path == "" {
		path = "BENCH_" + report.Date + ".json"
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d results to %s\n", len(report.Results), path)

	if len(gates) > 0 {
		failures := applyGates(report, gates)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "SCALING: %s\n", f)
		}
		if len(failures) > 0 {
			log.Fatalf("%d scaling gate failure(s)", len(failures))
		}
		fmt.Fprintf(os.Stderr, "%d scaling gate(s) passed\n", len(gates))
	}

	if *zeroAlloc != "" {
		re, err := regexp.Compile(*zeroAlloc)
		if err != nil {
			log.Fatalf("-zero-alloc: %v", err)
		}
		var bad []string
		matched := 0
		for _, b := range report.Results {
			if !re.MatchString(b.Name) {
				continue
			}
			matched++
			if b.AllocsPerOp != nil && *b.AllocsPerOp > 0 {
				bad = append(bad, fmt.Sprintf("%s %s: %.0f allocs/op, must be 0",
					b.Pkg, b.Name, *b.AllocsPerOp))
			}
		}
		if matched == 0 {
			log.Fatalf("-zero-alloc %q matched no benchmark result", *zeroAlloc)
		}
		for _, m := range bad {
			fmt.Fprintf(os.Stderr, "ALLOC: %s\n", m)
		}
		if len(bad) > 0 {
			log.Fatalf("%d benchmark(s) allocate but are required to be allocation-free", len(bad))
		}
		fmt.Fprintf(os.Stderr, "%d benchmark(s) verified allocation-free\n", matched)
	}

	if *compare != "" {
		baseline, err := readReport(*compare)
		if err != nil {
			log.Fatal(err)
		}
		// Timings are only comparable on matching hardware parallelism:
		// gating a 4-core run against a 1-core baseline (or vice versa)
		// measures the machines, not the code. Refuse the gate — loudly,
		// but without failing the run, so one committed baseline doesn't
		// break every differently-sized environment.
		if baseline.NumCPU != 0 && baseline.NumCPU != report.NumCPU {
			fmt.Fprintf(os.Stderr,
				"SKIPPED comparison vs %s: baseline recorded on %d CPUs, this host has %d — cross-core-count gating is meaningless\n",
				*compare, baseline.NumCPU, report.NumCPU)
			return
		}
		regressions := compareReports(baseline, report, *maxNs)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			log.Fatalf("%d benchmark regression(s) vs %s", len(regressions), *compare)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", *compare)
	}
}

// scalingCurve derives throughput-per-core rows for every benchmark
// measured at more than one GOMAXPROCS (the -cpu list). Speedup and
// efficiency are normalised against the benchmark's own procs=1 row
// when present.
func scalingCurve(results []Benchmark) []ScalingPoint {
	type key struct{ pkg, name string }
	distinct := make(map[key]map[int]bool)
	base := make(map[key]float64) // ops/sec at procs=1
	for _, b := range results {
		k := key{b.Pkg, b.Name}
		if distinct[k] == nil {
			distinct[k] = make(map[int]bool)
		}
		distinct[k][b.Procs] = true
		if b.Procs == 1 && b.NsPerOp > 0 {
			base[k] = 1e9 / b.NsPerOp
		}
	}
	var out []ScalingPoint
	for _, b := range results {
		k := key{b.Pkg, b.Name}
		if len(distinct[k]) < 2 || b.NsPerOp <= 0 {
			continue
		}
		p := ScalingPoint{
			Bench: b.Name, Pkg: b.Pkg, Procs: b.Procs,
			NsPerOp: b.NsPerOp, OpsPerSec: 1e9 / b.NsPerOp,
			Source: "measured",
		}
		if s1 := base[k]; s1 > 0 && b.Procs > 0 {
			p.Speedup = p.OpsPerSec / s1
			p.Efficiency = p.Speedup / float64(b.Procs)
		}
		out = append(out, p)
	}
	return out
}

// simulatedScaling derives scaling rows from benchmarks reporting the
// sim-speedup/sim-procs metric pair (the simulated parallel machine:
// per-task wall clock scheduled onto sim-procs workers by LPT). The
// simulated machine is deterministic in shape, so when -cpu runs the
// same benchmark under several GOMAXPROCS sections, duplicate
// (pkg, bench, sim-procs) rows are collapsed to the section with the
// lowest GOMAXPROCS — the least scheduler-perturbed timing source.
func simulatedScaling(results []Benchmark) []ScalingPoint {
	type key struct {
		pkg, name string
		simProcs  int
	}
	best := make(map[key]Benchmark)
	var order []key
	for _, b := range results {
		sp, ok := b.Metrics["sim-speedup"]
		if !ok {
			continue
		}
		procs, ok := b.Metrics["sim-procs"]
		if !ok || procs < 1 || sp <= 0 {
			continue
		}
		k := key{b.Pkg, b.Name, int(procs)}
		prev, seen := best[k]
		if !seen {
			order = append(order, k)
		}
		if !seen || b.Procs < prev.Procs {
			best[k] = b
		}
	}
	var out []ScalingPoint
	for _, k := range order {
		b := best[k]
		sp := b.Metrics["sim-speedup"]
		out = append(out, ScalingPoint{
			Bench: b.Name, Pkg: b.Pkg, Procs: k.simProcs,
			Speedup:    sp,
			Efficiency: sp / float64(k.simProcs),
			Source:     "simulated",
		})
	}
	return out
}

// gateFlags collects repeated -scaling-gate specs.
type gateFlags []scalingGate

// scalingGate is one parsed -scaling-gate spec: the minimum Speedup a
// scaling row matching (bench regexp, procs, source) must reach.
type scalingGate struct {
	spec   string
	bench  *regexp.Regexp
	procs  int
	min    float64
	source string
}

func (g *gateFlags) String() string {
	var specs []string
	for _, gate := range *g {
		specs = append(specs, gate.spec)
	}
	return strings.Join(specs, " ")
}

func (g *gateFlags) Set(spec string) error {
	at := strings.LastIndex(spec, "@")
	if at < 1 {
		return fmt.Errorf("want 'BENCHREGEX@PROCS:MINSPEEDUP[:SOURCE]', got %q", spec)
	}
	re, err := regexp.Compile(spec[:at])
	if err != nil {
		return err
	}
	parts := strings.Split(spec[at+1:], ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want 'BENCHREGEX@PROCS:MINSPEEDUP[:SOURCE]', got %q", spec)
	}
	procs, err := strconv.Atoi(parts[0])
	if err != nil || procs < 1 {
		return fmt.Errorf("bad procs in %q", spec)
	}
	min, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || min <= 0 {
		return fmt.Errorf("bad min speedup in %q", spec)
	}
	source := "simulated"
	if len(parts) == 3 {
		source = parts[2]
		if source != "simulated" && source != "measured" {
			return fmt.Errorf("source must be simulated or measured in %q", spec)
		}
	}
	*g = append(*g, scalingGate{spec: spec, bench: re, procs: procs, min: min, source: source})
	return nil
}

// applyGates checks every -scaling-gate against the report's scaling
// rows, returning failure messages. Measured gates above the host's
// core count are skipped with a loud warning — on such hosts the
// "measured" number describes time-slicing, not scaling (the simulated
// rows exist precisely so those hosts still gate something real).
func applyGates(report Report, gates []scalingGate) []string {
	var out []string
	for _, g := range gates {
		if g.source == "measured" && report.NumCPU < g.procs {
			fmt.Fprintf(os.Stderr,
				"SKIPPED scaling gate %q: host has %d CPU(s), gate needs %d — measured speedup on an oversubscribed host is meaningless\n",
				g.spec, report.NumCPU, g.procs)
			continue
		}
		matched := false
		for _, p := range report.Scaling {
			src := p.Source
			if src == "" {
				src = "measured"
			}
			if src != g.source || p.Procs != g.procs || !g.bench.MatchString(p.Bench) {
				continue
			}
			matched = true
			if p.Speedup < g.min {
				out = append(out, fmt.Sprintf("%s %s @%d (%s): speedup %.2fx below the %.2fx floor",
					p.Pkg, p.Bench, p.Procs, src, p.Speedup, g.min))
			}
		}
		if !matched {
			out = append(out, fmt.Sprintf("gate %q matched no scaling row (renamed benchmark, missing -cpu value, or metrics not reported?)", g.spec))
		}
	}
	return out
}

// readReport loads a previously written report.
func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// aggregateMin collapses duplicate (pkg, name) results — produced by
// -count > 1 — to the per-benchmark minimum ns/op (the benchstat-style
// low-noise estimator for CPU-bound micro-benchmarks: scheduling and
// frequency noise only ever adds time). Allocation and byte counts are
// deterministic and identical across repetitions; the minimum is kept
// for robustness. Order of first appearance is preserved.
func aggregateMin(results []Benchmark) []Benchmark {
	type key struct {
		pkg, name string
		procs     int
	}
	idx := make(map[key]int, len(results))
	out := results[:0]
	for _, b := range results {
		k := key{b.Pkg, b.Name, b.Procs}
		if i, ok := idx[k]; ok {
			if b.NsPerOp < out[i].NsPerOp {
				out[i].NsPerOp = b.NsPerOp
				out[i].Iterations = b.Iterations
			}
			if b.BytesPerOp != nil && (out[i].BytesPerOp == nil || *b.BytesPerOp < *out[i].BytesPerOp) {
				out[i].BytesPerOp = b.BytesPerOp
			}
			if b.AllocsPerOp != nil && (out[i].AllocsPerOp == nil || *b.AllocsPerOp < *out[i].AllocsPerOp) {
				out[i].AllocsPerOp = b.AllocsPerOp
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, b)
	}
	return out
}

// compareReports returns one message per regression: a benchmark
// present in both reports whose ns/op grew by more than maxNsFrac, or
// whose allocs/op grew at all (allocation counts are deterministic, so
// any growth is a real regression; timings are noisy, hence the
// threshold). A baseline benchmark that matches the current run's
// -bench regexp but produced no result is also a failure — otherwise a
// gated benchmark could be renamed or deleted and the gate would
// silently narrow.
func compareReports(baseline, current Report, maxNsFrac float64) []string {
	type key struct {
		pkg, name string
		procs     int
	}
	// Pre-Procs baselines recorded everything with Procs 0; read 0 as 1
	// so they stay gateable.
	norm := func(p int) int {
		if p == 0 {
			return 1
		}
		return p
	}
	base := make(map[key]Benchmark, len(baseline.Results))
	for _, b := range baseline.Results {
		base[key{b.Pkg, b.Name, norm(b.Procs)}] = b
	}
	seen := make(map[key]bool, len(current.Results))
	var out []string
	for _, c := range current.Results {
		seen[key{c.Pkg, c.Name, norm(c.Procs)}] = true
		b, ok := base[key{c.Pkg, c.Name, norm(c.Procs)}]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+maxNsFrac) {
			out = append(out, fmt.Sprintf("%s %s: %.1f ns/op vs baseline %.1f (+%.0f%%, limit +%.0f%%)",
				c.Pkg, c.Name, c.NsPerOp, b.NsPerOp,
				100*(c.NsPerOp/b.NsPerOp-1), 100*maxNsFrac))
		}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil && *c.AllocsPerOp > *b.AllocsPerOp {
			out = append(out, fmt.Sprintf("%s %s: %.0f allocs/op vs baseline %.0f",
				c.Pkg, c.Name, *c.AllocsPerOp, *b.AllocsPerOp))
		}
	}
	scope, err := regexp.Compile(current.Bench)
	if err != nil {
		scope = nil // unparseable scope: skip the missing-benchmark check
	}
	for _, b := range baseline.Results {
		if seen[key{b.Pkg, b.Name, norm(b.Procs)}] {
			continue
		}
		if scope != nil && scope.MatchString(b.Name) {
			out = append(out, fmt.Sprintf("%s %s: in baseline and matched by -bench %q, but produced no result (renamed or deleted?)",
				b.Pkg, b.Name, current.Bench))
		}
	}
	return out
}

// parseBenchLine parses one standard benchmark output line, e.g.
//
//	BenchmarkLikDeltaAdd/scanline-4  3000  349.5 ns/op  0 B/op  0 allocs/op
//	BenchmarkGridSpacingAblation/div=1-4  1  1.2e+08 ns/op  0.02 invalid-frac
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		// The trailing -N suffix is the GOMAXPROCS of the run (absent
		// when it was 1); record it and strip it from the name.
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			procs = n
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Pkg: pkg, Procs: procs, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			vv := v
			b.BytesPerOp = &vv
		case "allocs/op":
			vv := v
			b.AllocsPerOp = &vv
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}
