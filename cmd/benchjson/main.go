// Command benchjson runs the repository's Go benchmarks and writes a
// JSON summary — ns/op, B/op, allocs/op and any custom metrics per
// benchmark — so every performance PR leaves a machine-readable point on
// the perf trajectory (BENCH_<date>.json at the repo root; the committed
// BENCH_baseline.json is the reference point for this optimisation
// round).
//
// Usage:
//
//	go run ./cmd/benchjson                      # all benchmarks, 1 iteration each
//	go run ./cmd/benchjson -bench 'LikDelta' -benchtime 0.5s -o BENCH_kernels.json
//
// It shells out to `go test -bench` and parses the standard benchmark
// output lines, so it works with every benchmark in the module.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file schema.
type Report struct {
	Date      string      `json:"date"`
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	CPU       string      `json:"cpu,omitempty"`
	Bench     string      `json:"bench_regexp"`
	BenchTime string      `json:"benchtime"`
	Packages  string      `json:"packages"`
	Notes     string      `json:"notes,omitempty"`
	Results   []Benchmark `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "value for -benchtime")
		pkgs      = flag.String("pkg", "./...", "package pattern to benchmark")
		count     = flag.Int("count", 1, "value for -count")
		out       = flag.String("o", "", "output path (default BENCH_<date>.json)")
		notes     = flag.String("notes", "", "free-form note recorded in the report")
	)
	flag.Parse()

	args := []string{
		"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem",
		"-count", strconv.Itoa(*count), *pkgs,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		log.Fatalf("go %s: %v", strings.Join(args, " "), err)
	}

	report := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *bench,
		BenchTime: *benchtime,
		Packages:  *pkgs,
		Notes:     *notes,
	}

	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: ") && report.CPU == "":
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				report.Results = append(report.Results, b)
			}
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + report.Date + ".json"
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d results to %s\n", len(report.Results), path)
}

// parseBenchLine parses one standard benchmark output line, e.g.
//
//	BenchmarkLikDeltaAdd/scanline-4  3000  349.5 ns/op  0 B/op  0 allocs/op
//	BenchmarkGridSpacingAblation/div=1-4  1  1.2e+08 ns/op  0.02 invalid-frac
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the trailing -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Pkg: pkg, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			vv := v
			b.BytesPerOp = &vv
		case "allocs/op":
			vv := v
			b.AllocsPerOp = &vv
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}
