// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons). Every figure's MCMC work is
// orchestrated through the pkg/parmcmc Runner, so an interrupt (ctrl-C)
// cancels the in-flight batch at its next checkpoint instead of killing
// chains mid-measurement.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -run fig2,arch  # selected experiments
//	experiments -quick          # shrunken workloads (seconds, not minutes)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/profiling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run        = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		quick      = flag.Bool("quick", false, "use shrunken workloads")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 2010, "RNG seed")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	// log.Fatal's os.Exit would skip the deferred flush and lose any
	// profile of the work already done; fail through fatalf instead.
	fatalf := func(format string, args ...any) {
		log.Printf(format, args...)
		stopProf()
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.DefaultOptions()
	opts.Quick = *quick
	opts.Seed = *seed
	if *workers > 0 {
		opts.Workers = *workers
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner := experiments.Lookup(id)
		if runner == nil {
			fatalf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		res, err := runner(ctx, opts)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		if err := res.Write(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
