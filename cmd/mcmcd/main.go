// Command mcmcd is the long-running detection daemon: it serves the
// pkg/service HTTP API (submit PNG/PGM uploads or synthetic scenes as
// jobs, watch their progress over SSE, collect bit-identical results)
// over a bounded job queue and worker pool.
//
// Usage:
//
//	mcmcd [-role standalone] [-addr :8080] [-spool DIR] [-job-slots 2]
//	      [-queue 16] [-checkpoint-every 25000] [-base-seed 1] [-pprof]
//	mcmcd -role coordinator -spool DIR [-addr :8080] [-lease-ttl 15s]
//	mcmcd -role worker -coordinator URL -spool DIR [-job-slots 2]
//	      [-worker-name NAME]
//
// The default role, standalone, is the single-process daemon: queue,
// spool and job execution all in one binary, exactly as before roles
// existed. -role coordinator serves the same public API but runs no
// jobs itself — stateless -role worker processes lease jobs from it
// over /internal/v1 and execute them against the SHARED spool
// directory (both sides need the same -spool path on a shared
// filesystem). See docs/architecture.md for the protocol and
// docs/operations.md for deployment recipes.
//
// Listening roles print "mcmcd: listening on http://HOST:PORT" once
// ready (with -addr :0 the kernel picks the port); workers print
// "mcmcd: worker ready id=W coordinator=URL" after registering. Both
// lines are machine-readable readiness signals. With -spool, every job
// is durable: inputs and options are recorded at submission,
// checkpoints every -checkpoint-every iterations, and a restart
// against the same spool directory resumes interrupted jobs to
// bit-identical results — in distributed mode the re-run may happen on
// a different worker, with the same result.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener drains, new
// submissions get 503, running jobs stop at their next chunk boundary
// with their latest checkpoint intact. A killed worker's jobs are
// re-leased to surviving workers once its lease expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/profiling"
	"repro/pkg/api"
	"repro/pkg/service"
	"repro/pkg/service/coordinator"
	"repro/pkg/service/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcmcd: ")
	var (
		role       = flag.String("role", "standalone", "standalone (queue+execution in one process), coordinator (queue only), or worker (execution only)")
		addr       = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		spool      = flag.String("spool", "", "spool directory for durable jobs (empty = no durability; required and shared in distributed roles)")
		jobSlots   = flag.Int("job-slots", 2, "jobs running concurrently")
		queue      = flag.Int("queue", 16, "pending-job queue bound (full queue = HTTP 429)")
		ckptEvery  = flag.Int("checkpoint-every", 25000, "approximate iterations between spooled checkpoints")
		baseSeed   = flag.Uint64("base-seed", 1, "base for per-job derived seeds")
		pprofOn    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		coordURL   = flag.String("coordinator", "", "coordinator base URL (worker role)")
		leaseTTL   = flag.Duration("lease-ttl", 15*time.Second, "lease survival after a worker's last heartbeat (coordinator role)")
		workerName = flag.String("worker-name", "", "worker display name in `mcmcctl node ls` (default hostname)")
		profiles   = cliutil.AddProfileFlags(nil)
	)
	flag.Parse()

	stopProf, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	fatalf := func(format string, args ...any) {
		log.Printf(format, args...)
		stopProf()
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *role {
	case "standalone", "coordinator":
		svcCfg := service.Config{
			Workers:         *jobSlots,
			QueueSize:       *queue,
			SpoolDir:        *spool,
			BaseSeed:        *baseSeed,
			CheckpointEvery: *ckptEvery,
		}
		var register func(*http.ServeMux)
		var stopper func(context.Context) error
		if *role == "coordinator" {
			co, err := coordinator.New(coordinator.Config{Service: svcCfg, LeaseTTL: *leaseTTL})
			if err != nil {
				fatalf("%v", err)
			}
			register, stopper = co.Register, co.Stop
		} else {
			m, err := service.NewManager(svcCfg)
			if err != nil {
				fatalf("%v", err)
			}
			register, stopper = m.Register, m.Stop
		}

		mux := http.NewServeMux()
		register(mux)
		if *pprofOn {
			// The API owns "/" (typed 404s); pprof's more specific
			// /debug/pprof/ prefix still wins on the mux.
			profiling.Attach(mux)
		}

		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fatalf("%v", err)
		}
		// No write/idle timeouts: SSE streams are legitimately long-lived.
		// The header timeout alone closes the slowloris window.
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}

		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		// The listen line is the machine-readable readiness signal: the
		// black-box harness (and scripts) parse the port out of it.
		fmt.Printf("mcmcd: listening on http://%s\n", ln.Addr())
		if *spool != "" {
			log.Printf("spooling jobs under %s", *spool)
		}
		if *role == "coordinator" {
			log.Printf("coordinating (lease ttl %v); waiting for workers", *leaseTTL)
		}

		select {
		case err := <-errc:
			fatalf("%v", err)
		case <-ctx.Done():
		}

		log.Printf("shutting down (budget %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop the manager first: it interrupts running jobs at their next
		// chunk boundary (leaving their spool resumable) and unblocks any
		// open SSE streams — which Shutdown would otherwise wait on for the
		// whole drain budget.
		if err := stopper(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("manager shutdown: %v", err)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		log.Printf("bye")

	case "worker":
		if *coordURL == "" {
			fatalf("-role worker requires -coordinator URL")
		}
		if *spool == "" {
			fatalf("-role worker requires -spool (the coordinator's shared spool directory)")
		}
		w, err := worker.New(worker.Config{
			Coordinator: *coordURL,
			SpoolDir:    *spool,
			Slots:       *jobSlots,
			Name:        *workerName,
			OnRegister: func(id api.WorkerIdentity) {
				// Machine-readable readiness signal, the worker-role
				// analogue of the listen line.
				fmt.Printf("mcmcd: worker ready id=%s coordinator=%s\n", id.ID, *coordURL)
			},
		})
		if err != nil {
			fatalf("%v", err)
		}
		if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			fatalf("%v", err)
		}
		log.Printf("bye")

	default:
		fatalf("unknown -role %q (want standalone, coordinator, or worker)", *role)
	}
}
