// Command mcmcd is the long-running detection daemon: it serves the
// pkg/service HTTP API (submit PNG/PGM uploads or synthetic scenes as
// jobs, watch their progress over SSE, collect bit-identical results)
// over a bounded job queue and worker pool.
//
// Usage:
//
//	mcmcd [-addr :8080] [-spool DIR] [-job-slots 2] [-queue 16]
//	      [-checkpoint-every 25000] [-base-seed 1] [-pprof]
//
// The daemon prints "mcmcd: listening on http://HOST:PORT" once ready
// (with -addr :0 the kernel picks the port). With -spool, every job is
// durable: inputs and options are recorded at submission, checkpoints
// every -checkpoint-every iterations, and a restart against the same
// spool directory resumes interrupted jobs to bit-identical results.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener drains, new
// submissions get 503, running jobs stop at their next chunk boundary
// with their latest checkpoint intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/profiling"
	"repro/pkg/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcmcd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		spool     = flag.String("spool", "", "spool directory for durable jobs (empty = no durability)")
		jobSlots  = flag.Int("job-slots", 2, "jobs running concurrently")
		queue     = flag.Int("queue", 16, "pending-job queue bound (full queue = HTTP 429)")
		ckptEvery = flag.Int("checkpoint-every", 25000, "approximate iterations between spooled checkpoints")
		baseSeed  = flag.Uint64("base-seed", 1, "base for per-job derived seeds")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		profiles  = cliutil.AddProfileFlags(nil)
	)
	flag.Parse()

	stopProf, err := profiles.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	fatalf := func(format string, args ...any) {
		log.Printf(format, args...)
		stopProf()
		os.Exit(1)
	}

	mgr, err := service.NewManager(service.Config{
		Workers:         *jobSlots,
		QueueSize:       *queue,
		SpoolDir:        *spool,
		BaseSeed:        *baseSeed,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		fatalf("%v", err)
	}

	mux := http.NewServeMux()
	mgr.Register(mux)
	if *pprofOn {
		// The API owns "/" (typed 404s); pprof's more specific
		// /debug/pprof/ prefix still wins on the mux.
		profiling.Attach(mux)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	// No write/idle timeouts: SSE streams are legitimately long-lived.
	// The header timeout alone closes the slowloris window.
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// The listen line is the machine-readable readiness signal: the
	// black-box harness (and scripts) parse the port out of it.
	fmt.Printf("mcmcd: listening on http://%s\n", ln.Addr())
	if *spool != "" {
		log.Printf("spooling jobs under %s", *spool)
	}

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down (budget %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the manager first: it interrupts running jobs at their next
	// chunk boundary (leaving their spool resumable) and unblocks any
	// open SSE streams — which Shutdown would otherwise wait on for the
	// whole drain budget.
	if err := mgr.Stop(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("manager shutdown: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("bye")
}
