package client

import (
	"math"
	"strings"
	"testing"
)

const sampleExposition = `# HELP mcmcd_workers Worker goroutines.
# TYPE mcmcd_workers gauge
mcmcd_workers 2
mcmcd_jobs{state="done"} 3
# HELP mcmcd_queue_wait_seconds Time jobs spend queued.
# TYPE mcmcd_queue_wait_seconds histogram
mcmcd_queue_wait_seconds_bucket{le="0.1"} 1
mcmcd_queue_wait_seconds_bucket{le="1"} 3
mcmcd_queue_wait_seconds_bucket{le="+Inf"} 4
mcmcd_queue_wait_seconds_sum 3.5
mcmcd_queue_wait_seconds_count 4
`

func TestParseMetrics(t *testing.T) {
	m, err := ParseMetrics(sampleExposition)
	if err != nil {
		t.Fatal(err)
	}
	if m.Values["mcmcd_workers"] != 2 {
		t.Errorf("workers gauge %v", m.Values)
	}
	if m.Values[`mcmcd_jobs{state="done"}`] != 3 {
		t.Errorf("labelled gauge %v", m.Values)
	}
	h := m.Histograms["mcmcd_queue_wait_seconds"]
	if h == nil {
		t.Fatal("histogram not reassembled")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Count != 4 || h.Sum != 3.5 || len(h.Bounds) != 3 {
		t.Errorf("histogram %+v", h)
	}
	// Median rank 2 falls in the (0.1, 1] bucket: interpolated between
	// its bounds at (2-1)/(3-1) of the width.
	if got, want := h.Quantile(0.5), 0.1+0.9*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p99 rank lands in the +Inf bucket, reported as its lower bound.
	if got := h.Quantile(0.99); got != 1 {
		t.Errorf("p99 = %v, want 1", got)
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	for name, text := range map[string]string{
		"no value":          "mcmcd_workers\n",
		"bad value":         "mcmcd_workers two\n",
		"fractional bucket": `mcmcd_x_bucket{le="1"} 1.5` + "\n",
		"bucket without le": `mcmcd_x_bucket{foo="1"} 1` + "\n",
		"decreasing counts": `mcmcd_x_bucket{le="1"} 5` + "\n" +
			`mcmcd_x_bucket{le="+Inf"} 3` + "\n" + "mcmcd_x_sum 1\nmcmcd_x_count 3\n",
		"inf mismatch": `mcmcd_x_bucket{le="1"} 1` + "\n" +
			`mcmcd_x_bucket{le="+Inf"} 2` + "\n" + "mcmcd_x_sum 1\nmcmcd_x_count 3\n",
		"missing inf": `mcmcd_x_bucket{le="1"} 1` + "\n" + "mcmcd_x_sum 1\nmcmcd_x_count 1\n",
	} {
		if _, err := ParseMetrics(text); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := &Histogram{Bounds: []float64{1, math.Inf(1)}, Counts: []uint64{0, 0}}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
}

func TestParseMetricsDaemonShape(t *testing.T) {
	// A multi-histogram exposition in the daemon's emission order must
	// reassemble every histogram independently.
	text := strings.Replace(sampleExposition, "queue_wait", "job_duration", -1) + sampleExposition
	m, err := ParseMetrics(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Histograms) != 2 {
		t.Fatalf("histograms %v", m.Histograms)
	}
}
