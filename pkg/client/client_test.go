package client_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
	"repro/pkg/service"
)

// newTestServer runs an in-process manager behind httptest and returns
// a client for it — the full client surface against the real routes.
func newTestServer(t *testing.T, cfg service.Config) (*client.Client, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	m, err := service.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

var testScene = api.SceneSpec{W: 64, H: 64, Count: 4, MeanRadius: 6, Noise: 0.05, Seed: 5}

func testSpec(iters int, seed uint64) api.JobSpec {
	return api.JobSpec{Scene: &testScene, Options: api.OptionsSpec{
		Strategy: "sequential", MeanRadius: 6, Iterations: iters, Seed: seed,
	}}
}

func TestClientRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	c, _ := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	info, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.API != api.Version || len(info.Strategies) == 0 {
		t.Fatalf("version %+v", info)
	}

	st, err := c.Submit(ctx, testSpec(20000, 9))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone {
		t.Fatalf("final state %q (%s)", final.State, final.Error)
	}
	res, err := final.ResultView()
	if err != nil || res == nil || len(res.Circles) == 0 {
		t.Fatalf("result %+v, %v", res, err)
	}

	// The same status through GET, and through the list.
	got, err := c.Job(ctx, st.ID)
	if err != nil || got.State != api.StateDone {
		t.Fatalf("Job: %+v, %v", got, err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("Jobs: %+v, %v", jobs, err)
	}

	// Diagnostics for the done job carry the result-level rates.
	d, err := c.Diag(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != st.ID || d.State != api.StateDone || math.IsNaN(float64(d.AcceptRate)) {
		t.Fatalf("diag %+v", d)
	}

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health %+v, %v", h, err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h := m.Histograms["mcmcd_job_duration_seconds"]; h == nil || h.Count == 0 {
		t.Fatalf("job-duration histogram %+v", h)
	}

	// Cancel a queued long job.
	long, err := c.Submit(ctx, testSpec(100_000_000, 10))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := c.Cancel(ctx, long.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final, err := c.Wait(ctx, cancelled.ID, nil); err != nil || final.State != api.StateCancelled {
		t.Fatalf("cancelled job ended %+v, %v", final, err)
	}
}

func TestClientErrorEnvelopes(t *testing.T) {
	c, _ := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	var env *api.ErrorEnvelope
	if _, err := c.Job(ctx, "job-00009999"); !errors.As(err, &env) {
		t.Fatalf("unknown job error %T: %v", err, err)
	}
	if env.Code != api.CodeNotFound || env.Status != http.StatusNotFound || env.Message == "" {
		t.Fatalf("envelope %+v", env)
	}

	if _, err := c.Submit(ctx, api.JobSpec{}); !errors.As(err, &env) || env.Code != api.CodeBadRequest {
		t.Fatalf("bad submit error %v", err)
	}

	// A non-JSON error (from something that isn't the daemon) still
	// surfaces as a typed envelope.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer plain.Close()
	pc, err := client.New(plain.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Version(ctx); !errors.As(err, &env) || env.Status != http.StatusBadGateway || env.Code != "unexpected_response" {
		t.Fatalf("plain-text error %v", err)
	}
}

func TestClientNodes(t *testing.T) {
	// Against a coordinator, Nodes decodes the registry; a standalone
	// daemon (no registry) answers the typed not_found.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/nodes" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `[{"id":"w-0001","name":"box","state":"alive","slots":2,"leases":["job-00000001"],"registered_at":"2026-01-01T00:00:00Z","last_heartbeat_age_seconds":1.5,"jobs_completed":3}]`)
	}))
	defer fake.Close()
	fc, err := client.New(fake.URL)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := fc.Nodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].ID != "w-0001" || nodes[0].State != api.NodeAlive ||
		nodes[0].JobsCompleted != 3 || len(nodes[0].Leases) != 1 {
		t.Fatalf("nodes %+v", nodes)
	}

	c, _ := newTestServer(t, service.Config{Workers: 1})
	var env *api.ErrorEnvelope
	if _, err := c.Nodes(context.Background()); !errors.As(err, &env) || env.Code != api.CodeNotFound {
		t.Fatalf("standalone nodes error %v", err)
	}
}

func TestClientStrictDecoding(t *testing.T) {
	// A server speaking a newer contract (extra fields) must fail loudly
	// rather than silently dropping data.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"api":"v1","service":"mcmcd","go_version":"go","strategies":[],"shapes":[],"novel_field":1}`)
	}))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Version(context.Background()); err == nil {
		t.Fatal("unknown field decoded without error")
	}
}

func TestNewRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "127.0.0.1:8080", "http://", "://x"} {
		if _, err := client.New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	c, err := client.New("http://localhost:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseURL() != "http://localhost:8080" {
		t.Errorf("base URL %q not normalized", c.BaseURL())
	}
}

// sseFrame writes one SSE frame and flushes it.
func sseFrame(w http.ResponseWriter, name, data string) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
	w.(http.Flusher).Flush()
}

// Deterministic reconnect scenario: the first connection dies after
// one progress snapshot; the second replays it (as a daemon restarted
// from a checkpoint would) before advancing to completion. The stream
// must splice the two connections into one monotone event sequence.
func TestStreamReconnectResume(t *testing.T) {
	var conns atomic.Int32
	const id = "job-00000001"
	state := `{"id":"` + id + `","state":"running","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z"}`
	done := `{"id":"` + id + `","state":"done","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z","result":{"strategy":"sequential","shape":"disc","circles":[],"log_post":-1,"iterations":10000,"elapsed_seconds":0,"partitions":1,"accept_rate":0.5,"global_reject_rate":0.5,"local_reject_rate":null}}`
	progress := func(iter int) string {
		return fmt.Sprintf(`{"phase":"global","iter":%d,"log_post":-10.5,"num_circles":1,"accept_rate":0.5,"partitions":0,"partitions_done":0}`, iter)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != api.Prefix+"/jobs/"+id+"/events" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			sseFrame(w, "state", state)
			sseFrame(w, "progress", progress(5000))
			// Connection drops here — no done event.
		default:
			sseFrame(w, "state", state)
			sseFrame(w, "progress", progress(5000)) // replay, must be deduplicated
			sseFrame(w, "progress", progress(10000))
			sseFrame(w, "done", done)
		}
	}))
	defer srv.Close()

	c, err := client.New(srv.URL, client.WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	var iters []int64
	final, err := c.Wait(context.Background(), id, func(ev *client.Event) {
		names = append(names, ev.Name)
		if ev.Progress != nil {
			iters = append(iters, ev.Progress.Iter)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || final.State != api.StateDone {
		t.Fatalf("final %+v", final)
	}
	wantNames := []string{"state", "progress", "state", "progress", "done"}
	if fmt.Sprint(names) != fmt.Sprint(wantNames) {
		t.Errorf("event sequence %v, want %v", names, wantNames)
	}
	if fmt.Sprint(iters) != fmt.Sprint([]int64{5000, 10000}) {
		t.Errorf("progress iters %v (replay not deduplicated?)", iters)
	}
	if conns.Load() != 2 {
		t.Errorf("%d connections, want 2", conns.Load())
	}
}

// A terminal stream replays instantly: state then done on the first
// connection, and Next returns io.EOF afterwards.
func TestStreamTerminalReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	c, _ := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()
	st, err := c.Submit(ctx, testSpec(2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
	s := c.Events(ctx, st.ID)
	defer s.Close()
	var names []string
	for {
		ev, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, ev.Name)
	}
	if len(names) == 0 || names[len(names)-1] != "done" {
		t.Fatalf("terminal replay %v", names)
	}
	if s.Terminal() == nil || s.Terminal().State != api.StateDone {
		t.Fatalf("terminal status %+v", s.Terminal())
	}
}

// The retry budget bounds reconnection attempts: a dead server makes
// Next fail after the configured number of consecutive failures.
func TestStreamRetryExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listens anymore
	c, err := client.New(srv.URL, client.WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Events(context.Background(), "job-00000001")
	defer s.Close()
	if _, err := s.Next(); err == nil {
		t.Fatal("Next succeeded against a dead server")
	}
}

// Context cancellation interrupts a blocked stream promptly.
func TestStreamContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		sseFrame(w, "state", `{"id":"x","state":"running","strategy":"s","seed":1,"submitted":"2026-08-08T12:00:00Z"}`)
		<-r.Context().Done() // hold the connection open
	}))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := c.Events(ctx, "x")
	defer s.Close()
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	donec := make(chan error, 1)
	go func() {
		_, err := s.Next()
		donec <- err
	}()
	select {
	case err := <-donec:
		if err == nil {
			t.Fatal("Next returned an event after cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next did not observe cancellation")
	}
}

// A draining daemon (or a proxy in front of a restarting one) answers
// 503/502 — the reconnect loop the Stream documents must treat those
// as transient within the retry budget, not kill the watcher the
// moment a restart begins.
func TestStreamSurvivesTransient5xx(t *testing.T) {
	var conns atomic.Int32
	const id = "job-00000001"
	state := `{"id":"` + id + `","state":"running","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z"}`
	done := `{"id":"` + id + `","state":"done","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z"}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch conns.Add(1) {
		case 1:
			w.Header().Set("Content-Type", "text/event-stream")
			sseFrame(w, "state", state)
			// Connection drops; the daemon is now "restarting".
		case 2:
			http.Error(w, `{"code":"shutting_down","error":"draining"}`, http.StatusServiceUnavailable)
		case 3:
			http.Error(w, "bad gateway", http.StatusBadGateway)
		case 4:
			http.Error(w, "slow down", http.StatusTooManyRequests)
		default:
			w.Header().Set("Content-Type", "text/event-stream")
			sseFrame(w, "state", state)
			sseFrame(w, "done", done)
		}
	}))
	defer srv.Close()

	c, err := client.New(srv.URL, client.WithRetry(10, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(context.Background(), id, nil)
	if err != nil {
		t.Fatalf("stream died on a transient 5xx/429: %v", err)
	}
	if final == nil || final.State != api.StateDone {
		t.Fatalf("final %+v", final)
	}
	if conns.Load() != 5 {
		t.Errorf("%d connections, want 5", conns.Load())
	}
}

// Transient 5xx responses still count against the retry budget: a
// permanently broken proxy must not retry forever.
func TestStream5xxExhaustsRetryBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()
	c, err := client.New(srv.URL, client.WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Events(context.Background(), "job-00000001")
	defer s.Close()
	if _, err := s.Next(); err == nil {
		t.Fatal("Next succeeded against a permanent 502")
	}
}

// A 404 stays fatal: after a crash it means the spool lost the job, and
// retrying cannot bring it back.
func TestStream404Fatal(t *testing.T) {
	var conns atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"code":"not_found","error":"no job"}`)
	}))
	defer srv.Close()
	c, err := client.New(srv.URL, client.WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Events(context.Background(), "job-00000001")
	defer s.Close()
	var env *api.ErrorEnvelope
	if _, err := s.Next(); !errors.As(err, &env) || env.Status != http.StatusNotFound {
		t.Fatalf("404 error %v", err)
	}
	if conns.Load() != 1 {
		t.Errorf("client retried a 404 (%d connections)", conns.Load())
	}
}

// Scratch-restart watermark rewind: the daemon crashed before (or
// corrupted) its first checkpoint, recovered the job with Restarted
// set, and re-ran it from iteration zero. The stream must surface the
// re-run's progress immediately — before the fix, the pre-crash
// watermark silently suppressed every event until the re-run passed
// it, freezing the stream for most of the job.
func TestStreamScratchRestartRewindsWatermark(t *testing.T) {
	var conns atomic.Int32
	const id = "job-00000001"
	running := `{"id":"` + id + `","state":"running","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z"}`
	restarted := `{"id":"` + id + `","state":"running","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z","restarted":true}`
	done := `{"id":"` + id + `","state":"done","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z","restarted":true}`
	progress := func(iter int) string {
		return fmt.Sprintf(`{"phase":"global","iter":%d,"log_post":-10.5,"num_circles":1,"accept_rate":0.5,"partitions":0,"partitions_done":0}`, iter)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			sseFrame(w, "state", running)
			sseFrame(w, "progress", progress(40000))
			sseFrame(w, "progress", progress(50000))
			// SIGKILL: connection drops, no checkpoint was spooled.
		default:
			sseFrame(w, "state", restarted)
			sseFrame(w, "progress", progress(5000))
			sseFrame(w, "progress", progress(15000))
			sseFrame(w, "done", done)
		}
	}))
	defer srv.Close()

	c, err := client.New(srv.URL, client.WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var iters []int64
	var sawRestart bool
	final, err := c.Wait(context.Background(), id, func(ev *client.Event) {
		if ev.Progress != nil {
			iters = append(iters, ev.Progress.Iter)
		}
		if ev.Status != nil && ev.Status.Restarted {
			sawRestart = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || final.State != api.StateDone {
		t.Fatalf("final %+v", final)
	}
	if !sawRestart {
		t.Fatal("restarted state snapshot not delivered")
	}
	want := []int64{40000, 50000, 5000, 15000}
	if fmt.Sprint(iters) != fmt.Sprint(want) {
		t.Fatalf("progress iters %v, want %v (watermark not rewound after scratch restart?)", iters, want)
	}
}

// A checkpoint-resumed job (Restarted NOT set) keeps the old contract:
// replayed progress below the watermark stays deduplicated.
func TestStreamCheckpointResumeStillDedups(t *testing.T) {
	var conns atomic.Int32
	const id = "job-00000001"
	running := `{"id":"` + id + `","state":"running","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z"}`
	done := `{"id":"` + id + `","state":"done","strategy":"sequential","seed":1,"submitted":"2026-08-08T12:00:00Z"}`
	progress := func(iter int) string {
		return fmt.Sprintf(`{"phase":"global","iter":%d,"log_post":-10.5,"num_circles":1,"accept_rate":0.5,"partitions":0,"partitions_done":0}`, iter)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			sseFrame(w, "state", running)
			sseFrame(w, "progress", progress(50000))
			// Crash; the daemon resumes from its 45000-iteration checkpoint.
		default:
			sseFrame(w, "state", running)
			sseFrame(w, "progress", progress(47500)) // re-run of the checkpointed window
			sseFrame(w, "progress", progress(55000))
			sseFrame(w, "done", done)
		}
	}))
	defer srv.Close()

	c, err := client.New(srv.URL, client.WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var iters []int64
	if _, err := c.Wait(context.Background(), id, func(ev *client.Event) {
		if ev.Progress != nil {
			iters = append(iters, ev.Progress.Iter)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(iters) != fmt.Sprint([]int64{50000, 55000}) {
		t.Fatalf("progress iters %v, want [50000 55000] (checkpoint replay not deduplicated)", iters)
	}
}
