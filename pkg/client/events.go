package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/pkg/api"
)

// Event is one decoded SSE event from a job stream. Exactly one of
// Status (for "state"/"done") and Progress (for "progress") is set.
type Event struct {
	Name     string // "state", "progress" or "done"
	Status   *api.JobStatus
	Progress *api.ProgressEvent
}

// Stream iterates a job's SSE events. Snapshots are self-contained, so
// the stream survives connection loss transparently: it reconnects
// with backoff (dial failures, 5xx and 429 all count against the retry
// budget; other 4xx are fatal) and deduplicates replayed progress
// against an iteration watermark — a consumer sees progress strictly
// advance even if the daemon restarts mid-job (the respooled job
// replays from its checkpoint). The one deliberate exception: a
// "state" snapshot with Restarted set means the daemon recovered the
// job without a usable checkpoint and re-ran it from iteration zero;
// the watermark rewinds with it, so the consumer observes the restart
// (progress drops, then advances strictly again) instead of a stream
// frozen until the re-run passes its pre-crash high-water mark. Close
// the stream when done; Next after the terminal event returns io.EOF.
type Stream struct {
	c   *Client
	ctx context.Context
	id  string

	body io.ReadCloser
	br   *bufio.Reader

	lastIter int64 // progress dedup watermark
	haveIter bool
	attempts int // consecutive failed connections
	done     bool
	terminal *api.JobStatus
}

// Events opens a streaming iterator over a job's SSE events. The first
// event is always a "state" snapshot of the job as it is now; a
// terminal job replays its state and final "done" immediately.
func (c *Client) Events(ctx context.Context, id string) *Stream {
	return &Stream{c: c, ctx: ctx, id: id}
}

// Terminal returns the final JobStatus once the "done" event has been
// seen (nil before that).
func (s *Stream) Terminal() *api.JobStatus { return s.terminal }

// Close releases the underlying connection. Safe to call at any time.
func (s *Stream) Close() error {
	if s.body != nil {
		err := s.body.Close()
		s.body = nil
		s.br = nil
		return err
	}
	return nil
}

// Next returns the next event, blocking until one arrives, the context
// ends, or reconnection is exhausted. After the "done" event it
// returns io.EOF.
func (s *Stream) Next() (*Event, error) {
	if s.done {
		return nil, io.EOF
	}
	for {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		if s.br == nil {
			if err := s.connect(); err != nil {
				var tr *transient
				if errors.As(err, &tr) {
					continue // dial failed, retry budget remains
				}
				return nil, err
			}
		}
		name, data, err := s.readFrame()
		if err != nil {
			// Connection lost mid-stream (daemon restart, proxy cut).
			// The job may still be running on the other side: retry.
			s.Close()
			continue
		}
		s.attempts = 0
		ev, err := s.decode(name, data)
		if err != nil {
			return nil, err
		}
		if ev == nil {
			continue // deduplicated replay
		}
		return ev, nil
	}
}

// connect (re)establishes the SSE request, applying backoff after the
// first attempt and giving up after the configured retry budget.
func (s *Stream) connect() error {
	if s.attempts > 0 {
		if s.attempts > s.c.retries {
			return fmt.Errorf("client: event stream for %s: %d consecutive connection failures", s.id, s.attempts-1)
		}
		select {
		case <-s.ctx.Done():
			return s.ctx.Err()
		case <-time.After(s.c.backoff):
		}
	}
	s.attempts++
	req, err := http.NewRequestWithContext(s.ctx, http.MethodGet,
		s.c.base+api.Prefix+"/jobs/"+url.PathEscape(s.id)+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := s.c.hc.Do(req)
	if err != nil {
		if s.ctx.Err() != nil {
			return s.ctx.Err()
		}
		return s.connectRetry(err)
	}
	if resp.StatusCode != http.StatusOK {
		err := decodeErr(resp)
		resp.Body.Close()
		// 5xx and 429 are transient: a draining daemon answers 503, a
		// proxy in front of a restarting one 502/504, and both resolve
		// within the retry budget — exactly the window the reconnect
		// loop exists for. A 404 after a mid-job daemon crash would mean
		// the spool lost the job — that (like any other 4xx) is fatal.
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return s.connectRetry(err)
		}
		return err
	}
	s.body = resp.Body
	s.br = bufio.NewReader(resp.Body)
	return nil
}

// connectRetry converts a transient dial failure into another loop
// iteration, unless the retry budget is spent.
func (s *Stream) connectRetry(err error) error {
	if s.attempts > s.c.retries {
		return fmt.Errorf("client: event stream for %s: %w", s.id, err)
	}
	// Leave br nil; Next's loop will call connect again (after backoff).
	return s.transientf("%v", err)
}

// transient is the sentinel family for retryable stream errors; Next
// never surfaces it.
type transient struct{ msg string }

func (t *transient) Error() string { return t.msg }

func (s *Stream) transientf(format string, args ...any) error {
	return &transient{msg: fmt.Sprintf(format, args...)}
}

// readFrame reads one SSE frame (event/data lines up to a blank line).
// Per the SSE spec, a field value loses at most ONE leading space after
// the colon (further whitespace is payload), and multiple data lines
// concatenate with a "\n" between them — a multi-line JSON payload must
// survive the framing byte-for-byte.
func (s *Stream) readFrame() (name string, data []byte, _ error) {
	haveData := false
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return "", nil, err
		}
		line = strings.TrimSuffix(line, "\n")
		line = strings.TrimSuffix(line, "\r")
		switch {
		case line == "":
			if name != "" || haveData {
				return name, data, nil
			}
		case strings.HasPrefix(line, "event:"):
			name = sseFieldValue(line, "event:")
		case strings.HasPrefix(line, "data:"):
			if haveData {
				data = append(data, '\n')
			}
			data = append(data, sseFieldValue(line, "data:")...)
			haveData = true
		case strings.HasPrefix(line, ":"):
			// comment/keepalive
		}
	}
}

// sseFieldValue extracts an SSE field value: everything after the field
// prefix, minus a single optional leading space.
func sseFieldValue(line, prefix string) string {
	return strings.TrimPrefix(strings.TrimPrefix(line, prefix), " ")
}

// decode turns a frame into an Event, advancing the progress watermark
// and suppressing replayed (already-seen) progress snapshots.
func (s *Stream) decode(name string, data []byte) (*Event, error) {
	switch name {
	case "progress":
		var p api.ProgressEvent
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("client: decoding progress event: %w", err)
		}
		if s.haveIter && p.Iter <= s.lastIter {
			return nil, nil // replay after reconnect
		}
		s.lastIter, s.haveIter = p.Iter, true
		return &Event{Name: name, Progress: &p}, nil
	case "state", "done":
		var st api.JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("client: decoding %s event: %w", name, err)
		}
		if st.Restarted && !st.State.Terminal() {
			// The daemon recovered this job without a usable checkpoint:
			// the run starts over from iteration zero, so a watermark
			// from the pre-crash run would suppress every progress event
			// until the re-run passed it again — the stream would appear
			// frozen for most of the job. Rewind to what this snapshot
			// proves instead; progress advances strictly from here.
			if st.Progress != nil {
				s.lastIter, s.haveIter = st.Progress.Iter, true
			} else {
				s.lastIter, s.haveIter = 0, false
			}
		} else if st.Progress != nil && (!s.haveIter || st.Progress.Iter > s.lastIter) {
			s.lastIter, s.haveIter = st.Progress.Iter, true
		}
		if name == "done" {
			s.done = true
			s.terminal = &st
			s.Close()
		}
		return &Event{Name: name, Status: &st}, nil
	default:
		// Unknown event names are skipped, not fatal: the server may
		// grow new event types within v1.
		return nil, nil
	}
}

// Wait streams a job to completion and returns its terminal status.
// onEvent, when non-nil, observes every event along the way.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(*Event)) (*api.JobStatus, error) {
	st := c.Events(ctx, id)
	defer st.Close()
	for {
		ev, err := st.Next()
		if err == io.EOF {
			return st.Terminal(), nil
		}
		if err != nil {
			return nil, err
		}
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Name == "done" {
			return ev.Status, nil
		}
	}
}
