// Package client is the typed Go client for the mcmcd daemon's v1 API
// (the pkg/api contract): job submission, status, cancellation, SSE
// progress streaming with reconnect-and-resume, chain diagnostics and
// metrics. The e2e harness and mcmcctl both drive the daemon through
// this package, so the client is exercised against a live server on
// every run.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/pkg/api"
)

// Client speaks the v1 API to one daemon. The zero value is not usable;
// construct with New.
type Client struct {
	base    string // normalized base URL, no trailing slash
	hc      *http.Client
	backoff time.Duration
	retries int
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client. The default
// has no global timeout — SSE streams are long-lived; bound unary
// calls with a request context instead.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry configures SSE reconnection: up to retries consecutive
// failed attempts, backoff apart. Defaults: 5 attempts, 250ms.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = retries, backoff }
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs scheme and host", baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      &http.Client{},
		backoff: 250 * time.Millisecond,
		retries: 5,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// BaseURL returns the normalized base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// do issues one request and decodes a 2xx JSON response into out
// (strictly: unknown fields are errors, catching contract drift).
// Non-2xx responses become *api.ErrorEnvelope errors.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, contentType string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeErr turns a non-2xx response into the typed envelope error.
// Responses that are not valid envelopes (a proxy in the way, say)
// still produce an *api.ErrorEnvelope, with the body as the message.
func decodeErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Code == "" {
		env = api.ErrorEnvelope{
			Code:    "unexpected_response",
			Message: strings.TrimSpace(string(body)),
		}
	}
	env.Status = resp.StatusCode
	return &env
}

// Version fetches the contract version and capability registries.
func (c *Client) Version(ctx context.Context) (*api.VersionInfo, error) {
	var v api.VersionInfo
	if err := c.do(ctx, http.MethodGet, api.Prefix+"/version", nil, "", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Submit submits a synthetic-scene job.
func (c *Client) Submit(ctx context.Context, spec api.JobSpec) (*api.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var st api.JobStatus
	if err := c.do(ctx, http.MethodPost, api.Prefix+"/jobs", bytes.NewReader(body), "application/json", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitImage submits a raw PNG or PGM image with detection options as
// query parameters (the server sniffs the format from the bytes).
func (c *Client) SubmitImage(ctx context.Context, img []byte, opts api.OptionsSpec) (*api.JobStatus, error) {
	path := api.Prefix + "/jobs"
	if q := optionsQuery(opts).Encode(); q != "" {
		path += "?" + q
	}
	var st api.JobStatus
	if err := c.do(ctx, http.MethodPost, path, bytes.NewReader(img), "application/octet-stream", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// optionsQuery maps an OptionsSpec onto the upload path's query
// parameters (same keys as the JSON field names; zero values omitted).
func optionsQuery(o api.OptionsSpec) url.Values {
	q := url.Values{}
	setS := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	setF := func(k string, v float64) {
		if v != 0 {
			q.Set(k, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	setI := func(k string, v int) {
		if v != 0 {
			q.Set(k, strconv.Itoa(v))
		}
	}
	setS("strategy", o.Strategy)
	setS("shape", o.Shape)
	setF("mean_radius", o.MeanRadius)
	setF("expected_count", o.ExpectedCount)
	setF("threshold", o.Threshold)
	setI("iterations", o.Iterations)
	setI("workers", o.Workers)
	if o.Seed != 0 {
		q.Set("seed", strconv.FormatUint(o.Seed, 10))
	}
	setI("local_phase_iters", o.LocalPhaseIters)
	setI("partition_grid", o.PartitionGrid)
	setI("spec_width", o.SpecWidth)
	setI("local_spec_width", o.LocalSpecWidth)
	setF("grid_slack", o.GridSlack)
	if o.Converge {
		q.Set("converge", "true")
	}
	setF("overlap_penalty", o.OverlapPenalty)
	setI("chains", o.Chains)
	setF("heat_step", o.HeatStep)
	setI("swap_every", o.SwapEvery)
	return q
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodGet, api.Prefix+"/jobs/"+url.PathEscape(id), nil, "", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists all jobs in submission order.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	if err := c.do(ctx, http.MethodGet, api.Prefix+"/jobs", nil, "", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Nodes lists the worker registry of a distributed-mode coordinator.
// Standalone daemons answer a typed 404 (the endpoint exists only in
// coordinator role).
func (c *Client) Nodes(ctx context.Context) ([]api.NodeView, error) {
	var out []api.NodeView
	if err := c.do(ctx, http.MethodGet, api.Prefix+"/nodes", nil, "", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel cancels a pending or running job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.do(ctx, http.MethodDelete, api.Prefix+"/jobs/"+url.PathEscape(id), nil, "", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Diag fetches one job's chain diagnostics (streaming R̂/ESS while it
// runs, result-level rates once done).
func (c *Client) Diag(ctx context.Context, id string) (*api.DiagView, error) {
	var d api.DiagView
	if err := c.do(ctx, http.MethodGet, api.Prefix+"/jobs/"+url.PathEscape(id)+"/diag", nil, "", &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// Health fetches the liveness report.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, "", &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// MetricsText fetches the raw Prometheus text exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeErr(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Metrics fetches and parses the daemon's metrics.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	text, err := c.MetricsText(ctx)
	if err != nil {
		return nil, err
	}
	return ParseMetrics(text)
}
