package client

import (
	"bufio"
	"strings"
	"testing"
)

// frameFrom runs readFrame over a literal byte stream.
func frameFrom(t *testing.T, raw string) (string, string) {
	t.Helper()
	s := &Stream{br: bufio.NewReader(strings.NewReader(raw))}
	name, data, err := s.readFrame()
	if err != nil {
		t.Fatalf("readFrame(%q): %v", raw, err)
	}
	return name, string(data)
}

// The SSE spec joins multiple data: lines with a single "\n" and strips
// at most ONE leading space after the colon — anything beyond that is
// payload. The old implementation concatenated lines bare and
// TrimSpace'd each, silently corrupting multi-line or space-significant
// payloads.
func TestReadFrameDataJoining(t *testing.T) {
	cases := []struct {
		raw      string
		wantName string
		wantData string
	}{
		// Two data lines join with the spec-mandated newline.
		{"event: progress\ndata: {\"a\":1,\ndata: \"b\":2}\n\n", "progress", "{\"a\":1,\n\"b\":2}"},
		// Only one leading space is eaten; the second is payload.
		{"data:  indented\n\n", "", " indented"},
		// Trailing whitespace is payload, never trimmed.
		{"data: keep \n\n", "", "keep "},
		// No space after the colon at all.
		{"data:bare\n\n", "", "bare"},
		// CRLF line endings (a proxy may rewrite them).
		{"event: state\r\ndata: x\r\n\r\n", "state", "x"},
		// Comment lines are ignored, not data.
		{": keepalive\ndata: y\n\n", "", "y"},
		// An empty data line still contributes its separator.
		{"data: a\ndata:\ndata: b\n\n", "", "a\n\nb"},
	}
	for _, tc := range cases {
		name, data := frameFrom(t, tc.raw)
		if name != tc.wantName || data != tc.wantData {
			t.Errorf("frame %q = (%q, %q), want (%q, %q)", tc.raw, name, data, tc.wantName, tc.wantData)
		}
	}
}

// A frame consisting only of an empty data field is still a frame (the
// blank line terminates it), and event names survive exotic spacing.
func TestReadFrameEdgeFraming(t *testing.T) {
	s := &Stream{br: bufio.NewReader(strings.NewReader("data:\n\n"))}
	name, data, err := s.readFrame()
	if err != nil {
		t.Fatalf("empty-data frame: %v", err)
	}
	if name != "" || len(data) != 0 {
		t.Errorf("empty-data frame = (%q, %q)", name, data)
	}
}
