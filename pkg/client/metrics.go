package client

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metrics is a parsed Prometheus text exposition: scalar samples
// (gauges/counters, keyed by their full name{labels} form) and
// reassembled histograms. The daemon's /metrics endpoint is verified
// round-trippable through this parser, so the exposition format cannot
// silently regress.
type Metrics struct {
	// Values holds every non-histogram sample, keyed exactly as
	// exposed: `mcmcd_workers`, `mcmcd_jobs{state="done"}`, …
	Values map[string]float64
	// Histograms are reassembled from their _bucket/_sum/_count series,
	// keyed by base name.
	Histograms map[string]*Histogram
}

// Histogram is one reassembled cumulative histogram.
type Histogram struct {
	// Bounds are the ascending bucket upper bounds, ending with +Inf.
	Bounds []float64
	// Counts are the cumulative counts per bound.
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Validate checks the Prometheus histogram invariants: at least the
// +Inf bucket, strictly ascending bounds, non-decreasing cumulative
// counts, and the +Inf bucket equal to _count.
func (h *Histogram) Validate() error {
	if len(h.Bounds) == 0 || !math.IsInf(h.Bounds[len(h.Bounds)-1], 1) {
		return fmt.Errorf("histogram missing +Inf bucket")
	}
	if len(h.Counts) != len(h.Bounds) {
		return fmt.Errorf("histogram has %d bounds but %d counts", len(h.Bounds), len(h.Counts))
	}
	for i := 1; i < len(h.Bounds); i++ {
		if !(h.Bounds[i] > h.Bounds[i-1]) {
			return fmt.Errorf("bucket bounds not ascending at %d", i)
		}
		if h.Counts[i] < h.Counts[i-1] {
			return fmt.Errorf("cumulative counts decrease at %d", i)
		}
	}
	if h.Counts[len(h.Counts)-1] != h.Count {
		return fmt.Errorf("+Inf bucket %d != count %d", h.Counts[len(h.Counts)-1], h.Count)
	}
	return nil
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the owning bucket — the standard
// histogram_quantile estimate. Returns NaN for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	for i, c := range h.Counts {
		if float64(c) >= rank {
			hi := h.Bounds[i]
			if math.IsInf(hi, 1) {
				// Open-ended bucket: report its lower bound.
				if i == 0 {
					return math.NaN()
				}
				return h.Bounds[i-1]
			}
			lo, prev := 0.0, uint64(0)
			if i > 0 {
				lo, prev = h.Bounds[i-1], h.Counts[i-1]
			}
			if c == prev {
				return hi
			}
			return lo + (hi-lo)*(rank-float64(prev))/float64(c-prev)
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// ParseMetrics parses a Prometheus text exposition. Unknown syntax is
// an error — the parser is deliberately strict, it exists to pin the
// daemon's output format.
func ParseMetrics(text string) (*Metrics, error) {
	m := &Metrics{
		Values:     make(map[string]float64),
		Histograms: make(map[string]*Histogram),
	}
	type bucket struct {
		le  float64
		cum uint64
	}
	buckets := make(map[string][]bucket)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// `name{labels} value` or `name value`.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("metrics line %d: no value: %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: bad value %q", ln+1, valStr)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			base := strings.TrimSuffix(name, "_bucket")
			le, err := bucketLE(key)
			if err != nil {
				return nil, fmt.Errorf("metrics line %d: %v", ln+1, err)
			}
			if val < 0 || val != math.Trunc(val) {
				return nil, fmt.Errorf("metrics line %d: bucket count %q not a non-negative integer", ln+1, valStr)
			}
			buckets[base] = append(buckets[base], bucket{le: le, cum: uint64(val)})
			continue
		}
		if base := strings.TrimSuffix(name, "_sum"); base != name && len(buckets[base]) > 0 {
			h := histOf(m, base)
			h.Sum = val
			continue
		}
		if base := strings.TrimSuffix(name, "_count"); base != name && len(buckets[base]) > 0 {
			h := histOf(m, base)
			h.Count = uint64(val)
			continue
		}
		m.Values[key] = val
	}
	for base, bs := range buckets {
		h := histOf(m, base)
		sort.Slice(bs, func(a, b int) bool { return bs[a].le < bs[b].le })
		for _, b := range bs {
			h.Bounds = append(h.Bounds, b.le)
			h.Counts = append(h.Counts, b.cum)
		}
	}
	for base, h := range m.Histograms {
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("metrics histogram %s: %w", base, err)
		}
	}
	return m, nil
}

func histOf(m *Metrics, base string) *Histogram {
	h, ok := m.Histograms[base]
	if !ok {
		h = &Histogram{}
		m.Histograms[base] = h
	}
	return h
}

// bucketLE extracts the le label of a _bucket series key.
func bucketLE(key string) (float64, error) {
	i := strings.Index(key, `le="`)
	if i < 0 {
		return 0, fmt.Errorf("bucket series %q has no le label", key)
	}
	rest := key[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, fmt.Errorf("bucket series %q has unterminated le label", key)
	}
	return strconv.ParseFloat(rest[:j], 64)
}
