package api

import (
	"encoding/json"
	"time"
)

// Internal worker API (coordinator/worker control plane).
//
// A coordinator serves these routes under /internal/v1 next to the
// public /v1 surface. Workers are stateless: everything durable (the
// queue, the spool, checkpoints) lives with the coordinator; a worker
// holds only the leases it is currently running. The protocol:
//
//	POST /internal/v1/workers                register → WorkerIdentity
//	POST /internal/v1/workers/{id}/heartbeat liveness → HeartbeatAck
//	POST /internal/v1/leases                 lease next job (long-poll)
//	                                         → LeaseGrant, or 204 when
//	                                         no work arrived in the
//	                                         poll window
//	POST /internal/v1/leases/{id}/progress   ProgressReport → ProgressAck
//	POST /internal/v1/leases/{id}/complete   CompleteReport → 204
//
// Liveness is heartbeat-based: a worker whose heartbeat is silent past
// the lease TTL is marked lost and its leases expire — each expired
// lease's job is re-leased from its latest spooled checkpoint (or from
// scratch, Restarted set, when none exists). Progress/complete calls
// under an expired or unknown lease are rejected with CodeLeaseExpired
// so an orphaned worker knows to abandon the run.
//
// The public surface grows one read-only route:
//
//	GET /v1/nodes  worker registry → []NodeView (coordinator role only;
//	               standalone answers a typed 404)

// InternalPrefix is the URL prefix of the coordinator's internal
// worker-facing routes. It is versioned independently of the public
// Prefix: the worker protocol can evolve without a client-visible
// contract bump, but never silently — same golden-fixture rules.
const InternalPrefix = "/internal/" + Version

// Internal error codes (in addition to the public set in errors.go).
const (
	// CodeUnknownWorker rejects a heartbeat or lease request from a
	// worker ID the coordinator does not know — typically after a
	// coordinator restart (the registry is in-memory). The worker
	// re-registers under a fresh ID (404).
	CodeUnknownWorker = "unknown_worker"
	// CodeLeaseExpired rejects progress or completion under a lease
	// that expired or was never granted. The worker must abandon the
	// run: the job has been re-leased elsewhere (410).
	CodeLeaseExpired = "lease_expired"
)

// WorkerRegistration is the body of POST /internal/v1/workers.
type WorkerRegistration struct {
	// Name is a human-oriented label for `mcmcctl node ls` (defaults
	// to the worker's hostname); it need not be unique — the
	// coordinator-assigned ID is the identity.
	Name string `json:"name,omitempty"`
	// Slots is how many jobs the worker runs concurrently.
	Slots int `json:"slots"`
}

// WorkerIdentity is the coordinator's reply to a registration: the
// assigned worker ID plus the liveness contract the worker must obey.
type WorkerIdentity struct {
	ID string `json:"id"`
	// LeaseTTLSeconds is how long the coordinator waits after the last
	// heartbeat before expiring the worker's leases.
	LeaseTTLSeconds float64 `json:"lease_ttl_seconds"`
	// HeartbeatSeconds is the cadence the worker should beat at
	// (a fraction of the TTL, so one dropped beat is survivable).
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
}

// HeartbeatAck is the reply to a worker heartbeat.
type HeartbeatAck struct {
	// CancelledLeases lists lease IDs whose jobs were cancelled by a
	// client; the worker stops those runs at the next chunk boundary.
	CancelledLeases []string `json:"cancelled_leases,omitempty"`
}

// LeaseRequest is the body of POST /internal/v1/leases: a long-poll
// for the next runnable job.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Lease identifies one grant of one job to one worker. Lease IDs are
// unique across re-leases of the same job, so a stale worker's
// progress/complete calls are distinguishable from the current
// holder's.
type Lease struct {
	ID       string `json:"id"`
	JobID    string `json:"job_id"`
	WorkerID string `json:"worker_id"`
}

// LeaseGrant is the coordinator's reply to a successful lease request:
// the lease plus everything the worker needs to run the job.
type LeaseGrant struct {
	Lease Lease `json:"lease"`
	// Record is the job's durable submission record. The worker
	// materialises the input from it: the synthetic scene spec, or the
	// named input file read from the shared spool.
	Record JobRecord `json:"record"`
	// Checkpoint is the spooled checkpoint to resume from, inline
	// (base64 under JSON). Empty means run from scratch. The
	// coordinator reads the spool exactly once, at grant time — it is
	// the single authority on resume-vs-scratch.
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// Restarted is set when a re-leased job had no usable checkpoint
	// and restarts from iteration zero (mirrors JobStatus.Restarted).
	Restarted bool `json:"restarted,omitempty"`
	// CheckpointEvery is the coordinator's spool cadence: approximate
	// iterations between checkpoint writes.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// ProgressReport is the body of POST /internal/v1/leases/{id}/progress.
type ProgressReport struct {
	WorkerID string `json:"worker_id"`
	// Progress is the chunk-boundary snapshot, in the same wire form
	// the public SSE stream uses — the coordinator fans it out to
	// /v1/jobs/{id}/events subscribers unchanged.
	Progress ProgressEvent `json:"progress"`
}

// ProgressAck is the reply to a progress report.
type ProgressAck struct {
	// Cancel tells the worker to stop this run at the next chunk
	// boundary: a client cancelled the job.
	Cancel bool `json:"cancel,omitempty"`
}

// CompleteReport is the body of POST /internal/v1/leases/{id}/complete:
// the job's terminal outcome.
type CompleteReport struct {
	WorkerID string `json:"worker_id"`
	// Result is the encoded ResultView of a successful run; nil when
	// Error is set.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure message of an unsuccessful run ("cancelled"
	// for runs stopped by a cancellation).
	Error string `json:"error,omitempty"`
}

// NodeView is one worker in GET /v1/nodes: the operator-facing view of
// the registry (`mcmcctl node ls`).
type NodeView struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// State is "alive" (heartbeating) or "lost" (missed the lease TTL;
	// kept listed so operators can see what died).
	State string `json:"state"`
	Slots int    `json:"slots"`
	// Leases lists the job IDs the worker currently holds.
	Leases                  []string  `json:"leases,omitempty"`
	RegisteredAt            time.Time `json:"registered_at"`
	LastHeartbeatAgeSeconds float64   `json:"last_heartbeat_age_seconds"`
	JobsCompleted           int64     `json:"jobs_completed"`
}

// Node states.
const (
	NodeAlive = "alive"
	NodeLost  = "lost"
)
