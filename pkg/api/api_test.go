package api

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// The golden fixtures under testdata/ ARE the v1 wire contract: each
// must strict-decode into its Go type and re-encode to the exact same
// bytes. A failing round-trip means the contract changed — which is
// only allowed together with a deliberate fixture update.
func TestGoldenRoundTrip(t *testing.T) {
	cases := []struct {
		fixture string
		value   any
	}{
		{"jobstatus.json", &JobStatus{}},
		{"jobstatus_restarted.json", &JobStatus{}},
		{"resultview.json", &ResultView{}},
		{"jobrecord.json", &JobRecord{}},
		{"diag.json", &DiagView{}},
		{"envelope.json", &ErrorEnvelope{}},
		{"nodeview.json", &NodeView{}},
		{"leasegrant.json", &LeaseGrant{}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			blob, err := os.ReadFile(filepath.Join("testdata", tc.fixture))
			if err != nil {
				t.Fatal(err)
			}
			blob = bytes.TrimSpace(blob)
			dec := json.NewDecoder(bytes.NewReader(blob))
			dec.DisallowUnknownFields()
			if err := dec.Decode(tc.value); err != nil {
				t.Fatalf("fixture no longer decodes: %v", err)
			}
			out, err := json.Marshal(tc.value)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, blob) {
				t.Errorf("round-trip drifted from the committed contract\nfixture: %s\nencoded: %s", blob, out)
			}
		})
	}
}

func TestFloatJSON(t *testing.T) {
	cases := []struct {
		in   Float
		want string
	}{
		{Float(1.5), "1.5"},
		{Float(0), "0"},
		{Float(-987.0625), "-987.0625"},
		{Float(math.NaN()), "null"},
		{Float(math.Inf(1)), "null"},
		{Float(math.Inf(-1)), "null"},
	}
	for _, tc := range cases {
		blob, err := json.Marshal(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != tc.want {
			t.Errorf("Float(%v) marshalled %s, want %s", float64(tc.in), blob, tc.want)
		}
	}

	// null decodes back to NaN; numbers decode to themselves.
	var f Float
	if err := json.Unmarshal([]byte("null"), &f); err != nil || !math.IsNaN(float64(f)) {
		t.Errorf("null decoded to %v, %v", f, err)
	}
	if err := json.Unmarshal([]byte("-2.5"), &f); err != nil || float64(f) != -2.5 {
		t.Errorf("-2.5 decoded to %v, %v", f, err)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &f); err == nil {
		t.Error("string decoded into Float without error")
	}
}

func TestJobStateTerminal(t *testing.T) {
	for state, want := range map[JobState]bool{
		StatePending: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
		JobState("bogus"): false,
	} {
		if state.Terminal() != want {
			t.Errorf("%q.Terminal() = %v, want %v", state, !want, want)
		}
	}
}

func TestErrorEnvelope(t *testing.T) {
	env := &ErrorEnvelope{Code: CodeNotFound, Message: "no such job", Status: http.StatusNotFound}
	if got, want := env.Error(), `not_found: no such job (HTTP 404)`; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	// Status never leaks onto the wire.
	blob, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte("404")) {
		t.Errorf("HTTP status serialized into the envelope: %s", blob)
	}
}

// ResultView on a status must tolerate absence and reject garbage.
func TestJobStatusResultView(t *testing.T) {
	var st JobStatus
	if v, err := st.ResultView(); v != nil || err != nil {
		t.Fatalf("empty result decoded to %v, %v", v, err)
	}
	st.Result = json.RawMessage(`{"strategy":`)
	if _, err := st.ResultView(); err == nil {
		t.Fatal("corrupt result decoded without error")
	}
}
