// Package api is the versioned wire contract of the mcmcd detection
// service: every request and response type of the v1 HTTP API, the
// machine-readable error envelope, and the persisted spool-record
// format. It is the single canonical definition shared by the server
// (pkg/service), the typed Go client (pkg/client), the operator CLI
// (cmd/mcmcctl) and the black-box test harnesses — none of which
// define wire shapes of their own.
//
// The v1 surface (all paths under /v1 except the operational
// endpoints):
//
//	POST   /v1/jobs             submit a job: JSON JobSpec body, or a
//	                            raw PNG/PGM upload with OptionsSpec
//	                            fields as query parameters
//	GET    /v1/jobs             list jobs    → []JobStatus
//	GET    /v1/jobs/{id}        one job      → JobStatus
//	DELETE /v1/jobs/{id}        cancel       → JobStatus
//	GET    /v1/jobs/{id}/events SSE stream: "state", "progress"
//	                            (ProgressEvent) and a final "done"
//	                            (JobStatus) event
//	GET    /v1/jobs/{id}/diag   chain diagnostics → DiagView
//	GET    /v1/nodes            worker registry → []NodeView
//	                            (coordinator role only)
//	GET    /v1/version          contract + build info → VersionInfo
//	GET    /healthz             liveness → Health
//	GET    /metrics             Prometheus text exposition
//
// A coordinator additionally serves the internal worker-facing
// protocol under /internal/v1 (register, heartbeat, lease, progress,
// complete) — see worker.go for the routes and types.
//
// Every non-2xx response body is an ErrorEnvelope: a stable,
// machine-readable Code plus a human-oriented message. Wrong methods
// on a known route answer 405 with an Allow header; unknown paths
// answer a typed 404 envelope — there is no untyped error surface.
//
// Numeric edge cases: float fields that can legitimately be NaN or
// ±Inf (log-posteriors, rates) use the Float type, which marshals
// those as JSON null and unmarshals null back to NaN. Everything else
// marshals with Go's shortest round-trip float encoding, so a decoded
// view compares bit-identical to one built locally from the same
// result.
package api

// Version is the API contract version served under /v1.
const Version = "v1"

// Prefix is the URL prefix of all versioned routes.
const Prefix = "/" + Version
