package api

import "repro/pkg/parmcmc"

// NewResultView converts a parmcmc.Result to its wire form — the
// server uses it to encode results, and the black-box tests use it to
// build the expected view from a direct Detect call and compare it to
// the daemon's JSON bit-for-bit.
func NewResultView(res *parmcmc.Result) ResultView {
	v := ResultView{
		Strategy:         res.Strategy.String(),
		Shape:            res.Shape.String(),
		Circles:          make([]CircleView, len(res.Circles)),
		LogPost:          Float(res.LogPost),
		Iterations:       res.Iterations,
		ElapsedSeconds:   res.Elapsed.Seconds(),
		Partitions:       res.Partitions,
		AcceptRate:       Float(res.AcceptRate),
		GlobalRejectRate: Float(res.GlobalRejectRate),
		LocalRejectRate:  Float(res.LocalRejectRate),
		Barriers:         res.Barriers,
		SwapRate:         Float(res.SwapRate),
		Merged:           res.Merged,
		Disputed:         res.Disputed,
	}
	for i, c := range res.Circles {
		v.Circles[i] = CircleView{X: c.X, Y: c.Y, R: c.R}
	}
	for _, e := range res.Ellipses {
		v.Ellipses = append(v.Ellipses, EllipseView{X: e.X, Y: e.Y, Rx: e.Rx, Ry: e.Ry, Theta: e.Theta})
	}
	for _, r := range res.Regions {
		v.Regions = append(v.Regions, RegionView{
			X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1,
			Area: r.Area, Lambda: r.Lambda, Circles: r.Circles,
			Iters: r.Iters, Converged: r.Converged, Seconds: r.Seconds,
		})
	}
	return v
}

// NewProgressEvent converts a parmcmc.Progress snapshot to its wire
// form.
func NewProgressEvent(p parmcmc.Progress) *ProgressEvent {
	return &ProgressEvent{
		Phase: p.Phase, Iter: p.Iter, Total: p.Total,
		LogPost: Float(p.LogPost), NumCircles: p.NumCircles,
		AcceptRate: Float(p.AcceptRate),
		Partitions: p.Partitions, PartitionsDone: p.PartitionsDone,
		SpecWidth: p.SpecWidth, SpecSpeedup: Float(p.SpecSpeedup),
	}
}

// ToParmcmc maps a wire progress snapshot back onto the library type —
// the coordinator uses it to feed worker-reported progress into the
// same job bookkeeping a local run's Observer feeds. Strategy is not
// on the wire and stays zero; nothing downstream of the wire form
// consumes it.
func (p ProgressEvent) ToParmcmc() parmcmc.Progress {
	return parmcmc.Progress{
		Phase: p.Phase, Iter: p.Iter, Total: p.Total,
		LogPost: float64(p.LogPost), NumCircles: p.NumCircles,
		AcceptRate: float64(p.AcceptRate),
		Partitions: p.Partitions, PartitionsDone: p.PartitionsDone,
		SpecWidth: p.SpecWidth, SpecSpeedup: float64(p.SpecSpeedup),
	}
}

// ToParmcmc maps the wire scene onto the library's; the shape
// name must already be validated/canonicalised by the decoder.
func (s SceneSpec) ToParmcmc() (parmcmc.SceneSpec, error) {
	shape := parmcmc.Discs
	if s.Shape != "" {
		var err error
		if shape, err = parmcmc.ParseShape(s.Shape); err != nil {
			return parmcmc.SceneSpec{}, err
		}
	}
	return parmcmc.SceneSpec{
		W: s.W, H: s.H, Count: s.Count,
		MeanRadius: s.MeanRadius, Noise: s.Noise,
		Clusters: s.Clusters, Seed: s.Seed,
		Shape: shape, AxisRatio: s.AxisRatio,
	}, nil
}
