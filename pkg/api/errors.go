package api

import "fmt"

// Error codes: the stable machine-readable half of every non-2xx
// response. Clients branch on these, never on message text.
const (
	// CodeBadRequest rejects a malformed or out-of-range submission (400).
	CodeBadRequest = "bad_request"
	// CodeUnsupportedMedia rejects an upload that is neither JSON, PNG
	// nor PGM (415).
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeBodyTooLarge rejects a body over the size cap (413).
	CodeBodyTooLarge = "body_too_large"
	// CodeNotFound reports an unknown path or job id (404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed reports a known route with the wrong HTTP
	// method (405); the response carries an Allow header.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeQueueFull reports submit-side backpressure (429); the
	// response carries a Retry-After header.
	CodeQueueFull = "queue_full"
	// CodeShuttingDown reports a submission during graceful shutdown (503).
	CodeShuttingDown = "shutting_down"
	// CodeInternal reports a server-side failure (500).
	CodeInternal = "internal"
)

// ErrorEnvelope is the body of every non-2xx API response: a stable
// machine-readable Code plus a human-oriented Message (serialized as
// "error", the key the pre-v1 surface used, so old clients keep
// parsing). It implements error, so typed clients can return server
// failures directly; Status carries the HTTP status code client-side
// and is never serialized.
type ErrorEnvelope struct {
	Code    string `json:"code"`
	Message string `json:"error"`
	Status  int    `json:"-"`
}

// Error renders the envelope as "code: message (HTTP status)".
func (e *ErrorEnvelope) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("%s: %s (HTTP %d)", e.Code, e.Message, e.Status)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}
