package api

import (
	"encoding/json"
	"math"
	"time"
)

// JobState is a job's lifecycle state.
type JobState string

const (
	StatePending   JobState = "pending"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec is the JSON body of POST /v1/jobs for synthetic-scene jobs.
// Image uploads instead send raw PNG/PGM bytes with OptionsSpec fields
// as query parameters.
type JobSpec struct {
	Scene   *SceneSpec  `json:"scene"`
	Options OptionsSpec `json:"options"`
}

// SceneSpec describes a synthetic scene to generate server-side.
type SceneSpec struct {
	W          int     `json:"w"`
	H          int     `json:"h"`
	Count      int     `json:"count"`
	MeanRadius float64 `json:"mean_radius"`
	Noise      float64 `json:"noise,omitempty"`
	Clusters   int     `json:"clusters,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	// Shape selects the artifact family ("disc" default, "ellipse");
	// AxisRatio the mean minor/major ratio of ellipse scenes.
	Shape     string  `json:"shape,omitempty"`
	AxisRatio float64 `json:"axis_ratio,omitempty"`
}

// OptionsSpec is the wire form of the chain-affecting fields of
// parmcmc.Options. Zero values take the library defaults.
type OptionsSpec struct {
	Strategy        string  `json:"strategy,omitempty"`
	Shape           string  `json:"shape,omitempty"`
	MeanRadius      float64 `json:"mean_radius,omitempty"`
	ExpectedCount   float64 `json:"expected_count,omitempty"`
	Threshold       float64 `json:"threshold,omitempty"`
	Iterations      int     `json:"iterations,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
	LocalPhaseIters int     `json:"local_phase_iters,omitempty"`
	PartitionGrid   int     `json:"partition_grid,omitempty"`
	SpecWidth       int     `json:"spec_width,omitempty"`
	LocalSpecWidth  int     `json:"local_spec_width,omitempty"`
	GridSlack       float64 `json:"grid_slack,omitempty"`
	Converge        bool    `json:"converge,omitempty"`
	OverlapPenalty  float64 `json:"overlap_penalty,omitempty"`
	Chains          int     `json:"chains,omitempty"`
	HeatStep        float64 `json:"heat_step,omitempty"`
	SwapEvery       int     `json:"swap_every,omitempty"`
}

// JobStatus is the JSON representation of a job: the response of
// submit/get/cancel, the element type of the list endpoint, and the
// payload of the SSE "state" and "done" events.
type JobStatus struct {
	ID        string          `json:"id"`
	State     JobState        `json:"state"`
	Strategy  string          `json:"strategy"`
	Seed      uint64          `json:"seed"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Progress  *ProgressEvent  `json:"progress,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	// Restarted reports that a daemon recovered this job without a
	// usable checkpoint: every pre-crash iteration was discarded and the
	// run starts over from iteration zero. Streaming clients use it to
	// rewind their progress watermark — without it, a dedup watermark
	// from the pre-crash run would silently suppress all re-run
	// progress. Checkpoint-resumed jobs do NOT set it (their replayed
	// window is deduplicated instead).
	Restarted bool `json:"restarted,omitempty"`
	// Worker is the ID of the worker currently holding the job's lease
	// (coordinator role only; empty standalone and for queued jobs).
	Worker string `json:"worker,omitempty"`
}

// ResultView decodes the embedded Result, or returns nil for a job
// without one.
func (s *JobStatus) ResultView() (*ResultView, error) {
	if len(s.Result) == 0 {
		return nil, nil
	}
	var v ResultView
	if err := json.Unmarshal(s.Result, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// ProgressEvent is one streaming progress snapshot: the payload of the
// SSE "progress" event and the Progress field of JobStatus. Snapshots
// are self-contained — each one supersedes all earlier ones.
type ProgressEvent struct {
	Phase          string `json:"phase"`
	Iter           int64  `json:"iter"`
	Total          int64  `json:"total,omitempty"`
	LogPost        Float  `json:"log_post"`
	NumCircles     int    `json:"num_circles"`
	AcceptRate     Float  `json:"accept_rate"`
	Partitions     int    `json:"partitions"`
	PartitionsDone int    `json:"partitions_done"`

	// Speculative-executor telemetry (PeriodicSpeculative runs only):
	// the speculation width the next batch runs at — the adaptive
	// controller's current pick, or the configured fixed width — and the
	// measured committed-iterations-per-batch speedup so far. Telemetry
	// only: the sampled chain is identical for every width, so these
	// never appear in ResultView.
	SpecWidth   int   `json:"spec_width,omitempty"`
	SpecSpeedup Float `json:"spec_speedup,omitempty"`
}

// CircleView is one detected artifact in disc form (equal-area radius
// for ellipse runs).
type CircleView struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// EllipseView is one detected artifact in generic shape form.
type EllipseView struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Rx    float64 `json:"rx"`
	Ry    float64 `json:"ry"`
	Theta float64 `json:"theta"`
}

// RegionView describes one partition of a partitioned run.
type RegionView struct {
	X0        float64 `json:"x0"`
	Y0        float64 `json:"y0"`
	X1        float64 `json:"x1"`
	Y1        float64 `json:"y1"`
	Area      float64 `json:"area"`
	Lambda    float64 `json:"lambda"`
	Circles   int     `json:"circles"`
	Iters     int64   `json:"iters"`
	Converged bool    `json:"converged"`
	Seconds   float64 `json:"seconds"`
}

// ResultView is the JSON form of a detection result. Float fields
// marshal with Go's shortest round-trip encoding, so a decoded view
// compares bit-identical to one built locally from the same result.
type ResultView struct {
	Strategy         string        `json:"strategy"`
	Shape            string        `json:"shape"`
	Circles          []CircleView  `json:"circles"`
	Ellipses         []EllipseView `json:"ellipses,omitempty"`
	LogPost          Float         `json:"log_post"`
	Iterations       int64         `json:"iterations"`
	ElapsedSeconds   float64       `json:"elapsed_seconds"`
	Partitions       int           `json:"partitions"`
	AcceptRate       Float         `json:"accept_rate"`
	GlobalRejectRate Float         `json:"global_reject_rate"`
	LocalRejectRate  Float         `json:"local_reject_rate"`
	Barriers         int64         `json:"barriers,omitempty"`
	SwapRate         Float         `json:"swap_rate,omitempty"`
	Merged           int           `json:"merged,omitempty"`
	Disputed         int           `json:"disputed,omitempty"`
	Regions          []RegionView  `json:"regions,omitempty"`
}

// DiagView is the response of GET /v1/jobs/{id}/diag: chain health for
// one job. While the job runs, RHat and ESS are computed over a sliding
// window of streamed log-posterior samples (split-R̂ and autocorrelation
// ESS), so an operator can tell a mixing chain (R̂ → 1, healthy accept
// rate) from a stuck or still-trending one — without waiting for the
// final result. For terminal jobs the result-level rates and per-region
// convergence are included. Samples counts the window's observations;
// RHat/ESS are null until the window holds enough of them. Convergence
// windows live in daemon memory: a job recovered from the spool after a
// restart reports Samples 0 until it streams new progress.
type DiagView struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Strategy string   `json:"strategy"`
	Shape    string   `json:"shape,omitempty"`
	Seed     uint64   `json:"seed"`

	Progress *ProgressEvent `json:"progress,omitempty"`

	// Streaming convergence statistics over recent log-posterior
	// samples (observed at chunk boundaries).
	Samples int   `json:"samples"`
	RHat    Float `json:"rhat"`
	ESS     Float `json:"ess"`

	// Speculative-executor telemetry, lifted from the latest progress
	// snapshot of PeriodicSpeculative runs (absent otherwise): the
	// current speculation width and the measured iterations-per-batch
	// speedup. Also exported as the mcmcd_spec_width/mcmcd_spec_speedup
	// per-job gauges on /metrics.
	SpecWidth   int   `json:"spec_width,omitempty"`
	SpecSpeedup Float `json:"spec_speedup,omitempty"`

	// Result-level diagnostics, present once the job is done.
	AcceptRate       Float        `json:"accept_rate,omitempty"`
	GlobalRejectRate Float        `json:"global_reject_rate,omitempty"`
	LocalRejectRate  Float        `json:"local_reject_rate,omitempty"`
	SwapRate         Float        `json:"swap_rate,omitempty"`
	Regions          []RegionView `json:"regions,omitempty"`

	Error string `json:"error,omitempty"`
}

// VersionInfo is the response of GET /v1/version: the contract version
// plus the server's capability registries, so clients can discover
// valid strategy and shape names without hardcoding them.
type VersionInfo struct {
	API        string   `json:"api"`
	Service    string   `json:"service"`
	GoVersion  string   `json:"go_version"`
	Strategies []string `json:"strategies"`
	Shapes     []string `json:"shapes"`
	// Role is the process role serving this API: "standalone",
	// "coordinator" or "worker" (empty from servers predating roles).
	Role string `json:"role,omitempty"`
}

// Health is the response of GET /healthz.
type Health struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          map[string]int `json:"jobs"`
}

// Spool layout: the daemon keeps one directory per job under its spool
// root, holding these files (plus the raw input image for uploads).
// The names are part of the durable contract — mcmcctl inspects a
// spool offline through them.
const (
	// SpoolRecordFile is the submission record, a JSON JobRecord.
	SpoolRecordFile = "job.json"
	// SpoolCheckpointFile is the latest resumable checkpoint.
	SpoolCheckpointFile = "checkpoint.bin"
	// SpoolResultFile is the final ResultView once the job is done.
	SpoolResultFile = "result.json"
)

// JobRecord is the persisted spool record (<spool>/<job-id>/job.json):
// everything a restarted daemon needs to rebuild the job. Non-terminal
// recorded states (pending, running) mean "interrupted — resume me".
// mcmcctl's spool inspection parses the same format.
type JobRecord struct {
	ID        string      `json:"id"`
	Seed      uint64      `json:"seed"`
	State     JobState    `json:"state"`
	Submitted time.Time   `json:"submitted"`
	Options   OptionsSpec `json:"options"`
	Scene     *SceneSpec  `json:"scene,omitempty"`
	Input     string      `json:"input,omitempty"` // input file name
	Error     string      `json:"error,omitempty"`
}

// Float marshals like float64 but encodes the JSON-unrepresentable
// NaN/±Inf as null instead of failing the whole response, and decodes
// null back to NaN.
type Float float64

func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func (f *Float) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = Float(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}
