package service

import (
	"encoding/json"
	"math"
	"time"

	"repro/pkg/parmcmc"
)

// State is a job's lifecycle state.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SubmitRequest is the JSON body of POST /v1/jobs for synthetic-scene
// jobs. Image uploads instead send raw PNG/PGM bytes with options in
// query parameters.
type SubmitRequest struct {
	Scene   *SceneSpec  `json:"scene"`
	Options OptionsSpec `json:"options"`
}

// SceneSpec is the wire form of parmcmc.SceneSpec.
type SceneSpec struct {
	W          int     `json:"w"`
	H          int     `json:"h"`
	Count      int     `json:"count"`
	MeanRadius float64 `json:"mean_radius"`
	Noise      float64 `json:"noise,omitempty"`
	Clusters   int     `json:"clusters,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	// Shape selects the artifact family ("disc" default, "ellipse");
	// AxisRatio the mean minor/major ratio of ellipse scenes.
	Shape     string  `json:"shape,omitempty"`
	AxisRatio float64 `json:"axis_ratio,omitempty"`
}

// toParmcmc maps the wire scene onto the library's; the shape name must
// already be validated/canonicalised by the decoder.
func (s SceneSpec) toParmcmc() (parmcmc.SceneSpec, error) {
	shape := parmcmc.Discs
	if s.Shape != "" {
		var err error
		if shape, err = parmcmc.ParseShape(s.Shape); err != nil {
			return parmcmc.SceneSpec{}, err
		}
	}
	return parmcmc.SceneSpec{
		W: s.W, H: s.H, Count: s.Count,
		MeanRadius: s.MeanRadius, Noise: s.Noise,
		Clusters: s.Clusters, Seed: s.Seed,
		Shape: shape, AxisRatio: s.AxisRatio,
	}, nil
}

// OptionsSpec is the wire form of the chain-affecting fields of
// parmcmc.Options. Zero values take the library defaults.
type OptionsSpec struct {
	Strategy        string  `json:"strategy,omitempty"`
	Shape           string  `json:"shape,omitempty"`
	MeanRadius      float64 `json:"mean_radius,omitempty"`
	ExpectedCount   float64 `json:"expected_count,omitempty"`
	Threshold       float64 `json:"threshold,omitempty"`
	Iterations      int     `json:"iterations,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
	LocalPhaseIters int     `json:"local_phase_iters,omitempty"`
	PartitionGrid   int     `json:"partition_grid,omitempty"`
	SpecWidth       int     `json:"spec_width,omitempty"`
	LocalSpecWidth  int     `json:"local_spec_width,omitempty"`
	GridSlack       float64 `json:"grid_slack,omitempty"`
	Converge        bool    `json:"converge,omitempty"`
	OverlapPenalty  float64 `json:"overlap_penalty,omitempty"`
	Chains          int     `json:"chains,omitempty"`
	HeatStep        float64 `json:"heat_step,omitempty"`
	SwapEvery       int     `json:"swap_every,omitempty"`
}

// JobView is the JSON representation of a job served by the API.
type JobView struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Strategy  string          `json:"strategy"`
	Seed      uint64          `json:"seed"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Progress  *ProgressView   `json:"progress,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// ProgressView is the JSON form of parmcmc.Progress.
type ProgressView struct {
	Phase          string    `json:"phase"`
	Iter           int64     `json:"iter"`
	Total          int64     `json:"total,omitempty"`
	LogPost        safeFloat `json:"log_post"`
	NumCircles     int       `json:"num_circles"`
	AcceptRate     safeFloat `json:"accept_rate"`
	Partitions     int       `json:"partitions"`
	PartitionsDone int       `json:"partitions_done"`
}

func progressView(p parmcmc.Progress) *ProgressView {
	return &ProgressView{
		Phase: p.Phase, Iter: p.Iter, Total: p.Total,
		LogPost: safeFloat(p.LogPost), NumCircles: p.NumCircles,
		AcceptRate: safeFloat(p.AcceptRate),
		Partitions: p.Partitions, PartitionsDone: p.PartitionsDone,
	}
}

// CircleView is one detected artifact in disc form (equal-area radius
// for ellipse runs).
type CircleView struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// EllipseView is one detected artifact in generic shape form.
type EllipseView struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Rx    float64 `json:"rx"`
	Ry    float64 `json:"ry"`
	Theta float64 `json:"theta"`
}

// RegionView mirrors parmcmc.RegionInfo.
type RegionView struct {
	X0        float64 `json:"x0"`
	Y0        float64 `json:"y0"`
	X1        float64 `json:"x1"`
	Y1        float64 `json:"y1"`
	Area      float64 `json:"area"`
	Lambda    float64 `json:"lambda"`
	Circles   int     `json:"circles"`
	Iters     int64   `json:"iters"`
	Converged bool    `json:"converged"`
	Seconds   float64 `json:"seconds"`
}

// ResultView is the JSON form of parmcmc.Result. Float fields marshal
// with Go's shortest round-trip encoding, so a decoded view compares
// bit-identical to one built locally from the same Result.
type ResultView struct {
	Strategy         string        `json:"strategy"`
	Shape            string        `json:"shape"`
	Circles          []CircleView  `json:"circles"`
	Ellipses         []EllipseView `json:"ellipses,omitempty"`
	LogPost          safeFloat     `json:"log_post"`
	Iterations       int64         `json:"iterations"`
	ElapsedSeconds   float64       `json:"elapsed_seconds"`
	Partitions       int           `json:"partitions"`
	AcceptRate       safeFloat     `json:"accept_rate"`
	GlobalRejectRate safeFloat     `json:"global_reject_rate"`
	LocalRejectRate  safeFloat     `json:"local_reject_rate"`
	Barriers         int64         `json:"barriers,omitempty"`
	SwapRate         safeFloat     `json:"swap_rate,omitempty"`
	Merged           int           `json:"merged,omitempty"`
	Disputed         int           `json:"disputed,omitempty"`
	Regions          []RegionView  `json:"regions,omitempty"`
}

// NewResultView converts a parmcmc.Result to its wire form — exported
// so clients (and the black-box tests) can build the expected view from
// a direct Detect call and compare it to the daemon's JSON.
func NewResultView(res *parmcmc.Result) ResultView {
	v := ResultView{
		Strategy:         res.Strategy.String(),
		Shape:            res.Shape.String(),
		Circles:          make([]CircleView, len(res.Circles)),
		LogPost:          safeFloat(res.LogPost),
		Iterations:       res.Iterations,
		ElapsedSeconds:   res.Elapsed.Seconds(),
		Partitions:       res.Partitions,
		AcceptRate:       safeFloat(res.AcceptRate),
		GlobalRejectRate: safeFloat(res.GlobalRejectRate),
		LocalRejectRate:  safeFloat(res.LocalRejectRate),
		Barriers:         res.Barriers,
		SwapRate:         safeFloat(res.SwapRate),
		Merged:           res.Merged,
		Disputed:         res.Disputed,
	}
	for i, c := range res.Circles {
		v.Circles[i] = CircleView{X: c.X, Y: c.Y, R: c.R}
	}
	for _, e := range res.Ellipses {
		v.Ellipses = append(v.Ellipses, EllipseView{X: e.X, Y: e.Y, Rx: e.Rx, Ry: e.Ry, Theta: e.Theta})
	}
	for _, r := range res.Regions {
		v.Regions = append(v.Regions, RegionView{
			X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1,
			Area: r.Area, Lambda: r.Lambda, Circles: r.Circles,
			Iters: r.Iters, Converged: r.Converged, Seconds: r.Seconds,
		})
	}
	return v
}

// safeFloat marshals like float64 but encodes the JSON-unrepresentable
// NaN/±Inf as null instead of failing the whole response.
type safeFloat float64

func (f safeFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func (f *safeFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = safeFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = safeFloat(v)
	return nil
}
