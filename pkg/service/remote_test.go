package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

func newTestExternal(t *testing.T, cfg Config) (*Manager, *Remote) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	m, r, err := NewExternal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	return m, r
}

// runLeased emulates one worker turn over the Remote seam: materialise
// the granted record, run it through parmcmc (resuming from the
// granted checkpoint when present), spool checkpoints like a real
// worker would, and stop when ctx is cancelled. It returns the
// encoded result, or nil if the run was interrupted.
func runLeased(t *testing.T, ctx context.Context, m *Manager, r *Remote, job *Job) json.RawMessage {
	t.Helper()
	rec, blob, _ := r.Describe(job)
	pix, w, h, opt, err := MaterializeRecord(rec, m.cfg.SpoolDir)
	if err != nil {
		t.Fatal(err)
	}
	opt.CheckpointEvery = m.cfg.CheckpointEvery
	opt.OnCheckpoint = func(cp *parmcmc.Checkpoint) {
		enc, err := cp.MarshalBinary()
		if err != nil {
			t.Error(err)
			return
		}
		path := filepath.Join(m.cfg.SpoolDir, rec.ID, api.SpoolCheckpointFile)
		if err := cliutil.WriteFileAtomic(path, enc, 0o644); err != nil {
			t.Error(err)
		}
	}
	opt.Observer = func(p parmcmc.Progress) {
		r.Observe(job, *api.NewProgressEvent(p))
	}
	var res *parmcmc.Result
	if len(blob) > 0 {
		var cp parmcmc.Checkpoint
		if err := cp.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		res, err = parmcmc.DetectResume(ctx, pix, w, h, opt, &cp)
	} else {
		res, err = parmcmc.DetectContext(ctx, pix, w, h, opt)
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil // interrupted mid-run, like a dying worker
		}
		t.Fatal(err)
	}
	raw, err := json.Marshal(api.NewResultView(res))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestExternalLifecycle drives a job through the Remote seam end to
// end — submit over HTTP, lease, remote progress, remote completion —
// and checks the result is stored byte-for-byte and the worker ID is
// visible on the wire.
func TestExternalLifecycle(t *testing.T) {
	t.Parallel()
	m, r := newTestExternal(t, Config{CheckpointEvery: 2000, Role: "coordinator"})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(7, 20000)})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := r.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() != view.ID {
		t.Fatalf("leased %s, submitted %s", job.ID(), view.ID)
	}
	if !r.Start(job, "w-0001", func() {}) {
		t.Fatal("Start refused a pending job")
	}
	if got := getJob(t, srv.URL, view.ID); got.State != api.StateRunning || got.Worker != "w-0001" {
		t.Fatalf("running status = %+v", got)
	}

	raw := runLeased(t, ctx, m, r, job)
	r.Complete(job, raw, "")

	final := getJob(t, srv.URL, view.ID)
	if final.State != api.StateDone {
		t.Fatalf("final state %s (error %q)", final.State, final.Error)
	}
	if string(final.Result) != string(raw) {
		t.Fatal("stored result is not byte-identical to the worker's report")
	}
	want := expectedView(t, testScene, testOptions(7, 20000))
	if got := normalizeResult(decodeResult(t, final)); !reflect.DeepEqual(got, want) {
		t.Fatalf("remote result differs from direct parmcmc run\ngot  %+v\nwant %+v", got, want)
	}
	if _, err := os.Stat(filepath.Join(m.cfg.SpoolDir, view.ID, api.SpoolResultFile)); err != nil {
		t.Fatalf("result not spooled: %v", err)
	}
}

// TestExternalRequeueResumesBitIdentically kills the first "worker"
// mid-run after a checkpoint exists, requeues the job, and checks the
// second run resumes from the checkpoint (not flagged restarted, no
// iteration double-counting) and lands the bit-identical result.
func TestExternalRequeueResumesBitIdentically(t *testing.T) {
	t.Parallel()
	m, r := newTestExternal(t, Config{CheckpointEvery: 1000})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	spec := testOptions(11, 60000)
	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: spec})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	job, err := r.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r.Start(job, "w-0001", func() {})

	// First run: die once a checkpoint is on disk.
	runCtx, die := context.WithCancel(ctx)
	ckpt := filepath.Join(m.cfg.SpoolDir, view.ID, api.SpoolCheckpointFile)
	go func() {
		for runCtx.Err() == nil {
			if _, err := os.Stat(ckpt); err == nil {
				die()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	if raw := runLeased(t, runCtx, m, r, job); raw != nil {
		t.Fatal("first run finished before it could be killed; lower CheckpointEvery")
	}
	die()

	r.Requeue(job)
	st := getJob(t, srv.URL, view.ID)
	if st.State != api.StatePending || st.Restarted || st.Worker != "" {
		t.Fatalf("requeued status = %+v", st)
	}

	// Second run: must come back out of Next ahead of new submissions
	// and resume from the checkpoint.
	job2, err := r.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if job2 != job {
		t.Fatalf("requeue returned a different job: %s", job2.ID())
	}
	if _, blob, restarted := r.Describe(job2); len(blob) == 0 || restarted {
		t.Fatalf("grant after requeue: checkpoint %d bytes, restarted %v", len(blob), restarted)
	}
	r.Start(job2, "w-0002", func() {})
	raw := runLeased(t, ctx, m, r, job2)
	if raw == nil {
		t.Fatal("second run did not finish")
	}
	r.Complete(job2, raw, "")

	want := expectedView(t, testScene, spec)
	final := waitDone(t, srv.URL, view.ID)
	if got := normalizeResult(decodeResult(t, final)); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run\ngot  %+v\nwant %+v", got, want)
	}
}

// TestExternalRequeueWithoutCheckpointFlagsRestart covers the scratch
// path: a lease that dies before any checkpoint requeues with
// Restarted set, and still lands the exact result.
func TestExternalRequeueWithoutCheckpointFlagsRestart(t *testing.T) {
	t.Parallel()
	m, r := newTestExternal(t, Config{CheckpointEvery: 1 << 30})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	spec := testOptions(13, 20000)
	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: spec})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	job, err := r.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r.Start(job, "w-0001", func() {})
	// The worker dies instantly: no checkpoint was ever written.
	r.Requeue(job)

	st := getJob(t, srv.URL, view.ID)
	if st.State != api.StatePending || !st.Restarted {
		t.Fatalf("requeued status = %+v", st)
	}

	job2, err := r.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, blob, restarted := r.Describe(job2); len(blob) != 0 || !restarted {
		t.Fatalf("grant after scratch requeue: checkpoint %d bytes, restarted %v", len(blob), restarted)
	}
	r.Start(job2, "w-0002", func() {})
	raw := runLeased(t, ctx, m, r, job2)
	r.Complete(job2, raw, "")

	want := expectedView(t, testScene, spec)
	if got := normalizeResult(decodeResult(t, waitDone(t, srv.URL, view.ID))); !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted result differs from uninterrupted run\ngot  %+v\nwant %+v", got, want)
	}
}

// TestExternalRequeueOfCancelledJobTerminates checks that a job whose
// client asked for cancellation while it was leased is not re-leased
// when the lease expires — it terminates as cancelled with the same
// wire contract the standalone path uses.
func TestExternalRequeueOfCancelledJobTerminates(t *testing.T) {
	t.Parallel()
	m, r := newTestExternal(t, Config{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(17, 50000)})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := r.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancelled := false
	r.Start(job, "w-0001", func() { cancelled = true })
	if _, err := m.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	if !cancelled {
		t.Fatal("cancel did not reach the lease's cancel hook")
	}
	// The worker never acks; its lease expires and the coordinator
	// requeues — which must terminate, not re-lease.
	r.Requeue(job)
	final := getJob(t, srv.URL, view.ID)
	if final.State != api.StateCancelled || final.Error != "cancelled" {
		t.Fatalf("final = %+v", final)
	}
}

// TestExternalCompleteError maps worker-reported failures onto the
// standalone terminal contract.
func TestExternalCompleteError(t *testing.T) {
	t.Parallel()
	m, r := newTestExternal(t, Config{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(19, 10000)})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := r.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r.Start(job, "w-0001", func() {})
	r.Complete(job, nil, "chain diverged")
	if final := getJob(t, srv.URL, view.ID); final.State != api.StateFailed || final.Error != "chain diverged" {
		t.Fatalf("final = %+v", final)
	}
}

// TestExternalNextHonorsStop checks Next unblocks with ErrStopped on
// manager shutdown and with ctx.Err on a caller timeout (the lease
// long-poll window).
func TestExternalNextHonorsStop(t *testing.T) {
	t.Parallel()
	_, r := newTestExternal(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := r.Next(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Next on empty queue = %v, want deadline", err)
	}
}
