package coordinator

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/pkg/service"
)

// Config configures a Coordinator.
type Config struct {
	// Service configures the embedded job manager. SpoolDir is
	// required: the shared spool is how checkpoints travel between the
	// coordinator and its workers, and re-lease-from-checkpoint is the
	// whole point of the split.
	Service service.Config
	// LeaseTTL is how long after a worker's last heartbeat its leases
	// survive (default 15s). Workers are told to beat at a third of
	// it, so a single dropped beat never expires a lease.
	LeaseTTL time.Duration
	// PollWindow bounds the lease long-poll: a lease request with no
	// runnable job returns 204 after this long (default 10s).
	PollWindow time.Duration

	// now is the clock, injectable for the lease-expiry unit tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.PollWindow <= 0 {
		c.PollWindow = 10 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.Service.Logf == nil {
		c.Service.Logf = log.Printf
	}
	return c
}

// workerState is one registered worker.
type workerState struct {
	id         string
	name       string
	slots      int
	registered time.Time
	lastBeat   time.Time
	lost       bool
	completed  int64
}

// lease is one live grant of one job to one worker.
type lease struct {
	id       string
	jobID    string
	job      *service.Job
	workerID string
	// cancelled is set when a client cancels the job; delivered to the
	// worker on its next progress report or heartbeat.
	cancelled bool
}

// Coordinator owns the distributed control plane: the durable queue
// and spool (through an externally-run service.Manager), the worker
// registry and the lease table. Construct with New; always Stop it.
type Coordinator struct {
	cfg Config
	m   *service.Manager
	r   *service.Remote
	now func() time.Time

	mu        sync.Mutex
	workers   map[string]*workerState
	leases    map[string]*lease
	workerSeq uint64
	leaseSeq  uint64
	// Counters for /metrics.
	leasesGranted uint64
	leaseExpiries uint64

	stop     chan struct{}
	scanDone chan struct{}
}

// New builds a coordinator: the embedded manager recovers the spool
// (interrupted jobs go back to the runnable set exactly as a
// standalone restart would), and the lease-expiry scanner starts.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Service.SpoolDir == "" {
		return nil, errors.New("coordinator: Service.SpoolDir is required (checkpoints travel through the shared spool)")
	}
	cfg.Service.Role = "coordinator"
	m, r, err := service.NewExternal(cfg.Service)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:      cfg,
		m:        m,
		r:        r,
		now:      cfg.now,
		workers:  make(map[string]*workerState),
		leases:   make(map[string]*lease),
		stop:     make(chan struct{}),
		scanDone: make(chan struct{}),
	}
	m.AddMetrics(c.writeMetrics)
	go c.scanLoop()
	return c, nil
}

// Manager exposes the embedded manager (the public API surface).
func (c *Coordinator) Manager() *service.Manager { return c.m }

// Stop shuts the coordinator down: the expiry scanner stops, then the
// manager (which unblocks lease long-polls and SSE streams). Running
// workers notice on their next heartbeat or report.
func (c *Coordinator) Stop(ctx context.Context) error {
	close(c.stop)
	<-c.scanDone
	return c.m.Stop(ctx)
}

// scanLoop expires leases of silent workers. The scan cadence is a
// quarter of the TTL, so expiry lands at most TTL/4 late.
func (c *Coordinator) scanLoop() {
	defer close(c.scanDone)
	t := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.expireScan()
		}
	}
}

// expireScan marks workers whose heartbeat aged past the TTL as lost
// and requeues their leases. A heartbeat exactly at the deadline still
// counts: a worker expires only when now is strictly after
// lastBeat+TTL.
func (c *Coordinator) expireScan() {
	now := c.now()
	var requeue []*lease
	c.mu.Lock()
	for _, w := range c.workers {
		if w.lost || !now.After(w.lastBeat.Add(c.cfg.LeaseTTL)) {
			continue
		}
		w.lost = true
		for id, l := range c.leases {
			if l.workerID != w.id {
				continue
			}
			delete(c.leases, id)
			c.leaseExpiries++
			requeue = append(requeue, l)
		}
		c.logf("coordinator: worker %s (%s) lost: no heartbeat for %v", w.id, w.name, now.Sub(w.lastBeat))
	}
	c.mu.Unlock()
	for _, l := range requeue {
		c.logf("coordinator: lease %s expired, requeueing %s", l.id, l.jobID)
		c.r.Requeue(l.job)
	}
}

// grant creates a lease for job and claims it; false means the job was
// cancelled while queued and the caller should poll for another.
func (c *Coordinator) grant(job *service.Job, workerID string) (*lease, bool) {
	c.mu.Lock()
	c.leaseSeq++
	l := &lease{
		id:       fmt.Sprintf("lease-%08d", c.leaseSeq),
		jobID:    job.ID(),
		job:      job,
		workerID: workerID,
	}
	// Registered before the claim so a cancellation arriving mid-grant
	// finds the lease and flags it.
	c.leases[l.id] = l
	c.mu.Unlock()

	leaseID := l.id
	ok := c.r.Start(job, workerID, func() {
		c.mu.Lock()
		if held, live := c.leases[leaseID]; live {
			held.cancelled = true
		}
		c.mu.Unlock()
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		delete(c.leases, leaseID)
		return nil, false
	}
	c.leasesGranted++
	return l, true
}

// lookupLease resolves a lease a worker is reporting under; nil means
// the lease expired (or never existed, or belongs to someone else) and
// the caller answers lease_expired.
func (c *Coordinator) lookupLease(id, workerID string) *lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[id]
	if !ok || l.workerID != workerID {
		return nil
	}
	return l
}

// completeLease removes the lease and credits the worker.
func (c *Coordinator) completeLease(l *lease) {
	c.mu.Lock()
	delete(c.leases, l.id)
	if w, ok := c.workers[l.workerID]; ok {
		w.completed++
	}
	c.mu.Unlock()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Service.Logf != nil {
		c.cfg.Service.Logf(format, args...)
	}
}
