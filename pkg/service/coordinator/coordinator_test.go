package coordinator

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/api"
)

// fakeClock makes lease-expiry deterministic: the TTL arithmetic runs
// on this clock while tickers (which only trigger scans) stay on real
// time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server, *fakeClock) {
	t.Helper()
	clock := &fakeClock{t: time.Now()}
	cfg.now = clock.Now
	if cfg.Service.SpoolDir == "" {
		cfg.Service.SpoolDir = t.TempDir()
	}
	if cfg.Service.Logf == nil {
		cfg.Service.Logf = t.Logf
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := c.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	return c, srv, clock
}

// postJSON posts v and decodes the response into out (when non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 && len(blob) > 0 {
		if err := json.Unmarshal(blob, out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, blob)
		}
	}
	return resp.StatusCode
}

func errorCode(t *testing.T, url string, v any) (int, string) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	json.NewDecoder(resp.Body).Decode(&env)
	return resp.StatusCode, env.Code
}

func registerWorker(t *testing.T, url, name string) api.WorkerIdentity {
	t.Helper()
	var id api.WorkerIdentity
	if status := postJSON(t, url+api.InternalPrefix+"/workers", api.WorkerRegistration{Name: name, Slots: 1}, &id); status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}
	return id
}

func submitJob(t *testing.T, url string, seed uint64) string {
	t.Helper()
	spec := api.JobSpec{
		Scene:   &api.SceneSpec{W: 64, H: 64, Count: 3, MeanRadius: 6, Seed: 5},
		Options: api.OptionsSpec{Strategy: "sequential", MeanRadius: 6, Iterations: 5000, Seed: seed},
	}
	var view api.JobStatus
	if status := postJSON(t, url+"/v1/jobs", spec, &view); status != http.StatusCreated {
		t.Fatalf("submit: status %d", status)
	}
	return view.ID
}

func leaseNext(t *testing.T, url, workerID string) (api.LeaseGrant, int) {
	t.Helper()
	var grant api.LeaseGrant
	status := postJSON(t, url+api.InternalPrefix+"/leases", api.LeaseRequest{WorkerID: workerID}, &grant)
	return grant, status
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestHeartbeatExactlyAtDeadline pins the liveness boundary: a worker
// whose heartbeat age equals the TTL exactly is still alive (expiry
// requires strictly-after), and one nanosecond past it is lost, its
// lease requeued.
func TestHeartbeatExactlyAtDeadline(t *testing.T) {
	ttl := 15 * time.Second
	c, srv, clock := newTestCoordinator(t, Config{LeaseTTL: ttl, PollWindow: 2 * time.Second})
	id := registerWorker(t, srv.URL, "edge")
	jobID := submitJob(t, srv.URL, 31)
	grant, status := leaseNext(t, srv.URL, id.ID)
	if status != http.StatusOK || grant.Lease.JobID != jobID {
		t.Fatalf("lease: status %d grant %+v", status, grant)
	}

	// Exactly at the deadline: not expired.
	clock.Advance(ttl)
	c.expireScan()
	hbURL := srv.URL + api.InternalPrefix + "/workers/" + id.ID + "/heartbeat"
	var ack api.HeartbeatAck
	if status := postJSON(t, hbURL, struct{}{}, &ack); status != http.StatusOK {
		t.Fatalf("heartbeat at deadline: status %d, want renewal", status)
	}

	// The beat renewed the lease: a full TTL may elapse again.
	clock.Advance(ttl)
	c.expireScan()
	var nodes []api.NodeView
	getJSON(t, srv.URL+"/v1/nodes", &nodes)
	if len(nodes) != 1 || nodes[0].State != api.NodeAlive {
		t.Fatalf("nodes after renewal = %+v", nodes)
	}

	// Strictly past the deadline: lost, lease expired, job requeued.
	clock.Advance(time.Nanosecond)
	c.expireScan()
	var after []api.NodeView // fresh: Unmarshal merges into reused elements
	getJSON(t, srv.URL+"/v1/nodes", &after)
	if len(after) != 1 || after[0].State != api.NodeLost || len(after[0].Leases) != 0 {
		t.Fatalf("nodes after expiry = %+v", after)
	}
	if status, code := errorCode(t, hbURL, struct{}{}); status != http.StatusNotFound || code != api.CodeUnknownWorker {
		t.Fatalf("heartbeat after loss: %d %s, want 404 %s", status, code, api.CodeUnknownWorker)
	}
	var view api.JobStatus
	getJSON(t, srv.URL+"/v1/jobs/"+jobID, &view)
	if view.State != api.StatePending || view.Worker != "" {
		t.Fatalf("job after expiry = %+v", view)
	}
}

// TestDoubleLeaseRace fires many concurrent lease requests at a
// single-job queue: exactly one may win, and a job must never be
// leased twice at once.
func TestDoubleLeaseRace(t *testing.T) {
	_, srv, _ := newTestCoordinator(t, Config{LeaseTTL: time.Minute, PollWindow: 300 * time.Millisecond})
	jobID := submitJob(t, srv.URL, 37)

	const racers = 8
	ids := make([]api.WorkerIdentity, racers)
	for i := range ids {
		ids[i] = registerWorker(t, srv.URL, fmt.Sprintf("racer-%d", i))
	}
	var wg sync.WaitGroup
	grants := make(chan api.LeaseGrant, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			if grant, status := leaseNext(t, srv.URL, w); status == http.StatusOK {
				grants <- grant
			}
		}(ids[i].ID)
	}
	wg.Wait()
	close(grants)
	var won []api.LeaseGrant
	for g := range grants {
		won = append(won, g)
	}
	if len(won) != 1 || won[0].Lease.JobID != jobID {
		t.Fatalf("%d grants for one job: %+v", len(won), won)
	}
}

// TestCompleteAfterExpiry rejects a dead worker's late completion with
// lease_expired and lets the re-leased run finish normally — the
// orphan can never overwrite the live lease's outcome.
func TestCompleteAfterExpiry(t *testing.T) {
	ttl := 10 * time.Second
	c, srv, clock := newTestCoordinator(t, Config{LeaseTTL: ttl, PollWindow: 2 * time.Second})
	w1 := registerWorker(t, srv.URL, "doomed")
	jobID := submitJob(t, srv.URL, 41)
	grant, _ := leaseNext(t, srv.URL, w1.ID)

	clock.Advance(ttl + time.Millisecond)
	c.expireScan()

	// The orphan reports in: progress and completion both answer 410.
	progURL := srv.URL + api.InternalPrefix + "/leases/" + grant.Lease.ID + "/progress"
	if status, code := errorCode(t, progURL, api.ProgressReport{WorkerID: w1.ID, Progress: api.ProgressEvent{Iter: 100}}); status != http.StatusGone || code != api.CodeLeaseExpired {
		t.Fatalf("orphan progress: %d %s", status, code)
	}
	doneURL := srv.URL + api.InternalPrefix + "/leases/" + grant.Lease.ID + "/complete"
	if status, code := errorCode(t, doneURL, api.CompleteReport{WorkerID: w1.ID, Result: json.RawMessage(`{"iterations":1}`)}); status != http.StatusGone || code != api.CodeLeaseExpired {
		t.Fatalf("orphan complete: %d %s", status, code)
	}
	var view api.JobStatus
	getJSON(t, srv.URL+"/v1/jobs/"+jobID, &view)
	if view.State != api.StatePending {
		t.Fatalf("job state after orphan reports = %s, want pending", view.State)
	}

	// The replacement leases and completes.
	w2 := registerWorker(t, srv.URL, "successor")
	grant2, status := leaseNext(t, srv.URL, w2.ID)
	if status != http.StatusOK || grant2.Lease.JobID != jobID {
		t.Fatalf("re-lease: status %d grant %+v", status, grant2)
	}
	if grant2.Lease.ID == grant.Lease.ID {
		t.Fatal("re-lease reused the expired lease ID")
	}
	done2 := srv.URL + api.InternalPrefix + "/leases/" + grant2.Lease.ID + "/complete"
	if status := postJSON(t, done2, api.CompleteReport{WorkerID: w2.ID, Error: "synthetic"}, nil); status != http.StatusNoContent {
		t.Fatalf("successor complete: status %d", status)
	}
	getJSON(t, srv.URL+"/v1/jobs/"+jobID, &view)
	if view.State != api.StateFailed {
		t.Fatalf("job state after successor = %s", view.State)
	}
}

// TestCancelWhileLeased routes a client cancellation to the worker:
// flagged on the next progress ack and heartbeat, terminal as
// cancelled once the worker confirms.
func TestCancelWhileLeased(t *testing.T) {
	_, srv, _ := newTestCoordinator(t, Config{LeaseTTL: time.Minute, PollWindow: 2 * time.Second})
	w1 := registerWorker(t, srv.URL, "cancellee")
	jobID := submitJob(t, srv.URL, 43)
	grant, _ := leaseNext(t, srv.URL, w1.ID)

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+jobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	progURL := srv.URL + api.InternalPrefix + "/leases/" + grant.Lease.ID + "/progress"
	var ack api.ProgressAck
	if status := postJSON(t, progURL, api.ProgressReport{WorkerID: w1.ID, Progress: api.ProgressEvent{Iter: 500}}, &ack); status != http.StatusOK || !ack.Cancel {
		t.Fatalf("progress after cancel: status %d ack %+v", status, ack)
	}
	var hb api.HeartbeatAck
	postJSON(t, srv.URL+api.InternalPrefix+"/workers/"+w1.ID+"/heartbeat", struct{}{}, &hb)
	if len(hb.CancelledLeases) != 1 || hb.CancelledLeases[0] != grant.Lease.ID {
		t.Fatalf("heartbeat ack = %+v", hb)
	}

	doneURL := srv.URL + api.InternalPrefix + "/leases/" + grant.Lease.ID + "/complete"
	if status := postJSON(t, doneURL, api.CompleteReport{WorkerID: w1.ID, Error: "cancelled"}, nil); status != http.StatusNoContent {
		t.Fatalf("complete: status %d", status)
	}
	var view api.JobStatus
	getJSON(t, srv.URL+"/v1/jobs/"+jobID, &view)
	if view.State != api.StateCancelled || view.Error != "cancelled" {
		t.Fatalf("final = %+v", view)
	}
}

// TestCancelWhileLeasedThenExpiry: a cancel-requested job whose worker
// dies is terminated as cancelled, never re-leased.
func TestCancelWhileLeasedThenExpiry(t *testing.T) {
	ttl := 10 * time.Second
	c, srv, clock := newTestCoordinator(t, Config{LeaseTTL: ttl, PollWindow: 2 * time.Second})
	w1 := registerWorker(t, srv.URL, "cancellee")
	jobID := submitJob(t, srv.URL, 47)
	leaseNext(t, srv.URL, w1.ID)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+jobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	clock.Advance(ttl + time.Millisecond)
	c.expireScan()

	var view api.JobStatus
	getJSON(t, srv.URL+"/v1/jobs/"+jobID, &view)
	if view.State != api.StateCancelled || view.Error != "cancelled" {
		t.Fatalf("final = %+v", view)
	}
}

// TestLeaseRequiresRegistration: lease and heartbeat calls from
// unknown workers answer typed unknown_worker.
func TestLeaseRequiresRegistration(t *testing.T) {
	_, srv, _ := newTestCoordinator(t, Config{LeaseTTL: time.Minute, PollWindow: 200 * time.Millisecond})
	if status, code := errorCode(t, srv.URL+api.InternalPrefix+"/leases", api.LeaseRequest{WorkerID: "w-9999"}); status != http.StatusNotFound || code != api.CodeUnknownWorker {
		t.Fatalf("lease unregistered: %d %s", status, code)
	}
}

// TestEmptyQueueLongPoll: with nothing runnable the lease poll answers
// 204 after the window.
func TestEmptyQueueLongPoll(t *testing.T) {
	_, srv, _ := newTestCoordinator(t, Config{LeaseTTL: time.Minute, PollWindow: 150 * time.Millisecond})
	w1 := registerWorker(t, srv.URL, "idle")
	if _, status := leaseNext(t, srv.URL, w1.ID); status != http.StatusNoContent {
		t.Fatalf("empty poll: status %d, want 204", status)
	}
}

// TestMetricsExposition: the coordinator's gauges ride on /metrics.
func TestMetricsExposition(t *testing.T) {
	c, srv, clock := newTestCoordinator(t, Config{LeaseTTL: 10 * time.Second, PollWindow: 2 * time.Second})
	w1 := registerWorker(t, srv.URL, "metrics")
	submitJob(t, srv.URL, 53)
	leaseNext(t, srv.URL, w1.ID)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(blob)
	for _, want := range []string{
		"mcmcd_workers_connected 1",
		"mcmcd_workers_lost 0",
		"mcmcd_leases_active 1",
		"mcmcd_leases_granted_total 1",
		"mcmcd_lease_expiries_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	clock.Advance(10*time.Second + time.Millisecond)
	c.expireScan()
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text = string(blob)
	for _, want := range []string{
		"mcmcd_workers_connected 0",
		"mcmcd_workers_lost 1",
		"mcmcd_leases_active 0",
		"mcmcd_lease_expiries_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics after expiry missing %q", want)
		}
	}
}
