package coordinator

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/pkg/api"
	"repro/pkg/service"
)

// Register mounts the full coordinator surface on mux: the unchanged
// public /v1 API (via the embedded manager), the worker registry view
// at /v1/nodes, and the internal worker protocol under /internal/v1.
func (c *Coordinator) Register(mux *http.ServeMux) {
	c.m.Register(mux)
	mux.Handle(api.Prefix+"/nodes", service.Methods{http.MethodGet: c.nodes})
	mux.Handle(api.InternalPrefix+"/workers", service.Methods{http.MethodPost: c.register})
	mux.HandleFunc(api.InternalPrefix+"/workers/", c.workerSubtree)
	mux.Handle(api.InternalPrefix+"/leases", service.Methods{http.MethodPost: c.leaseNext})
	mux.HandleFunc(api.InternalPrefix+"/leases/", c.leaseSubtree)
}

// Handler returns a standalone handler serving the coordinator (a
// fresh mux with Register applied) — what the in-process tests mount.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

// decodeInto strict-decodes a bounded JSON body.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, service.MaxBodyBytes))
	if err != nil {
		service.WriteError(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			"body exceeds %d bytes", service.MaxBodyBytes)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		service.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding body: %v", err)
		return false
	}
	return true
}

// register admits a worker into the registry and hands it its identity
// plus the liveness contract.
func (c *Coordinator) register(w http.ResponseWriter, r *http.Request) {
	var req api.WorkerRegistration
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Slots <= 0 {
		req.Slots = 1
	}
	now := c.now()
	c.mu.Lock()
	c.workerSeq++
	ws := &workerState{
		id:         fmt.Sprintf("w-%04d", c.workerSeq),
		name:       req.Name,
		slots:      req.Slots,
		registered: now,
		lastBeat:   now,
	}
	c.workers[ws.id] = ws
	c.mu.Unlock()
	c.logf("coordinator: worker %s registered (%s, %d slots)", ws.id, ws.name, ws.slots)
	service.WriteJSON(w, http.StatusCreated, api.WorkerIdentity{
		ID:               ws.id,
		LeaseTTLSeconds:  c.cfg.LeaseTTL.Seconds(),
		HeartbeatSeconds: (c.cfg.LeaseTTL / 3).Seconds(),
	})
}

// workerSubtree routes /internal/v1/workers/{id}/heartbeat.
func (c *Coordinator) workerSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, api.InternalPrefix+"/workers/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || sub != "heartbeat" {
		service.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no route %s", r.URL.Path)
		return
	}
	service.Methods{http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
		c.heartbeat(w, id)
	}}.ServeHTTP(w, r)
}

// heartbeat renews a worker's leases and delivers pending cancel
// signals. Lost (or never-registered) workers get unknown_worker and
// must re-register — their old leases are already expired or expiring.
func (c *Coordinator) heartbeat(w http.ResponseWriter, id string) {
	c.mu.Lock()
	ws, ok := c.workers[id]
	if !ok || ws.lost {
		c.mu.Unlock()
		service.WriteError(w, http.StatusNotFound, api.CodeUnknownWorker,
			"unknown worker %q (re-register)", id)
		return
	}
	ws.lastBeat = c.now()
	var cancelled []string
	for _, l := range c.leases {
		if l.workerID == id && l.cancelled {
			cancelled = append(cancelled, l.id)
		}
	}
	c.mu.Unlock()
	sort.Strings(cancelled)
	service.WriteJSON(w, http.StatusOK, api.HeartbeatAck{CancelledLeases: cancelled})
}

// leaseNext is the lease long-poll: it blocks until a runnable job
// exists (grant, 200), the poll window elapses (204), or the
// coordinator shuts down (503).
func (c *Coordinator) leaseNext(w http.ResponseWriter, r *http.Request) {
	var req api.LeaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[req.WorkerID]
	lost := ok && ws.lost
	c.mu.Unlock()
	if !ok || lost {
		service.WriteError(w, http.StatusNotFound, api.CodeUnknownWorker,
			"unknown worker %q (re-register)", req.WorkerID)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.PollWindow)
	defer cancel()
	for {
		job, err := c.r.Next(ctx)
		switch {
		case errors.Is(err, service.ErrStopped):
			service.WriteError(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "%v", err)
			return
		case err != nil: // poll window elapsed or client gone
			w.WriteHeader(http.StatusNoContent)
			return
		}
		// Snapshot the grant payload before the claim publishes the
		// running state.
		rec, checkpoint, restarted := c.r.Describe(job)
		l, ok := c.grant(job, req.WorkerID)
		if !ok {
			continue // cancelled while queued; poll for another
		}
		c.logf("coordinator: lease %s: %s -> %s", l.id, l.jobID, req.WorkerID)
		service.WriteJSON(w, http.StatusOK, api.LeaseGrant{
			Lease:           api.Lease{ID: l.id, JobID: l.jobID, WorkerID: req.WorkerID},
			Record:          rec,
			Checkpoint:      checkpoint,
			Restarted:       restarted,
			CheckpointEvery: c.m.CheckpointInterval(),
		})
		return
	}
}

// leaseSubtree routes /internal/v1/leases/{id}/progress|complete.
func (c *Coordinator) leaseSubtree(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, api.InternalPrefix+"/leases/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "progress" && sub != "complete") {
		service.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no route %s", r.URL.Path)
		return
	}
	service.Methods{http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
		switch sub {
		case "progress":
			c.progress(w, r, id)
		case "complete":
			c.complete(w, r, id)
		}
	}}.ServeHTTP(w, r)
}

// progress feeds one worker-reported snapshot into the job's SSE
// fan-out and counters, and tells the worker whether to cancel.
func (c *Coordinator) progress(w http.ResponseWriter, r *http.Request, id string) {
	var req api.ProgressReport
	if !decodeInto(w, r, &req) {
		return
	}
	l := c.lookupLease(id, req.WorkerID)
	if l == nil {
		service.WriteError(w, http.StatusGone, api.CodeLeaseExpired,
			"lease %q is not held by %q (expired or re-leased); abandon the run", id, req.WorkerID)
		return
	}
	c.r.Observe(l.job, req.Progress)
	c.mu.Lock()
	cancelled := l.cancelled
	c.mu.Unlock()
	service.WriteJSON(w, http.StatusOK, api.ProgressAck{Cancel: cancelled})
}

// complete lands a worker-reported terminal outcome and releases the
// lease.
func (c *Coordinator) complete(w http.ResponseWriter, r *http.Request, id string) {
	var req api.CompleteReport
	if !decodeInto(w, r, &req) {
		return
	}
	l := c.lookupLease(id, req.WorkerID)
	if l == nil {
		service.WriteError(w, http.StatusGone, api.CodeLeaseExpired,
			"lease %q is not held by %q (expired or re-leased); discard the result", id, req.WorkerID)
		return
	}
	c.completeLease(l)
	c.r.Complete(l.job, req.Result, req.Error)
	w.WriteHeader(http.StatusNoContent)
}

// nodes serves GET /v1/nodes: the worker registry, sorted by ID.
func (c *Coordinator) nodes(w http.ResponseWriter, r *http.Request) {
	now := c.now()
	c.mu.Lock()
	views := make([]api.NodeView, 0, len(c.workers))
	for _, ws := range c.workers {
		v := api.NodeView{
			ID:                      ws.id,
			Name:                    ws.name,
			State:                   api.NodeAlive,
			Slots:                   ws.slots,
			RegisteredAt:            ws.registered,
			LastHeartbeatAgeSeconds: now.Sub(ws.lastBeat).Seconds(),
			JobsCompleted:           ws.completed,
		}
		if ws.lost {
			v.State = api.NodeLost
		}
		for _, l := range c.leases {
			if l.workerID == ws.id {
				v.Leases = append(v.Leases, l.jobID)
			}
		}
		sort.Strings(v.Leases)
		views = append(views, v)
	}
	c.mu.Unlock()
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	service.WriteJSON(w, http.StatusOK, views)
}

// writeMetrics appends the coordinator's gauges to /metrics (installed
// via Manager.AddMetrics).
func (c *Coordinator) writeMetrics(w io.Writer) {
	c.mu.Lock()
	var alive, lost int
	for _, ws := range c.workers {
		if ws.lost {
			lost++
		} else {
			alive++
		}
	}
	active := len(c.leases)
	granted, expiries := c.leasesGranted, c.leaseExpiries
	c.mu.Unlock()
	fmt.Fprintf(w, "# HELP mcmcd_workers_connected Registered workers currently heartbeating.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_workers_connected gauge\n")
	fmt.Fprintf(w, "mcmcd_workers_connected %d\n", alive)
	fmt.Fprintf(w, "# HELP mcmcd_workers_lost Workers marked lost after missing heartbeats.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_workers_lost gauge\n")
	fmt.Fprintf(w, "mcmcd_workers_lost %d\n", lost)
	fmt.Fprintf(w, "# HELP mcmcd_leases_active Jobs currently leased to workers.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_leases_active gauge\n")
	fmt.Fprintf(w, "mcmcd_leases_active %d\n", active)
	fmt.Fprintf(w, "# HELP mcmcd_leases_granted_total Leases granted since start (re-leases included).\n")
	fmt.Fprintf(w, "# TYPE mcmcd_leases_granted_total counter\n")
	fmt.Fprintf(w, "mcmcd_leases_granted_total %d\n", granted)
	fmt.Fprintf(w, "# HELP mcmcd_lease_expiries_total Leases expired after their worker went silent.\n")
	fmt.Fprintf(w, "# TYPE mcmcd_lease_expiries_total counter\n")
	fmt.Fprintf(w, "mcmcd_lease_expiries_total %d\n", expiries)
}
