// Package coordinator is the control-plane half of distributed mcmcd
// (cf. an operator vs per-node daemons): it owns the durable job
// queue and spool through an externally-run pkg/service Manager,
// serves the unchanged public /v1 API, and adds the internal worker
// protocol under /internal/v1 — registration, heartbeats, lease
// grants, streamed progress and completion (wire types in pkg/api).
//
// Liveness and re-lease: a worker's leases are covered by its
// heartbeat. When the last heartbeat ages past the lease TTL the
// worker is marked lost and each of its leases expires — the job goes
// back to the runnable set via Remote.Requeue, resuming from its
// latest spooled checkpoint (or from scratch with Restarted flagged).
// Because checkpoints resume bit-identically and every checkpoint of
// the same (options, seed) chain is a state of the same trajectory,
// worker death never changes a result — and a not-actually-dead
// "orphan" worker still writing checkpoints is harmless, because its
// writes are atomic and describe the very trajectory the replacement
// runs. Orphans learn to stop the moment they report: progress or
// completion under an expired lease answers a typed lease_expired.
//
// The registry is in-memory: after a coordinator restart workers get
// unknown_worker on their next heartbeat and re-register under fresh
// IDs, while interrupted jobs are recovered from the spool exactly as
// a standalone restart would. GET /v1/nodes exposes the registry
// (`mcmcctl node ls`), and /metrics grows lease/worker gauges.
package coordinator
