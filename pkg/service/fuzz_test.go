package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/testcorpus"
	"repro/pkg/api"
)

// assertEnvelope renders a decoder error exactly the way the HTTP layer
// does and pins the wire guarantee: every 4xx body is a valid JSON
// ErrorEnvelope with a non-empty machine-readable code and message, no
// matter how hostile the input that produced it.
func assertEnvelope(t *testing.T, aerr *apiError) {
	t.Helper()
	rec := httptest.NewRecorder()
	writeError(rec, aerr.status, aerr.code, "%s", aerr.msg)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response content type %q", ct)
	}
	var env api.ErrorEnvelope
	dec := json.NewDecoder(rec.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("error body is not a valid envelope: %v", err)
	}
	if env.Code == "" || env.Message == "" {
		t.Fatalf("envelope missing code or message: %+v", env)
	}
}

// FuzzDecodeSubmit pins the satellite guarantee on the API request
// decoders: arbitrary bytes under every content-type branch must never
// panic and must only ever produce typed 4xx errors. `go test` runs
// the seed corpus; `go test -fuzz FuzzDecodeSubmit ./pkg/service`
// explores further. The seed corpus is shared with the E2E malformed
// sweep (test/e2e case C00301) via internal/testcorpus, so every entry
// is also replayed against a live daemon.
func FuzzDecodeSubmit(f *testing.F) {
	for _, e := range testcorpus.Submit() {
		f.Add(e.ContentType, e.Body, e.RawQuery)
	}

	f.Fuzz(func(t *testing.T, ct string, body []byte, rawQuery string) {
		if len(body) > 1<<20 {
			t.Skip("oversized fuzz input")
		}
		q, err := url.ParseQuery(rawQuery)
		if err != nil {
			q = nil
		}
		spec, aerr := decodeSubmit(ct, body, q)
		switch {
		case aerr != nil:
			if aerr.status < 400 || aerr.status > 499 {
				t.Fatalf("non-4xx decoder error %d (%s)", aerr.status, aerr.msg)
			}
			if aerr.code == "" {
				t.Fatalf("decoder error without machine-readable code (%s)", aerr.msg)
			}
			if spec != nil {
				t.Fatal("spec returned alongside an error")
			}
			assertEnvelope(t, aerr)
		case spec == nil:
			t.Fatal("nil spec without error")
		default:
			// An accepted submission must be self-consistent: a usable
			// input and validated options.
			if spec.scene == nil && spec.pix == nil {
				t.Fatal("accepted submission with no input")
			}
			if spec.pix != nil && len(spec.pix) != spec.w*spec.h {
				t.Fatalf("accepted %dx%d image with %d pixels", spec.w, spec.h, len(spec.pix))
			}
			if !(spec.opt.MeanRadius > 0) { // also rejects NaN
				t.Fatal("accepted options without a positive finite mean radius")
			}
			if !isFinite(spec.opt.MeanRadius, spec.opt.ExpectedCount, spec.opt.Threshold,
				spec.opt.GridSlack, spec.opt.OverlapPenalty, spec.opt.HeatStep) {
				t.Fatal("accepted non-finite option value")
			}
		}
	})
}

// FuzzPGMDims pins the header pre-scan specifically: it must agree
// with "parses or not" on arbitrary bytes and never report non-positive
// dimensions as success.
func FuzzPGMDims(f *testing.F) {
	f.Add([]byte("P5 8 8 255\n"))
	f.Add([]byte("P5\t#c\n8\r8 65535 "))
	f.Add([]byte("P5 -3 8 255\n"))
	f.Add([]byte("P5 99999999999999999999 8 255\n"))
	f.Add([]byte("#only a comment"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, body []byte) {
		w, h, aerr := pgmDims(body)
		if aerr == nil && (w <= 0 || h <= 0) {
			t.Fatalf("accepted dimensions %dx%d", w, h)
		}
		if aerr != nil {
			if aerr.status != http.StatusBadRequest {
				t.Fatalf("status %d", aerr.status)
			}
			assertEnvelope(t, aerr)
		}
	})
}
