package service

import (
	"encoding/json"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

// event is one SSE payload broadcast to a job's subscribers.
type event struct {
	name string
	data []byte
}

// convWindow bounds the per-job ring of streamed log-posterior samples
// the diag endpoint computes R̂/ESS over.
const convWindow = 1024

// Job is one queued or running detection. All mutable fields are
// guarded by mu; the input (scene/upload bytes/decoded pixels), seed
// and options are immutable after construction.
type Job struct {
	id   string
	seed uint64
	spec api.OptionsSpec
	opt  parmcmc.Options // resolved, Seed set to seed

	// scene/ext are immutable; input and pix are released (under mu)
	// once the job is terminal — the spool keeps the bytes, so a
	// daemon that has served many uploads does not retain every pixel
	// buffer for the life of the process.
	scene *api.SceneSpec
	input []byte
	ext   string
	pix   []float64
	w, h  int

	// spoolMu serializes this job's spool-record writes (Submit's
	// pending record vs the worker's terminal record).
	spoolMu sync.Mutex

	mu sync.Mutex
	// resume, when non-nil, is the spooled checkpoint the job's next
	// run continues from: set at recovery for interrupted jobs, and at
	// re-lease (Remote.Requeue) for jobs whose worker died.
	resume *parmcmc.Checkpoint
	// resumeBlob is resume's encoded form, retained only under an
	// external manager: lease grants ship the exact spooled bytes to
	// the worker instead of re-encoding.
	resumeBlob []byte
	// restarted marks a job recovered or re-leased without a usable
	// checkpoint: its prior iterations are lost and the run starts
	// over from zero. Exposed on the wire (JobStatus.Restarted) so
	// streaming clients rewind their progress watermark instead of
	// suppressing the whole re-run.
	restarted bool
	// worker is the ID of the worker holding the job's lease
	// (coordinator role only; empty standalone, while queued, and
	// after a re-lease until the next grant).
	worker          string
	state           api.JobState
	submitted       time.Time
	started         time.Time
	finished        time.Time
	progress        *parmcmc.Progress
	conv            *stats.Stream // streamed log-posterior window for diag
	lastIter        int64
	resultJSON      json.RawMessage
	errMsg          string
	cancelRequested bool
	cancel          func()
	subs            map[chan event]struct{}
	done            chan struct{} // closed on entering a terminal state
}

func newJob(id string, seed uint64, spec *jobSpec, submitted time.Time) *Job {
	opt := spec.opt
	opt.Seed = seed
	wireSpec := spec.spec
	wireSpec.Seed = seed
	return &Job{
		id: id, seed: seed, spec: wireSpec, opt: opt,
		scene: spec.scene, input: spec.input, ext: spec.ext,
		pix: spec.pix, w: spec.w, h: spec.h,
		state: api.StatePending, submitted: submitted,
		conv: stats.NewStream(convWindow),
		subs: make(map[chan event]struct{}),
		done: make(chan struct{}),
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Seed returns the seed the job runs with (the per-job derived seed
// when the submission left it zero).
func (j *Job) Seed() uint64 { return j.seed }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// pixels materialises the job's input image: the decoded upload, or
// the deterministic synthesis of its scene spec.
func (j *Job) pixels() ([]float64, int, int, error) {
	j.mu.Lock()
	pix, w, h := j.pix, j.w, j.h
	j.mu.Unlock()
	if pix != nil {
		return pix, w, h, nil
	}
	if j.scene != nil {
		ps, err := j.scene.ToParmcmc()
		if err != nil {
			// The decoder canonicalised the shape name at submit time, so
			// this can only mean a corrupted spool record.
			return nil, 0, 0, err
		}
		spix, _ := parmcmc.GenerateScene(ps)
		return spix, j.scene.W, j.scene.H, nil
	}
	return nil, 0, 0, errors.New("service: job has no input")
}

// releaseInput drops the decoded pixels and raw upload bytes. Called
// after the terminal spool writes: the job can never run again in this
// process, and recovery re-reads the spooled input file.
func (j *Job) releaseInput() {
	j.mu.Lock()
	j.pix = nil
	j.input = nil
	j.mu.Unlock()
}

// claim moves a pending job to running; it fails when the job was
// cancelled while queued. On success it returns the time the job spent
// queued (for the queue-wait histogram).
func (j *Job) claim(cancel func()) (time.Duration, bool) {
	return j.claimFor("", cancel)
}

// claimFor is claim with the leasing worker's identity attached (the
// coordinator path; standalone claims pass "").
func (j *Job) claimFor(worker string, cancel func()) (time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != api.StatePending {
		return 0, false
	}
	j.state = api.StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.worker = worker
	j.publishLocked("state", j.statusLocked())
	return j.started.Sub(j.submitted), true
}

// finishTerminal moves the job to a terminal state. resultJSON may be
// nil (failed/cancelled). Idempotent: only the first call wins. On the
// first call it returns the job's start→terminal wall clock (zero for
// jobs that never ran).
func (j *Job) finishTerminal(state api.JobState, resultJSON json.RawMessage, errMsg string) (time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return 0, false
	}
	j.state = state
	j.resultJSON = resultJSON
	j.errMsg = errMsg
	j.finished = time.Now()
	close(j.done)
	var ran time.Duration
	if !j.started.IsZero() {
		ran = j.finished.Sub(j.started)
	}
	return ran, true
}

// requestCancel cancels a pending job outright, or asks a running one
// to stop at its next chunk boundary. Terminal jobs are untouched.
// Returns whether the job moved to cancelled synchronously.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case api.StatePending:
		j.state = api.StateCancelled
		// Same wire contract as a running job cancelled by the manager
		// (see Manager.run): the queued path must not report an empty
		// Error for the same outcome.
		j.errMsg = "cancelled"
		j.finished = time.Now()
		close(j.done)
		j.publishLocked("state", j.statusLocked())
		return true
	case api.StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return false
}

func (j *Job) userCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// observe records a progress snapshot, returning the iteration delta
// since the previous one (for the manager's aggregate counters). Each
// finite log-posterior sample also feeds the job's convergence window.
func (j *Job) observe(p parmcmc.Progress) int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = &p
	if !math.IsNaN(p.LogPost) && !math.IsInf(p.LogPost, 0) {
		j.conv.Add(p.LogPost)
	}
	delta := j.accountItersLocked(p.Iter)
	j.publishLocked("progress", api.NewProgressEvent(p))
	return delta
}

// accountIters advances the job's iteration watermark and returns the
// delta this process actually performed. The first snapshot of a
// checkpoint-resumed job establishes the baseline instead — its Iter
// already includes every pre-crash iteration, which must not re-enter
// the aggregate counters.
func (j *Job) accountIters(iter int64) int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.accountItersLocked(iter)
}

func (j *Job) accountItersLocked(iter int64) int64 {
	if j.resume != nil && j.lastIter == 0 {
		j.lastIter = iter
		return 0
	}
	delta := iter - j.lastIter
	j.lastIter = iter
	return delta
}

// subscribe registers an SSE subscriber. Progress events are dropped
// when the subscriber's buffer is full (snapshots are self-contained);
// the terminal event is delivered via Done instead, so it cannot be
// lost.
func (j *Job) subscribe(buf int) chan event {
	ch := make(chan event, buf)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publish broadcasts an event to all subscribers.
func (j *Job) publish(name string, v any) {
	j.mu.Lock()
	j.publishLocked(name, v)
	j.mu.Unlock()
}

func (j *Job) publishLocked(name string, v any) {
	if len(j.subs) == 0 {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	ev := event{name: name, data: data}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, the next snapshot supersedes
		}
	}
}

// Status returns the job's wire representation.
func (j *Job) Status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() api.JobStatus {
	v := api.JobStatus{
		ID:        j.id,
		State:     j.state,
		Strategy:  j.spec.Strategy,
		Seed:      j.seed,
		Submitted: j.submitted,
		Result:    j.resultJSON,
		Error:     j.errMsg,
		Restarted: j.restarted,
		Worker:    j.worker,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.progress != nil {
		v.Progress = api.NewProgressEvent(*j.progress)
	}
	return v
}

// specTelemetry returns the speculative-executor telemetry of the
// job's latest progress snapshot; ok is false for jobs that never
// reported a speculation width (non-speculative strategies, or no
// progress yet). The metrics endpoint exports these as per-job gauges.
func (j *Job) specTelemetry() (width int, speedup float64, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.progress == nil || j.progress.SpecWidth == 0 {
		return 0, 0, false
	}
	return j.progress.SpecWidth, j.progress.SpecSpeedup, true
}

// Diag returns the job's chain diagnostics: the latest progress
// snapshot, streaming split-R̂/ESS over the recent log-posterior
// window, and — once the job is done — the result-level acceptance
// and swap rates plus per-region convergence.
func (j *Job) Diag() api.DiagView {
	j.mu.Lock()
	defer j.mu.Unlock()
	d := api.DiagView{
		ID:       j.id,
		State:    j.state,
		Strategy: j.spec.Strategy,
		Shape:    j.spec.Shape,
		Seed:     j.seed,
		Samples:  j.conv.Len(),
		RHat:     api.Float(j.conv.RHat()),
		ESS:      api.Float(j.conv.ESS()),
		Error:    j.errMsg,
	}
	if j.progress != nil {
		d.Progress = api.NewProgressEvent(*j.progress)
		d.SpecWidth = j.progress.SpecWidth
		d.SpecSpeedup = api.Float(j.progress.SpecSpeedup)
	}
	if j.state == api.StateDone && len(j.resultJSON) > 0 {
		var rv api.ResultView
		if err := json.Unmarshal(j.resultJSON, &rv); err == nil {
			d.AcceptRate = rv.AcceptRate
			d.GlobalRejectRate = rv.GlobalRejectRate
			d.LocalRejectRate = rv.LocalRejectRate
			d.SwapRate = rv.SwapRate
			d.Regions = rv.Regions
		}
	}
	return d
}
