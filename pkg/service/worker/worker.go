package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/pkg/api"
	"repro/pkg/parmcmc"
	"repro/pkg/service"
)

// Config configures a Worker.
type Config struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// SpoolDir is the shared spool — the same directory the
	// coordinator runs over. Inputs are read from it and checkpoints
	// written into it.
	SpoolDir string
	// Slots is how many jobs this worker runs concurrently (default 1).
	Slots int
	// Name labels the worker in `mcmcctl node ls` (default hostname).
	Name string
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
	// OnRegister, when set, observes every successful registration —
	// cmd/mcmcd prints its readiness line from it, and tests hook it.
	OnRegister func(api.WorkerIdentity)
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.Name == "" {
		if host, err := os.Hostname(); err == nil {
			c.Name = host
		} else {
			c.Name = "worker"
		}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// errLeaseExpired marks a run abandoned because the coordinator
// rejected its lease: the job belongs to someone else now.
var errLeaseExpired = errors.New("worker: lease expired")

// Worker leases jobs from a coordinator and runs them. Construct with
// New, drive with Run.
type Worker struct {
	cfg Config
	hc  *http.Client

	mu sync.Mutex
	id api.WorkerIdentity
	// running maps live lease IDs to their cancel hooks, so heartbeat
	// acks can stop cancelled runs at the next chunk boundary.
	running map[string]context.CancelFunc
}

// New builds a worker; it talks to no one until Run.
func New(cfg Config) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.Coordinator == "" {
		return nil, errors.New("worker: Coordinator URL is required")
	}
	if cfg.SpoolDir == "" {
		return nil, errors.New("worker: SpoolDir is required (the coordinator's shared spool)")
	}
	return &Worker{
		cfg: cfg,
		// No overall timeout: the lease long-poll is legitimately slow.
		hc:      &http.Client{},
		running: make(map[string]context.CancelFunc),
	}, nil
}

// Run registers with the coordinator and works until ctx is cancelled:
// one heartbeat loop plus Slots lease loops. It returns ctx.Err on
// shutdown — registration and transient coordinator outages are
// retried forever, because a stateless worker has nothing better to do
// than wait for its control plane.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(ctx)
	}()
	for i := 0; i < w.cfg.Slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.leaseLoop(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// identity returns the current registration.
func (w *Worker) identity() api.WorkerIdentity {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// register (re-)registers with backoff until it succeeds or ctx ends.
func (w *Worker) register(ctx context.Context) error {
	backoff := 250 * time.Millisecond
	for {
		var id api.WorkerIdentity
		status, _, err := w.do(ctx, api.InternalPrefix+"/workers",
			api.WorkerRegistration{Name: w.cfg.Name, Slots: w.cfg.Slots}, &id)
		if err == nil && status == http.StatusCreated {
			w.mu.Lock()
			w.id = id
			w.mu.Unlock()
			w.cfg.Logf("worker: registered as %s (heartbeat %gs, lease ttl %gs)",
				id.ID, id.HeartbeatSeconds, id.LeaseTTLSeconds)
			if w.cfg.OnRegister != nil {
				w.cfg.OnRegister(id)
			}
			return nil
		}
		if err == nil {
			err = fmt.Errorf("status %d", status)
		}
		w.cfg.Logf("worker: registration failed (%v), retrying in %v", err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

// heartbeatLoop beats at the coordinator-assigned cadence. An
// unknown_worker answer means the coordinator forgot us (restart):
// re-register under a fresh ID; runs under old leases die at their
// next progress report. Cancel signals in the ack stop the named runs.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		id := w.identity()
		interval := time.Duration(id.HeartbeatSeconds * float64(time.Second))
		if interval <= 0 {
			interval = time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
		var ack api.HeartbeatAck
		status, env, err := w.do(ctx, api.InternalPrefix+"/workers/"+id.ID+"/heartbeat", struct{}{}, &ack)
		switch {
		case ctx.Err() != nil:
			return
		case err != nil:
			w.cfg.Logf("worker: heartbeat: %v (coordinator down? retrying)", err)
		case status == http.StatusNotFound && env != nil && env.Code == api.CodeUnknownWorker:
			w.cfg.Logf("worker: coordinator forgot %s; re-registering", id.ID)
			if err := w.register(ctx); err != nil {
				return
			}
		case status != http.StatusOK:
			w.cfg.Logf("worker: heartbeat: unexpected status %d", status)
		default:
			for _, leaseID := range ack.CancelledLeases {
				w.stopRun(leaseID)
			}
		}
	}
}

// leaseLoop drives one slot: long-poll a lease, run it, repeat.
func (w *Worker) leaseLoop(ctx context.Context) {
	backoff := 250 * time.Millisecond
	for ctx.Err() == nil {
		id := w.identity()
		var grant api.LeaseGrant
		status, env, err := w.do(ctx, api.InternalPrefix+"/leases", api.LeaseRequest{WorkerID: id.ID}, &grant)
		switch {
		case ctx.Err() != nil:
			return
		case err == nil && status == http.StatusOK:
			backoff = 250 * time.Millisecond
			w.runLease(ctx, grant)
			continue
		case err == nil && status == http.StatusNoContent:
			backoff = 250 * time.Millisecond
			continue // empty poll window; ask again
		case err == nil && status == http.StatusNotFound && env != nil && env.Code == api.CodeUnknownWorker:
			// The heartbeat loop re-registers; wait for the fresh ID.
			select {
			case <-ctx.Done():
			case <-time.After(backoff):
			}
		default:
			if err == nil {
				err = fmt.Errorf("status %d", status)
			}
			w.cfg.Logf("worker: lease poll: %v, retrying in %v", err, backoff)
			select {
			case <-ctx.Done():
			case <-time.After(backoff):
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
		}
	}
}

// stopRun cancels the named run (client cancellation or abandonment).
func (w *Worker) stopRun(leaseID string) {
	w.mu.Lock()
	cancel := w.running[leaseID]
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// runLease executes one granted job: materialise from the shared
// spool, resume from the granted checkpoint if any, write new
// checkpoints, stream progress, and report the terminal outcome.
func (w *Worker) runLease(ctx context.Context, grant api.LeaseGrant) {
	lease := grant.Lease
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.running[lease.ID] = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.running, lease.ID)
		w.mu.Unlock()
	}()

	w.cfg.Logf("worker: lease %s: running %s (resume %v, restarted %v)",
		lease.ID, lease.JobID, len(grant.Checkpoint) > 0, grant.Restarted)

	raw, runErr := w.detect(runCtx, grant)
	switch {
	case errors.Is(runErr, errLeaseExpired):
		// The job is someone else's now; report nothing.
		w.cfg.Logf("worker: lease %s expired under us; run abandoned", lease.ID)
		return
	case runErr != nil && runCtx.Err() != nil && ctx.Err() != nil:
		// Whole-worker shutdown (SIGTERM): leave the job resumable —
		// the checkpoint is on disk and the lease will expire.
		w.cfg.Logf("worker: shutdown interrupted %s; checkpoint stays for re-lease", lease.JobID)
		return
	}
	report := api.CompleteReport{WorkerID: lease.WorkerID}
	switch {
	case runErr == nil:
		report.Result = raw
	case runCtx.Err() != nil && errors.Is(runErr, runCtx.Err()):
		// Stopped by a cancel signal: the client cancelled the job.
		report.Error = "cancelled"
	default:
		report.Error = runErr.Error()
	}
	w.complete(ctx, lease, report)
}

// detect runs the chain. It returns errLeaseExpired when the
// coordinator disowned the lease mid-run.
func (w *Worker) detect(ctx context.Context, grant api.LeaseGrant) (json.RawMessage, error) {
	pix, width, height, opt, err := service.MaterializeRecord(grant.Record, w.cfg.SpoolDir)
	if err != nil {
		return nil, err
	}
	runCtx, abandon := context.WithCancel(ctx)
	defer abandon()
	var expired bool

	opt.CheckpointEvery = grant.CheckpointEvery
	opt.OnCheckpoint = func(cp *parmcmc.Checkpoint) {
		blob, err := cp.MarshalBinary()
		if err != nil {
			w.cfg.Logf("worker: encoding checkpoint of %s: %v", grant.Record.ID, err)
			return
		}
		path := filepath.Join(w.cfg.SpoolDir, grant.Record.ID, api.SpoolCheckpointFile)
		if err := cliutil.WriteFileAtomic(path, blob, 0o644); err != nil {
			w.cfg.Logf("worker: checkpointing %s: %v", grant.Record.ID, err)
		}
	}
	opt.Observer = func(p parmcmc.Progress) {
		var ack api.ProgressAck
		status, env, perr := w.do(runCtx, api.InternalPrefix+"/leases/"+grant.Lease.ID+"/progress",
			api.ProgressReport{WorkerID: grant.Lease.WorkerID, Progress: *api.NewProgressEvent(p)}, &ack)
		switch {
		case perr != nil:
			// Transient coordinator outage: keep running and
			// checkpointing — liveness is the heartbeat's problem, and
			// a checkpointed run that finishes during an outage still
			// reports its completion with retries.
		case status == http.StatusGone && env != nil && env.Code == api.CodeLeaseExpired:
			expired = true
			abandon()
		case status == http.StatusOK && ack.Cancel:
			w.stopRun(grant.Lease.ID)
		}
	}

	var res *parmcmc.Result
	if len(grant.Checkpoint) > 0 {
		var cp parmcmc.Checkpoint
		if err := cp.UnmarshalBinary(grant.Checkpoint); err != nil {
			return nil, fmt.Errorf("worker: granted checkpoint: %w", err)
		}
		res, err = parmcmc.DetectResume(runCtx, pix, width, height, opt, &cp)
	} else {
		res, err = parmcmc.DetectContext(runCtx, pix, width, height, opt)
	}
	if expired {
		return nil, errLeaseExpired
	}
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(api.NewResultView(res))
	if err != nil {
		return nil, fmt.Errorf("worker: encoding result: %w", err)
	}
	return raw, nil
}

// complete reports the terminal outcome, riding out transient
// coordinator outages; a lease_expired answer means the re-leased copy
// owns the job and this result is discarded.
func (w *Worker) complete(ctx context.Context, lease api.Lease, report api.CompleteReport) {
	backoff := 250 * time.Millisecond
	for attempt := 0; attempt < 120; attempt++ {
		status, env, err := w.do(ctx, api.InternalPrefix+"/leases/"+lease.ID+"/complete", report, nil)
		switch {
		case ctx.Err() != nil:
			return
		case err == nil && status == http.StatusNoContent:
			w.cfg.Logf("worker: lease %s: %s complete", lease.ID, lease.JobID)
			return
		case err == nil && status == http.StatusGone && env != nil && env.Code == api.CodeLeaseExpired:
			w.cfg.Logf("worker: lease %s expired before completion; result discarded", lease.ID)
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
	w.cfg.Logf("worker: giving up completing lease %s (%s)", lease.ID, lease.JobID)
}

// do POSTs in as JSON and decodes a 2xx response into out (when
// non-nil) or a non-2xx body into the returned envelope.
func (w *Worker) do(ctx context.Context, path string, in, out any) (int, *api.ErrorEnvelope, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, service.MaxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode >= 300 {
		var env api.ErrorEnvelope
		if json.Unmarshal(blob, &env) == nil && env.Code != "" {
			env.Status = resp.StatusCode
			return resp.StatusCode, &env, nil
		}
		return resp.StatusCode, nil, nil
	}
	if out != nil && len(blob) > 0 {
		if err := json.Unmarshal(blob, out); err != nil {
			return resp.StatusCode, nil, err
		}
	}
	return resp.StatusCode, nil, nil
}
