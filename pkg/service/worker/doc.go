// Package worker is the data-plane half of distributed mcmcd: a
// stateless process that leases jobs from a coordinator (the internal
// /internal/v1 protocol, wire types in pkg/api) and runs them through
// pkg/parmcmc.
//
// Stateless means restart-safe by construction: everything durable —
// the job record, the input, every checkpoint — lives in the
// coordinator-owned shared spool. The worker writes checkpoints there
// (atomically, at the coordinator's configured cadence) and streams
// progress back so the coordinator's SSE fan-out keeps serving
// clients. If the worker dies, its heartbeat stops, the lease
// expires, and the coordinator re-leases the job from the last
// checkpoint the worker managed to write — the resumed chain is the
// same trajectory, so the final result is bit-identical.
//
// Liveness and orphan safety: a heartbeat loop beats at the cadence
// the coordinator assigned at registration. unknown_worker on a beat
// (coordinator restarted and lost its in-memory registry) triggers
// re-registration under a fresh ID; in-flight runs under old leases
// keep going only until their next progress report answers
// lease_expired, at which point the run is abandoned mid-flight and
// its result discarded — the re-leased copy elsewhere owns the job
// now. Abandonment is safe at any instant because checkpoint writes
// are atomic and every checkpoint of the same (options, seed) chain
// is a valid state of the same trajectory.
package worker
