package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/pkg/api"
	"repro/pkg/service"
	"repro/pkg/service/coordinator"
)

// newTestCluster starts a coordinator over a temp spool plus n workers
// running against it, and returns the coordinator's base URL.
func newTestCluster(t *testing.T, n int) string {
	t.Helper()
	c, err := coordinator.New(coordinator.Config{
		Service: service.Config{SpoolDir: t.TempDir(), Logf: t.Logf},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := c.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		registered := make(chan api.WorkerIdentity, 1)
		w, err := New(Config{
			Coordinator: srv.URL,
			SpoolDir:    c.Manager().SpoolDir(),
			Name:        "test-worker",
			Logf:        t.Logf,
			OnRegister:  func(id api.WorkerIdentity) { registered <- id },
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(ctx)
		select {
		case <-registered:
		case <-time.After(10 * time.Second):
			t.Fatal("worker never registered")
		}
	}
	return srv.URL
}

func submitJob(t *testing.T, url string, spec api.JobSpec) api.JobStatus {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var view api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func waitDone(t *testing.T, url, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view api.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.State.Terminal() {
			return view
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return api.JobStatus{}
}

// normalized decodes a terminal job's result and zeroes its wall-clock
// fields — the only legitimately run-dependent parts.
func normalized(t *testing.T, view api.JobStatus) api.ResultView {
	t.Helper()
	if view.State != api.StateDone {
		t.Fatalf("job %s state %q (error %q)", view.ID, view.State, view.Error)
	}
	var res api.ResultView
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatal(err)
	}
	res.ElapsedSeconds = 0
	for i := range res.Regions {
		res.Regions[i].Seconds = 0
	}
	return res
}

var testSpec = api.JobSpec{
	Scene: &api.SceneSpec{W: 96, H: 96, Count: 5, MeanRadius: 7, Noise: 0.05, Seed: 3},
	Options: api.OptionsSpec{
		Strategy: "sequential", MeanRadius: 7, Iterations: 40000, Seed: 7,
	},
}

// TestWorkerRunsJobBitIdentically is the worker's end-to-end check: a
// job submitted to a coordinator and executed by a worker.Run process
// lands with a result byte-identical to the same job run standalone.
func TestWorkerRunsJobBitIdentically(t *testing.T) {
	// Standalone reference: the unchanged in-process path.
	m, err := service.NewManager(service.Config{SpoolDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ref := httptest.NewServer(m.Handler())
	t.Cleanup(ref.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Stop(ctx)
	})
	want := waitDone(t, ref.URL, submitJob(t, ref.URL, testSpec).ID)
	if want.State != api.StateDone {
		t.Fatalf("reference job: state %q (error %q)", want.State, want.Error)
	}

	url := newTestCluster(t, 1)
	got := waitDone(t, url, submitJob(t, url, testSpec).ID)
	if got.State != api.StateDone {
		t.Fatalf("cluster job: state %q (error %q)", got.State, got.Error)
	}
	if got.Worker == "" {
		t.Errorf("cluster job has no worker attribution")
	}
	if g, w := normalized(t, got), normalized(t, want); !reflect.DeepEqual(g, w) {
		t.Errorf("cluster result differs from standalone:\n got %+v\nwant %+v", g, w)
	}

	// The registry reflects the run.
	resp, err := http.Get(url + "/v1/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nodes []api.NodeView
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Fatalf("nodes: got %d, want 1", len(nodes))
	}
	n := nodes[0]
	if n.State != api.NodeAlive || n.Name != "test-worker" || n.JobsCompleted != 1 || len(n.Leases) != 0 {
		t.Errorf("node view %+v: want alive test-worker with 1 completed, 0 leases", n)
	}
}

// TestWorkerSpreadsAcrossSlots checks two jobs land on a two-worker
// cluster and both complete.
func TestWorkerSpreadsAcrossSlots(t *testing.T) {
	url := newTestCluster(t, 2)
	a := submitJob(t, url, testSpec)
	b := submitJob(t, url, testSpec)
	va := waitDone(t, url, a.ID)
	vb := waitDone(t, url, b.ID)
	if va.State != api.StateDone || vb.State != api.StateDone {
		t.Fatalf("states %q/%q, want done/done", va.State, vb.State)
	}
	if ra, rb := normalized(t, va), normalized(t, vb); !reflect.DeepEqual(ra, rb) {
		t.Errorf("same-seed jobs diverged across workers:\n a %+v\n b %+v", ra, rb)
	}
}

// TestWorkerCancelMidRun checks a DELETE while the worker is running
// the job lands as a cancelled terminal state, via the progress-ack
// cancel path.
func TestWorkerCancelMidRun(t *testing.T) {
	url := newTestCluster(t, 1)
	spec := testSpec
	spec.Options.Iterations = 4_000_000 // long enough to catch mid-run
	view := submitJob(t, url, spec)

	// Wait for it to start running, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v api.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State == api.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %q)", v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+view.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	final := waitDone(t, url, view.ID)
	if final.State != api.StateCancelled {
		t.Fatalf("state %q (error %q), want cancelled", final.State, final.Error)
	}
}
