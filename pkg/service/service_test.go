package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/imaging"
	"repro/pkg/api"
	"repro/pkg/client"
	"repro/pkg/parmcmc"
)

// testScene is the shared small synthetic workload: fast enough for
// -race, big enough to exercise the chain.
var testScene = api.SceneSpec{W: 96, H: 96, Count: 5, MeanRadius: 7, Noise: 0.05, Seed: 3}

func testOptions(seed uint64, iters int) api.OptionsSpec {
	return api.OptionsSpec{Strategy: "sequential", MeanRadius: 7, Iterations: iters, Seed: seed}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Stop(ctx); err != nil {
			t.Errorf("Stop: %v", err)
		}
	})
	return m
}

func submitJSON(t *testing.T, url string, req api.JobSpec) api.JobStatus {
	t.Helper()
	view, status := trySubmitJSON(t, url, req)
	if status != http.StatusCreated {
		t.Fatalf("submit: status %d", status)
	}
	return view
}

func trySubmitJSON(t *testing.T, url string, req api.JobSpec) (api.JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view api.JobStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

func getJob(t *testing.T, url, id string) api.JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", id, resp.StatusCode)
	}
	var view api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func waitDone(t *testing.T, url, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		view := getJob(t, url, id)
		if view.State.Terminal() {
			return view
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return api.JobStatus{}
}

// normalizeResult zeroes the wall-clock fields, which are the only
// legitimately run-dependent parts of a api.ResultView.
func normalizeResult(v api.ResultView) api.ResultView {
	v.ElapsedSeconds = 0
	for i := range v.Regions {
		v.Regions[i].Seconds = 0
	}
	return v
}

// expectedView runs the same detection directly through parmcmc and
// returns its normalized wire form.
func expectedView(t *testing.T, scene api.SceneSpec, spec api.OptionsSpec) api.ResultView {
	t.Helper()
	opt, aerr := optionsFromSpec(&spec)
	if aerr != nil {
		t.Fatal(aerr)
	}
	ps, err := scene.ToParmcmc()
	if err != nil {
		t.Fatal(err)
	}
	pix, _ := parmcmc.GenerateScene(ps)
	res, err := parmcmc.Detect(pix, scene.W, scene.H, opt)
	if err != nil {
		t.Fatal(err)
	}
	return normalizeResult(api.NewResultView(res))
}

func decodeResult(t *testing.T, view api.JobStatus) api.ResultView {
	t.Helper()
	if view.State != api.StateDone {
		t.Fatalf("job %s state %q (error %q)", view.ID, view.State, view.Error)
	}
	var res api.ResultView
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// The acceptance-criteria test: N parallel clients, some sharing
// seeds, all get results bit-identical to serial parmcmc.Detect calls
// with the same options.
func TestConcurrentClientsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	m := newTestManager(t, Config{Workers: 4, QueueSize: 32})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Two clients share seed 7 (must agree with each other AND the
	// serial run); the rest have distinct seeds and one uses the
	// periodic strategy to cover a partitioned sampler over HTTP.
	specs := []api.OptionsSpec{
		testOptions(7, 30000),
		testOptions(7, 30000),
		testOptions(11, 30000),
		testOptions(13, 30000),
		{Strategy: "periodic", MeanRadius: 7, Iterations: 20000, Seed: 5, PartitionGrid: 2},
		testOptions(17, 30000),
	}
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			view, status := trySubmitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: specs[i]})
			if status != http.StatusCreated {
				t.Errorf("client %d: status %d", i, status)
				return
			}
			ids[i] = view.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, id := range ids {
		got := normalizeResult(decodeResult(t, waitDone(t, srv.URL, id)))
		want := expectedView(t, testScene, specs[i])
		if !reflect.DeepEqual(got, want) {
			t.Errorf("client %d (seed %d): daemon result differs from serial Detect\ngot  %+v\nwant %+v",
				i, specs[i].Seed, got, want)
		}
	}
}

// Submissions beyond queue capacity must get clean 429s while earlier
// jobs are unaffected.
func TestQueueFullBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	m := newTestManager(t, Config{Workers: 1, QueueSize: 1})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// A long job occupies the single worker...
	long := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(1, 5_000_000)})
	waitState := func(id string, st api.JobState) {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if getJob(t, srv.URL, id).State == st {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s never reached %q", id, st)
	}
	waitState(long.ID, api.StateRunning)

	// ...a second fills the queue...
	queued := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(2, 1000)})

	// ...and the third bounces with 429 + Retry-After.
	body, _ := json.Marshal(api.JobSpec{Scene: &testScene, Options: testOptions(3, 1000)})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submission: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Cancel both: the queued job terminates without ever running, the
	// long one stops at its next chunk boundary.
	for _, id := range []string{queued.ID, long.ID} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
		}
	}
	if v := waitDone(t, srv.URL, queued.ID); v.State != api.StateCancelled {
		t.Fatalf("queued job state %q after cancel", v.State)
	}
	if v := waitDone(t, srv.URL, long.ID); v.State != api.StateCancelled {
		t.Fatalf("running job state %q after cancel", v.State)
	}
}

// The SSE stream must deliver an initial snapshot, progress events and
// a final done event whose result matches the GET view.
func TestEventStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Long enough that the stream reliably attaches while the chain is
	// still running and sees mid-run progress snapshots.
	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(21, 500000)})
	resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := map[string]int{}
	var final api.JobStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var name string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
			events[name]++
		case strings.HasPrefix(line, "data: ") && name == "done":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
				t.Fatal(err)
			}
		}
		if final.ID != "" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events["state"] == 0 || events["done"] != 1 {
		t.Fatalf("event counts %v", events)
	}
	if events["progress"] == 0 {
		t.Fatalf("no progress events (got %v)", events)
	}
	got := normalizeResult(decodeResult(t, final))
	if polled := normalizeResult(decodeResult(t, getJob(t, srv.URL, view.ID))); !reflect.DeepEqual(got, polled) {
		t.Fatal("SSE final result differs from GET result")
	}
}

// A subscriber attaching after completion still gets the final event.
func TestEventStreamAfterCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(2, 2000)})
	waitDone(t, srv.URL, view.ID)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := readAllWithin(resp.Body, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "event: done") {
		t.Fatalf("no done event in:\n%s", blob)
	}
}

// readAllWithin reads until EOF or a deadline (SSE streams only close
// on the terminal event, so a missing event would otherwise hang).
func readAllWithin(r interface{ Read([]byte) (int, error) }, d time.Duration) ([]byte, error) {
	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		var buf bytes.Buffer
		_, err := buf.ReadFrom(r)
		ch <- result{buf.Bytes(), err}
	}()
	select {
	case res := <-ch:
		return res.data, res.err
	case <-time.After(d):
		return nil, fmt.Errorf("stream did not close within %v", d)
	}
}

// PGM and PNG uploads must land the exact result of detecting the
// decoded pixels directly.
func TestImageUpload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	m := newTestManager(t, Config{Workers: 2})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	ps, err := testScene.ToParmcmc()
	if err != nil {
		t.Fatal(err)
	}
	pix, _ := parmcmc.GenerateScene(ps)
	img := &imaging.Image{W: testScene.W, H: testScene.H, Pix: pix}
	var pgm, png bytes.Buffer
	if err := img.WritePGM(&pgm); err != nil {
		t.Fatal(err)
	}
	if err := img.WritePNG(&png); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, ct string
		body     []byte
	}{
		{"pgm", "image/x-portable-graymap", pgm.Bytes()},
		{"png", "image/png", png.Bytes()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			url := srv.URL + "/v1/jobs?radius=7&iters=20000&seed=9&strategy=sequential"
			resp, err := http.Post(url, tc.ct, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("status %d", resp.StatusCode)
			}
			var view api.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				t.Fatal(err)
			}
			got := normalizeResult(decodeResult(t, waitDone(t, srv.URL, view.ID)))

			// The daemon decoded the upload itself; reproduce that and
			// detect directly.
			spec, aerr := decodeSubmit(tc.ct, tc.body, map[string][]string{
				"radius": {"7"}, "iters": {"20000"}, "seed": {"9"}, "strategy": {"sequential"},
			})
			if aerr != nil {
				t.Fatal(aerr)
			}
			res, err := parmcmc.Detect(spec.pix, spec.w, spec.h, spec.opt)
			if err != nil {
				t.Fatal(err)
			}
			if want := normalizeResult(api.NewResultView(res)); !reflect.DeepEqual(got, want) {
				t.Fatalf("upload result differs from direct Detect\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

// Jobs that omit the seed must get the documented derived seed and a
// result reproducible from it.
func TestDerivedSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	m := newTestManager(t, Config{Workers: 2, BaseSeed: 42})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	a := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(0, 10000)})
	b := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(0, 10000)})
	if a.Seed == 0 || b.Seed == 0 || a.Seed == b.Seed {
		t.Fatalf("derived seeds %d, %d", a.Seed, b.Seed)
	}
	// The daemon's derivation IS the Runner's: job 1 under base seed 42
	// must agree with parmcmc's exported helper.
	if want := parmcmc.DeriveSeed(42, 1); a.Seed != want {
		t.Fatalf("first derived seed %d, want %d", a.Seed, want)
	}
	got := normalizeResult(decodeResult(t, waitDone(t, srv.URL, a.ID)))
	spec := testOptions(a.Seed, 10000)
	if want := expectedView(t, testScene, spec); !reflect.DeepEqual(got, want) {
		t.Fatal("derived-seed result not reproducible from the reported seed")
	}
}

// In-process restart durability: stop a manager mid-job and a new one
// over the same spool resumes from the checkpoint to the bit-identical
// result; finished jobs reappear read-only with their results intact.
func TestSpoolRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	spool := t.TempDir()
	spec := testOptions(31, 2_000_000)

	m1, err := NewManager(Config{Workers: 1, SpoolDir: spool, CheckpointEvery: 10000, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m1.Handler())
	quick := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(8, 1000)})
	quickDone := waitDone(t, srv.URL, quick.ID)
	long := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: spec})

	// Wait for a checkpoint, then stop the manager mid-job.
	ckpt := filepath.Join(spool, long.ID, spoolCheckpointFile)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if got := getRecordState(t, spool, long.ID); got.Terminal() {
		t.Fatalf("interrupted job recorded as %q", got)
	}

	// Restart over the same spool.
	m2 := newTestManager(t, Config{Workers: 1, SpoolDir: spool, CheckpointEvery: 10000})
	srv2 := httptest.NewServer(m2.Handler())
	defer srv2.Close()

	// The finished job is back, result intact.
	if v := getJob(t, srv2.URL, quick.ID); !reflect.DeepEqual(
		normalizeResult(decodeResult(t, v)), normalizeResult(decodeResult(t, quickDone))) {
		t.Fatal("finished job's result changed across restart")
	}

	// The interrupted job resumes to the exact uninterrupted result.
	got := normalizeResult(decodeResult(t, waitDone(t, srv2.URL, long.ID)))
	if want := expectedView(t, testScene, spec); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed result differs from uninterrupted run")
	}

	// New submissions must not collide with recovered ids.
	fresh := submitJSON(t, srv2.URL, api.JobSpec{Scene: &testScene, Options: testOptions(5, 1000)})
	if fresh.ID == quick.ID || fresh.ID == long.ID {
		t.Fatalf("id collision: %s", fresh.ID)
	}
}

// Upload jobs must survive a restart too: recovery re-decodes the
// spooled image bytes and takes options from the record (a regression
// test — recovery used to route through the query-parameter decoder,
// which rejected every recovered upload for its missing mean_radius).
func TestSpoolRecoveryUpload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	spool := t.TempDir()
	ps, err := testScene.ToParmcmc()
	if err != nil {
		t.Fatal(err)
	}
	pix, _ := parmcmc.GenerateScene(ps)
	var pgm bytes.Buffer
	if err := (&imaging.Image{W: testScene.W, H: testScene.H, Pix: pix}).WritePGM(&pgm); err != nil {
		t.Fatal(err)
	}

	m1, err := NewManager(Config{Workers: 1, SpoolDir: spool, CheckpointEvery: 10000, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m1.Handler())
	resp, err := http.Post(srv.URL+"/v1/jobs?radius=7&iters=2000000&seed=19", "image/x-portable-graymap", bytes.NewReader(pgm.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var view api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	ckpt := filepath.Join(spool, view.ID, spoolCheckpointFile)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Workers: 1, SpoolDir: spool, CheckpointEvery: 10000})
	srv2 := httptest.NewServer(m2.Handler())
	defer srv2.Close()
	got := normalizeResult(decodeResult(t, waitDone(t, srv2.URL, view.ID)))

	// The daemon detects the PGM-decoded (8-bit-quantized) pixels, not
	// the raw synthesis buffer — reproduce that decode for the reference.
	dpix, dw, dh, _, aerr := decodeImageBytes("", pgm.Bytes())
	if aerr != nil {
		t.Fatal(aerr)
	}
	res, err := parmcmc.Detect(dpix, dw, dh, parmcmc.Options{
		Strategy: parmcmc.Sequential, MeanRadius: 7, Iterations: 2000000, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := normalizeResult(api.NewResultView(res)); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered upload job's result differs from direct Detect")
	}

	// The restarted process only performed the post-checkpoint tail:
	// its aggregate counter must not re-count the pre-restart work.
	if total := m2.itersTotal.Load(); total >= 2000000 {
		t.Fatalf("resumed manager accounted %d iterations (double-counted the pre-crash run)", total)
	}
}

// An open SSE stream must not survive manager shutdown (it would
// otherwise pin http.Server.Shutdown for the whole drain budget).
func TestEventStreamEndsOnStop(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	m, err := NewManager(Config{Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(6, 5_000_000)})
	resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	stopped := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		stopped <- m.Stop(ctx)
	}()
	// The stream must reach EOF because of the stop, not because the
	// (5M-iteration) job finished.
	if _, err := readAllWithin(resp.Body, 30*time.Second); err != nil {
		t.Fatalf("SSE stream did not end on shutdown: %v", err)
	}
	if err := <-stopped; err != nil {
		t.Fatal(err)
	}
	if st := getJob(t, srv.URL, view.ID).State; st.Terminal() {
		t.Fatalf("shutdown-interrupted job reached terminal state %q", st)
	}
}

func getRecordState(t *testing.T, spool, id string) api.JobState {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join(spool, id, spoolRecordFile))
	if err != nil {
		t.Fatal(err)
	}
	var rec api.JobRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		t.Fatal(err)
	}
	return rec.State
}

// The whole lifecycle — manager, server, SSE subscribers, cancels —
// must not leak goroutines.
func TestNoGoroutineLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	before := runtime.NumGoroutine()

	func() {
		m, err := NewManager(Config{Workers: 2, QueueSize: 2, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(m.Handler())
		defer srv.Close()
		a := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(1, 5000)})
		b := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(2, 4_000_000)})
		// One SSE subscriber on each.
		for _, id := range []string{a.ID, b.ID} {
			resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
		}
		waitDone(t, srv.URL, a.ID)
		// Stop with the long job still running: it must be interrupted
		// and its worker drained.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Stop(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: before %d, after %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// API surface details: 404s, method checks, list endpoint, healthz and
// metrics exposition.
func TestAPIEndpoints(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(4, 500)})
	waitDone(t, srv.URL, view.ID)

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if status, body := get("/v1/jobs"); status != http.StatusOK || !strings.Contains(body, view.ID) {
		t.Fatalf("list: %d %s", status, body)
	}
	if status, _ := get("/v1/jobs/nope"); status != http.StatusNotFound {
		t.Fatalf("unknown job: %d", status)
	}
	if status, _ := get("/v1/jobs/" + view.ID + "/bogus"); status != http.StatusNotFound {
		t.Fatalf("bogus subresource: %d", status)
	}
	if status, body := get("/healthz"); status != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", status, body)
	}
	status, body := get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	for _, want := range []string{
		`mcmcd_jobs{state="done"} 1`,
		"mcmcd_queue_capacity 16",
		"mcmcd_workers 1",
		"mcmcd_iterations_total",
		"mcmcd_iterations_per_second",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// Method checks.
	if resp, err := http.Post(srv.URL+"/healthz", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /healthz: %d", resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/jobs/"+view.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("PUT job: %d", resp.StatusCode)
		}
	}

	// Cancelling a terminal job is a no-op that still returns the view.
	delReq, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+view.ID, nil)
	if resp, err := http.DefaultClient.Do(delReq); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE done job: %d", resp.StatusCode)
		}
	}
	if v := getJob(t, srv.URL, view.ID); v.State != api.StateDone {
		t.Fatalf("done job state changed to %q by cancel", v.State)
	}

	// Submissions after Stop get 503.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if _, status := trySubmitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(1, 100)}); status != http.StatusServiceUnavailable {
		t.Fatalf("submit after stop: %d", status)
	}
}

// A speculative job's executor telemetry must surface through both
// operator paths: the diag endpoint's spec_width/spec_speedup fields
// and the per-job mcmcd_spec_width/mcmcd_spec_speedup gauges on
// /metrics — and the exposition must parse back through pkg/client.
func TestSpecTelemetryDiagAndMetrics(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	spec := api.OptionsSpec{
		Strategy: "periodic+spec", MeanRadius: 7,
		Iterations: 6000, Seed: 3, PartitionGrid: 2,
	}
	view := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: spec})
	waitDone(t, srv.URL, view.ID)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/diag")
	if err != nil {
		t.Fatal(err)
	}
	var diag api.DiagView
	err = json.NewDecoder(resp.Body).Decode(&diag)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if diag.SpecWidth < 1 {
		t.Fatalf("diag spec_width = %d, want >= 1", diag.SpecWidth)
	}
	if diag.SpecSpeedup < 1 {
		t.Fatalf("diag spec_speedup = %v, want >= 1", diag.SpecSpeedup)
	}
	if diag.Progress == nil || diag.Progress.SpecWidth != diag.SpecWidth {
		t.Fatalf("diag progress does not carry the spec width: %+v", diag.Progress)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	parsed, err := client.ParseMetrics(buf.String())
	if err != nil {
		t.Fatalf("daemon exposition does not parse back: %v\n%s", err, buf.String())
	}
	widthKey := fmt.Sprintf("mcmcd_spec_width{job=%q}", view.ID)
	speedupKey := fmt.Sprintf("mcmcd_spec_speedup{job=%q}", view.ID)
	if got := parsed.Values[widthKey]; got != float64(diag.SpecWidth) {
		t.Fatalf("%s = %v, diag reports %d\n%s", widthKey, got, diag.SpecWidth, buf.String())
	}
	if got := parsed.Values[speedupKey]; got < 1 {
		t.Fatalf("%s = %v, want >= 1", speedupKey, got)
	}
}
