package service

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// histogram is a Prometheus-style cumulative histogram (the module has
// no dependencies, so the type is hand-rolled, but the exposition it
// writes is the standard text format any scraper — and the pkg/client
// parser — understands). Observations are lock-guarded; exposition
// takes a consistent snapshot.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1, last is the +Inf bucket
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// expBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous.
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum); ±Inf land in the edge buckets.
func (h *histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// write emits the histogram in Prometheus text exposition format:
// cumulative _bucket series ending in le="+Inf", then _sum and _count.
func (h *histogram) write(w io.Writer, name, help string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, n)
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// telemetry aggregates the daemon's request-path histograms.
type telemetry struct {
	// queueWait is submit→start latency in seconds.
	queueWait *histogram
	// jobDuration is start→terminal wall clock in seconds.
	jobDuration *histogram
	// iterLatency is seconds per chain iteration, observed per
	// progress chunk (chunk wall time / chunk iterations).
	iterLatency *histogram
}

func newTelemetry() *telemetry {
	return &telemetry{
		// 1ms … ~17min: queue waits from idle to deeply backlogged.
		queueWait: newHistogram(expBuckets(0.001, 4, 11)),
		// 10ms … ~45h: quick smoke jobs to the iteration cap.
		jobDuration: newHistogram(expBuckets(0.01, 4, 13)),
		// 10ns … ~0.6ms per iteration.
		iterLatency: newHistogram(expBuckets(1e-8, 4, 12)),
	}
}
