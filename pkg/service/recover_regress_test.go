package service

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/pkg/api"
)

// The cancel contract must not depend on WHERE the cancel landed:
// cancelled-while-queued and cancelled-while-running report the same
// state AND the same error string. The queued path used to leave Error
// empty, so clients saw two different wire shapes for one outcome.
func TestCancelErrorConsistentQueuedVsRunning(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueSize: 4})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	running := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(1, 100_000_000)})
	queued := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(2, 100_000_000)})

	// Let the first job claim the only worker, so the second stays
	// queued when its cancel arrives.
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, srv.URL, running.ID).State != api.StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	q := waitDone(t, srv.URL, queued.ID)
	r := waitDone(t, srv.URL, running.ID)
	if q.State != api.StateCancelled || r.State != api.StateCancelled {
		t.Fatalf("states %q / %q, want cancelled / cancelled", q.State, r.State)
	}
	if q.Error != "cancelled" || r.Error != "cancelled" {
		t.Fatalf("cancel errors diverge: queued %q vs running %q", q.Error, r.Error)
	}
}

// parseJobSeq must accept exactly "job-<digits>" — Sscanf-style parsing
// tolerated trailing garbage, letting a stray spool directory steal a
// live job's sequence number.
func TestParseJobSeqStrict(t *testing.T) {
	cases := []struct {
		id   string
		want uint64
		ok   bool
	}{
		{"job-00000012", 12, true},
		{"job-1", 1, true},
		{"job-00000000", 0, true},
		{"job-00000012x", 0, false},
		{"job-12.5", 0, false},
		{"job-12 ", 0, false},
		{"job- 12", 0, false},
		{"job-+12", 0, false},
		{"job--12", 0, false},
		{"job-1_2", 0, false},
		{"job-", 0, false},
		{"job-0x10", 0, false},
		{"batch-12", 0, false},
		{"job-99999999999999999999999", 0, false}, // uint64 overflow
	}
	for _, tc := range cases {
		var n uint64
		ok := parseJobSeq(tc.id, &n)
		if ok != tc.ok || (ok && n != tc.want) {
			t.Errorf("parseJobSeq(%q) = %d, %v; want %d, %v", tc.id, n, ok, tc.want, tc.ok)
		}
	}
}

// interruptRunningJob runs one spooled job long enough to claim a
// worker, then stops the manager mid-run (the daemon-shutdown path, so
// the spool stays resumable) and returns the job id.
func interruptRunningJob(t *testing.T, spool string, cfg Config, iters int) string {
	t.Helper()
	cfg.SpoolDir = spool
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	st := submitJSON(t, srv.URL, api.JobSpec{Scene: &testScene, Options: testOptions(77, iters)})
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, srv.URL, st.ID).State != api.StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// Recovery without a usable checkpoint must (a) restart the job from
// scratch, (b) mark it Restarted on the wire so streaming clients
// rewind their watermark, and (c) still land the bit-identical result.
// Covers both zero-coverage paths from the issue: no-checkpoint-yet and
// corrupt-checkpoint.
func TestScratchRecoveryMarksRestarted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	const iters = 400_000

	for _, tc := range []struct {
		name    string
		corrupt bool
	}{
		{"no_checkpoint_yet", false},
		{"corrupt_checkpoint", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spool := t.TempDir()
			// A checkpoint cadence beyond the job length means the crash
			// window never has a checkpoint; the corrupt variant writes
			// one and then mangles it.
			cfg := Config{Workers: 1, CheckpointEvery: 10 * iters}
			if tc.corrupt {
				cfg.CheckpointEvery = 10_000
			}
			id := interruptRunningJob(t, spool, cfg, iters)

			ckpt := filepath.Join(spool, id, spoolCheckpointFile)
			if tc.corrupt {
				if _, err := os.Stat(ckpt); err != nil {
					t.Fatalf("expected a checkpoint to corrupt: %v", err)
				}
				if err := os.WriteFile(ckpt, []byte("not a gob checkpoint"), 0o644); err != nil {
					t.Fatal(err)
				}
			} else if _, err := os.Stat(ckpt); err == nil {
				t.Fatal("test premise broken: a checkpoint exists")
			}

			m2 := newTestManager(t, Config{Workers: 1, SpoolDir: spool})
			srv := httptest.NewServer(m2.Handler())
			defer srv.Close()
			job, err := m2.Job(id)
			if err != nil {
				t.Fatal(err)
			}
			if !job.Status().Restarted {
				t.Fatal("recovered scratch-restart job not marked Restarted")
			}
			final := waitDone(t, srv.URL, id)
			if !final.Restarted {
				t.Fatal("Restarted flag lost by completion")
			}
			got := normalizeResult(decodeResult(t, final))
			if want := expectedView(t, testScene, testOptions(77, iters)); !reflect.DeepEqual(got, want) {
				t.Fatalf("scratch-restarted result differs from direct Detect\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

// A daemon upgraded across the checkpoint format change may find v1
// checkpoints in its spool. The compat contract: the v1 blob is
// rejected (never silently mis-decoded) and the job restarts from
// scratch, marked Restarted, and still completes correctly. The golden
// v1 fixture lives next to the format's own compat tests in
// pkg/parmcmc/testdata.
func TestRecoveryOverV1CheckpointRestartsFromScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	v1, err := os.ReadFile(filepath.Join("..", "parmcmc", "testdata", "checkpoint_v1.golden"))
	if err != nil {
		t.Fatalf("reading golden v1 checkpoint: %v", err)
	}
	const iters = 400_000
	spool := t.TempDir()
	id := interruptRunningJob(t, spool, Config{Workers: 1, CheckpointEvery: 10 * iters}, iters)
	if err := os.WriteFile(filepath.Join(spool, id, spoolCheckpointFile), v1, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Workers: 1, SpoolDir: spool})
	srv := httptest.NewServer(m2.Handler())
	defer srv.Close()
	job, err := m2.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if !job.Status().Restarted {
		t.Fatal("job recovered over a v1 checkpoint not marked Restarted")
	}
	got := normalizeResult(decodeResult(t, waitDone(t, srv.URL, id)))
	if want := expectedView(t, testScene, testOptions(77, iters)); !reflect.DeepEqual(got, want) {
		t.Fatalf("result after v1-checkpoint scratch restart differs\ngot  %+v\nwant %+v", got, want)
	}
}

// A checkpoint-resumed recovery must NOT be marked Restarted — the
// client's dedup depends on the distinction.
func TestCheckpointRecoveryNotMarkedRestarted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full chains")
	}
	spool := t.TempDir()
	id := interruptRunningJob(t, spool, Config{Workers: 1, CheckpointEvery: 10_000}, 2_000_000)
	if _, err := os.Stat(filepath.Join(spool, id, spoolCheckpointFile)); err != nil {
		t.Fatalf("no checkpoint to resume from: %v", err)
	}
	m2 := newTestManager(t, Config{Workers: 1, SpoolDir: spool, CheckpointEvery: 10_000})
	job, err := m2.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status().Restarted {
		t.Fatal("checkpoint-resumed job wrongly marked Restarted")
	}
}
