package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/imaging"
	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

// Request-size and workload guards: every limit turns a hostile input
// into a typed 4xx before it can allocate or burn CPU.
const (
	// MaxBodyBytes bounds an upload or JSON body.
	MaxBodyBytes = 32 << 20
	// maxImagePixels bounds decoded uploads and synthetic scenes.
	maxImagePixels = 1 << 24
	// maxSceneDim bounds one side of a synthetic scene.
	maxSceneDim = 4096
	// maxSceneCount bounds the artifact count of a synthetic scene.
	maxSceneCount = 10000
	// maxIterations bounds one job's chain length.
	maxIterations = 100_000_000
)

// apiError is a typed HTTP-mappable error: decoders return it for
// malformed input (4xx) and handlers translate it verbatim. The fuzz
// suite pins that decoders produce these — never panics — on arbitrary
// bytes.
type apiError struct {
	status int
	code   string // machine-readable api.Code* constant for the envelope
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

// jobSpec is a validated, normalized submission: the input (synthetic
// scene or decoded upload), the wire options (strategy canonicalised,
// mean radius resolved) and the corresponding parmcmc options.
type jobSpec struct {
	spec  api.OptionsSpec
	opt   parmcmc.Options
	scene *api.SceneSpec // synthetic input, pixels synthesized at run time
	input []byte         // raw uploaded bytes, spooled for crash recovery
	ext   string         // upload format: "png" or "pgm"
	pix   []float64      // decoded upload
	w, h  int
}

// decodeSubmit parses one POST /v1/jobs request — a JSON
// scene+options body, or a raw PNG/PGM upload with options in query
// parameters — into a validated jobSpec. All failures are typed 4xx
// apiErrors; arbitrary input must never panic.
func decodeSubmit(contentType string, body []byte, query url.Values) (*jobSpec, *apiError) {
	if isJSONSubmit(contentType, body) {
		return decodeJSONSubmit(body)
	}
	return decodeImageSubmit(contentType, body, query)
}

// isJSONSubmit decides the branch: an explicit JSON content type, or an
// unlabelled body whose first non-space byte is '{'.
func isJSONSubmit(contentType string, body []byte) bool {
	if mt := strings.TrimSpace(strings.Split(contentType, ";")[0]); mt == "application/json" {
		return true
	}
	if contentType == "" || contentType == "application/octet-stream" {
		trimmed := bytes.TrimLeft(body, " \t\r\n")
		return len(trimmed) > 0 && trimmed[0] == '{'
	}
	return false
}

func decodeJSONSubmit(body []byte) (*jobSpec, *apiError) {
	var req api.JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after JSON body")
	}
	if req.Scene == nil {
		return nil, badRequest("missing \"scene\" (image uploads send raw PNG/PGM bytes instead)")
	}
	sc := *req.Scene
	switch {
	case sc.W < 8 || sc.H < 8 || sc.W > maxSceneDim || sc.H > maxSceneDim:
		return nil, badRequest("scene dimensions %dx%d outside [8, %d]", sc.W, sc.H, maxSceneDim)
	case int64(sc.W)*int64(sc.H) > maxImagePixels:
		return nil, badRequest("scene exceeds %d pixels", maxImagePixels)
	case sc.Count < 0 || sc.Count > maxSceneCount:
		return nil, badRequest("scene count %d outside [0, %d]", sc.Count, maxSceneCount)
	case sc.MeanRadius <= 0 || sc.MeanRadius > float64(min(sc.W, sc.H)):
		return nil, badRequest("scene mean_radius %g outside (0, min(w,h)]", sc.MeanRadius)
	case sc.Noise < 0 || sc.Noise > 1:
		return nil, badRequest("scene noise %g outside [0, 1]", sc.Noise)
	case sc.Clusters < 0 || sc.Clusters > sc.Count:
		return nil, badRequest("scene clusters %d outside [0, count]", sc.Clusters)
	case !isFinite(sc.AxisRatio) || sc.AxisRatio < 0 || sc.AxisRatio > 1 ||
		(sc.AxisRatio != 0 && sc.AxisRatio < 0.5):
		// The synthesizer clamps effective ratios to [0.5, 1] (minor
		// axes must stay detectable); accepting a lower value would
		// silently produce a different scene than requested.
		return nil, badRequest("scene axis_ratio %g outside [0.5, 1] (0 = default)", sc.AxisRatio)
	}
	if sc.Shape != "" {
		shape, err := parmcmc.ParseShape(sc.Shape)
		if err != nil {
			return nil, badRequest("unknown scene shape %q", sc.Shape)
		}
		sc.Shape = shape.String()
	}
	if sc.AxisRatio != 0 && sc.Shape != parmcmc.Ellipses.String() {
		return nil, badRequest("scene axis_ratio requires shape \"ellipse\"")
	}
	spec := req.Options
	if spec.MeanRadius == 0 {
		spec.MeanRadius = sc.MeanRadius
	}
	if spec.Shape == "" {
		// Detection defaults to the scene's artifact family.
		spec.Shape = sc.Shape
	}
	opt, aerr := optionsFromSpec(&spec)
	if aerr != nil {
		return nil, aerr
	}
	return &jobSpec{spec: spec, opt: opt, scene: &sc}, nil
}

// decodeImageBytes sniffs and decodes a raw PNG/PGM body — shared by
// the upload handler and spool recovery (which re-decodes the stored
// bytes with the job's recorded options, never query parameters).
func decodeImageBytes(contentType string, body []byte) (pix []float64, w, h int, ext string, _ *apiError) {
	switch {
	case bytes.HasPrefix(body, []byte("\x89PNG\r\n\x1a\n")):
		cfg, err := png.DecodeConfig(bytes.NewReader(body))
		if err != nil {
			return nil, 0, 0, "", badRequest("invalid PNG: %v", err)
		}
		// int64 product: two in-bound sides can still overflow a 32-bit int.
		if cfg.Width <= 0 || cfg.Height <= 0 ||
			int64(cfg.Width)*int64(cfg.Height) > maxImagePixels {
			return nil, 0, 0, "", badRequest("PNG dimensions %dx%d exceed %d pixels", cfg.Width, cfg.Height, maxImagePixels)
		}
		img, err := png.Decode(bytes.NewReader(body))
		if err != nil {
			return nil, 0, 0, "", badRequest("invalid PNG: %v", err)
		}
		pix, w, h = parmcmc.GrayPixels(img)
		return pix, w, h, "png", nil
	case isPGM(body):
		pw, ph, aerr := pgmDims(body)
		if aerr != nil {
			return nil, 0, 0, "", aerr
		}
		if int64(pw)*int64(ph) > maxImagePixels {
			return nil, 0, 0, "", badRequest("PGM dimensions %dx%d exceed %d pixels", pw, ph, maxImagePixels)
		}
		img, err := imaging.ReadPGM(bytes.NewReader(body))
		if err != nil {
			return nil, 0, 0, "", badRequest("invalid PGM: %v", err)
		}
		return img.Pix, img.W, img.H, "pgm", nil
	default:
		return nil, 0, 0, "", &apiError{
			status: http.StatusUnsupportedMediaType,
			code:   api.CodeUnsupportedMedia,
			msg:    fmt.Sprintf("unsupported body (content type %q): want JSON {\"scene\":…}, PNG or PGM", contentType),
		}
	}
}

func decodeImageSubmit(contentType string, body []byte, query url.Values) (*jobSpec, *apiError) {
	pix, w, h, ext, aerr := decodeImageBytes(contentType, body)
	if aerr != nil {
		return nil, aerr
	}
	spec, aerr := optionsFromQuery(query)
	if aerr != nil {
		return nil, aerr
	}
	if spec.MeanRadius <= 0 {
		return nil, badRequest("image uploads require a positive mean_radius query parameter")
	}
	opt, aerr := optionsFromSpec(&spec)
	if aerr != nil {
		return nil, aerr
	}
	return &jobSpec{spec: spec, opt: opt, input: body, ext: ext, pix: pix, w: w, h: h}, nil
}

// isFinite rejects the float values JSON cannot express but query
// parameters can (strconv.ParseFloat accepts "NaN" and "Inf", which
// would sail through every ordered comparison below).
func isFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// isPGM reports whether body starts with a PGM magic followed by
// whitespace or a comment.
func isPGM(body []byte) bool {
	if len(body) < 3 || body[0] != 'P' || (body[1] != '5' && body[1] != '2') {
		return false
	}
	switch body[2] {
	case ' ', '\t', '\r', '\n', '#':
		return true
	}
	return false
}

// pgmDims parses just the width/height tokens of a PGM header, so the
// size guard runs before ReadPGM allocates the raster.
func pgmDims(body []byte) (w, h int, _ *apiError) {
	toks := make([]string, 0, 3)
	i := 0
	for len(toks) < 3 && i < len(body) {
		switch c := body[i]; {
		case c == '#':
			for i < len(body) && body[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		default:
			j := i
			for j < len(body) {
				c := body[j]
				if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '#' {
					break
				}
				j++
			}
			toks = append(toks, string(body[i:j]))
			i = j
		}
	}
	if len(toks) < 3 {
		return 0, 0, badRequest("truncated PGM header")
	}
	// toks[0] is the magic; 1 and 2 are width and height.
	w, err := strconv.Atoi(toks[1])
	if err != nil {
		return 0, 0, badRequest("bad PGM width %q", toks[1])
	}
	h, err = strconv.Atoi(toks[2])
	if err != nil {
		return 0, 0, badRequest("bad PGM height %q", toks[2])
	}
	// Bounding each side keeps the caller's w*h product far from int
	// overflow (the fuzzer found exactly that hole: two huge dimensions
	// whose product wrapped negative and sailed past the pixel guard).
	if w <= 0 || h <= 0 || w > maxImagePixels || h > maxImagePixels {
		return 0, 0, badRequest("invalid PGM dimensions %dx%d", w, h)
	}
	return w, h, nil
}

// optionsFromQuery parses detection options from URL query parameters
// (the upload path's equivalent of the JSON "options" object). Keys
// match the JSON field names, plus the mcmcimg flag aliases radius,
// count and iters.
func optionsFromQuery(q url.Values) (api.OptionsSpec, *apiError) {
	var spec api.OptionsSpec
	var aerr *apiError
	getF := func(keys ...string) float64 {
		for _, k := range keys {
			if v := q.Get(k); v != "" {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil && aerr == nil {
					aerr = badRequest("bad query parameter %s=%q", k, v)
				}
				return f
			}
		}
		return 0
	}
	getI := func(keys ...string) int {
		for _, k := range keys {
			if v := q.Get(k); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil && aerr == nil {
					aerr = badRequest("bad query parameter %s=%q", k, v)
				}
				return n
			}
		}
		return 0
	}
	spec.Strategy = q.Get("strategy")
	spec.Shape = q.Get("shape")
	spec.MeanRadius = getF("mean_radius", "radius")
	spec.ExpectedCount = getF("expected_count", "count")
	spec.Threshold = getF("threshold")
	spec.Iterations = getI("iterations", "iters")
	spec.Workers = getI("workers")
	if v := q.Get("seed"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil && aerr == nil {
			aerr = badRequest("bad query parameter seed=%q", v)
		}
		spec.Seed = s
	}
	spec.LocalPhaseIters = getI("local_phase_iters")
	spec.PartitionGrid = getI("partition_grid")
	spec.SpecWidth = getI("spec_width")
	spec.LocalSpecWidth = getI("local_spec_width")
	spec.GridSlack = getF("grid_slack")
	if v := q.Get("converge"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil && aerr == nil {
			aerr = badRequest("bad query parameter converge=%q", v)
		}
		spec.Converge = b
	}
	spec.OverlapPenalty = getF("overlap_penalty")
	spec.Chains = getI("chains")
	spec.HeatStep = getF("heat_step")
	spec.SwapEvery = getI("swap_every")
	if aerr != nil {
		return api.OptionsSpec{}, aerr
	}
	return spec, nil
}

// optionsFromSpec validates an api.OptionsSpec and maps it onto
// parmcmc.Options, canonicalising the strategy name in place — the
// normalized spec is what the spool records, and re-applying this
// function to the record must reproduce the original Options exactly.
func optionsFromSpec(spec *api.OptionsSpec) (parmcmc.Options, *apiError) {
	if spec.Strategy == "" {
		spec.Strategy = parmcmc.Sequential.String()
	}
	strat, err := parmcmc.ParseStrategy(spec.Strategy)
	if err != nil {
		return parmcmc.Options{}, badRequest("unknown strategy %q", spec.Strategy)
	}
	spec.Strategy = strat.String()
	if spec.Shape == "" {
		spec.Shape = parmcmc.Discs.String()
	}
	shape, err := parmcmc.ParseShape(spec.Shape)
	if err != nil {
		return parmcmc.Options{}, badRequest("unknown shape %q", spec.Shape)
	}
	spec.Shape = shape.String()
	switch {
	case !isFinite(spec.MeanRadius, spec.ExpectedCount, spec.Threshold,
		spec.GridSlack, spec.OverlapPenalty, spec.HeatStep):
		return parmcmc.Options{}, badRequest("non-finite option value")
	case spec.MeanRadius <= 0:
		return parmcmc.Options{}, badRequest("mean_radius must be positive")
	case spec.Iterations < 0 || spec.Iterations > maxIterations:
		return parmcmc.Options{}, badRequest("iterations %d outside [0, %d]", spec.Iterations, maxIterations)
	case spec.Workers < 0 || spec.Workers > 1024:
		return parmcmc.Options{}, badRequest("workers %d outside [0, 1024]", spec.Workers)
	case spec.ExpectedCount < 0 || spec.Threshold < 0 || spec.Threshold > 1:
		return parmcmc.Options{}, badRequest("expected_count/threshold out of range")
	case spec.LocalPhaseIters < 0 || spec.PartitionGrid < 0 || spec.PartitionGrid > 64 ||
		spec.SpecWidth < 0 || spec.LocalSpecWidth < 0 || spec.GridSlack < 0 ||
		spec.OverlapPenalty < 0 || spec.Chains < 0 || spec.Chains > 64 ||
		spec.HeatStep < 0 || spec.SwapEvery < 0:
		return parmcmc.Options{}, badRequest("option out of range")
	}
	return parmcmc.Options{
		Strategy:        strat,
		Shape:           shape,
		MeanRadius:      spec.MeanRadius,
		ExpectedCount:   spec.ExpectedCount,
		Threshold:       spec.Threshold,
		Iterations:      spec.Iterations,
		Workers:         spec.Workers,
		Seed:            spec.Seed,
		LocalPhaseIters: spec.LocalPhaseIters,
		PartitionGrid:   spec.PartitionGrid,
		SpecWidth:       spec.SpecWidth,
		LocalSpecWidth:  spec.LocalSpecWidth,
		GridSlack:       spec.GridSlack,
		Converge:        spec.Converge,
		OverlapPenalty:  spec.OverlapPenalty,
		Chains:          spec.Chains,
		HeatStep:        spec.HeatStep,
		SwapEvery:       spec.SwapEvery,
	}, nil
}
