package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

// Config configures a Manager.
type Config struct {
	// Workers bounds concurrently running jobs (default 2). Each job's
	// own options.workers additionally bounds its internal parallelism.
	Workers int
	// QueueSize bounds jobs waiting to run (default 16); submissions
	// beyond it fail with ErrQueueFull, which the API maps to 429.
	QueueSize int
	// SpoolDir enables durability: per-job subdirectories holding the
	// input, options, periodic checkpoints and the final result. Empty
	// disables spooling.
	SpoolDir string
	// BaseSeed seeds the per-job derivation for submissions that leave
	// options.seed zero (default 1).
	BaseSeed uint64
	// CheckpointEvery is the approximate number of chain iterations
	// between spooled checkpoints (default 25000). Ignored without a
	// SpoolDir.
	CheckpointEvery int
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
	// Role names the process role this manager serves under
	// ("standalone" default, "coordinator"); surfaced in /v1/version so
	// clients and operators can tell what they are talking to.
	Role string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 16
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 25000
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Role == "" {
		c.Role = "standalone"
	}
	return c
}

// Submission errors, mapped to HTTP statuses by the API layer.
var (
	// ErrQueueFull reports that the pending queue is at capacity (429).
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrStopped reports that the manager is shutting down (503).
	ErrStopped = errors.New("service: manager is stopped")
	// errNotFound reports an unknown job id (404).
	errNotFound = errors.New("service: no such job")
)

// Manager owns the job lifecycle: a bounded pending queue feeding a
// worker pool that drives parmcmc detections, with spool-backed
// durability and crash recovery. Construct with NewManager; always
// Stop it.
type Manager struct {
	cfg  Config
	pool *sched.Pool

	queue        chan *Job
	ctx          context.Context
	cancelRun    context.CancelFunc
	dispatchDone chan struct{}

	// external marks a manager whose jobs are run by external workers
	// through a Remote (see NewExternal) instead of the in-process
	// dispatcher; it changes only what recovery retains (checkpoint
	// blobs for lease grants), never the job lifecycle.
	external bool

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    uint64
	closed bool

	metricsMu    sync.Mutex
	extraMetrics []func(io.Writer)

	started    time.Time
	itersTotal atomic.Int64
	tel        *telemetry

	rateMu     sync.Mutex
	lastScrape time.Time
	lastIters  int64
}

// NewManager builds a manager, recovers any spooled jobs (terminal
// jobs are re-exposed read-only; interrupted ones are re-queued from
// their latest checkpoint) and starts the dispatcher.
func NewManager(cfg Config) (*Manager, error) {
	m, err := newManager(cfg, false)
	if err != nil {
		return nil, err
	}
	go m.dispatch()
	return m, nil
}

// NewExternal builds a manager whose jobs are executed by external
// worker processes instead of the in-process pool: nothing dequeues
// jobs except the returned Remote, which a coordinator drains to grant
// leases. Everything else — the /v1 API, the spool, SSE fan-out,
// recovery — behaves exactly as in NewManager.
func NewExternal(cfg Config) (*Manager, *Remote, error) {
	m, err := newManager(cfg, true)
	if err != nil {
		return nil, nil, err
	}
	// No dispatcher: the Remote is the sole consumer of the queue.
	close(m.dispatchDone)
	return m, newRemote(m), nil
}

func newManager(cfg Config, external bool) (*Manager, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:          cfg,
		pool:         sched.NewPool(cfg.Workers),
		external:     external,
		ctx:          ctx,
		cancelRun:    cancel,
		dispatchDone: make(chan struct{}),
		jobs:         make(map[string]*Job),
		started:      time.Now(),
		tel:          newTelemetry(),
	}
	recovered, err := m.recoverSpool()
	if err != nil {
		cancel()
		return nil, err
	}
	// The queue is sized to admit every recovered job on top of the
	// configured bound, so a restart can never lose work to its own
	// backpressure.
	m.queue = make(chan *Job, cfg.QueueSize+len(recovered))
	for _, job := range recovered {
		m.queue <- job
	}
	return m, nil
}

// AddMetrics registers an extra exposition block appended to the
// /metrics response — the coordinator adds its lease/worker gauges
// through it without the metrics handler knowing about roles.
func (m *Manager) AddMetrics(f func(io.Writer)) {
	m.metricsMu.Lock()
	m.extraMetrics = append(m.extraMetrics, f)
	m.metricsMu.Unlock()
}

// Submit validates nothing (its jobSpec is already validated by the
// decoder): it assigns an id and seed, spools the job and enqueues it.
func (m *Manager) Submit(spec *jobSpec) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrStopped
	}
	m.seq++
	id := fmt.Sprintf("job-%08d", m.seq)
	seed := spec.opt.Seed
	if seed == 0 {
		seed = parmcmc.DeriveSeed(m.cfg.BaseSeed, m.seq)
	}
	job := newJob(id, seed, spec, time.Now())
	// The channel's capacity is inflated by recovered jobs (see
	// NewManager); the configured bound is enforced here so the 429
	// contract holds for new submissions even right after a restart.
	if len(m.queue) >= m.cfg.QueueSize {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	select {
	case m.queue <- job:
	default:
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.mu.Unlock()
	if err := m.spoolRecord(job); err != nil {
		// Durability is best-effort per job: the run proceeds, but a
		// restart would not know about it — say so loudly.
		m.cfg.Logf("service: spooling %s: %v (job will not survive a restart)", id, err)
	}
	return job, nil
}

// Job returns a job by id.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, errNotFound
	}
	return job, nil
}

// Jobs returns all jobs in submission order (recovered jobs first, in
// id order).
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels a job: queued jobs become cancelled immediately,
// running ones stop at their next chunk boundary.
func (m *Manager) Cancel(id string) (*Job, error) {
	job, err := m.Job(id)
	if err != nil {
		return nil, err
	}
	if job.requestCancel() {
		// Cancelled straight from the queue: record the terminal state.
		if err := m.spoolRecord(job); err != nil {
			m.cfg.Logf("service: spooling %s: %v", id, err)
		}
		job.releaseInput()
	}
	return job, nil
}

// dispatch feeds queued jobs to the worker pool until shutdown. The
// worker slot is acquired before a job leaves the queue: a popped job
// always has a worker, so queue depth is exactly the number of waiting
// jobs and the 429 bound holds strictly.
func (m *Manager) dispatch() {
	defer close(m.dispatchDone)
	for {
		if err := m.pool.Acquire(m.ctx); err != nil {
			return
		}
		select {
		case <-m.ctx.Done():
			m.pool.Release()
			return
		case job := <-m.queue:
			go func() {
				defer m.pool.Release()
				m.run(job)
			}()
		}
	}
}

// run executes one job to a terminal state — unless the manager itself
// is shutting down, in which case the job is left resumable: its spool
// record stays non-terminal and its latest checkpoint stays in place,
// so the next NewManager over the same spool re-queues it.
func (m *Manager) run(job *Job) {
	ctx, cancel := context.WithCancel(m.ctx)
	defer cancel()
	wait, ok := job.claim(cancel)
	if !ok {
		return // cancelled while queued
	}
	m.tel.queueWait.Observe(wait.Seconds())
	opt := job.opt
	// Per-iteration latency is derived from consecutive progress
	// snapshots: chunk wall time over chunk iterations. The observer
	// runs on the job's own goroutine, so the tracking state is local.
	var lastT time.Time
	var lastI int64
	opt.Observer = func(p parmcmc.Progress) {
		now := time.Now()
		if !lastT.IsZero() && p.Iter > lastI {
			m.tel.iterLatency.Observe(now.Sub(lastT).Seconds() / float64(p.Iter-lastI))
		}
		lastT, lastI = now, p.Iter
		m.itersTotal.Add(job.observe(p))
	}
	if m.spooling() {
		opt.OnCheckpoint = func(cp *parmcmc.Checkpoint) {
			if err := m.spoolCheckpoint(job, cp); err != nil {
				m.cfg.Logf("service: checkpointing %s: %v", job.id, err)
			}
		}
		opt.CheckpointEvery = m.cfg.CheckpointEvery
	}

	pix, w, h, err := job.pixels()
	job.mu.Lock()
	resume := job.resume
	job.mu.Unlock()
	var res *parmcmc.Result
	if err == nil {
		if resume != nil {
			res, err = parmcmc.DetectResume(ctx, pix, w, h, opt, resume)
		} else {
			res, err = parmcmc.DetectContext(ctx, pix, w, h, opt)
		}
	}

	switch {
	case err == nil:
		m.finish(job, res)
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		if job.userCancelled() {
			m.terminate(job, api.StateCancelled, "cancelled")
		}
		// else: daemon shutdown — leave the job resumable.
	default:
		m.terminate(job, api.StateFailed, err.Error())
	}
}

// finish lands a successful result.
func (m *Manager) finish(job *Job, res *parmcmc.Result) {
	m.itersTotal.Add(job.accountIters(res.Iterations))
	view := api.NewResultView(res)
	raw, err := json.Marshal(view)
	if err != nil {
		m.terminate(job, api.StateFailed, fmt.Sprintf("encoding result: %v", err))
		return
	}
	ran, ok := job.finishTerminal(api.StateDone, raw, "")
	if !ok {
		return
	}
	m.tel.jobDuration.Observe(ran.Seconds())
	if err := m.spoolResult(job, raw); err != nil {
		m.cfg.Logf("service: spooling result of %s: %v", job.id, err)
	}
	job.releaseInput()
	job.publish("state", job.Status())
}

// terminate lands a failure or cancellation.
func (m *Manager) terminate(job *Job, state api.JobState, msg string) {
	ran, ok := job.finishTerminal(state, nil, msg)
	if !ok {
		return
	}
	if ran > 0 {
		m.tel.jobDuration.Observe(ran.Seconds())
	}
	if err := m.spoolRecord(job); err != nil {
		m.cfg.Logf("service: spooling %s: %v", job.id, err)
	}
	job.releaseInput()
	job.publish("state", job.Status())
}

// Stop shuts the manager down: no new submissions, running jobs are
// interrupted at their next chunk boundary (their spool state stays
// resumable), and the call waits — bounded by ctx — for in-flight
// workers to drain via the pool's quiesce hook.
func (m *Manager) Stop(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancelRun()
	<-m.dispatchDone
	return m.pool.Quiesce(ctx)
}

// stopping is closed when Stop begins; long-lived handlers (SSE
// streams) select on it so an http.Server.Shutdown can drain even with
// watchers attached to jobs that will never reach a terminal state.
func (m *Manager) stopping() <-chan struct{} { return m.ctx.Done() }

// Uptime reports how long the manager has been running.
func (m *Manager) Uptime() time.Duration { return time.Since(m.started) }

// CheckpointInterval reports the resolved checkpoint cadence — lease
// grants ship it so workers spool at the coordinator's configured
// rate.
func (m *Manager) CheckpointInterval() int { return m.cfg.CheckpointEvery }

// SpoolDir reports the resolved spool directory ("" when durability is
// off).
func (m *Manager) SpoolDir() string { return m.cfg.SpoolDir }

// QueueDepth returns (pending-in-queue, capacity).
func (m *Manager) QueueDepth() (int, int) { return len(m.queue), cap(m.queue) }

// StateCounts returns the number of jobs per state.
func (m *Manager) StateCounts() map[api.JobState]int {
	counts := make(map[api.JobState]int, 5)
	for _, job := range m.Jobs() {
		job.mu.Lock()
		counts[job.state]++
		job.mu.Unlock()
	}
	return counts
}

// iterRate returns aggregate iterations/second measured between
// consecutive calls (metrics scrapes); the first call reports the
// lifetime average.
func (m *Manager) iterRate() float64 {
	total := m.itersTotal.Load()
	now := time.Now()
	m.rateMu.Lock()
	defer m.rateMu.Unlock()
	var rate float64
	if m.lastScrape.IsZero() {
		if up := now.Sub(m.started).Seconds(); up > 0 {
			rate = float64(total) / up
		}
	} else if dt := now.Sub(m.lastScrape).Seconds(); dt > 0 {
		rate = float64(total-m.lastIters) / dt
	}
	m.lastScrape = now
	m.lastIters = total
	return rate
}

// sortJobsByID orders recovered jobs deterministically.
func sortJobsByID(jobs []*Job) {
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
}
