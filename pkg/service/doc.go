// Package service turns the parmcmc detection library into a
// long-running daemon, layered so one job-lifecycle core serves three
// process roles (see docs/architecture.md):
//
//   - Standalone (the default): NewManager runs a bounded pending
//     queue feeding an in-process worker pool over
//     parmcmc.DetectContext, with per-job derived seeds and the
//     pending/running/done/failed/cancelled lifecycle — one binary
//     doing everything, exactly the pre-split behavior.
//   - Coordinator: NewExternal builds the same Manager but starts no
//     dispatcher; the returned Remote is the execution seam the
//     pkg/service/coordinator sub-package drains to lease jobs to
//     external workers, feed their streamed progress back into the SSE
//     fan-out, land their results, and requeue jobs whose lease
//     expired (from the latest spooled checkpoint, or from scratch
//     with Restarted flagged).
//   - Worker: the pkg/service/worker sub-package runs no Manager at
//     all — it leases jobs from a coordinator, materialises their
//     inputs via MaterializeRecord, and runs them through pkg/parmcmc
//     with checkpoints written to the shared spool.
//
// The wire contract — every request/response type, the route table and
// the error envelope — lives in pkg/api; this package implements the
// public half. Manager.Register mounts the explicit per-method /v1
// routes (unknown paths get a typed 404 envelope, wrong methods a 405
// with an Allow header), and pkg/client speaks the same contract from
// the other side. The internal worker-facing routes (register,
// heartbeat, lease, progress, complete under /internal/v1) are
// mounted by the coordinator sub-package on top, reusing this
// package's exported WriteJSON/WriteError/Methods plumbing so the two
// surfaces answer in one wire style.
//
// Durability: with Config.SpoolDir set, every job's input and options
// are recorded at submission and a resumable parmcmc Checkpoint is
// spooled every Config.CheckpointEvery iterations — by the manager's
// own pool standalone, by the leased worker (into the shared spool)
// distributed. A restarted manager rebuilds terminal jobs from their
// spooled results and re-queues interrupted ones from their latest
// checkpoint; because checkpoints resume bit-identically, a job that
// survives a daemon crash — or, distributed, the death of the worker
// running it — produces exactly the result an uninterrupted run would
// have.
//
// Determinism: jobs that omit options.seed get a per-job seed derived
// from Config.BaseSeed and the submission sequence number (the same
// SplitMix64 derivation parmcmc.Runner uses). Results for a fixed seed
// are bit-identical to a direct parmcmc.Detect call with the same
// options, regardless of queueing, concurrency, observation,
// crash/resume history, or which worker process ran the chain.
package service
