// Package service turns the parmcmc detection library into a
// long-running daemon: a job manager (bounded queue + worker pool over
// parmcmc.DetectContext, with per-job derived seeds and
// pending/running/done/failed/cancelled lifecycle) and the HTTP API
// cmd/mcmcd serves in front of it.
//
// The wire contract — every request/response type, the route table and
// the error envelope — lives in pkg/api; this package implements it.
// Manager.Register mounts the explicit per-method routes (unknown
// paths get a typed 404 envelope, wrong methods a 405 with an Allow
// header), and pkg/client speaks the same contract from the other
// side.
//
// Durability: with Config.SpoolDir set, every job's input and options
// are recorded at submission and a resumable parmcmc Checkpoint is
// spooled every Config.CheckpointEvery iterations. A restarted manager
// rebuilds terminal jobs from their spooled results and re-queues
// interrupted ones from their latest checkpoint; because checkpoints
// resume bit-identically, a job that survives a daemon crash produces
// exactly the result an uninterrupted run would have.
//
// Determinism: jobs that omit options.seed get a per-job seed derived
// from Config.BaseSeed and the submission sequence number (the same
// SplitMix64 derivation parmcmc.Runner uses). Results for a fixed seed
// are bit-identical to a direct parmcmc.Detect call with the same
// options, regardless of queueing, concurrency, observation or
// crash/resume history.
package service
