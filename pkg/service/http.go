package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"

	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

// Register mounts the daemon's HTTP API on mux as explicit per-method
// routes (see the pkg/api contract). Unknown paths answer a typed 404
// envelope, wrong methods a 405 with an Allow header — the mux's "/"
// fallback belongs to this API, so callers mounting extra handlers
// (pprof) register them under their own prefixes.
func (m *Manager) Register(mux *http.ServeMux) {
	s := &server{m: m}
	mux.Handle(api.Prefix+"/jobs", methods{
		http.MethodPost: s.submit,
		http.MethodGet:  s.list,
	})
	mux.HandleFunc(api.Prefix+"/jobs/", s.job)
	mux.Handle(api.Prefix+"/version", methods{http.MethodGet: s.version})
	mux.Handle("/healthz", methods{http.MethodGet: s.healthz})
	mux.Handle("/metrics", methods{http.MethodGet: s.metrics})
	mux.HandleFunc("/", s.notFound)
}

// Handler returns a standalone handler serving the API (a fresh mux
// with Register applied) — what the in-process tests mount.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	m.Register(mux)
	return mux
}

type server struct {
	m *Manager
}

// methods dispatches one route by HTTP method; anything unlisted gets
// a 405 envelope with a deterministic Allow header.
type methods map[string]http.HandlerFunc

func (ms methods) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := ms[r.Method]; ok {
		h(w, r)
		return
	}
	allow := make([]string, 0, len(ms))
	for m := range ms {
		allow = append(allow, m)
	}
	sort.Strings(allow)
	w.Header().Set("Allow", strings.Join(allow, ", "))
	writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
		"method %s not allowed (allow: %s)", r.Method, strings.Join(allow, ", "))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"code":"internal","error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
}

// writeError emits the typed error envelope every non-2xx response
// uses: a stable machine-readable code plus a human message.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorEnvelope{Code: code, Message: fmt.Sprintf(format, args...)})
}

// Exported handler plumbing for the coordinator sub-package, which
// mounts the internal worker routes next to this package's public
// ones and must answer in the identical wire style.

// Methods dispatches one route by HTTP method; anything unlisted gets
// a 405 envelope with a deterministic Allow header.
type Methods = methods

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteError writes the typed error envelope.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeError(w, status, code, format, args...)
}

func (s *server) notFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, api.CodeNotFound, "no route %s", r.URL.Path)
}

// version serves the contract version plus the server's strategy and
// shape registries.
func (s *server) version(w http.ResponseWriter, r *http.Request) {
	strategies := parmcmc.Strategies()
	shapes := parmcmc.ShapeKinds()
	info := api.VersionInfo{
		API:       api.Version,
		Service:   "mcmcd",
		GoVersion: runtime.Version(),
		Role:      s.m.cfg.Role,
	}
	for _, st := range strategies {
		info.Strategies = append(info.Strategies, st.String())
	}
	for _, sh := range shapes {
		info.Shapes = append(info.Shapes, sh.String())
	}
	writeJSON(w, http.StatusOK, info)
}

// list serves the job collection.
func (s *server) list(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.Jobs()
	views := make([]api.JobStatus, len(jobs))
	for i, job := range jobs {
		views[i] = job.Status()
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			"body exceeds %d bytes", MaxBodyBytes)
		return
	}
	spec, aerr := decodeSubmit(r.Header.Get("Content-Type"), body, r.URL.Query())
	if aerr != nil {
		writeError(w, aerr.status, aerr.code, "%s", aerr.msg)
		return
	}
	job, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, api.CodeQueueFull, "%v", err)
		return
	case errors.Is(err, ErrStopped):
		writeError(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	w.Header().Set("Location", api.Prefix+"/jobs/"+job.ID())
	writeJSON(w, http.StatusCreated, job.Status())
}

// job routes the per-job subtree: /v1/jobs/{id}[/events|/diag].
func (s *server) job(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, api.Prefix+"/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "events" && sub != "diag") {
		s.notFound(w, r)
		return
	}
	job, err := s.m.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no job %q", id)
		return
	}
	switch sub {
	case "events":
		methods{http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			s.events(w, r, job)
		}}.ServeHTTP(w, r)
	case "diag":
		methods{http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			s.diag(w, job)
		}}.ServeHTTP(w, r)
	default:
		methods{
			http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
				writeJSON(w, http.StatusOK, job.Status())
			},
			http.MethodDelete: func(w http.ResponseWriter, r *http.Request) {
				job, err := s.m.Cancel(id)
				if err != nil {
					writeError(w, http.StatusNotFound, api.CodeNotFound, "no job %q", id)
					return
				}
				writeJSON(w, http.StatusOK, job.Status())
			},
		}.ServeHTTP(w, r)
	}
}

// diag serves the per-job chain diagnostics.
func (s *server) diag(w http.ResponseWriter, job *Job) {
	writeJSON(w, http.StatusOK, job.Diag())
}

// events streams the job over SSE: an initial state snapshot, progress
// events at chunk boundaries, state transitions, and a final "done"
// event carrying the terminal JobStatus (with result) before the
// stream closes. Progress events may be dropped for slow consumers —
// each snapshot is self-contained — but the final event never is.
func (s *server) events(w http.ResponseWriter, r *http.Request, job *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "streaming unsupported")
		return
	}
	ch := job.subscribe(64)
	defer job.unsubscribe(ch)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "state", mustJSON(job.Status()))
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.m.stopping():
			// Daemon shutdown: the job may never reach a terminal state
			// in this process; end the stream so the server can drain.
			return
		case ev := <-ch:
			writeSSE(w, ev.name, ev.data)
			fl.Flush()
		case <-job.Done():
			// Drain buffered progress, then emit the terminal view.
			for {
				select {
				case ev := <-ch:
					writeSSE(w, ev.name, ev.data)
					continue
				default:
				}
				break
			}
			writeSSE(w, "done", mustJSON(job.Status()))
			fl.Flush()
			return
		}
	}
}

func writeSSE(w io.Writer, name string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"code":"internal","error":"encoding event"}`)
	}
	return data
}

// healthz reports liveness plus coarse queue/job counts.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.m.QueueDepth()
	counts := s.m.StateCounts()
	jobs := make(map[string]int, len(counts))
	for st, n := range counts {
		jobs[string(st)] = n
	}
	writeJSON(w, http.StatusOK, api.Health{
		Status:        "ok",
		UptimeSeconds: s.m.Uptime().Seconds(),
		QueueDepth:    depth,
		QueueCapacity: capacity,
		Jobs:          jobs,
	})
}
