package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Handler returns the daemon's HTTP API over this manager. The routes
// are documented in the package comment; everything answers JSON
// except /metrics (Prometheus text) and the SSE event streams.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	s := &server{m: m}
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

type server struct {
	m *Manager
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleJobs serves the collection: POST submits, GET lists.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		jobs := s.m.Jobs()
		views := make([]JobView, len(jobs))
		for i, job := range jobs {
			views[i] = job.View()
		}
		writeJSON(w, http.StatusOK, views)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", MaxBodyBytes)
		return
	}
	spec, aerr := decodeSubmit(r.Header.Get("Content-Type"), body, r.URL.Query())
	if aerr != nil {
		writeError(w, aerr.status, "%s", aerr.msg)
		return
	}
	job, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrStopped):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusCreated, job.View())
}

// handleJob serves one job: GET {id}, GET {id}/events, DELETE {id}.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "events") {
		writeError(w, http.StatusNotFound, "not found")
		return
	}
	job, err := s.m.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch {
	case sub == "events" && r.Method == http.MethodGet:
		s.events(w, r, job)
	case sub == "events":
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	case r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, job.View())
	case r.Method == http.MethodDelete:
		job, err := s.m.Cancel(id)
		if err != nil {
			writeError(w, http.StatusNotFound, "no job %q", id)
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// events streams the job over SSE: an initial state snapshot, progress
// events at chunk boundaries, state transitions, and a final "done"
// event carrying the terminal JobView (with result) before the stream
// closes. Progress events may be dropped for slow consumers — each
// snapshot is self-contained — but the final event never is.
func (s *server) events(w http.ResponseWriter, r *http.Request, job *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch := job.subscribe(64)
	defer job.unsubscribe(ch)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "state", mustJSON(job.View()))
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.m.stopping():
			// Daemon shutdown: the job may never reach a terminal state
			// in this process; end the stream so the server can drain.
			return
		case ev := <-ch:
			writeSSE(w, ev.name, ev.data)
			fl.Flush()
		case <-job.Done():
			// Drain buffered progress, then emit the terminal view.
			for {
				select {
				case ev := <-ch:
					writeSSE(w, ev.name, ev.data)
					continue
				default:
				}
				break
			}
			writeSSE(w, "done", mustJSON(job.View()))
			fl.Flush()
			return
		}
	}
}

func writeSSE(w io.Writer, name string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"encoding event"}`)
	}
	return data
}

// handleHealthz reports liveness plus coarse queue/job counts.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	depth, capacity := s.m.QueueDepth()
	counts := s.m.StateCounts()
	jobs := make(map[string]int, len(counts))
	for st, n := range counts {
		jobs[string(st)] = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": s.m.Uptime().Seconds(),
		"queue_depth":    depth,
		"queue_capacity": capacity,
		"jobs":           jobs,
	})
}
