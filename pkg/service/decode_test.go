package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/url"
	"reflect"
	"testing"

	"repro/internal/imaging"
	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

func mustScenePGM(t *testing.T) []byte {
	t.Helper()
	pix, _ := parmcmc.GenerateScene(parmcmc.SceneSpec{W: 32, H: 32, Count: 2, MeanRadius: 4, Seed: 1})
	var buf bytes.Buffer
	if err := (&imaging.Image{W: 32, H: 32, Pix: pix}).WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeSubmitJSON(t *testing.T) {
	body, _ := json.Marshal(api.JobSpec{
		Scene:   &api.SceneSpec{W: 64, H: 48, Count: 3, MeanRadius: 5, Seed: 2},
		Options: api.OptionsSpec{Iterations: 1000, Seed: 7},
	})
	spec, aerr := decodeSubmit("application/json", body, nil)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if spec.scene == nil || spec.scene.W != 64 {
		t.Fatalf("scene %+v", spec.scene)
	}
	// mean_radius defaults from the scene; strategy canonicalises.
	if spec.spec.MeanRadius != 5 || spec.spec.Strategy != "sequential" {
		t.Fatalf("normalized options %+v", spec.spec)
	}
	if spec.opt.MeanRadius != 5 || spec.opt.Seed != 7 || spec.opt.Iterations != 1000 {
		t.Fatalf("options %+v", spec.opt)
	}

	// Content sniffing: a JSON body with no content type still decodes.
	if _, aerr := decodeSubmit("", body, nil); aerr != nil {
		t.Fatal(aerr)
	}
}

func TestDecodeSubmitErrors(t *testing.T) {
	pgm := mustScenePGM(t)
	cases := []struct {
		name   string
		ct     string
		body   string
		query  string
		status int
	}{
		{"empty body", "", "", "", http.StatusUnsupportedMediaType},
		{"bad json", "application/json", "{", "", http.StatusBadRequest},
		{"unknown json field", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5},"bogus":1}`, "", http.StatusBadRequest},
		{"trailing data", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5}} {"x":1}`, "", http.StatusBadRequest},
		{"missing scene", "application/json", `{"options":{"mean_radius":5}}`, "", http.StatusBadRequest},
		{"zero scene dims", "application/json", `{"scene":{"w":0,"h":64,"count":1,"mean_radius":5}}`, "", http.StatusBadRequest},
		{"huge scene", "application/json", `{"scene":{"w":100000,"h":100000,"count":1,"mean_radius":5}}`, "", http.StatusBadRequest},
		{"negative count", "application/json", `{"scene":{"w":64,"h":64,"count":-1,"mean_radius":5}}`, "", http.StatusBadRequest},
		{"no radius", "application/json", `{"scene":{"w":64,"h":64,"count":1}}`, "", http.StatusBadRequest},
		{"bad strategy", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5},"options":{"strategy":"warp"}}`, "", http.StatusBadRequest},
		{"negative iterations", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5},"options":{"iterations":-5}}`, "", http.StatusBadRequest},
		{"huge iterations", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5},"options":{"iterations":2000000000}}`, "", http.StatusBadRequest},
		{"noise out of range", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5,"noise":2}}`, "", http.StatusBadRequest},
		{"garbage bytes", "application/x-thing", "\x00\x01\x02", "", http.StatusUnsupportedMediaType},
		{"truncated png", "image/png", "\x89PNG\r\n\x1a\n\x00\x00", "radius=5", http.StatusBadRequest},
		{"pgm bomb header", "", "P5 1000000000 1000000000 255\n", "radius=5", http.StatusBadRequest},
		{"pgm truncated header", "", "P5 10", "radius=5", http.StatusBadRequest},
		{"pgm bad tokens", "", "P5 x y 255\n", "radius=5", http.StatusBadRequest},
		{"pgm truncated raster", "", "P5 8 8 255\nxx", "radius=5", http.StatusBadRequest},
		{"upload without radius", "", string(pgm), "", http.StatusBadRequest},
		{"upload bad query", "", string(pgm), "radius=abc", http.StatusBadRequest},
		{"upload NaN radius", "", string(pgm), "radius=NaN", http.StatusBadRequest},
		{"upload Inf radius", "", string(pgm), "radius=Inf", http.StatusBadRequest},
		{"upload NaN threshold", "", string(pgm), "radius=5&threshold=nan", http.StatusBadRequest},
		{"upload -Inf slack", "", string(pgm), "radius=5&grid_slack=-Inf", http.StatusBadRequest},
		{"upload bad seed", "", string(pgm), "radius=5&seed=-1", http.StatusBadRequest},
		{"upload bad converge", "", string(pgm), "radius=5&converge=maybe", http.StatusBadRequest},
		{"upload bad strategy", "", string(pgm), "radius=5&strategy=warp", http.StatusBadRequest},
		{"bad scene shape", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5,"shape":"hexagon"}}`, "", http.StatusBadRequest},
		{"bad options shape", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5},"options":{"shape":"square"}}`, "", http.StatusBadRequest},
		{"axis ratio out of range", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5,"shape":"ellipse","axis_ratio":1.5}}`, "", http.StatusBadRequest},
		{"axis ratio without ellipse", "application/json", `{"scene":{"w":64,"h":64,"count":1,"mean_radius":5,"axis_ratio":0.7}}`, "", http.StatusBadRequest},
		{"upload bad shape", "", string(pgm), "radius=5&shape=blob", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			spec, aerr := decodeSubmit(tc.ct, []byte(tc.body), q)
			if aerr == nil {
				t.Fatalf("accepted: %+v", spec)
			}
			if aerr.status != tc.status {
				t.Fatalf("status %d (%s), want %d", aerr.status, aerr.msg, tc.status)
			}
			if aerr.Error() == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

func TestDecodeUploadQueryOptions(t *testing.T) {
	pgm := mustScenePGM(t)
	q, _ := url.ParseQuery("radius=4&strategy=mc3&iters=5000&seed=11&chains=3&heat_step=0.2&swap_every=100&workers=2&converge=false&threshold=0.4")
	spec, aerr := decodeSubmit("", pgm, q)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if spec.w != 32 || spec.h != 32 || len(spec.pix) != 32*32 {
		t.Fatalf("decoded %dx%d, %d pix", spec.w, spec.h, len(spec.pix))
	}
	want := parmcmc.Options{
		Strategy: parmcmc.Tempered, MeanRadius: 4, Threshold: 0.4,
		Iterations: 5000, Workers: 2, Seed: 11,
		Chains: 3, HeatStep: 0.2, SwapEvery: 100,
	}
	if !reflect.DeepEqual(spec.opt, want) {
		t.Fatalf("options %+v, want %+v", spec.opt, want)
	}
	if spec.ext != "pgm" {
		t.Fatalf("ext %q", spec.ext)
	}
}

// The options round trip the spool depends on: normalize → record →
// optionsFromSpec must reproduce identical parmcmc.Options.
func TestOptionsSpecRoundTrip(t *testing.T) {
	spec := api.OptionsSpec{
		Strategy: "periodic+spec", MeanRadius: 6.5, ExpectedCount: 12,
		Threshold: 0.4, Iterations: 9000, Workers: 3, Seed: 77,
		LocalPhaseIters: 250, PartitionGrid: 3, SpecWidth: 5,
		LocalSpecWidth: 2, GridSlack: 1.0, Converge: true,
		OverlapPenalty: 0.7, Chains: 4, HeatStep: 0.25, SwapEvery: 150,
	}
	opt1, aerr := optionsFromSpec(&spec)
	if aerr != nil {
		t.Fatal(aerr)
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back api.OptionsSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	opt2, aerr := optionsFromSpec(&back)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if !reflect.DeepEqual(opt1, opt2) {
		t.Fatalf("round trip drifted:\n%+v\n%+v", opt1, opt2)
	}
}

// TestDecodeEllipseSubmit pins the accepted ellipse path: scene shape
// canonicalised, detection shape defaulted from the scene, axis ratio
// carried through.
func TestDecodeEllipseSubmit(t *testing.T) {
	body := `{"scene":{"w":96,"h":96,"count":4,"mean_radius":6,"shape":"ellipse","axis_ratio":0.6}}`
	spec, aerr := decodeSubmit("application/json", []byte(body), nil)
	if aerr != nil {
		t.Fatalf("rejected: %v", aerr)
	}
	if spec.scene.Shape != parmcmc.Ellipses.String() {
		t.Fatalf("scene shape %q", spec.scene.Shape)
	}
	if spec.spec.Shape != parmcmc.Ellipses.String() {
		t.Fatalf("options shape %q (want defaulted from scene)", spec.spec.Shape)
	}
	if spec.opt.Shape != parmcmc.Ellipses {
		t.Fatalf("parmcmc shape %v", spec.opt.Shape)
	}
	ps, err := spec.scene.ToParmcmc()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Shape != parmcmc.Ellipses || ps.AxisRatio != 0.6 {
		t.Fatalf("scene mapping %+v", ps)
	}
	// Upload path: shape from query.
	pgm := mustScenePGM(t)
	q, _ := url.ParseQuery("radius=5&shape=ellipse")
	up, aerr := decodeSubmit("", pgm, q)
	if aerr != nil {
		t.Fatalf("upload rejected: %v", aerr)
	}
	if up.opt.Shape != parmcmc.Ellipses {
		t.Fatalf("upload shape %v", up.opt.Shape)
	}
}
