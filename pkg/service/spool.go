package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/pkg/api"
	"repro/pkg/parmcmc"
)

// Spool layout, one directory per job:
//
//	<spool>/<job-id>/job.json        submission record (api.JobRecord)
//	<spool>/<job-id>/input.png|pgm   raw uploaded image, if any
//	<spool>/<job-id>/checkpoint.bin  latest resumable checkpoint
//	<spool>/<job-id>/result.json     final ResultView once done
//
// Every file is written atomically (write-then-rename), so a crash at
// any instant leaves either the previous or the next version — never a
// truncated one.

const (
	spoolRecordFile     = api.SpoolRecordFile
	spoolCheckpointFile = api.SpoolCheckpointFile
	spoolResultFile     = api.SpoolResultFile
)

func (m *Manager) spooling() bool { return m.cfg.SpoolDir != "" }

func (m *Manager) jobDir(id string) string { return filepath.Join(m.cfg.SpoolDir, id) }

// spoolRecord persists the job's record (and, on first write, its
// uploaded input). job.spoolMu serializes record writes against
// spoolResult: Submit's initial pending record and the worker's
// terminal record can otherwise interleave read-state/write-file and
// regress a finished job to pending on disk.
func (m *Manager) spoolRecord(job *Job) error {
	if !m.spooling() {
		return nil
	}
	job.spoolMu.Lock()
	defer job.spoolMu.Unlock()
	return m.spoolRecordLocked(job)
}

// recordOf builds the job's durable record — the spool's job.json and
// the Record field of a lease grant. No I/O: the input file name is
// derived from the upload's extension, which outlives the released
// bytes.
func recordOf(job *Job) api.JobRecord {
	rec := api.JobRecord{
		ID:        job.id,
		Seed:      job.seed,
		Submitted: job.submitted,
		Options:   job.spec,
		Scene:     job.scene,
	}
	if job.ext != "" {
		rec.Input = "input." + job.ext
	}
	job.mu.Lock()
	rec.State = job.state
	rec.Error = job.errMsg
	job.mu.Unlock()
	return rec
}

func (m *Manager) spoolRecordLocked(job *Job) error {
	dir := m.jobDir(job.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rec := recordOf(job)
	job.mu.Lock()
	input := job.input // may be released once the job is terminal
	job.mu.Unlock()
	if input != nil {
		path := filepath.Join(dir, rec.Input)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			if err := cliutil.WriteFileAtomic(path, input, 0o644); err != nil {
				return err
			}
		}
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return cliutil.WriteFileAtomic(filepath.Join(dir, spoolRecordFile), blob, 0o644)
}

// spoolCheckpoint persists the latest resumable checkpoint.
func (m *Manager) spoolCheckpoint(job *Job, cp *parmcmc.Checkpoint) error {
	blob, err := cp.MarshalBinary()
	if err != nil {
		return err
	}
	dir := m.jobDir(job.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return cliutil.WriteFileAtomic(filepath.Join(dir, spoolCheckpointFile), blob, 0o644)
}

// spoolResult persists the final result and the terminal record, and
// drops the now-redundant checkpoint.
func (m *Manager) spoolResult(job *Job, resultJSON []byte) error {
	if !m.spooling() {
		return nil
	}
	job.spoolMu.Lock()
	defer job.spoolMu.Unlock()
	dir := m.jobDir(job.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := cliutil.WriteFileAtomic(filepath.Join(dir, spoolResultFile), resultJSON, 0o644); err != nil {
		return err
	}
	if err := m.spoolRecordLocked(job); err != nil {
		return err
	}
	os.Remove(filepath.Join(dir, spoolCheckpointFile))
	return nil
}

// recoverSpool scans the spool directory and rebuilds its jobs:
// terminal ones become read-only entries, interrupted ones are
// re-validated, pointed at their latest checkpoint and returned for
// re-queueing. Corrupt entries are logged and skipped — a damaged
// spool must not keep the daemon down.
func (m *Manager) recoverSpool() ([]*Job, error) {
	if !m.spooling() {
		return nil, nil
	}
	if err := os.MkdirAll(m.cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: spool dir: %w", err)
	}
	entries, err := os.ReadDir(m.cfg.SpoolDir)
	if err != nil {
		return nil, fmt.Errorf("service: spool dir: %w", err)
	}
	var requeue []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		job, terminal, err := m.recoverJob(e.Name())
		if err != nil {
			m.cfg.Logf("service: skipping spooled job %s: %v", e.Name(), err)
			continue
		}
		m.jobs[job.id] = job
		m.order = append(m.order, job.id)
		var n uint64
		if parseJobSeq(job.id, &n) && n > m.seq {
			m.seq = n
		}
		if !terminal {
			requeue = append(requeue, job)
		}
	}
	// Deterministic listing and requeue order.
	sort.Strings(m.order)
	sortJobsByID(requeue)
	return requeue, nil
}

// recoverJob rebuilds one spooled job directory.
func (m *Manager) recoverJob(name string) (*Job, bool, error) {
	dir := filepath.Join(m.cfg.SpoolDir, name)
	blob, err := os.ReadFile(filepath.Join(dir, spoolRecordFile))
	if err != nil {
		return nil, false, err
	}
	var rec api.JobRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		return nil, false, fmt.Errorf("corrupt record: %w", err)
	}
	if rec.ID != name {
		return nil, false, fmt.Errorf("record id %q does not match directory", rec.ID)
	}
	spec := rec.Options
	opt, aerr := optionsFromSpec(&spec)
	if aerr != nil {
		return nil, false, fmt.Errorf("invalid recorded options: %v", aerr)
	}
	js := &jobSpec{spec: spec, opt: opt, scene: rec.Scene}
	// Terminal jobs never run again, so their (possibly large) input is
	// not re-decoded — only resumable jobs pay for it.
	if rec.Input != "" && !rec.State.Terminal() {
		raw, err := os.ReadFile(filepath.Join(dir, rec.Input))
		if err != nil {
			return nil, false, err
		}
		// Options come from the record; only the image bytes need
		// re-decoding (deterministically, so resume stays bit-identical).
		pix, w, h, ext, daerr := decodeImageBytes("", raw)
		if daerr != nil {
			return nil, false, fmt.Errorf("re-decoding input: %v", daerr)
		}
		js.input, js.ext = raw, ext
		js.pix, js.w, js.h = pix, w, h
	}
	job := newJob(rec.ID, rec.Seed, js, rec.Submitted)

	if rec.State.Terminal() {
		job.state = rec.State
		job.errMsg = rec.Error
		if rec.State == api.StateDone {
			res, err := os.ReadFile(filepath.Join(dir, spoolResultFile))
			if err != nil {
				return nil, false, fmt.Errorf("done job without result: %w", err)
			}
			job.resultJSON = res
		}
		close(job.done)
		return job, true, nil
	}

	// Interrupted: resume from the latest checkpoint when one exists
	// (and still parses); otherwise restart from scratch — both paths
	// produce the bit-identical final result. A scratch restart is
	// flagged on the job (JobStatus.Restarted) so a streaming client
	// that watched the pre-crash run rewinds its progress watermark
	// instead of silently suppressing the whole re-run.
	if blob, err := os.ReadFile(filepath.Join(dir, spoolCheckpointFile)); err == nil {
		var cp parmcmc.Checkpoint
		if err := cp.UnmarshalBinary(blob); err != nil {
			m.cfg.Logf("service: %s: unusable checkpoint (%v), restarting job from scratch", rec.ID, err)
		} else {
			job.resume = &cp
			if m.external {
				// Lease grants ship the exact spooled bytes.
				job.resumeBlob = blob
			}
		}
	}
	job.restarted = job.resume == nil
	return job, false, nil
}

// readCheckpoint loads and validates the job's latest spooled
// checkpoint; ok is false when none exists or it does not parse — the
// caller restarts the job from scratch, which still lands the
// bit-identical result.
func (m *Manager) readCheckpoint(jobID string) (*parmcmc.Checkpoint, []byte, bool) {
	if !m.spooling() {
		return nil, nil, false
	}
	blob, err := os.ReadFile(filepath.Join(m.jobDir(jobID), spoolCheckpointFile))
	if err != nil {
		return nil, nil, false
	}
	var cp parmcmc.Checkpoint
	if err := cp.UnmarshalBinary(blob); err != nil {
		m.cfg.Logf("service: %s: unusable checkpoint (%v), restarting job from scratch", jobID, err)
		return nil, nil, false
	}
	return &cp, blob, true
}

// parseJobSeq extracts the numeric suffix of a "job-%08d" id. The
// suffix must be digits only and nothing else: Sscanf-style parsing
// accepted trailing garbage ("job-00000012x" → 12), which would let a
// stray spool directory silently steal a live job's sequence number.
func parseJobSeq(id string, out *uint64) bool {
	const prefix = "job-"
	rest, ok := strings.CutPrefix(id, prefix)
	if !ok || rest == "" {
		return false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return false
	}
	*out = n
	return true
}
